# Tier-1 verification gate (see ROADMAP.md): `make check` must pass
# before every merge.

GO ?= go

.PHONY: check fmt vet build test race lint lint-fixtures invariants fuzz bench bench-compare

check: fmt vet build test race lint lint-fixtures invariants fuzz

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages additionally run under the race
# detector: the operator pipeline/registry, the query server, the engine
# (parallel partial executors + differential test), the online-aggregation
# runner (sample-order reorder buffer fed by concurrent consumers), the
# cluster layer (coordinator fan-out + distributed differential test), and
# the storage layer (checkpoint-vs-append exclusion and recovery paths in
# store and dbstore are lock-heavy and were previously only race-tested
# transitively).
race:
	$(GO) test -race ./internal/scanraw/... ./internal/server/... ./internal/engine/... ./internal/ola/... ./internal/cluster/... ./internal/kernel/... ./internal/workload/... ./internal/store/... ./internal/dbstore/...

# Project-specific static analysis (pin balance, pool pairing, goroutine
# exits, context threading, channel ops under locks, journal ordering,
# fsync-before-ack, decode bounds guards, CRC error flow, lock-order
# cycles) plus the unused-suppression pass. Stdlib-only; see
# cmd/scanrawlint and DESIGN.md §9/§14.
lint:
	$(GO) run ./cmd/scanrawlint ./...

# Fixture-coverage gate: every analyzer must prove it fires (a // want
# fixture) and that its suppression escape hatch works (a reasoned
# //lint:ignore fixture). See scripts/lint_fixtures.sh.
lint-fixtures:
	@./scripts/lint_fixtures.sh

# Runtime invariant layer: pin-count underflow and double-recycle panics
# plus the pool gauges only exist under -tags invariants. The race-gated
# packages rerun under the tag with the race detector; the resource-owning
# packages rerun without it.
invariants:
	$(GO) test -tags invariants ./internal/cache/... ./internal/chunk/... ./internal/tok/... ./internal/parse/... ./internal/kernel/...
	$(GO) test -race -tags invariants ./internal/scanraw/... ./internal/server/... ./internal/engine/... ./internal/ola/... ./internal/cluster/... ./internal/kernel/...

# Short fuzz smoke over the decoders that parse untrusted bytes — the
# manifest record/frame decoders (crash recovery reads whatever is on
# disk), the binary chunk codec, and the network-facing cluster decoders
# (serialized engine partials and frame payloads arrive over TCP) — plus
# the fused-kernel differential property (fused conversion equals the
# two-stage pipeline, or both error). A few seconds each is enough to
# catch structural regressions; long fuzz runs stay manual.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecord -fuzztime=5s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrames -fuzztime=5s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzDecodePartial -fuzztime=5s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrameMessage -fuzztime=5s ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzFusedKernel -fuzztime=5s ./internal/kernel
	$(GO) test -run='^$$' -fuzz=FuzzDecodeColGroupKey -fuzztime=5s ./internal/dbstore

# bench runs the benchmark suite across the hot packages and records the
# raw output in BENCH_pr3.json (see README). bench-compare diffs the two
# most recent BENCH_*.json and fails on >20% hot-path regressions.
bench:
	@./scripts/bench.sh

bench-compare:
	@./scripts/bench_compare.sh
