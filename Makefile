# Tier-1 verification gate (see ROADMAP.md): `make check` must pass
# before every merge.

GO ?= go

.PHONY: check fmt vet build test race

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages additionally run under the race
# detector: the operator pipeline/registry and the query server.
race:
	$(GO) test -race ./internal/scanraw/... ./internal/server/...
