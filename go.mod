module scanraw

go 1.22
