package scanraw

import (
	"sync"
	"time"
)

// deliverer is the CONSUME stage of a run: it feeds delivered binary chunks
// to the request's Deliver callback, pacing the consume time through
// cpuWork so engine evaluation occupies simulated CPU exactly like the
// conversion stages do.
//
// With one worker the deliverer is a synchronous pass-through preserving
// the classic contract (Deliver called from a single goroutine, in delivery
// order). With n > 1 workers it fans chunks out to n consume goroutines —
// the parallel delivery mode that removes the serial-consume Amdahl ceiling
// — and Deliver must tolerate concurrent calls (engine.ParallelExecutor
// does). The hand-off channel is unbuffered: when every worker is busy the
// producer blocks, so the binary-buffer budget (freeBin) keeps bounding
// memory and back-pressure still propagates to READ.
type deliverer struct {
	o  *Operator
	fn func(bc *BinaryChunk) error
	n  int

	ch chan deliverItem // nil when n == 1
	wg sync.WaitGroup

	errMu sync.Mutex
	err   error

	slot *workerSlot // pacing slot of the synchronous (n == 1) path
}

// deliverItem pairs a chunk with the bookkeeping to run once its consume
// finished (cache unpin, budget release, scheduler pokes). The bookkeeping
// runs whether or not the chunk was actually consumed, so teardown
// invariants hold on the error path too.
type deliverItem struct {
	bc    *BinaryChunk
	after func()
}

// newDeliverer builds the consume stage for one run; n is clamped to >= 1.
func (o *Operator) newDeliverer(fn func(bc *BinaryChunk) error, n int) *deliverer {
	if n < 1 {
		n = 1
	}
	d := &deliverer{o: o, fn: fn, n: n, slot: &workerSlot{}}
	if n > 1 {
		d.ch = make(chan deliverItem)
		d.wg.Add(n)
		for i := 0; i < n; i++ {
			go d.worker()
		}
	}
	return d
}

// consumeWorkersFor resolves a request's effective consume parallelism:
// the request's own setting, falling back to the operator default.
func (o *Operator) consumeWorkersFor(req Request) int {
	n := req.ParallelConsume
	if n == 0 {
		n = o.cfg.ConsumeWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (d *deliverer) setErr(err error) {
	if err == nil {
		return
	}
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// failedErr returns the first consume error (or the run failure that was
// propagated in), nil while healthy.
func (d *deliverer) failedErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// deliver hands one chunk to the consume stage. Synchronous mode consumes
// inline; fan-out mode enqueues to a worker and returns once one accepts
// (back-pressure, not completion). after, when non-nil, runs exactly once
// after the consume attempt. Errors are not returned here — they latch in
// the deliverer (and the caller's run, via failedErr checks) because in
// fan-out mode the failure may belong to an earlier chunk.
func (d *deliverer) deliver(bc *BinaryChunk, after func()) {
	if d.ch != nil {
		// Time spent blocked here is the consume-stall signal: the producer
		// had a chunk ready but every consume worker was busy.
		select {
		case d.ch <- deliverItem{bc: bc, after: after}:
		default:
			start := time.Now()
			d.ch <- deliverItem{bc: bc, after: after}
			d.o.prof.consumeStallNs.Add(int64(time.Since(start)))
		}
		d.o.prof.consumeStallCh.Add(1)
		return
	}
	if d.failedErr() == nil {
		d.consumeOne(d.slot, bc)
	}
	if after != nil {
		after()
	}
}

// worker is one consume goroutine of the fan-out mode, with its own pacing
// slot so CPUSlowdown debt accumulates per worker like conversion workers.
func (d *deliverer) worker() {
	defer d.wg.Done()
	slot := &workerSlot{}
	for it := range d.ch {
		if d.failedErr() == nil {
			d.consumeOne(slot, it.bc)
		}
		if it.after != nil {
			it.after()
		}
	}
}

// consumeOne runs the Deliver callback for one chunk under cpuWork pacing
// and accounts the nominal time to the Consume stage profile.
func (d *deliverer) consumeOne(slot *workerSlot, bc *BinaryChunk) {
	var err error
	t := d.o.cpuWork(slot, func() { err = d.fn(bc) })
	d.o.prof.consumeNs.Add(int64(t))
	if err != nil {
		d.setErr(err)
		return
	}
	d.o.prof.consumeChunks.Add(1)
}

// close waits for in-flight consumes and returns the first error. Every
// deliver call must have returned before close.
func (d *deliverer) close() error {
	if d.ch != nil {
		close(d.ch)
		d.wg.Wait()
	}
	return d.failedErr()
}
