package scanraw

import (
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// benchWarmNarrow times a 2-of-32-column query over a fully loaded table
// whose binary cache is cleared each iteration, so every scan reads pages
// back from a bandwidth-throttled disk. With per-column pages (width 1)
// only the two requested columns' bytes cross the bus; the full-width
// layout (width 0) must transfer every column to answer the same query.
// bench.sh derives partial_width_hit_speedup from the pair.
func benchWarmNarrow(b *testing.B, width int) {
	d := vdisk.New(vdisk.Config{ReadBandwidth: 64 << 20, WriteBandwidth: 256 << 20})
	spec := gen.CSVSpec{Rows: 1 << 12, Cols: 32, Seed: 7, MaxValue: 1000}
	gen.Preload(d, "raw/bench.csv", spec)
	st := dbstore.NewStore(d)
	st.SetGroupWidth(width)
	table, err := st.CreateTable("bench", spec.Schema(), "raw/bench.csv")
	if err != nil {
		b.Fatal(err)
	}
	op := New(st, table, Config{
		Workers: 4, ChunkLines: 1 << 9, Policy: FullLoad, CacheChunks: 8,
	})
	// Warm: one full-width scan under FullLoad leaves every column on pages.
	warm := Request{Columns: allCols(32), Deliver: func(bc *BinaryChunk) error { return nil }}
	if _, err := op.Run(warm); err != nil {
		b.Fatal(err)
	}
	op.WaitIdle()

	req := Request{Columns: []int{3, 17}, Deliver: func(bc *BinaryChunk) error { return nil }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Cache().Clear()
		if _, err := op.Run(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNarrowQueryColGroup(b *testing.B)  { benchWarmNarrow(b, 1) }
func BenchmarkNarrowQueryFullWidth(b *testing.B) { benchWarmNarrow(b, 0) }
