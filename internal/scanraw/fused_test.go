package scanraw

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

// mixedEnv stages a deterministic int64+float64+string CSV so the fused
// differential tests exercise every kernel, not just the int64 shapes the
// generated test files use.
func mixedEnv(t *testing.T, rows int) (*dbstore.Store, *dbstore.Table) {
	t.Helper()
	sch := schema.MustNew(
		schema.Column{Name: "a", Type: schema.Int64},
		schema.Column{Name: "b", Type: schema.Int64},
		schema.Column{Name: "f", Type: schema.Float64},
		schema.Column{Name: "s", Type: schema.Str},
	)
	rng := rand.New(rand.NewSource(7))
	var data []byte
	for r := 0; r < rows; r++ {
		data = strconv.AppendInt(data, int64(r), 10)
		data = append(data, ',')
		data = strconv.AppendInt(data, rng.Int63n(2000)-1000, 10)
		data = append(data, ',')
		data = strconv.AppendFloat(data, rng.NormFloat64()*100, 'f', -1, 64)
		data = append(data, ',')
		data = append(data, fmt.Sprintf("row%d", rng.Intn(50))...)
		if r%7 == 0 {
			data = append(data, '\r') // CRLF rows ride along
		}
		data = append(data, '\n')
	}
	d := vdisk.Unlimited()
	d.Preload("raw/mixed.csv", data)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", sch, "raw/mixed.csv")
	if err != nil {
		t.Fatal(err)
	}
	return store, table
}

// runSQL executes one statement on a fresh operator built with cfg.
func runSQL(t *testing.T, store *dbstore.Store, table *dbstore.Table, cfg Config, sql string) (*engine.Result, RunStats) {
	t.Helper()
	q, err := engine.ParseSQL(sql, table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteQuery(New(store, table, cfg), q)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res, st
}

// requireSameResult compares two engine results cell by cell. Ints and
// strings must match exactly. Float aggregates are compared with a tight
// relative tolerance: per-chunk conversion is byte-identical (the kernel
// package's differential suite proves that), but chunks are delivered to
// the engine in completion order, so a parallel run's float reduction
// order — and with it the last couple of ULPs of a SUM — depends on
// worker scheduling, on the two-stage path just as much as the fused one.
func requireSameResult(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: rows %d vs %d", label, len(want.Rows), len(got.Rows))
	}
	for ri, wr := range want.Rows {
		gr := got.Rows[ri]
		if len(wr) != len(gr) {
			t.Fatalf("%s: row %d width %d vs %d", label, ri, len(wr), len(gr))
		}
		for ci := range wr {
			w, g := wr[ci], gr[ci]
			if w.Typ != g.Typ || w.Int != g.Int || w.Str != g.Str {
				t.Errorf("%s: row %d col %d: %v vs %v", label, ri, ci, w, g)
				continue
			}
			if diff := math.Abs(w.Float - g.Float); diff > 1e-9*math.Max(1, math.Abs(w.Float)) {
				t.Errorf("%s: row %d col %d: float %v vs %v", label, ri, ci, w.Float, g.Float)
			}
		}
	}
}

// TestFusedMatchesTwoStage runs the same queries through the fused and
// two-stage conversion paths — across sequential (0 workers) and pipeline
// execution, push-down-friendly predicates, and every kernel family — and
// demands identical results.
func TestFusedMatchesTwoStage(t *testing.T) {
	queries := []string{
		"SELECT SUM(a), SUM(b), COUNT(*) FROM data",      // int64 kernels
		"SELECT SUM(f), MIN(f), MAX(f) FROM data",        // float path
		"SELECT COUNT(*) FROM data WHERE b < 0",          // predicate
		"SELECT SUM(a+b) FROM data WHERE s LIKE 'row1%'", // string column
		"SELECT SUM(b) FROM data WHERE a < 100",          // selective subset
	}
	for _, workers := range []int{0, 4} {
		for _, sql := range queries {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, sql), func(t *testing.T) {
				base := Config{Workers: workers, ChunkLines: 64, CacheChunks: 4, Policy: ExternalTables}

				offStore, offTable := mixedEnv(t, 500)
				offCfg := base
				offCfg.FusedKernels = FusedOff
				want, _ := runSQL(t, offStore, offTable, offCfg, sql)

				onStore, onTable := mixedEnv(t, 500)
				got, _ := runSQL(t, onStore, onTable, base, sql)
				requireSameResult(t, sql, want, got)
			})
		}
	}
}

// TestFusedProfileSkipsTokenize pins the accounting rule: under fused
// conversion the TOKENIZE stage never runs (no positional map exists), and
// all conversion time lands on PARSE.
func TestFusedProfileSkipsTokenize(t *testing.T) {
	store, table := mixedEnv(t, 500)
	_, st := runSQL(t, store, table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 4, Policy: ExternalTables},
		"SELECT SUM(a), SUM(f) FROM data")
	if st.Profile.Tokenize.Chunks != 0 || st.Profile.Tokenize.Time != 0 {
		t.Errorf("fused run tokenized: %+v", st.Profile.Tokenize)
	}
	if st.Profile.Parse.Chunks != int64(st.DeliveredRaw) {
		t.Errorf("parse chunks %d, delivered raw %d", st.Profile.Parse.Chunks, st.DeliveredRaw)
	}
}

// TestFusedFallsBackForPositionalMapCache: a query run configured to cache
// positional maps needs the map the fused path never materializes, so the
// operator must silently fall back to two-stage conversion — observable as
// non-zero TOKENIZE activity — and stay correct.
func TestFusedFallsBackForPositionalMapCache(t *testing.T) {
	store, table := mixedEnv(t, 500)
	cfg := Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 4, Policy: ExternalTables,
		CachePositionalMaps: true, PositionalMapCacheChunks: 16,
	}
	res, st := runSQL(t, store, table, cfg, "SELECT SUM(a), SUM(b) FROM data")
	if st.Profile.Tokenize.Chunks == 0 {
		t.Error("positional-map caching must force the two-stage path")
	}
	offStore, offTable := mixedEnv(t, 500)
	offCfg := cfg
	offCfg.FusedKernels = FusedOff
	want, _ := runSQL(t, offStore, offTable, offCfg, "SELECT SUM(a), SUM(b) FROM data")
	requireSameResult(t, "pm-cache fallback", want, res)
}

// TestFusedSpeculativeLoadRoundTrip drives the full load-then-reread
// cycle under fused conversion: chunks converted by a kernel are written
// to the database and must read back identical.
func TestFusedSpeculativeLoadRoundTrip(t *testing.T) {
	store, table := mixedEnv(t, 500)
	cfg := Config{Workers: 2, ChunkLines: 64, CacheChunks: 2, Policy: Speculative, Safeguard: true}
	op := New(store, table, cfg)
	sql := "SELECT SUM(a), SUM(b), SUM(f) FROM data"
	q, err := engine.ParseSQL(sql, table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := ExecuteQuery(op, q)
	if err != nil {
		t.Fatal(err)
	}
	op.WaitIdle()
	// Re-run until everything is served from the cache and the database.
	for i := 0; i < 8; i++ {
		res, st, err := ExecuteQuery(op, q)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("pass %d", i), first, res)
		op.WaitIdle()
		if st.DeliveredRaw == 0 {
			return
		}
	}
	t.Error("speculative loading never converged to zero raw chunks")
}
