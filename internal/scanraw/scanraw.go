// Package scanraw implements SCANRAW, the paper's database physical
// operator for in-situ processing over raw files (§3): a parallel
// super-scalar pipeline whose stages — READ, TOKENIZE, PARSE (with MAP
// folded in), and WRITE — execute as asynchronous goroutines coordinated by
// a scheduler, moving chunks through bounded buffers exactly as in Fig. 2
// of the paper:
//
//	READ → [text chunks buffer] → TOKENIZE → [position buffer] → PARSE →
//	[binary chunks cache] → execution engine
//	                      ↘ WRITE → database
//
// TOKENIZE and PARSE tasks run on a shared worker pool with
// destination-space-gated dispatch (a worker is assigned only when the
// result has somewhere to go, §3.2.1). The WRITE behaviour is a pluggable
// policy: external tables (never write), full load (write everything),
// buffered load (write on cache eviction), invisible loading (a fixed
// number of chunks per query), and the paper's contribution — speculative
// loading (§4), which writes the oldest unloaded cached chunk whenever the
// READ thread is blocked or finished and the disk would otherwise idle,
// plus a safeguard flush of the cache at end of scan.
//
// An Operator is attached to a raw file, not to a query: its binary chunks
// cache, catalog statistics, and profile survive across queries (§3.3), and
// it morphs into a plain database heap scan as chunks get loaded.
package scanraw

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/cache"
	"scanraw/internal/chunk"
	"scanraw/internal/dbstore"
	"scanraw/internal/kernel"
	"scanraw/internal/metrics"
	"scanraw/internal/parse"
	storepkg "scanraw/internal/store"
	"scanraw/internal/tok"
)

// FusedMode selects whether conversion may use the fused per-schema kernels
// of internal/kernel, which collapse TOKENIZE+PARSE into one pass over the
// chunk bytes.
type FusedMode uint8

const (
	// FusedAuto — the default — converts with a fused kernel whenever one
	// is compatible with the query, falling back to the two-stage
	// tok+parse path otherwise (see Operator.fusedKernel for the rules).
	FusedAuto FusedMode = iota
	// FusedOff always uses the two-stage tok+parse path.
	FusedOff
)

// WritePolicy selects the scheduler's WRITE behaviour (§3.1: "The
// scheduling policy for WRITE dictates the SCANRAW behavior").
type WritePolicy uint8

const (
	// ExternalTables never writes: SCANRAW is a parallel external table
	// operator, re-converting raw data on every query.
	ExternalTables WritePolicy = iota
	// FullLoad writes every converted chunk: SCANRAW degenerates into a
	// parallel ETL (query-driven loading) operator.
	FullLoad
	// BufferedLoad writes a chunk when it is evicted from the binary
	// cache, plus a cache flush at end of query — the "buffered loading"
	// comparison method of §5.1.
	BufferedLoad
	// Speculative is the paper's contribution: write only when the disk
	// would otherwise idle, with a safeguard flush at end of scan.
	Speculative
	// Invisible loads a fixed number of chunks per query inline with
	// conversion, even if that slows processing down — the invisible
	// loading baseline [Abouzied et al.].
	Invisible
)

func (p WritePolicy) String() string {
	switch p {
	case ExternalTables:
		return "external-tables"
	case FullLoad:
		return "full-load"
	case BufferedLoad:
		return "buffered-load"
	case Speculative:
		return "speculative"
	case Invisible:
		return "invisible"
	default:
		return fmt.Sprintf("WritePolicy(%d)", uint8(p))
	}
}

// Config parameterizes a SCANRAW instance.
type Config struct {
	// Workers is the worker-pool size for TOKENIZE/PARSE tasks. Zero
	// selects sequential execution: chunks pass through the conversion
	// stages one at a time on the calling goroutine (the paper's
	// "0 worker threads" configuration).
	Workers int
	// ChunkLines is the number of lines per chunk, the unit of reading
	// and processing. The paper finds 2^17–2^19 optimal; default 2^13
	// (scaled with the data sizes used here).
	ChunkLines int
	// TextBufferChunks is the capacity of the text chunks buffer.
	// Default 8.
	TextBufferChunks int
	// PositionBufferChunks is the capacity of the position buffer.
	// Default 8.
	PositionBufferChunks int
	// CacheChunks is the binary chunks cache capacity. Default 32.
	CacheChunks int
	// Policy selects the WRITE behaviour. Default ExternalTables.
	Policy WritePolicy
	// InvisibleChunksPerQuery bounds per-query loading for the Invisible
	// policy. Default 4.
	InvisibleChunksPerQuery int
	// Safeguard enables the end-of-scan cache flush for Speculative and
	// BufferedLoad (§4, "safeguard mechanism").
	Safeguard bool
	// Delim is the field delimiter. Default ','.
	Delim byte
	// CollectStats records per-chunk min/max statistics in the catalog
	// while converting (§3.3). Default off.
	CollectStats bool
	// ReadBlockBytes is the disk-read granularity during discovery scans.
	// Default 256 KiB.
	ReadBlockBytes int
	// UnbiasedCache disables the LRU bias toward loaded chunks (ablation).
	UnbiasedCache bool
	// AdaptiveWorkers lets the operator resize its worker pool across
	// queries based on observed utilization (paper §3.3, resource
	// management): READ blocked on a full buffer means CPU-bound — grow;
	// READ never blocked means I/O-bound — shrink. Workers stays the
	// initial size; the pool moves within [MinWorkers, MaxWorkers].
	AdaptiveWorkers bool
	// MinWorkers / MaxWorkers bound the adaptive pool. Defaults 1 and
	// 4x Workers.
	MinWorkers int
	MaxWorkers int
	// CachePositionalMaps caches the positional maps TOKENIZE produces so
	// a later query over the same chunk skips tokenizing (the NoDB-style
	// optimization of §2). The paper argues this matters little for
	// SCANRAW — it cannot avoid reading or parsing, and the memory is
	// better spent on binary chunks — which the ablation benchmark
	// confirms; it is off by default. The cache is bounded to
	// PositionalMapCacheChunks entries.
	CachePositionalMaps bool
	// PositionalMapCacheChunks bounds the positional-map cache.
	// Default 64.
	PositionalMapCacheChunks int
	// CPUSlowdown simulates slower cores: every TOKENIZE/PARSE/CONSUME
	// task occupies its worker for CPUSlowdown times its measured duration
	// (the real conversion plus a sleep for the remainder). Values <= 1
	// disable it. This is how experiments observe worker-count scaling on
	// hosts with fewer cores than the paper's 16: sleeps overlap across
	// goroutines regardless of core count, so the pipeline's concurrency
	// behaves as if each worker had its own (slow) core, in the same
	// model-time units the simulated disk uses.
	CPUSlowdown int
	// ConsumeWorkers is the default consume parallelism for requests that
	// leave ParallelConsume unset: the number of goroutines delivered
	// chunks fan out to. The default (0, treated as 1) keeps the classic
	// serial delivery contract; values > 1 require Deliver callbacks that
	// tolerate concurrent calls (engine.ParallelExecutor does).
	ConsumeWorkers int
	// FusedKernels selects the fused single-pass conversion kernels
	// (internal/kernel). FusedAuto — the zero value, so fused conversion
	// is on by default — falls back to tok+parse automatically whenever
	// the query needs a cacheable positional map (CachePositionalMaps).
	FusedKernels FusedMode
	// Speculation ranks what the Speculative write policy loads during
	// disk-idle windows. SpecScan — the zero value — is the paper's
	// oldest-first order; SpecPayoff is workload-driven and needs
	// ColumnWeights.
	Speculation SpecPolicy
	// ColumnWeights, when non-nil, supplies the current per-column workload
	// weights (one per schema ordinal) for SpecPayoff ranking. It is called
	// on every speculation quantum and must be safe for concurrent use. A
	// nil func, a wrong-width slice, or all-zero weights fall back to scan
	// order (the cold-workload fallback).
	ColumnWeights func() []float64
}

func (c Config) withDefaults() Config {
	if c.ChunkLines <= 0 {
		c.ChunkLines = 1 << 13
	}
	if c.TextBufferChunks <= 0 {
		c.TextBufferChunks = 4
	}
	if c.PositionBufferChunks <= 0 {
		c.PositionBufferChunks = 4
	}
	if c.CacheChunks <= 0 {
		c.CacheChunks = 32
	}
	if c.InvisibleChunksPerQuery <= 0 {
		c.InvisibleChunksPerQuery = 4
	}
	if c.Delim == 0 {
		c.Delim = ','
	}
	if c.ReadBlockBytes <= 0 {
		c.ReadBlockBytes = 256 << 10
	}
	if c.PositionalMapCacheChunks <= 0 {
		c.PositionalMapCacheChunks = 64
	}
	if c.AdaptiveWorkers {
		if c.MinWorkers <= 0 {
			c.MinWorkers = 1
		}
		if c.MaxWorkers <= 0 {
			c.MaxWorkers = 4 * c.Workers
		}
		if c.MaxWorkers < c.MinWorkers {
			c.MaxWorkers = c.MinWorkers
		}
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	return c
}

// StageProfile accumulates time and chunk counts for one pipeline stage.
type StageProfile struct {
	Time   time.Duration
	Chunks int64
}

// PerChunk returns the average stage time per chunk.
func (s StageProfile) PerChunk() time.Duration {
	if s.Chunks == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Chunks)
}

// Profile holds per-stage accumulators (the paper's Fig. 5 measurement).
// Consume is the engine-side evaluation time of delivered chunks — the
// stage the parallel delivery mode spreads across workers. ConsumeStall is
// the time the delivery producer spent waiting for a free consume worker
// / (Chunks counts fan-out hand-offs): the backpressure signal that tells the
// resource manager the consume stage, not conversion, is the bottleneck.
type Profile struct {
	Read         StageProfile
	Tokenize     StageProfile
	Parse        StageProfile
	Write        StageProfile
	Consume      StageProfile
	ConsumeStall StageProfile
}

// Sub returns p - o, for per-run deltas.
func (p Profile) Sub(o Profile) Profile {
	return Profile{
		Read:         StageProfile{p.Read.Time - o.Read.Time, p.Read.Chunks - o.Read.Chunks},
		Tokenize:     StageProfile{p.Tokenize.Time - o.Tokenize.Time, p.Tokenize.Chunks - o.Tokenize.Chunks},
		Parse:        StageProfile{p.Parse.Time - o.Parse.Time, p.Parse.Chunks - o.Parse.Chunks},
		Write:        StageProfile{p.Write.Time - o.Write.Time, p.Write.Chunks - o.Write.Chunks},
		Consume:      StageProfile{p.Consume.Time - o.Consume.Time, p.Consume.Chunks - o.Consume.Chunks},
		ConsumeStall: StageProfile{p.ConsumeStall.Time - o.ConsumeStall.Time, p.ConsumeStall.Chunks - o.ConsumeStall.Chunks},
	}
}

type profCounters struct {
	readNs, tokNs, parseNs, writeNs, consumeNs, consumeStallNs atomic.Int64
	readChunks, tokChunks, parseChunks, writeCh, consumeChunks atomic.Int64
	consumeStallCh                                             atomic.Int64
}

func (pc *profCounters) snapshot() Profile {
	return Profile{
		Read:         StageProfile{time.Duration(pc.readNs.Load()), pc.readChunks.Load()},
		Tokenize:     StageProfile{time.Duration(pc.tokNs.Load()), pc.tokChunks.Load()},
		Parse:        StageProfile{time.Duration(pc.parseNs.Load()), pc.parseChunks.Load()},
		Write:        StageProfile{time.Duration(pc.writeNs.Load()), pc.writeCh.Load()},
		Consume:      StageProfile{time.Duration(pc.consumeNs.Load()), pc.consumeChunks.Load()},
		ConsumeStall: StageProfile{time.Duration(pc.consumeStallNs.Load()), pc.consumeStallCh.Load()},
	}
}

// RunStats summarizes one query execution through the operator.
type RunStats struct {
	// Duration is the wall-clock time of the Run call.
	Duration time.Duration
	// DeliveredCache/DB/Raw count chunks delivered to the engine by
	// source: the binary cache, the database, or raw-file conversion.
	DeliveredCache int
	DeliveredDB    int
	DeliveredRaw   int
	// DeliveredPartial counts partial-width hits: chunks served by reading
	// their loaded column groups from the database and converting only the
	// missing groups from raw.
	DeliveredPartial int
	// SkippedChunks counts chunks excluded by min/max statistics.
	SkippedChunks int
	// WrittenDuringRun counts chunks loaded into the database while the
	// query executed (speculative/full/buffered/invisible writes).
	WrittenDuringRun int
	// GroupWritesDuringRun counts single column-group page writes issued by
	// the payoff-ranked speculative scheduler (SpecPayoff quanta).
	GroupWritesDuringRun int
	// FlushedAfterRun counts chunks queued for the safeguard flush that
	// runs after delivery completes (its writes overlap the next query's
	// cached-chunk processing, §4).
	FlushedAfterRun int
	// WorkersUsed is the pool size this run executed with (it varies
	// across queries under AdaptiveWorkers).
	WorkersUsed int
	// DiskReadBytes and DiskWriteBytes are the disk transfer totals during
	// the run. The disk is shared, so a previous query's in-flight
	// safeguard flush is attributed to the run that overlaps it.
	DiskReadBytes  int64
	DiskWriteBytes int64
	// ReadBlocked is the time READ spent blocked on a full text buffer —
	// the CPU-bound signal of §3.3.
	ReadBlocked time.Duration
	// TerminatedEarly reports that the run stopped before end-of-file
	// because the request's Satisfied signal fired (demand-driven
	// termination). ChunksSaved is how many known chunks were neither
	// delivered nor statistics-skipped as a result; undiscovered chunks of
	// an incompletely scanned file are not counted.
	TerminatedEarly bool
	ChunksSaved     int
	// Profile is the per-stage time delta for this run.
	Profile Profile
}

// Delivered returns the total chunks delivered to the engine.
func (s RunStats) Delivered() int {
	return s.DeliveredCache + s.DeliveredDB + s.DeliveredRaw + s.DeliveredPartial
}

// Operator is a SCANRAW instance attached to one raw file. It is created
// once and reused by every query over that file; Run is not safe for
// concurrent calls (multi-query processing is the paper's future work).
type Operator struct {
	cfg Config
	// workers is the current pool size; it differs from cfg.Workers when
	// AdaptiveWorkers resizes the pool across queries. Guarded by runMu.
	workers int

	store  *dbstore.Store
	table  *dbstore.Table
	disk   storepkg.Disk
	tk     tok.Tokenizer
	parser parse.Parser
	cache  *cache.Cache
	cpu    *metrics.BusyCounter

	// pmCache holds positional maps across queries when
	// CachePositionalMaps is on. Offsets stay valid because chunk extents
	// are fixed once discovered.
	pmMu    sync.Mutex
	pmCache map[int]*chunk.PositionalMap

	prof profCounters

	// arbiter serializes READ and WRITE disk access at the scheduling
	// level (§3.2.1: "SCANRAW has to enforce that only one of READ or
	// WRITE accesses the disk at any particular instant").
	arbiter sync.Mutex

	// flushWG tracks the background safeguard flush; the next query's
	// disk reads wait for it (§4: "only the reading of new chunks has to
	// be delayed until flushing the cache is over").
	flushWG    sync.WaitGroup
	flushErrMu sync.Mutex
	flushErr   error

	runMu sync.Mutex // one query at a time
}

// New creates a SCANRAW operator for the table's raw file.
func New(store *dbstore.Store, table *dbstore.Table, cfg Config) *Operator {
	cfg = cfg.withDefaults()
	var ch *cache.Cache
	if cfg.UnbiasedCache {
		ch = cache.NewUnbiased(cfg.CacheChunks)
	} else {
		ch = cache.New(cfg.CacheChunks)
	}
	op := &Operator{
		cfg:     cfg,
		workers: cfg.Workers,
		store:   store,
		table:   table,
		disk:    store.Disk(),
		tk:      tok.Tokenizer{Delim: cfg.Delim, MinFields: table.Schema().NumColumns()},
		parser:  parse.Parser{Schema: table.Schema()},
		cache:   ch,
		cpu:     &metrics.BusyCounter{},
	}
	if cfg.CachePositionalMaps {
		op.pmCache = make(map[int]*chunk.PositionalMap)
	}
	return op
}

// cachedMap returns a cached positional map for chunk id: complete when it
// already covers upTo columns, or partial otherwise (the caller extends a
// copy — cached maps are shared across goroutines and must not be mutated).
func (o *Operator) cachedMap(id, upTo int) (pm *chunk.PositionalMap, complete bool) {
	if o.pmCache == nil {
		return nil, false
	}
	o.pmMu.Lock()
	defer o.pmMu.Unlock()
	if pm, ok := o.pmCache[id]; ok {
		return pm, pm.NumCols >= upTo
	}
	return nil, false
}

// cloneMap deep-copies a positional map so it can be extended privately.
func cloneMap(pm *chunk.PositionalMap) *chunk.PositionalMap {
	return &chunk.PositionalMap{
		NumRows: pm.NumRows,
		NumCols: pm.NumCols,
		Starts:  append([]int32(nil), pm.Starts...),
		Ends:    append([]int32(nil), pm.Ends...),
		LineEnd: append([]int32(nil), pm.LineEnd...),
	}
}

// storeMap caches a positional map, respecting the size bound (new entries
// are dropped once the cache is full — the bound protects binary-cache
// memory, which the paper prioritizes).
func (o *Operator) storeMap(id int, pm *chunk.PositionalMap) {
	if o.pmCache == nil {
		return
	}
	o.pmMu.Lock()
	defer o.pmMu.Unlock()
	if _, ok := o.pmCache[id]; ok || len(o.pmCache) < o.cfg.PositionalMapCacheChunks {
		o.pmCache[id] = pm
	}
}

// releaseMap recycles a positional map once PARSE is done with it — unless
// the map is the instance retained by the positional-map cache, whose
// offsets later queries will read.
func (o *Operator) releaseMap(id int, pm *chunk.PositionalMap) {
	if o.pmCache != nil {
		o.pmMu.Lock()
		retained := o.pmCache[id] == pm
		o.pmMu.Unlock()
		if retained {
			//lint:ignore poolpair the pm cache retains this instance; later queries read its offsets
			return
		}
	}
	chunk.PutPositionalMap(pm)
}

// tokenizeChunk runs TOKENIZE for one chunk on the given worker slot,
// consulting the positional-map cache when enabled. A complete cached map
// skips the scan entirely; a partial one is extended from its last
// recorded positions (§2, "find the position of the closest attribute
// already in the map and scan forward from there") — cheaper than
// re-tokenizing because the already-mapped prefix is not re-scanned.
func (o *Operator) tokenizeChunk(slot *workerSlot, tc *chunk.TextChunk, upTo int) (*chunk.PositionalMap, error) {
	cached, complete := o.cachedMap(tc.ID, upTo)
	if complete {
		o.prof.tokChunks.Add(1)
		return cached, nil
	}
	var pm *chunk.PositionalMap
	var err error
	d := o.cpuWork(slot, func() {
		// Extending skips the already-mapped prefix but costs more per
		// scanned byte than the straight-line tokenizer, so it only wins
		// when the cached map covers a substantial share of the target.
		if cached != nil && cached.NumCols*2 >= upTo {
			pm = cloneMap(cached)
			err = o.tk.Extend(tc, pm, upTo)
		} else {
			pm, err = o.tk.Tokenize(tc, upTo)
		}
	})
	o.prof.tokNs.Add(int64(d))
	if err != nil {
		return nil, err
	}
	o.prof.tokChunks.Add(1)
	o.storeMap(tc.ID, pm)
	return pm, nil
}

// fusedKernel returns the fused conversion kernel for the requested column
// set, or nil when conversion must run the two-stage tok+parse path:
//
//   - FusedKernels is FusedOff (the -fused=false escape hatch), or
//   - the positional-map cache is enabled. A fused kernel never
//     materializes the positional map, so there would be nothing to cache
//     — and a later query widening a cached partial map (tok.Extend)
//     needs the tok path's bookkeeping. The two optimizations target the
//     same redundant work; the explicit cache wins when it is on.
//
// The kernel registry always has a generic fused fallback, so selection
// only fails on requests the operator would itself reject.
func (o *Operator) fusedKernel(cols []int) *kernel.Kernel {
	if o.cfg.FusedKernels == FusedOff || o.pmCache != nil {
		return nil
	}
	k, err := kernel.For(o.table.Schema(), cols, o.cfg.Delim)
	if err != nil {
		return nil
	}
	return k
}

// Config returns the operator's effective configuration.
func (o *Operator) Config() Config { return o.cfg }

// Table returns the catalog table the operator feeds.
func (o *Operator) Table() *dbstore.Table { return o.table }

// Cache returns the operator's binary chunks cache.
func (o *Operator) Cache() *cache.Cache { return o.cache }

// CPU returns the worker busy-time counter (for resource-utilization
// tracing).
func (o *Operator) CPU() *metrics.BusyCounter { return o.cpu }

// ProfileSnapshot returns cumulative per-stage accounting.
func (o *Operator) ProfileSnapshot() Profile { return o.prof.snapshot() }

// WaitIdle blocks until any background safeguard flush completes. Intended
// for experiments that measure the amount of loaded data.
func (o *Operator) WaitIdle() { o.flushWG.Wait() }

// ChunkRange restricts a request to the chunks with Lo <= ID < Hi. Hi <= 0
// means unbounded above (to the end of the file). Ranges are what lets a
// fleet shard one logical table across peers: each worker scans only its
// assigned slice of the chunk ID space, and the coordinator stitches the
// slices back together in global chunk order.
type ChunkRange struct {
	Lo int
	Hi int
}

// Contains reports whether the range (nil = unrestricted) includes id.
func (r *ChunkRange) Contains(id int) bool {
	if r == nil {
		return true
	}
	return id >= r.Lo && (r.Hi <= 0 || id < r.Hi)
}

// start returns the first in-range chunk ID (0 for a nil range).
func (r *ChunkRange) start() int {
	if r == nil {
		return 0
	}
	return r.Lo
}

// Request describes one query execution over the operator's raw file.
type Request struct {
	// Columns lists the schema ordinals the query needs (selective
	// tokenizing/parsing). Must be non-empty and sorted ascending.
	Columns []int
	// Deliver receives every chunk exactly once. With an effective
	// consume parallelism of 1 (see ParallelConsume) it is called from a
	// single goroutine; with parallelism N > 1 it may be called from up
	// to N goroutines concurrently and must be safe for that.
	Deliver func(bc *BinaryChunk) error
	// Skip, when non-nil, is consulted for chunks with known metadata;
	// returning true skips the chunk entirely (min/max chunk elimination,
	// §3.3). Skipped chunks are not delivered. Skip may be consulted more
	// than once per chunk and must answer consistently enough for that —
	// in particular a skip decision, like Satisfied, must not flip back.
	Skip func(meta *dbstore.ChunkMeta) bool
	// Satisfied, when non-nil, is polled at chunk boundaries; once it
	// returns true the run stops issuing new chunks: READ exits, queued
	// conversion work is dropped, and in-flight chunks drain (already
	// converted chunks still enter the cache, so the safeguard flush keeps
	// the zero-cost speculative-loading guarantee). The signal must be
	// monotonic — true once means true forever — because stages poll it
	// racily. Chunks may still be delivered after it fires; a satisfied
	// consumer simply ignores them.
	Satisfied func() bool
	// ParallelConsume is the number of consume workers delivered chunks
	// fan out to. 0 falls back to Config.ConsumeWorkers; values <= 1
	// select the classic serial delivery path.
	ParallelConsume int
	// Range, when non-nil, restricts the scan to chunks with
	// Range.Lo <= ID < Range.Hi (Hi <= 0 = to end of file). Chunks outside
	// the range are neither delivered, skipped, nor counted: they are
	// outside this request's universe entirely. Known out-of-range chunks
	// are jumped over without reading; unknown ones are still discovered
	// (the byte stream must be carved to find the next boundary) but their
	// text is dropped before conversion.
	Range *ChunkRange
	// Order, when non-nil, replaces the file-order walk with an explicit
	// visit order: once chunk discovery is complete the callback receives
	// the total chunk count and must return a permutation of [0, n) — the
	// online-aggregation sampler returns a seeded random permutation so
	// every scan prefix is a uniform chunk sample. Ordered scans skip the
	// cached-first delivery phase (delivery order IS the contract), read
	// loaded chunks from the database and the rest from their raw extents,
	// and still honour Skip, Satisfied, and the safeguard flush. On a table
	// whose discovery is incomplete the operator first carves the remaining
	// chunk boundaries in one sequential pass (the unavoidable cost of
	// uniform sampling over an undiscovered byte stream). Order and Range
	// are mutually exclusive.
	Order func(numChunks int) []int
}

// BinaryChunk is re-exported so operator users do not need to import the
// chunk package for the common case.
type BinaryChunk = chunk.BinaryChunk

// workerSlot is one worker thread of the pool. It carries the simulated
// CPU's pacing debt: un-slept stretch time that accumulates until it is
// worth one sleep (time.Sleep has a ~1ms floor on many kernels; paying the
// stretch in aggregate keeps model time accurate without per-task jitter).
type workerSlot struct {
	debt time.Duration
}

// cpuSleepThreshold is the smallest pacing debt worth sleeping for.
const cpuSleepThreshold = 2 * time.Millisecond

// cpuPaySlice caps how much pacing debt one sleep pays, so the busy
// counter advances in small increments and utilization traces stay smooth.
const cpuPaySlice = 4 * time.Millisecond

// cpuWork runs fn on the given worker slot, stretching its duration by the
// CPUSlowdown factor via the slot's pacing debt, and accounts the busy
// time incrementally on the operator's CPU counter. It returns the nominal
// model-time duration of the task (real time x factor), which is what the
// profiles report.
func (o *Operator) cpuWork(slot *workerSlot, fn func()) time.Duration {
	start := time.Now()
	fn()
	real := time.Since(start)
	o.cpu.Add(real)
	f := o.cfg.CPUSlowdown
	if f <= 1 {
		return real
	}
	nominal := real * time.Duration(f)
	slot.debt += nominal - real
	for slot.debt >= cpuSleepThreshold {
		q := slot.debt
		if q > cpuPaySlice {
			q = cpuPaySlice
		}
		s := time.Now()
		time.Sleep(q)
		o.cpu.Add(q)
		slot.debt -= time.Since(s)
	}
	return nominal
}

// writeChunk stores the chunk's present columns into the database through
// the disk arbiter and marks catalog and cache state.
func (o *Operator) writeChunk(bc *BinaryChunk) error {
	o.arbiter.Lock()
	start := time.Now()
	err := o.store.WriteChunk(o.table, bc)
	o.prof.writeNs.Add(int64(time.Since(start)))
	o.arbiter.Unlock()
	if err != nil {
		return err
	}
	o.prof.writeCh.Add(1)
	o.cache.MarkLoaded(bc.ID)
	return nil
}

// writeChunkGroup stores one column group of a cached chunk through the
// disk arbiter — the payoff scheduler's write quantum. The cache entry is
// marked loaded only once the catalog covers every column the entry holds,
// so the safeguard flush still writes whatever groups remain.
func (o *Operator) writeChunkGroup(bc *BinaryChunk, cols []int) error {
	o.arbiter.Lock()
	start := time.Now()
	err := o.store.WriteChunkColumns(o.table, bc, cols)
	o.prof.writeNs.Add(int64(time.Since(start)))
	o.arbiter.Unlock()
	if err != nil {
		return err
	}
	if meta, ok := o.table.Chunk(bc.ID); ok && meta.LoadedAll(bc.Present()) {
		o.cache.MarkLoaded(bc.ID)
	}
	return nil
}
