package scanraw

import (
	"strings"
	"testing"
)

func TestOrderAndRangeMutuallyExclusive(t *testing.T) {
	env := newEnv(t, 128, 2, nil)
	op := New(env.store, env.table, Config{ChunkLines: 64})
	_, err := op.Run(Request{
		Columns: []int{0},
		Range:   &ChunkRange{Lo: 0, Hi: 1},
		Order:   func(n int) []int { return revPerm(n) },
		Deliver: func(bc *BinaryChunk) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Order+Range err = %v", err)
	}
}

// revPerm is a tiny deterministic visit order (the real sampler lives in
// internal/ola, which imports this package).
func revPerm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func TestOrderMustBeValidPermutation(t *testing.T) {
	cases := []struct {
		name  string
		order func(n int) []int
	}{
		{"short", func(n int) []int { return make([]int, 0) }},
		{"out-of-range", func(n int) []int {
			out := revPerm(n)
			out[0] = n
			return out
		}},
		{"duplicate", func(n int) []int {
			out := revPerm(n)
			out[0] = out[1]
			return out
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			env := newEnv(t, 256, 2, nil)
			op := New(env.store, env.table, Config{ChunkLines: 64, Workers: 2})
			_, err := op.Run(Request{
				Columns: []int{0},
				Order:   c.order,
				Deliver: func(bc *BinaryChunk) error { return nil },
			})
			if err == nil || !strings.Contains(err.Error(), "visit order") {
				t.Fatalf("%s: err = %v", c.name, err)
			}
		})
	}
}

// TestOrderedScanVisitsInOrder drives a reverse-order scan through both
// execution modes. Sequential execution delivers strictly in the visit
// order; the pipeline issues chunks in visit order but delivers in
// conversion-completion order (consumers reorder, as the server's
// chunk-ID reorder buffer does), so there only coverage is asserted.
func TestOrderedScanVisitsInOrder(t *testing.T) {
	for _, workers := range []int{0, 3} {
		env := newEnv(t, 512, 2, nil)
		op := New(env.store, env.table, Config{ChunkLines: 64, Workers: workers, CacheChunks: 4})
		var got []int
		_, err := op.Run(Request{
			Columns: []int{0},
			Order:   func(n int) []int { return revPerm(n) },
			Deliver: func(bc *BinaryChunk) error {
				got = append(got, bc.ID)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := revPerm(env.table.NumChunks())
		if len(got) != len(want) {
			t.Fatalf("workers=%d: delivered %d chunks, want %d", workers, len(got), len(want))
		}
		if workers == 0 {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delivery order %v, want %v", got, want)
				}
			}
		} else {
			seen := map[int]bool{}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("chunk %d delivered twice: %v", id, got)
				}
				seen[id] = true
			}
		}
		if !env.table.Complete() {
			t.Errorf("workers=%d: ordered scan must complete discovery first", workers)
		}
	}
}

func TestSharedScanRejectsMultiMemberOrder(t *testing.T) {
	env := newEnv(t, 128, 2, nil)
	op := New(env.store, env.table, Config{ChunkLines: 64})
	mk := func(order func(int) []int) Request {
		return Request{
			Columns: []int{0},
			Order:   order,
			Deliver: func(bc *BinaryChunk) error { return nil },
		}
	}
	_, _, err := op.RunShared([]Request{mk(func(n int) []int { return revPerm(n) }), mk(nil)})
	if err == nil || !strings.Contains(err.Error(), "cannot share") {
		t.Fatalf("multi-member ordered share err = %v", err)
	}
	// A solo ordered member passes through.
	if _, _, err := op.RunShared([]Request{mk(func(n int) []int { return revPerm(n) })}); err != nil {
		t.Fatalf("solo ordered share: %v", err)
	}
}
