package scanraw

import (
	"sync/atomic"
	"time"
)

// Resource management (paper §3.3): "SCANRAW resources are allocated
// dynamically at runtime by the database resource manager ... The
// scheduler is in the best position to monitor resource utilization since
// it manages the allocation of worker threads from the pool and inspects
// buffer utilization. These data are relayed to the database resource
// manager as requests for additional resources or are used to determine
// when to release resources."
//
// The signals are the ones the paper names:
//
//   - CPU-bound: "if the scheduler assigns all the worker threads in the
//     pool for task execution but the text chunks buffer is still full —
//     SCANRAW is CPU-bound — additional CPUs are needed in order to cope
//     with the I/O throughput." We observe this as the fraction of the
//     run's wall-clock the READ thread spent blocked on a full buffer.
//   - I/O-bound: READ is (almost) never blocked, so workers idle; the
//     pool can shrink and the cores go back to the resource manager.
//   - Consume-bound: conversion outruns the execution engine — the delivery
//     producer stalls waiting for a free consume worker and chunks pile up
//     in the binary buffer. More conversion workers cannot help (the
//     bottleneck is downstream), so the pool shrinks and the freed cores go
//     where the resource manager can use them.

// ResourceReport is the utilization summary one Run relays to the
// resource manager.
type ResourceReport struct {
	// Workers is the pool size the run executed with.
	Workers int
	// ReadBlocked is the total time READ spent blocked on a full text
	// chunks buffer.
	ReadBlocked time.Duration
	// Duration is the run wall-clock time.
	Duration time.Duration
	// ConsumeStall is the total time the delivery producer spent waiting
	// for a free consume worker (fan-out consume only).
	ConsumeStall time.Duration
	// ConsumeQueueDepth is the average number of converted chunks queued in
	// front of the consume stage, sampled at each delivery; ConsumeQueueCap
	// is the queue's capacity (the binary-buffer budget). Zero cap means no
	// samples were taken.
	ConsumeQueueDepth float64
	ConsumeQueueCap   int
}

// BlockedFraction is ReadBlocked over Duration, clamped to [0,1].
func (r ResourceReport) BlockedFraction() float64 {
	if r.Duration <= 0 {
		return 0
	}
	f := float64(r.ReadBlocked) / float64(r.Duration)
	if f > 1 {
		f = 1
	}
	return f
}

// ConsumeStallFraction is ConsumeStall over Duration, clamped to [0,1].
func (r ResourceReport) ConsumeStallFraction() float64 {
	if r.Duration <= 0 {
		return 0
	}
	f := float64(r.ConsumeStall) / float64(r.Duration)
	if f > 1 {
		f = 1
	}
	return f
}

// ConsumeBound reports whether the run's bottleneck was the consume stage:
// the delivery producer stalled for a significant share of the run, or the
// consume queue stayed mostly full. Either way, converted chunks were
// waiting on the engine — adding conversion workers cannot speed the run up.
func (r ResourceReport) ConsumeBound() bool {
	if r.ConsumeStallFraction() > consumeStallAbove {
		return true
	}
	return r.ConsumeQueueCap > 0 &&
		r.ConsumeQueueDepth > consumeDepthAbove*float64(r.ConsumeQueueCap)
}

// Thresholds for the adaptation heuristic: grow the pool when READ was
// blocked for more than growAbove of the run, shrink it when less than
// shrinkBelow. The consume-bound signals override the READ-blocked ones —
// a consume bottleneck also blocks READ (back-pressure through the full
// binary buffer), and growing the pool on that signal would be exactly
// wrong.
const (
	growAbove         = 0.25
	shrinkBelow       = 0.02
	consumeStallAbove = 0.25
	consumeDepthAbove = 0.75
)

// adaptWorkers adjusts the pool size for the next run based on the
// report. It is called under runMu, so plain reads/writes of workers are
// safe.
func (o *Operator) adaptWorkers(rep ResourceReport) {
	if !o.cfg.AdaptiveWorkers || rep.Workers == 0 {
		return
	}
	min, max := o.cfg.MinWorkers, o.cfg.MaxWorkers
	next := rep.Workers
	switch f := rep.BlockedFraction(); {
	case rep.ConsumeBound():
		// Consume-bound: the engine, not conversion, is the bottleneck.
		// Shrink so the freed cores can serve parallel consume elsewhere.
		if rep.Workers > min {
			next = rep.Workers - 1
		}
	case f > growAbove:
		// CPU-bound: request more cores, doubling toward the cap so a
		// badly undersized pool converges in a few queries.
		next = rep.Workers * 2
	case f < shrinkBelow && rep.Workers > min:
		// I/O-bound: release a core back to the resource manager.
		next = rep.Workers - 1
	}
	if next > max {
		next = max
	}
	if next < min {
		next = min
	}
	o.workers = next
}

// Workers returns the current worker-pool size (it changes across queries
// when AdaptiveWorkers is enabled).
func (o *Operator) Workers() int {
	o.runMu.Lock()
	defer o.runMu.Unlock()
	return o.workers
}

// blockedTimer accumulates READ-blocked time for one run.
type blockedTimer struct {
	ns atomic.Int64
}

func (b *blockedTimer) add(d time.Duration) {
	if d > 0 {
		b.ns.Add(int64(d))
	}
}

func (b *blockedTimer) total() time.Duration { return time.Duration(b.ns.Load()) }
