package scanraw

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

func TestLimitTrackerFrontier(t *testing.T) {
	tr := newLimitTracker(10)
	// Out-of-order chunks beyond the frontier don't satisfy on their own,
	// even with plenty of matching rows.
	tr.record(3, 100)
	tr.record(1, 100)
	if tr.satisfied() {
		t.Fatal("satisfied without chunk 0 accounted")
	}
	// Closing the gap advances the frontier past everything recorded.
	tr.record(0, 4)
	if !tr.satisfied() {
		t.Fatal("frontier 0..1 holds 104 rows, want satisfied")
	}
	// A tracker that needs more rows keeps waiting on the contiguous prefix.
	tr = newLimitTracker(10)
	tr.record(0, 3)
	tr.record(1, 3)
	if tr.satisfied() {
		t.Fatal("6 < 10 rows, must not be satisfied")
	}
	tr.record(1, 50) // duplicate records are ignored
	if tr.satisfied() {
		t.Fatal("duplicate record must not add rows")
	}
	tr.record(2, 4)
	if !tr.satisfied() {
		t.Fatal("0+1+2 hold 10 rows, want satisfied")
	}
}

func TestNewDemandShapes(t *testing.T) {
	sch := schema.MustNew(
		schema.Column{Name: "c0", Type: schema.Int64},
		schema.Column{Name: "c1", Type: schema.Str},
	)
	parse := func(sql string) *engine.Query {
		q, err := engine.ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return q
	}
	ex, err := engine.NewExecutor(parse("SELECT c0 FROM data ORDER BY c0 LIMIT 5"), sch)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sql         string
		wantDemand  bool
		wantSatisfy bool // whole-scan termination signal
	}{
		{"SELECT c0 FROM data LIMIT 5", true, true},
		{"SELECT c0 FROM data", false, false},
		{"SELECT SUM(c0) FROM data", false, false},
		{"SELECT COUNT(*) FROM data LIMIT 5", false, false},
		{"SELECT c0 FROM data ORDER BY c0 LIMIT 5", true, false},
		{"SELECT c1 FROM data ORDER BY c1 LIMIT 5", false, false}, // string sort key: no stats pruning
	}
	for _, c := range cases {
		q := parse(c.sql)
		dem := NewDemand(q, ex)
		if (dem != nil) != c.wantDemand {
			t.Errorf("%s: demand = %v, want %v", c.sql, dem != nil, c.wantDemand)
		}
		if (dem.SatisfiedFn() != nil) != c.wantSatisfy {
			t.Errorf("%s: satisfied signal = %v, want %v", c.sql, dem.SatisfiedFn() != nil, c.wantSatisfy)
		}
		if HasTerminationProfile(q) != c.wantSatisfy {
			t.Errorf("%s: HasTerminationProfile = %v, want %v", c.sql, HasTerminationProfile(q), c.wantSatisfy)
		}
	}
}

// execSQL parses and runs one query through the operator.
func execSQL(t *testing.T, op *Operator, sql string) (*engine.Result, RunStats) {
	t.Helper()
	q, err := engine.ParseSQL(sql, op.Table().Schema())
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	res, st, err := ExecuteQuery(op, q)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res, st
}

// limitReference computes the expected rows for a query ending in
// " LIMIT k": the same query without the LIMIT, run to end-of-file on a
// fresh operator, truncated to k rows. Both row orders are canonical
// ((chunk, row) provenance, or the ORDER BY keys with that tiebreak), so
// truncation is exactly what LIMIT must produce.
func limitReference(t *testing.T, rows, cols int, sql string, k int) [][]engine.Value {
	t.Helper()
	env := newEnv(t, rows, cols, nil)
	op := New(env.store, env.table, Config{
		Workers: 4, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables,
	})
	full := strings.Replace(sql, fmt.Sprintf(" LIMIT %d", k), "", 1)
	if full == sql {
		t.Fatalf("query %q has no LIMIT %d to strip", sql, k)
	}
	res, _ := execSQL(t, op, full)
	if len(res.Rows) < k {
		t.Fatalf("reference for %q has %d rows, need >= %d", sql, len(res.Rows), k)
	}
	return res.Rows[:k]
}

// TestLimitDifferential proves early termination changes nothing but the
// amount of work: for LIMIT and ORDER BY ... LIMIT queries, the
// demand-driven paths (pipelined, sequential, parallel-consume, and a
// second run over a warm cache) return exactly the full scan's truncated
// result.
func TestLimitDifferential(t *testing.T) {
	const rows, cols, k = 4096, 4, 10
	queries := []string{
		fmt.Sprintf("SELECT c0, c1 FROM data LIMIT %d", k),
		fmt.Sprintf("SELECT c0, c1 FROM data WHERE c2 < 500 LIMIT %d", k),
		fmt.Sprintf("SELECT c0, c1 FROM data ORDER BY c0 LIMIT %d", k),
		fmt.Sprintf("SELECT c0, c1 FROM data ORDER BY c0 DESC LIMIT %d", k),
	}
	refs := make([][][]engine.Value, len(queries))
	for i, sql := range queries {
		refs[i] = limitReference(t, rows, cols, sql, k)
	}

	cases := []struct {
		name string
		cfg  Config
		runs int // > 1 exercises the warm binary cache
	}{
		{"pipeline", Config{Workers: 4, ChunkLines: 64, CacheChunks: 8,
			Policy: ExternalTables, CollectStats: true}, 1},
		{"sequential", Config{Workers: 0, ChunkLines: 64, CacheChunks: 8,
			Policy: ExternalTables, CollectStats: true}, 1},
		{"parallel-consume", Config{Workers: 4, ChunkLines: 64, CacheChunks: 8,
			Policy: ExternalTables, ConsumeWorkers: 4}, 1},
		{"cached", Config{Workers: 4, ChunkLines: 64, CacheChunks: 16,
			Policy: ExternalTables, CollectStats: true}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			env := newEnv(t, rows, cols, nil)
			op := New(env.store, env.table, c.cfg)
			for i, sql := range queries {
				for run := 0; run < c.runs; run++ {
					res, st := execSQL(t, op, sql)
					if !reflect.DeepEqual(res.Rows, refs[i]) {
						t.Errorf("%s (run %d): rows differ from truncated full scan\ngot:  %v\nwant: %v",
							sql, run, res.Rows, refs[i])
					}
					if i == 0 && run == 0 && !st.TerminatedEarly {
						t.Errorf("%s: streamed LIMIT over %d chunks did not terminate early (%+v)",
							sql, rows/64, st)
					}
					// Sequential discovery stops with the scan, so undiscovered
					// chunks aren't counted as saved there.
					if i == 0 && run == 0 && c.name == "pipeline" && st.ChunksSaved <= 0 {
						t.Errorf("%s: ChunksSaved = %d, want > 0", sql, st.ChunksSaved)
					}
				}
			}
		})
	}
}

// seqCSVEnv builds a two-column table whose c0 is the row index — data
// where chunk min/max statistics make ORDER BY bound pruning decisive.
func seqCSVEnv(t *testing.T, rows int) (*dbstore.Store, *dbstore.Table) {
	t.Helper()
	d := vdisk.Unlimited()
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*3)
	}
	d.Preload("raw/seq.csv", []byte(sb.String()))
	store := dbstore.NewStore(d)
	sch := schema.MustNew(
		schema.Column{Name: "c0", Type: schema.Int64},
		schema.Column{Name: "c1", Type: schema.Int64},
	)
	table, err := store.CreateTable("data", sch, "raw/seq.csv")
	if err != nil {
		t.Fatal(err)
	}
	return store, table
}

// TestOrderByBoundPruning: once a top-k bound exists, chunks whose
// statistics place every row strictly past the cutoff are skipped. The
// sequential path consumes each chunk before the next skip decision, so
// with ascending data the second run (statistics collected by the first)
// must prune nearly the whole file — and still return identical rows.
func TestOrderByBoundPruning(t *testing.T) {
	const rows, chunkLines = 4096, 256 // 16 chunks
	store, table := seqCSVEnv(t, rows)
	op := New(store, table, Config{
		Workers: 0, ChunkLines: chunkLines, CacheChunks: 2,
		Policy: ExternalTables, CollectStats: true,
	})

	asc := "SELECT c0, c1 FROM data ORDER BY c0 LIMIT 10"
	first, _ := execSQL(t, op, asc)
	for i, row := range first.Rows {
		if row[0].Int != int64(i) {
			t.Fatalf("asc row %d = %v, want c0=%d", i, row, i)
		}
	}
	second, st := execSQL(t, op, asc)
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Errorf("pruned run differs: %v vs %v", second.Rows, first.Rows)
	}
	if st.SkippedChunks < 8 {
		t.Errorf("asc rerun skipped %d chunks, want >= 8 (stats should exclude high chunks)", st.SkippedChunks)
	}

	desc := "SELECT c0, c1 FROM data ORDER BY c0 DESC LIMIT 10"
	firstD, _ := execSQL(t, op, desc)
	for i, row := range firstD.Rows {
		if row[0].Int != int64(rows-1-i) {
			t.Fatalf("desc row %d = %v, want c0=%d", i, row, rows-1-i)
		}
	}
	secondD, stD := execSQL(t, op, desc)
	if !reflect.DeepEqual(firstD.Rows, secondD.Rows) {
		t.Errorf("pruned desc run differs: %v vs %v", secondD.Rows, firstD.Rows)
	}
	if stD.SkippedChunks == 0 {
		t.Errorf("desc rerun skipped no chunks, want bound pruning")
	}
}

// TestSharedScanMemberMix: a shared scan terminates early only when EVERY
// member is satisfied. A LIMIT member sharing with an unbounded aggregate
// must not cut the aggregate short.
func TestSharedScanMemberMix(t *testing.T) {
	const rows, cols, k = 2048, 4, 5
	ref := limitReference(t, rows, cols, fmt.Sprintf("SELECT c0, c1 FROM data LIMIT %d", k), k)

	env := newEnv(t, rows, cols, nil)
	op := New(env.store, env.table, Config{
		Workers: 4, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables,
	})
	sch := env.table.Schema()
	parse := func(sql string) *engine.Query {
		q, err := engine.ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return q
	}
	qs := []*engine.Query{
		parse(fmt.Sprintf("SELECT c0, c1 FROM data LIMIT %d", k)),
		parse("SELECT SUM(c0+c1+c2+c3) FROM data"),
	}
	results, st, err := ExecuteQueries(op, qs)
	if err != nil {
		t.Fatal(err)
	}
	if st.TerminatedEarly {
		t.Error("scan with an unbounded member terminated early")
	}
	if !reflect.DeepEqual(results[0].Rows, ref) {
		t.Errorf("limit member rows = %v, want %v", results[0].Rows, ref)
	}
	if got := results[1].Rows[0][0].Int; got != wantSum(env) {
		t.Errorf("aggregate member sum = %d, want %d", got, wantSum(env))
	}
	if !env.table.Complete() {
		t.Error("unbounded member should have driven discovery to end-of-file")
	}
}

// TestSharedScanAllBounded: when every member of a shared scan carries a
// termination signal, the scan stops once the last member is satisfied.
func TestSharedScanAllBounded(t *testing.T) {
	const rows, cols = 4096, 4
	ref5 := limitReference(t, rows, cols, "SELECT c0, c1 FROM data LIMIT 5", 5)
	ref7 := limitReference(t, rows, cols, "SELECT c2, c3 FROM data LIMIT 7", 7)

	env := newEnv(t, rows, cols, nil)
	op := New(env.store, env.table, Config{
		Workers: 4, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables,
	})
	sch := env.table.Schema()
	parse := func(sql string) *engine.Query {
		q, err := engine.ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return q
	}
	qs := []*engine.Query{
		parse("SELECT c0, c1 FROM data LIMIT 5"),
		parse("SELECT c2, c3 FROM data LIMIT 7"),
	}
	results, st, err := ExecuteQueries(op, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].Rows, ref5) {
		t.Errorf("member 0 rows = %v, want %v", results[0].Rows, ref5)
	}
	if !reflect.DeepEqual(results[1].Rows, ref7) {
		t.Errorf("member 1 rows = %v, want %v", results[1].Rows, ref7)
	}
	if !st.TerminatedEarly {
		t.Errorf("all-bounded shared scan over %d chunks did not terminate early (%+v)", rows/64, st)
	}
	if st.ChunksSaved <= 0 {
		t.Errorf("ChunksSaved = %d, want > 0", st.ChunksSaved)
	}
}

// TestSafeguardFlushAfterEarlyTermination: the zero-cost guarantee
// survives termination — chunks already converted when the scan stopped
// are still flushed into the database afterwards.
func TestSafeguardFlushAfterEarlyTermination(t *testing.T) {
	env := newEnv(t, 4096, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 4, ChunkLines: 64, CacheChunks: 8,
		Policy: Speculative, Safeguard: true, CollectStats: true,
	})
	res, st := execSQL(t, op, "SELECT c0, c1 FROM data LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if !st.TerminatedEarly {
		t.Fatalf("expected early termination, stats %+v", st)
	}
	op.WaitIdle()
	if loaded := env.table.CountLoaded([]int{0, 1}); loaded < 1 {
		t.Errorf("after safeguard flush, loaded chunks = %d, want >= 1", loaded)
	}
	if st.WrittenDuringRun+st.FlushedAfterRun < 1 {
		t.Errorf("no chunk was written or queued for flush: %+v", st)
	}
}

// benchLimitOperator builds a 64-chunk file under the simulated-CPU cost
// model, where conversion dominates — the regime in which stopping the
// scan after the first chunk should pay off by an order of magnitude.
func benchLimitOperator(b *testing.B) *Operator {
	b.Helper()
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: 16384, Cols: 4, Seed: 7, MaxValue: 1000}
	gen.Preload(d, "raw/bench.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("bench", spec.Schema(), "raw/bench.csv")
	if err != nil {
		b.Fatal(err)
	}
	op := New(store, table, Config{
		Workers: 8, ChunkLines: 256, CacheChunks: 4,
		Policy: ExternalTables, CPUSlowdown: 16,
	})
	// Warm-up completes chunk discovery so both benchmark variants measure
	// steady-state scans over a known catalog.
	req := Request{Columns: []int{0, 1}, Deliver: func(bc *BinaryChunk) error { return nil }}
	if _, err := op.Run(req); err != nil {
		b.Fatal(err)
	}
	return op
}

func benchLimitQuery(b *testing.B, op *Operator) *engine.Query {
	b.Helper()
	q, err := engine.ParseSQL("SELECT c0, c1 FROM bench LIMIT 10", op.Table().Schema())
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkLimitFullScan is the baseline: the same LIMIT query evaluated
// without demand wiring, so the scan converts all 64 chunks.
func BenchmarkLimitFullScan(b *testing.B) {
	op := benchLimitOperator(b)
	q := benchLimitQuery(b, op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Cache().Clear()
		ex, err := engine.NewExecutor(q, op.Table().Schema())
		if err != nil {
			b.Fatal(err)
		}
		req := Request{
			Columns: []int{0, 1},
			Deliver: ex.Consume,
		}
		if _, err := op.Run(req); err != nil {
			b.Fatal(err)
		}
		res, err := ex.Result()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkLimitEarlyTerm is the demand-driven path: the deliverer signals
// satisfaction after the first chunk and the scan stops issuing work.
func BenchmarkLimitEarlyTerm(b *testing.B) {
	op := benchLimitOperator(b)
	q := benchLimitQuery(b, op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Cache().Clear()
		res, _, err := ExecuteQuery(op, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}
