package scanraw

import (
	"fmt"
	"testing"

	"scanraw/internal/engine"
	"scanraw/internal/gen"
)

// sumCols runs SELECT SUM over the listed columns and checks the result
// against the generator's ground truth.
func sumCols(t *testing.T, op *Operator, env *testEnv, cols []int) RunStats {
	t.Helper()
	q, err := engine.SumAllColumns(env.table.Schema(), "data", cols)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteQuery(op, q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0][0].Int
	if want := gen.SumRange(env.spec, cols, 0, env.spec.Rows); got != want {
		t.Fatalf("sum over %v = %d, want %d", cols, got, want)
	}
	return st
}

// TestColGroupDifferential sweeps the storage-layout and speculation-policy
// matrix through the same query sequence — a narrow warm-up, a wider query
// that can only be served by partial-width hits, a repeat of it, and a
// full-width query — asserting every cell returns the generator's exact
// sums. Workers 0 exercises the sequential path, workers 4 the pipeline;
// results must not depend on the page width or on which chunks speculation
// chose to load.
func TestColGroupDifferential(t *testing.T) {
	weights := []float64{0, 3, 1, 0, 0}
	for _, width := range []int{1, 2, 0} {
		for _, pol := range []SpecPolicy{SpecScan, SpecPayoff} {
			for _, workers := range []int{0, 4} {
				name := fmt.Sprintf("width=%d/spec=%s/workers=%d", width, pol, workers)
				t.Run(name, func(t *testing.T) {
					env := newEnv(t, 512, 5, nil)
					env.store.SetGroupWidth(width)
					op := New(env.store, env.table, Config{
						Workers: workers, ChunkLines: 64, Policy: Speculative,
						Safeguard: true, CacheChunks: 4, CollectStats: true,
						Speculation:   pol,
						ColumnWeights: func() []float64 { return weights },
					})
					phases := [][]int{{1}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2, 3, 4}}
					for i, cols := range phases {
						st := sumCols(t, op, env, cols)
						// After the narrow warm-up every chunk has column 1 on
						// pages; with per-column pages the wider query must be
						// served without a single full-width conversion.
						if width == 1 && i == 1 && st.DeliveredRaw > 0 {
							t.Errorf("phase %d: %d full conversions despite loaded column pages (stats %+v)", i, st.DeliveredRaw, st)
						}
						// Safeguard flush between phases, so phase i+1 sees
						// everything phase i converted.
						op.WaitIdle()
					}
				})
			}
		}
	}
}

// TestColGroupSharedDifferential runs the shared-scan path over the same
// matrix: two coalesced queries with different column sets over a
// partially-loaded table must both get exact results whatever the page
// width and speculation order.
func TestColGroupSharedDifferential(t *testing.T) {
	for _, width := range []int{1, 2, 0} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			env := newEnv(t, 512, 5, nil)
			env.store.SetGroupWidth(width)
			weights := []float64{1, 0, 2, 0, 1}
			op := New(env.store, env.table, Config{
				Workers: 2, ChunkLines: 64, Policy: Speculative,
				Safeguard: true, CacheChunks: 4, CollectStats: true,
				Speculation:   SpecPayoff,
				ColumnWeights: func() []float64 { return weights },
			})
			sumCols(t, op, env, []int{2}) // warm: loads closure({2}) everywhere
			op.WaitIdle()

			var sumA, sumB int64
			reqs := []Request{
				{
					Columns: []int{0, 2},
					Deliver: func(bc *BinaryChunk) error {
						for r := 0; r < bc.Rows; r++ {
							sumA += bc.Column(0).Ints[r] + bc.Column(2).Ints[r]
						}
						return nil
					},
				},
				{
					Columns: []int{1, 3},
					Deliver: func(bc *BinaryChunk) error {
						for r := 0; r < bc.Rows; r++ {
							sumB += bc.Column(1).Ints[r] + bc.Column(3).Ints[r]
						}
						return nil
					},
				},
			}
			if _, _, err := op.RunShared(reqs); err != nil {
				t.Fatal(err)
			}
			if want := gen.SumRange(env.spec, []int{0, 2}, 0, 512); sumA != want {
				t.Errorf("shared query A sum = %d, want %d", sumA, want)
			}
			if want := gen.SumRange(env.spec, []int{1, 3}, 0, 512); sumB != want {
				t.Errorf("shared query B sum = %d, want %d", sumB, want)
			}
		})
	}
}

// TestPayoffSpecPrefersHotColumns pins the policy itself: with a cold
// cache-resident table and a heavily skewed workload, the payoff ranker
// must write the hot column's groups before scan order would reach them.
func TestPayoffSpecPrefersHotColumns(t *testing.T) {
	env := newEnv(t, 512, 4, nil)
	// CPUSlowdown makes conversion dominate, so READ blocks on the full
	// text buffer and the scheduler gets disk-idle quanta to spend.
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative,
		Safeguard: false, CacheChunks: 16, CollectStats: true,
		CPUSlowdown:   16,
		Speculation:   SpecPayoff,
		ColumnWeights: func() []float64 { return []float64{0, 0, 0, 5} },
	})
	// How MUCH gets written per scan is timing-dependent by design — with
	// the safeguard off, quanta exist only while READ is blocked mid-run —
	// so rescan (cache cleared, so raw reads recur) until at least one
	// quantum landed. WHAT got written is the deterministic part under
	// test: payoff must spend every quantum on the hot column while any of
	// its groups is still unloaded.
	countLoaded := func(col int) int {
		n := 0
		for id := 0; id < env.table.NumChunks(); id++ {
			if meta, ok := env.table.Chunk(id); ok && meta.LoadedAll([]int{col}) {
				n++
			}
		}
		return n
	}
	var loadedHot, loadedCold int
	for attempt := 0; attempt < 100; attempt++ {
		sumCols(t, op, env, []int{0, 1, 2, 3})
		op.WaitIdle()
		loadedHot, loadedCold = countLoaded(3), countLoaded(0)
		if loadedHot > 0 {
			break
		}
		op.Cache().Clear()
	}
	if loadedHot == 0 {
		t.Fatal("payoff speculation wrote nothing for the hot column in 100 scans")
	}
	if loadedCold > loadedHot {
		t.Errorf("cold column loaded on %d chunks vs hot %d: payoff ranking not applied", loadedCold, loadedHot)
	}
}
