package scanraw

import (
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

func TestRegistryReusesOperators(t *testing.T) {
	env := newEnv(t, 128, 2, nil)
	reg := NewRegistry(env.store)
	cfg := Config{Workers: 2, ChunkLines: 32}
	op1 := reg.Operator(env.table, cfg)
	op2 := reg.Operator(env.table, Config{Workers: 7}) // ignored: instance exists
	if op1 != op2 {
		t.Error("registry should reuse the operator for the same raw file")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	got, ok := reg.Lookup(env.table.RawFile())
	if !ok || got != op1 {
		t.Error("Lookup failed")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("Lookup of unknown file should fail")
	}
}

func TestRegistrySweepDeletesFullyLoaded(t *testing.T) {
	env := newEnv(t, 128, 2, nil)
	reg := NewRegistry(env.store)
	op := reg.Operator(env.table, Config{Workers: 2, ChunkLines: 32, Policy: FullLoad})
	if n := reg.Sweep(); n != 0 {
		t.Errorf("sweep before loading removed %d", n)
	}
	if _, _, err := reg.ExecuteSQL(env.table, Config{}, "SELECT SUM(c0+c1) FROM data"); err != nil {
		t.Fatal(err)
	}
	if !env.table.FullyLoaded() {
		t.Fatal("table should be fully loaded")
	}
	if n := reg.Sweep(); n != 1 {
		t.Errorf("sweep removed %d operators, want 1", n)
	}
	if reg.Len() != 0 {
		t.Errorf("registry still holds %d operators", reg.Len())
	}
	_ = op
}

func TestExecuteSQLEndToEnd(t *testing.T) {
	env := newEnv(t, 256, 3, nil)
	reg := NewRegistry(env.store)
	cfg := Config{Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true, CacheChunks: 2}
	res, st, err := reg.ExecuteSQL(env.table, cfg, "SELECT SUM(c0+c1+c2) AS total FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0] != "total" {
		t.Errorf("cols = %v", res.Cols)
	}
	if got, want := res.Rows[0][0].Int, wantSum(env); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
	if st.Delivered() != 4 {
		t.Errorf("delivered = %d", st.Delivered())
	}
	// Parse error propagates.
	if _, _, err := reg.ExecuteSQL(env.table, cfg, "SELECT nope FROM data"); err == nil {
		t.Error("bad SQL should fail")
	}
}

func mkMeta(loCol0, hiCol0 int64) *dbstore.ChunkMeta {
	return &dbstore.ChunkMeta{
		Stats: []dbstore.ColStats{
			{Valid: true, Type: schema.Int64, MinInt: loCol0, MaxInt: hiCol0},
			{},
		},
		Loaded: []bool{false, false},
	}
}

func TestSkipFromPredicate(t *testing.T) {
	sch := schema.MustNew(
		schema.Column{Name: "a", Type: schema.Int64},
		schema.Column{Name: "b", Type: schema.Str},
	)
	parseWhere := func(sql string) engine.Expr {
		q, err := engine.ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return q.Where
	}
	cases := []struct {
		sql        string
		lo, hi     int64 // chunk stats for column a
		wantSkip   bool
		wantFilter bool // whether a filter is derivable at all
	}{
		{"SELECT COUNT(*) FROM t WHERE a < 10", 20, 30, true, true},
		{"SELECT COUNT(*) FROM t WHERE a < 10", 5, 30, false, true},
		{"SELECT COUNT(*) FROM t WHERE a <= 20", 21, 30, true, true},
		{"SELECT COUNT(*) FROM t WHERE a > 30", 20, 30, true, true},
		{"SELECT COUNT(*) FROM t WHERE a >= 30", 20, 30, false, true},
		{"SELECT COUNT(*) FROM t WHERE a = 25", 20, 30, false, true},
		{"SELECT COUNT(*) FROM t WHERE a = 31", 20, 30, true, true},
		{"SELECT COUNT(*) FROM t WHERE 10 > a", 20, 30, true, true},  // flipped
		{"SELECT COUNT(*) FROM t WHERE 25 = a", 20, 30, false, true}, // flipped
		{"SELECT COUNT(*) FROM t WHERE a < 10 AND a > 5", 6, 8, false, true},
		{"SELECT COUNT(*) FROM t WHERE a < 10 AND b = 'x'", 20, 30, true, true},
		{"SELECT COUNT(*) FROM t WHERE a < 10 OR a > 100", 20, 30, false, false}, // OR unanalyzable
		{"SELECT COUNT(*) FROM t WHERE b LIKE 'x%'", 0, 0, false, false},
		{"SELECT COUNT(*) FROM t WHERE a <> 5", 20, 30, false, false},
		{"SELECT COUNT(*) FROM t WHERE a + 1 < 10", 20, 30, false, false}, // not a bare column
	}
	for _, c := range cases {
		f := SkipFromPredicate(parseWhere(c.sql))
		if (f != nil) != c.wantFilter {
			t.Errorf("%s: filter derivable = %v, want %v", c.sql, f != nil, c.wantFilter)
			continue
		}
		if f == nil {
			continue
		}
		if got := f(mkMeta(c.lo, c.hi)); got != c.wantSkip {
			t.Errorf("%s with stats [%d,%d]: skip = %v, want %v", c.sql, c.lo, c.hi, got, c.wantSkip)
		}
	}
	if SkipFromPredicate(nil) != nil {
		t.Error("nil predicate should yield nil filter")
	}
}

func TestSkipInvalidStatsConservative(t *testing.T) {
	sch := schema.MustNew(schema.Column{Name: "a", Type: schema.Int64})
	q, err := engine.ParseSQL("SELECT COUNT(*) FROM t WHERE a < 0", sch)
	if err != nil {
		t.Fatal(err)
	}
	f := SkipFromPredicate(q.Where)
	meta := &dbstore.ChunkMeta{Stats: []dbstore.ColStats{{}}, Loaded: []bool{false}}
	if f(meta) {
		t.Error("chunk without stats must never be skipped")
	}
}
