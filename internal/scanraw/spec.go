package scanraw

import (
	"fmt"
	"sort"

	"scanraw/internal/dbstore"
	"scanraw/internal/kernel"
)

// Speculation policy and partial-width planning. Both follow the paper's
// sequel ("Workload-Driven Vertical Partitioning over Raw Data"): converted
// data lives as column-group pages, a query is served from any mix of
// loaded groups plus conversion of only the missing ones, and idle disk
// time goes to the (chunk, column-group) pair the workload values most.

// SpecPolicy selects what the speculative scheduler loads when the disk is
// idle.
type SpecPolicy uint8

const (
	// SpecScan — the zero value — writes the oldest unloaded cached chunk
	// at full width: the paper's original scan-order speculation (§4).
	SpecScan SpecPolicy = iota
	// SpecPayoff ranks every (cached chunk, column group) candidate by
	// predicted benefit — workload access weight × unloaded width × chunk
	// selectivity — and writes the best single group per disk-idle quantum,
	// falling back to scan order while the workload is cold.
	SpecPayoff
)

func (p SpecPolicy) String() string {
	switch p {
	case SpecScan:
		return "scan"
	case SpecPayoff:
		return "payoff"
	default:
		return fmt.Sprintf("SpecPolicy(%d)", uint8(p))
	}
}

// ParseSpecPolicy parses a -spec-policy flag value.
func ParseSpecPolicy(s string) (SpecPolicy, error) {
	switch s {
	case "scan":
		return SpecScan, nil
	case "payoff":
		return SpecPayoff, nil
	}
	return 0, fmt.Errorf("scanraw: unknown speculation policy %q (want scan or payoff)", s)
}

// partialPlan splits one chunk's service between raw conversion and the
// database: convert holds the columns to tokenize+parse (the missing
// requested columns, rounded up to group boundaries), fromDB the requested
// columns read from already-loaded pages and merged in before delivery.
type partialPlan struct {
	convert []int
	fromDB  []int
}

// planFor computes the partial-width plan for a chunk from its catalog
// metadata. A chunk with no loaded requested column converts the run-wide
// closure (fromDB empty); a chunk with every requested column loaded never
// reaches here (the full-width database path serves it).
func (r *run) planFor(meta *dbstore.ChunkMeta) partialPlan {
	var fromDB, missing []int
	for _, c := range r.req.Columns {
		if c < len(meta.Loaded) && meta.Loaded[c] {
			fromDB = append(fromDB, c)
		} else {
			missing = append(missing, c)
		}
	}
	if len(fromDB) == 0 {
		return partialPlan{convert: r.convCols}
	}
	var convert []int
	for _, c := range r.op.store.GroupClosure(r.op.table, missing) {
		// The closure can pull in loaded columns of partially-loaded groups
		// (legacy pages, width changes); their pages exist, so skip them.
		if c < len(meta.Loaded) && meta.Loaded[c] {
			continue
		}
		convert = append(convert, c)
	}
	return partialPlan{convert: convert, fromDB: fromDB}
}

// setPlan registers a chunk's partial plan for the conversion stages; READ
// computes plans (it holds the chunk metadata), PARSE consumes them.
func (r *run) setPlan(id int, p partialPlan) {
	r.plansMu.Lock()
	if r.plans == nil {
		r.plans = make(map[int]partialPlan)
	}
	r.plans[id] = p
	r.plansMu.Unlock()
}

// plan looks a chunk's partial plan up; ok=false means full conversion.
func (r *run) plan(id int) (partialPlan, bool) {
	r.plansMu.Lock()
	p, ok := r.plans[id]
	r.plansMu.Unlock()
	return p, ok
}

// kernFor returns a fused kernel for a partial plan's convert set, cached
// per column set — partial-width chunks convert different subsets, and
// kernel construction is per (schema, columns). Falls back to the run-wide
// kernel (a superset conversion) if construction fails.
func (r *run) kernFor(cols []int) *kernel.Kernel {
	key := dbstore.EncodeColGroupKey(cols)
	r.kernsMu.Lock()
	defer r.kernsMu.Unlock()
	if k, ok := r.kerns[key]; ok {
		return k
	}
	k, err := kernel.For(r.op.table.Schema(), cols, r.op.cfg.Delim)
	if err != nil {
		k = r.kern
	}
	if r.kerns == nil {
		r.kerns = make(map[string]*kernel.Kernel)
	}
	r.kerns[key] = k
	return k
}

// specStep performs one quantum of speculative loading: under SpecPayoff a
// single best-ranked column-group write, otherwise (or as the cold-workload
// fallback) the oldest unloaded cached chunk at full width. It reports
// whether anything was written; the caller loops while the disk stays idle.
func (r *run) specStep() (bool, error) {
	o := r.op
	if o.cfg.Speculation == SpecPayoff {
		wrote, handled, err := r.payoffStep()
		if handled || err != nil {
			return wrote, err
		}
	}
	bc := o.cache.AcquireOldestUnloaded()
	if bc == nil {
		return false, nil
	}
	err := r.runWrite(bc)
	if uerr := o.cache.Unpin(bc.ID); err == nil {
		err = uerr
	}
	r.gate.broadcast()
	return err == nil, err
}

// specCand is one rankable speculation candidate: the unloaded columns of
// one partition group of one cached chunk.
type specCand struct {
	id    int
	cols  []int
	score float64
}

// payoffStep ranks the (cached chunk, column group) candidates and writes
// the best one. handled=false hands control to the scan-order fallback:
// the workload is cold (nil/mismatched/all-zero weights) or nothing the
// workload wants is still unloaded.
func (r *run) payoffStep() (wrote, handled bool, err error) {
	o := r.op
	wf := o.cfg.ColumnWeights
	if wf == nil {
		return false, false, nil
	}
	weights := wf()
	n := o.table.Schema().NumColumns()
	if len(weights) != n {
		return false, false, nil
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return false, false, nil
	}
	groups := dbstore.GroupPartition(n, o.store.GroupWidth())
	var cands []specCand
	for _, id := range o.cache.UnloadedIDs() {
		meta, ok := o.table.Chunk(id)
		if !ok {
			continue
		}
		for _, g := range groups {
			var unloaded []int
			w := 0.0
			for _, c := range g {
				if c < len(meta.Loaded) && meta.Loaded[c] {
					continue
				}
				unloaded = append(unloaded, c)
				w += weights[c]
			}
			if len(unloaded) == 0 || w <= 0 {
				continue
			}
			score := w * float64(len(unloaded)) * chunkSelectivity(meta, unloaded)
			cands = append(cands, specCand{id: id, cols: unloaded, score: score})
		}
	}
	// Stable sort keeps scan order among equal scores, so the policy
	// degrades gracefully toward the paper's behaviour.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	for _, c := range cands {
		bc := o.cache.Acquire(c.id)
		if bc == nil {
			continue
		}
		if !bc.HasAll(c.cols) {
			// The cached copy lacks part of the group (read back narrow, or
			// converted for a narrower query): not writable from here.
			if uerr := o.cache.Unpin(c.id); uerr != nil {
				return false, true, uerr
			}
			continue
		}
		werr := o.writeChunkGroup(bc, c.cols)
		if uerr := o.cache.Unpin(c.id); werr == nil {
			werr = uerr
		}
		r.gate.broadcast()
		if werr != nil {
			return false, true, werr
		}
		r.groupWrites.Add(1)
		return true, true, nil
	}
	return false, false, nil
}

// chunkSelectivity estimates how useful a chunk's columns are to selective
// queries: the average of min(1, Distinct/Rows) over the columns with valid
// statistics, defaulting to 1 (maximally useful) when nothing is known —
// statistics should focus speculation, never veto it.
func chunkSelectivity(meta *dbstore.ChunkMeta, cols []int) float64 {
	sum, n := 0.0, 0
	for _, c := range cols {
		if c >= len(meta.Stats) {
			continue
		}
		st := meta.Stats[c]
		if !st.Valid || st.Rows <= 0 {
			continue
		}
		f := float64(st.Distinct) / float64(st.Rows)
		if f > 1 {
			f = 1
		}
		sum += f
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
