package scanraw

import (
	"context"
	"errors"
	"testing"
	"time"

	"scanraw/internal/vdisk"
)

// slowDisk returns a bandwidth-throttled disk so scans take long enough to
// cancel mid-flight.
func slowDisk() *vdisk.Disk {
	return vdisk.New(vdisk.Config{ReadBandwidth: 1 << 19, WriteBandwidth: 1 << 19})
}

func TestRunContextPreCancelled(t *testing.T) {
	env := newEnv(t, 256, 3, nil)
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	delivered := 0
	_, err := op.RunContext(ctx, Request{
		Columns: allCols(3),
		Deliver: func(bc *BinaryChunk) error { delivered++; return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d chunks on a dead context", delivered)
	}
	// The operator stays usable: a fresh run produces the right answer.
	got, _ := sumViaOperator(t, op, env)
	if got != wantSum(env) {
		t.Errorf("sum after cancelled run = %d, want %d", got, wantSum(env))
	}
}

func TestRunContextCancelMidScan(t *testing.T) {
	for _, workers := range []int{0, 4} {
		name := "parallel"
		if workers == 0 {
			name = "sequential"
		}
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 2048, 4, slowDisk())
			op := New(env.store, env.table, Config{
				Workers: workers, ChunkLines: 256, CacheChunks: 2,
			})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			delivered := 0
			_, err := op.RunContext(ctx, Request{
				Columns: allCols(4),
				Deliver: func(bc *BinaryChunk) error {
					delivered++
					cancel() // first chunk in hand: client goes away
					return nil
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if delivered >= 8 {
				t.Errorf("delivered all %d chunks despite cancellation", delivered)
			}
			// Cancellation released the disk accessor and the run mutex: a
			// follow-up full scan succeeds and is correct.
			got, st := sumViaOperator(t, op, env)
			if got != wantSum(env) {
				t.Errorf("sum after cancel = %d, want %d", got, wantSum(env))
			}
			if st.Delivered() != 8 {
				t.Errorf("follow-up delivered %d chunks, want 8", st.Delivered())
			}
		})
	}
}

func TestExecuteSQLContextTimeout(t *testing.T) {
	env := newEnv(t, 2048, 4, slowDisk())
	reg := NewRegistry(env.store)
	cfg := Config{Workers: 2, ChunkLines: 256, CacheChunks: 2}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := reg.ExecuteSQLContext(ctx, env.table, cfg, "SELECT SUM(c0+c1+c2+c3) FROM data")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// The timed-out query released everything; an unbounded retry works.
	res, st, err := reg.ExecuteSQLContext(context.Background(), env.table, cfg, "SELECT SUM(c0+c1+c2+c3) FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int; got != wantSum(env) {
		t.Errorf("sum = %d, want %d", got, wantSum(env))
	}
	if st.Delivered() != 8 {
		t.Errorf("delivered %d chunks, want 8", st.Delivered())
	}
}
