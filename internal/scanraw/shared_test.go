package scanraw

import (
	"errors"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
)

func TestRunSharedTwoQueriesOneScan(t *testing.T) {
	env := newEnv(t, 512, 4, nil)
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 2})
	var sumA, sumB int64
	reqs := []Request{
		{
			Columns: []int{0, 1},
			Deliver: func(bc *BinaryChunk) error {
				for r := 0; r < bc.Rows; r++ {
					sumA += bc.Column(0).Ints[r] + bc.Column(1).Ints[r]
				}
				return nil
			},
		},
		{
			Columns: []int{2},
			Deliver: func(bc *BinaryChunk) error {
				for r := 0; r < bc.Rows; r++ {
					sumB += bc.Column(2).Ints[r]
				}
				return nil
			},
		},
	}
	st, per, err := op.RunShared(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sumA, gen.SumRange(env.spec, []int{0, 1}, 0, 512); got != want {
		t.Errorf("query A sum = %d, want %d", got, want)
	}
	if got, want := sumB, gen.SumRange(env.spec, []int{2}, 0, 512); got != want {
		t.Errorf("query B sum = %d, want %d", got, want)
	}
	// One scan: 8 chunks total, delivered once each at the scan level.
	if st.Delivered() != 8 {
		t.Errorf("scan delivered %d chunks, want 8", st.Delivered())
	}
	for i, p := range per {
		if p.DeliveredChunks != 8 {
			t.Errorf("request %d saw %d chunks", i, p.DeliveredChunks)
		}
	}
}

func TestRunSharedPerRequestSkip(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 2, CollectStats: true,
	})
	// Warm-up scan to collect statistics.
	if _, err := op.Run(Request{
		Columns: []int{0, 1},
		Deliver: func(*BinaryChunk) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	count := 0
	all := 0
	reqs := []Request{
		{
			Columns: []int{0},
			// Impossible predicate: skips every chunk for this request.
			Skip:    func(meta *dbstore.ChunkMeta) bool { return !meta.Stats[0].MayContainInt(-10, -1) },
			Deliver: func(bc *BinaryChunk) error { count += bc.Rows; return nil },
		},
		{
			Columns: []int{0},
			Deliver: func(bc *BinaryChunk) error { all += bc.Rows; return nil },
		},
	}
	_, per, err := op.RunShared(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || per[0].SkippedChunks != 8 {
		t.Errorf("filtered request: rows=%d skipped=%d", count, per[0].SkippedChunks)
	}
	if all != 512 || per[1].DeliveredChunks != 8 {
		t.Errorf("unfiltered request: rows=%d delivered=%d", all, per[1].DeliveredChunks)
	}
}

func TestRunSharedScanLevelSkip(t *testing.T) {
	env := newEnv(t, 256, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 2, CollectStats: true,
	})
	if _, err := op.Run(Request{
		Columns: []int{0},
		Deliver: func(*BinaryChunk) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	// Both requests skip everything: the scan itself skips all chunks.
	impossible := func(meta *dbstore.ChunkMeta) bool { return true }
	st, _, err := op.RunShared([]Request{
		{Columns: []int{0}, Skip: impossible, Deliver: func(*BinaryChunk) error { return nil }},
		{Columns: []int{0}, Skip: impossible, Deliver: func(*BinaryChunk) error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered() != 0 || st.SkippedChunks != 4 {
		t.Errorf("scan stats = %+v, want all 4 chunks skipped", st)
	}
}

func TestRunSharedErrors(t *testing.T) {
	env := newEnv(t, 64, 2, nil)
	op := New(env.store, env.table, Config{Workers: 1, ChunkLines: 16})
	if _, _, err := op.RunShared(nil); err == nil {
		t.Error("empty request list should fail")
	}
	if _, _, err := op.RunShared([]Request{{Columns: []int{0}}}); err == nil {
		t.Error("request without deliver should fail")
	}
	sentinel := errors.New("boom")
	_, _, err := op.RunShared([]Request{
		{Columns: []int{0}, Deliver: func(*BinaryChunk) error { return nil }},
		{Columns: []int{1}, Deliver: func(*BinaryChunk) error { return sentinel }},
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestExecuteQueriesSharedScan(t *testing.T) {
	env := newEnv(t, 512, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 2, Policy: Speculative, Safeguard: true,
	})
	sch := env.table.Schema()
	q1, err := engine.ParseSQL("SELECT SUM(c0+c1) AS s FROM data", sch)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := engine.ParseSQL("SELECT COUNT(*) FROM data WHERE c3 < 500", sch)
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := ExecuteQueries(op, []*engine.Query{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := results[0].Rows[0][0].Int, gen.SumRange(env.spec, []int{0, 1}, 0, 512); got != want {
		t.Errorf("q1 = %d, want %d", got, want)
	}
	var wantCount int64
	for r := 0; r < 512; r++ {
		if gen.Value(env.spec, r, 3) < 500 {
			wantCount++
		}
	}
	if got := results[1].Rows[0][0].Int; got != wantCount {
		t.Errorf("q2 = %d, want %d", got, wantCount)
	}
	// Union of columns converted once: the scan touched c0, c1, c3.
	if st.DeliveredRaw != 8 {
		t.Errorf("shared scan delivered %d raw chunks", st.DeliveredRaw)
	}
	if _, _, err := ExecuteQueries(op, nil); err == nil {
		t.Error("no queries should fail")
	}
}
