package scanraw

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// testEnv bundles a disk, store, table and generated CSV file.
type testEnv struct {
	disk  *vdisk.Disk
	store *dbstore.Store
	table *dbstore.Table
	spec  gen.CSVSpec
}

func newEnv(t *testing.T, rows, cols int, d *vdisk.Disk) *testEnv {
	t.Helper()
	if d == nil {
		d = vdisk.Unlimited()
	}
	spec := gen.CSVSpec{Rows: rows, Cols: cols, Seed: 42, MaxValue: 1000}
	gen.Preload(d, "raw/data.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{disk: d, store: store, table: table, spec: spec}
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// sumViaOperator runs SELECT SUM(all cols) through the operator and
// returns the result plus run stats.
func sumViaOperator(t *testing.T, op *Operator, env *testEnv) (int64, RunStats) {
	t.Helper()
	q, err := engine.SumAllColumns(env.table.Schema(), "data", allCols(env.spec.Cols))
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteQuery(op, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("result rows = %d", len(res.Rows))
	}
	return res.Rows[0][0].Int, st
}

func wantSum(env *testEnv) int64 {
	return gen.SumRange(env.spec, allCols(env.spec.Cols), 0, env.spec.Rows)
}

func TestExternalTablesCorrectness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			env := newEnv(t, 512, 4, nil)
			op := New(env.store, env.table, Config{
				Workers: workers, ChunkLines: 64, Policy: ExternalTables, CacheChunks: 4,
			})
			got, st := sumViaOperator(t, op, env)
			if got != wantSum(env) {
				t.Errorf("sum = %d, want %d", got, wantSum(env))
			}
			if st.DeliveredRaw != 8 {
				t.Errorf("raw chunks = %d, want 8", st.DeliveredRaw)
			}
			if st.WrittenDuringRun != 0 || st.FlushedAfterRun != 0 {
				t.Errorf("external tables must not load: %+v", st)
			}
			if !env.table.Complete() {
				t.Error("first scan should complete chunk discovery")
			}
			if env.table.NumChunks() != 8 {
				t.Errorf("chunks discovered = %d", env.table.NumChunks())
			}
		})
	}
}

func TestRepeatQueryServesFromCache(t *testing.T) {
	env := newEnv(t, 256, 3, nil)
	// Cache big enough for the whole file (4 chunks).
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 8})
	got1, st1 := sumViaOperator(t, op, env)
	got2, st2 := sumViaOperator(t, op, env)
	if got1 != got2 || got1 != wantSum(env) {
		t.Errorf("sums differ: %d %d want %d", got1, got2, wantSum(env))
	}
	if st1.DeliveredCache != 0 || st1.DeliveredRaw != 4 {
		t.Errorf("first run: %+v", st1)
	}
	if st2.DeliveredCache != 4 || st2.DeliveredRaw != 0 || st2.DeliveredDB != 0 {
		t.Errorf("second run should be all-cache: %+v", st2)
	}
}

func TestFullLoadMorphsIntoHeapScan(t *testing.T) {
	for _, workers := range []int{0, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			env := newEnv(t, 512, 4, nil)
			// Tiny cache so the second query cannot be served from memory.
			op := New(env.store, env.table, Config{
				Workers: workers, ChunkLines: 64, Policy: FullLoad, CacheChunks: 2,
			})
			got1, st1 := sumViaOperator(t, op, env)
			if got1 != wantSum(env) {
				t.Errorf("sum1 = %d", got1)
			}
			if st1.WrittenDuringRun != 8 {
				t.Errorf("full load should write all 8 chunks, wrote %d", st1.WrittenDuringRun)
			}
			if !env.table.FullyLoaded() {
				t.Fatal("table should be fully loaded after ETL run")
			}
			got2, st2 := sumViaOperator(t, op, env)
			if got2 != wantSum(env) {
				t.Errorf("sum2 = %d", got2)
			}
			if st2.DeliveredRaw != 0 {
				t.Errorf("second query should not touch raw data: %+v", st2)
			}
			if st2.DeliveredDB != 8-st2.DeliveredCache {
				t.Errorf("second query sources inconsistent: %+v", st2)
			}
		})
	}
}

func TestSpeculativeSafeguardConvergence(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			env := newEnv(t, 512, 4, nil)
			// Cache 1/4 of the 8 chunks, like the paper's Fig. 8 setup.
			op := New(env.store, env.table, Config{
				Workers: workers, ChunkLines: 64, Policy: Speculative,
				CacheChunks: 2, Safeguard: true,
			})
			prevLoaded := 0
			for q := 1; q <= 8; q++ {
				got, _ := sumViaOperator(t, op, env)
				if got != wantSum(env) {
					t.Fatalf("query %d sum = %d, want %d", q, got, wantSum(env))
				}
				op.WaitIdle()
				loaded := env.table.CountLoaded(allCols(env.spec.Cols))
				if loaded < prevLoaded {
					t.Fatalf("loaded count regressed: %d -> %d", prevLoaded, loaded)
				}
				if loaded == prevLoaded && loaded < 8 {
					t.Fatalf("query %d loaded nothing new (%d chunks): safeguard broken", q, loaded)
				}
				prevLoaded = loaded
				if loaded == 8 {
					break
				}
			}
			if prevLoaded != 8 {
				t.Errorf("never converged to full load: %d/8", prevLoaded)
			}
			if !env.table.FullyLoaded() {
				t.Error("table should be fully loaded")
			}
			// Post-convergence queries still answer correctly from the DB.
			got, st := sumViaOperator(t, op, env)
			if got != wantSum(env) || st.DeliveredRaw != 0 {
				t.Errorf("post-convergence: sum=%d stats=%+v", got, st)
			}
		})
	}
}

func TestSpeculativeCPUBoundLoadsEverything(t *testing.T) {
	// When processing is CPU-bound, READ blocks and speculative loading
	// behaves like full loading (paper Fig. 4b, left side). The paper
	// names two causes: slow conversion and slow query execution. A slow
	// Deliver callback triggers the second deterministically — back
	// pressure propagates from the full cache through the position and
	// text buffers down to READ.
	env := newEnv(t, 1024, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative,
		CacheChunks: 2, TextBufferChunks: 2, PositionBufferChunks: 2,
	})
	var sum int64
	st, err := op.Run(Request{
		Columns: []int{0, 1, 2, 3},
		Deliver: func(bc *BinaryChunk) error {
			time.Sleep(3 * time.Millisecond) // engine is the bottleneck
			for r := 0; r < bc.Rows; r++ {
				for c := 0; c < 4; c++ {
					sum += bc.Column(c).Ints[r]
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != wantSum(env) {
		t.Fatalf("sum = %d, want %d", sum, wantSum(env))
	}
	total := env.table.NumChunks()
	if total != 16 {
		t.Fatalf("chunks = %d", total)
	}
	if st.WrittenDuringRun < total/2 {
		t.Errorf("CPU-bound speculative run loaded only %d/%d chunks", st.WrittenDuringRun, total)
	}
}

func TestBufferedLoadWritesOnEviction(t *testing.T) {
	env := newEnv(t, 512, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: BufferedLoad,
		CacheChunks: 2, Safeguard: true,
	})
	got, st := sumViaOperator(t, op, env)
	if got != wantSum(env) {
		t.Fatalf("sum = %d", got)
	}
	op.WaitIdle()
	// 8 chunks, cache 2: at least 6 evictions wrote during the run, the
	// cache remainder flushed after.
	if st.WrittenDuringRun < 6 {
		t.Errorf("buffered load wrote %d during run, want >= 6", st.WrittenDuringRun)
	}
	if got := env.table.CountLoaded(allCols(4)); got != 8 {
		t.Errorf("loaded after flush = %d, want 8", got)
	}
}

func TestInvisibleLoadsFixedAmount(t *testing.T) {
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			env := newEnv(t, 512, 4, nil)
			op := New(env.store, env.table, Config{
				Workers: workers, ChunkLines: 64, Policy: Invisible,
				InvisibleChunksPerQuery: 3, CacheChunks: 2,
			})
			for q := 1; q <= 3; q++ {
				got, st := sumViaOperator(t, op, env)
				if got != wantSum(env) {
					t.Fatalf("query %d sum = %d", q, got)
				}
				wantWritten := 3
				if loaded := env.table.CountLoaded(allCols(4)); loaded == 8 {
					wantWritten = 0 // nothing left to load
				}
				if st.WrittenDuringRun > 3 || (q == 1 && st.WrittenDuringRun != wantWritten) {
					t.Errorf("query %d wrote %d chunks, want <= 3 (first: exactly 3)", q, st.WrittenDuringRun)
				}
			}
			// 3 queries x 3 chunks >= 8 chunks, except that a chunk which
			// stays cache-resident is always served from the cache, never
			// converted, and therefore never written by invisible loading
			// (which only loads data converted in the current query).
			loaded := env.table.CountLoaded(allCols(4))
			unloadedInCache := len(op.Cache().UnloadedIDs())
			if loaded+unloadedInCache != 8 || loaded < 6 {
				t.Errorf("loaded=%d cached-unloaded=%d, want them to cover all 8", loaded, unloadedInCache)
			}
		})
	}
}

func TestSelectivePartialColumnLoading(t *testing.T) {
	env := newEnv(t, 256, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: FullLoad, CacheChunks: 1,
	})
	// Query 1 touches only column 1.
	q1, err := engine.ParseSQL("SELECT SUM(c1) FROM data", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ExecuteQuery(op, q1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Rows[0][0].Int, gen.SumRange(env.spec, []int{1}, 0, 256); got != want {
		t.Errorf("sum(c1) = %d, want %d", got, want)
	}
	// Only column 1 is loaded; the table is not fully loaded.
	meta, _ := env.table.Chunk(0)
	if !meta.Loaded[1] || meta.Loaded[0] || meta.Loaded[2] {
		t.Errorf("loaded flags = %v, want only c1", meta.Loaded)
	}
	if env.table.FullyLoaded() {
		t.Error("partial column load must not count as fully loaded")
	}
	// Query 2 needs c0+c1: chunks lack c0 in the DB, so raw conversion
	// runs again and loads both columns.
	q2, err := engine.ParseSQL("SELECT SUM(c0+c1) FROM data", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res2, st2, err := ExecuteQuery(op, q2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res2.Rows[0][0].Int, gen.SumRange(env.spec, []int{0, 1}, 0, 256); got != want {
		t.Errorf("sum(c0+c1) = %d, want %d", got, want)
	}
	if st2.DeliveredRaw+st2.DeliveredPartial == 0 {
		t.Error("query 2 should have read raw data for the missing column")
	}
	if st2.DeliveredPartial == 0 {
		t.Error("query 2 should be a partial-width hit: c1 from its pages, only c0 converted")
	}
	// Query 3 over c0+c1 is now served from the database (cache too small).
	_, st3, err := ExecuteQuery(op, q2)
	if err != nil {
		t.Fatal(err)
	}
	if st3.DeliveredRaw != 0 {
		t.Errorf("query 3 should be cache+db only: %+v", st3)
	}
}

func TestStatsChunkSkipping(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: ExternalTables,
		CacheChunks: 1, CollectStats: true,
	})
	// First query collects stats while converting.
	q, err := engine.ParseSQL("SELECT COUNT(*) FROM data WHERE c0 < 50", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res1, st1, err := ExecuteQuery(op, q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SkippedChunks != 0 {
		t.Errorf("first query cannot skip (no stats yet): %+v", st1)
	}
	// Second query skips chunks whose min/max exclude the predicate.
	// With values in [0,1000) and 64-row chunks, a chunk without a value
	// < 50 is possible; use an impossible predicate to guarantee skips.
	q2, err := engine.ParseSQL("SELECT COUNT(*) FROM data WHERE c0 < 0", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res2, st2, err := ExecuteQuery(op, q2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.SkippedChunks != 8 {
		t.Errorf("impossible predicate should skip all 8 chunks, skipped %d", st2.SkippedChunks)
	}
	if res2.Rows[0][0].Int != 0 {
		t.Errorf("count = %d, want 0", res2.Rows[0][0].Int)
	}
	// Result of the first query must agree with ground truth.
	want := int64(0)
	for r := 0; r < 512; r++ {
		if gen.Value(env.spec, r, 0) < 50 {
			want++
		}
	}
	if res1.Rows[0][0].Int != want {
		t.Errorf("count = %d, want %d", res1.Rows[0][0].Int, want)
	}
}

func TestDeliverErrorPropagates(t *testing.T) {
	env := newEnv(t, 256, 2, nil)
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64})
	sentinel := errors.New("engine rejected chunk")
	n := 0
	_, err := op.Run(Request{
		Columns: []int{0},
		Deliver: func(bc *BinaryChunk) error {
			n++
			if n == 2 {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestDiskFailurePropagates(t *testing.T) {
	env := newEnv(t, 256, 2, nil)
	env.disk.SetFailure(func(op, name string) error {
		if op == "read" && name == "raw/data.csv" {
			return vdisk.ErrInjected
		}
		return nil
	})
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64})
	_, err := op.Run(Request{
		Columns: []int{0},
		Deliver: func(*BinaryChunk) error { return nil },
	})
	if !errors.Is(err, vdisk.ErrInjected) {
		t.Errorf("err = %v, want injected disk failure", err)
	}
}

func TestWriteFailurePropagates(t *testing.T) {
	env := newEnv(t, 256, 2, nil)
	env.disk.SetFailure(func(op, name string) error {
		if op == "write" {
			return vdisk.ErrInjected
		}
		return nil
	})
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, Policy: FullLoad})
	_, err := op.Run(Request{
		Columns: []int{0},
		Deliver: func(*BinaryChunk) error { return nil },
	})
	if !errors.Is(err, vdisk.ErrInjected) {
		t.Errorf("err = %v, want injected write failure", err)
	}
}

func TestMalformedFilePropagates(t *testing.T) {
	d := vdisk.Unlimited()
	d.Preload("raw/bad.csv", []byte("1,2\n3\n5,6\n")) // row 1 lacks a field
	store := dbstore.NewStore(d)
	spec := gen.CSVSpec{Rows: 3, Cols: 2}
	table, err := store.CreateTable("bad", spec.Schema(), "raw/bad.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2} {
		op := New(store, table, Config{Workers: workers, ChunkLines: 8})
		_, err = op.Run(Request{
			Columns: []int{0, 1},
			Deliver: func(*BinaryChunk) error { return nil },
		})
		if err == nil {
			t.Errorf("workers=%d: malformed file should fail", workers)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	env := newEnv(t, 64, 2, nil)
	op := New(env.store, env.table, Config{Workers: 1, ChunkLines: 16})
	deliver := func(*BinaryChunk) error { return nil }
	cases := []Request{
		{Columns: []int{0}},                       // no deliver
		{Columns: nil, Deliver: deliver},          // no columns
		{Columns: []int{1, 0}, Deliver: deliver},  // unsorted
		{Columns: []int{0, 99}, Deliver: deliver}, // out of range
		{Columns: []int{-1, 0}, Deliver: deliver}, // negative
	}
	for i, req := range cases {
		if _, err := op.Run(req); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	d := vdisk.Unlimited()
	d.Preload("raw/empty.csv", nil)
	store := dbstore.NewStore(d)
	spec := gen.CSVSpec{Rows: 0, Cols: 2}
	table, err := store.CreateTable("empty", spec.Schema(), "raw/empty.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2} {
		op := New(store, table, Config{Workers: workers, ChunkLines: 8})
		st, err := op.Run(Request{
			Columns: []int{0},
			Deliver: func(*BinaryChunk) error { return nil },
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Delivered() != 0 {
			t.Errorf("empty file delivered %d chunks", st.Delivered())
		}
	}
	if !table.Complete() {
		t.Error("empty file scan should mark discovery complete")
	}
}

func TestThrottledDiskEndToEnd(t *testing.T) {
	// Realistic configuration: throttled disk, speculative policy, two
	// queries; validates correctness under real timing contention.
	d := vdisk.New(vdisk.Config{ReadBandwidth: 50 << 20, WriteBandwidth: 50 << 20})
	env := newEnv(t, 2048, 4, d)
	op := New(env.store, env.table, Config{
		Workers: 4, ChunkLines: 256, Policy: Speculative,
		CacheChunks: 2, Safeguard: true,
	})
	for q := 0; q < 3; q++ {
		got, _ := sumViaOperator(t, op, env)
		if got != wantSum(env) {
			t.Fatalf("query %d sum = %d, want %d", q, got, wantSum(env))
		}
	}
}

func TestConcurrentRunsSerialized(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 2})
	var wg sync.WaitGroup
	sums := make([]int64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int64
			_, err := op.Run(Request{
				Columns: []int{0, 1},
				Deliver: func(bc *BinaryChunk) error {
					for r := 0; r < bc.Rows; r++ {
						sum += bc.Column(0).Ints[r] + bc.Column(1).Ints[r]
					}
					return nil
				},
			})
			if err != nil {
				t.Error(err)
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	want := wantSum(env)
	for i, s := range sums {
		if s != want {
			t.Errorf("concurrent run %d sum = %d, want %d", i, s, want)
		}
	}
}
