package scanraw

import (
	"testing"
	"time"
)

func TestBlockedFraction(t *testing.T) {
	cases := []struct {
		rep  ResourceReport
		want float64
	}{
		{ResourceReport{ReadBlocked: 0, Duration: time.Second}, 0},
		{ResourceReport{ReadBlocked: time.Second / 2, Duration: time.Second}, 0.5},
		{ResourceReport{ReadBlocked: 2 * time.Second, Duration: time.Second}, 1},
		{ResourceReport{ReadBlocked: time.Second, Duration: 0}, 0},
	}
	for _, c := range cases {
		if got := c.rep.BlockedFraction(); got != c.want {
			t.Errorf("BlockedFraction(%+v) = %v, want %v", c.rep, got, c.want)
		}
	}
}

func TestAdaptWorkersHeuristic(t *testing.T) {
	env := newEnv(t, 64, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 4, AdaptiveWorkers: true, MinWorkers: 1, MaxWorkers: 16,
	})
	// CPU-bound report: pool doubles.
	op.adaptWorkers(ResourceReport{Workers: 4, ReadBlocked: 800 * time.Millisecond, Duration: time.Second})
	if op.workers != 8 {
		t.Errorf("CPU-bound: workers = %d, want 8", op.workers)
	}
	// Again: capped at MaxWorkers.
	op.adaptWorkers(ResourceReport{Workers: 12, ReadBlocked: 900 * time.Millisecond, Duration: time.Second})
	if op.workers != 16 {
		t.Errorf("capped: workers = %d, want 16", op.workers)
	}
	// I/O-bound report: shrink by one.
	op.adaptWorkers(ResourceReport{Workers: 16, ReadBlocked: 0, Duration: time.Second})
	if op.workers != 15 {
		t.Errorf("I/O-bound: workers = %d, want 15", op.workers)
	}
	// In between: unchanged.
	op.adaptWorkers(ResourceReport{Workers: 15, ReadBlocked: 100 * time.Millisecond, Duration: time.Second})
	if op.workers != 15 {
		t.Errorf("steady: workers = %d, want 15", op.workers)
	}
	// Never below MinWorkers.
	op2 := New(env.store, env.table, Config{
		Workers: 1, AdaptiveWorkers: true, MinWorkers: 1, MaxWorkers: 4,
	})
	op2.adaptWorkers(ResourceReport{Workers: 1, ReadBlocked: 0, Duration: time.Second})
	if op2.workers != 1 {
		t.Errorf("floor: workers = %d, want 1", op2.workers)
	}
	// Disabled: no change.
	op3 := New(env.store, env.table, Config{Workers: 4})
	op3.adaptWorkers(ResourceReport{Workers: 4, ReadBlocked: time.Second, Duration: time.Second})
	if op3.workers != 4 {
		t.Errorf("disabled: workers = %d, want 4", op3.workers)
	}
}

func TestAdaptiveWorkersGrowUnderCPUBound(t *testing.T) {
	// Engine bottleneck (slow deliver) makes READ block; across queries
	// the adaptive pool must grow toward the cap.
	env := newEnv(t, 1024, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 1, AdaptiveWorkers: true, MinWorkers: 1, MaxWorkers: 8,
		ChunkLines: 64, CacheChunks: 2,
		TextBufferChunks: 2, PositionBufferChunks: 2,
	})
	slowDeliver := func(bc *BinaryChunk) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}
	prev := op.Workers()
	grew := false
	for q := 0; q < 4; q++ {
		st, err := op.Run(Request{Columns: []int{0, 1, 2, 3}, Deliver: slowDeliver})
		if err != nil {
			t.Fatal(err)
		}
		if st.WorkersUsed != prev {
			t.Errorf("query %d used %d workers, pool said %d", q, st.WorkersUsed, prev)
		}
		cur := op.Workers()
		if cur > prev {
			grew = true
		}
		if cur < prev {
			t.Errorf("pool shrank under CPU-bound load: %d -> %d", prev, cur)
		}
		prev = cur
		// The cache fills with converted chunks; clear it so every query
		// re-exercises the pipeline.
		op.Cache().Clear()
	}
	if !grew {
		t.Error("adaptive pool never grew under sustained READ blocking")
	}
}

func TestAdaptiveWorkersConfigDefaults(t *testing.T) {
	cfg := Config{Workers: 3, AdaptiveWorkers: true}.withDefaults()
	if cfg.MinWorkers != 1 || cfg.MaxWorkers != 12 {
		t.Errorf("defaults = [%d,%d], want [1,12]", cfg.MinWorkers, cfg.MaxWorkers)
	}
	cfg2 := Config{Workers: 2, AdaptiveWorkers: true, MinWorkers: 5, MaxWorkers: 3}.withDefaults()
	if cfg2.MaxWorkers < cfg2.MinWorkers {
		t.Errorf("bounds not normalized: [%d,%d]", cfg2.MinWorkers, cfg2.MaxWorkers)
	}
}

func TestConsumeBoundSignals(t *testing.T) {
	cases := []struct {
		rep  ResourceReport
		want bool
	}{
		// Producer stalled for half the run: consume-bound.
		{ResourceReport{ConsumeStall: 500 * time.Millisecond, Duration: time.Second}, true},
		// Mild stall below the threshold: not consume-bound.
		{ResourceReport{ConsumeStall: 100 * time.Millisecond, Duration: time.Second}, false},
		// Queue sitting near capacity: consume-bound even without stall time.
		{ResourceReport{Duration: time.Second, ConsumeQueueDepth: 7, ConsumeQueueCap: 8}, true},
		// Shallow queue: not consume-bound.
		{ResourceReport{Duration: time.Second, ConsumeQueueDepth: 2, ConsumeQueueCap: 8}, false},
		// No samples (zero cap): depth is meaningless.
		{ResourceReport{Duration: time.Second, ConsumeQueueDepth: 7, ConsumeQueueCap: 0}, false},
	}
	for _, c := range cases {
		if got := c.rep.ConsumeBound(); got != c.want {
			t.Errorf("ConsumeBound(%+v) = %v, want %v", c.rep, got, c.want)
		}
	}
}

func TestAdaptWorkersConsumeBoundShrinks(t *testing.T) {
	env := newEnv(t, 64, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 8, AdaptiveWorkers: true, MinWorkers: 2, MaxWorkers: 16,
	})
	// Consume stall dominates: shrink by one even though READ was blocked
	// long enough that the CPU-bound rule alone would have doubled the pool.
	op.adaptWorkers(ResourceReport{
		Workers: 8, ReadBlocked: 900 * time.Millisecond, Duration: time.Second,
		ConsumeStall: 600 * time.Millisecond,
	})
	if op.workers != 7 {
		t.Errorf("consume-stall + CPU-bound: workers = %d, want 7 (shrink overrides grow)", op.workers)
	}
	// Deep consume queue alone also shrinks.
	op.adaptWorkers(ResourceReport{
		Workers: 7, Duration: time.Second,
		ConsumeQueueDepth: 6.5, ConsumeQueueCap: 8,
	})
	if op.workers != 6 {
		t.Errorf("deep queue: workers = %d, want 6", op.workers)
	}
	// Never below the floor.
	op2 := New(env.store, env.table, Config{
		Workers: 2, AdaptiveWorkers: true, MinWorkers: 2, MaxWorkers: 8,
	})
	op2.adaptWorkers(ResourceReport{
		Workers: 2, Duration: time.Second, ConsumeStall: time.Second,
	})
	if op2.workers != 2 {
		t.Errorf("floor: workers = %d, want 2", op2.workers)
	}
}
