package scanraw

import (
	"fmt"
	"testing"

	"scanraw/internal/engine"
)

func TestChunkRangeContains(t *testing.T) {
	var nilRange *ChunkRange
	if !nilRange.Contains(0) || !nilRange.Contains(1<<20) {
		t.Fatal("nil range must contain every chunk")
	}
	r := &ChunkRange{Lo: 2, Hi: 5}
	for id, want := range map[int]bool{0: false, 1: false, 2: true, 4: true, 5: false, 9: false} {
		if r.Contains(id) != want {
			t.Errorf("[2,5).Contains(%d) = %v, want %v", id, r.Contains(id), want)
		}
	}
	open := &ChunkRange{Lo: 3}
	if open.Contains(2) || !open.Contains(3) || !open.Contains(1<<20) {
		t.Fatal("[3,∞) containment wrong")
	}
}

func TestValidateRequestRange(t *testing.T) {
	base := Request{Columns: []int{0}, Deliver: func(*BinaryChunk) error { return nil }}
	bad := base
	bad.Range = &ChunkRange{Lo: -1}
	if err := validateRequest(bad, 4); err == nil {
		t.Error("negative lower bound accepted")
	}
	bad = base
	bad.Range = &ChunkRange{Lo: 3, Hi: 3}
	if err := validateRequest(bad, 4); err == nil {
		t.Error("empty range accepted")
	}
	good := base
	good.Range = &ChunkRange{Lo: 3, Hi: 0} // unbounded above
	if err := validateRequest(good, 4); err != nil {
		t.Errorf("open range rejected: %v", err)
	}
}

func TestEnclosingRange(t *testing.T) {
	rng := func(lo, hi int) *ChunkRange { return &ChunkRange{Lo: lo, Hi: hi} }
	cases := []struct {
		in   []*ChunkRange
		want *ChunkRange
	}{
		{[]*ChunkRange{rng(0, 4), rng(4, 8)}, rng(0, 8)},
		{[]*ChunkRange{rng(2, 4), nil}, nil},
		{[]*ChunkRange{rng(5, 0), rng(1, 3)}, rng(1, 0)},
		{[]*ChunkRange{rng(3, 7)}, rng(3, 7)},
	}
	for i, c := range cases {
		reqs := make([]Request, len(c.in))
		for j, r := range c.in {
			reqs[j] = Request{Range: r}
		}
		got := enclosingRange(reqs)
		switch {
		case got == nil && c.want == nil:
		case got == nil || c.want == nil || *got != *c.want:
			t.Errorf("case %d: enclosingRange = %v, want %v", i, got, c.want)
		}
	}
}

// rangeSQL runs sql over one chunk range of a fresh operator.
func rangeSQL(t *testing.T, env *testEnv, cfg Config, sql string, rng *ChunkRange) (*engine.Result, RunStats) {
	t.Helper()
	op := New(env.store, env.table, cfg)
	q, err := engine.ParseSQL(sql, env.table.Schema())
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	res, st, err := ExecuteQueryRange(op, q, rng)
	if err != nil {
		t.Fatalf("%s over %v: %v", sql, rng, err)
	}
	return res, st
}

// TestRangePartitionSums splits the chunk universe at every boundary and
// checks that the two halves' SUMs add up to the whole-file SUM — the
// invariant distributed scatter-gather relies on: ranges partition rows.
func TestRangePartitionSums(t *testing.T) {
	env := newEnv(t, 800, 3, nil)
	cfg := Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables}
	full, _ := rangeSQL(t, env, cfg, "SELECT SUM(c0), COUNT(*) FROM data", nil)
	total, count := full.Rows[0][0].Int, full.Rows[0][1].Int
	if count != 800 {
		t.Fatalf("COUNT(*) = %d, want 800", count)
	}
	nchunks := (800 + 63) / 64
	for cut := 1; cut < nchunks; cut++ {
		lo, _ := rangeSQL(t, env, cfg, "SELECT SUM(c0), COUNT(*) FROM data", &ChunkRange{Lo: 0, Hi: cut})
		hi, _ := rangeSQL(t, env, cfg, "SELECT SUM(c0), COUNT(*) FROM data", &ChunkRange{Lo: cut})
		if got := lo.Rows[0][0].Int + hi.Rows[0][0].Int; got != total {
			t.Errorf("cut %d: SUM halves %d + %d != %d", cut, lo.Rows[0][0].Int, hi.Rows[0][0].Int, total)
		}
		if got := lo.Rows[0][1].Int + hi.Rows[0][1].Int; got != count {
			t.Errorf("cut %d: COUNT halves sum to %d, want %d", cut, got, count)
		}
	}
}

// TestRangePartitionRows checks row-level partitioning for a selection:
// concatenating the two halves' rows in range order reproduces the full
// scan's canonical row order byte for byte.
func TestRangePartitionRows(t *testing.T) {
	env := newEnv(t, 500, 3, nil)
	cfg := Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables}
	sql := "SELECT c0, c1 FROM data WHERE c0 > 250"
	full, _ := rangeSQL(t, env, cfg, sql, nil)
	lo, _ := rangeSQL(t, env, cfg, sql, &ChunkRange{Lo: 0, Hi: 4})
	hi, _ := rangeSQL(t, env, cfg, sql, &ChunkRange{Lo: 4})
	cat := append(append([][]engine.Value{}, lo.Rows...), hi.Rows...)
	if len(cat) != len(full.Rows) {
		t.Fatalf("row counts: %d + %d != %d", len(lo.Rows), len(hi.Rows), len(full.Rows))
	}
	for i := range cat {
		if fmt.Sprint(cat[i]) != fmt.Sprint(full.Rows[i]) {
			t.Fatalf("row %d: %v != %v", i, cat[i], full.Rows[i])
		}
	}
}

// TestRangeUpperBoundSavesChunks: a bounded range never reads past Hi, so
// the run reports the chunks past the bound as saved work... rather, the
// delivered count stays within the range width.
func TestRangeUpperBoundStopsScan(t *testing.T) {
	env := newEnv(t, 640, 3, nil) // 10 chunks of 64 lines
	cfg := Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables}
	_, st := rangeSQL(t, env, cfg, "SELECT SUM(c0) FROM data", &ChunkRange{Lo: 2, Hi: 5})
	if got := st.Delivered(); got != 3 {
		t.Fatalf("delivered %d chunks for a width-3 range", got)
	}
	// A second operator over the same table already knows the chunk
	// geometry discovered above; the range scan must still deliver only
	// the in-range chunks from cache/db/raw.
	_, st2 := rangeSQL(t, env, cfg, "SELECT SUM(c1) FROM data", &ChunkRange{Lo: 2, Hi: 5})
	if got := st2.Delivered(); got != 3 {
		t.Fatalf("second pass delivered %d chunks, want 3", got)
	}
}

// TestRangeLimitDemand: a LIMIT query whose range starts past chunk 0 must
// still terminate early — the demand frontier is seeded at the range's
// lower bound, not at zero.
func TestRangeLimitDemand(t *testing.T) {
	env := newEnv(t, 1280, 3, nil) // 20 chunks of 64 lines
	cfg := Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables}
	res, st := rangeSQL(t, env, cfg, "SELECT c0 FROM data LIMIT 5", &ChunkRange{Lo: 10})
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	if !st.TerminatedEarly {
		t.Fatal("range-restricted LIMIT scan did not terminate early")
	}
	if st.ChunksSaved <= 0 {
		t.Fatalf("ChunksSaved = %d, want > 0", st.ChunksSaved)
	}
	// The rows must come from the range, i.e. equal the first five rows of
	// a plain scan over [10, ∞).
	ref, _ := rangeSQL(t, env, cfg, "SELECT c0 FROM data", &ChunkRange{Lo: 10})
	for i := range res.Rows {
		if res.Rows[i][0].Int != ref.Rows[i][0].Int {
			t.Fatalf("row %d: %d != reference %d", i, res.Rows[i][0].Int, ref.Rows[i][0].Int)
		}
	}
}

// TestRangeSharedScan: members with disjoint ranges sharing one scan each
// see exactly their own chunks.
func TestRangeSharedScan(t *testing.T) {
	env := newEnv(t, 640, 3, nil) // 10 chunks
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables})
	sch := env.table.Schema()
	mk := func(sql string) *engine.Query {
		q, err := engine.ParseSQL(sql, sch)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	qa, qb := mk("SELECT SUM(c0) FROM data"), mk("SELECT SUM(c0) FROM data")
	exA, errA := engine.NewExecutor(qa, sch)
	exB, errB := engine.NewExecutor(qb, sch)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	reqs := []Request{
		{Columns: qa.RequiredColumns(), Range: &ChunkRange{Lo: 0, Hi: 5}, Deliver: exA.Consume},
		{Columns: qb.RequiredColumns(), Range: &ChunkRange{Lo: 5}, Deliver: exB.Consume},
	}
	_, per, err := op.RunShared(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if per[0].DeliveredChunks != 5 || per[1].DeliveredChunks != 5 {
		t.Fatalf("per-member delivery %d/%d, want 5/5", per[0].DeliveredChunks, per[1].DeliveredChunks)
	}
	ra, errA := exA.Result()
	rb, errB := exB.Result()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	full, _ := rangeSQL(t, env, Config{Workers: 2, ChunkLines: 64, CacheChunks: 8, Policy: ExternalTables},
		"SELECT SUM(c0) FROM data", nil)
	if ra.Rows[0][0].Int+rb.Rows[0][0].Int != full.Rows[0][0].Int {
		t.Fatalf("shared range halves %d + %d != %d", ra.Rows[0][0].Int, rb.Rows[0][0].Int, full.Rows[0][0].Int)
	}
}
