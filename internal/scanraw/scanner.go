package scanraw

import (
	"bytes"
	"fmt"
	"time"
)

// rawScanner is the READ thread's view of the raw file: block-granular,
// arbiter-serialized disk reads with line-oriented chunk carving for
// discovery scans and extent reads for chunks whose geometry the catalog
// already knows.
type rawScanner struct {
	op   *Operator
	name string

	pos     int64  // logical offset of pending[0]
	pending []byte // read-ahead not yet consumed
	diskOff int64  // next disk offset to fetch
	eof     bool
}

func newRawScanner(o *Operator, name string) *rawScanner {
	return &rawScanner{op: o, name: name}
}

// seek positions the scanner at logical offset off, keeping read-ahead
// when possible.
func (s *rawScanner) seek(off int64) {
	if off >= s.pos && off <= s.pos+int64(len(s.pending)) {
		s.pending = s.pending[off-s.pos:]
		s.pos = off
		return
	}
	s.pending = nil
	s.pos = off
	s.diskOff = off
	s.eof = false
}

// fill reads one more block from the disk into the read-ahead buffer.
func (s *rawScanner) fill() error {
	if s.eof {
		return nil
	}
	block := make([]byte, s.op.cfg.ReadBlockBytes)
	s.op.arbiter.Lock()
	start := time.Now()
	n, err := s.op.disk.ReadAt(s.name, block, s.diskOff)
	s.op.prof.readNs.Add(int64(time.Since(start)))
	s.op.arbiter.Unlock()
	if err != nil {
		return fmt.Errorf("scanraw: reading %s at %d: %w", s.name, s.diskOff, err)
	}
	if n == 0 {
		s.eof = true
		return nil
	}
	s.pending = append(s.pending, block[:n]...)
	s.diskOff += int64(n)
	return nil
}

// next carves the next chunk of at most maxLines lines from the stream,
// returning its bytes (including trailing newlines) and line count. A zero
// line count signals end of file.
func (s *rawScanner) next(maxLines int) ([]byte, int, error) {
	lines := 0
	cut := 0 // bytes of pending covered by complete lines so far
	for {
		// Scan newly available bytes for newlines.
		for lines < maxLines {
			i := bytes.IndexByte(s.pending[cut:], '\n')
			if i < 0 {
				break
			}
			cut += i + 1
			lines++
		}
		if lines == maxLines {
			break
		}
		wasEOF := s.eof
		if err := s.fill(); err != nil {
			return nil, 0, err
		}
		if wasEOF && s.eof {
			// No more data: a trailing fragment without '\n' is a line.
			if cut < len(s.pending) {
				cut = len(s.pending)
				lines++
			}
			break
		}
	}
	if lines == 0 {
		return nil, 0, nil
	}
	data := append([]byte(nil), s.pending[:cut]...)
	s.pending = s.pending[cut:]
	s.pos += int64(cut)
	return data, lines, nil
}

// readExtent reads exactly n bytes starting at logical offset off — the
// extent of a chunk whose geometry the catalog knows.
func (s *rawScanner) readExtent(off, n int64) ([]byte, error) {
	s.seek(off)
	for int64(len(s.pending)) < n {
		wasEOF := s.eof
		if err := s.fill(); err != nil {
			return nil, err
		}
		if wasEOF && s.eof {
			return nil, fmt.Errorf("scanraw: %s truncated: chunk extent [%d,%d) past end of file",
				s.name, off, off+n)
		}
	}
	data := append([]byte(nil), s.pending[:n]...)
	s.pending = s.pending[n:]
	s.pos += n
	return data, nil
}
