package scanraw

import (
	"reflect"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// TestParallelConsumeMatchesSerial is the end-to-end differential test:
// the same queries through a serial-consume operator and a
// ConsumeWorkers=8 operator (each over its own freshly staged copy of the
// same file) must return identical results.
func TestParallelConsumeMatchesSerial(t *testing.T) {
	queries := []string{
		"SELECT SUM(c0+c1+c2+c3) FROM data",
		"SELECT c0, SUM(c1), COUNT(*), MIN(c2), MAX(c3) FROM data WHERE c1 < 800 GROUP BY c0 ORDER BY c0",
		"SELECT c0, c1 FROM data WHERE c2 >= 900",
		"SELECT c1, c2 FROM data WHERE c0 = 7 ORDER BY c1 DESC, c2 LIMIT 25",
		"SELECT c0, COUNT(*) AS n FROM data GROUP BY c0 HAVING n > 10 ORDER BY n DESC LIMIT 5",
	}
	run := func(consumeWorkers int) []*engine.Result {
		env := newEnv(t, 4096, 4, nil)
		op := New(env.store, env.table, Config{
			Workers: 4, ChunkLines: 256, CacheChunks: 8,
			Policy: Speculative, Safeguard: true, CollectStats: true,
			ConsumeWorkers: consumeWorkers,
		})
		var out []*engine.Result
		for _, sql := range queries {
			q, err := engine.ParseSQL(sql, env.table.Schema())
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			res, _, err := ExecuteQuery(op, q)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			out = append(out, res)
		}
		op.WaitIdle()
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i, sql := range queries {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s:\nserial:   %+v\nparallel: %+v", sql, serial[i].Rows, parallel[i].Rows)
		}
	}
}

// benchConsumeOperator stages a file, builds an operator whose simulated
// CPU makes consume the dominant stage, and warms the binary cache so the
// steady-state iterations measure pure delivery + evaluation.
func benchConsumeOperator(b *testing.B, consumeWorkers int) (*Operator, *engine.Query) {
	b.Helper()
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: 16384, Cols: 4, Seed: 7, MaxValue: 1000}
	gen.Preload(d, "raw/bench.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("bench", spec.Schema(), "raw/bench.csv")
	if err != nil {
		b.Fatal(err)
	}
	op := New(store, table, Config{
		Workers: 8, ChunkLines: 1024, CacheChunks: 32,
		Policy: ExternalTables, CPUSlowdown: 24,
		ConsumeWorkers: consumeWorkers,
	})
	// High-selectivity aggregate: every row survives the predicate, so the
	// consume stage processes the full file each run.
	q, err := engine.ParseSQL("SELECT c0, SUM(c1), COUNT(*) FROM bench WHERE c2 >= 0 GROUP BY c0", table.Schema())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := ExecuteQuery(op, q); err != nil {
		b.Fatal(err) // warm-up: converts and caches every chunk
	}
	return op, q
}

func runConsumeBench(b *testing.B, workers int) {
	op, q := benchConsumeOperator(b, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExecuteQuery(op, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsumeSerial and BenchmarkConsumeParallel8 measure end-to-end
// query latency on a cache-warm operator whose simulated CPU (CPUSlowdown)
// makes evaluation the bottleneck: the parallel delivery path must beat
// serial by overlapping consume work across its workers.
func BenchmarkConsumeSerial(b *testing.B)    { runConsumeBench(b, 1) }
func BenchmarkConsumeParallel8(b *testing.B) { runConsumeBench(b, 8) }
