package scanraw

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/chunk"
	"scanraw/internal/dbstore"
	"scanraw/internal/kernel"
)

// hookRun is a test-only observation point invoked with the pipeline state
// just before the stage goroutines start.
var hookRun func(*run)

// posItem is the unit flowing through the position buffer: a text chunk
// plus its positional map computed by TOKENIZE.
type posItem struct {
	tc *chunk.TextChunk
	pm *chunk.PositionalMap
}

// run holds the per-query pipeline state: the buffers (bounded channels
// with slot semaphores), the worker pool, and the scheduler signals.
type run struct {
	op  *Operator
	req Request
	del *deliverer // CONSUME stage: serial pass-through or fan-out

	// order, when non-nil, is the explicit chunk visit order of a sampled
	// scan (Request.Order); the read stage walks it instead of the file.
	order []int

	upTo int // attributes to tokenize: max converted ordinal + 1

	// convCols is the full-conversion column set: the requested columns
	// rounded up to the store's group-partition boundaries, so every
	// converted chunk carries complete groups and every group page is
	// writable. With the default group width 1 it is the request itself.
	convCols []int

	// kern, when non-nil, is the fused conversion kernel for this run's
	// column set: text chunks skip TOKENIZE (they flow through the position
	// buffer with a nil map) and the parse task converts in one pass. The
	// fused time is accounted to the Parse stage; Tokenize stays zero.
	kern *kernel.Kernel

	// plans maps chunk IDs to partial-width plans (READ registers, PARSE
	// consumes); kerns caches per-plan fused kernels by column-set key.
	plansMu sync.Mutex
	plans   map[int]partialPlan
	kernsMu sync.Mutex
	kerns   map[string]*kernel.Kernel

	done    chan struct{} // closed on first error
	errOnce sync.Once
	runErr  error

	freeText  chan struct{} // free slots of the text chunks buffer
	textBuf   chan *chunk.TextChunk
	freePos   chan struct{} // free slots of the position buffer
	posBuf    chan posItem
	freeBin   chan struct{} // undelivered-chunk budget of the binary cache
	deliverCh chan *BinaryChunk

	workers chan *workerSlot // worker-pool semaphore
	seqSlot *workerSlot      // the implicit worker of sequential mode

	readBlocked  atomic.Bool
	readDone     atomic.Bool
	readFinished chan struct{} // closed when READ exits
	specNotify   chan struct{} // pokes the speculative scheduler
	finish       chan struct{} // closed at teardown; stops the scheduler

	tokWG    sync.WaitGroup
	parseWG  sync.WaitGroup
	schedWG  sync.WaitGroup
	writeWG  sync.WaitGroup
	convDone chan struct{} // closed when every conversion task finished

	writeQ chan *BinaryChunk // FullLoad write queue

	gate *cacheGate // wakes cache-insert waiters when pins release

	// Demand-driven termination: satisfied latches once the request's
	// Satisfied signal fires; satCh (when non-nil) is closed at the same
	// moment so blocked producers wake instead of waiting for the drain.
	satisfied atomic.Bool
	satOnce   sync.Once
	satCh     chan struct{}

	// Fused-kernel slow start (demand-driven runs only). A fused pipeline
	// has no tokenize stage competing for workers, so the position buffer
	// fills instantly and every worker would commit to a full conversion
	// before the first delivery can reveal the demand is already
	// satisfied — for a LIMIT that triples the work a two-stage pipeline
	// strands in flight. Until a consumed delivery proves more chunks are
	// needed (rampOpen closes), admission is capped at the rampSlots
	// window.
	rampSlots chan struct{}
	rampOpen  chan struct{}
	rampOnce  sync.Once

	invisibleLeft atomic.Int64

	written          atomic.Int64 // chunks this run loaded into the database
	groupWrites      atomic.Int64 // single-group payoff writes
	deliveredCache   atomic.Int64 // ordered scans deliver cache hits in-order
	deliveredDB      atomic.Int64
	deliveredRaw     atomic.Int64
	deliveredPartial atomic.Int64
	skipped          atomic.Int64

	// Consume-queue depth sampling (delivery loop): the resizer's signal
	// that chunks pile up in front of the consume stage.
	depthSum atomic.Int64
	depthN   atomic.Int64

	blocked blockedTimer // READ time lost to a full text buffer
}

// cacheGate is the condition variable cache-insert waiters block on while
// every cache slot is pinned. It is created per RunContext call — before
// the phase-1 cached deliveries — because with fan-out consume, phase-1
// chunks may still be pinned when the pipeline starts, and their release
// must wake the pipeline's waiters.
type cacheGate struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func newCacheGate() *cacheGate {
	g := &cacheGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *cacheGate) broadcast() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (r *run) fail(err error) {
	if err == nil {
		return
	}
	r.errOnce.Do(func() {
		r.runErr = err
		close(r.done)
		// The consume stage latches the failure too, so fan-out workers
		// stop evaluating chunks that can no longer contribute a result.
		if r.del != nil {
			r.del.setErr(err)
		}
		r.gate.broadcast()
	})
}

// fusedRampWindow caps how many fused conversions run concurrently before
// the first consumed delivery shows the demand wants more than one chunk.
// Two keeps a successor warm behind the chunk whose consume answers the
// question, without committing the whole worker pool to speculation.
const fusedRampWindow = 2

// openRamp lifts the fused slow-start cap: a delivery was consumed and the
// demand is still unsatisfied, so speculating with every worker is justified.
func (r *run) openRamp() {
	if r.rampOpen == nil {
		return
	}
	r.rampOnce.Do(func() { close(r.rampOpen) })
}

// demandSatisfied polls the request's Satisfied signal, latching the result
// and closing satCh on the first true so the pipeline stops issuing chunks.
func (r *run) demandSatisfied() bool {
	if r.satisfied.Load() {
		return true
	}
	if r.req.Satisfied != nil && r.req.Satisfied() {
		r.satisfied.Store(true)
		r.satOnce.Do(func() {
			if r.satCh != nil {
				close(r.satCh)
			}
		})
		return true
	}
	return false
}

func (r *run) failed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

func (r *run) poke() {
	select {
	case r.specNotify <- struct{}{}:
	default:
	}
}

// runWrite loads one chunk and accounts it to this run.
func (r *run) runWrite(bc *BinaryChunk) error {
	if err := r.op.writeChunk(bc); err != nil {
		return err
	}
	r.written.Add(1)
	return nil
}

func validateRequest(req Request, ncols int) error {
	if req.Deliver == nil {
		return fmt.Errorf("scanraw: request needs a Deliver callback")
	}
	if len(req.Columns) == 0 {
		return fmt.Errorf("scanraw: request selects no columns")
	}
	if !sort.IntsAreSorted(req.Columns) {
		return fmt.Errorf("scanraw: request columns must be sorted ascending")
	}
	for _, c := range req.Columns {
		if c < 0 || c >= ncols {
			return fmt.Errorf("scanraw: column ordinal %d out of range [0,%d)", c, ncols)
		}
	}
	if req.Range != nil {
		if req.Range.Lo < 0 {
			return fmt.Errorf("scanraw: chunk range lower bound %d is negative", req.Range.Lo)
		}
		if req.Range.Hi > 0 && req.Range.Hi <= req.Range.Lo {
			return fmt.Errorf("scanraw: chunk range [%d,%d) is empty", req.Range.Lo, req.Range.Hi)
		}
	}
	if req.Order != nil && req.Range != nil {
		return fmt.Errorf("scanraw: Order and Range are mutually exclusive")
	}
	return nil
}

// validateOrder checks that a Request.Order callback returned a genuine
// permutation of [0, n): every chunk visited exactly once.
func validateOrder(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("scanraw: visit order has %d entries for %d chunks", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n {
			return fmt.Errorf("scanraw: visit order entry %d out of range [0,%d)", id, n)
		}
		if seen[id] {
			return fmt.Errorf("scanraw: visit order repeats chunk %d", id)
		}
		seen[id] = true
	}
	return nil
}

// discoverAll completes chunk discovery without converting anything: it
// carves every remaining chunk boundary out of the byte stream and
// registers the geometry in the catalog. Sampled scans need the total
// chunk count before the first delivery, so on a cold file this costs one
// sequential read of the undiscovered tail (the text is dropped).
func (o *Operator) discoverAll(ctx context.Context) error {
	if o.table.Complete() {
		return nil
	}
	sc := newRawScanner(o, o.table.RawFile())
	id := 0
	var off int64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if meta, known := o.table.Chunk(id); known {
			off = meta.RawOff + meta.RawLen
			id++
			continue
		}
		sc.seek(off)
		data, lines, err := sc.next(o.cfg.ChunkLines)
		if err != nil {
			return err
		}
		if lines == 0 {
			break
		}
		if err := o.table.EnsureChunk(id, lines, off, int64(len(data))); err != nil {
			return err
		}
		off += int64(len(data))
		id++
	}
	return o.table.SetComplete()
}

// Run executes one query over the raw file: it delivers every chunk of the
// file (via cache, database, or raw conversion) to req.Deliver exactly
// once, loading data along the way according to the write policy.
func (o *Operator) Run(req Request) (RunStats, error) {
	return o.RunContext(context.Background(), req)
}

// RunContext is Run with cancellation: when ctx is cancelled (client
// disconnect, per-query timeout) the pipeline stops at the next chunk
// boundary, the stage goroutines unwind, and the disk is released. The
// returned error is ctx.Err() when cancellation cut the run short.
// Cancellation is chunk-granular — an in-flight disk transfer or
// conversion task finishes before the run observes it.
func (o *Operator) RunContext(ctx context.Context, req Request) (RunStats, error) {
	o.runMu.Lock()
	defer o.runMu.Unlock()

	var st RunStats
	if err := validateRequest(req, o.table.Schema().NumColumns()); err != nil {
		return st, err
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	start := time.Now()
	prof0 := o.prof.snapshot()
	disk0 := o.disk.Stats()

	// The consume stage (serial or fan-out, see deliverer) spans the whole
	// run: cached delivery, the pipeline, and the sequential fallback all
	// feed it, so consume parallelism applies to cache-warmed runs too.
	del := o.newDeliverer(req.Deliver, o.consumeWorkersFor(req))
	gate := newCacheGate()
	sat := func() bool { return req.Satisfied != nil && req.Satisfied() }

	// Phase 1: deliver cached chunks first (§3.2.1 delivery order). The
	// previous query's safeguard flush may still be writing — that is
	// fine, cached delivery needs no disk. Each delivery holds a pin until
	// its consume finishes: the pipeline that follows may evict and recycle
	// cache entries, and a fan-out consume may still be reading this chunk
	// when it starts.
	//
	// Ordered (sampled) scans skip this phase entirely: delivering cached
	// chunks first would bias the sample toward whatever happens to be hot,
	// so cache hits are served when the visit order reaches them instead.
	delivered := make(map[int]bool)
	phase1 := o.cache.IDs()
	if req.Order != nil {
		phase1 = nil
	}
	for _, id := range phase1 {
		if sat() {
			break
		}
		if err := ctx.Err(); err != nil {
			_ = del.close()
			st.Duration = time.Since(start)
			return st, err
		}
		if !req.Range.Contains(id) {
			continue
		}
		bc := o.cache.Acquire(id)
		if bc == nil {
			continue
		}
		if !bc.HasAll(req.Columns) {
			if err := o.cache.Unpin(id); err != nil {
				del.setErr(err)
			}
			continue
		}
		if req.Skip != nil {
			if meta, ok := o.table.Chunk(id); ok && req.Skip(meta) {
				if err := o.cache.Unpin(id); err != nil {
					del.setErr(err)
				}
				delivered[id] = true
				st.SkippedChunks++
				continue
			}
		}
		id := id
		del.deliver(bc, func() {
			if err := o.cache.Unpin(id); err != nil {
				del.setErr(err)
			}
			gate.broadcast()
		})
		if err := del.failedErr(); err != nil {
			_ = del.close()
			return st, err
		}
		delivered[id] = true
		st.DeliveredCache++
	}

	// Disk reads must wait for the previous safeguard flush (§4).
	o.flushWG.Wait()

	// Ordered scans fix the visit order up front: discovery must be
	// complete (the permutation is over the whole chunk universe) before
	// the callback can be consulted.
	var order []int
	if req.Order != nil {
		if derr := o.discoverAll(ctx); derr != nil {
			_ = del.close()
			st.Duration = time.Since(start)
			return st, derr
		}
		order = req.Order(o.table.NumChunks())
		if oerr := validateOrder(order, o.table.NumChunks()); oerr != nil {
			_ = del.close()
			st.Duration = time.Since(start)
			return st, oerr
		}
	}

	workers := o.workers
	var err error
	var r *run
	switch {
	case sat():
		// Satisfied from the cache alone: no disk scan needed.
	case workers == 0:
		r, err = o.runSequential(ctx, req, del, delivered, order, gate)
	default:
		r, err = o.runParallel(ctx, req, del, delivered, order, workers, gate)
	}
	// All deliver calls have returned: drain the consume workers and
	// surface any consume error that had not reached the run yet.
	if cerr := del.close(); err == nil {
		err = cerr
	}
	if r != nil {
		st.DeliveredCache += int(r.deliveredCache.Load())
		st.DeliveredDB = int(r.deliveredDB.Load())
		st.DeliveredRaw = int(r.deliveredRaw.Load())
		st.DeliveredPartial = int(r.deliveredPartial.Load())
		st.SkippedChunks += int(r.skipped.Load())
		st.WrittenDuringRun = int(r.written.Load())
		st.GroupWritesDuringRun = int(r.groupWrites.Load())
		st.WorkersUsed = workers
		st.ReadBlocked = r.blocked.total()
	}
	if err == nil && sat() {
		// Demand-driven termination accounting, clamped to the request's
		// chunk range: chunks outside the range were never wanted by this
		// request, so terminating early cannot have "saved" them.
		known := o.table.NumChunks()
		lo, hi := 0, known
		if req.Range != nil {
			if req.Range.Lo < known {
				lo = req.Range.Lo
			} else {
				lo = known
			}
			if req.Range.Hi > 0 && req.Range.Hi < known {
				hi = req.Range.Hi
			}
		}
		saved := (hi - lo) - st.Delivered() - st.SkippedChunks
		if saved < 0 {
			saved = 0
		}
		if saved > 0 || !o.table.Complete() {
			st.TerminatedEarly = true
			st.ChunksSaved = saved
		}
	}

	// Safeguard: flush the cache's unloaded chunks in the background; the
	// next query's disk reads wait for it. An early-terminated run flushes
	// too — already-converted chunks are exactly the speculative-loading
	// payoff (§4), and the pins taken per chunk keep a concurrent next-query
	// eviction from recycling what the flush is writing.
	if err == nil && o.cfg.Safeguard &&
		(o.cfg.Policy == Speculative || o.cfg.Policy == BufferedLoad) {
		ids := o.cache.UnloadedIDs()
		st.FlushedAfterRun = len(ids)
		if len(ids) > 0 {
			o.flushWG.Add(1)
			go func() {
				defer o.flushWG.Done()
				for _, id := range ids {
					if o.cache.IsLoaded(id) {
						continue
					}
					bc := o.cache.Acquire(id)
					if bc == nil {
						continue
					}
					werr := o.writeChunk(bc)
					if uerr := o.cache.Unpin(id); werr == nil {
						werr = uerr
					}
					if werr != nil {
						o.setFlushErr(werr)
						return
					}
				}
			}()
		}
	}
	if err == nil {
		err = o.takeFlushErr()
	}

	st.Duration = time.Since(start)
	st.Profile = o.prof.snapshot().Sub(prof0)
	diskDelta := o.disk.Stats().Sub(disk0)
	st.DiskReadBytes = diskDelta.ReadBytes
	st.DiskWriteBytes = diskDelta.WriteBytes
	if err == nil {
		rep := ResourceReport{
			Workers:      workers,
			ReadBlocked:  st.ReadBlocked,
			Duration:     st.Duration,
			ConsumeStall: st.Profile.ConsumeStall.Time,
		}
		if r != nil {
			if n := r.depthN.Load(); n > 0 {
				rep.ConsumeQueueDepth = float64(r.depthSum.Load()) / float64(n)
				rep.ConsumeQueueCap = o.cfg.CacheChunks
			}
		}
		o.adaptWorkers(rep)
	}
	return st, err
}

// flushErr propagation: a failed background flush surfaces on the next Run.
func (o *Operator) setFlushErr(err error) {
	o.flushErrMu.Lock()
	if o.flushErr == nil {
		o.flushErr = err
	}
	o.flushErrMu.Unlock()
}

func (o *Operator) takeFlushErr() error {
	o.flushErrMu.Lock()
	defer o.flushErrMu.Unlock()
	err := o.flushErr
	o.flushErr = nil
	return err
}

// runParallel executes the super-scalar pipeline with the given worker
// pool size. A non-nil order replaces the file-order read loop with the
// explicit visit order of a sampled scan.
func (o *Operator) runParallel(ctx context.Context, req Request, del *deliverer, delivered map[int]bool, order []int, workers int, gate *cacheGate) (*run, error) {
	convCols := o.store.GroupClosure(o.table, req.Columns)
	r := &run{
		op:           o,
		req:          req,
		del:          del,
		order:        order,
		convCols:     convCols,
		upTo:         convCols[len(convCols)-1] + 1,
		kern:         o.fusedKernel(convCols),
		done:         make(chan struct{}),
		freeText:     make(chan struct{}, o.cfg.TextBufferChunks),
		textBuf:      make(chan *chunk.TextChunk, o.cfg.TextBufferChunks),
		freePos:      make(chan struct{}, o.cfg.PositionBufferChunks),
		posBuf:       make(chan posItem, o.cfg.PositionBufferChunks),
		freeBin:      make(chan struct{}, o.cfg.CacheChunks),
		deliverCh:    make(chan *BinaryChunk, o.cfg.CacheChunks),
		workers:      make(chan *workerSlot, workers),
		readFinished: make(chan struct{}),
		specNotify:   make(chan struct{}, 1),
		finish:       make(chan struct{}),
		convDone:     make(chan struct{}),
		gate:         gate,
	}
	if req.Satisfied != nil {
		r.satCh = make(chan struct{})
		if r.kern != nil {
			r.rampOpen = make(chan struct{})
			r.rampSlots = make(chan struct{}, fusedRampWindow)
			for i := 0; i < fusedRampWindow; i++ {
				r.rampSlots <- struct{}{}
			}
		}
	}
	r.invisibleLeft.Store(int64(o.cfg.InvisibleChunksPerQuery))
	for i := 0; i < o.cfg.TextBufferChunks; i++ {
		r.freeText <- struct{}{}
	}
	for i := 0; i < o.cfg.PositionBufferChunks; i++ {
		r.freePos <- struct{}{}
	}
	for i := 0; i < o.cfg.CacheChunks; i++ {
		r.freeBin <- struct{}{}
	}
	for i := 0; i < workers; i++ {
		r.workers <- &workerSlot{}
	}
	if o.cfg.Policy == FullLoad {
		r.writeQ = make(chan *BinaryChunk, o.cfg.CacheChunks)
		r.writeWG.Add(1)
		go r.writeLoop()
	}
	if o.cfg.Policy == Speculative {
		r.schedWG.Add(1)
		go r.scheduler()
	}
	if hookRun != nil {
		hookRun(r)
	}
	// Cancellation watcher: a cancelled context fails the run, which
	// closes r.done and unwinds every stage. The watcher is joined before
	// r.runErr is read so the final fail (if any) happens-before the read.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			r.fail(ctx.Err())
		case <-watchStop:
		}
	}()
	go r.tokenizeConsumer()
	go r.parseConsumer()
	go func() {
		if r.order != nil {
			r.fail(r.readLoopOrdered())
		} else {
			r.fail(r.readLoop(delivered))
		}
		r.readDone.Store(true)
		close(r.textBuf)
		close(r.readFinished)
		r.poke()
	}()
	// Closer: once every conversion has finished (which implies READ has
	// finished), no more deliveries can be produced.
	go func() {
		<-r.convDone
		close(r.deliverCh)
	}()

	// Delivery loop (the execution engine's feed) runs on this goroutine:
	// it hands each chunk to the consume stage, whose after-hook releases
	// the chunk's pin and binary-buffer budget only once evaluation is
	// done — in fan-out mode that keeps at most ParallelConsume chunks in
	// flight past the buffer budget. The loop drains deliverCh even after
	// the demand is satisfied: consumers ignore surplus chunks, and the
	// after-hooks must still run for the teardown invariants.
	for bc := range r.deliverCh {
		bc := bc
		r.depthSum.Add(int64(len(r.deliverCh)))
		r.depthN.Add(1)
		r.del.deliver(bc, func() {
			if err := o.cache.Unpin(bc.ID); err != nil {
				r.fail(err)
			}
			r.freeBin <- struct{}{} // undelivered-chunk budget freed
			r.gate.broadcast()
			r.poke()
			// Consume finished: the natural point to notice the demand is
			// now satisfied and latch the termination signal — or, if it
			// is not, to release the fused slow-start throttle.
			if !r.demandSatisfied() {
				r.openRamp()
			}
		})
		if err := r.del.failedErr(); err != nil {
			r.fail(err)
		}
	}

	// Teardown.
	close(r.finish)
	r.schedWG.Wait()
	r.writeWG.Wait()
	close(watchStop)
	<-watchDone
	return r, r.runErr
}

// readLoop is the READ thread (§3.2.1): it walks the file in chunk order,
// skipping chunks already delivered from the cache or excluded by
// statistics, reading loaded chunks from the database directly into the
// binary buffer, and producing text chunks for the rest. On first contact
// with the file it discovers chunk boundaries and registers them in the
// catalog.
func (r *run) readLoop(delivered map[int]bool) error {
	o := r.op
	sc := newRawScanner(o, o.table.RawFile())
	id := 0
	var off int64
	for {
		if r.failed() {
			return nil
		}
		if r.demandSatisfied() {
			// The result is provably complete: stop issuing chunks. No
			// SetComplete — the file was not scanned to the end.
			return nil
		}
		if rng := r.req.Range; rng != nil && rng.Hi > 0 && id >= rng.Hi {
			// Range exhausted: everything past Hi belongs to other
			// requests (or other peers). No SetComplete — the file was not
			// scanned to the end.
			return nil
		}
		meta, known := o.table.Chunk(id)
		if known {
			next := off + meta.RawLen
			switch {
			case !r.req.Range.Contains(id):
				// Below the range: jump the extent without reading it.
			case delivered[id]:
				// Already served from the cache in phase 1.
			case r.req.Skip != nil && r.req.Skip(meta):
				r.skipped.Add(1)
			case meta.LoadedAll(r.req.Columns):
				// Binary-buffer space first, mirroring the PARSE rule.
				select {
				case <-r.freeBin:
				case <-r.done:
					return nil
				case <-r.satCh:
					return nil
				}
				bc, err := o.dbRead(id, r.req.Columns)
				if err != nil {
					r.freeBin <- struct{}{}
					return err
				}
				evicted, evLoaded, ok := r.putPinnedWaitEv(bc, true)
				if !ok {
					r.freeBin <- struct{}{}
					return nil
				}
				if err := r.retireEvicted(evicted, evLoaded); err != nil {
					_ = o.cache.Unpin(bc.ID)
					r.freeBin <- struct{}{}
					return err
				}
				select {
				case r.deliverCh <- bc:
					r.deliveredDB.Add(1)
				case <-r.done:
					_ = o.cache.Unpin(bc.ID)
					r.freeBin <- struct{}{}
					return nil
				}
			default:
				// A chunk with some (but not all) requested columns loaded is
				// a partial-width hit: register a plan so PARSE converts only
				// the missing groups and merges the rest from the database.
				if plan := r.planFor(meta); len(plan.fromDB) > 0 {
					r.setPlan(id, plan)
				}
				data, err := sc.readExtent(off, meta.RawLen)
				if err != nil {
					return err
				}
				o.prof.readChunks.Add(1)
				tc := &chunk.TextChunk{ID: id, Data: data, Lines: meta.Rows}
				if !r.sendText(tc) {
					return nil
				}
			}
			id++
			off = next
			continue
		}
		// Discovery: carve the next chunk out of the byte stream.
		sc.seek(off)
		data, lines, err := sc.next(o.cfg.ChunkLines)
		if err != nil {
			return err
		}
		if lines == 0 {
			break // end of file
		}
		o.prof.readChunks.Add(1)
		if err := o.table.EnsureChunk(id, lines, off, int64(len(data))); err != nil {
			return err
		}
		if !r.req.Range.Contains(id) {
			// Out-of-range chunk discovered while carving toward the range:
			// its geometry is now in the catalog (a later pass jumps it for
			// free) but its text is dropped before conversion.
			off += int64(len(data))
			id++
			continue
		}
		tc := &chunk.TextChunk{ID: id, Data: data, Lines: lines}
		if !r.sendText(tc) {
			return nil
		}
		off += int64(len(data))
		id++
	}
	return o.table.SetComplete()
}

// readLoopOrdered is the READ thread of a sampled scan: discovery is
// already complete, so it visits chunks in the request's explicit order —
// cache hits flow straight into the delivery channel (pinned, so the
// consume stage sees them alive), loaded chunks come from the database,
// and the rest are read from their raw extents and converted through the
// normal pipeline stages. Conversion finishes out of order; consumers that
// need the sample order (the online-aggregation estimator) reorder on
// chunk ID against the permutation they supplied.
func (r *run) readLoopOrdered() error {
	o := r.op
	sc := newRawScanner(o, o.table.RawFile())
	for _, id := range r.order {
		if r.failed() {
			return nil
		}
		if r.demandSatisfied() {
			// The error bound (or other demand) is provably met: stop
			// issuing chunks. The file stays Complete — discovery ran first.
			return nil
		}
		meta, known := o.table.Chunk(id)
		if !known {
			return fmt.Errorf("scanraw: ordered scan: chunk %d vanished from the catalog", id)
		}
		if r.req.Skip != nil && r.req.Skip(meta) {
			r.skipped.Add(1)
			continue
		}
		if bc := o.cache.Acquire(id); bc != nil {
			if bc.HasAll(r.req.Columns) {
				// Cache hit at its sampled position. The delivery loop's
				// after-hook releases the pin and the binary-buffer slot,
				// mirroring the converted-chunk path.
				select {
				case <-r.freeBin:
				case <-r.done:
					_ = o.cache.Unpin(id)
					return nil
				case <-r.satCh:
					_ = o.cache.Unpin(id)
					return nil
				}
				select {
				case r.deliverCh <- bc:
					r.deliveredCache.Add(1)
				case <-r.done:
					_ = o.cache.Unpin(id)
					r.freeBin <- struct{}{}
					return nil
				}
				continue
			}
			if err := o.cache.Unpin(id); err != nil {
				return err
			}
		}
		if meta.LoadedAll(r.req.Columns) {
			select {
			case <-r.freeBin:
			case <-r.done:
				return nil
			case <-r.satCh:
				return nil
			}
			bc, err := o.dbRead(id, r.req.Columns)
			if err != nil {
				r.freeBin <- struct{}{}
				return err
			}
			evicted, evLoaded, ok := r.putPinnedWaitEv(bc, true)
			if !ok {
				r.freeBin <- struct{}{}
				return nil
			}
			if err := r.retireEvicted(evicted, evLoaded); err != nil {
				_ = o.cache.Unpin(bc.ID)
				r.freeBin <- struct{}{}
				return err
			}
			select {
			case r.deliverCh <- bc:
				r.deliveredDB.Add(1)
			case <-r.done:
				_ = o.cache.Unpin(bc.ID)
				r.freeBin <- struct{}{}
				return nil
			}
			continue
		}
		// Raw (or partial-width) chunk: read exactly its extent — RawOff
		// makes random access as cheap as the sequential walk's bookkeeping.
		if plan := r.planFor(meta); len(plan.fromDB) > 0 {
			r.setPlan(id, plan)
		}
		data, err := sc.readExtent(meta.RawOff, meta.RawLen)
		if err != nil {
			return err
		}
		o.prof.readChunks.Add(1)
		tc := &chunk.TextChunk{ID: id, Data: data, Lines: meta.Rows}
		if !r.sendText(tc) {
			return nil
		}
	}
	return nil
}

// sendText places a text chunk into the text chunks buffer, recording the
// blocked state the speculative scheduler watches for. It reports false
// when the run failed.
func (r *run) sendText(tc *chunk.TextChunk) bool {
	select {
	case <-r.freeText:
	default:
		// Buffer full: READ blocks — the disk goes idle, which is the
		// speculative loading trigger (§4) and the CPU-bound signal the
		// resource manager consumes (§3.3).
		start := time.Now()
		r.readBlocked.Store(true)
		r.poke()
		select {
		case <-r.freeText:
		case <-r.done:
			r.readBlocked.Store(false)
			r.blocked.add(time.Since(start))
			return false
		case <-r.satCh:
			r.readBlocked.Store(false)
			r.blocked.add(time.Since(start))
			return false
		}
		r.readBlocked.Store(false)
		r.blocked.add(time.Since(start))
	}
	select {
	case r.textBuf <- tc:
		return true
	case <-r.done:
		return false
	case <-r.satCh:
		return false
	}
}

// tokenizeConsumer monitors the text chunks buffer, acquiring destination
// space and a worker for each chunk (§3.2.1, consumer threads).
func (r *run) tokenizeConsumer() {
	for tc := range r.textBuf {
		// Chunk extracted: its slot frees, allowing READ to produce.
		r.freeText <- struct{}{}
		if r.failed() || r.satisfied.Load() {
			// Satisfied: queued text chunks are dead weight — drop them so
			// only in-flight conversion tasks finish (and reach the cache
			// for the safeguard flush).
			continue
		}
		// Destination space before worker (§3.2.1: "even if a thread is
		// available, it can only be allocated if there is empty space in
		// the destination buffer").
		select {
		case <-r.freePos:
		case <-r.done:
			continue
		}
		if r.kern != nil {
			// Fused kernels collapse TOKENIZE into the parse task: the
			// chunk flows through the position buffer untokenized (nil
			// map), keeping the buffer's back-pressure semantics without
			// spending a worker here.
			select {
			case r.posBuf <- posItem{tc: tc}:
			case <-r.done:
				r.freePos <- struct{}{}
			}
			continue
		}
		var slot *workerSlot
		select {
		case slot = <-r.workers:
		case <-r.done:
			r.freePos <- struct{}{}
			continue
		}
		r.tokWG.Add(1)
		go r.tokenizeTask(tc, slot)
	}
	r.tokWG.Wait()
	close(r.posBuf)
}

func (r *run) tokenizeTask(tc *chunk.TextChunk, slot *workerSlot) {
	defer r.tokWG.Done()
	o := r.op
	pm, err := o.tokenizeChunk(slot, tc, r.upTo)
	r.workers <- slot // release the worker
	if err != nil {
		r.fail(err)
		r.freePos <- struct{}{}
		return
	}
	select {
	case r.posBuf <- posItem{tc: tc, pm: pm}:
	case <-r.done:
		o.releaseMap(tc.ID, pm)
		r.freePos <- struct{}{}
	}
}

// parseConsumer monitors the position buffer. A parse task is dispatched
// only when the binary chunks cache can hold one more undelivered chunk
// (§3.2.1: "a request from the PARSE consumer can be accomplished only if
// there is empty space in the binary chunks buffer") — this is the
// back-pressure that propagates to READ and creates the disk-idle windows
// speculative loading exploits.
func (r *run) parseConsumer() {
	for item := range r.posBuf {
		r.freePos <- struct{}{}
		if r.failed() {
			r.op.releaseMap(item.tc.ID, item.pm)
			continue
		}
		if r.satisfied.Load() {
			r.op.releaseMap(item.tc.ID, item.pm)
			continue
		}
		select {
		case <-r.freeBin:
		case <-r.done:
			r.op.releaseMap(item.tc.ID, item.pm)
			continue
		case <-r.satCh:
			r.op.releaseMap(item.tc.ID, item.pm)
			continue
		}
		// The wait for binary-buffer space can span the delivery that
		// satisfies the demand (its consume frees the space this select
		// waits for); converting the chunk then would be pure waste — under
		// fused kernels a full tokenize+parse of dead weight.
		if r.satisfied.Load() {
			r.op.releaseMap(item.tc.ID, item.pm)
			r.freeBin <- struct{}{}
			continue
		}
		// Fused slow start: until a consumed delivery proves the demand
		// outlives the first chunk, hold admission to the ramp window.
		ramped := false
		if r.rampOpen != nil {
			select {
			case <-r.rampOpen:
			default:
				select {
				case <-r.rampOpen:
				case <-r.rampSlots:
					ramped = true
				case <-r.done:
					r.op.releaseMap(item.tc.ID, item.pm)
					r.freeBin <- struct{}{}
					continue
				case <-r.satCh:
					r.op.releaseMap(item.tc.ID, item.pm)
					r.freeBin <- struct{}{}
					continue
				}
			}
		}
		var slot *workerSlot
		select {
		case slot = <-r.workers:
		case <-r.done:
			if ramped {
				r.rampSlots <- struct{}{}
			}
			r.op.releaseMap(item.tc.ID, item.pm)
			r.freeBin <- struct{}{}
			continue
		}
		r.parseWG.Add(1)
		go r.parseTask(item, slot, ramped)
	}
	r.parseWG.Wait()
	if r.writeQ != nil {
		close(r.writeQ)
	}
	close(r.convDone)
}

func (r *run) parseTask(item posItem, slot *workerSlot, ramped bool) {
	defer r.parseWG.Done()
	if ramped {
		// rampSlots never exceeds its buffered window, so this cannot block.
		defer func() { r.rampSlots <- struct{}{} }()
	}
	o := r.op
	cols := r.convCols
	kern := r.kern
	plan, partial := r.plan(item.tc.ID)
	if partial {
		cols = plan.convert
		if kern != nil {
			kern = r.kernFor(cols)
		}
	}
	var bc *BinaryChunk
	var err error
	d := o.cpuWork(slot, func() {
		if kern != nil {
			bc, err = kern.Convert(item.tc)
		} else {
			bc, err = o.parser.Parse(item.tc, item.pm, cols)
		}
	})
	o.prof.parseNs.Add(int64(d))
	r.workers <- slot
	if err != nil {
		r.fail(err)
		o.releaseMap(item.tc.ID, item.pm)
		r.freeBin <- struct{}{}
		return
	}
	o.releaseMap(item.tc.ID, item.pm)
	o.prof.parseChunks.Add(1)
	if o.cfg.CollectStats {
		// Only the freshly converted columns: the merged-in loaded columns
		// had their statistics recorded when they were first converted.
		if err := r.recordStats(bc, cols); err != nil {
			r.fail(err)
			bc.RecycleColumns()
			r.freeBin <- struct{}{}
			return
		}
	}
	if partial {
		// Merge the loaded requested columns in from their pages. The merged
		// chunk owns the vectors; dbc itself is just the carrier.
		dbc, derr := o.dbRead(bc.ID, plan.fromDB)
		if derr == nil {
			derr = bc.Merge(dbc)
		}
		if derr != nil {
			r.fail(derr)
			bc.RecycleColumns()
			r.freeBin <- struct{}{}
			return
		}
	}
	loaded := false
	// Invisible loading: write the first K converted chunks inline, even
	// though it stalls this worker — the defining cost of the baseline.
	if o.cfg.Policy == Invisible && r.invisibleLeft.Add(-1) >= 0 {
		if err := r.runWrite(bc); err != nil {
			r.fail(err)
			bc.RecycleColumns()
			r.freeBin <- struct{}{}
			return
		}
		loaded = true
	}
	evicted, evictedLoaded, ok := r.putPinnedWaitEv(bc, loaded)
	if !ok {
		r.freeBin <- struct{}{}
		return
	}
	if err := r.retireEvicted(evicted, evictedLoaded); err != nil {
		r.fail(err)
		_ = o.cache.Unpin(bc.ID)
		r.freeBin <- struct{}{}
		return
	}
	if o.cfg.Policy == FullLoad {
		// The write queue holds its own pin: the chunk may be consumed and
		// unpinned (then evicted and recycled) before the WRITE thread gets
		// to it otherwise.
		o.cache.Pin(bc.ID)
		select {
		case r.writeQ <- bc:
		case <-r.done:
			_ = o.cache.Unpin(bc.ID) // write-queue pin
			_ = o.cache.Unpin(bc.ID) // delivery pin
			r.freeBin <- struct{}{}
			return
		}
	}
	select {
	case r.deliverCh <- bc:
		if partial {
			r.deliveredPartial.Add(1)
		} else {
			r.deliveredRaw.Add(1)
		}
		r.poke() // cache gained a chunk: wake the speculative scheduler
	case <-r.done:
		_ = o.cache.Unpin(bc.ID)
		r.freeBin <- struct{}{}
	}
}

// retireEvicted finishes an evicted chunk's life: under BufferedLoad an
// unloaded evictee is first written to the database (the policy's defining
// write trigger), then the chunk's vectors return to the shared pools. The
// recycle is safe because eviction implies zero pins, and every consumer of
// a cached chunk — delivery, write queue, safeguard flush, speculative
// scheduler — holds a pin for the duration of its use.
//
// Speculative loading with the safeguard gets the same write-before-drop:
// the safeguard promises that conversion work done during a run is never
// redone (§4's zero-cost guarantee), but it can only flush what is still
// cached at end of run. Eviction normally prefers loaded victims, so
// unloaded chunks survive to the flush — except when every loaded entry is
// momentarily pinned mid-delivery and an unloaded chunk is the only
// evictable entry. Dropping it there would silently discard the conversion;
// writing it first keeps the guarantee unconditional.
func (r *run) retireEvicted(evicted *BinaryChunk, evictedLoaded bool) error {
	if evicted == nil {
		return nil
	}
	mustWrite := r.op.cfg.Policy == BufferedLoad ||
		(r.op.cfg.Policy == Speculative && r.op.cfg.Safeguard)
	if mustWrite && !evictedLoaded {
		if err := r.runWrite(evicted); err != nil {
			return err
		}
	}
	evicted.RecycleColumns()
	return nil
}

func (r *run) recordStats(bc *BinaryChunk, cols []int) error {
	for _, c := range cols {
		v := bc.Column(c)
		if v == nil {
			continue
		}
		if err := r.op.table.SetStats(bc.ID, c, dbstore.CollectStats(v)); err != nil {
			return err
		}
	}
	return nil
}

// putPinnedWait inserts a chunk into the binary cache with a delivery pin,
// blocking while the cache is full of pinned (undelivered) chunks — the
// back-pressure that ultimately stops READ (§3.1, pre-fetching). It
// reports false when the run failed.
func (r *run) putPinnedWait(bc *BinaryChunk, loaded bool) bool {
	_, _, ok := r.putPinnedWaitEv(bc, loaded)
	return ok
}

func (r *run) putPinnedWaitEv(bc *BinaryChunk, loaded bool) (*BinaryChunk, bool, bool) {
	r.gate.mu.Lock()
	defer r.gate.mu.Unlock()
	for {
		if r.failed() {
			return nil, false, false
		}
		evicted, evLoaded, ok := r.op.cache.PutPinned(bc, loaded)
		if ok {
			return evicted, evLoaded, true
		}
		r.gate.cond.Wait()
	}
}

// writeLoop is the WRITE thread under the FullLoad policy: it stores every
// converted chunk, overlapping with conversion and query processing. Each
// queued chunk carries a pin taken by parseTask; release it here whether or
// not the write happened.
func (r *run) writeLoop() {
	defer r.writeWG.Done()
	for bc := range r.writeQ {
		if !r.failed() {
			if err := r.runWrite(bc); err != nil {
				r.fail(err)
			}
		}
		if err := r.op.cache.Unpin(bc.ID); err != nil {
			r.fail(err)
		}
		r.gate.broadcast()
	}
}

// scheduler implements speculative loading (§4): whenever READ is blocked
// on a full text buffer — or has finished and the safeguard is active —
// the disk is idle, so spend one speculation quantum (a payoff-ranked
// column group, or the oldest unloaded cached chunk under scan order).
// Writing stops the moment READ wants the disk back.
func (r *run) scheduler() {
	defer r.schedWG.Done()
	for {
		select {
		case <-r.specNotify:
		case <-r.finish:
			return
		case <-r.done:
			return
		}
		for r.writableNow() {
			wrote, err := r.specStep()
			if err != nil {
				r.fail(err)
				return
			}
			if !wrote {
				break
			}
			select {
			case <-r.finish:
				return
			case <-r.done:
				return
			default:
			}
		}
	}
}

// writableNow reports whether the disk is idle from READ's perspective:
// READ blocked on a full buffer, or — when the safeguard is active — READ
// finished the scan.
func (r *run) writableNow() bool {
	if r.failed() {
		return false
	}
	if r.readBlocked.Load() {
		return true
	}
	return r.op.cfg.Safeguard && r.readDone.Load()
}

// dbRead reads a loaded chunk's columns from the database through the disk
// arbiter (no tokenizing, no parsing).
func (o *Operator) dbRead(id int, cols []int) (*BinaryChunk, error) {
	o.arbiter.Lock()
	start := time.Now()
	bc, err := o.store.ReadChunk(o.table, id, cols)
	o.prof.readNs.Add(int64(time.Since(start)))
	o.arbiter.Unlock()
	if err != nil {
		return nil, err
	}
	o.prof.readChunks.Add(1)
	return bc, nil
}
