package scanraw

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// TestRegistryStress hammers one registry from many goroutines across
// several raw files while a sweeper concurrently evicts fully-loaded
// operators. Run under -race this guards the registry's locking: lookups
// must never observe a half-installed operator and a sweep must never
// delete an operator out from under a running query.
func TestRegistryStress(t *testing.T) {
	const (
		nFiles      = 4
		nGoroutines = 8
		nIters      = 12
	)
	d := vdisk.Unlimited()
	store := dbstore.NewStore(d)
	tables := make([]*dbstore.Table, nFiles)
	wants := make([]int64, nFiles)
	for i := range tables {
		spec := gen.CSVSpec{Rows: 192, Cols: 3, Seed: uint64(100 + i), MaxValue: 1000}
		raw := fmt.Sprintf("raw/s%d.csv", i)
		gen.Preload(d, raw, spec)
		table, err := store.CreateTable(fmt.Sprintf("t%d", i), spec.Schema(), raw)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = table
		wants[i] = gen.SumRange(spec, allCols(3), 0, spec.Rows)
	}

	reg := NewRegistry(store)
	cfg := Config{Workers: 2, ChunkLines: 32, CacheChunks: 4, Policy: FullLoad, Safeguard: true}

	// Sweeper: constantly tries to evict fully-loaded operators while the
	// queries below keep recreating and reusing them.
	stop := make(chan struct{})
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Sweep()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, nGoroutines)
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < nIters; it++ {
				fi := (g + it) % nFiles
				sql := fmt.Sprintf("SELECT SUM(c0+c1+c2) FROM t%d", fi)
				res, _, err := reg.ExecuteSQL(tables[fi], cfg, sql)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if got := res.Rows[0][0].Int; got != wants[fi] {
					errc <- fmt.Errorf("goroutine %d iter %d: sum = %d, want %d", g, it, got, wants[fi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sweeperWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The registry is still coherent: every table answers correctly and
	// fully-loaded operators can be swept away completely.
	for i, table := range tables {
		res, _, err := reg.ExecuteSQL(table, cfg, fmt.Sprintf("SELECT SUM(c0+c1+c2) FROM t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int; got != wants[i] {
			t.Errorf("table %d: sum = %d, want %d", i, got, wants[i])
		}
		if !table.FullyLoaded() {
			t.Errorf("table %d not fully loaded after stress", i)
		}
	}
	reg.Sweep()
	if n := reg.Len(); n != 0 {
		t.Errorf("registry holds %d operators after final sweep, want 0", n)
	}
}
