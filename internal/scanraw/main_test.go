package scanraw

import (
	"testing"

	"scanraw/internal/testutil"
)

// TestMain fails the package when a test leaves pipeline goroutines —
// readers, consumers, workers, the speculative scheduler — running after
// it returns. See internal/testutil.
func TestMain(m *testing.M) { testutil.Main(m) }
