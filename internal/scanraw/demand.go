package scanraw

import (
	"sync"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// Demand-driven termination: a query whose result is provably complete
// before end-of-file tells the scan to stop issuing chunks. Two query
// shapes admit a sound completeness proof:
//
//   - LIMIT k without ORDER BY: the canonical row order is (chunk ID, row
//     ordinal), so once the contiguous chunk prefix 0..f-1 is fully
//     accounted for (delivered or statistics-skipped) and holds at least k
//     matching rows, no later chunk can displace a retained row — the
//     result is final (limitTracker).
//   - ORDER BY <int column> ... LIMIT k: once any single partial's top-k
//     heap is full, its worst retained row is a cutoff; a chunk whose
//     min/max statistics place every row strictly after the cutoff cannot
//     contribute (boundExcludes). This prunes chunks rather than ending
//     the scan outright, and with enough exclusions the scan runs dry.
//
// Both signals are monotonic: once satisfied (or excluded), always so —
// which is what lets the pipeline poll them racily at chunk boundaries.

// limitTracker decides LIMIT-without-ORDER-BY completeness from per-chunk
// matched-row counts. Chunks arrive in any order (cache first, then file
// order); the tracker advances a contiguous frontier so the proof does not
// depend on delivery order.
type limitTracker struct {
	mu       sync.Mutex
	k        int
	frontier int         // chunks 0..frontier-1 are fully accounted for
	rows     int         // matching rows within the frontier prefix
	seen     map[int]int // accounted chunks at or beyond the frontier
	sat      bool
}

func newLimitTracker(k int) *limitTracker {
	return &limitTracker{k: k, seen: make(map[int]int)}
}

// record accounts chunk id with its matched-row count. Duplicate records of
// a chunk are ignored, so Skip callbacks consulted twice (shared scans do
// that) and re-deliveries stay harmless.
func (t *limitTracker) record(id, matched int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sat || id < t.frontier {
		return
	}
	if _, dup := t.seen[id]; dup {
		return
	}
	t.seen[id] = matched
	for {
		m, ok := t.seen[t.frontier]
		if !ok {
			break
		}
		delete(t.seen, t.frontier)
		t.frontier++
		t.rows += m
	}
	if t.rows >= t.k {
		t.sat = true
	}
}

func (t *limitTracker) satisfied() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sat
}

// boundSource exposes a query's current top-k cutoff row (the executors'
// Bound method).
type boundSource interface {
	Bound() ([]engine.Value, bool)
}

// Demand is the termination/pruning state derived from one query. A nil
// *Demand is valid and inert — every method tolerates it — so callers wire
// it unconditionally and queries without a termination profile cost
// nothing.
type Demand struct {
	tracker *limitTracker // LIMIT without ORDER BY

	// ORDER BY <int column> ... LIMIT bound pruning.
	bound   boundSource
	keyItem int // select-list ordinal of the primary sort key
	keyCol  int // schema ordinal of the underlying column
	desc    bool
}

// NewDemand derives the demand state for q, with src supplying the live
// top-k cutoff for the ORDER BY shape. Returns nil when q admits no sound
// early-termination or pruning rule (aggregates, no LIMIT, ORDER BY over
// anything but a bare Int64 column).
func NewDemand(q *engine.Query, src boundSource) *Demand {
	if q == nil || q.IsAggregate() || q.Limit <= 0 {
		return nil
	}
	if len(q.OrderBy) == 0 {
		return &Demand{tracker: newLimitTracker(q.Limit)}
	}
	// Pruning compares the primary sort key against chunk statistics, so it
	// needs the key to be a bare column of a type the catalog covers.
	k := q.OrderBy[0]
	col, ok := q.Items[k.Column].Expr.(*engine.Col)
	if !ok || col.Typ != schema.Int64 || src == nil {
		return nil
	}
	return &Demand{bound: src, keyItem: k.Column, keyCol: col.Idx, desc: k.Desc}
}

// NewDemandFrom is NewDemand for a range-restricted scan: the LIMIT
// frontier starts at startChunk because chunks below the range never
// arrive — they belong to other peers (or other requests) — and the
// canonical order within the range still begins at its lower bound.
func NewDemandFrom(q *engine.Query, src boundSource, startChunk int) *Demand {
	d := NewDemand(q, src)
	if d != nil && d.tracker != nil && startChunk > 0 {
		d.tracker.frontier = startChunk
	}
	return d
}

// SatisfiedFn returns the Request.Satisfied callback, or nil when the query
// has no whole-scan termination signal (the ORDER BY shape only prunes).
func (d *Demand) SatisfiedFn() func() bool {
	if d == nil || d.tracker == nil {
		return nil
	}
	return d.tracker.satisfied
}

// IsSatisfied reports whether the result is already provably final, in
// which case delivering further chunks to the engine is pure waste (they
// cannot displace any retained row) and the consumer may drop them.
func (d *Demand) IsSatisfied() bool {
	return d != nil && d.tracker != nil && d.tracker.satisfied()
}

// RecordChunk accounts a delivered chunk's matched-row count.
func (d *Demand) RecordChunk(id, matched int) {
	if d == nil || d.tracker == nil {
		return
	}
	d.tracker.record(id, matched)
}

// RecordSkip accounts a statistics-skipped chunk: it provably matches no
// rows, so it joins the frontier with a count of zero.
func (d *Demand) RecordSkip(id int) {
	if d == nil || d.tracker == nil {
		return
	}
	d.tracker.record(id, 0)
}

// WrapSkip layers demand bookkeeping over a base chunk-elimination filter:
// base skips are recorded toward the LIMIT frontier, and the ORDER BY shape
// additionally excludes chunks the current top-k cutoff rules out.
func (d *Demand) WrapSkip(base func(*dbstore.ChunkMeta) bool) func(*dbstore.ChunkMeta) bool {
	if d == nil {
		return base
	}
	return func(meta *dbstore.ChunkMeta) bool {
		if base != nil && base(meta) {
			d.RecordSkip(meta.ID)
			return true
		}
		return d.boundExcludes(meta)
	}
}

// boundExcludes reports whether the chunk's statistics prove every row
// sorts strictly after the current top-k cutoff. Strict comparison is what
// makes a single partial's bound sound: the partial alone already retains k
// rows at or before the cutoff, so a strictly-after row can never enter the
// final merged top-k.
func (d *Demand) boundExcludes(meta *dbstore.ChunkMeta) bool {
	if d == nil || d.bound == nil {
		return false
	}
	vals, ok := d.bound.Bound()
	if !ok {
		return false
	}
	key := vals[d.keyItem]
	if d.keyCol >= len(meta.Stats) {
		return false
	}
	st := meta.Stats[d.keyCol]
	if !st.Valid || st.Type != schema.Int64 {
		return false
	}
	if d.desc {
		return st.MaxInt < key.Int
	}
	return st.MinInt > key.Int
}

// HasTerminationProfile reports whether q carries a whole-scan termination
// signal — the property the query server's coalescer checks before
// admitting a late query into a shared scan, so an unbounded newcomer
// cannot un-terminate a batch that would otherwise stop early.
func HasTerminationProfile(q *engine.Query) bool {
	return q != nil && !q.IsAggregate() && q.Limit > 0 && len(q.OrderBy) == 0
}
