package scanraw

import (
	"context"
	"sync"

	"scanraw/internal/cache"
	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// Registry holds the live SCANRAW operators, one per raw file. When a new
// query arrives the execution engine first checks for an existing operator
// and connects it to the plan; only otherwise is one created. An operator
// whose file is completely loaded is deleted — the table has become an
// ordinary database table (§3.3).
//
// The registry is the shared hot map under concurrent serving: every
// request resolves its operator here, so lookups take a read lock and
// Sweep never blocks the map on operator-level waits.
type Registry struct {
	store *dbstore.Store

	mu  sync.RWMutex
	ops map[string]*Operator
}

// NewRegistry creates an empty operator registry over a store.
func NewRegistry(store *dbstore.Store) *Registry {
	return &Registry{store: store, ops: make(map[string]*Operator)}
}

// Operator returns the live operator for the table, creating one with cfg
// if none exists. The configuration of an existing operator is not
// changed.
func (r *Registry) Operator(table *dbstore.Table, cfg Config) *Operator {
	r.mu.RLock()
	op, ok := r.ops[table.RawFile()]
	r.mu.RUnlock()
	if ok {
		return op
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if op, ok := r.ops[table.RawFile()]; ok {
		return op
	}
	op = New(r.store, table, cfg)
	r.ops[table.RawFile()] = op
	return op
}

// Lookup returns the live operator for a raw file, if any.
func (r *Registry) Lookup(rawFile string) (*Operator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[rawFile]
	return op, ok
}

// Sweep deletes operators whose raw file is completely loaded into the
// database; their state (cache, buffers) is no longer useful because every
// future query is a plain heap scan. It returns how many were deleted.
//
// Sweep is safe against concurrent queries: it snapshots the operator set,
// waits for background flushes without holding the registry lock, and
// skips operators that are mid-query (deleting one would let a later query
// create a second operator over the same file and race it on the catalog).
func (r *Registry) Sweep() int {
	r.mu.RLock()
	snapshot := make(map[string]*Operator, len(r.ops))
	for key, op := range r.ops {
		snapshot[key] = op
	}
	r.mu.RUnlock()

	n := 0
	for key, op := range snapshot {
		op.WaitIdle()
		if !op.Table().FullyLoaded() {
			continue
		}
		// Claim exclusive run ownership without blocking: a busy operator
		// is simply skipped and reconsidered on the next Sweep.
		if !op.runMu.TryLock() {
			continue
		}
		r.mu.Lock()
		if r.ops[key] == op {
			delete(r.ops, key)
			n++
		}
		r.mu.Unlock()
		op.runMu.Unlock()
	}
	return n
}

// Len returns the number of live operators.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ops)
}

// CacheStats aggregates chunk-cache occupancy and pin accounting across
// every live operator. Pins held by in-flight deliveries are transient; a
// pin count that stays above zero while the server is idle is a leaked pin,
// and the pinned entries can never be evicted again.
func (r *Registry) CacheStats() cache.Stats {
	r.mu.RLock()
	snapshot := make([]*Operator, 0, len(r.ops))
	for _, op := range r.ops {
		snapshot = append(snapshot, op)
	}
	r.mu.RUnlock()
	var total cache.Stats
	for _, op := range snapshot {
		s := op.cache.Stats()
		total.Entries += s.Entries
		total.Capacity += s.Capacity
		total.PinnedEntries += s.PinnedEntries
		total.PinCount += s.PinCount
	}
	return total
}

// QueryConsumer is the engine surface the operator drives: the serial
// engine.Executor and the fan-out engine.ParallelExecutor both satisfy it.
// ConsumeCounted and Bound feed demand-driven termination: the matched-row
// count advances the LIMIT frontier, and the top-k cutoff prunes chunks for
// ORDER BY ... LIMIT.
type QueryConsumer interface {
	ConsumeContext(ctx context.Context, bc *BinaryChunk) error
	ConsumeCounted(bc *BinaryChunk) (int, error)
	Bound() ([]engine.Value, bool)
	Result() (*engine.Result, error)
	// Finish yields the raw mergeable partials instead of a materialized
	// result — the surface distributed serving ships over the wire.
	Finish() ([]*engine.Partial, error)
}

// newConsumer builds the executor matching the operator's consume
// parallelism and returns it with the effective worker count.
func newConsumer(op *Operator, q *engine.Query, sch *schema.Schema) (QueryConsumer, int, error) {
	n := op.Config().ConsumeWorkers
	if n > 1 {
		ex, err := engine.NewParallelExecutor(q, sch, n)
		return ex, n, err
	}
	ex, err := engine.NewExecutor(q, sch)
	return ex, 1, err
}

// ExecuteQuery runs a bound query through the operator and returns its
// result set: the operator feeds binary chunks to an engine executor
// (selective conversion of exactly the query's required columns), applying
// min/max chunk elimination derived from the predicate.
func ExecuteQuery(op *Operator, q *engine.Query) (*engine.Result, RunStats, error) {
	return ExecuteQueryContext(context.Background(), op, q)
}

// ExecuteQueryContext is ExecuteQuery with cancellation: a cancelled
// context stops the scan at the next chunk boundary and is returned as the
// error. With ConsumeWorkers > 1 in the operator's configuration the query
// evaluates on an engine.ParallelExecutor fed by that many consume workers.
func ExecuteQueryContext(ctx context.Context, op *Operator, q *engine.Query) (*engine.Result, RunStats, error) {
	return ExecuteQueryRangeContext(ctx, op, q, nil)
}

// ExecuteQueryRange is ExecuteQueryRangeContext without cancellation.
func ExecuteQueryRange(op *Operator, q *engine.Query, rng *ChunkRange) (*engine.Result, RunStats, error) {
	return ExecuteQueryRangeContext(context.Background(), op, q, rng)
}

// ExecuteQueryRangeContext is ExecuteQueryContext restricted to a chunk
// range: only chunks with rng.Lo <= ID < rng.Hi contribute to the result,
// which is how a fleet worker evaluates a query over the sub-file it owns.
// The LIMIT demand frontier starts at the range's lower bound, so early
// termination stays sound within the peer's chunk universe. A nil range is
// the whole file.
func ExecuteQueryRangeContext(ctx context.Context, op *Operator, q *engine.Query, rng *ChunkRange) (*engine.Result, RunStats, error) {
	ex, st, err := ConsumeQueryRangeContext(ctx, op, q, rng)
	if err != nil {
		return nil, st, err
	}
	res, err := ex.Result()
	return res, st, err
}

// ConsumeQueryRangeContext runs the scan for q over the given chunk range
// and returns the fed executor without finalizing it — the caller chooses
// between Result() and, for distributed serving, extracting the mergeable
// partial state to ship over the wire.
func ConsumeQueryRangeContext(ctx context.Context, op *Operator, q *engine.Query, rng *ChunkRange) (QueryConsumer, RunStats, error) {
	ex, n, err := newConsumer(op, q, op.Table().Schema())
	if err != nil {
		return nil, RunStats{}, err
	}
	cols := q.RequiredColumns()
	if len(cols) == 0 {
		// COUNT(*)-style queries touch no columns but still need every row
		// scanned; converting the first column is the cheapest way.
		cols = []int{0}
	}
	req := demandRequest(ctx, q, ex, Request{
		Columns:         cols,
		Skip:            SkipFromPredicate(q.Where),
		ParallelConsume: n,
		Range:           rng,
	})
	st, err := op.RunContext(ctx, req)
	return ex, st, err
}

// demandRequest completes a Request with the delivery callback and the
// demand-driven termination wiring for one query: matched-row counts feed
// the LIMIT frontier, the executor's top-k cutoff prunes chunks, and the
// Satisfied signal (when the query has a termination profile) lets the scan
// stop before end-of-file.
func demandRequest(ctx context.Context, q *engine.Query, ex QueryConsumer, base Request) Request {
	dem := NewDemandFrom(q, ex, base.Range.start())
	base.Deliver = func(bc *BinaryChunk) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if dem.IsSatisfied() {
			// Surplus chunk that was already in flight when the demand
			// latched: it provably cannot change the result.
			return nil
		}
		matched, err := ex.ConsumeCounted(bc)
		if err != nil {
			return err
		}
		dem.RecordChunk(bc.ID, matched)
		return nil
	}
	base.Skip = dem.WrapSkip(base.Skip)
	base.Satisfied = dem.SatisfiedFn()
	return base
}

// ExecuteSQL parses sql against the table's schema and executes it through
// the registry's operator for that table.
func (r *Registry) ExecuteSQL(table *dbstore.Table, cfg Config, sql string) (*engine.Result, RunStats, error) {
	return r.ExecuteSQLContext(context.Background(), table, cfg, sql)
}

// ExecuteSQLContext is ExecuteSQL with cancellation.
func (r *Registry) ExecuteSQLContext(ctx context.Context, table *dbstore.Table, cfg Config, sql string) (*engine.Result, RunStats, error) {
	q, err := engine.ParseSQL(sql, table.Schema())
	if err != nil {
		return nil, RunStats{}, err
	}
	return ExecuteQueryContext(ctx, r.Operator(table, cfg), q)
}

// SkipFromPredicate derives a chunk-elimination filter from a query
// predicate using the catalog's per-chunk min/max statistics (§3.3): a
// chunk is skipped when a conjunct of the form <column> <cmp> <integer
// literal> provably matches no tuple of the chunk. A nil or unanalyzable
// predicate yields nil (no skipping).
func SkipFromPredicate(where engine.Expr) func(*dbstore.ChunkMeta) bool {
	ranges := collectRanges(where)
	if len(ranges) == 0 {
		return nil
	}
	return func(meta *dbstore.ChunkMeta) bool {
		for _, rg := range ranges {
			if rg.col >= len(meta.Stats) {
				continue
			}
			if !meta.Stats[rg.col].MayContainInt(rg.lo, rg.hi) {
				return true // no tuple can satisfy this conjunct
			}
		}
		return false
	}
}

type colRange struct {
	col    int
	lo, hi int64
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// collectRanges walks AND-connected comparisons of a column against an
// integer constant and converts each into the value range a qualifying
// tuple must lie in.
func collectRanges(e engine.Expr) []colRange {
	switch v := e.(type) {
	case nil:
		return nil
	case *engine.Logic:
		if v.Op == engine.OpAnd {
			return append(collectRanges(v.L), collectRanges(v.R)...)
		}
		return nil
	case *engine.Cmp:
		col, konst, op, ok := normalizeCmp(v)
		if !ok {
			return nil
		}
		switch op {
		case engine.OpEq:
			return []colRange{{col, konst, konst}}
		case engine.OpLt:
			if konst == minInt64 {
				return nil
			}
			return []colRange{{col, minInt64, konst - 1}}
		case engine.OpLe:
			return []colRange{{col, minInt64, konst}}
		case engine.OpGt:
			if konst == maxInt64 {
				return nil
			}
			return []colRange{{col, konst + 1, maxInt64}}
		case engine.OpGe:
			return []colRange{{col, konst, maxInt64}}
		default: // OpNe excludes almost nothing
			return nil
		}
	default:
		return nil
	}
}

// normalizeCmp extracts (column, constant, operator-with-column-on-left)
// from a comparison when one side is a bare integer-typed column and the
// other an integer literal.
func normalizeCmp(c *engine.Cmp) (col int, konst int64, op engine.CmpOp, ok bool) {
	if l, isCol := c.L.(*engine.Col); isCol && l.Typ == schema.Int64 {
		if r, isConst := c.R.(*engine.Const); isConst && r.Typ == schema.Int64 {
			return l.Idx, r.Int, c.Op, true
		}
	}
	if r, isCol := c.R.(*engine.Col); isCol && r.Typ == schema.Int64 {
		if l, isConst := c.L.(*engine.Const); isConst && l.Typ == schema.Int64 {
			return r.Idx, l.Int, flipCmp(c.Op), true
		}
	}
	return 0, 0, 0, false
}

func flipCmp(op engine.CmpOp) engine.CmpOp {
	switch op {
	case engine.OpLt:
		return engine.OpGt
	case engine.OpLe:
		return engine.OpGe
	case engine.OpGt:
		return engine.OpLt
	case engine.OpGe:
		return engine.OpLe
	default:
		return op
	}
}
