//go:build invariants

package scanraw

import (
	"strings"
	"testing"
	"time"

	"scanraw/internal/chunk"
	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// Regression: a mid-scan Parse failure used to drop pooled positional maps
// on several paths — the parse task's error branch, the parse consumer's
// failed/done drains, and the sequential converter. The invariants-build
// pool gauge turns any such drop into a nonzero delta here. The positional
// map cache stays off so every map's lifetime must end in a recycle.
func TestScanErrorReleasesPositionalMaps(t *testing.T) {
	for _, workers := range []int{0, 4} {
		name := "sequential"
		if workers > 0 {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			const rows, cols = 256, 2
			var sb strings.Builder
			for r := 0; r < rows; r++ {
				if r == rows/2 {
					sb.WriteString("7,notanint\n")
					continue
				}
				sb.WriteString("7,11\n")
			}
			d := vdisk.Unlimited()
			d.Preload("raw/bad.csv", []byte(sb.String()))
			store := dbstore.NewStore(d)
			spec := gen.CSVSpec{Rows: rows, Cols: cols, Seed: 1, MaxValue: 100}
			table, err := store.CreateTable("bad", spec.Schema(), "raw/bad.csv")
			if err != nil {
				t.Fatal(err)
			}
			op := New(store, table, Config{
				Workers: workers, ChunkLines: 32, Policy: ExternalTables, CacheChunks: 4,
			})
			q, err := engine.SumAllColumns(table.Schema(), "bad", allCols(cols))
			if err != nil {
				t.Fatal(err)
			}

			base := chunk.OutstandingMaps()
			if _, _, err := ExecuteQuery(op, q); err == nil {
				t.Fatal("scan over malformed file succeeded")
			}
			// Failure teardown is asynchronous: in-flight tasks drain after
			// ExecuteQuery returns its error.
			deadline := time.Now().Add(2 * time.Second)
			for chunk.OutstandingMaps() != base && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := chunk.OutstandingMaps(); got != base {
				t.Errorf("positional maps leaked by failed scan: outstanding %d, want %d", got, base)
			}
		})
	}
}
