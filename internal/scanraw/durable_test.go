package scanraw

import (
	"os"
	"path/filepath"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	storepkg "scanraw/internal/store"
)

// openDurableEnv assembles the storage stack scanrawd uses with -data-dir —
// file-backed blobs plus a journaled catalog — and stages the generated CSV
// the same way the daemon does at startup. Reopening on the same dir is a
// warm start: the catalog is rebuilt from the manifest before EnsureTable
// runs.
func openDurableEnv(t *testing.T, dir string, spec gen.CSVSpec) (*testEnv, *storepkg.Manifest) {
	t.Helper()
	fd, err := storepkg.OpenFileDisk(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	man, err := storepkg.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dbstore.OpenDurable(fd, man)
	if err != nil {
		t.Fatal(err)
	}
	raw := gen.Bytes(spec)
	fd.Preload("raw/data.csv", raw)
	table, err := store.EnsureTable("data", spec.Schema(), "raw/data.csv", storepkg.FingerprintBytes(raw))
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{store: store, table: table, spec: spec}, man
}

// TestDurableKillAndRestart is the acceptance scenario for the durable
// store: convert with speculative loading, die without a checkpoint (the
// manifest journal is all that survives, as after SIGKILL), restart on the
// same directory, and verify the second process serves from the database —
// strictly fewer raw conversions — with byte-identical results.
func TestDurableKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	spec := gen.CSVSpec{Rows: 512, Cols: 4, Seed: 42, MaxValue: 1000}

	env, man := openDurableEnv(t, dir, spec)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true,
		CacheChunks: 4, CollectStats: true,
	})
	coldSum, coldStats := sumViaOperator(t, op, env)
	if coldSum != wantSum(env) {
		t.Fatalf("cold sum = %d, want %d", coldSum, wantSum(env))
	}
	if coldStats.DeliveredRaw == 0 {
		t.Fatal("cold run should convert from raw")
	}
	// Let the safeguard flush land its pages, then crash: no Checkpoint, no
	// graceful drain — recovery must come from the journal alone.
	op.WaitIdle()
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	env2, man2 := openDurableEnv(t, dir, spec)
	defer man2.Close()
	rec := env2.store.RecoveryStats()
	if rec.ChunksRecovered == 0 {
		t.Fatal("restart recovered no chunks")
	}
	if rec.ChunksInvalidated != 0 {
		t.Errorf("clean restart invalidated %d chunks", rec.ChunksInvalidated)
	}
	if !env2.table.Complete() {
		t.Error("recovered table lost chunk-discovery completeness")
	}
	op2 := New(env2.store, env2.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true,
		CacheChunks: 4, CollectStats: true,
	})
	warmSum, warmStats := sumViaOperator(t, op2, env2)
	if warmSum != coldSum {
		t.Errorf("warm sum = %d, cold sum = %d", warmSum, coldSum)
	}
	if warmStats.DeliveredRaw >= coldStats.DeliveredRaw {
		t.Errorf("warm run read %d chunks from raw, cold read %d: restart gained nothing",
			warmStats.DeliveredRaw, coldStats.DeliveredRaw)
	}
	if warmStats.DeliveredDB == 0 {
		t.Error("warm run served nothing from the database")
	}
	op2.WaitIdle()
}

// TestDurableCorruptPageReconverts flips a byte in one persisted page blob
// and restarts: recovery must invalidate exactly the damaged chunk's column
// (never panic, never serve the bad bytes) and the next query silently
// re-converts that chunk from the raw file with a correct result.
func TestDurableCorruptPageReconverts(t *testing.T) {
	dir := t.TempDir()
	spec := gen.CSVSpec{Rows: 512, Cols: 4, Seed: 7, MaxValue: 1000}

	env, man := openDurableEnv(t, dir, spec)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true,
		CacheChunks: 4, CollectStats: true,
	})
	coldSum, _ := sumViaOperator(t, op, env)
	if coldSum != wantSum(env) {
		t.Fatalf("cold sum = %d, want %d", coldSum, wantSum(env))
	}
	op.WaitIdle()
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one page blob on disk (anything under blobs/db is a page).
	var pages []string
	err := filepath.Walk(filepath.Join(dir, "blobs", "db"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			pages = append(pages, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no persisted pages found")
	}
	victim := pages[len(pages)/2]
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	env2, man2 := openDurableEnv(t, dir, spec)
	defer man2.Close()
	rec := env2.store.RecoveryStats()
	if rec.ChunksInvalidated == 0 {
		t.Fatal("corrupt page was not invalidated during recovery")
	}
	op2 := New(env2.store, env2.table, Config{
		Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true,
		CacheChunks: 4, CollectStats: true,
	})
	warmSum, warmStats := sumViaOperator(t, op2, env2)
	if warmSum != coldSum {
		t.Errorf("sum after re-conversion = %d, want %d", warmSum, coldSum)
	}
	if warmStats.DeliveredRaw+warmStats.DeliveredPartial == 0 {
		t.Error("damaged chunk should have been re-converted from raw")
	}
	if warmStats.DeliveredDB == 0 {
		t.Error("undamaged chunks should still come from the database")
	}
	op2.WaitIdle()
}
