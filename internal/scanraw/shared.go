package scanraw

import (
	"context"
	"fmt"
	"sort"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
)

// RunShared executes several requests over a single scan of the raw file —
// the multi-query processing the paper names as future work (§7). The
// operator converts the union of the requested columns once; every chunk
// is then delivered to each request, except requests whose Skip filter
// excludes it. Chunks are read or converted only once regardless of how
// many queries consume them, so N concurrent queries cost roughly one scan
// plus N engine passes instead of N scans.
//
// The returned stats describe the shared scan; the per-request slice gives
// each query's delivered/skipped chunk counts.
func (o *Operator) RunShared(reqs []Request) (RunStats, []SharedStats, error) {
	return o.RunSharedContext(context.Background(), reqs)
}

// RunSharedContext is RunShared with cancellation: when ctx is cancelled
// the underlying scan stops at the next chunk boundary and every request
// sees the context error. Callers serving independent clients typically
// pass a context that cancels only once all of them have gone away.
func (o *Operator) RunSharedContext(ctx context.Context, reqs []Request) (RunStats, []SharedStats, error) {
	if len(reqs) == 0 {
		return RunStats{}, nil, fmt.Errorf("scanraw: RunShared needs at least one request")
	}
	ncols := o.table.Schema().NumColumns()
	for i, req := range reqs {
		if err := validateRequest(req, ncols); err != nil {
			return RunStats{}, nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	union := unionColumns(reqs)
	per := make([]SharedStats, len(reqs))

	combined := Request{
		Columns: union,
		// A chunk is skipped at the scan level only when every request
		// would skip it; requests without a filter always need the chunk.
		Skip: func(meta *dbstore.ChunkMeta) bool {
			for _, req := range reqs {
				if req.Skip == nil || !req.Skip(meta) {
					return false
				}
			}
			return true
		},
		Deliver: func(bc *BinaryChunk) error {
			meta, haveMeta := o.table.Chunk(bc.ID)
			for i := range reqs {
				if reqs[i].Skip != nil && haveMeta && reqs[i].Skip(meta) {
					per[i].SkippedChunks++
					continue
				}
				if err := reqs[i].Deliver(bc); err != nil {
					return fmt.Errorf("request %d: %w", i, err)
				}
				per[i].DeliveredChunks++
			}
			return nil
		},
	}
	st, err := o.RunContext(ctx, combined)
	return st, per, err
}

// SharedStats is the per-request accounting of a shared scan.
type SharedStats struct {
	DeliveredChunks int
	SkippedChunks   int
}

// unionColumns returns the sorted union of every request's column set.
func unionColumns(reqs []Request) []int {
	seen := map[int]bool{}
	var out []int
	for _, req := range reqs {
		for _, c := range req.Columns {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ExecuteQueries runs several bound queries against the operator in one
// shared scan and returns their result sets.
func ExecuteQueries(op *Operator, qs []*engine.Query) ([]*engine.Result, RunStats, error) {
	return ExecuteQueriesContext(context.Background(), op, qs)
}

// ExecuteQueriesContext is ExecuteQueries with cancellation.
func ExecuteQueriesContext(ctx context.Context, op *Operator, qs []*engine.Query) ([]*engine.Result, RunStats, error) {
	if len(qs) == 0 {
		return nil, RunStats{}, fmt.Errorf("scanraw: no queries")
	}
	sch := op.Table().Schema()
	executors := make([]*engine.Executor, len(qs))
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		ex, err := engine.NewExecutor(q, sch)
		if err != nil {
			return nil, RunStats{}, fmt.Errorf("query %d: %w", i, err)
		}
		executors[i] = ex
		reqs[i] = Request{
			Columns: q.RequiredColumns(),
			Deliver: func(bc *BinaryChunk) error { return ex.ConsumeContext(ctx, bc) },
			Skip:    SkipFromPredicate(q.Where),
		}
	}
	st, _, err := op.RunSharedContext(ctx, reqs)
	if err != nil {
		return nil, st, err
	}
	results := make([]*engine.Result, len(qs))
	for i, ex := range executors {
		res, err := ex.Result()
		if err != nil {
			return nil, st, fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
	}
	return results, st, nil
}
