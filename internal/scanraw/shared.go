package scanraw

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
)

// RunShared executes several requests over a single scan of the raw file —
// the multi-query processing the paper names as future work (§7). The
// operator converts the union of the requested columns once; every chunk
// is then delivered to each request, except requests whose Skip filter
// excludes it. Chunks are read or converted only once regardless of how
// many queries consume them, so N concurrent queries cost roughly one scan
// plus N engine passes instead of N scans.
//
// The returned stats describe the shared scan; the per-request slice gives
// each query's delivered/skipped chunk counts.
func (o *Operator) RunShared(reqs []Request) (RunStats, []SharedStats, error) {
	return o.RunSharedContext(context.Background(), reqs)
}

// RunSharedContext is RunShared with cancellation: when ctx is cancelled
// the underlying scan stops at the next chunk boundary and every request
// sees the context error. Callers serving independent clients typically
// pass a context that cancels only once all of them have gone away.
func (o *Operator) RunSharedContext(ctx context.Context, reqs []Request) (RunStats, []SharedStats, error) {
	if len(reqs) == 0 {
		return RunStats{}, nil, fmt.Errorf("scanraw: RunShared needs at least one request")
	}
	ncols := o.table.Schema().NumColumns()
	for i, req := range reqs {
		if err := validateRequest(req, ncols); err != nil {
			return RunStats{}, nil, fmt.Errorf("request %d: %w", i, err)
		}
		if req.Order != nil && len(reqs) > 1 {
			// A sampled scan's visit order is its statistical contract;
			// sharing it with members that expect file order (or another
			// sample) would corrupt both. The server dispatches sampled
			// queries solo, so this is a programming-error guard.
			return RunStats{}, nil, fmt.Errorf("request %d: sampled (ordered) scans cannot share a scan", i)
		}
	}
	union := unionColumns(reqs)

	// The shared scan consumes with the widest parallelism any member
	// asked for; members that kept the serial contract (effective
	// parallelism 1) are serialized behind a per-request mutex so their
	// Deliver still never sees concurrent calls. Per-request counters are
	// atomics because the combined Deliver itself may run on several
	// consume workers at once.
	parallel := 1
	for _, req := range reqs {
		if n := o.consumeWorkersFor(req); n > parallel {
			parallel = n
		}
	}
	delivered := make([]atomic.Int64, len(reqs))
	skipped := make([]atomic.Int64, len(reqs))
	serialMu := make([]sync.Mutex, len(reqs))

	combined := Request{
		Columns:         union,
		ParallelConsume: parallel,
		// The scan covers the union of the members' chunk ranges; members
		// with narrower ranges filter per delivery below. Unbounded members
		// keep the whole file in play.
		Range: enclosingRange(reqs),
		// A chunk is skipped at the scan level only when every request
		// would skip it; requests without a filter always need the chunk.
		// A member whose range excludes the chunk never wants it, so it
		// does not block the skip.
		Skip: func(meta *dbstore.ChunkMeta) bool {
			for _, req := range reqs {
				if !req.Range.Contains(meta.ID) {
					continue
				}
				if req.Skip == nil || !req.Skip(meta) {
					return false
				}
			}
			return true
		},
		Deliver: func(bc *BinaryChunk) error {
			meta, haveMeta := o.table.Chunk(bc.ID)
			for i := range reqs {
				if !reqs[i].Range.Contains(bc.ID) {
					// Outside this member's universe: not delivered, not
					// counted as skipped.
					continue
				}
				if reqs[i].Satisfied != nil && reqs[i].Satisfied() {
					// This member's result is already final; the chunk is
					// still scanned for the members that need it.
					continue
				}
				if reqs[i].Skip != nil && haveMeta && reqs[i].Skip(meta) {
					skipped[i].Add(1)
					continue
				}
				var err error
				if o.consumeWorkersFor(reqs[i]) > 1 {
					err = reqs[i].Deliver(bc)
				} else {
					serialMu[i].Lock()
					err = reqs[i].Deliver(bc)
					serialMu[i].Unlock()
				}
				if err != nil {
					return fmt.Errorf("request %d: %w", i, err)
				}
				delivered[i].Add(1)
			}
			return nil
		},
	}
	// The shared scan terminates early only when EVERY member is provably
	// satisfied; a single member without a termination signal keeps the scan
	// running to end-of-file (its combined Satisfied stays nil).
	if s := combinedSatisfied(reqs); s != nil {
		combined.Satisfied = s
	}
	if len(reqs) == 1 {
		// A solo member's visit order passes straight through (multi-member
		// batches with an order were rejected above).
		combined.Order = reqs[0].Order
	}
	st, err := o.RunContext(ctx, combined)
	per := make([]SharedStats, len(reqs))
	for i := range per {
		per[i] = SharedStats{
			DeliveredChunks: int(delivered[i].Load()),
			SkippedChunks:   int(skipped[i].Load()),
		}
	}
	return st, per, err
}

// SharedStats is the per-request accounting of a shared scan.
type SharedStats struct {
	DeliveredChunks int
	SkippedChunks   int
}

// combinedSatisfied builds the shared scan's termination signal: the AND of
// every member's Satisfied. It returns nil — no early termination — unless
// every member carries a signal, because a member scanning to end-of-file
// needs every remaining chunk regardless of the others.
func combinedSatisfied(reqs []Request) func() bool {
	for _, req := range reqs {
		if req.Satisfied == nil {
			return nil
		}
	}
	return func() bool {
		for _, req := range reqs {
			if !req.Satisfied() {
				return false
			}
		}
		return true
	}
}

// enclosingRange returns the smallest chunk range covering every member's
// range, or nil (whole file) when any member is unrestricted.
func enclosingRange(reqs []Request) *ChunkRange {
	lo := -1
	hi := 0 // 0 = not yet set; -1 = unbounded above
	for _, req := range reqs {
		if req.Range == nil {
			return nil
		}
		if lo < 0 || req.Range.Lo < lo {
			lo = req.Range.Lo
		}
		switch {
		case hi == -1:
			// Already unbounded above.
		case req.Range.Hi <= 0:
			hi = -1
		case req.Range.Hi > hi:
			hi = req.Range.Hi
		}
	}
	if lo < 0 {
		return nil
	}
	if hi < 0 {
		hi = 0
	}
	return &ChunkRange{Lo: lo, Hi: hi}
}

// unionColumns returns the sorted union of every request's column set.
func unionColumns(reqs []Request) []int {
	seen := map[int]bool{}
	var out []int
	for _, req := range reqs {
		for _, c := range req.Columns {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ExecuteQueries runs several bound queries against the operator in one
// shared scan and returns their result sets.
func ExecuteQueries(op *Operator, qs []*engine.Query) ([]*engine.Result, RunStats, error) {
	return ExecuteQueriesContext(context.Background(), op, qs)
}

// ExecuteQueriesContext is ExecuteQueries with cancellation. When the
// operator is configured with ConsumeWorkers > 1, each query evaluates on
// an engine.ParallelExecutor and the shared scan's delivery fans out.
func ExecuteQueriesContext(ctx context.Context, op *Operator, qs []*engine.Query) ([]*engine.Result, RunStats, error) {
	if len(qs) == 0 {
		return nil, RunStats{}, fmt.Errorf("scanraw: no queries")
	}
	sch := op.Table().Schema()
	executors := make([]QueryConsumer, len(qs))
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		ex, n, err := newConsumer(op, q, sch)
		if err != nil {
			return nil, RunStats{}, fmt.Errorf("query %d: %w", i, err)
		}
		executors[i] = ex
		reqs[i] = demandRequest(ctx, q, ex, Request{
			Columns:         q.RequiredColumns(),
			Skip:            SkipFromPredicate(q.Where),
			ParallelConsume: n,
		})
	}
	st, _, err := op.RunSharedContext(ctx, reqs)
	if err != nil {
		return nil, st, err
	}
	results := make([]*engine.Result, len(qs))
	for i, ex := range executors {
		res, err := ex.Result()
		if err != nil {
			return nil, st, fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = res
	}
	return results, st, nil
}
