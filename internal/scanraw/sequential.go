package scanraw

import (
	"context"
	"fmt"

	"scanraw/internal/chunk"
)

// runSequential executes the query with zero worker threads: chunks pass
// through READ, TOKENIZE, PARSE and WRITE one at a time on the calling
// goroutine — the paper's "0 worker threads" configuration where no stage
// overlap is possible. It still honours the write policy; under
// Speculative the write of the oldest unloaded chunk happens after each
// conversion, when the disk would otherwise idle until the next read.
func (o *Operator) runSequential(ctx context.Context, req Request, del *deliverer, delivered map[int]bool, order []int, gate *cacheGate) (*run, error) {
	convCols := o.store.GroupClosure(o.table, req.Columns)
	r := &run{
		op:       o,
		req:      req,
		del:      del,
		order:    order,
		convCols: convCols,
		upTo:     convCols[len(convCols)-1] + 1,
		kern:     o.fusedKernel(convCols),
		done:     make(chan struct{}),
		seqSlot:  &workerSlot{},
		gate:     gate,
	}
	r.invisibleLeft.Store(int64(o.cfg.InvisibleChunksPerQuery))

	if order != nil {
		return r, r.sequentialOrdered(ctx)
	}

	sc := newRawScanner(o, o.table.RawFile())
	id := 0
	var off int64
	for {
		// Cancellation is chunk-granular in sequential mode too.
		if err := ctx.Err(); err != nil {
			return r, err
		}
		if r.demandSatisfied() {
			// Provably complete: stop issuing chunks. No SetComplete — the
			// file was not walked to the end.
			return r, nil
		}
		meta, known := o.table.Chunk(id)
		var tc *chunk.TextChunk
		if known {
			next := off + meta.RawLen
			switch {
			case delivered[id]:
				id++
				off = next
				continue
			case req.Skip != nil && req.Skip(meta):
				r.skipped.Add(1)
				id++
				off = next
				continue
			case meta.LoadedAll(req.Columns):
				bc, err := o.dbRead(id, req.Columns)
				if err != nil {
					return r, err
				}
				if err := r.insertAndDeliver(bc, true); err != nil {
					return r, err
				}
				r.deliveredDB.Add(1)
				id++
				off = next
				continue
			default:
				// Partial-width hit: convert only the missing groups; the
				// loaded requested columns merge in from their pages.
				if plan := r.planFor(meta); len(plan.fromDB) > 0 {
					r.setPlan(id, plan)
				}
				data, err := sc.readExtent(off, meta.RawLen)
				if err != nil {
					return r, err
				}
				o.prof.readChunks.Add(1)
				tc = &chunk.TextChunk{ID: id, Data: data, Lines: meta.Rows}
				off = next
			}
		} else {
			sc.seek(off)
			data, lines, err := sc.next(o.cfg.ChunkLines)
			if err != nil {
				return r, err
			}
			if lines == 0 {
				break
			}
			o.prof.readChunks.Add(1)
			if err := o.table.EnsureChunk(id, lines, off, int64(len(data))); err != nil {
				return r, err
			}
			tc = &chunk.TextChunk{ID: id, Data: data, Lines: lines}
			off += int64(len(data))
		}
		if err := r.convertAndDeliver(tc); err != nil {
			return r, err
		}
		id++
	}
	return r, o.table.SetComplete()
}

// sequentialOrdered is the zero-worker variant of a sampled scan: chunks
// are visited strictly in the request's explicit order, one at a time on
// the calling goroutine. Discovery already ran, so every chunk resolves
// from the catalog; cache hits are delivered in place (the sample order is
// the delivery order), loaded chunks come from the database, and the rest
// are read from their raw extents and converted inline.
func (r *run) sequentialOrdered(ctx context.Context) error {
	o := r.op
	sc := newRawScanner(o, o.table.RawFile())
	for _, id := range r.order {
		if err := ctx.Err(); err != nil {
			return err
		}
		if r.demandSatisfied() {
			return nil
		}
		meta, known := o.table.Chunk(id)
		if !known {
			return fmt.Errorf("scanraw: ordered scan: chunk %d vanished from the catalog", id)
		}
		if r.req.Skip != nil && r.req.Skip(meta) {
			r.skipped.Add(1)
			continue
		}
		if bc := o.cache.Acquire(id); bc != nil {
			if bc.HasAll(r.req.Columns) {
				r.del.deliver(bc, func() {
					if err := o.cache.Unpin(id); err != nil {
						r.del.setErr(err)
					}
					r.gate.broadcast()
				})
				if err := r.del.failedErr(); err != nil {
					return err
				}
				r.deliveredCache.Add(1)
				r.demandSatisfied()
				continue
			}
			if err := o.cache.Unpin(id); err != nil {
				return err
			}
		}
		if meta.LoadedAll(r.req.Columns) {
			bc, err := o.dbRead(id, r.req.Columns)
			if err != nil {
				return err
			}
			if err := r.insertAndDeliver(bc, true); err != nil {
				return err
			}
			r.deliveredDB.Add(1)
			continue
		}
		if plan := r.planFor(meta); len(plan.fromDB) > 0 {
			r.setPlan(id, plan)
		}
		data, err := sc.readExtent(meta.RawOff, meta.RawLen)
		if err != nil {
			return err
		}
		o.prof.readChunks.Add(1)
		tc := &chunk.TextChunk{ID: id, Data: data, Lines: meta.Rows}
		if err := r.convertAndDeliver(tc); err != nil {
			return err
		}
	}
	return nil
}

// insertAndDeliver places a converted (or database-read) chunk into the
// cache with a delivery pin and hands it to the consume stage; the pin is
// released once the consume finishes, so a parallel-consume worker can never
// race an eviction's vector recycling. Evicted chunks are retired through
// the same policy path the pipeline uses.
func (r *run) insertAndDeliver(bc *BinaryChunk, loaded bool) error {
	o := r.op
	evicted, evictedLoaded, ok := r.putPinnedWaitEv(bc, loaded)
	if !ok {
		if r.runErr != nil {
			return r.runErr
		}
		return r.del.failedErr()
	}
	if err := r.retireEvicted(evicted, evictedLoaded); err != nil {
		_ = o.cache.Unpin(bc.ID)
		return err
	}
	id := bc.ID
	r.del.deliver(bc, func() {
		if err := o.cache.Unpin(id); err != nil {
			r.del.setErr(err)
		}
		r.gate.broadcast()
	})
	if err := r.del.failedErr(); err != nil {
		return err
	}
	// The delivery completed: the natural point to notice the demand is now
	// satisfied (with fan-out consume this may lag a few chunks, which the
	// loop's next poll absorbs).
	r.demandSatisfied()
	return nil
}

// convertAndDeliver runs the conversion stages inline for one chunk.
func (r *run) convertAndDeliver(tc *chunk.TextChunk) error {
	o := r.op
	cols := r.convCols
	kern := r.kern
	plan, partial := r.plan(tc.ID)
	if partial {
		cols = plan.convert
		if kern != nil {
			kern = r.kernFor(cols)
		}
	}
	var bc *BinaryChunk
	var err error
	if kern != nil {
		// Fused conversion: one pass, no positional map; accounted to the
		// Parse stage (Tokenize stays zero under fused kernels).
		d := o.cpuWork(r.seqSlot, func() { bc, err = kern.Convert(tc) })
		o.prof.parseNs.Add(int64(d))
		if err != nil {
			return err
		}
	} else {
		pm, terr := o.tokenizeChunk(r.seqSlot, tc, r.upTo)
		if terr != nil {
			return terr
		}
		d := o.cpuWork(r.seqSlot, func() { bc, err = o.parser.Parse(tc, pm, cols) })
		o.prof.parseNs.Add(int64(d))
		o.releaseMap(tc.ID, pm)
		if err != nil {
			return err
		}
	}
	o.prof.parseChunks.Add(1)
	if o.cfg.CollectStats {
		if err := r.recordStats(bc, cols); err != nil {
			bc.RecycleColumns()
			return err
		}
	}
	if partial {
		dbc, derr := o.dbRead(tc.ID, plan.fromDB)
		if derr == nil {
			derr = bc.Merge(dbc)
		}
		if derr != nil {
			bc.RecycleColumns()
			return derr
		}
	}
	loaded := false
	switch o.cfg.Policy {
	case FullLoad:
		if err := r.runWrite(bc); err != nil {
			bc.RecycleColumns()
			return err
		}
		loaded = true
	case Invisible:
		if r.invisibleLeft.Add(-1) >= 0 {
			if err := r.runWrite(bc); err != nil {
				bc.RecycleColumns()
				return err
			}
			loaded = true
		}
	}
	if err := r.insertAndDeliver(bc, loaded); err != nil {
		return err
	}
	if partial {
		r.deliveredPartial.Add(1)
	} else {
		r.deliveredRaw.Add(1)
	}
	// Speculative loading without overlap: the disk idles while the next
	// chunk is converted, so spend one speculation quantum now (specStep
	// pins whatever it writes, shielding it from a concurrent eviction).
	if o.cfg.Policy == Speculative {
		if _, err := r.specStep(); err != nil {
			return err
		}
	}
	return nil
}
