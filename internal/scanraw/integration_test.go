package scanraw

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// TestCatalogPersistenceAcrossRestart simulates a database restart: load
// part of a table, persist the catalog, reopen the store from the same
// disk, and verify a fresh operator resumes from the loaded state instead
// of reconverting.
func TestCatalogPersistenceAcrossRestart(t *testing.T) {
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: 512, Cols: 3, Seed: 11, MaxValue: 100}
	gen.Preload(d, "raw/t.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("t", spec.Schema(), "raw/t.csv")
	if err != nil {
		t.Fatal(err)
	}
	op := New(store, table, Config{Workers: 2, ChunkLines: 64, Policy: FullLoad, CacheChunks: 2})
	want := gen.SumRange(spec, []int{0, 1, 2}, 0, 512)
	q, err := engine.SumAllColumns(table.Schema(), "t", []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res, _, err := ExecuteQuery(op, q); err != nil || res.Rows[0][0].Int != want {
		t.Fatalf("initial query: %v", err)
	}
	if err := store.SaveCatalog(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new store over the same disk, new operator.
	store2 := dbstore.NewStore(d)
	if err := store2.LoadCatalog(); err != nil {
		t.Fatal(err)
	}
	table2, ok := store2.Table("t")
	if !ok {
		t.Fatal("table missing after catalog reload")
	}
	if !table2.FullyLoaded() {
		t.Fatal("reloaded catalog lost the load state")
	}
	op2 := New(store2, table2, Config{Workers: 2, ChunkLines: 64, CacheChunks: 2})
	res, st, err := ExecuteQuery(op2, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != want {
		t.Errorf("post-restart sum = %d, want %d", res.Rows[0][0].Int, want)
	}
	if st.DeliveredRaw != 0 {
		t.Errorf("post-restart query reconverted %d raw chunks", st.DeliveredRaw)
	}
}

// TestCrossColumnCacheMerging exercises the copy-on-write cache merge: a
// sequence of queries over different column subsets must keep results
// correct while the cache accumulates columns chunk by chunk.
func TestCrossColumnCacheMerging(t *testing.T) {
	env := newEnv(t, 256, 4, nil)
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 32, CacheChunks: 16})
	queries := [][]int{{0}, {1}, {0, 1}, {2, 3}, {0, 1, 2, 3}, {1, 3}}
	for i, cols := range queries {
		var sum int64
		_, err := op.Run(Request{
			Columns: cols,
			Deliver: func(bc *BinaryChunk) error {
				for _, c := range cols {
					v := bc.Column(c)
					if v == nil {
						return fmt.Errorf("column %d missing from chunk %d", c, bc.ID)
					}
					for r := 0; r < bc.Rows; r++ {
						sum += v.Ints[r]
					}
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want := gen.SumRange(env.spec, cols, 0, 256); sum != want {
			t.Fatalf("query %d over %v: sum = %d, want %d", i, cols, sum, want)
		}
	}
	// By now chunks in cache should have merged all four columns.
	if bc := op.Cache().Peek(0); bc != nil && !bc.HasAll([]int{0, 1, 2, 3}) {
		t.Errorf("cached chunk 0 has columns %v, want all four merged", bc.Present())
	}
}

// TestRandomWorkloadProperty runs a randomized multi-query workload across
// random policies and verifies every result against the generator's ground
// truth — the system-level invariant that no policy, cache state, or
// loading interleaving may ever change query answers.
func TestRandomWorkloadProperty(t *testing.T) {
	policies := []WritePolicy{ExternalTables, FullLoad, BufferedLoad, Speculative, Invisible}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := 128 + rng.Intn(512)
		cols := 2 + rng.Intn(5)
		d := vdisk.Unlimited()
		spec := gen.CSVSpec{Rows: rows, Cols: cols, Seed: uint64(seed) + 1, MaxValue: 10000}
		gen.Preload(d, "raw/rand.csv", spec)
		store := dbstore.NewStore(d)
		table, err := store.CreateTable("rand", spec.Schema(), "raw/rand.csv")
		if err != nil {
			t.Fatal(err)
		}
		op := New(store, table, Config{
			Workers:      rng.Intn(5), // 0..4, includes sequential mode
			ChunkLines:   16 << rng.Intn(3),
			CacheChunks:  1 + rng.Intn(6),
			Policy:       policies[rng.Intn(len(policies))],
			Safeguard:    rng.Intn(2) == 0,
			CollectStats: rng.Intn(2) == 0,
		})
		for q := 0; q < 5; q++ {
			// Random column subset (sorted, unique).
			var qc []int
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 0 {
					qc = append(qc, c)
				}
			}
			if len(qc) == 0 {
				qc = []int{0}
			}
			var sum int64
			var rowsSeen int
			_, err := op.Run(Request{
				Columns: qc,
				Deliver: func(bc *BinaryChunk) error {
					rowsSeen += bc.Rows
					for _, c := range qc {
						for r := 0; r < bc.Rows; r++ {
							sum += bc.Column(c).Ints[r]
						}
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("seed %d query %d (%s): %v", seed, q, op.Config().Policy, err)
			}
			if rowsSeen != rows {
				t.Fatalf("seed %d query %d: saw %d rows, want %d", seed, q, rowsSeen, rows)
			}
			if want := gen.SumRange(spec, qc, 0, rows); sum != want {
				t.Fatalf("seed %d query %d cols %v policy %v: sum = %d, want %d",
					seed, q, qc, op.Config().Policy, sum, want)
			}
		}
		op.WaitIdle()
	}
}

// TestDiskBytesAccounting checks the per-run transfer totals: a first
// external-tables scan reads exactly the raw file; a repeat query from a
// big cache reads nothing.
func TestDiskBytesAccounting(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	rawSize, err := env.disk.Size("raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	op := New(env.store, env.table, Config{Workers: 2, ChunkLines: 64, CacheChunks: 16})
	_, st := sumViaOperator(t, op, env)
	if st.DiskReadBytes != rawSize {
		t.Errorf("first scan read %d bytes, file is %d", st.DiskReadBytes, rawSize)
	}
	if st.DiskWriteBytes != 0 {
		t.Errorf("external tables wrote %d bytes", st.DiskWriteBytes)
	}
	_, st2 := sumViaOperator(t, op, env)
	if st2.DiskReadBytes != 0 || st2.DiskWriteBytes != 0 {
		t.Errorf("all-cache query touched the disk: %+v", st2)
	}
}

// TestConcurrentOperatorsOnSharedStore runs two operators over different
// tables of one store concurrently: the shared disk serializes transfers
// but both queries must complete correctly.
func TestConcurrentOperatorsOnSharedStore(t *testing.T) {
	d := vdisk.Unlimited()
	store := dbstore.NewStore(d)
	specs := make([]gen.CSVSpec, 2)
	tables := make([]*dbstore.Table, 2)
	for i := range specs {
		specs[i] = gen.CSVSpec{Rows: 512, Cols: 3, Seed: uint64(i + 1), MaxValue: 1000}
		name := fmt.Sprintf("t%d", i)
		gen.Preload(d, "raw/"+name, specs[i])
		tbl, err := store.CreateTable(name, specs[i].Schema(), "raw/"+name)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := New(store, tables[i], Config{
				Workers: 2, ChunkLines: 64, Policy: Speculative, Safeguard: true, CacheChunks: 2,
			})
			for q := 0; q < 3; q++ {
				var sum int64
				_, err := op.Run(Request{
					Columns: []int{0, 1, 2},
					Deliver: func(bc *BinaryChunk) error {
						for r := 0; r < bc.Rows; r++ {
							sum += bc.Column(0).Ints[r] + bc.Column(1).Ints[r] + bc.Column(2).Ints[r]
						}
						return nil
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if want := gen.SumRange(specs[i], []int{0, 1, 2}, 0, 512); sum != want {
					t.Errorf("table %d query %d: sum = %d, want %d", i, q, sum, want)
					return
				}
			}
			op.WaitIdle()
		}(i)
	}
	wg.Wait()
	for i, tbl := range tables {
		if !tbl.FullyLoaded() {
			t.Errorf("table %d not fully loaded after 3 speculative queries", i)
		}
	}
}

// TestSequentialBufferedEviction covers the buffered policy in sequential
// mode, where evictions happen inline.
func TestSequentialBufferedEviction(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 0, ChunkLines: 64, Policy: BufferedLoad, CacheChunks: 2, Safeguard: true,
	})
	got, st := sumViaOperator(t, op, env)
	if got != wantSum(env) {
		t.Fatalf("sum = %d", got)
	}
	if st.WrittenDuringRun < 6 {
		t.Errorf("sequential buffered wrote %d during run, want >= 6", st.WrittenDuringRun)
	}
	op.WaitIdle()
	if loaded := env.table.CountLoaded([]int{0, 1}); loaded != 8 {
		t.Errorf("loaded = %d, want 8", loaded)
	}
}

// TestPositionalMapCache verifies that with map caching enabled a repeat
// query over re-read raw chunks skips TOKENIZE entirely while producing
// identical results.
func TestPositionalMapCache(t *testing.T) {
	for _, workers := range []int{0, 2} {
		env := newEnv(t, 512, 4, nil)
		// Tiny binary cache so the second query must re-read raw text.
		op := New(env.store, env.table, Config{
			Workers: workers, ChunkLines: 64, CacheChunks: 1,
			Policy: ExternalTables, CachePositionalMaps: true,
		})
		got1, st1 := sumViaOperator(t, op, env)
		got2, st2 := sumViaOperator(t, op, env)
		if got1 != wantSum(env) || got2 != wantSum(env) {
			t.Fatalf("workers=%d sums = %d, %d, want %d", workers, got1, got2, wantSum(env))
		}
		if st2.DeliveredRaw == 0 {
			t.Fatalf("workers=%d: second query should re-read raw chunks", workers)
		}
		if st1.Profile.Tokenize.Time == 0 {
			t.Errorf("workers=%d: first query should spend tokenize time", workers)
		}
		if st2.Profile.Tokenize.Time != 0 {
			t.Errorf("workers=%d: cached maps should zero tokenize time, got %v",
				workers, st2.Profile.Tokenize.Time)
		}
		if st2.Profile.Tokenize.Chunks == 0 {
			t.Errorf("workers=%d: tokenize chunk count should still advance", workers)
		}
	}
}

// TestPositionalMapExtension verifies that a partial cached map is
// extended (not re-tokenized) when a later query needs more columns, and
// that results stay correct.
func TestPositionalMapExtension(t *testing.T) {
	env := newEnv(t, 256, 4, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 1,
		Policy: ExternalTables, CachePositionalMaps: true,
	})
	// Query 1 maps columns 0..1.
	q1 := []int{0, 1}
	var sum1 int64
	if _, err := op.Run(Request{
		Columns: q1,
		Deliver: func(bc *BinaryChunk) error {
			for r := 0; r < bc.Rows; r++ {
				sum1 += bc.Column(0).Ints[r] + bc.Column(1).Ints[r]
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if want := gen.SumRange(env.spec, q1, 0, 256); sum1 != want {
		t.Fatalf("sum1 = %d, want %d", sum1, want)
	}
	// The cached maps cover only 2 columns.
	pm, complete := op.cachedMap(0, 4)
	if pm == nil || complete || pm.NumCols != 2 {
		t.Fatalf("cached map after q1: %+v complete=%v", pm, complete)
	}
	// Query 2 needs all 4: the maps must be extended and results correct.
	q2 := []int{0, 1, 2, 3}
	var sum2 int64
	if _, err := op.Run(Request{
		Columns: q2,
		Deliver: func(bc *BinaryChunk) error {
			for r := 0; r < bc.Rows; r++ {
				for _, c := range q2 {
					sum2 += bc.Column(c).Ints[r]
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if want := gen.SumRange(env.spec, q2, 0, 256); sum2 != want {
		t.Fatalf("sum2 = %d, want %d", sum2, want)
	}
	if pm, complete := op.cachedMap(0, 4); pm == nil || !complete {
		t.Error("cache should now hold the extended 4-column map")
	}
}

// TestPositionalMapCacheBound verifies the cache respects its size bound.
func TestPositionalMapCacheBound(t *testing.T) {
	env := newEnv(t, 512, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 1,
		CachePositionalMaps: true, PositionalMapCacheChunks: 3,
	})
	if _, err := op.Run(Request{
		Columns: []int{0, 1},
		Deliver: func(*BinaryChunk) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	op.pmMu.Lock()
	n := len(op.pmCache)
	op.pmMu.Unlock()
	if n > 3 {
		t.Errorf("positional map cache holds %d entries, bound is 3", n)
	}
}

// TestSkipAllChunksSecondQuery covers the full chunk-elimination path end
// to end through ExecuteQuery with statistics.
func TestSkipAllChunksSecondQuery(t *testing.T) {
	env := newEnv(t, 256, 2, nil)
	op := New(env.store, env.table, Config{
		Workers: 2, ChunkLines: 32, CollectStats: true, CacheChunks: 1,
	})
	q1, err := engine.ParseSQL("SELECT SUM(c0) FROM data", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecuteQuery(op, q1); err != nil {
		t.Fatal(err)
	}
	// All values are < 1000 (MaxValue), so this matches everything; no
	// chunk may be skipped (soundness check on the skip filter).
	q2, err := engine.ParseSQL("SELECT COUNT(*) FROM data WHERE c0 < 1000", env.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteQuery(op, q2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedChunks != 0 {
		t.Errorf("all-matching predicate skipped %d chunks (unsound)", st.SkippedChunks)
	}
	if res.Rows[0][0].Int != 256 {
		t.Errorf("count = %d, want 256", res.Rows[0][0].Int)
	}
}
