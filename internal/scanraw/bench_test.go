package scanraw

import (
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/vdisk"
)

// benchOperator builds an operator over an unthrottled in-memory disk so
// the benchmark measures pipeline overhead, not the simulated hardware.
func benchOperator(b *testing.B, policy WritePolicy, workers int) (*Operator, []int) {
	b.Helper()
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: 1 << 13, Cols: 16, Seed: 1}
	gen.Preload(d, "raw/bench.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("bench", spec.Schema(), "raw/bench.csv")
	if err != nil {
		b.Fatal(err)
	}
	op := New(store, table, Config{
		Workers: workers, ChunkLines: 1 << 9, Policy: policy, CacheChunks: 4,
	})
	return op, allCols(16)
}

func runBench(b *testing.B, op *Operator, cols []int) {
	req := Request{
		Columns: cols,
		Deliver: func(bc *BinaryChunk) error { return nil },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Cache().Clear()
		if _, err := op.Run(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOperatorExternal measures a full external-tables scan through
// the pipeline (8 workers).
func BenchmarkOperatorExternal(b *testing.B) {
	op, cols := benchOperator(b, ExternalTables, 8)
	runBench(b, op, cols)
}

// BenchmarkOperatorSequential measures the 0-worker sequential path.
func BenchmarkOperatorSequential(b *testing.B) {
	op, cols := benchOperator(b, ExternalTables, 0)
	runBench(b, op, cols)
}

// BenchmarkOperatorSpeculative measures the speculative policy including
// scheduler coordination (writes re-target already-loaded chunks after the
// first iteration, so steady state measures the no-op write path).
func BenchmarkOperatorSpeculative(b *testing.B) {
	op, cols := benchOperator(b, Speculative, 8)
	runBench(b, op, cols)
}
