// Package vdisk implements a simulated disk: an in-memory blob store whose
// read and write operations are throttled to a configurable bandwidth and
// serialized through a single accessor, the way a single RAID volume
// serializes a database's READ and WRITE threads.
//
// The paper's experimental machine exposes one storage system shared by raw
// file reading and database writing; every headline result (the CPU-bound to
// I/O-bound crossover in Fig. 4, the disk-idle intervals exploited by
// speculative loading, the READ/WRITE interference the scheduler must avoid)
// is a function of that shared, bandwidth-limited device. Modelling the disk
// explicitly makes those effects deterministic and lets experiments dial the
// crossover point instead of depending on whatever hardware runs the tests.
//
// The disk also keeps busy-time accounting (cumulative nanoseconds spent in
// read and write operations) which the metrics package samples to produce
// the paper's Fig. 9 utilization trace.
package vdisk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotExist is returned when an operation references a blob that has not
// been created on the disk.
var ErrNotExist = errors.New("vdisk: blob does not exist")

// ErrInjected is the error produced by failure injection.
var ErrInjected = errors.New("vdisk: injected failure")

// Config controls the performance model of a Disk.
type Config struct {
	// ReadBandwidth is the sustained read rate in bytes per second.
	// Zero means unthrottled reads.
	ReadBandwidth int64
	// WriteBandwidth is the sustained write rate in bytes per second.
	// Zero means unthrottled writes.
	WriteBandwidth int64
	// SeekLatency is a fixed per-operation latency added before the
	// transfer, modelling seek + rotational delay. Zero means none.
	SeekLatency time.Duration
}

// String describes the performance model, e.g. "read 400 MB/s, write 400
// MB/s, seek 0s".
func (c Config) String() string {
	return fmt.Sprintf("read %.0f MB/s, write %.0f MB/s, seek %v",
		float64(c.ReadBandwidth)/(1<<20), float64(c.WriteBandwidth)/(1<<20), c.SeekLatency)
}

// Stats is a snapshot of cumulative disk activity.
type Stats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	// ReadBusy and WriteBusy are the cumulative wall-clock durations the
	// disk spent servicing reads and writes.
	ReadBusy  time.Duration
	WriteBusy time.Duration
}

// Busy returns the total time the disk was occupied.
func (s Stats) Busy() time.Duration { return s.ReadBusy + s.WriteBusy }

// Sub returns the difference s - o, used to compute per-interval
// utilization from two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ReadOps:    s.ReadOps - o.ReadOps,
		WriteOps:   s.WriteOps - o.WriteOps,
		ReadBytes:  s.ReadBytes - o.ReadBytes,
		WriteBytes: s.WriteBytes - o.WriteBytes,
		ReadBusy:   s.ReadBusy - o.ReadBusy,
		WriteBusy:  s.WriteBusy - o.WriteBusy,
	}
}

// FailFunc decides whether an operation should fail. It receives the
// operation kind ("read" or "write") and blob name; returning a non-nil
// error aborts the operation before any data is transferred.
type FailFunc func(op, name string) error

// Backend is the blob-storage layer a Disk throttles. The default is the
// in-memory Mem store; a durable file-backed store (internal/store's
// FileDisk) plugs in the same way, which is how experiments keep the
// deterministic bandwidth model while the data underneath survives
// restarts.
type Backend interface {
	Create(name string)
	Delete(name string)
	Exists(name string) bool
	Size(name string) (int64, error)
	List(prefix string) []string
	Preload(name string, p []byte)
	WriteBlob(name string, p []byte) error
	Append(name string, p []byte) (int64, error)
	ReadAt(name string, p []byte, off int64) (int, error)
}

// Disk is a simulated single-volume storage device: a bandwidth-throttling,
// busy-time-accounting wrapper around a blob Backend. All methods are safe
// for concurrent use; data transfers are serialized so that concurrent
// readers and writers interfere exactly as they would on one spindle.
type Disk struct {
	cfg     Config
	backend Backend

	io   sync.Mutex    // serializes (and paces) data transfers
	debt time.Duration // un-slept transfer time, guarded by io

	mu   sync.Mutex // guards fail
	fail FailFunc

	readOps    atomic.Int64
	writeOps   atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	readBusyNs atomic.Int64
	writeBusy  atomic.Int64
}

// New creates an empty in-memory disk with the given performance model.
func New(cfg Config) *Disk {
	return NewBacked(cfg, NewMem())
}

// NewBacked creates a disk with the given performance model over an
// arbitrary blob backend.
func NewBacked(cfg Config, b Backend) *Disk {
	return &Disk{cfg: cfg, backend: b}
}

// Unlimited creates a disk with no throttling, useful for unit tests where
// timing is irrelevant.
func Unlimited() *Disk { return New(Config{}) }

// Config returns the performance model the disk was created with.
func (d *Disk) Config() Config { return d.cfg }

// SetFailure installs (or clears, with nil) a failure-injection hook.
func (d *Disk) SetFailure(f FailFunc) {
	d.mu.Lock()
	d.fail = f
	d.mu.Unlock()
}

func (d *Disk) checkFail(op, name string) error {
	d.mu.Lock()
	f := d.fail
	d.mu.Unlock()
	if f == nil {
		return nil
	}
	return f(op, name)
}

// transferDelay computes how long moving n bytes should occupy the disk.
func transferDelay(n int, bw int64, seek time.Duration) time.Duration {
	delay := seek
	if bw > 0 {
		delay += time.Duration(float64(n) / float64(bw) * float64(time.Second))
	}
	return delay
}

// sleepThreshold is the smallest delay worth actually sleeping for.
// time.Sleep overshoots sub-millisecond requests badly enough to distort
// the model, so smaller delays accumulate as debt and are paid in one
// sleep once they add up — aggregate timing stays accurate while
// per-operation overhead vanishes.
const sleepThreshold = time.Millisecond

// occupy serializes a transfer and accounts its busy time.
func (d *Disk) occupy(delay time.Duration, busy *atomic.Int64) {
	if delay < 0 {
		delay = 0
	}
	d.io.Lock()
	d.debt += delay
	if d.debt >= sleepThreshold {
		start := time.Now()
		time.Sleep(d.debt)
		// Oversleep becomes credit against future transfers.
		d.debt -= time.Since(start)
	}
	d.io.Unlock()
	// Account the nominal occupancy so utilization reflects the model,
	// not the scheduler's sleep jitter.
	busy.Add(int64(delay))
}

// Create creates an empty blob, truncating any existing blob with the same
// name. Creation is a metadata operation and is not throttled.
func (d *Disk) Create(name string) { d.backend.Create(name) }

// Delete removes a blob. Deleting a missing blob is a no-op.
func (d *Disk) Delete(name string) { d.backend.Delete(name) }

// Exists reports whether the named blob exists.
func (d *Disk) Exists(name string) bool { return d.backend.Exists(name) }

// Size returns the length of the named blob.
func (d *Disk) Size(name string) (int64, error) { return d.backend.Size(name) }

// List returns the names of all blobs with the given prefix, sorted.
func (d *Disk) List(prefix string) []string { return d.backend.List(prefix) }

// Preload installs a blob without throttling or accounting. It exists for
// experiment setup: materializing a raw file onto the disk must not consume
// the bandwidth budget the experiment is about to measure.
func (d *Disk) Preload(name string, p []byte) { d.backend.Preload(name, p) }

// WriteBlob replaces the named blob's contents in one throttled write.
// The blob is created if it does not exist.
func (d *Disk) WriteBlob(name string, p []byte) error {
	if err := d.checkFail("write", name); err != nil {
		return err
	}
	d.occupy(transferDelay(len(p), d.cfg.WriteBandwidth, d.cfg.SeekLatency), &d.writeBusy)
	if err := d.backend.WriteBlob(name, p); err != nil {
		return err
	}
	d.writeOps.Add(1)
	d.writeBytes.Add(int64(len(p)))
	return nil
}

// Append appends p to the named blob (creating it if needed) and returns
// the offset at which the data landed.
func (d *Disk) Append(name string, p []byte) (int64, error) {
	if err := d.checkFail("write", name); err != nil {
		return 0, err
	}
	d.occupy(transferDelay(len(p), d.cfg.WriteBandwidth, d.cfg.SeekLatency), &d.writeBusy)
	off, err := d.backend.Append(name, p)
	if err != nil {
		return 0, err
	}
	d.writeOps.Add(1)
	d.writeBytes.Add(int64(len(p)))
	return off, nil
}

// ReadAt reads len(p) bytes from the named blob starting at off. It returns
// the number of bytes read; fewer than len(p) bytes with a nil error means
// the blob ended (there is no io.EOF convention here — short read IS the
// end-of-blob signal, mirroring ReadFull-style usage in the pipeline).
func (d *Disk) ReadAt(name string, p []byte, off int64) (int, error) {
	if err := d.checkFail("read", name); err != nil {
		return 0, err
	}
	n, err := d.backend.ReadAt(name, p, off)
	if err != nil {
		return n, err
	}
	d.occupy(transferDelay(n, d.cfg.ReadBandwidth, d.cfg.SeekLatency), &d.readBusyNs)
	d.readOps.Add(1)
	d.readBytes.Add(int64(n))
	return n, nil
}

// ReadBlob reads the entire named blob in one throttled read.
func (d *Disk) ReadBlob(name string) ([]byte, error) {
	sz, err := d.Size(name)
	if err != nil {
		return nil, err
	}
	p := make([]byte, sz)
	n, err := d.ReadAt(name, p, 0)
	if err != nil {
		return nil, err
	}
	return p[:n], nil
}

// Stats returns a snapshot of cumulative disk activity.
func (d *Disk) Stats() Stats {
	return Stats{
		ReadOps:    d.readOps.Load(),
		WriteOps:   d.writeOps.Load(),
		ReadBytes:  d.readBytes.Load(),
		WriteBytes: d.writeBytes.Load(),
		ReadBusy:   time.Duration(d.readBusyNs.Load()),
		WriteBusy:  time.Duration(d.writeBusy.Load()),
	}
}

// ResetStats zeroes the activity counters (the blobs are untouched).
func (d *Disk) ResetStats() {
	d.readOps.Store(0)
	d.writeOps.Store(0)
	d.readBytes.Store(0)
	d.writeBytes.Store(0)
	d.readBusyNs.Store(0)
	d.writeBusy.Store(0)
}
