package vdisk

import (
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory blob backend: the original simulated-disk storage,
// now separated from the throttling layer so the same bandwidth model can
// wrap a durable backend.
type Mem struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

var _ Backend = (*Mem)(nil)

// NewMem creates an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{blobs: make(map[string][]byte)}
}

// Create creates an empty blob, truncating any existing blob.
func (m *Mem) Create(name string) {
	m.mu.Lock()
	m.blobs[name] = nil
	m.mu.Unlock()
}

// Delete removes a blob. Deleting a missing blob is a no-op.
func (m *Mem) Delete(name string) {
	m.mu.Lock()
	delete(m.blobs, name)
	m.mu.Unlock()
}

// Exists reports whether the named blob exists.
func (m *Mem) Exists(name string) bool {
	m.mu.Lock()
	_, ok := m.blobs[name]
	m.mu.Unlock()
	return ok
}

// Size returns the length of the named blob.
func (m *Mem) Size(name string) (int64, error) {
	m.mu.Lock()
	b, ok := m.blobs[name]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(b)), nil
}

// List returns the names of all blobs with the given prefix, sorted.
func (m *Mem) List(prefix string) []string {
	m.mu.Lock()
	names := make([]string, 0, len(m.blobs))
	for n := range m.blobs {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			names = append(names, n)
		}
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names
}

// Preload installs a blob.
func (m *Mem) Preload(name string, p []byte) {
	m.mu.Lock()
	m.blobs[name] = append([]byte(nil), p...)
	m.mu.Unlock()
}

// WriteBlob replaces the named blob's contents.
func (m *Mem) WriteBlob(name string, p []byte) error {
	m.Preload(name, p)
	return nil
}

// Append appends p to the named blob (creating it if needed) and returns
// the offset at which the data landed.
func (m *Mem) Append(name string, p []byte) (int64, error) {
	m.mu.Lock()
	off := int64(len(m.blobs[name]))
	m.blobs[name] = append(m.blobs[name], p...)
	m.mu.Unlock()
	return off, nil
}

// ReadAt reads len(p) bytes from the named blob starting at off; a short
// read with nil error means the blob ended.
func (m *Mem) ReadAt(name string, p []byte, off int64) (int, error) {
	m.mu.Lock()
	b, ok := m.blobs[name]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if off < 0 {
		return 0, fmt.Errorf("vdisk: negative offset %d reading %s", off, name)
	}
	if off >= int64(len(b)) {
		return 0, nil
	}
	return copy(p, b[off:]), nil
}
