package vdisk

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := Unlimited()
	data := []byte("hello, in-situ world")
	if err := d.WriteBlob("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlob("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("ReadBlob = %q, want %q", got, data)
	}
}

func TestReadMissing(t *testing.T) {
	d := Unlimited()
	if _, err := d.ReadBlob("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	if _, err := d.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Size err = %v, want ErrNotExist", err)
	}
	buf := make([]byte, 4)
	if _, err := d.ReadAt("nope", buf, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadAt err = %v, want ErrNotExist", err)
	}
}

func TestAppendOffsets(t *testing.T) {
	d := Unlimited()
	off1, err := d.Append("f", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := d.Append("f", []byte("defg"))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 3 {
		t.Errorf("offsets = %d,%d, want 0,3", off1, off2)
	}
	sz, _ := d.Size("f")
	if sz != 7 {
		t.Errorf("Size = %d, want 7", sz)
	}
}

func TestReadAtPartial(t *testing.T) {
	d := Unlimited()
	if err := d.WriteBlob("f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := d.ReadAt("f", buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || string(buf[:n]) != "89" {
		t.Errorf("ReadAt(8) = %d %q", n, buf[:n])
	}
	// Past the end: short read of zero bytes, no error.
	n, err = d.ReadAt("f", buf, 100)
	if err != nil || n != 0 {
		t.Errorf("ReadAt past end = %d,%v, want 0,nil", n, err)
	}
	if _, err := d.ReadAt("f", buf, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestCreateTruncatesAndDelete(t *testing.T) {
	d := Unlimited()
	if err := d.WriteBlob("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	d.Create("f")
	sz, _ := d.Size("f")
	if sz != 0 {
		t.Errorf("Create should truncate, size = %d", sz)
	}
	d.Delete("f")
	if d.Exists("f") {
		t.Error("Delete should remove the blob")
	}
	d.Delete("f") // no-op
}

func TestList(t *testing.T) {
	d := Unlimited()
	for _, n := range []string{"db/t1/c0", "db/t1/c1", "raw/file", "db/t2/c0"} {
		d.Create(n)
	}
	got := d.List("db/t1/")
	want := []string{"db/t1/c0", "db/t1/c1"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("List[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if all := d.List(""); len(all) != 4 {
		t.Errorf("List(\"\") = %v", all)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := Unlimited()
	if err := d.WriteBlob("f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlob("f"); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.WriteOps != 1 || s.WriteBytes != 100 {
		t.Errorf("write stats = %+v", s)
	}
	if s.ReadOps != 1 || s.ReadBytes != 100 {
		t.Errorf("read stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.ReadOps != 0 || s.WriteBytes != 0 {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{ReadOps: 5, WriteOps: 3, ReadBytes: 100, WriteBytes: 50, ReadBusy: 10, WriteBusy: 4}
	b := Stats{ReadOps: 2, WriteOps: 1, ReadBytes: 40, WriteBytes: 20, ReadBusy: 3, WriteBusy: 1}
	diff := a.Sub(b)
	if diff.ReadOps != 3 || diff.WriteOps != 2 || diff.ReadBytes != 60 ||
		diff.WriteBytes != 30 || diff.ReadBusy != 7 || diff.WriteBusy != 3 {
		t.Errorf("Sub = %+v", diff)
	}
	if diff.Busy() != 10 {
		t.Errorf("Busy = %v", diff.Busy())
	}
}

func TestThrottledReadTakesTime(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms of busy time.
	d := New(Config{ReadBandwidth: 10 << 20})
	if err := d.WriteBlob("f", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := d.ReadBlob("f"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("throttled read took %v, want >= ~100ms", elapsed)
	}
	s := d.Stats()
	if s.ReadBusy < 80*time.Millisecond {
		t.Errorf("ReadBusy = %v, want >= ~100ms", s.ReadBusy)
	}
}

func TestSeekLatency(t *testing.T) {
	d := New(Config{SeekLatency: 20 * time.Millisecond})
	start := time.Now()
	if err := d.WriteBlob("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("seek latency not applied, took %v", elapsed)
	}
}

func TestSerializedAccess(t *testing.T) {
	// Two concurrent 0.5 MB reads at 10 MB/s must serialize: total wall
	// time ~100 ms, not ~50 ms.
	d := New(Config{ReadBandwidth: 10 << 20})
	if err := d.WriteBlob("f", make([]byte, 512<<10)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.ReadBlob("f"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("concurrent reads finished in %v; disk is not serializing", elapsed)
	}
}

func TestDebtPacingAggregateAccuracy(t *testing.T) {
	// Many sub-millisecond transfers must still cost their aggregate
	// model time: 200 x 16 KiB at 32 MB/s = 3.2 MiB -> 100 ms total, even
	// though each individual op's delay (~0.5 ms) is below the sleep
	// threshold.
	d := New(Config{WriteBandwidth: 32 << 20})
	start := time.Now()
	for i := 0; i < 200; i++ {
		if _, err := d.Append("f", make([]byte, 16<<10)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("200 small writes took %v, want >= ~100ms aggregate", elapsed)
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("200 small writes took %v; per-op overhead is leaking in", elapsed)
	}
	// Busy accounting reflects nominal model time.
	if busy := d.Stats().WriteBusy; busy < 90*time.Millisecond || busy > 110*time.Millisecond {
		t.Errorf("WriteBusy = %v, want ~100ms nominal", busy)
	}
}

func TestFailureInjection(t *testing.T) {
	d := Unlimited()
	if err := d.WriteBlob("f", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	d.SetFailure(func(op, name string) error {
		if op == "read" && name == "f" {
			return ErrInjected
		}
		return nil
	})
	if _, err := d.ReadBlob("f"); !errors.Is(err, ErrInjected) {
		t.Errorf("read err = %v, want ErrInjected", err)
	}
	if err := d.WriteBlob("g", []byte("fine")); err != nil {
		t.Errorf("unrelated write failed: %v", err)
	}
	d.SetFailure(nil)
	if _, err := d.ReadBlob("f"); err != nil {
		t.Errorf("after clearing failure: %v", err)
	}
}

func TestFailureDoesNotCorrupt(t *testing.T) {
	d := Unlimited()
	if err := d.WriteBlob("f", []byte("original")); err != nil {
		t.Fatal(err)
	}
	d.SetFailure(func(op, name string) error { return ErrInjected })
	if err := d.WriteBlob("f", []byte("clobbered")); err == nil {
		t.Fatal("write should have failed")
	}
	d.SetFailure(nil)
	got, _ := d.ReadBlob("f")
	if string(got) != "original" {
		t.Errorf("blob corrupted by failed write: %q", got)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	d := Unlimited()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("blob-%d", i)
			for j := 0; j < 50; j++ {
				if _, err := d.Append(name, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
			}
			b, err := d.ReadBlob(name)
			if err != nil {
				t.Error(err)
				return
			}
			if len(b) != 50 {
				t.Errorf("blob %s has %d bytes, want 50", name, len(b))
			}
		}(i)
	}
	wg.Wait()
	if s := d.Stats(); s.WriteOps != 8*50 {
		t.Errorf("WriteOps = %d, want 400", s.WriteOps)
	}
}

// Property: append round-trips — any sequence of appended segments reads
// back as their concatenation.
func TestAppendConcatProperty(t *testing.T) {
	f := func(segments [][]byte) bool {
		d := Unlimited()
		var want []byte
		for _, s := range segments {
			if _, err := d.Append("f", s); err != nil {
				return false
			}
			want = append(want, s...)
		}
		if len(segments) == 0 {
			return true
		}
		got, err := d.ReadBlob("f")
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ReadAt never returns data that differs from the blob contents,
// for any offset and buffer size.
func TestReadAtWindowProperty(t *testing.T) {
	f := func(data []byte, off uint16, n uint8) bool {
		d := Unlimited()
		if err := d.WriteBlob("f", data); err != nil {
			return false
		}
		buf := make([]byte, int(n))
		got, err := d.ReadAt("f", buf, int64(off))
		if err != nil {
			return false
		}
		if int(off) >= len(data) {
			return got == 0
		}
		want := data[off:]
		if len(want) > len(buf) {
			want = want[:len(buf)]
		}
		return got == len(want) && bytes.Equal(buf[:got], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
