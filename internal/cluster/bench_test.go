package cluster_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"scanraw/internal/gen"
)

// The distributed-merge overhead pair: the same GROUP BY aggregate served
// by one scanrawd versus a coordinator scattering it over a 3-worker
// fleet and merging the shipped partials. scripts/bench.sh derives the
// distributed_merge_overhead ratio (distributed / single-node) from these
// two; it prices the codec + HTTP + merge-tree cost of going distributed
// on data small enough that scan time does not dominate.
const benchSQL = "SELECT c0, SUM(c1), COUNT(*) FROM data GROUP BY c0"

func benchQuery(b *testing.B, baseURL string) {
	b.Helper()
	resp, err := http.Post(baseURL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, benchSQL)))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

func BenchmarkSingleNodeQuery(b *testing.B) {
	ref := newWorker(b, gen.Bytes(fleetSpec), 25)
	benchQuery(b, ref.ts.URL) // warm the binary cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchQuery(b, ref.ts.URL)
	}
}

func BenchmarkDistributedQuery(b *testing.B) {
	_, fc := replicatedFleet(b, 25)
	_, coTS := newCoordinator(b, fc, testClusterConfig())
	benchQuery(b, coTS.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchQuery(b, coTS.URL)
	}
}
