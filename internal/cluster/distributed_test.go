// Distributed end-to-end tests: a coordinator over a real worker fleet
// (each worker a full scanrawd server on its own virtual disk) must be
// observably identical to one scanrawd serving the whole table — byte-for-
// byte on the /query wire — across replicated-file and split-files
// deployments, peer death, torn mid-query streams, and streamed LIMIT.
//
// The package is cluster_test (not cluster) so it can import
// internal/server without a cycle; internal/server imports cluster for
// the wire types.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scanraw/internal/cluster"
	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	"scanraw/internal/server"
	"scanraw/internal/vdisk"
)

const fleetSchema = "c0:int64,c1:int64,c2:int64,c3:int64"

var fleetSpec = gen.CSVSpec{Rows: 600, Cols: 4, Seed: 42, MaxValue: 1000}

// rowsBytes materializes rows [lo,hi) of the generated CSV — the byte
// slice a split-files worker stores locally.
func rowsBytes(s gen.CSVSpec, lo, hi int) []byte {
	var out []byte
	for r := lo; r < hi; r++ {
		out = gen.AppendRow(out, s, r)
	}
	return out
}

// workerEnv is one fleet member: a full scanrawd server over its own
// virtual disk, fronted by a loopback HTTP server.
type workerEnv struct {
	srv *server.Server
	ts  *httptest.Server
}

// addr returns the host:port form the fleet config uses.
func (w *workerEnv) addr() string { return strings.TrimPrefix(w.ts.URL, "http://") }

// metrics fetches and decodes the worker's /metrics.
func (w *workerEnv) metrics(t *testing.T) map[string]any {
	t.Helper()
	resp, err := http.Get(w.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func counter(m map[string]any, key string) int64 {
	v, _ := m[key].(float64)
	return int64(v)
}

// newWorker builds a worker serving csv as table "data" with the given
// chunk geometry.
func newWorker(t testing.TB, csv []byte, chunkLines int) *workerEnv {
	return newWorkerCfg(t, csv, 1, scanraw.Config{Workers: 2, ChunkLines: chunkLines, CacheChunks: 64})
}

// newWorkerCfg is newWorker with an explicit column-group width and
// operator config, for fleets exercising the colgroup storage layout.
func newWorkerCfg(t testing.TB, csv []byte, groupWidth int, opCfg scanraw.Config) *workerEnv {
	t.Helper()
	d := vdisk.Unlimited()
	d.Preload("raw/data.csv", csv)
	store := dbstore.NewStore(d)
	store.SetGroupWidth(groupWidth)
	table, err := store.CreateTable("data", fleetSpec.Schema(), "raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(store, server.Config{})
	if err := s.AddTable(table, opCfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &workerEnv{srv: s, ts: ts}
}

// newCoordinator validates the fleet config, starts a coordinator, and
// serves it over loopback.
func newCoordinator(t testing.TB, fc cluster.FleetConfig, cfg cluster.Config) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	fleet, err := cluster.NewFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	co := cluster.NewCoordinator(fleet, cfg)
	t.Cleanup(co.Close)
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, ts
}

// testClusterConfig keeps retries fast and disables background probing so
// tests control peer-health state explicitly.
func testClusterConfig() cluster.Config {
	return cluster.Config{
		PeerTimeout:    10 * time.Second,
		RetryBackoff:   time.Millisecond,
		HealthInterval: -1,
	}
}

// wireResponse captures the raw bytes of the columns and rows fields so
// comparisons are byte-exact, not merely semantically equal.
type wireResponse struct {
	Columns json.RawMessage `json:"columns"`
	Rows    json.RawMessage `json:"rows"`
	Stats   map[string]any  `json:"stats"`
	Error   string          `json:"error"`
}

func postWire(t *testing.T, baseURL, sql string) (int, wireResponse) {
	t.Helper()
	resp, err := http.Post(baseURL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// postNDJSON returns the status and the raw NDJSON lines of a streamed
// query.
func postNDJSON(t *testing.T, baseURL, sql string) (int, []string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/query?stream=ndjson", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
}

// diffQuery asserts the coordinator's answer is byte-identical to the
// reference single-process server's, on both the JSON and NDJSON paths.
// The stats blocks differ by design (policy, shard counts) and are only
// checked for presence.
func diffQuery(t *testing.T, coURL, refURL, sql string) {
	t.Helper()
	coSt, co := postWire(t, coURL, sql)
	refSt, ref := postWire(t, refURL, sql)
	if coSt != refSt {
		t.Fatalf("%s: status %d vs reference %d (err %q / %q)", sql, coSt, refSt, co.Error, ref.Error)
	}
	if refSt != http.StatusOK {
		return
	}
	if !bytes.Equal(co.Columns, ref.Columns) {
		t.Errorf("%s: columns diverge:\n  fleet: %s\n  ref:   %s", sql, co.Columns, ref.Columns)
	}
	if !bytes.Equal(co.Rows, ref.Rows) {
		t.Errorf("%s: rows diverge:\n  fleet: %s\n  ref:   %s", sql, co.Rows, ref.Rows)
	}
	if co.Stats == nil || ref.Stats == nil {
		t.Errorf("%s: missing stats block", sql)
	}

	coSt, coLines := postNDJSON(t, coURL, sql)
	refSt, refLines := postNDJSON(t, refURL, sql)
	if coSt != http.StatusOK || refSt != http.StatusOK {
		t.Fatalf("%s: ndjson status %d / %d", sql, coSt, refSt)
	}
	if len(coLines) != len(refLines) {
		t.Fatalf("%s: ndjson line count %d vs reference %d", sql, len(coLines), len(refLines))
	}
	last := len(coLines) - 1
	for i := 0; i < last; i++ {
		if coLines[i] != refLines[i] {
			t.Fatalf("%s: ndjson line %d diverges:\n  fleet: %s\n  ref:   %s", sql, i, coLines[i], refLines[i])
		}
	}
	if !strings.Contains(coLines[last], `"stats"`) || !strings.Contains(refLines[last], `"stats"`) {
		t.Fatalf("%s: ndjson trailer missing stats: %q / %q", sql, coLines[last], refLines[last])
	}
}

// differentialQueries is the randomized suite: every supported shape with
// seeded-random constants, so distributed and single-process execution are
// compared across SELECT/WHERE, aggregates, GROUP BY (with HAVING), and
// ORDER BY ... LIMIT.
func differentialQueries(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	c := func() int64 { return rng.Int63n(1000) }
	qs := []string{
		"SELECT c0, c1, c2, c3 FROM data",
		"SELECT SUM(c0), COUNT(*) FROM data",
		"SELECT MIN(c1), MAX(c2), AVG(c3) FROM data",
		"SELECT c0, SUM(c1), COUNT(*) FROM data GROUP BY c0",
	}
	for i := 0; i < 3; i++ {
		qs = append(qs,
			fmt.Sprintf("SELECT c0, c2 FROM data WHERE c1 > %d", c()),
			fmt.Sprintf("SELECT SUM(c0+c1) FROM data WHERE c2 < %d", c()),
			fmt.Sprintf("SELECT c1, c2 FROM data WHERE c3 > %d ORDER BY c0 LIMIT %d", c(), 1+rng.Intn(40)),
			fmt.Sprintf("SELECT c0 FROM data ORDER BY c0 DESC LIMIT %d", 1+rng.Intn(25)),
			fmt.Sprintf("SELECT c0, c1 FROM data LIMIT %d", 1+rng.Intn(50)),
			fmt.Sprintf("SELECT c3 FROM data WHERE c0 > %d LIMIT %d", c(), 1+rng.Intn(20)),
			fmt.Sprintf("SELECT c0, SUM(c1), COUNT(*) AS n FROM data WHERE c2 > %d GROUP BY c0 HAVING n > 1", c()),
		)
	}
	// Shapes with empty results: the wire must agree on those too.
	qs = append(qs,
		"SELECT c0 FROM data WHERE c0 > 100000",
		"SELECT SUM(c0) FROM data WHERE c0 > 100000",
	)
	return qs
}

// replicatedFleet serves the full CSV from every worker, sharded by chunk
// range; the last shard is open-ended.
func replicatedFleet(t testing.TB, chunkLines int) ([]*workerEnv, cluster.FleetConfig) {
	t.Helper()
	csv := gen.Bytes(fleetSpec)
	workers := []*workerEnv{
		newWorker(t, csv, chunkLines),
		newWorker(t, csv, chunkLines),
		newWorker(t, csv, chunkLines),
	}
	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: workers[0].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8}}},
			{Addr: workers[1].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 8, Hi: 16}}},
			{Addr: workers[2].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 16, Hi: 0}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	return workers, fc
}

// TestDistributedDifferentialReplicated: 3-worker replicated-file fleet vs
// one server over the same file — byte-identical on every query shape.
func TestDistributedDifferentialReplicated(t *testing.T) {
	_, fc := replicatedFleet(t, 25) // 600 rows / 25 = 24 chunks, shards of 8
	_, coTS := newCoordinator(t, fc, testClusterConfig())
	ref := newWorker(t, gen.Bytes(fleetSpec), 25)
	for _, sql := range differentialQueries(1) {
		diffQuery(t, coTS.URL, ref.ts.URL, sql)
	}
}

// TestDistributedDifferentialSplit: each worker holds only its third of
// the rows as a local file, placed into the global chunk space by base.
func TestDistributedDifferentialSplit(t *testing.T) {
	workers := []*workerEnv{
		newWorker(t, rowsBytes(fleetSpec, 0, 200), 25),   // global chunks [0,8)
		newWorker(t, rowsBytes(fleetSpec, 200, 400), 25), // global chunks [8,16)
		newWorker(t, rowsBytes(fleetSpec, 400, 600), 25), // global chunks [16,24)
	}
	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: workers[0].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8, Base: 0}}},
			{Addr: workers[1].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8, Base: 8}}},
			{Addr: workers[2].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 0, Base: 16}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	_, coTS := newCoordinator(t, fc, testClusterConfig())
	ref := newWorker(t, gen.Bytes(fleetSpec), 25)
	for _, sql := range differentialQueries(2) {
		diffQuery(t, coTS.URL, ref.ts.URL, sql)
	}
}

// TestDistributedDifferentialColGroups: a fleet whose workers store
// column-group pages (width 2) under payoff-ranked speculative loading vs
// a plain full-suite reference worker. A narrow warm-up query loads some
// groups on every worker, so the differential suite afterwards runs over
// mixed cold/partial/loaded chunks — the wire must stay byte-identical
// regardless of which groups each worker's speculation chose to write.
func TestDistributedDifferentialColGroups(t *testing.T) {
	csv := gen.Bytes(fleetSpec)
	opCfg := scanraw.Config{
		Workers: 2, ChunkLines: 25, CacheChunks: 8,
		Policy: scanraw.Speculative, Safeguard: true, CollectStats: true,
		Speculation: scanraw.SpecPayoff,
	}
	workers := []*workerEnv{
		newWorkerCfg(t, csv, 2, opCfg),
		newWorkerCfg(t, csv, 2, opCfg),
		newWorkerCfg(t, csv, 2, opCfg),
	}
	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: workers[0].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8}}},
			{Addr: workers[1].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 8, Hi: 16}}},
			{Addr: workers[2].addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 16, Hi: 0}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	_, coTS := newCoordinator(t, fc, testClusterConfig())
	ref := newWorker(t, csv, 25)

	// Warm-up: a narrow query records workload on every worker and loads
	// the {c2,c3} group (width 2) across the shards it touches.
	if status, out := postWire(t, coTS.URL, "SELECT SUM(c2) FROM data"); status != http.StatusOK {
		t.Fatalf("warm-up query: status %d (%s)", status, out.Error)
	}
	for _, sql := range differentialQueries(3) {
		diffQuery(t, coTS.URL, ref.ts.URL, sql)
	}
}

// TestDistributedReplicaFailover: the first-listed peer of a shard is
// dead; its replica must transparently serve, and the answers stay
// byte-identical.
func TestDistributedReplicaFailover(t *testing.T) {
	csv := gen.Bytes(fleetSpec)
	w0 := newWorker(t, csv, 25)
	w1 := newWorker(t, csv, 25)
	w2 := newWorker(t, csv, 25)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close() // the port now refuses connections

	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: w0.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8}}},
			// Dead primary listed first: every query to shard [8,16) must
			// fail over to the replica on w1.
			{Addr: deadAddr, Owns: []cluster.OwnConfig{{Table: "data", Lo: 8, Hi: 16}}},
			{Addr: w1.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 8, Hi: 16}}},
			{Addr: w2.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 16, Hi: 0}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	co, coTS := newCoordinator(t, fc, testClusterConfig())
	ref := newWorker(t, csv, 25)

	// One aggregate (partial mode) and one scan (rows mode) both cross the
	// dead peer.
	diffQuery(t, coTS.URL, ref.ts.URL, "SELECT SUM(c0), COUNT(*) FROM data")
	diffQuery(t, coTS.URL, ref.ts.URL, "SELECT c0, c1 FROM data WHERE c2 > 500")

	m := co.MetricsSnapshot()
	if m.PeerFailures < 1 {
		t.Errorf("cluster_peer_failures = %d, want >= 1 (dead primary hit)", m.PeerFailures)
	}
	if m.PartialResults != 0 {
		t.Errorf("partial_results_total = %d, want 0 (replica failover is a full result)", m.PartialResults)
	}
	// The first failed attempt marks the peer unhealthy; later queries must
	// route straight to the replica instead of re-probing the corpse.
	for _, p := range m.Peers {
		if p.Addr == deadAddr {
			if p.Healthy {
				t.Error("dead peer still marked healthy after a failed attempt")
			}
			if p.Requests != 1 {
				t.Errorf("dead peer attempts = %d, want 1 (unhealthy peers are deprioritized)", p.Requests)
			}
		}
	}
}

// flakyProxy fronts a worker and tears the response of the first failN
// /exec calls after cut bytes, simulating a worker killed mid-stream. The
// coordinator must retry (through the same address) and dedup rows it
// already consumed from the torn stream.
type flakyProxy struct {
	target   string
	client   *http.Client
	failLeft atomic.Int64
	cut      int64
}

func newFlakyProxy(t *testing.T, target string, failN int, cut int64) *httptest.Server {
	t.Helper()
	tr := &http.Transport{}
	p := &flakyProxy{target: target, client: &http.Client{Transport: tr}, cut: cut}
	p.failLeft.Store(int64(failN))
	ts := httptest.NewServer(p)
	t.Cleanup(func() {
		ts.Close()
		tr.CloseIdleConnections()
	})
	return ts
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.String(), r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	if r.URL.Path == "/exec" && resp.StatusCode == http.StatusOK && p.failLeft.Add(-1) >= 0 {
		_, _ = io.CopyN(w, resp.Body, p.cut)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // kill the connection mid-body
	}
	_, _ = io.Copy(w, resp.Body)
}

// TestDistributedMidStreamKill: a shard's stream dies partway through —
// both mid-first-frame (nothing usable arrived) and after several complete
// frames (the dedup-skip path) — and the query still returns the exact
// single-process answer. The worker behind the torn connection must not
// count a failure (the cancellation accounting fix).
func TestDistributedMidStreamKill(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  int64
	}{
		{"mid_first_frame", 20},
		{"after_frames", 600},
	} {
		t.Run(tc.name, func(t *testing.T) {
			csv := gen.Bytes(fleetSpec)
			w0 := newWorker(t, csv, 25)
			w1 := newWorker(t, csv, 25)
			proxy := newFlakyProxy(t, w0.ts.URL, 1, tc.cut)
			fc := cluster.FleetConfig{
				Peers: []cluster.PeerConfig{
					{Addr: strings.TrimPrefix(proxy.URL, "http://"),
						Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 16}}},
					{Addr: w1.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 16, Hi: 0}}},
				},
				Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
			}
			co, coTS := newCoordinator(t, fc, testClusterConfig())
			ref := newWorker(t, csv, 25)

			diffQuery(t, coTS.URL, ref.ts.URL, "SELECT c0, c1, c2, c3 FROM data")

			if m := co.MetricsSnapshot(); m.Retries < 1 {
				t.Errorf("cluster_retries = %d, want >= 1", m.Retries)
			}
			// Satellite: the worker saw its client vanish mid-stream; that is
			// a cancellation, never a logged failure.
			wm := w0.metrics(t)
			if got := counter(wm, "failed_total"); got != 0 {
				t.Errorf("worker failed_total = %d, want 0 after torn stream", got)
			}
		})
	}
}

// TestDistributedPartialResult: a shard with no live replica. Aggregates
// degrade to an explicit partial result over the surviving shards; rows
// mode fails loudly. Neither hangs, neither fabricates a full answer.
func TestDistributedPartialResult(t *testing.T) {
	csv := gen.Bytes(fleetSpec)
	w0 := newWorker(t, csv, 25)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()

	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: w0.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 8}}},
			{Addr: deadAddr, Owns: []cluster.OwnConfig{{Table: "data", Lo: 8, Hi: 0}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	co, coTS := newCoordinator(t, fc, testClusterConfig())

	status, out := postWire(t, coTS.URL, "SELECT SUM(c0+c1+c2+c3) FROM data")
	if status != http.StatusOK {
		t.Fatalf("aggregate over degraded fleet: status %d (%s)", status, out.Error)
	}
	if p, _ := out.Stats["partial"].(bool); !p {
		t.Fatalf("stats.partial not set on degraded result: %v", out.Stats)
	}
	if f, _ := out.Stats["shards_failed"].(float64); int(f) != 1 {
		t.Errorf("stats.shards_failed = %v, want 1", out.Stats["shards_failed"])
	}
	// The surviving shard is chunks [0,8) = rows [0,200); the partial sum
	// must be exactly that slice, not a guess.
	var rows [][]json.Number
	dec := json.NewDecoder(bytes.NewReader(out.Rows))
	dec.UseNumber()
	if err := dec.Decode(&rows); err != nil || len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("partial aggregate rows: %s (%v)", out.Rows, err)
	}
	got, _ := rows[0][0].Int64()
	want := gen.SumRange(fleetSpec, []int{0, 1, 2, 3}, 0, 200)
	if got != want {
		t.Errorf("partial sum = %d, want %d (rows [0,200))", got, want)
	}
	if co.MetricsSnapshot().PartialResults != 1 {
		t.Errorf("partial_results_total = %d, want 1", co.MetricsSnapshot().PartialResults)
	}

	// Rows mode cannot soundly skip a shard: the query must fail loudly.
	status, out = postWire(t, coTS.URL, "SELECT c0 FROM data")
	if status != http.StatusBadGateway {
		t.Fatalf("rows-mode with dead shard: status %d, want 502 (%s)", status, out.Error)
	}
	if out.Error == "" {
		t.Error("rows-mode failure carried no error message")
	}
}

// TestDistributedLimitCancelsRemote: the acceptance criterion for
// speculative termination across the network — a streamed LIMIT satisfied
// from early chunks must terminate the remote scans (worker ChunksSaved
// observable via metrics) and must never register as a worker failure.
func TestDistributedLimitCancelsRemote(t *testing.T) {
	workers, fc := replicatedFleet(t, 25)
	co, coTS := newCoordinator(t, fc, testClusterConfig())
	ref := newWorker(t, gen.Bytes(fleetSpec), 25)

	sql := "SELECT c0 FROM data LIMIT 5"
	diffQuery(t, coTS.URL, ref.ts.URL, sql)

	// The owning worker's demand layer stops its scan after the first
	// chunk (25 rows >= LIMIT 5): early termination with saved chunks.
	m0 := workers[0].metrics(t)
	if got := counter(m0, "scans_terminated_early"); got < 1 {
		t.Errorf("worker0 scans_terminated_early = %d, want >= 1", got)
	}
	if got := counter(m0, "chunks_saved_by_termination"); got <= 0 {
		t.Errorf("worker0 chunks_saved_by_termination = %d, want > 0", got)
	}
	for i, w := range workers {
		if got := counter(w.metrics(t), "failed_total"); got != 0 {
			t.Errorf("worker%d failed_total = %d, want 0 (cancellation is not failure)", i, got)
		}
	}
	cm := co.MetricsSnapshot()
	if cm.PeerRequests < 3 {
		t.Errorf("cluster_peer_requests = %d, want >= 3 (one per shard)", cm.PeerRequests)
	}
}

// TestDistributedDrainSkip: a draining worker flips its readiness; the
// health prober sees it and the coordinator routes its shard to the
// replica without a failed attempt.
func TestDistributedDrainSkip(t *testing.T) {
	csv := gen.Bytes(fleetSpec)
	w0 := newWorker(t, csv, 25)
	w1 := newWorker(t, csv, 25)
	fc := cluster.FleetConfig{
		Peers: []cluster.PeerConfig{
			{Addr: w0.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 0}}},
			{Addr: w1.addr(), Owns: []cluster.OwnConfig{{Table: "data", Lo: 0, Hi: 0}}},
		},
		Tables: map[string]cluster.TableConfig{"data": {Schema: fleetSchema}},
	}
	cfg := testClusterConfig()
	cfg.HealthInterval = 20 * time.Millisecond
	co, coTS := newCoordinator(t, fc, cfg)

	// Readiness flips synchronously at Drain entry.
	if err := w0.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(w0.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", resp.StatusCode)
	}

	// Wait for a probe cycle to observe the drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := co.MetricsSnapshot()
		if len(m.Peers) == 2 && (m.Peers[0].Draining || m.Peers[1].Draining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never observed the drain: %+v", m.Peers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, out := postWire(t, coTS.URL, "SELECT SUM(c0) FROM data")
	if status != http.StatusOK {
		t.Fatalf("query during drain: status %d (%s)", status, out.Error)
	}
	m := co.MetricsSnapshot()
	var drainedReq, liveReq int64
	for _, p := range m.Peers {
		if p.Draining {
			drainedReq = p.Requests
		} else {
			liveReq = p.Requests
		}
	}
	if drainedReq != 0 {
		t.Errorf("draining peer served %d exec requests, want 0", drainedReq)
	}
	if liveReq < 1 {
		t.Errorf("live replica served %d exec requests, want >= 1", liveReq)
	}
}

// TestCoordinatorEndpoints covers the coordinator's own identity and
// observability surface.
func TestCoordinatorEndpoints(t *testing.T) {
	_, fc := replicatedFleet(t, 25)
	_, coTS := newCoordinator(t, fc, testClusterConfig())

	resp, err := http.Get(coTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz["role"] != "coordinator" {
		t.Fatalf("coordinator /healthz: %d %v", resp.StatusCode, hz)
	}

	resp, err = http.Get(coTS.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fcOut cluster.FleetConfig
	if err := json.NewDecoder(resp.Body).Decode(&fcOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fcOut.Peers) != 3 {
		t.Fatalf("/fleet peers = %d, want 3", len(fcOut.Peers))
	}

	// Run one merge-path query, then assert the metrics counters moved.
	if status, out := postWire(t, coTS.URL, "SELECT SUM(c0) FROM data"); status != http.StatusOK {
		t.Fatalf("warmup query: %d (%s)", status, out.Error)
	}
	resp, err = http.Get(coTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mm map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&mm)
	resp.Body.Close()
	if counter(mm, "queries_total") < 1 || counter(mm, "cluster_peer_requests") < 3 {
		t.Fatalf("coordinator metrics did not advance: %v", mm)
	}
	for _, key := range []string{"cluster_peer_failures", "cluster_retries", "cluster_merge_ms", "peers", "tables", "uptime_ms"} {
		if _, ok := mm[key]; !ok {
			t.Errorf("coordinator /metrics missing %q", key)
		}
	}

	// Bad queries are rejected before any peer traffic.
	if status, _ := postWire(t, coTS.URL, "SELECT c9 FROM data"); status != http.StatusBadRequest {
		t.Errorf("unknown column: status %d, want 400", status)
	}
	if status, _ := postWire(t, coTS.URL, "SELECT c0 FROM nope"); status != http.StatusNotFound {
		t.Errorf("unknown table: status %d, want 404", status)
	}
}

// TestFleetConfigPersistence: the durable catalog round-trips the fleet
// blob with seal/verify, and reports absence cleanly.
func TestFleetConfigPersistence(t *testing.T) {
	store := dbstore.NewStore(vdisk.Unlimited())
	if _, ok, err := store.LoadFleetConfig(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v, want absent", ok, err)
	}
	blob := []byte(`{"peers":[{"addr":"w1","owns":[{"table":"data"}]}],"tables":{"data":{"schema":"c0:int64"}}}`)
	if err := store.SaveFleetConfig(blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.LoadFleetConfig()
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("round-trip: ok=%v err=%v got=%s", ok, err, got)
	}
	// Overwrite wins.
	blob2 := []byte(`{"peers":[],"tables":{}}`)
	if err := store.SaveFleetConfig(blob2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := store.LoadFleetConfig(); !bytes.Equal(got, blob2) {
		t.Fatalf("overwrite: got %s", got)
	}
}
