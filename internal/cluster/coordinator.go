package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/engine"
)

// Config parameterizes a Coordinator.
type Config struct {
	// PeerTimeout bounds one exec attempt against one peer. Default 30s.
	PeerTimeout time.Duration
	// RetryBackoff is the pause before a retry attempt (scaled by attempt
	// number). Default 50ms.
	RetryBackoff time.Duration
	// HealthInterval is the background /healthz probe period; 0 defaults
	// to 2s, negative disables probing (every peer is assumed healthy).
	HealthInterval time.Duration
	// DefaultTimeout bounds whole queries with no client timeout. Zero
	// means no limit.
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 30 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	return c
}

// peerState is the coordinator's live view of one worker.
type peerState struct {
	addr     string
	healthy  atomic.Bool
	draining atomic.Bool
	inFlight atomic.Int64
	requests atomic.Int64
	failures atomic.Int64
}

// Coordinator scatters queries over a fleet and gathers the results
// through the engine merge tree.
type Coordinator struct {
	fleet  *Fleet
	client *Client
	cfg    Config
	start  time.Time

	peers map[string]*peerState

	queries        atomic.Int64
	peerRequests   atomic.Int64
	peerFailures   atomic.Int64
	retries        atomic.Int64
	partialResults atomic.Int64
	failed         atomic.Int64
	mergeUS        atomic.Int64 // cumulative merge time, microseconds

	stopHealth chan struct{}
	healthDone chan struct{}
}

// NewCoordinator builds a coordinator over a validated fleet and starts
// the background health prober (unless disabled). Close releases it.
func NewCoordinator(fleet *Fleet, cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		fleet:      fleet,
		client:     NewClient(),
		cfg:        cfg,
		start:      time.Now(),
		peers:      make(map[string]*peerState),
		stopHealth: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	for _, addr := range fleet.PeerAddrs() {
		ps := &peerState{addr: addr}
		// Optimistic until the first probe: a fresh coordinator must not
		// shed queries while health is still unknown.
		ps.healthy.Store(true)
		co.peers[addr] = ps
	}
	if cfg.HealthInterval > 0 {
		go co.healthLoop()
	} else {
		close(co.healthDone)
	}
	return co
}

// Close stops the health prober and reaps idle peer connections.
func (co *Coordinator) Close() {
	close(co.stopHealth)
	<-co.healthDone
	co.client.Close()
}

// Fleet returns the coordinator's routing table.
func (co *Coordinator) Fleet() *Fleet { return co.fleet }

func (co *Coordinator) healthLoop() {
	defer close(co.healthDone)
	tick := time.NewTicker(co.cfg.HealthInterval)
	defer tick.Stop()
	co.probeAll()
	for {
		select {
		case <-co.stopHealth:
			return
		case <-tick.C:
			co.probeAll()
		}
	}
}

func (co *Coordinator) probeAll() {
	probeTimeout := co.cfg.HealthInterval
	if probeTimeout > time.Second {
		probeTimeout = time.Second
	}
	var wg sync.WaitGroup
	for _, ps := range co.peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			defer cancel()
			h := co.client.CheckHealth(ctx, ps.addr)
			ps.healthy.Store(h.OK)
			ps.draining.Store(h.Draining)
		}(ps)
	}
	wg.Wait()
}

// candidates orders an assignment's replicas for attempts: healthy
// non-draining peers first (config order), then draining, then dead —
// stale health must degrade placement, never make a shard unservable.
func (co *Coordinator) candidates(a *Assignment) []string {
	var ready, draining, dead []string
	for _, addr := range a.Peers {
		ps := co.peers[addr]
		switch {
		case ps == nil:
			dead = append(dead, addr)
		case ps.healthy.Load() && !ps.draining.Load():
			ready = append(ready, addr)
		case ps.draining.Load():
			draining = append(draining, addr)
		default:
			dead = append(dead, addr)
		}
	}
	out := append(ready, draining...)
	return append(out, dead...)
}

// execShard runs one assignment with per-peer timeouts, one bounded retry
// round with backoff, and replica failover. onMsg sees MsgRows/MsgPartial/
// MsgStats frames; an error returned by onMsg is local (client-side) and
// aborts without retrying. onAttempt, when non-nil, runs before every
// attempt with the attempt ordinal — the streamed-rows path uses it to arm
// its dedup skip.
func (co *Coordinator) execShard(ctx context.Context, a *Assignment, er ExecRequest, onAttempt func(attempt int), onMsg func(*Message) error) error {
	cands := co.candidates(a)
	if len(cands) == 0 {
		return fmt.Errorf("cluster: shard %v has no peers", a)
	}
	// One pass over the replicas plus one bounded retry round.
	maxAttempts := len(cands) + 1
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			co.retries.Add(1)
			select {
			case <-time.After(co.cfg.RetryBackoff * time.Duration(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		addr := cands[attempt%len(cands)]
		ps := co.peers[addr]
		if onAttempt != nil {
			onAttempt(attempt)
		}
		co.peerRequests.Add(1)
		if ps != nil {
			ps.requests.Add(1)
			ps.inFlight.Add(1)
		}
		attemptCtx, cancel := context.WithTimeout(ctx, co.cfg.PeerTimeout)
		err := co.client.Exec(attemptCtx, addr, er, onMsg)
		cancel()
		if ps != nil {
			ps.inFlight.Add(-1)
		}
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The whole query was cancelled (client gone, or the LIMIT was
			// satisfied from other shards): the torn attempt is our own
			// doing, not a peer failure.
			return ctx.Err()
		}
		var pe *PeerError
		if !errors.As(err, &pe) {
			// Local failure (onMsg) — the client side broke, not the peer.
			return err
		}
		co.peerFailures.Add(1)
		if ps != nil {
			ps.failures.Add(1)
			ps.healthy.Store(false)
		}
		if !pe.Retryable() {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// shardResult is one assignment's gathered output in partial mode.
type shardResult struct {
	partial []byte
	stats   ExecStats
	err     error
}

// GatherPartials scatters the query to every shard of the table in
// parallel and returns each shard's serialized partial in assignment
// order. Shards that stay down after retry/failover report their error in
// place; the caller decides between failing the query and serving a
// partial result.
func (co *Coordinator) GatherPartials(ctx context.Context, table, sql string, timeoutMS int64) ([]shardResult, []Assignment) {
	assigns := co.fleet.Assignments(table)
	out := make([]shardResult, len(assigns))
	var wg sync.WaitGroup
	for i := range assigns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &assigns[i]
			er := ExecRequest{SQL: sql, Lo: a.Lo, Hi: a.Hi, Base: a.Base, Mode: ModePartial, TimeoutMS: timeoutMS}
			var sr shardResult
			sr.err = co.execShard(ctx, a, er, nil, func(m *Message) error {
				switch m.Type {
				case MsgPartial:
					sr.partial = m.Partial
				case MsgStats:
					sr.stats = m.Stats
				}
				return nil
			})
			if sr.err == nil && sr.partial == nil {
				sr.err = fmt.Errorf("cluster: shard %v returned no partial", a)
			}
			out[i] = sr
		}(i)
	}
	wg.Wait()
	return out, assigns
}

// MergeShardPartials decodes the gathered partials against the
// coordinator's parsed query and folds them in assignment order. It
// returns the merged partial, the summed stats, and the errors of shards
// that contributed nothing.
func (co *Coordinator) MergeShardPartials(q *engine.Query, table string, shards []shardResult) (*engine.Partial, ExecStats, []error) {
	sch, _ := co.fleet.Schema(table)
	var parts []*engine.Partial
	var stats ExecStats
	var errs []error
	for _, sr := range shards {
		if sr.err != nil {
			errs = append(errs, sr.err)
			continue
		}
		p, err := engine.DecodePartial(q, sch, sr.partial)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		parts = append(parts, p)
		addStats(&stats, sr.stats)
	}
	if len(parts) == 0 {
		return nil, stats, errs
	}
	start := time.Now()
	merged, err := engine.MergePartials(parts)
	co.mergeUS.Add(time.Since(start).Microseconds())
	if err != nil {
		return nil, stats, append(errs, err)
	}
	return merged, stats, errs
}

func addStats(dst *ExecStats, src ExecStats) {
	dst.DeliveredCache += src.DeliveredCache
	dst.DeliveredDB += src.DeliveredDB
	dst.DeliveredRaw += src.DeliveredRaw
	dst.Skipped += src.Skipped
	dst.ChunksSaved += src.ChunksSaved
	if src.TerminatedEarly {
		dst.TerminatedEarly = true
	}
	if src.DurationMS > dst.DurationMS {
		dst.DurationMS = src.DurationMS // shards ran in parallel
	}
}

// streamItem is one unit flowing from a shard fetcher to the row emitter.
type streamItem struct {
	msg *Message
	err error
}

// StreamRows scatters a streamable query (non-aggregate, no ORDER BY) and
// invokes emit for every qualifying row in global canonical order —
// assignment order, then chunk ID, then row ordinal, exactly the
// single-process NDJSON order. limit > 0 stops after that many rows and
// cancels every in-flight peer request; the worker-side demand path has
// usually stopped the remote scans already. The per-shard stats callback
// fires as each shard completes.
//
// Shard streams run concurrently with bounded buffering: later shards
// prefetch while the current one emits, but backpressure keeps a slow
// client from buffering a whole table. A shard failing mid-stream is
// retried (replica failover included) with an arm-and-skip dedup: rows
// already handed to the emitter are skipped on the fresh attempt, which
// is sound because every attempt produces the same deterministic order.
func (co *Coordinator) StreamRows(ctx context.Context, table, sql string, timeoutMS int64, limit int, emit func(row []engine.Value) error, onStats func(ExecStats)) error {
	assigns := co.fleet.Assignments(table)
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	chans := make([]chan streamItem, len(assigns))
	for i := range assigns {
		chans[i] = make(chan streamItem, 16)
		go func(i int) {
			a := &assigns[i]
			ch := chans[i]
			defer close(ch)
			er := ExecRequest{SQL: sql, Lo: a.Lo, Hi: a.Hi, Base: a.Base, Mode: ModeRows, TimeoutMS: timeoutMS}
			// delivered counts rows pushed into the channel across
			// attempts; skip arms how many rows of a fresh attempt are
			// duplicates of an earlier, partially-consumed stream.
			delivered, skip := 0, 0
			err := co.execShard(ctx, a, er, func(attempt int) { skip = delivered }, func(m *Message) error {
				if m.Type == MsgRows {
					if skip > 0 {
						if n := len(m.Rows); n <= skip {
							skip -= n
							return nil
						}
						m.Rows = m.Rows[skip:]
						skip = 0
					}
					delivered += len(m.Rows)
				}
				select {
				case ch <- streamItem{msg: m}:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
			if err != nil && ctx.Err() == nil {
				select {
				case ch <- streamItem{err: err}:
				case <-ctx.Done():
				}
			}
		}(i)
	}

	emitted := 0
	for i := range chans {
		for item := range chans[i] {
			if item.err != nil {
				return item.err
			}
			m := item.msg
			switch m.Type {
			case MsgStats:
				if onStats != nil {
					onStats(m.Stats)
				}
			case MsgRows:
				for _, row := range m.Rows {
					if limit > 0 && emitted >= limit {
						cancelAll()
						return nil
					}
					if err := emit(row); err != nil {
						return err
					}
					emitted++
				}
				if limit > 0 && emitted >= limit {
					cancelAll()
					return nil
				}
			}
		}
	}
	return nil
}

// PeerMetrics is the per-peer slice of the coordinator's /metrics.
type PeerMetrics struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	InFlight int64  `json:"in_flight"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
}

// Metrics is the coordinator's GET /metrics payload.
type Metrics struct {
	UptimeMS       int64         `json:"uptime_ms"`
	Queries        int64         `json:"queries_total"`
	Failed         int64         `json:"failed_total"`
	PartialResults int64         `json:"partial_results_total"`
	PeerRequests   int64         `json:"cluster_peer_requests"`
	PeerFailures   int64         `json:"cluster_peer_failures"`
	Retries        int64         `json:"cluster_retries"`
	MergeMS        float64       `json:"cluster_merge_ms"`
	Peers          []PeerMetrics `json:"peers"`
	Tables         []string      `json:"tables"`
}

// MetricsSnapshot assembles the coordinator metrics report.
func (co *Coordinator) MetricsSnapshot() Metrics {
	m := Metrics{
		UptimeMS:       time.Since(co.start).Milliseconds(),
		Queries:        co.queries.Load(),
		Failed:         co.failed.Load(),
		PartialResults: co.partialResults.Load(),
		PeerRequests:   co.peerRequests.Load(),
		PeerFailures:   co.peerFailures.Load(),
		Retries:        co.retries.Load(),
		MergeMS:        float64(co.mergeUS.Load()) / 1000,
		Tables:         co.fleet.Tables(),
	}
	addrs := make([]string, 0, len(co.peers))
	for addr := range co.peers {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		ps := co.peers[addr]
		m.Peers = append(m.Peers, PeerMetrics{
			Addr:     addr,
			Healthy:  ps.healthy.Load(),
			Draining: ps.draining.Load(),
			InFlight: ps.inFlight.Load(),
			Requests: ps.requests.Load(),
			Failures: ps.failures.Load(),
		})
	}
	return m
}
