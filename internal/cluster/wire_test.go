package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

func iv(i int64) engine.Value   { return engine.Value{Typ: schema.Int64, Int: i} }
func fv(f float64) engine.Value { return engine.Value{Typ: schema.Float64, Float: f} }
func sv(s string) engine.Value  { return engine.Value{Typ: schema.Str, Str: s} }

// TestFrameRoundTrip: every message type must survive write → read with
// its payload intact, in stream order.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	rows := [][]engine.Value{
		{iv(1), fv(2.5), sv("abc")},
		{iv(-7), fv(-0.25), sv("")},
	}
	st := ExecStats{
		DeliveredCache: 3, DeliveredDB: 4, DeliveredRaw: 5, Skipped: 6,
		TerminatedEarly: true, ChunksSaved: 7, DurationMS: 1.75,
	}
	if err := fw.Rows(42, rows); err != nil {
		t.Fatal(err)
	}
	if err := fw.Rows(43, nil); err != nil {
		t.Fatal(err)
	}
	if err := fw.Partial([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Stats(st); err != nil {
		t.Fatal(err)
	}
	if err := fw.Error("boom"); err != nil {
		t.Fatal(err)
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	m, err := fr.Next()
	if err != nil || m.Type != MsgRows || m.Chunk != 42 || !reflect.DeepEqual(m.Rows, rows) {
		t.Fatalf("rows frame: %+v, %v", m, err)
	}
	if m, err = fr.Next(); err != nil || m.Type != MsgRows || m.Chunk != 43 || len(m.Rows) != 0 {
		t.Fatalf("empty rows frame: %+v, %v", m, err)
	}
	if m, err = fr.Next(); err != nil || m.Type != MsgPartial || !bytes.Equal(m.Partial, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("partial frame: %+v, %v", m, err)
	}
	if m, err = fr.Next(); err != nil || m.Type != MsgStats || m.Stats != st {
		t.Fatalf("stats frame: %+v, %v", m, err)
	}
	if m, err = fr.Next(); err != nil || m.Type != MsgError || m.Err != "boom" {
		t.Fatalf("error frame: %+v, %v", m, err)
	}
	if m, err = fr.Next(); err != nil || m.Type != MsgEnd {
		t.Fatalf("end frame: %+v, %v", m, err)
	}
	if _, err = fr.Next(); err != io.EOF {
		t.Fatalf("after end: want io.EOF, got %v", err)
	}
}

// TestFrameRejectsCorruption: torn headers, torn payloads, checksum
// mismatches, and trailing garbage inside a payload must all error.
func TestFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Rows(1, [][]engine.Value{{iv(9), sv("x")}}); err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), buf.Bytes()...)

	// Truncation at every boundary: a torn header or payload errors; only
	// the empty stream is clean EOF.
	for cut := 0; cut < len(good); cut++ {
		fr := NewFrameReader(bytes.NewReader(good[:cut]))
		_, err := fr.Next()
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: want io.EOF, got %v", err)
			}
			continue
		}
		if err == nil || err == io.EOF {
			t.Fatalf("cut %d: want torn-frame error, got %v", cut, err)
		}
	}

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[frameHeader+2] ^= 0x40
	if _, err := NewFrameReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// A frame whose payload carries trailing bytes after the message (CRC
	// valid) must be rejected by the message decoder.
	payload := []byte{wireVersion, MsgEnd, 0x00}
	var tr bytes.Buffer
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	tr.Write(hdr[:])
	tr.Write(payload)
	if _, err := NewFrameReader(&tr).Next(); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}
}

// TestDecodeMessageTotal: DecodeMessage over arbitrary prefixes of a valid
// payload must error or succeed, never panic.
func TestDecodeMessageTotal(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Rows(3, [][]engine.Value{{iv(1), fv(2), sv("abc")}, {iv(4), fv(5), sv("def")}}); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[frameHeader:]
	for cut := 0; cut <= len(payload); cut++ {
		_, _ = DecodeMessage(payload[:cut]) // must not panic
	}
}

// FuzzDecodeFrameMessage asserts payload-decode totality on arbitrary
// bytes.
func FuzzDecodeFrameMessage(f *testing.F) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	_ = fw.Rows(7, [][]engine.Value{{iv(1), sv("k")}})
	f.Add(buf.Bytes()[frameHeader:])
	var sb bytes.Buffer
	_ = NewFrameWriter(&sb).Stats(ExecStats{DeliveredRaw: 3, DurationMS: 0.5})
	f.Add(sb.Bytes()[frameHeader:])
	f.Add([]byte{wireVersion, MsgEnd})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// A valid decode must re-encode to something decodable (round-trip
		// stability), for the types the writer can produce.
		var rt bytes.Buffer
		fw := NewFrameWriter(&rt)
		switch m.Type {
		case MsgRows:
			if fw.Rows(m.Chunk, m.Rows) == nil {
				if _, err := NewFrameReader(&rt).Next(); err != nil {
					t.Fatalf("re-encoded rows failed to decode: %v", err)
				}
			}
		case MsgStats:
			_ = fw.Stats(m.Stats)
			if _, err := NewFrameReader(&rt).Next(); err != nil {
				t.Fatalf("re-encoded stats failed to decode: %v", err)
			}
		}
	})
}

// TestFleetValidation exercises the config validator's accept and reject
// paths.
func TestFleetValidation(t *testing.T) {
	tables := map[string]TableConfig{"data": {Schema: "c0:int64,c1:int64"}}
	ok := FleetConfig{
		Peers: []PeerConfig{
			{Addr: "w1:8080", Owns: []OwnConfig{{Table: "data", Lo: 0, Hi: 8}}},
			{Addr: "w2:8080", Owns: []OwnConfig{{Table: "data", Lo: 8, Hi: 16}}},
			{Addr: "w3:8080", Owns: []OwnConfig{{Table: "data", Lo: 16, Hi: 0}}},
		},
		Tables: tables,
	}
	f, err := NewFleet(ok)
	if err != nil {
		t.Fatal(err)
	}
	as := f.Assignments("data")
	if len(as) != 3 || as[0].GlobalLo() != 0 || as[1].GlobalLo() != 8 || as[2].GlobalLo() != 16 {
		t.Fatalf("assignments: %v", as)
	}
	if sch, found := f.Schema("data"); !found || sch.NumColumns() != 2 {
		t.Fatalf("schema lookup failed")
	}

	// Replicas: identical tuples on two peers group into one assignment.
	rep := ok
	rep.Peers = append([]PeerConfig(nil), ok.Peers...)
	rep.Peers = append(rep.Peers, PeerConfig{Addr: "w4:8080", Owns: []OwnConfig{{Table: "data", Lo: 8, Hi: 16}}})
	f, err = NewFleet(rep)
	if err != nil {
		t.Fatal(err)
	}
	as = f.Assignments("data")
	if len(as) != 3 || len(as[1].Peers) != 2 {
		t.Fatalf("replica grouping: %v", as)
	}

	// Split-files deployment: whole local files placed by base.
	split := FleetConfig{
		Peers: []PeerConfig{
			{Addr: "w1:8080", Owns: []OwnConfig{{Table: "data", Base: 0}}},
			{Addr: "w2:8080", Owns: []OwnConfig{{Table: "data", Base: 8}}},
		},
		Tables: tables,
	}
	if _, err := NewFleet(split); err == nil {
		t.Fatal("unbounded shard followed by another accepted (overlap undetectable)")
	}
	split.Peers[0].Owns[0].Hi = 8
	if _, err := NewFleet(split); err != nil {
		t.Fatalf("bounded split rejected: %v", err)
	}

	bad := []FleetConfig{
		{Tables: tables}, // no peers
		{Peers: []PeerConfig{{Addr: ""}}, Tables: tables},
		{Peers: []PeerConfig{{Addr: "a"}, {Addr: "a"}}, Tables: tables},
		{Peers: []PeerConfig{{Addr: "a", Owns: []OwnConfig{{Table: "nope"}}}}, Tables: tables},
		{Peers: []PeerConfig{{Addr: "a", Owns: []OwnConfig{{Table: "data", Lo: 5, Hi: 3}}}}, Tables: tables},
		{Peers: []PeerConfig{{Addr: "a", Owns: []OwnConfig{{Table: "data", Lo: -1}}}}, Tables: tables},
		{Peers: []PeerConfig{ // overlapping shards
			{Addr: "a", Owns: []OwnConfig{{Table: "data", Lo: 0, Hi: 10}}},
			{Addr: "b", Owns: []OwnConfig{{Table: "data", Lo: 5, Hi: 15}}},
		}, Tables: tables},
		{Peers: []PeerConfig{{Addr: "a", Owns: []OwnConfig{{Table: "data"}}}},
			Tables: map[string]TableConfig{"data": {Schema: "justaname"}}}, // bad schema spec
	}
	for i, cfg := range bad {
		if _, err := NewFleet(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}

	// JSON round-trip through ParseFleet.
	if _, err := ParseFleet([]byte(`{"peers":[{"addr":"w1","owns":[{"table":"data","lo":0,"hi":0}]}],"tables":{"data":{"schema":"c0:int64"}}}`)); err != nil {
		t.Fatalf("ParseFleet: %v", err)
	}
	if _, err := ParseFleet([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestPeerErrorRetryable pins the retry policy: shedding and server-side
// failures retry, deterministic rejections do not.
func TestPeerErrorRetryable(t *testing.T) {
	cases := []struct {
		status int
		want   bool
	}{
		{0, true}, {429, true}, {500, true}, {502, true},
		{400, false}, {404, false}, {499, false},
	}
	for _, c := range cases {
		pe := &PeerError{Addr: "w", Status: c.status, Err: fmt.Errorf("x")}
		if pe.Retryable() != c.want {
			t.Errorf("status %d: Retryable=%v, want %v", c.status, pe.Retryable(), c.want)
		}
	}
}
