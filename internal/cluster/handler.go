package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// HTTP serving for the coordinator. The endpoints and response shapes
// mirror internal/server so a client cannot tell a coordinator from a
// single scanrawd: POST /query returns the same {columns, rows, stats}
// JSON (or the same NDJSON framing with ?stream=ndjson), GET /metrics,
// GET /healthz, and GET /fleet expose coordinator state.

// queryRequest matches internal/server's POST /query body.
type queryRequest struct {
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms"`
}

// queryStats matches internal/server's stats block field-for-field so
// coordinated and single-process responses have the same shape. The scan
// counters aggregate over every shard; policy reports "distributed".
type queryStats struct {
	DurationMS      float64 `json:"duration_ms"`
	BatchSize       int     `json:"batch_size"`
	ScanChunksCache int     `json:"scan_chunks_cache"`
	ScanChunksDB    int     `json:"scan_chunks_db"`
	ScanChunksRaw   int     `json:"scan_chunks_raw"`
	ChunksDelivered int     `json:"chunks_delivered"`
	ChunksSkipped   int     `json:"chunks_skipped"`
	ChunksLoaded    int     `json:"chunks_loaded"`
	Policy          string  `json:"policy"`
	TerminatedEarly bool    `json:"terminated_early"`
	ChunksSaved     int     `json:"chunks_saved"`
	// Coordinator-only extras, omitted when zero so the successful-path
	// response stays shape-identical to a single scanrawd.
	Shards       int      `json:"shards,omitempty"`
	ShardsFailed int      `json:"shards_failed,omitempty"`
	Partial      bool     `json:"partial,omitempty"`
	Errors       []string `json:"errors,omitempty"`
}

func statsFromExec(st ExecStats, start time.Time, shards int) queryStats {
	return queryStats{
		DurationMS:      float64(time.Since(start).Microseconds()) / 1000,
		BatchSize:       1,
		ScanChunksCache: st.DeliveredCache,
		ScanChunksDB:    st.DeliveredDB,
		ScanChunksRaw:   st.DeliveredRaw,
		ChunksDelivered: st.DeliveredCache + st.DeliveredDB + st.DeliveredRaw,
		ChunksSkipped:   st.Skipped,
		Policy:          "distributed",
		TerminatedEarly: st.TerminatedEarly,
		ChunksSaved:     st.ChunksSaved,
		Shards:          shards,
	}
}

type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]any    `json:"rows"`
	Stats   queryStats `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// fromTable mirrors internal/server's FROM sniffing: find the table name
// so the query can be parsed against the right schema.
func fromTable(sql string) (string, error) {
	fields := strings.Fields(sql)
	for i, f := range fields {
		if strings.EqualFold(f, "FROM") && i+1 < len(fields) {
			return strings.Trim(fields[i+1], ","), nil
		}
	}
	return "", fmt.Errorf("query has no FROM clause")
}

// jsonRow converts engine values into JSON-encodable scalars (same
// mapping as internal/server).
func jsonRow(row []engine.Value) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Typ {
		case schema.Int64:
			out[i] = v.Int
		case schema.Float64:
			out[i] = v.Float
		default:
			out[i] = v.Str
		}
	}
	return out
}

// Handler returns the coordinator's HTTP mux.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", co.handleQuery)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.MetricsSnapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "coordinator"})
	})
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.fleet.Config())
	})
	return mux
}

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	co.queries.Add(1)
	var qr queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&qr); err != nil {
		co.failed.Add(1)
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if strings.TrimSpace(qr.SQL) == "" {
		co.failed.Add(1)
		writeError(w, http.StatusBadRequest, "empty sql")
		return
	}
	table, err := fromTable(qr.SQL)
	if err != nil {
		co.failed.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sch, ok := co.fleet.Schema(table)
	if !ok {
		co.failed.Add(1)
		writeError(w, http.StatusNotFound, "unknown table %q", table)
		return
	}
	if len(co.fleet.Assignments(table)) == 0 {
		co.failed.Add(1)
		writeError(w, http.StatusNotFound, "no peer owns table %q", table)
		return
	}
	q, err := engine.ParseSQL(qr.SQL, sch)
	if err != nil {
		co.failed.Add(1)
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}

	ctx := r.Context()
	timeout := co.cfg.DefaultTimeout
	if qr.TimeoutMS > 0 {
		timeout = time.Duration(qr.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	wantStream := r.URL.Query().Get("stream") == "ndjson"
	// Streamable shapes (no aggregation, no ORDER BY) scatter in rows
	// mode: workers stream incrementally and the coordinator can cancel
	// them the moment LIMIT is satisfied. Everything else scatters in
	// partial mode and merges through the engine.
	if !q.IsAggregate() && len(q.OrderBy) == 0 {
		co.streamQuery(ctx, w, table, qr, q, wantStream)
		return
	}
	co.mergeQuery(ctx, w, table, qr, q, wantStream)
}

// streamQuery serves a rows-mode scatter. NDJSON responses emit rows as
// they arrive from the fleet; JSON responses accumulate them first.
func (co *Coordinator) streamQuery(ctx context.Context, w http.ResponseWriter, table string, qr queryRequest, q *engine.Query, wantStream bool) {
	start := time.Now()
	cols := make([]string, len(q.Items))
	for i, it := range q.Items {
		cols[i] = it.Name()
	}
	var stats ExecStats
	onStats := func(st ExecStats) { addStats(&stats, st) }
	shards := len(co.fleet.Assignments(table))

	if !wantStream {
		rows := [][]any{} // "rows":[] on empty, like internal/server
		err := co.StreamRows(ctx, table, qr.SQL, qr.TimeoutMS, q.Limit, func(row []engine.Value) error {
			rows = append(rows, jsonRow(row))
			return nil
		}, onStats)
		if err != nil {
			co.writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Columns: cols, Rows: rows, Stats: statsFromExec(stats, start, shards)})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]any{"columns": cols})
	flusher, _ := w.(http.Flusher)
	n := 0
	err := co.StreamRows(ctx, table, qr.SQL, qr.TimeoutMS, q.Limit, func(row []engine.Value) error {
		_ = enc.Encode(jsonRow(row))
		n++
		if flusher != nil && n%1024 == 0 {
			flusher.Flush()
		}
		return nil
	}, onStats)
	if err != nil {
		// Headers are gone; report the failure in-band like the server's
		// NDJSON error trailer.
		co.failed.Add(1)
		_ = enc.Encode(map[string]any{"error": err.Error()})
		return
	}
	_ = enc.Encode(map[string]any{"stats": statsFromExec(stats, start, shards)})
}

// mergeQuery serves a partial-mode scatter: gather per-shard partials,
// merge through the engine, and materialize the result. Shards that stay
// down after retry and failover degrade the response to a partial result
// carrying their errors rather than failing the whole query.
func (co *Coordinator) mergeQuery(ctx context.Context, w http.ResponseWriter, table string, qr queryRequest, q *engine.Query, wantStream bool) {
	start := time.Now()
	shards, _ := co.GatherPartials(ctx, table, qr.SQL, qr.TimeoutMS)
	merged, execStats, errs := co.MergeShardPartials(q, table, shards)
	if merged == nil {
		co.writeQueryError(w, errors.Join(errs...))
		return
	}
	res, err := merged.Result()
	if err != nil {
		co.writeQueryError(w, err)
		return
	}
	st := statsFromExec(execStats, start, len(shards))
	if len(errs) > 0 {
		co.partialResults.Add(1)
		st.Partial = true
		st.ShardsFailed = len(errs)
		for _, e := range errs {
			st.Errors = append(st.Errors, e.Error())
		}
	}
	if wantStream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string]any{"columns": res.Cols})
		flusher, _ := w.(http.Flusher)
		for i, row := range res.Rows {
			_ = enc.Encode(jsonRow(row))
			if flusher != nil && i%1024 == 1023 {
				flusher.Flush()
			}
		}
		_ = enc.Encode(map[string]any{"stats": st})
		return
	}
	rows := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		rows[i] = jsonRow(row)
	}
	writeJSON(w, http.StatusOK, queryResponse{Columns: res.Cols, Rows: rows, Stats: st})
}

// writeQueryError maps a scatter failure onto a status code: client
// cancellation and timeouts mirror internal/server; anything else is a
// bad gateway because the failure happened fleet-side.
func (co *Coordinator) writeQueryError(w http.ResponseWriter, err error) {
	co.failed.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "query cancelled")
	default:
		var pe *PeerError
		if errors.As(err, &pe) && pe.Status == http.StatusBadRequest {
			// Deterministic query rejection from a worker — relay it.
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusBadGateway, "fleet execution failed: %v", err)
	}
}
