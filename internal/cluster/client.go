package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ExecRequest is the POST /exec body a coordinator sends to a worker: the
// query plus the shard to execute it over. The worker restricts its scan
// to local chunks [Lo,Hi) and reports chunk provenance shifted by Base
// into the global chunk-ID space.
type ExecRequest struct {
	SQL  string `json:"sql"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`   // 0 = to end of the worker's file
	Base int    `json:"base"` // global chunk ID of the worker's chunk 0
	// Mode selects the stream shape: "rows" (incremental MsgRows frames,
	// for streamed LIMIT queries) or "partial" (one MsgPartial frame at
	// end of scan, for everything else).
	Mode string `json:"mode"`
	// TimeoutMS bounds the worker-side execution; zero uses the worker's
	// default.
	TimeoutMS int64 `json:"timeout_ms"`
}

// Exec stream modes.
const (
	ModeRows    = "rows"
	ModePartial = "partial"
)

// PeerError is a failed peer interaction, annotated with enough context
// for the coordinator's retry policy.
type PeerError struct {
	Addr   string
	Status int // HTTP status when the request failed before streaming, else 0
	Err    error
}

func (e *PeerError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("peer %s: http %d: %v", e.Addr, e.Status, e.Err)
	}
	return fmt.Sprintf("peer %s: %v", e.Addr, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Retryable reports whether another attempt (same peer or a replica)
// could succeed: transport failures, torn streams, shedding (429), and
// server-side trouble are retryable; a query rejection (4xx other than
// 429) is deterministic and is not.
func (e *PeerError) Retryable() bool {
	switch {
	case e.Status == http.StatusTooManyRequests:
		return true
	case e.Status >= 500:
		return true
	case e.Status >= 400:
		return false
	default:
		return true // transport error or torn stream
	}
}

// Client is the coordinator's HTTP client for worker peers.
type Client struct {
	hc *http.Client
}

// NewClient builds a peer client. The per-request deadline comes from the
// caller's context, not a transport-level timeout, so a streamed LIMIT
// query can legitimately hold a connection while rows trickle. The client
// owns its transport (not http.DefaultTransport) so Close can reap idle
// peer connections.
func NewClient() *Client {
	return &Client{hc: &http.Client{Transport: &http.Transport{}}}
}

// Close reaps idle peer connections.
func (c *Client) Close() {
	if t, ok := c.hc.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// peerURL normalizes an address from the fleet config into a base URL.
func peerURL(addr, path string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + path
}

// Exec runs one shard execution against a peer, invoking onMsg for every
// frame up to (not including) MsgEnd. A stream that ends without MsgEnd,
// fails its checksum, or carries MsgError returns an error; onMsg
// returning an error aborts the stream (the body is closed, cancelling
// the worker-side scan through the connection).
func (c *Client) Exec(ctx context.Context, addr string, er ExecRequest, onMsg func(*Message) error) error {
	body, err := json.Marshal(er)
	if err != nil {
		return &PeerError{Addr: addr, Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL(addr, "/exec"), bytes.NewReader(body))
	if err != nil {
		return &PeerError{Addr: addr, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return &PeerError{Addr: addr, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		var er errorBody
		if json.Unmarshal(msg, &er) == nil && er.Error != "" {
			return &PeerError{Addr: addr, Status: resp.StatusCode, Err: fmt.Errorf("%s", er.Error)}
		}
		return &PeerError{Addr: addr, Status: resp.StatusCode, Err: fmt.Errorf("%s", strings.TrimSpace(string(msg)))}
	}
	fr := NewFrameReader(resp.Body)
	for {
		m, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				return &PeerError{Addr: addr, Err: fmt.Errorf("stream ended without MsgEnd")}
			}
			return &PeerError{Addr: addr, Err: err}
		}
		switch m.Type {
		case MsgEnd:
			return nil
		case MsgError:
			return &PeerError{Addr: addr, Err: fmt.Errorf("remote execution failed: %s", m.Err)}
		default:
			if err := onMsg(m); err != nil {
				return err
			}
		}
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// Health is the GET /healthz report of one peer.
type Health struct {
	OK       bool
	Draining bool
}

// CheckHealth probes a peer's /healthz.
func (c *Client) CheckHealth(ctx context.Context, addr string) Health {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL(addr, "/healthz"), nil)
	if err != nil {
		return Health{}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Health{}
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	switch resp.StatusCode {
	case http.StatusOK:
		return Health{OK: true}
	case http.StatusServiceUnavailable:
		return Health{Draining: true}
	default:
		return Health{}
	}
}
