package cluster

import (
	"testing"

	"scanraw/internal/testutil"
)

// TestMain fails the package when a test leaves goroutines — coordinator
// health probers, shard fetchers, worker-side scan pipelines — running
// after it returns. See internal/testutil.
func TestMain(m *testing.M) { testutil.Main(m) }
