package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"scanraw/internal/schema"
)

// Fleet configuration: a static description of the peers and which chunk
// ranges of which tables each one owns. Ownership is the routing table the
// coordinator scatters by; it is recorded alongside the durable catalog
// (dbstore.SaveFleetConfig) so a restarted coordinator serves the same
// fleet without re-reading the config file.
//
// Ownership model. A peer owns (table, [lo,hi), base): the local chunk
// range [lo,hi) of its copy of the table's raw file, placed at global
// chunk base `base`. Two deployments fall out of one representation:
//
//   - Replicated file: every peer stages the full raw file; ownership
//     ranges carve it up (base 0, disjoint [lo,hi)). Local chunk IDs are
//     already global.
//   - Split files: every peer stages only its slice of the data (its own
//     smaller file); lo=0, hi=0 (whole file) and base places the slice in
//     the global chunk-ID space. Chunk geometry must align with the split
//     (the split is at a chunk-line multiple).
//
// Peers listing an identical (table, lo, hi, base) tuple are replicas of
// that shard: the coordinator uses the first healthy one and fails over
// to the rest.

// FleetConfig is the JSON fleet description.
type FleetConfig struct {
	Peers  []PeerConfig           `json:"peers"`
	Tables map[string]TableConfig `json:"tables"`
}

// PeerConfig is one worker: its base URL (scheme optional, http assumed)
// and the shard ranges it owns.
type PeerConfig struct {
	Addr string      `json:"addr"`
	Owns []OwnConfig `json:"owns"`
}

// OwnConfig is one owned shard of one table.
type OwnConfig struct {
	Table string `json:"table"`
	// Lo/Hi bound the peer's local chunk range, half-open; Hi 0 means "to
	// end of the peer's file".
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Base is the global chunk ID of the peer's local chunk 0.
	Base int `json:"base"`
}

// TableConfig carries what the coordinator needs to parse queries against
// a table it does not store: the schema specification ("name:type,...").
type TableConfig struct {
	Schema string `json:"schema"`
}

// Assignment is one shard the coordinator scatters to: a global chunk
// range of a table and the peers holding it (replicas beyond the first).
type Assignment struct {
	Table string
	Lo    int // local range within each replica's file
	Hi    int
	Base  int      // global chunk ID of local chunk 0
	Peers []string // replica peer addresses, config order
}

// GlobalLo returns the assignment's first global chunk ID.
func (a *Assignment) GlobalLo() int { return a.Base + a.Lo }

// GlobalHi returns the assignment's global upper bound, or 0 when the
// shard extends to the end of the peer's file.
func (a *Assignment) GlobalHi() int {
	if a.Hi <= 0 {
		return 0
	}
	return a.Base + a.Hi
}

func (a *Assignment) String() string {
	hi := "∞"
	if h := a.GlobalHi(); h > 0 {
		hi = fmt.Sprint(h)
	}
	return fmt.Sprintf("%s[%d,%s)", a.Table, a.GlobalLo(), hi)
}

// Fleet is a validated fleet configuration with its routing index.
type Fleet struct {
	cfg     FleetConfig
	schemas map[string]*schema.Schema
	assigns map[string][]Assignment // table -> shards sorted by GlobalLo
}

// ParseFleet decodes and validates a fleet configuration.
func ParseFleet(data []byte) (*Fleet, error) {
	var cfg FleetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cluster: malformed fleet config: %v", err)
	}
	return NewFleet(cfg)
}

// NewFleet validates a fleet configuration: peers must be named and
// unique, schemas must parse, every owned shard must reference a declared
// table, and bounded shards of a table must not overlap in global chunk
// space (an overlap would double-count rows).
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: fleet has no peers")
	}
	f := &Fleet{
		cfg:     cfg,
		schemas: make(map[string]*schema.Schema),
		assigns: make(map[string][]Assignment),
	}
	for name, tc := range cfg.Tables {
		sch, err := parseSchemaSpec(tc.Schema)
		if err != nil {
			return nil, fmt.Errorf("cluster: table %q: %v", name, err)
		}
		f.schemas[name] = sch
	}
	seen := make(map[string]bool)
	type shardKey struct {
		table        string
		lo, hi, base int
	}
	shards := make(map[shardKey]*Assignment)
	var order []shardKey
	for _, p := range cfg.Peers {
		if p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer with empty addr")
		}
		if seen[p.Addr] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p.Addr)
		}
		seen[p.Addr] = true
		for _, o := range p.Owns {
			if _, ok := f.schemas[o.Table]; !ok {
				return nil, fmt.Errorf("cluster: peer %q owns undeclared table %q", p.Addr, o.Table)
			}
			if o.Lo < 0 || o.Base < 0 {
				return nil, fmt.Errorf("cluster: peer %q: negative bound in %s[%d,%d)+%d", p.Addr, o.Table, o.Lo, o.Hi, o.Base)
			}
			if o.Hi != 0 && o.Hi <= o.Lo {
				return nil, fmt.Errorf("cluster: peer %q: empty range %s[%d,%d)", p.Addr, o.Table, o.Lo, o.Hi)
			}
			k := shardKey{o.Table, o.Lo, o.Hi, o.Base}
			if a, ok := shards[k]; ok {
				a.Peers = append(a.Peers, p.Addr) // replica
				continue
			}
			shards[k] = &Assignment{Table: o.Table, Lo: o.Lo, Hi: o.Hi, Base: o.Base, Peers: []string{p.Addr}}
			order = append(order, k)
		}
	}
	for _, k := range order {
		a := shards[k]
		f.assigns[a.Table] = append(f.assigns[a.Table], *a)
	}
	for table, as := range f.assigns {
		sort.Slice(as, func(i, j int) bool { return as[i].GlobalLo() < as[j].GlobalLo() })
		// Overlap validation between bounded global ranges; an unbounded
		// shard (Hi 0) overlaps anything starting after it only if that
		// thing exists — flag it.
		for i := 1; i < len(as); i++ {
			prev, cur := as[i-1], as[i]
			if prev.GlobalHi() == 0 || cur.GlobalLo() < prev.GlobalHi() {
				return nil, fmt.Errorf("cluster: table %q: shards %v and %v overlap", table, prev.String(), cur.String())
			}
		}
		f.assigns[table] = as
	}
	return f, nil
}

// Config returns the underlying configuration (for persistence).
func (f *Fleet) Config() FleetConfig { return f.cfg }

// Schema returns the parsed schema of a declared table.
func (f *Fleet) Schema(table string) (*schema.Schema, bool) {
	sch, ok := f.schemas[table]
	return sch, ok
}

// Assignments returns the table's shards in global chunk order, or nil
// when no peer owns the table.
func (f *Fleet) Assignments(table string) []Assignment {
	return f.assigns[table]
}

// PeerAddrs returns every peer address in config order.
func (f *Fleet) PeerAddrs() []string {
	addrs := make([]string, len(f.cfg.Peers))
	for i, p := range f.cfg.Peers {
		addrs[i] = p.Addr
	}
	return addrs
}

// Tables returns the declared table names, sorted.
func (f *Fleet) Tables() []string {
	names := make([]string, 0, len(f.schemas))
	for name := range f.schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// parseSchemaSpec parses a "name:type,name:type" specification, the same
// format scanrawd's -table flag and the manifest's table records use.
func parseSchemaSpec(spec string) (*schema.Schema, error) {
	parts := strings.Split(spec, ",")
	cols := make([]schema.Column, 0, len(parts))
	for _, p := range parts {
		nt := strings.SplitN(strings.TrimSpace(p), ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad column spec %q (want name:type)", p)
		}
		typ, err := schema.ParseType(nt[1])
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: strings.TrimSpace(nt[0]), Type: typ})
	}
	return schema.New(cols...)
}
