// Package cluster implements distributed scatter-gather serving: a
// coordinator fans a query out to the scanrawd peers owning shards of a
// table, each peer executes over its assigned chunk range (the worker-side
// /exec endpoint lives in internal/server), and the returned partials fold
// through the ordinary engine merge tree. PR 2 made every operator state
// mergeable with bit-identical-to-serial semantics; this package is the
// network boundary that cashes that property in — the merge tree does not
// care whether partials arrive from goroutines or from sockets.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// Exec stream framing. A worker's /exec response body is a sequence of
// frames, each
//
//	uint32 LE  payload length
//	uint32 LE  CRC32-C of the payload
//	payload
//
// mirroring the store's manifest-record framing: the checksum localizes
// damage, so a torn TCP stream or a proxy truncation invalidates itself
// instead of smuggling a half-written row batch into the merge. Every
// payload starts with a version byte and a message type.

// Message types inside a frame payload.
const (
	// MsgRows carries one chunk's qualifying rows (streamed-LIMIT mode):
	// the coordinator forwards them to the client in global range order.
	MsgRows = 1
	// MsgPartial carries a serialized engine.Partial (aggregate / ORDER BY
	// mode): the whole shard folded into one mergeable state.
	MsgPartial = 2
	// MsgStats carries the shard scan's accounting, folded into the
	// coordinator's per-query stats.
	MsgStats = 3
	// MsgError aborts the stream: the worker failed mid-execution, after
	// the HTTP status was already committed.
	MsgError = 4
	// MsgEnd terminates a successful stream. A stream that ends without it
	// was cut off and must be treated as failed.
	MsgEnd = 5
)

// wireVersion versions the frame payloads.
const wireVersion = 1

const (
	frameHeader     = 8
	maxFramePayload = 1 << 26 // one chunk's rows or one shard's partial
	maxFrameRows    = 1 << 22
	maxFrameCols    = 1 << 14
	maxFrameStrLen  = 1 << 18
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ExecStats is the shard-scan accounting a worker reports at end of
// stream. The field set mirrors the slice of scanraw.RunStats the
// coordinator folds into client-visible stats (cluster sits below scanraw
// in no dependency relationship — the struct is redeclared to keep the
// wire format self-contained).
type ExecStats struct {
	DeliveredCache  int
	DeliveredDB     int
	DeliveredRaw    int
	Skipped         int
	TerminatedEarly bool
	ChunksSaved     int
	DurationMS      float64
}

// encoder/decoder: varint scalars, length-prefixed strings, first-error
// accumulation — the store's manifest-record idiom.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) uvar(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) ivar(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.uvar(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) boolean(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("cluster: frame truncated")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("cluster: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) ivar() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("cluster: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("cluster: frame truncated in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.uvar()
	if d.err != nil {
		return ""
	}
	if n > maxFrameStrLen {
		d.fail("cluster: string length %d exceeds limit", n)
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.fail("cluster: frame truncated in string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) count(limit uint64, what string) int {
	v := d.uvar()
	if d.err != nil {
		return 0
	}
	if v > limit {
		d.fail("cluster: %s %d exceeds limit %d", what, v, limit)
		// Return 0, not the oversized value: callers size allocations by
		// this count, and the count must never outlive the failure.
		return 0
	}
	return int(v)
}

// Value tags, matching the engine's partial codec.
const (
	valInt   = 0
	valFloat = 1
	valStr   = 2
)

func (e *encoder) value(v engine.Value) error {
	switch v.Typ {
	case schema.Int64:
		e.u8(valInt)
		e.ivar(v.Int)
	case schema.Float64:
		e.u8(valFloat)
		e.f64(v.Float)
	case schema.Str:
		e.u8(valStr)
		e.str(v.Str)
	default:
		return fmt.Errorf("cluster: cannot encode value of type %v", v.Typ)
	}
	return nil
}

func (d *decoder) value() engine.Value {
	switch tag := d.u8(); tag {
	case valInt:
		return engine.Value{Typ: schema.Int64, Int: d.ivar()}
	case valFloat:
		return engine.Value{Typ: schema.Float64, Float: d.f64()}
	case valStr:
		return engine.Value{Typ: schema.Str, Str: d.str()}
	default:
		d.fail("cluster: unknown value tag %d", tag)
		return engine.Value{}
	}
}

// Message is one decoded frame of an exec stream. Exactly the fields for
// Type are populated.
type Message struct {
	Type byte

	// MsgRows
	Chunk int // global chunk ID
	Rows  [][]engine.Value

	// MsgPartial: the serialized engine.Partial, decoded one layer up
	// against the coordinator's parsed query.
	Partial []byte

	// MsgStats
	Stats ExecStats

	// MsgError
	Err string
}

// FrameWriter emits framed exec-stream messages. It is not safe for
// concurrent use; the worker's delivery path serializes emission.
type FrameWriter struct {
	w       io.Writer
	scratch []byte
}

// NewFrameWriter wraps w. The caller flushes any buffering w carries.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

func (fw *FrameWriter) writeFrame(payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// Rows emits one chunk's qualifying rows under its global chunk ID.
func (fw *FrameWriter) Rows(globalChunk int, rows [][]engine.Value) error {
	e := &encoder{buf: fw.scratch[:0]}
	e.u8(wireVersion)
	e.u8(MsgRows)
	e.uvar(uint64(globalChunk))
	e.uvar(uint64(len(rows)))
	for _, row := range rows {
		e.uvar(uint64(len(row)))
		for _, v := range row {
			if err := e.value(v); err != nil {
				return err
			}
		}
	}
	fw.scratch = e.buf
	return fw.writeFrame(e.buf)
}

// Partial emits a serialized engine.Partial.
func (fw *FrameWriter) Partial(data []byte) error {
	e := &encoder{buf: fw.scratch[:0]}
	e.u8(wireVersion)
	e.u8(MsgPartial)
	e.buf = append(e.buf, data...)
	fw.scratch = e.buf
	return fw.writeFrame(e.buf)
}

// Stats emits the shard scan's accounting.
func (fw *FrameWriter) Stats(st ExecStats) error {
	e := &encoder{buf: fw.scratch[:0]}
	e.u8(wireVersion)
	e.u8(MsgStats)
	e.uvar(uint64(st.DeliveredCache))
	e.uvar(uint64(st.DeliveredDB))
	e.uvar(uint64(st.DeliveredRaw))
	e.uvar(uint64(st.Skipped))
	e.boolean(st.TerminatedEarly)
	e.uvar(uint64(st.ChunksSaved))
	e.f64(st.DurationMS)
	fw.scratch = e.buf
	return fw.writeFrame(e.buf)
}

// Error aborts the stream with an in-band error.
func (fw *FrameWriter) Error(msg string) error {
	e := &encoder{buf: fw.scratch[:0]}
	e.u8(wireVersion)
	e.u8(MsgError)
	e.str(msg)
	fw.scratch = e.buf
	return fw.writeFrame(e.buf)
}

// End terminates a successful stream.
func (fw *FrameWriter) End() error {
	return fw.writeFrame([]byte{wireVersion, MsgEnd})
}

// FrameReader decodes an exec stream message by message.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads one frame. io.EOF before a complete header means the stream
// ended (the caller decides whether MsgEnd was seen); any torn frame,
// checksum mismatch, or malformed payload is an error.
func (fr *FrameReader) Next() (*Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("cluster: torn frame header")
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return nil, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("cluster: torn frame payload: %v", err)
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("cluster: frame checksum mismatch")
	}
	return DecodeMessage(payload)
}

// DecodeMessage parses one frame payload. It is total: any byte slice
// yields a message or an error, never a panic, and trailing bytes beyond
// the message are rejected.
func DecodeMessage(payload []byte) (*Message, error) {
	d := &decoder{buf: payload}
	if v := d.u8(); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("cluster: unsupported frame version %d", v)
	}
	m := &Message{Type: d.u8()}
	switch m.Type {
	case MsgRows:
		m.Chunk = d.count(1<<30, "chunk id")
		nrows := d.count(maxFrameRows, "row count")
		for i := 0; i < nrows && d.err == nil; i++ {
			ncols := d.count(maxFrameCols, "column count")
			if d.err != nil {
				break
			}
			row := make([]engine.Value, ncols)
			for c := 0; c < ncols && d.err == nil; c++ {
				row[c] = d.value()
			}
			m.Rows = append(m.Rows, row)
		}
	case MsgPartial:
		// The partial body is opaque here; engine.DecodePartial validates
		// it against the query one layer up.
		m.Partial = append([]byte(nil), payload[d.off:]...)
		d.off = len(payload)
	case MsgStats:
		m.Stats.DeliveredCache = d.count(1<<30, "delivered cache")
		m.Stats.DeliveredDB = d.count(1<<30, "delivered db")
		m.Stats.DeliveredRaw = d.count(1<<30, "delivered raw")
		m.Stats.Skipped = d.count(1<<30, "skipped")
		m.Stats.TerminatedEarly = d.u8() != 0
		m.Stats.ChunksSaved = d.count(1<<30, "chunks saved")
		m.Stats.DurationMS = d.f64()
	case MsgError:
		m.Err = d.str()
	case MsgEnd:
	default:
		if d.err == nil {
			return nil, fmt.Errorf("cluster: unknown message type %d", m.Type)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after message", len(payload)-d.off)
	}
	return m, nil
}
