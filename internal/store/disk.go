// Package store is the durable storage subsystem: the Disk abstraction both
// the simulated disk (internal/vdisk) and the crash-safe file-backed disk
// implement, the append-only manifest log that makes catalog state survive
// process death, and the raw-file fingerprinting that detects a source file
// changing underneath persisted chunks.
//
// The paper's payoff is that speculative loading amortizes conversion cost
// across a *sequence* of queries; that amortization only survives a restart
// if the loaded chunks and the catalog's bookkeeping are durable. The
// subsystem follows the classic write-ahead discipline:
//
//   - Page blobs (the column pages dbstore writes) land via temp file +
//     fsync + atomic rename, so a crash never leaves a half-written page
//     under a valid name. Pages carry the Castagnoli CRC framing dbstore
//     already seals them with; recovery verifies it.
//   - Catalog mutations (chunk discovery, statistics, per-column loaded
//     bits, completion) append CRC-framed records to a manifest log that is
//     fsynced before the mutation is considered durable, and are compacted
//     into an atomically-replaced checkpoint snapshot periodically.
//   - Recovery replays checkpoint + log, truncates a torn log tail at the
//     first damaged record, and rebuilds the catalog; damaged or missing
//     page blobs invalidate their chunk, which simply re-converts from raw.
package store

import (
	"scanraw/internal/vdisk"
)

// Disk is the storage device abstraction the database runs on. The
// simulated disk (*vdisk.Disk, with its deterministic bandwidth model) and
// the durable file-backed disk (*FileDisk) both implement it; the
// bandwidth-throttling layer is a wrapper (vdisk.NewBacked) so a durable
// disk can still carry the experiments' deterministic performance model.
//
// Blob semantics, shared by all implementations:
//
//   - ReadAt returns a short read with a nil error at end of blob (there is
//     no io.EOF convention; short read IS the end-of-blob signal).
//   - Preload installs a blob without throttling or transfer accounting —
//     experiment and staging setup must not consume the bandwidth budget
//     being measured.
//   - WriteBlob replaces a blob's contents atomically: a reader never
//     observes a half-replaced blob, and on the durable implementation a
//     crash leaves either the old or the new contents.
type Disk interface {
	// Create creates an empty blob, truncating any existing one.
	Create(name string)
	// Delete removes a blob; deleting a missing blob is a no-op.
	Delete(name string)
	// Exists reports whether the named blob exists.
	Exists(name string) bool
	// Size returns the length of the named blob.
	Size(name string) (int64, error)
	// List returns the names of all blobs with the given prefix, sorted.
	List(prefix string) []string
	// Preload installs a blob without throttling or accounting.
	Preload(name string, p []byte)
	// WriteBlob atomically replaces the named blob's contents.
	WriteBlob(name string, p []byte) error
	// Append appends p to the named blob (creating it if needed) and
	// returns the offset at which the data landed.
	Append(name string, p []byte) (int64, error)
	// ReadAt reads len(p) bytes from the blob starting at off; fewer bytes
	// with a nil error means the blob ended.
	ReadAt(name string, p []byte, off int64) (int, error)
	// ReadBlob reads the entire named blob.
	ReadBlob(name string) ([]byte, error)
	// Stats returns cumulative transfer statistics.
	Stats() vdisk.Stats
}

// The simulated disk is a Disk.
var _ Disk = (*vdisk.Disk)(nil)
