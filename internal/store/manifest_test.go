package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Type: RecTableCreate, Table: "t", RawFile: "raw/t", Schema: "c0:BIGINT,c1:BIGINT",
			Fingerprint: Fingerprint{Size: 123, CRC: 0xdeadbeef, ModTimeNs: 42}},
		{Type: RecChunk, Table: "t", Chunk: 0, Rows: 64, RawOff: 0, RawLen: 512},
		{Type: RecStats, Table: "t", Chunk: 0, Col: 1, Stats: ColStatsRec{
			Valid: true, Type: 0, MinInt: -3, MaxInt: 900, MinStr: "a", MaxStr: "z", Rows: 64, Distinct: 17}},
		{Type: RecLoaded, Table: "t", Chunk: 0, Cols: []int{0, 1}},
		{Type: RecComplete, Table: "t"},
	}
}

func openTestManifest(t *testing.T, dir string) *Manifest {
	t.Helper()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestManifestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := openTestManifest(t, dir)
	got, rep, err := m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("replay = %+v, want %+v", got, recs)
	}
	if rep.LogRecords != len(recs) || rep.TornBytes != 0 || rep.CheckpointRecords != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestManifestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if n := m.AppendsSinceCheckpoint(); n != int64(len(recs)) {
		t.Errorf("AppendsSinceCheckpoint = %d, want %d", n, len(recs))
	}
	if err := m.Checkpoint(recs); err != nil {
		t.Fatal(err)
	}
	if n := m.AppendsSinceCheckpoint(); n != 0 {
		t.Errorf("AppendsSinceCheckpoint after checkpoint = %d", n)
	}
	extra := Record{Type: RecChunk, Table: "t", Chunk: 1, Rows: 64, RawOff: 512, RawLen: 512}
	if err := m.Append(extra); err != nil {
		t.Fatal(err)
	}
	got, rep, err := m.Replay()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), recs...), extra)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay = %+v, want %+v", got, want)
	}
	if rep.CheckpointRecords != len(recs) || rep.LogRecords != 1 {
		t.Errorf("report = %+v", rep)
	}
}

// TestManifestTornTail cuts the log mid-record — the shape a crash during
// an append leaves — and verifies recovery keeps exactly the undamaged
// prefix and physically truncates the rest so later appends are clean.
func TestManifestTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, int64(len(raw)-3)); err != nil {
		t.Fatal(err)
	}

	m2 := openTestManifest(t, dir)
	got, rep, err := m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	want := recs[:len(recs)-1]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay after torn tail = %+v, want %+v", got, want)
	}
	if rep.TornBytes == 0 {
		t.Error("TornBytes = 0, want > 0")
	}
	// The damaged suffix is gone from disk; appending and replaying again
	// yields prefix + new record with a clean report.
	extra := Record{Type: RecComplete, Table: "t2"}
	if err := m2.Append(extra); err != nil {
		t.Fatal(err)
	}
	got, rep, err = m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, append(append([]Record(nil), want...), extra)) {
		t.Errorf("replay after repair = %+v", got)
	}
	if rep.TornBytes != 0 {
		t.Errorf("second replay still torn: %+v", rep)
	}
}

// TestManifestBitFlip corrupts one byte inside the last record's payload
// and verifies only the damaged suffix is dropped — never a panic, never a
// record before the flip.
func TestManifestBitFlip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	if err := os.WriteFile(logPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openTestManifest(t, dir)
	got, rep, err := m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)-1 || !reflect.DeepEqual(got, recs[:len(recs)-1]) {
		t.Errorf("replay after bit flip kept %d records, want %d", len(got), len(recs)-1)
	}
	if rep.TornBytes == 0 {
		t.Error("TornBytes = 0, want > 0")
	}
}

// TestManifestBitFlipEveryOffset flips each byte position in turn and
// checks the invariant that matters: replay never panics, never errors, and
// always returns a prefix of the original records.
func TestManifestBitFlipEveryOffset(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFileName)
	orig, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off++ {
		flipped := append([]byte(nil), orig...)
		flipped[off] ^= 0xA5
		if err := os.WriteFile(logPath, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		m2, err := OpenManifest(dir)
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		got, _, err := m2.Replay()
		if err != nil {
			t.Fatalf("offset %d: replay: %v", off, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("offset %d: %d records from %d", off, len(got), len(recs))
		}
		if len(got) > 0 && !reflect.DeepEqual(got, recs[:len(got)]) {
			t.Fatalf("offset %d: replay is not a prefix", off)
		}
		m2.Close()
		// Restore for the next offset.
		if err := os.WriteFile(logPath, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManifestDamagedHeader destroys the log magic: nothing after it can be
// trusted, so recovery resets to an empty log (checkpoint records, if any,
// still replay).
func TestManifestDamagedHeader(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Checkpoint(recs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(recs[2:]...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := openTestManifest(t, dir)
	got, rep, err := m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:2]) {
		t.Errorf("replay = %+v, want checkpoint records only", got)
	}
	if rep.TornBytes != int64(len(raw)) {
		t.Errorf("TornBytes = %d, want %d", rep.TornBytes, len(raw))
	}
	// The log was reset with a fresh header: appends work again.
	if err := m2.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	got, _, err = m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:3]) {
		t.Errorf("replay after reset = %+v", got)
	}
}

// TestManifestCrashBetweenCheckpointSteps models the crash window after the
// checkpoint file is installed but before the log truncates: replay sees
// every record twice, which must be harmless because records are upserts.
func TestManifestCrashBetweenCheckpointSteps(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	m := openTestManifest(t, dir)
	if err := m.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Install the checkpoint by hand, leaving the log untruncated.
	var buf []byte
	buf = append(buf, ckptMagic...)
	for _, r := range recs {
		buf = appendFrame(buf, EncodeRecord(r))
	}
	if err := os.WriteFile(filepath.Join(dir, ckptFileName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := openTestManifest(t, dir)
	got, rep, err := m2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), recs...), recs...)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay = %d records, want duplicated %d", len(got), len(want))
	}
	if rep.CheckpointRecords != len(recs) || rep.LogRecords != len(recs) {
		t.Errorf("report = %+v", rep)
	}
}

func TestManifestClosedErrors(t *testing.T) {
	m := openTestManifest(t, t.TempDir())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(testRecords()[0]); err == nil {
		t.Error("Append on closed manifest should fail")
	}
	if _, _, err := m.Replay(); err == nil {
		t.Error("Replay on closed manifest should fail")
	}
	if err := m.Checkpoint(nil); err == nil {
		t.Error("Checkpoint on closed manifest should fail")
	}
}
