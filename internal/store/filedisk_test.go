package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"scanraw/internal/vdisk"
)

func TestFileDiskBlobRoundTrip(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if d.Exists("a/b") {
		t.Error("blob exists before write")
	}
	if err := d.WriteBlob("a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !d.Exists("a/b") {
		t.Error("blob missing after write")
	}
	sz, err := d.Size("a/b")
	if err != nil || sz != 5 {
		t.Errorf("Size = %d, %v; want 5, nil", sz, err)
	}
	p, err := d.ReadBlob("a/b")
	if err != nil || string(p) != "hello" {
		t.Errorf("ReadBlob = %q, %v", p, err)
	}
	// Overwrite is atomic replacement, not append.
	if err := d.WriteBlob("a/b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if p, _ := d.ReadBlob("a/b"); string(p) != "x" {
		t.Errorf("after overwrite: %q", p)
	}
	d.Delete("a/b")
	if d.Exists("a/b") {
		t.Error("blob exists after delete")
	}
	if _, err := d.ReadBlob("a/b"); err == nil {
		t.Error("reading deleted blob should fail")
	}
}

func TestFileDiskReadAtShortRead(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlob("b", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	// Read past the end: short read with nil error is the end-of-blob
	// signal, matching the vdisk contract.
	n, err := d.ReadAt("b", buf, 7)
	if err != nil || n != 3 || string(buf[:n]) != "789" {
		t.Errorf("ReadAt(7) = %d, %v, %q", n, err, buf[:n])
	}
	if n, err := d.ReadAt("b", buf, 20); err != nil || n != 0 {
		t.Errorf("ReadAt past end = %d, %v; want 0, nil", n, err)
	}
	if _, err := d.ReadAt("b", buf, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestFileDiskAppend(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	off, err := d.Append("log", []byte("aaa"))
	if err != nil || off != 0 {
		t.Fatalf("first append = %d, %v", off, err)
	}
	off, err = d.Append("log", []byte("bb"))
	if err != nil || off != 3 {
		t.Fatalf("second append = %d, %v", off, err)
	}
	if p, _ := d.ReadBlob("log"); string(p) != "aaabb" {
		t.Errorf("log = %q", p)
	}
}

func TestFileDiskList(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"db/t/0", "db/t/1", "db/u/0", "raw/x"} {
		if err := d.WriteBlob(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	got := d.List("db/t/")
	want := []string{"db/t/0", "db/t/1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("List(db/t/) = %v, want %v", got, want)
	}
	if got := d.List(""); len(got) != 4 {
		t.Errorf("List(\"\") = %v, want 4 names", got)
	}
}

func TestFileDiskRejectsBadNames(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".", "..", "../x", "a/../b", "a//b", ".tmp-x", "a/.tmp-b"} {
		if err := d.WriteBlob(name, []byte("x")); err == nil {
			t.Errorf("WriteBlob(%q) should fail", name)
		}
		if _, err := d.ReadBlob(name); err == nil {
			t.Errorf("ReadBlob(%q) should fail", name)
		}
	}
}

func TestFileDiskLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.WriteBlob("db/t/page", []byte(strings.Repeat("x", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	err = filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err == nil && strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			t.Errorf("temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stray temp file (crash mid-write) must be invisible to List.
	if err := os.WriteFile(filepath.Join(dir, "db", "t", tmpPrefix+"junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range d.List("") {
		if strings.Contains(name, tmpPrefix) {
			t.Errorf("List exposes temp file %q", name)
		}
	}
}

// TestFileDiskAsThrottledBackend exercises the layering the daemon uses for
// a throttled durable disk: vdisk bandwidth model over file-backed blobs.
func TestFileDiskAsThrottledBackend(t *testing.T) {
	fd, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := vdisk.NewBacked(vdisk.Config{}, fd)
	if err := d.WriteBlob("a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p, err := d.ReadBlob("a")
	if err != nil || string(p) != "payload" {
		t.Fatalf("ReadBlob via wrapper = %q, %v", p, err)
	}
	// The file really landed on disk, not in a memory map.
	if q, err := fd.ReadBlob("a"); err != nil || string(q) != "payload" {
		t.Fatalf("ReadBlob via backend = %q, %v", q, err)
	}
	st := d.Stats()
	if st.WriteOps != 1 || st.ReadOps < 1 {
		t.Errorf("wrapper stats not counted: %+v", st)
	}
}

func TestFileDiskStats(t *testing.T) {
	d, err := OpenFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlob("s", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlob("s"); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.WriteOps != 1 || st.WriteBytes != 8 || st.ReadOps != 1 || st.ReadBytes != 8 {
		t.Errorf("stats = %+v", st)
	}
}
