package store

import (
	"math"
	"reflect"
	"testing"
)

// recordsBitEqual compares records with bitwise float equality (NaN
// statistics bounds round-trip exactly; reflect.DeepEqual calls NaN != NaN).
func recordsBitEqual(a, b Record) bool {
	if math.Float64bits(a.Stats.MinFloat) != math.Float64bits(b.Stats.MinFloat) ||
		math.Float64bits(a.Stats.MaxFloat) != math.Float64bits(b.Stats.MaxFloat) {
		return false
	}
	a.Stats.MinFloat, a.Stats.MaxFloat = 0, 0
	b.Stats.MinFloat, b.Stats.MaxFloat = 0, 0
	return reflect.DeepEqual(a, b)
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range testRecords() {
		got, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatalf("%v: %v", r.Type, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", r.Type, got, r)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"unknown type":  {99},
		"truncated":     EncodeRecord(testRecords()[1])[:3],
		"trailing junk": append(EncodeRecord(testRecords()[4]), 0xFF),
	}
	for name, p := range cases {
		if _, err := DecodeRecord(p); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

// FuzzDecodeRecord feeds arbitrary bytes to the manifest record decoder.
// The contract mirrors chunk.FuzzDecodeVector: decoding is total (error or
// valid record, never a panic), and any payload that decodes must re-encode
// and decode to the same record — the property manifest replay relies on.
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range testRecords() {
		f.Add(EncodeRecord(r))
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0})
	f.Add([]byte{4, 1, 't', 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	f.Fuzz(func(t *testing.T, p []byte) {
		r, err := DecodeRecord(p)
		if err != nil {
			return
		}
		again, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !recordsBitEqual(again, r) {
			t.Fatalf("decode∘encode not idempotent:\n got %+v\nwant %+v", again, r)
		}
	})
}

// FuzzDecodeFrames feeds arbitrary bytes to the frame scanner: it must
// never panic, the valid prefix length must stay in bounds, and re-scanning
// the reported valid prefix must yield the same records without damage.
func FuzzDecodeFrames(f *testing.F) {
	var framed []byte
	for _, r := range testRecords() {
		framed = appendFrame(framed, EncodeRecord(r))
	}
	f.Add(framed)
	f.Add(framed[:len(framed)-2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, p []byte) {
		recs, valid, torn := decodeFrames(p)
		if valid < 0 || valid > len(p) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(p))
		}
		if !torn && valid != len(p) {
			t.Fatalf("clean scan stopped at %d of %d", valid, len(p))
		}
		again, validAgain, tornAgain := decodeFrames(p[:valid])
		if tornAgain || validAgain != valid || !reflect.DeepEqual(again, recs) {
			t.Fatal("valid prefix does not re-scan cleanly")
		}
	})
}
