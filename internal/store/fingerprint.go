package store

import "hash/crc32"

// Fingerprint identifies a raw file's contents at staging time: size,
// content checksum, and modification time. Persisted chunks are only valid
// against the exact raw bytes they were converted from — offsets, row
// counts, and statistics all describe byte extents of that file — so a
// restart compares the current file's fingerprint against the recorded one
// and invalidates everything persisted for a file that changed.
type Fingerprint struct {
	// Size is the file length in bytes.
	Size int64
	// CRC is the Castagnoli checksum of the full contents.
	CRC uint32
	// ModTimeNs is the file's modification time (UnixNano) when staged.
	// It is advisory — content equality is what validates persisted chunks,
	// so a touched-but-identical file does not invalidate anything.
	ModTimeNs int64
}

// IsZero reports whether the fingerprint was never computed.
func (f Fingerprint) IsZero() bool { return f.Size == 0 && f.CRC == 0 && f.ModTimeNs == 0 }

// SameContent reports whether two fingerprints describe identical bytes.
// Modification time is deliberately excluded: a copied or re-downloaded
// file with the same contents keeps its persisted chunks.
func (f Fingerprint) SameContent(o Fingerprint) bool {
	return f.Size == o.Size && f.CRC == o.CRC
}

// FingerprintBytes computes the content fingerprint of raw file bytes.
// ModTimeNs is left zero; callers with a backing file can fill it in from
// os.Stat for observability.
func FingerprintBytes(p []byte) Fingerprint {
	return Fingerprint{Size: int64(len(p)), CRC: crc32.Checksum(p, castagnoli)}
}
