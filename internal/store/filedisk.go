package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/vdisk"
)

// tmpPrefix marks in-flight atomic writes. Listing and existence checks
// ignore these names, and blob names may not use the prefix, so a crash
// mid-write can only ever leave invisible garbage, never a damaged blob.
const tmpPrefix = ".tmp-"

// FileDisk is the durable Disk implementation: every blob is a regular
// file under a root directory, blob names map to relative paths, and
// WriteBlob follows the temp-file + fsync + atomic-rename discipline so a
// crash at any instant leaves each blob either absent, fully old, or fully
// new. It implements both store.Disk and vdisk.Backend, so it can be used
// bare (real hardware speed) or wrapped in a bandwidth-throttled simulated
// disk via vdisk.NewBacked.
type FileDisk struct {
	root string

	// dirMu serializes directory-shape changes (create/rename/delete) so
	// concurrent writers cannot race a MkdirAll against a Delete.
	dirMu sync.Mutex

	readOps     atomic.Int64
	writeOps    atomic.Int64
	readBytes   atomic.Int64
	writeBytes  atomic.Int64
	readBusyNs  atomic.Int64
	writeBusyNs atomic.Int64
}

var _ Disk = (*FileDisk)(nil)

// The file disk is also a valid backend for the bandwidth-throttling
// simulated disk.
var _ vdisk.Backend = (*FileDisk)(nil)

// OpenFileDisk opens (creating if needed) a file-backed disk rooted at dir.
func OpenFileDisk(dir string) (*FileDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating disk root: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: resolving disk root: %w", err)
	}
	return &FileDisk{root: abs}, nil
}

// Root returns the root directory blobs live under.
func (d *FileDisk) Root() string { return d.root }

// path validates a blob name and maps it to a filesystem path. Names are
// slash-separated relative paths; empty components, ".", "..", and the
// temp-file prefix are rejected so a name can never escape the root or
// collide with an in-flight write.
func (d *FileDisk) path(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("store: empty blob name")
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." || strings.HasPrefix(part, tmpPrefix) {
			return "", fmt.Errorf("store: invalid blob name %q", name)
		}
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives power loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFile is the atomic write: temp file in the destination directory,
// write, fsync, rename over the final name, fsync the directory.
func (d *FileDisk) writeFile(name string, p []byte) error {
	path, err := d.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if _, err := tmp.Write(p); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	return nil
}

// Create creates an empty blob, truncating any existing blob.
func (d *FileDisk) Create(name string) {
	// Creation is a metadata operation; errors surface on first use.
	_ = d.writeFile(name, nil)
}

// Delete removes a blob. Deleting a missing blob is a no-op.
func (d *FileDisk) Delete(name string) {
	path, err := d.path(name)
	if err != nil {
		return
	}
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	_ = os.Remove(path)
}

// Exists reports whether the named blob exists.
func (d *FileDisk) Exists(name string) bool {
	path, err := d.path(name)
	if err != nil {
		return false
	}
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

// Size returns the length of the named blob.
func (d *FileDisk) Size(name string) (int64, error) {
	path, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("store: %s: %w", name, err)
	}
	return fi.Size(), nil
}

// List returns the names of all blobs with the given prefix, sorted.
func (d *FileDisk) List(prefix string) []string {
	var names []string
	_ = filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return nil //nolint:nilerr // a vanished entry is simply not listed
		}
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return nil
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	sort.Strings(names)
	return names
}

// Preload installs a blob without transfer accounting (setup operation).
func (d *FileDisk) Preload(name string, p []byte) {
	_ = d.writeFile(name, p)
}

// WriteBlob atomically replaces the named blob's contents and fsyncs, so a
// successful return means the data survives power loss.
func (d *FileDisk) WriteBlob(name string, p []byte) error {
	start := time.Now()
	if err := d.writeFile(name, p); err != nil {
		return err
	}
	d.writeBusyNs.Add(int64(time.Since(start)))
	d.writeOps.Add(1)
	d.writeBytes.Add(int64(len(p)))
	return nil
}

// Append appends p to the named blob (creating it if needed), fsyncs, and
// returns the offset at which the data landed.
func (d *FileDisk) Append(name string, p []byte) (int64, error) {
	path, err := d.path(name)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("store: appending %s: %w", name, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: appending %s: %w", name, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: appending %s: %w", name, err)
	}
	off := fi.Size()
	if _, err := f.Write(p); err != nil {
		return 0, fmt.Errorf("store: appending %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: appending %s: %w", name, err)
	}
	d.writeBusyNs.Add(int64(time.Since(start)))
	d.writeOps.Add(1)
	d.writeBytes.Add(int64(len(p)))
	return off, nil
}

// ReadAt reads len(p) bytes from the blob starting at off. A short read
// with a nil error means the blob ended (the Disk contract).
func (d *FileDisk) ReadAt(name string, p []byte, off int64) (int, error) {
	path, err := d.path(name)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("store: negative offset %d reading %s", off, name)
	}
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %s: %w", name, err)
	}
	defer f.Close()
	n, err := f.ReadAt(p, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, fmt.Errorf("store: reading %s at %d: %w", name, off, err)
	}
	d.readBusyNs.Add(int64(time.Since(start)))
	d.readOps.Add(1)
	d.readBytes.Add(int64(n))
	return n, nil
}

// ReadBlob reads the entire named blob.
func (d *FileDisk) ReadBlob(name string) ([]byte, error) {
	path, err := d.path(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", name, err)
	}
	d.readBusyNs.Add(int64(time.Since(start)))
	d.readOps.Add(1)
	d.readBytes.Add(int64(len(p)))
	return p, nil
}

// Stats returns cumulative transfer statistics. Busy durations are real
// wall-clock I/O time, so the utilization meters work unchanged over a
// durable disk.
func (d *FileDisk) Stats() vdisk.Stats {
	return vdisk.Stats{
		ReadOps:    d.readOps.Load(),
		WriteOps:   d.writeOps.Load(),
		ReadBytes:  d.readBytes.Load(),
		WriteBytes: d.writeBytes.Load(),
		ReadBusy:   time.Duration(d.readBusyNs.Load()),
		WriteBusy:  time.Duration(d.writeBusyNs.Load()),
	}
}
