package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Manifest is the append-only catalog mutation log plus its checkpoint
// snapshot. The durability contract:
//
//   - Append encodes the records, writes them in one append, and fsyncs
//     before returning — a successful Append survives power loss.
//   - Checkpoint writes a full snapshot to a temp file, fsyncs, atomically
//     renames it over the previous checkpoint, fsyncs the directory, and
//     only then truncates the log. A crash between those steps leaves
//     checkpoint + stale log; since records are idempotent upserts, the
//     duplicate replay is harmless.
//   - Replay reads checkpoint then log, verifies each record's CRC frame,
//     and truncates the log's torn tail at the first damaged record, so
//     recovery always resumes from a self-consistent prefix.
//
// Both files begin with an 8-byte magic so a foreign file is recognized
// instead of being misparsed.
type Manifest struct {
	dir string

	mu        sync.Mutex
	log       *os.File
	appends   int64 // records appended since the last checkpoint
	appendAll int64 // records appended over the manifest's lifetime
	ckpts     int64
	replay    ReplayReport
}

const (
	logFileName  = "manifest.log"
	ckptFileName = "checkpoint.dat"
)

var (
	logMagic  = []byte("SCRWLOG1")
	ckptMagic = []byte("SCRWCKP1")
)

// ReplayReport describes what Replay found.
type ReplayReport struct {
	// CheckpointRecords and LogRecords count the valid records read.
	CheckpointRecords int
	LogRecords        int
	// TornBytes is how many bytes were truncated from the log's damaged
	// tail (0 when the log was clean).
	TornBytes int64
	// CheckpointTornBytes counts damaged checkpoint-tail bytes that were
	// ignored. Checkpoints are written atomically, so this is nonzero only
	// after storage-level corruption.
	CheckpointTornBytes int64
}

// ManifestStats is a snapshot of manifest activity.
type ManifestStats struct {
	AppendedRecords        int64
	AppendsSinceCheckpoint int64
	Checkpoints            int64
	LastReplay             ReplayReport
}

// OpenManifest opens (creating if needed) the manifest in dir.
func OpenManifest(dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating manifest dir: %w", err)
	}
	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening manifest log: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: opening manifest log: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := f.Write(logMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: initializing manifest log: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: initializing manifest log: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: initializing manifest log: %w", err)
		}
	}
	return &Manifest{dir: dir, log: f}, nil
}

// Dir returns the directory the manifest lives in.
func (m *Manifest) Dir() string { return m.dir }

// Append durably appends records to the log. It returns only after the
// records are fsynced to storage.
func (m *Manifest) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, EncodeRecord(r))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return fmt.Errorf("store: manifest is closed")
	}
	// Writes land at the end: the file is only ever extended here and
	// truncated under the same lock.
	if _, err := m.log.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: appending manifest records: %w", err)
	}
	if _, err := m.log.Write(buf); err != nil {
		return fmt.Errorf("store: appending manifest records: %w", err)
	}
	if err := m.log.Sync(); err != nil {
		return fmt.Errorf("store: syncing manifest log: %w", err)
	}
	m.appends += int64(len(recs))
	m.appendAll += int64(len(recs))
	return nil
}

// Replay reads the checkpoint (if any) followed by the log, verifying every
// record frame. A damaged log tail is truncated in place so subsequent
// appends continue from the last valid record. The returned records are in
// apply order: checkpoint first, then log.
func (m *Manifest) Replay() ([]Record, ReplayReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil, ReplayReport{}, fmt.Errorf("store: manifest is closed")
	}
	var rep ReplayReport
	var recs []Record

	ckpt, err := os.ReadFile(filepath.Join(m.dir, ckptFileName))
	switch {
	case err == nil:
		body, ok := bytes.CutPrefix(ckpt, ckptMagic)
		if !ok {
			// A checkpoint without its magic is unusable end to end.
			rep.CheckpointTornBytes = int64(len(ckpt))
		} else {
			cr, valid, torn := decodeFrames(body)
			recs = append(recs, cr...)
			rep.CheckpointRecords = len(cr)
			if torn {
				rep.CheckpointTornBytes = int64(len(body) - valid)
			}
		}
	case os.IsNotExist(err):
		// First start: no checkpoint yet.
	default:
		return nil, rep, fmt.Errorf("store: reading checkpoint: %w", err)
	}

	raw, err := os.ReadFile(filepath.Join(m.dir, logFileName))
	if err != nil {
		return nil, rep, fmt.Errorf("store: reading manifest log: %w", err)
	}
	body, ok := bytes.CutPrefix(raw, logMagic)
	validLen := len(logMagic)
	if !ok {
		// The log header itself is damaged: nothing after it can be
		// trusted. Reset to an empty log.
		rep.TornBytes = int64(len(raw))
		validLen = 0
	} else {
		lr, valid, torn := decodeFrames(body)
		recs = append(recs, lr...)
		rep.LogRecords = len(lr)
		validLen += valid
		if torn {
			rep.TornBytes = int64(len(body) - valid)
		}
	}
	if rep.TornBytes > 0 {
		if err := m.log.Truncate(int64(validLen)); err != nil {
			return nil, rep, fmt.Errorf("store: truncating torn manifest tail: %w", err)
		}
		if validLen == 0 {
			if _, err := m.log.WriteAt(logMagic, 0); err != nil {
				return nil, rep, fmt.Errorf("store: rewriting manifest header: %w", err)
			}
		}
		if err := m.log.Sync(); err != nil {
			return nil, rep, fmt.Errorf("store: syncing truncated manifest: %w", err)
		}
	}
	m.appends = int64(rep.LogRecords)
	m.replay = rep
	return recs, rep, nil
}

// Checkpoint atomically replaces the checkpoint snapshot with recs and
// truncates the log. The snapshot is durable before the log shrinks, so no
// crash point loses a record.
func (m *Manifest) Checkpoint(recs []Record) error {
	buf := append([]byte(nil), ckptMagic...)
	for _, r := range recs {
		buf = appendFrame(buf, EncodeRecord(r))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return fmt.Errorf("store: manifest is closed")
	}
	tmp, err := os.CreateTemp(m.dir, tmpPrefix+ckptFileName+"-")
	if err != nil {
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(m.dir, ckptFileName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: installing checkpoint: %w", err)
	}
	if err := syncDir(m.dir); err != nil {
		return fmt.Errorf("store: installing checkpoint: %w", err)
	}
	// The snapshot is durable; the log's records are now redundant.
	if err := m.log.Truncate(int64(len(logMagic))); err != nil {
		return fmt.Errorf("store: truncating manifest log: %w", err)
	}
	if err := m.log.Sync(); err != nil {
		return fmt.Errorf("store: truncating manifest log: %w", err)
	}
	m.appends = 0
	m.ckpts++
	return nil
}

// AppendsSinceCheckpoint returns how many records the log holds beyond the
// checkpoint — the compaction trigger.
func (m *Manifest) AppendsSinceCheckpoint() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appends
}

// Stats returns a snapshot of manifest activity.
func (m *Manifest) Stats() ManifestStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManifestStats{
		AppendedRecords:        m.appendAll,
		AppendsSinceCheckpoint: m.appends,
		Checkpoints:            m.ckpts,
		LastReplay:             m.replay,
	}
}

// Close syncs and closes the log. The manifest is unusable afterwards.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	err := m.log.Sync()
	if cerr := m.log.Close(); err == nil {
		err = cerr
	}
	m.log = nil
	return err
}
