package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Manifest records. Every catalog mutation the database performs —
// discovering a chunk's geometry, collecting its statistics, loading its
// columns, finishing a discovery scan — is one record appended to the
// manifest log. Replaying the records in order rebuilds the catalog, and
// because each record is an idempotent upsert, replaying a record whose
// effect is already present (as happens when a crash lands between
// checkpoint compaction steps) is harmless.

// RecType identifies a manifest record's kind.
type RecType uint8

const (
	// RecTableCreate registers a table: name, raw-file blob, schema
	// specification, and the raw file's fingerprint at staging time.
	// Replaying it over an existing table with the same schema and
	// fingerprint is a no-op; a differing fingerprint or schema resets the
	// table (the raw file changed underneath the persisted state).
	RecTableCreate RecType = iota + 1
	// RecChunk records the discovery of one chunk's geometry.
	RecChunk
	// RecStats records conversion-time statistics for one column of one
	// chunk.
	RecStats
	// RecLoaded records that the listed columns of a chunk were stored as
	// page blobs. It is appended only after the pages are durably written,
	// preserving the data-before-metadata ordering recovery relies on.
	RecLoaded
	// RecComplete records that the raw file has been scanned end to end.
	RecComplete
	// RecLoadedGroup records that one column-group page — the listed column
	// ordinals stored together in a single page blob — of a chunk was
	// durably written. Like RecLoaded it is appended only after the page
	// blob is on disk (data before metadata). RecLoaded is kept for
	// replaying pre-colgroup manifests, whose pages are one blob per
	// column.
	RecLoadedGroup
	// RecWorkload upserts a table's decayed per-column access weights — the
	// workload tracker's state, persisted so a restart resumes payoff-ranked
	// speculation instead of falling back to scan order. Idempotent: the
	// latest record for a table wins.
	RecWorkload
)

func (t RecType) String() string {
	switch t {
	case RecTableCreate:
		return "table-create"
	case RecChunk:
		return "chunk"
	case RecStats:
		return "stats"
	case RecLoaded:
		return "loaded"
	case RecComplete:
		return "complete"
	case RecLoadedGroup:
		return "loaded-group"
	case RecWorkload:
		return "workload"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// ColStatsRec is the serialized form of per-column chunk statistics. The
// field set mirrors dbstore.ColStats without importing it (store sits below
// dbstore in the dependency order).
type ColStatsRec struct {
	Valid    bool
	Type     uint8
	MinInt   int64
	MaxInt   int64
	MinFloat float64
	MaxFloat float64
	MinStr   string
	MaxStr   string
	Rows     int64
	Distinct int64
}

// Record is one manifest entry. Only the fields relevant to Type are
// encoded; the rest stay zero.
type Record struct {
	Type  RecType
	Table string

	// RecTableCreate
	RawFile     string
	Schema      string // "name:type,..." specification
	Fingerprint Fingerprint

	// RecChunk / RecStats / RecLoaded
	Chunk  int
	Rows   int
	RawOff int64
	RawLen int64

	// RecLoaded / RecLoadedGroup
	Cols []int

	// RecStats
	Col   int
	Stats ColStatsRec

	// RecWorkload
	Weights []float64
}

// Encoding limits: a decoded field exceeding these is corruption, not data.
const (
	maxRecordLen = 1 << 20
	maxStringLen = 1 << 18
	maxCols      = 1 << 14
	maxChunkID   = 1 << 30
)

// recEncoder builds a record payload with varint scalars and
// length-prefixed strings.
type recEncoder struct{ buf []byte }

func (e *recEncoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *recEncoder) uvar(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *recEncoder) ivar(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *recEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *recEncoder) str(s string) {
	e.uvar(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// recDecoder parses a record payload, accumulating the first error.
type recDecoder struct {
	buf []byte
	off int
	err error
}

func (d *recDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *recDecoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("store: record truncated")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *recDecoder) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("store: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *recDecoder) ivar() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("store: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *recDecoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("store: record truncated in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *recDecoder) str() string {
	n := d.uvar()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail("store: string length %d exceeds limit", n)
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.fail("store: record truncated in string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count decodes a non-negative bounded integer (chunk IDs, row counts).
func (d *recDecoder) count(limit uint64, what string) int {
	v := d.uvar()
	if d.err != nil {
		return 0
	}
	if v > limit {
		d.fail("store: %s %d exceeds limit %d", what, v, limit)
		// Return 0, not the oversized value: callers size allocations by
		// this count, and the count must never outlive the failure.
		return 0
	}
	return int(v)
}

// EncodeRecord serializes a record payload (without framing).
func EncodeRecord(r Record) []byte {
	e := &recEncoder{buf: make([]byte, 0, 64)}
	e.u8(uint8(r.Type))
	e.str(r.Table)
	switch r.Type {
	case RecTableCreate:
		e.str(r.RawFile)
		e.str(r.Schema)
		e.ivar(r.Fingerprint.Size)
		e.uvar(uint64(r.Fingerprint.CRC))
		e.ivar(r.Fingerprint.ModTimeNs)
	case RecChunk:
		e.uvar(uint64(r.Chunk))
		e.uvar(uint64(r.Rows))
		e.ivar(r.RawOff)
		e.ivar(r.RawLen)
	case RecStats:
		e.uvar(uint64(r.Chunk))
		e.uvar(uint64(r.Col))
		s := r.Stats
		valid := uint8(0)
		if s.Valid {
			valid = 1
		}
		e.u8(valid)
		e.u8(s.Type)
		e.ivar(s.MinInt)
		e.ivar(s.MaxInt)
		e.f64(s.MinFloat)
		e.f64(s.MaxFloat)
		e.str(s.MinStr)
		e.str(s.MaxStr)
		e.ivar(s.Rows)
		e.ivar(s.Distinct)
	case RecLoaded, RecLoadedGroup:
		e.uvar(uint64(r.Chunk))
		e.uvar(uint64(len(r.Cols)))
		for _, c := range r.Cols {
			e.uvar(uint64(c))
		}
	case RecWorkload:
		e.uvar(uint64(len(r.Weights)))
		for _, w := range r.Weights {
			e.f64(w)
		}
	case RecComplete:
	default:
		panic(fmt.Sprintf("store: cannot encode record type %v", r.Type))
	}
	return e.buf
}

// DecodeRecord parses a record payload. It is total: any input either
// yields a valid record or an error, never a panic, and trailing bytes
// beyond the record are rejected (a frame holds exactly one record).
func DecodeRecord(p []byte) (Record, error) {
	d := &recDecoder{buf: p}
	r := Record{Type: RecType(d.u8())}
	r.Table = d.str()
	switch r.Type {
	case RecTableCreate:
		r.RawFile = d.str()
		r.Schema = d.str()
		r.Fingerprint.Size = d.ivar()
		r.Fingerprint.CRC = uint32(d.count(math.MaxUint32, "fingerprint crc"))
		r.Fingerprint.ModTimeNs = d.ivar()
	case RecChunk:
		r.Chunk = d.count(maxChunkID, "chunk id")
		r.Rows = d.count(maxChunkID, "row count")
		r.RawOff = d.ivar()
		r.RawLen = d.ivar()
	case RecStats:
		r.Chunk = d.count(maxChunkID, "chunk id")
		r.Col = d.count(maxCols, "column")
		r.Stats.Valid = d.u8() != 0
		r.Stats.Type = d.u8()
		r.Stats.MinInt = d.ivar()
		r.Stats.MaxInt = d.ivar()
		r.Stats.MinFloat = d.f64()
		r.Stats.MaxFloat = d.f64()
		r.Stats.MinStr = d.str()
		r.Stats.MaxStr = d.str()
		r.Stats.Rows = d.ivar()
		r.Stats.Distinct = d.ivar()
	case RecLoaded, RecLoadedGroup:
		r.Chunk = d.count(maxChunkID, "chunk id")
		n := d.count(maxCols, "column count")
		if d.err == nil && n > 0 {
			r.Cols = make([]int, 0, min(n, 64))
			for i := 0; i < n && d.err == nil; i++ {
				r.Cols = append(r.Cols, d.count(maxCols, "column"))
			}
		}
	case RecWorkload:
		n := d.count(maxCols, "weight count")
		if d.err == nil && n > 0 {
			r.Weights = make([]float64, 0, min(n, 64))
			for i := 0; i < n && d.err == nil; i++ {
				r.Weights = append(r.Weights, d.f64())
			}
		}
	case RecComplete:
	default:
		return Record{}, fmt.Errorf("store: unknown record type %d", uint8(r.Type))
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(p) {
		return Record{}, fmt.Errorf("store: %d trailing bytes after %v record", len(p)-d.off, r.Type)
	}
	return r, nil
}

// Record framing: every record in a manifest file is
//
//	uint32 LE  payload length
//	uint32 LE  CRC32-C of the payload
//	payload
//
// The checksum localizes damage: a torn or bit-flipped record invalidates
// itself and everything after it (the replay cannot trust record boundaries
// past a bad frame), never anything before it.

const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeFrames parses a sequence of framed records, stopping at the first
// damaged frame. It returns the decoded records, the byte length of the
// valid prefix, and whether a damaged suffix was found.
func decodeFrames(p []byte) (recs []Record, validLen int, torn bool) {
	off := 0
	for {
		if off == len(p) {
			return recs, off, false
		}
		if len(p)-off < frameHeader {
			return recs, off, true
		}
		n := int(binary.LittleEndian.Uint32(p[off:]))
		want := binary.LittleEndian.Uint32(p[off+4:])
		if n > maxRecordLen || len(p)-off-frameHeader < n {
			return recs, off, true
		}
		payload := p[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, off, true
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, r)
		off += frameHeader + n
	}
}
