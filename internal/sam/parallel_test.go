package sam

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"scanraw/internal/vdisk"
)

func TestBuildBAMIndex(t *testing.T) {
	s := Spec{Reads: 95, Seed: 4, ReadLen: 20}
	d := vdisk.Unlimited()
	if _, err := PreloadBAM(d, "f.bam", s, 20); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildBAMIndex(d, "f.bam")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 { // 20+20+20+20+15
		t.Fatalf("blocks = %d, want 5", len(idx))
	}
	if idx[0] != int64(len(bamMagic)) {
		t.Errorf("first block offset = %d", idx[0])
	}
	if !sort.SliceIsSorted(idx, func(i, j int) bool { return idx[i] < idx[j] }) {
		t.Error("offsets not ascending")
	}
	// Bad magic.
	d.Preload("bad", []byte("nope-not-bam"))
	if _, err := BuildBAMIndex(d, "bad"); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestDecodeParallelMatchesSequential(t *testing.T) {
	s := Spec{Reads: 333, Seed: 6, ReadLen: 24}
	d := vdisk.Unlimited()
	if _, err := PreloadBAM(d, "f.bam", s, 64); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildBAMIndex(d, "f.bam")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := map[int][]Read{}
		var paced atomic.Int64 // pace runs on worker goroutines
		err = DecodeParallel(d, "f.bam", idx, workers,
			func(cpu time.Duration) { paced.Add(int64(cpu)) },
			func(id int, reads []Read) error {
				got[id] = reads
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(idx) {
			t.Fatalf("workers=%d: decoded %d blocks, want %d", workers, len(got), len(idx))
		}
		// Reassemble in block order and compare to the spec.
		i := 0
		for b := 0; b < len(idx); b++ {
			for _, r := range got[b] {
				if r != s.ReadAt(i) {
					t.Fatalf("workers=%d read %d mismatch", workers, i)
				}
				i++
			}
		}
		if i != s.Reads {
			t.Fatalf("workers=%d: %d reads total", workers, i)
		}
		if paced.Load() <= 0 {
			t.Errorf("workers=%d: pace callback never received CPU time", workers)
		}
	}
}

func TestDecodeParallelErrorPropagates(t *testing.T) {
	s := Spec{Reads: 100, Seed: 1, ReadLen: 16}
	d := vdisk.Unlimited()
	if _, err := PreloadBAM(d, "f.bam", s, 25); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildBAMIndex(d, "f.bam")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	calls := 0
	err = DecodeParallel(d, "f.bam", idx, 2, nil, func(int, []Read) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	// Disk failure mid-decode.
	d.SetFailure(func(op, name string) error { return vdisk.ErrInjected })
	if err := DecodeParallel(d, "f.bam", idx, 2, nil, func(int, []Read) error { return nil }); !errors.Is(err, vdisk.ErrInjected) {
		t.Errorf("disk failure err = %v", err)
	}
}
