// Package sam provides the genomics workload of the paper's real-data
// evaluation (§5.2): SAM text files, a BAM-like compressed binary format,
// and a deliberately sequential "BAMTools-style" reader.
//
// The paper uses a 1000-Genomes alignment file with >400M reads (SAM 145 GB,
// BAM 26 GB). That data is not redistributable and far exceeds a test
// machine, so this package generates synthetic reads with the same
// structure: 11 mandatory tab-delimited fields per read, realistic CIGAR
// strings, and ACGT sequences. The substitution preserves the behaviours
// Table 1 measures: SAM stresses the same TOKENIZE/PARSE path as any
// tab-delimited text, and BAM's block-compressed binary format forces the
// sequential decompress-and-decode bottleneck that made BAMTools 7x slower
// than SCANRAW's parallel SAM pipeline despite the 5x smaller file.
package sam

import (
	"fmt"
	"strconv"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

// Read is one alignment record — the 11 mandatory SAM fields.
type Read struct {
	QName string
	Flag  int64
	RName string
	Pos   int64
	MapQ  int64
	Cigar string
	RNext string
	PNext int64
	TLen  int64
	Seq   string
	Qual  string
}

// Schema returns the 11-column mandatory SAM schema.
func Schema() *schema.Schema {
	return schema.MustNew(
		schema.Column{Name: "qname", Type: schema.Str},
		schema.Column{Name: "flag", Type: schema.Int64},
		schema.Column{Name: "rname", Type: schema.Str},
		schema.Column{Name: "pos", Type: schema.Int64},
		schema.Column{Name: "mapq", Type: schema.Int64},
		schema.Column{Name: "cigar", Type: schema.Str},
		schema.Column{Name: "rnext", Type: schema.Str},
		schema.Column{Name: "pnext", Type: schema.Int64},
		schema.Column{Name: "tlen", Type: schema.Int64},
		schema.Column{Name: "seq", Type: schema.Str},
		schema.Column{Name: "qual", Type: schema.Str},
	)
}

// Spec describes a deterministic synthetic alignment file.
type Spec struct {
	// Reads is the number of alignment records.
	Reads int
	// Seed selects the pseudo-random stream.
	Seed uint64
	// RefLen is the reference genome length positions are drawn from;
	// 0 defaults to 1e6.
	RefLen int64
	// ReadLen is the sequence length; 0 defaults to 50.
	ReadLen int
}

func (s Spec) refLen() int64 {
	if s.RefLen == 0 {
		return 1_000_000
	}
	return s.RefLen
}

func (s Spec) readLen() int {
	if s.ReadLen == 0 {
		return 50
	}
	return s.ReadLen
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s Spec) rng(read, field int) uint64 {
	return splitmix64(s.Seed ^ splitmix64(uint64(read)*0x9e3779b1+uint64(field)))
}

// cigarShapes are the CIGAR templates reads are drawn from; the weights
// skew toward perfect matches like real aligner output, with a tail of
// indel/clip shapes so the CIGAR distribution query has structure.
var cigarShapes = []string{
	"%dM", "%dM", "%dM", "%dM", // perfect match (weight 4)
	"%dM1D%dM", "%dM1I%dM", "%dM2D%dM", // indels
	"2S%dM", "%dM3S", // soft clips
}

const bases = "ACGT"

// ReadAt returns the deterministic read i.
func (s Spec) ReadAt(i int) Read {
	l := s.readLen()
	r := Read{
		QName: fmt.Sprintf("read.%d", i),
		Flag:  int64(s.rng(i, 0) % 4096),
		RName: fmt.Sprintf("chr%d", s.rng(i, 1)%22+1),
		Pos:   int64(s.rng(i, 2) % uint64(s.refLen())),
		MapQ:  int64(s.rng(i, 3) % 61),
		RNext: "=",
	}
	// CIGAR.
	shape := cigarShapes[s.rng(i, 4)%uint64(len(cigarShapes))]
	switch countVerbs(shape) {
	case 1:
		r.Cigar = fmt.Sprintf(shape, l)
	default:
		a := int(s.rng(i, 5)%uint64(l-2)) + 1
		r.Cigar = fmt.Sprintf(shape, a, l-a)
	}
	r.PNext = r.Pos + int64(s.rng(i, 6)%500)
	r.TLen = int64(s.rng(i, 7)%1000) - 500
	// Sequence and quality.
	seq := make([]byte, l)
	qual := make([]byte, l)
	h := s.rng(i, 8)
	for j := 0; j < l; j++ {
		if j%16 == 0 {
			h = s.rng(i, 9+j/16)
		}
		seq[j] = bases[h&3]
		qual[j] = byte('!' + (h>>2)&31)
		h >>= 7
	}
	r.Seq = string(seq)
	r.Qual = string(qual)
	return r
}

func countVerbs(shape string) int {
	n := 0
	for i := 0; i+1 < len(shape); i++ {
		if shape[i] == '%' && shape[i+1] == 'd' {
			n++
		}
	}
	return n
}

// AppendSAM appends the tab-delimited text form of r to dst.
func AppendSAM(dst []byte, r Read) []byte {
	dst = append(dst, r.QName...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.Flag, 10)
	dst = append(dst, '\t')
	dst = append(dst, r.RName...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.Pos, 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.MapQ, 10)
	dst = append(dst, '\t')
	dst = append(dst, r.Cigar...)
	dst = append(dst, '\t')
	dst = append(dst, r.RNext...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.PNext, 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.TLen, 10)
	dst = append(dst, '\t')
	dst = append(dst, r.Seq...)
	dst = append(dst, '\t')
	dst = append(dst, r.Qual...)
	return append(dst, '\n')
}

// SAMBytes materializes the whole SAM file.
func SAMBytes(s Spec) []byte {
	out := make([]byte, 0, s.Reads*(s.readLen()*2+64))
	for i := 0; i < s.Reads; i++ {
		out = AppendSAM(out, s.ReadAt(i))
	}
	return out
}

// PreloadSAM installs the SAM file on the disk (untimed setup) and returns
// its size.
func PreloadSAM(d *vdisk.Disk, name string, s Spec) int64 {
	data := SAMBytes(s)
	d.Preload(name, data)
	return int64(len(data))
}

// ReadsToChunk performs the MAP stage for binary (BAM) input: it organizes
// decoded reads into the columnar processing representation. Only the
// requested schema ordinals are materialized.
func ReadsToChunk(id int, reads []Read, cols []int) (*chunk.BinaryChunk, error) {
	sch := Schema()
	bc := chunk.NewBinary(sch, id, len(reads))
	for _, c := range cols {
		if c < 0 || c >= sch.NumColumns() {
			return nil, fmt.Errorf("sam: column ordinal %d out of range", c)
		}
		v := chunk.NewVector(sch.Column(c).Type, len(reads))
		for i, r := range reads {
			switch c {
			case 0:
				v.Strs[i] = r.QName
			case 1:
				v.Ints[i] = r.Flag
			case 2:
				v.Strs[i] = r.RName
			case 3:
				v.Ints[i] = r.Pos
			case 4:
				v.Ints[i] = r.MapQ
			case 5:
				v.Strs[i] = r.Cigar
			case 6:
				v.Strs[i] = r.RNext
			case 7:
				v.Ints[i] = r.PNext
			case 8:
				v.Ints[i] = r.TLen
			case 9:
				v.Strs[i] = r.Seq
			case 10:
				v.Strs[i] = r.Qual
			}
		}
		if err := bc.SetColumn(c, v); err != nil {
			return nil, err
		}
	}
	return bc, nil
}
