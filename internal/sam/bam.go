package sam

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"scanraw/internal/vdisk"
)

// BAM-like container format ("BAMX"). Real BAM is a series of BGZF
// (gzip-framed) blocks of binary-encoded alignment records; this format
// keeps exactly the properties the evaluation depends on — block
// compression that must be decompressed before any record is visible, and
// binary record encoding whose extraction cost lives in MAP rather than
// TOKENIZE/PARSE — while staying within the standard library (flate).
//
// Layout:
//
//	magic "BAMX" (4 bytes)
//	block*:
//	  uint32 LE compressedLen
//	  uint32 LE rawLen
//	  uint32 LE recordCount
//	  compressedLen bytes of DEFLATE data, inflating to rawLen bytes of
//	  records
//
// Record encoding: strings are uint16-length-prefixed; integers are
// varint-free fixed 64-bit LE, matching the paper's observation that BAM's
// cost is decompression + sequential decode, not number parsing.

var bamMagic = []byte("BAMX")

const bamBlockHeaderSize = 12

func appendString(dst []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

func appendInt(dst []byte, x int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(x))
	return append(dst, b[:]...)
}

func encodeRead(dst []byte, r Read) []byte {
	dst = appendString(dst, r.QName)
	dst = appendInt(dst, r.Flag)
	dst = appendString(dst, r.RName)
	dst = appendInt(dst, r.Pos)
	dst = appendInt(dst, r.MapQ)
	dst = appendString(dst, r.Cigar)
	dst = appendString(dst, r.RNext)
	dst = appendInt(dst, r.PNext)
	dst = appendInt(dst, r.TLen)
	dst = appendString(dst, r.Seq)
	dst = appendString(dst, r.Qual)
	return dst
}

type recordDecoder struct {
	data []byte
	off  int
}

func (d *recordDecoder) string() (string, error) {
	if d.off+2 > len(d.data) {
		return "", fmt.Errorf("sam: truncated string length at offset %d", d.off)
	}
	n := int(binary.LittleEndian.Uint16(d.data[d.off:]))
	d.off += 2
	if d.off+n > len(d.data) {
		return "", fmt.Errorf("sam: truncated string body at offset %d", d.off)
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *recordDecoder) int() (int64, error) {
	if d.off+8 > len(d.data) {
		return 0, fmt.Errorf("sam: truncated integer at offset %d", d.off)
	}
	x := int64(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return x, nil
}

func (d *recordDecoder) read() (Read, error) {
	var r Read
	var err error
	if r.QName, err = d.string(); err != nil {
		return r, err
	}
	if r.Flag, err = d.int(); err != nil {
		return r, err
	}
	if r.RName, err = d.string(); err != nil {
		return r, err
	}
	if r.Pos, err = d.int(); err != nil {
		return r, err
	}
	if r.MapQ, err = d.int(); err != nil {
		return r, err
	}
	if r.Cigar, err = d.string(); err != nil {
		return r, err
	}
	if r.RNext, err = d.string(); err != nil {
		return r, err
	}
	if r.PNext, err = d.int(); err != nil {
		return r, err
	}
	if r.TLen, err = d.int(); err != nil {
		return r, err
	}
	if r.Seq, err = d.string(); err != nil {
		return r, err
	}
	if r.Qual, err = d.string(); err != nil {
		return r, err
	}
	return r, nil
}

// BAMBytes materializes spec s as a BAMX file with readsPerBlock records
// per compressed block.
func BAMBytes(s Spec, readsPerBlock int) ([]byte, error) {
	if readsPerBlock <= 0 {
		return nil, fmt.Errorf("sam: readsPerBlock must be positive, got %d", readsPerBlock)
	}
	out := append([]byte(nil), bamMagic...)
	var raw []byte
	for start := 0; start < s.Reads; start += readsPerBlock {
		end := start + readsPerBlock
		if end > s.Reads {
			end = s.Reads
		}
		raw = raw[:0]
		for i := start; i < end; i++ {
			raw = encodeRead(raw, s.ReadAt(i))
		}
		var comp bytes.Buffer
		w, err := flate.NewWriter(&comp, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("sam: flate init: %w", err)
		}
		if _, err := w.Write(raw); err != nil {
			return nil, fmt.Errorf("sam: compressing block: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("sam: closing block: %w", err)
		}
		var hdr [bamBlockHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(comp.Len()))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(raw)))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(end-start))
		out = append(out, hdr[:]...)
		out = append(out, comp.Bytes()...)
	}
	return out, nil
}

// PreloadBAM installs the BAMX file on the disk (untimed setup) and returns
// its size.
func PreloadBAM(d *vdisk.Disk, name string, s Spec, readsPerBlock int) (int64, error) {
	data, err := BAMBytes(s, readsPerBlock)
	if err != nil {
		return 0, err
	}
	d.Preload(name, data)
	return int64(len(data)), nil
}

// BAMReader is the BAMTools-equivalent access library: a strictly
// sequential block reader. Each NextBlock call reads one compressed block
// from the disk, inflates it, and decodes its records — all on the calling
// goroutine. This mirrors the paper's finding that "file data access and
// decompression are sequential and handled inside BAMTools; the process is
// heavily CPU-bound", which no amount of downstream parallelism can fix.
type BAMReader struct {
	disk *vdisk.Disk
	name string
	off  int64
	size int64

	lastCPU time.Duration
}

// LastBlockCPU returns the CPU time (decompression + record decoding) the
// most recent NextBlock call spent, excluding disk reads. Benchmarks that
// model CPU speed use it to put the sequential BAM path in the same model
// units as the pipeline.
func (r *BAMReader) LastBlockCPU() time.Duration { return r.lastCPU }

// NewBAMReader opens a BAMX blob and validates its magic.
func NewBAMReader(d *vdisk.Disk, name string) (*BAMReader, error) {
	size, err := d.Size(name)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(bamMagic))
	n, err := d.ReadAt(name, magic, 0)
	if err != nil {
		return nil, err
	}
	if n != len(bamMagic) || !bytes.Equal(magic, bamMagic) {
		return nil, fmt.Errorf("sam: %s is not a BAMX file", name)
	}
	return &BAMReader{disk: d, name: name, off: int64(len(bamMagic)), size: size}, nil
}

// NextBlock reads, inflates and decodes the next block of reads. It
// returns io.EOF when the file is exhausted.
func (r *BAMReader) NextBlock() ([]Read, error) {
	if r.off >= r.size {
		return nil, io.EOF
	}
	hdr := make([]byte, bamBlockHeaderSize)
	n, err := r.disk.ReadAt(r.name, hdr, r.off)
	if err != nil {
		return nil, err
	}
	if n < bamBlockHeaderSize {
		return nil, fmt.Errorf("sam: truncated block header at offset %d", r.off)
	}
	compLen := int64(binary.LittleEndian.Uint32(hdr[0:]))
	rawLen := int(binary.LittleEndian.Uint32(hdr[4:]))
	count := int(binary.LittleEndian.Uint32(hdr[8:]))
	comp := make([]byte, compLen)
	n, err = r.disk.ReadAt(r.name, comp, r.off+bamBlockHeaderSize)
	if err != nil {
		return nil, err
	}
	if int64(n) < compLen {
		return nil, fmt.Errorf("sam: truncated block body at offset %d", r.off)
	}
	r.off += bamBlockHeaderSize + compLen

	cpuStart := time.Now()
	defer func() { r.lastCPU = time.Since(cpuStart) }()
	raw := make([]byte, 0, rawLen)
	fr := flate.NewReader(bytes.NewReader(comp))
	buf := make([]byte, 32<<10)
	for {
		m, err := fr.Read(buf)
		raw = append(raw, buf[:m]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sam: inflating block: %w", err)
		}
	}
	if err := fr.Close(); err != nil {
		return nil, fmt.Errorf("sam: closing inflater: %w", err)
	}
	if len(raw) != rawLen {
		return nil, fmt.Errorf("sam: block inflated to %d bytes, header says %d", len(raw), rawLen)
	}
	dec := &recordDecoder{data: raw}
	reads := make([]Read, 0, count)
	for i := 0; i < count; i++ {
		rd, err := dec.read()
		if err != nil {
			return nil, fmt.Errorf("sam: decoding record %d: %w", i, err)
		}
		reads = append(reads, rd)
	}
	if dec.off != len(raw) {
		return nil, fmt.Errorf("sam: %d trailing bytes after %d records", len(raw)-dec.off, count)
	}
	return reads, nil
}
