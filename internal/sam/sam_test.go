package sam

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"scanraw/internal/parse"
	"scanraw/internal/tok"
	"scanraw/internal/vdisk"
)

func TestSchemaShape(t *testing.T) {
	sch := Schema()
	if sch.NumColumns() != 11 {
		t.Fatalf("SAM schema has %d columns, want 11", sch.NumColumns())
	}
	if i, ok := sch.Index("cigar"); !ok || i != 5 {
		t.Errorf("cigar ordinal = %d,%v", i, ok)
	}
}

func TestReadAtDeterministic(t *testing.T) {
	s := Spec{Reads: 100, Seed: 7}
	a, b := s.ReadAt(42), s.ReadAt(42)
	if a != b {
		t.Error("ReadAt must be deterministic")
	}
	if a == s.ReadAt(43) {
		t.Error("different reads should differ")
	}
}

func TestReadAtShape(t *testing.T) {
	s := Spec{Reads: 200, Seed: 3}
	for i := 0; i < 200; i++ {
		r := s.ReadAt(i)
		if len(r.Seq) != 50 || len(r.Qual) != 50 {
			t.Fatalf("read %d seq/qual lengths = %d/%d", i, len(r.Seq), len(r.Qual))
		}
		if r.Pos < 0 || r.Pos >= 1_000_000 {
			t.Fatalf("read %d pos = %d", i, r.Pos)
		}
		if r.MapQ < 0 || r.MapQ > 60 {
			t.Fatalf("read %d mapq = %d", i, r.MapQ)
		}
		if !strings.HasPrefix(r.RName, "chr") {
			t.Fatalf("read %d rname = %q", i, r.RName)
		}
		if r.Cigar == "" || strings.Contains(r.Cigar, "%") {
			t.Fatalf("read %d cigar = %q", i, r.Cigar)
		}
		for _, c := range r.Seq {
			if !strings.ContainsRune(bases, c) {
				t.Fatalf("read %d has non-ACGT base %q", i, c)
			}
		}
	}
}

func TestCigarDistributionHasStructure(t *testing.T) {
	s := Spec{Reads: 2000, Seed: 1}
	perfect := 0
	for i := 0; i < s.Reads; i++ {
		if s.ReadAt(i).Cigar == "50M" {
			perfect++
		}
	}
	// 4 of 9 shapes are perfect matches: expect roughly 44%.
	if perfect < s.Reads/4 || perfect > s.Reads*2/3 {
		t.Errorf("perfect-match fraction = %d/%d, want ~44%%", perfect, s.Reads)
	}
}

func TestSAMBytesParsesWithTokenizer(t *testing.T) {
	s := Spec{Reads: 32, Seed: 9, ReadLen: 20}
	data := SAMBytes(s)
	if got := tok.CountLines(data); got != 32 {
		t.Fatalf("lines = %d", got)
	}
	chunks, err := tok.SplitChunks(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	tk := &tok.Tokenizer{Delim: '\t', MinFields: 11}
	p := &parse.Parser{Schema: Schema()}
	idx := 0
	for _, c := range chunks {
		m, err := tk.Tokenize(c, 11)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := p.Parse(c, m, []int{0, 1, 3, 5, 9})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < bc.Rows; r++ {
			want := s.ReadAt(idx)
			if bc.Column(0).Strs[r] != want.QName ||
				bc.Column(1).Ints[r] != want.Flag ||
				bc.Column(3).Ints[r] != want.Pos ||
				bc.Column(5).Strs[r] != want.Cigar ||
				bc.Column(9).Strs[r] != want.Seq {
				t.Fatalf("read %d does not round-trip through SAM text", idx)
			}
			idx++
		}
	}
	if idx != 32 {
		t.Errorf("parsed %d reads", idx)
	}
}

func TestBAMRoundTrip(t *testing.T) {
	s := Spec{Reads: 37, Seed: 5, ReadLen: 24}
	d := vdisk.Unlimited()
	if _, err := PreloadBAM(d, "f.bam", s, 10); err != nil {
		t.Fatal(err)
	}
	r, err := NewBAMReader(d, "f.bam")
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	blocks := 0
	for {
		reads, err := r.NextBlock()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		blocks++
		for _, got := range reads {
			if got != s.ReadAt(idx) {
				t.Fatalf("read %d mismatch: %+v vs %+v", idx, got, s.ReadAt(idx))
			}
			idx++
		}
	}
	if idx != 37 {
		t.Errorf("decoded %d reads, want 37", idx)
	}
	if blocks != 4 {
		t.Errorf("blocks = %d, want 4 (10+10+10+7)", blocks)
	}
}

func TestBAMSmallerThanSAM(t *testing.T) {
	s := Spec{Reads: 500, Seed: 2}
	samData := SAMBytes(s)
	bamData, err := BAMBytes(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bamData) >= len(samData) {
		t.Errorf("BAM (%d) should compress below SAM (%d)", len(bamData), len(samData))
	}
}

func TestBAMErrors(t *testing.T) {
	d := vdisk.Unlimited()
	if _, err := BAMBytes(Spec{Reads: 1}, 0); err == nil {
		t.Error("readsPerBlock=0 should fail")
	}
	d.Preload("notbam", []byte("hello world"))
	if _, err := NewBAMReader(d, "notbam"); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewBAMReader(d, "missing"); err == nil {
		t.Error("missing blob should fail")
	}
	// Truncated file.
	good, err := BAMBytes(Spec{Reads: 5, ReadLen: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	d.Preload("trunc", good[:len(good)-3])
	r, err := NewBAMReader(d, "trunc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextBlock(); err == nil {
		t.Error("truncated block should fail")
	}
}

func TestReadsToChunk(t *testing.T) {
	s := Spec{Reads: 10, Seed: 4, ReadLen: 16}
	reads := make([]Read, 10)
	for i := range reads {
		reads[i] = s.ReadAt(i)
	}
	bc, err := ReadsToChunk(3, reads, []int{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if bc.ID != 3 || bc.Rows != 10 {
		t.Fatalf("chunk shape = %d/%d", bc.ID, bc.Rows)
	}
	if bc.Has(0) || !bc.Has(3) || !bc.Has(5) {
		t.Error("wrong columns present")
	}
	if bc.Column(5).Strs[7] != reads[7].Cigar {
		t.Error("cigar column wrong")
	}
	if bc.Column(3).Ints[2] != reads[2].Pos {
		t.Error("pos column wrong")
	}
	if _, err := ReadsToChunk(0, reads, []int{99}); err == nil {
		t.Error("bad ordinal should fail")
	}
}

func TestReadsToChunkAllColumns(t *testing.T) {
	s := Spec{Reads: 3, Seed: 8, ReadLen: 12}
	reads := []Read{s.ReadAt(0), s.ReadAt(1), s.ReadAt(2)}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	bc, err := ReadsToChunk(0, reads, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		if !bc.Has(c) {
			t.Errorf("column %d missing", c)
		}
	}
	if bc.Column(10).Strs[1] != reads[1].Qual {
		t.Error("qual column wrong")
	}
}

// Property: SAM text for any read tokenizes into exactly 11 fields that
// parse back to the original record.
func TestSAMLineRoundTripProperty(t *testing.T) {
	f := func(seed uint16, idx uint8) bool {
		s := Spec{Reads: 256, Seed: uint64(seed), ReadLen: 16}
		r := s.ReadAt(int(idx))
		line := AppendSAM(nil, r)
		fields := bytes.Split(bytes.TrimSuffix(line, []byte("\n")), []byte("\t"))
		if len(fields) != 11 {
			return false
		}
		return string(fields[0]) == r.QName &&
			string(fields[5]) == r.Cigar &&
			string(fields[9]) == r.Seq &&
			string(fields[10]) == r.Qual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BAM encode/decode round-trips arbitrary record field values.
func TestBAMRecordRoundTripProperty(t *testing.T) {
	f := func(qname, cigar, seq string, flag, pos int64) bool {
		if len(qname) > 65535 || len(cigar) > 65535 || len(seq) > 65535 {
			return true
		}
		r := Read{QName: qname, Flag: flag, RName: "chr1", Pos: pos,
			Cigar: cigar, RNext: "=", Seq: seq, Qual: seq}
		enc := encodeRead(nil, r)
		dec := &recordDecoder{data: enc}
		got, err := dec.read()
		return err == nil && got == r && dec.off == len(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
