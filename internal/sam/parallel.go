package sam

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"scanraw/internal/vdisk"
)

// Parallel BAM decoding — the extension the paper's Table 1 discussion
// points at: "While we did not modify the BAMTools code, we parallelized
// MAP — without any performance gains", because the library's block access
// and decompression are inherently sequential. The fix requires knowing
// block boundaries up front (what BAI indexes provide for real BAM), so
// independent workers can read, inflate and decode different blocks
// concurrently.

// BlockIndex lists the byte offset of every block in a BAMX blob — the
// moral equivalent of a BAI index.
type BlockIndex []int64

// BuildBAMIndex scans a BAMX blob's block headers (12 bytes each, no
// payload reads or decompression) and returns the block offsets. The scan
// is the one-time cost a real aligner pays when writing the BAI file.
func BuildBAMIndex(d *vdisk.Disk, name string) (BlockIndex, error) {
	size, err := d.Size(name)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, bamBlockHeaderSize)
	n, err := d.ReadAt(name, hdr[:len(bamMagic)], 0)
	if err != nil {
		return nil, err
	}
	if n < len(bamMagic) || string(hdr[:len(bamMagic)]) != string(bamMagic) {
		return nil, fmt.Errorf("sam: %s is not a BAMX file", name)
	}
	var idx BlockIndex
	off := int64(len(bamMagic))
	for off < size {
		n, err := d.ReadAt(name, hdr, off)
		if err != nil {
			return nil, err
		}
		if n < bamBlockHeaderSize {
			return nil, fmt.Errorf("sam: truncated block header at offset %d", off)
		}
		idx = append(idx, off)
		compLen := int64(binary.LittleEndian.Uint32(hdr[0:]))
		off += bamBlockHeaderSize + compLen
	}
	return idx, nil
}

// DecodeParallel reads, inflates and decodes the indexed blocks with the
// given number of workers, invoking fn once per block from a single
// goroutine (block order is not preserved — fine for aggregates). pace,
// when non-nil, is called with each block's measured decode CPU time so
// callers running under a simulated-CPU model can stretch it; it executes
// on the worker, overlapping across workers like real cores would.
func DecodeParallel(d *vdisk.Disk, name string, idx BlockIndex, workers int,
	pace func(cpu time.Duration), fn func(blockID int, reads []Read) error) error {
	if workers < 1 {
		workers = 1
	}
	type result struct {
		id    int
		reads []Read
		err   error
	}
	jobs := make(chan int)
	results := make(chan result)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				reads, err := decodeBlockAt(d, name, idx[id], pace)
				select {
				case results <- result{id: id, reads: reads, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for id := range idx {
			select {
			case jobs <- id:
			case <-done:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // drain
		}
		if r.err != nil {
			firstErr = r.err
			close(done)
			continue
		}
		if err := fn(r.id, r.reads); err != nil {
			firstErr = err
			close(done)
		}
	}
	return firstErr
}

// decodeBlockAt reads and decodes the single block at the given offset.
func decodeBlockAt(d *vdisk.Disk, name string, off int64, pace func(time.Duration)) ([]Read, error) {
	r := &BAMReader{disk: d, name: name, off: off, size: off + 1}
	// size is a lower bound; NextBlock reads the header to learn the true
	// extent. Make size big enough to not trip the EOF check.
	if sz, err := d.Size(name); err == nil {
		r.size = sz
	}
	reads, err := r.NextBlock()
	if err != nil {
		return nil, err
	}
	if pace != nil {
		pace(r.LastBlockCPU())
	}
	return reads, nil
}
