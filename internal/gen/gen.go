// Package gen produces the synthetic datasets of the paper's experimental
// evaluation (§5.1): delimiter-separated files of R rows by C columns where
// every value is a pseudo-random unsigned integer below 2^31, "modeled based
// on [NoDB, invisible loading]".
//
// Generation is deterministic: Value(spec, row, col) is a pure function, so
// tests and benchmarks can compute expected query answers (sums, minima,
// selectivities) without re-reading the generated file.
package gen

import (
	"strconv"

	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

// CSVSpec describes one file of the synthetic suite.
type CSVSpec struct {
	// Rows and Cols give the file dimensions. The paper's suite spans
	// 2^20–2^28 rows by 2–256 columns; reproductions scale Rows down.
	Rows int
	Cols int
	// Seed selects the pseudo-random stream.
	Seed uint64
	// Delim is the field separator; 0 defaults to ','.
	Delim byte
	// MaxValue bounds values (exclusive); 0 defaults to 2^31 as in the
	// paper.
	MaxValue int64
}

func (s CSVSpec) delim() byte {
	if s.Delim == 0 {
		return ','
	}
	return s.Delim
}

func (s CSVSpec) maxValue() int64 {
	if s.MaxValue == 0 {
		return 1 << 31
	}
	return s.MaxValue
}

// Schema returns the relation schema of the generated file: Cols integer
// columns named c0..c{Cols-1}.
func (s CSVSpec) Schema() *schema.Schema {
	sch, err := schema.Uniform(s.Cols, schema.Int64, "c")
	if err != nil {
		panic(err) // unreachable for Cols >= 1; generation validates first
	}
	return sch
}

// splitmix64 is the SplitMix64 output function — a high-quality, allocation
// free mixer used to derive each cell value independently.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Value returns the deterministic cell value at (row, col).
func Value(s CSVSpec, row, col int) int64 {
	h := splitmix64(s.Seed ^ splitmix64(uint64(row)*0x100000001b3+uint64(col)))
	return int64(h % uint64(s.maxValue()))
}

// SumRange returns the exact sum of columns cols over rows [lo, hi).
// It mirrors the paper's benchmark query SELECT SUM(c_i1 + ... + c_iK).
func SumRange(s CSVSpec, cols []int, lo, hi int) int64 {
	var total int64
	for r := lo; r < hi; r++ {
		for _, c := range cols {
			total += Value(s, r, c)
		}
	}
	return total
}

// AppendRow appends the textual form of row r to dst and returns the
// extended slice.
func AppendRow(dst []byte, s CSVSpec, r int) []byte {
	d := s.delim()
	for c := 0; c < s.Cols; c++ {
		if c > 0 {
			dst = append(dst, d)
		}
		dst = strconv.AppendInt(dst, Value(s, r, c), 10)
	}
	return append(dst, '\n')
}

// Bytes materializes the whole file in memory.
func Bytes(s CSVSpec) []byte {
	// Estimate ~7 bytes per value plus separator.
	est := s.Rows * s.Cols * 8
	out := make([]byte, 0, est)
	for r := 0; r < s.Rows; r++ {
		out = AppendRow(out, s, r)
	}
	return out
}

// Preload materializes the file and installs it on the disk under name,
// bypassing throttling (experiment setup). It returns the file size.
func Preload(d *vdisk.Disk, name string, s CSVSpec) int64 {
	data := Bytes(s)
	d.Preload(name, data)
	return int64(len(data))
}
