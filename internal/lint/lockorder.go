package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the static mutex-acquisition graph across the storage and
// serving layers and rejects two shapes locksend's single-function view
// cannot see:
//
//  1. Ordering cycles: an edge A→B is recorded whenever lock B is acquired —
//     directly or through any resolvable call chain — inside a critical
//     section of lock A. A cycle (ckptMu taken under mu in one function, mu
//     under ckptMu in another) is a latent deadlock and every edge on it is
//     reported.
//  2. Channel operations under two locks: a call made while ≥2 distinct
//     locks are held, to a function that (transitively) performs a channel
//     send/receive/select, stalls both critical sections on a peer that may
//     need either lock.
//
// Lock identity is type-qualified ("dbstore.Store.ckptMu") via best-effort
// local type resolution, with two project idioms folded in: region-opener
// functions (`defer t.journalLock()()` acquires ckpt for the rest of the
// function) and lock aliasing through struct fields (`ckpt: &s.ckptMu` makes
// Table.ckpt and Store.ckptMu the same node). Critical sections are
// positional, same as locksend: Lock to first matching Unlock, deferred
// unlock to end of function. Function literals are analyzed as their own
// units (their locks do not leak into the enclosing function's summary —
// they run when invoked, not where written).
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "static lock-acquisition graph must be acyclic; no channel ops reachable under two locks",
	Dirs:       []string{"internal/dbstore", "internal/server", "internal/cluster", "internal/store"},
	RunProject: runLockOrder,
}

var unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}

// loFunc is one analyzed function body with its summary state.
type loFunc struct {
	f        *File
	u        unit
	pkg      string // package base name
	recvType string // receiver type name for method decls, "" otherwise
	isDecl   bool

	acquires []loAcquire
	calls    []loCall
	chanOps  []ast.Node

	lockset map[string]bool // nodes this function may acquire, transitively
	mayChan bool            // performs a channel op, transitively
}

// loAcquire is one lock acquisition and its positional critical section.
type loAcquire struct {
	node       string
	at         ast.Node
	start, end token.Pos
}

// loCall is a call site with enough shape to resolve candidates.
type loCall struct {
	at       ast.Node
	name     string
	recvType string // resolved type of a plain-ident receiver, "" otherwise
}

func runLockOrder(files []*File) []Diagnostic {
	g := &lockGraph{aliases: map[string]string{}, openers: map[string]string{}}
	for _, f := range files {
		g.collectAliases(f)
	}
	for _, f := range files {
		for _, u := range funcUnits(f) {
			fd, isDecl := u.node.(*ast.FuncDecl)
			lf := &loFunc{f: f, u: u, pkg: pkgBase(f.Pkg), isDecl: isDecl, lockset: map[string]bool{}}
			if isDecl {
				lf.recvType = recvTypeName(fd)
			}
			g.funcs = append(g.funcs, lf)
		}
	}
	g.indexDecls()
	for _, lf := range g.funcs {
		g.collectBody(lf)
	}
	g.fixpoint()
	return append(g.edgeFindings(), g.chanFindings()...)
}

type lockEdge struct {
	from, to string
	at       ast.Node
	f        *File
}

type lockGraph struct {
	funcs   []*loFunc
	aliases map[string]string // node → node it aliases (ckpt: &s.ckptMu)
	openers map[string]string // "pkg.funcName" → node acquired by the opener
	byName  map[string][]*loFunc
	byRecv  map[string][]*loFunc // "pkg.Type.name"
	edges   []lockEdge
}

func pkgBase(pkg string) string {
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		return pkg[i+1:]
	}
	return pkg
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

func namedTypeName(t types.Type) string {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name()
		default:
			return ""
		}
	}
}

// nodeFor names the lock behind the receiver expression of a
// Lock/Unlock-class call: type-qualified when the root identifier resolves,
// package-qualified expression text otherwise, with field aliases folded.
func (g *lockGraph) nodeFor(f *File, e ast.Expr) string {
	raw := g.rawNode(f, e)
	for i := 0; raw != "" && i < 8; i++ { // alias chains are tiny; 8 bounds a cycle
		next, ok := g.aliases[raw]
		if !ok {
			return raw
		}
		raw = next
	}
	return raw
}

func (g *lockGraph) rawNode(f *File, e ast.Expr) string {
	root := rootIdent(e)
	txt := exprText(e)
	if root == nil || txt == "" {
		return ""
	}
	base := pkgBase(f.Pkg)
	rest := strings.TrimPrefix(txt, root.Name)
	if rest != "" {
		if obj := f.objectOf(root); obj != nil {
			if tn := namedTypeName(obj.Type()); tn != "" {
				return base + "." + tn + rest
			}
		}
	}
	return base + "." + txt
}

// collectAliases records `field: &x.y` composite-literal entries and
// `a.field = &x.y` assignments: the field node is the same lock as the
// target node.
func (g *lockGraph) collectAliases(f *File) {
	record := func(from, to string) {
		if from != "" && to != "" && from != to {
			g.aliases[from] = to
		}
	}
	ast.Inspect(f.File, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			tn := exprText(v.Type)
			if i := strings.LastIndex(tn, "."); i >= 0 {
				tn = tn[i+1:]
			}
			if tn == "" {
				return true
			}
			for _, el := range v.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if ue, ok := kv.Value.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					record(pkgBase(f.Pkg)+"."+tn+"."+key.Name, g.rawNode(f, ue.X))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if ue, ok := v.Rhs[i].(*ast.UnaryExpr); ok && ue.Op == token.AND {
					record(g.rawNode(f, sel), g.rawNode(f, ue.X))
				}
			}
		}
		return true
	})
}

func (g *lockGraph) indexDecls() {
	g.byName = map[string][]*loFunc{}
	g.byRecv = map[string][]*loFunc{}
	for _, lf := range g.funcs {
		if !lf.isDecl {
			continue
		}
		g.byName[lf.u.name] = append(g.byName[lf.u.name], lf)
		if lf.recvType != "" {
			g.byRecv[lf.pkg+"."+lf.recvType+"."+lf.u.name] = append(g.byRecv[lf.pkg+"."+lf.recvType+"."+lf.u.name], lf)
		}
		// Region openers: acquire a lock and return its unlock method value.
		if node := g.openerNode(lf); node != "" {
			g.openers[lf.pkg+"."+lf.u.name] = node
		}
	}
}

// openerNode recognizes the journalLock idiom: the body takes a lock and
// returns the matching unlock as a method value, handing the critical
// section to the caller.
func (g *lockGraph) openerNode(lf *loFunc) string {
	var lockExpr ast.Expr
	inspectNoFuncLit(lf.u.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && lockExpr == nil {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if _, isLock := lockNames[sel.Sel.Name]; isLock {
					lockExpr = sel.X
				}
			}
		}
		return true
	})
	if lockExpr == nil {
		return ""
	}
	found := false
	inspectNoFuncLit(lf.u.body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, r := range ret.Results {
			if sel, ok := r.(*ast.SelectorExpr); ok && unlockNames[sel.Sel.Name] && exprText(sel.X) == exprText(lockExpr) {
				found = true
			}
		}
		return true
	})
	if !found {
		return ""
	}
	return g.nodeFor(lf.f, lockExpr)
}

// collectBody gathers acquisitions (with positional critical sections),
// calls, and channel ops for one function body.
func (g *lockGraph) collectBody(lf *loFunc) {
	body := lf.u.body
	inDefer := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(k ast.Node) bool {
				if c, ok := k.(*ast.CallExpr); ok {
					inDefer[c] = true
				}
				return true
			})
		}
		return true
	})

	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			// defer t.journalLock()(): the inner call runs now and the
			// unlock runs at exit — a region from here to end of function.
			if inner, ok := v.Call.Fun.(*ast.CallExpr); ok {
				if name := calleeName(inner); name != "" {
					if node, ok := g.openers[lf.pkg+"."+name]; ok {
						lf.acquires = append(lf.acquires, loAcquire{node: node, at: v, start: v.End(), end: body.End()})
					}
				}
			}
			return true
		case *ast.SendStmt:
			lf.chanOps = append(lf.chanOps, v)
		case *ast.SelectStmt:
			lf.chanOps = append(lf.chanOps, v)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				lf.chanOps = append(lf.chanOps, v)
			}
		case *ast.CallExpr:
			if inDefer[v] {
				return true
			}
			sel, isSel := v.Fun.(*ast.SelectorExpr)
			if isSel {
				if unlockName, isLock := lockNames[sel.Sel.Name]; isLock {
					node := g.nodeFor(lf.f, sel.X)
					if node == "" {
						return true
					}
					end := body.End()
					recvTxt := exprText(sel.X)
					inspectNoFuncLit(body, func(m ast.Node) bool {
						c, ok := m.(*ast.CallExpr)
						if !ok || inDefer[c] {
							return true
						}
						if r2, n2 := callee(c); r2 == recvTxt && n2 == unlockName && c.Pos() > v.End() && c.Pos() < end {
							end = c.Pos()
						}
						return true
					})
					lf.acquires = append(lf.acquires, loAcquire{node: node, at: v, start: v.End(), end: end})
					return true
				}
				if unlockNames[sel.Sel.Name] {
					return true
				}
			}
			name := calleeName(v)
			if name == "" || builtinFuncs[name] {
				return true
			}
			call := loCall{at: v, name: name}
			if isSel {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := lf.f.objectOf(id); obj != nil {
						call.recvType = namedTypeName(obj.Type())
					}
				}
			}
			lf.calls = append(lf.calls, call)
		}
		return true
	})
}

// resolve returns the candidate declarations a call may reach: the exact
// (package, receiver type, name) method when the receiver is a plain ident
// with a resolvable named type, otherwise every analyzed declaration sharing
// the name — the conservative direction for a graph that must find cycles.
func (g *lockGraph) resolve(lf *loFunc, c loCall) []*loFunc {
	if c.recvType != "" {
		if ds := g.byRecv[lf.pkg+"."+c.recvType+"."+c.name]; len(ds) > 0 {
			return ds
		}
	}
	return g.byName[c.name]
}

// fixpoint propagates locksets and channel-op reachability through the call
// graph until stable.
func (g *lockGraph) fixpoint() {
	for _, lf := range g.funcs {
		for _, a := range lf.acquires {
			lf.lockset[a.node] = true
		}
		lf.mayChan = len(lf.chanOps) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, lf := range g.funcs {
			for _, c := range lf.calls {
				for _, callee := range g.resolve(lf, c) {
					for node := range callee.lockset {
						if !lf.lockset[node] {
							lf.lockset[node] = true
							changed = true
						}
					}
					if callee.mayChan && !lf.mayChan {
						lf.mayChan = true
						changed = true
					}
				}
			}
		}
	}
}

// heldAt returns the distinct lock nodes whose critical sections cover pos.
func heldAt(lf *loFunc, pos token.Pos, except string) []string {
	var held []string
	seen := map[string]bool{}
	for _, a := range lf.acquires {
		if a.node == except || seen[a.node] {
			continue
		}
		if pos > a.start && pos <= a.end {
			seen[a.node] = true
			held = append(held, a.node)
		}
	}
	sort.Strings(held)
	return held
}

// edgeFindings builds the acquisition graph and reports every edge on a
// cycle.
func (g *lockGraph) edgeFindings() []Diagnostic {
	seen := map[string]bool{}
	addEdge := func(from, to string, at ast.Node, f *File) {
		if from == to {
			return // re-acquisition of the same node is pinbalance/runtime territory
		}
		key := from + "→" + to
		if seen[key] {
			return
		}
		seen[key] = true
		g.edges = append(g.edges, lockEdge{from: from, to: to, at: at, f: f})
	}
	for _, lf := range g.funcs {
		for _, a := range lf.acquires {
			// Direct nested acquisitions.
			for _, b := range lf.acquires {
				if b.at.Pos() > a.start && b.at.Pos() <= a.end {
					addEdge(a.node, b.node, b.at, lf.f)
				}
			}
			// Acquisitions reached through calls inside the section.
			for _, c := range lf.calls {
				if c.at.Pos() <= a.start || c.at.Pos() > a.end {
					continue
				}
				for _, callee := range g.resolve(lf, c) {
					for node := range callee.lockset {
						addEdge(a.node, node, c.at, lf.f)
					}
				}
			}
		}
	}
	adj := map[string][]string{}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var diags []Diagnostic
	for _, e := range g.edges {
		if reaches(adj, e.to, e.from) {
			diags = append(diags, e.f.diag("lockorder", e.at,
				"lock order cycle: %s is acquired while holding %s, but elsewhere %s is (transitively) acquired while holding %s — fix one ordering", e.to, e.from, e.from, e.to))
		}
	}
	return diags
}

func reaches(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// chanFindings reports channel operations — direct or reached through a call
// — performed while two or more distinct locks are held.
func (g *lockGraph) chanFindings() []Diagnostic {
	var diags []Diagnostic
	for _, lf := range g.funcs {
		for _, op := range lf.chanOps {
			if held := heldAt(lf, op.Pos(), ""); len(held) >= 2 {
				diags = append(diags, lf.f.diag("lockorder", op,
					"channel operation while holding %s — either lock's owner can be the blocked peer", strings.Join(held, " and ")))
			}
		}
		for _, c := range lf.calls {
			held := heldAt(lf, c.at.Pos(), "")
			if len(held) < 2 {
				continue
			}
			for _, callee := range g.resolve(lf, c) {
				if callee.mayChan {
					diags = append(diags, lf.f.diag("lockorder", c.at,
						"call to %s performs channel operations while %s are held — invisible to locksend, still a deadlock shape", c.name, strings.Join(held, " and ")))
					break
				}
			}
		}
	}
	return diags
}
