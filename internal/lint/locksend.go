package lint

import (
	"go/ast"
	"go/token"
)

// LockSend forbids channel operations inside mutex critical sections: a
// send or receive while holding a sync.Mutex/RWMutex is the deadlock shape
// this codebase is most exposed to — the goroutine that would drain the
// channel may be blocked on the same lock (the scheduler/resizer/gate
// triangle). The critical section is computed positionally: from a
// x.Lock()/x.RLock() statement to the first matching x.Unlock()/x.RUnlock()
// in the same function, or to the end of the function when the unlock is
// deferred. Channel operations inside nested function literals are not
// flagged (they run later, off the lock, unless invoked inline — a case
// the runtime invariants and race tests cover instead).
var LockSend = &Analyzer{
	Name: "locksend",
	Doc:  "no channel send/receive while holding a sync.Mutex/RWMutex",
	Run:  runLockSend,
}

var lockNames = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockSend(f *File) []Diagnostic {
	var diags []Diagnostic
	for _, u := range funcUnits(f) {
		diags = append(diags, lockRegions(f, u)...)
	}
	return diags
}

// lockRegions finds each Lock call's critical section and scans it for
// channel operations.
func lockRegions(f *File, u unit) []Diagnostic {
	type region struct {
		recv       string
		start, end token.Pos
	}
	var regions []region

	// Calls reached only through a defer run at function exit — an unlock
	// there must not close the critical section early.
	inDefer := map[ast.Node]bool{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(k ast.Node) bool {
				if c, ok := k.(*ast.CallExpr); ok {
					inDefer[c] = true
				}
				return true
			})
		}
		return true
	})

	// Locate Lock/RLock call statements and their matching unlocks; a
	// deferred (or missing) unlock holds the lock to function end.
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inDefer[call] {
			return true
		}
		recv, name := callee(call)
		unlockName, isLock := lockNames[name]
		if !isLock || recv == "" {
			return true
		}
		end := u.body.End()
		inspectNoFuncLit(u.body, func(m ast.Node) bool {
			v, ok := m.(*ast.CallExpr)
			if !ok || inDefer[v] {
				return true
			}
			if r2, n2 := callee(v); r2 == recv && n2 == unlockName && v.Pos() > call.End() && v.Pos() < end {
				end = v.Pos()
			}
			return true
		})
		regions = append(regions, region{recv: recv, start: call.End(), end: end})
		return true
	})

	var diags []Diagnostic
	for _, r := range regions {
		inspectNoFuncLit(u.body, func(n ast.Node) bool {
			if n.Pos() <= r.start || n.End() > r.end {
				return true
			}
			switch v := n.(type) {
			case *ast.SelectStmt:
				diags = append(diags, f.diag("locksend", v,
					"select on channels while holding %s — a blocked peer waiting for the lock deadlocks here", r.recv))
				return false // cases inside are covered by this finding
			case *ast.SendStmt:
				diags = append(diags, f.diag("locksend", v,
					"channel send while holding %s — move it outside the critical section", r.recv))
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					diags = append(diags, f.diag("locksend", v,
						"channel receive while holding %s — move it outside the critical section", r.recv))
				}
			}
			return true
		})
	}
	return diags
}
