package lint

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces context propagation through the public API: an exported
// function that accepts a context.Context must actually thread it onward.
// Three shapes are flagged: (1) the ctx parameter is never used at all —
// the signature promises cancellation the body ignores; (2) the body
// manufactures a fresh context.Background()/TODO() even though the
// caller's ctx is in scope — the classic way a query outlives its
// disconnect; (3) the body calls plain F(...) when the same file declares
// a FContext(ctx, ...) variant — the cancellable path exists and is being
// bypassed. The one legal bypass is FContext itself calling F as its
// implementation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported functions taking a context.Context must thread it into the calls they make",
	Run:  runCtxFlow,
}

func runCtxFlow(f *File) []Diagnostic {
	// Names declared in this file: used to detect available FContext
	// variants for rule (3).
	declared := map[string]bool{}
	for _, d := range f.File.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			declared[fd.Name.Name] = true
		}
	}

	var diags []Diagnostic
	for _, d := range f.File.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		ctxName := ctxParamName(fd.Type)
		if ctxName == "" || ctxName == "_" {
			continue
		}
		if !usesName(fd.Body, ctxName) {
			diags = append(diags, f.diag("ctxflow", fd.Name,
				"%s accepts %s but never uses it — cancellation and deadlines are silently ignored", fd.Name.Name, ctxName))
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Rule 2: a fresh background context while the caller's is in scope.
			if recv, name := callee(call); recv == "context" && (name == "Background" || name == "TODO") {
				diags = append(diags, f.diag("ctxflow", call,
					"%s has %s in scope but builds context.%s — thread the caller's context instead", fd.Name.Name, ctxName, name))
				return true
			}
			// Rule 3: F(...) called where FContext(ctx, ...) exists in this file.
			_, name := callee(call)
			if name == "" || strings.HasSuffix(name, "Context") {
				return true
			}
			variant := name + "Context"
			if !declared[variant] || fd.Name.Name == variant {
				return true
			}
			for _, a := range call.Args {
				if usesName(a, ctxName) {
					return true
				}
			}
			diags = append(diags, f.diag("ctxflow", call,
				"%s calls %s without %s although %s exists — the call cannot be cancelled", fd.Name.Name, name, ctxName, variant))
			return true
		})
	}
	return diags
}

// ctxParamName returns the name of the first parameter whose type is
// context.Context (or a bare Context identifier), or "".
func ctxParamName(ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		if !isContextType(field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			return "_"
		}
		return field.Names[0].Name
	}
	return ""
}

func isContextType(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name == "context" && v.Sel.Name == "Context"
		}
	case *ast.Ident:
		return v.Name == "Context"
	}
	return false
}
