package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// JournalOrder mechanizes the data-before-metadata rule of the durable
// catalog (DESIGN §10/§13): a journal append of a RecLoaded/RecLoadedGroup
// record claims "these column pages are on disk", so every call path that
// appends one must be dominated by the corresponding blob write. Two checks:
//
//  1. Ordering: a function that builds loaded-records and journals them is a
//     "loaded appender" (markLoadedGroups). Every call site of such a
//     function must have a blob write (WriteBlob, directly or through a
//     same-package helper) positioned before it in the calling function —
//     otherwise the journal can claim pages a crash never persisted.
//  2. Lock discipline: every journal append must sit inside the
//     checkpoint-exclusion region — `defer t.journalLock()()` or an explicit
//     ckpt/ckptMu read-lock taken earlier in the same function — so a
//     checkpoint snapshot can never interleave with a mutate+append pair.
//
// The pass is package-scoped (RunProject) because the appender and its
// callers live in different files. Functions that only *build* loaded
// records without appending (the checkpoint snapshot) are exempt: they
// re-record pages that prior appends already proved durable.
var JournalOrder = &Analyzer{
	Name:       "journalorder",
	Doc:        "journal appends of loaded-records must be dominated by the blob write; appends must hold the checkpoint lock",
	Dirs:       []string{"internal/dbstore"},
	RunProject: runJournalOrder,
}

func runJournalOrder(files []*File) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range groupByPkg(files) {
		diags = append(diags, journalOrderPkg(pkg)...)
	}
	return diags
}

// groupByPkg buckets files by package directory in first-seen order.
func groupByPkg(files []*File) [][]*File {
	idx := map[string]int{}
	var groups [][]*File
	for _, f := range files {
		i, ok := idx[f.Pkg]
		if !ok {
			i = len(groups)
			idx[f.Pkg] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], f)
	}
	return groups
}

// pkgUnit is one function body with its containing file.
type pkgUnit struct {
	f *File
	u unit
}

func journalOrderPkg(files []*File) []Diagnostic {
	var units []pkgUnit
	for _, f := range files {
		for _, u := range funcUnits(f) {
			units = append(units, pkgUnit{f, u})
		}
	}

	// Blob writers: direct WriteBlob callers, then the same-package helpers
	// that reach one (fixpoint over callee names; literals excluded from the
	// name table since they cannot be called by name).
	blobWriter := map[string]bool{}
	declared := map[string]bool{}
	for _, pu := range units {
		if _, isDecl := pu.u.node.(*ast.FuncDecl); isDecl {
			declared[pu.u.name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pu := range units {
			if _, isDecl := pu.u.node.(*ast.FuncDecl); !isDecl || blobWriter[pu.u.name] {
				continue
			}
			hit := false
			inspectNoFuncLit(pu.u.body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && !hit {
					if _, name := callee(call); name == "WriteBlob" || (blobWriter[name] && declared[name]) {
						hit = true
					}
				}
				return !hit
			})
			if hit {
				blobWriter[pu.u.name] = true
				changed = true
			}
		}
	}

	// Loaded appenders: declarations that build a RecLoaded/RecLoadedGroup
	// literal and feed a journal append in the same body.
	loadedAppender := map[string]bool{}
	for _, pu := range units {
		if _, isDecl := pu.u.node.(*ast.FuncDecl); !isDecl {
			continue
		}
		if buildsLoadedRecord(pu.u.body) && hasJournalAppend(pu.f, pu.u) {
			loadedAppender[pu.u.name] = true
		}
	}

	var diags []Diagnostic
	for _, pu := range units {
		diags = append(diags, journalOrderCallers(pu.f, pu.u, loadedAppender, blobWriter)...)
		diags = append(diags, journalLockDiscipline(pu.f, pu.u)...)
	}
	return diags
}

// buildsLoadedRecord reports whether the body constructs a store.Record
// composite literal whose Type field is RecLoaded or RecLoadedGroup.
func buildsLoadedRecord(body *ast.BlockStmt) bool {
	found := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || found {
			return !found
		}
		if t := exprText(cl.Type); t != "store.Record" && t != "Record" {
			return true
		}
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Type" {
				continue
			}
			v := exprText(kv.Value)
			if strings.HasSuffix(v, "RecLoaded") || strings.HasSuffix(v, "RecLoadedGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}

// journalAppendCalls returns the positions of journal-append calls in the
// unit: journalAppend (the blessed wrapper) and Append on a journal-typed
// receiver (a `.journal` field or a variable assigned from one).
func journalAppendCalls(f *File, u unit) []ast.Node {
	// Variables bound to the journal (j := s.journal).
	journalVars := map[string]bool{}
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if t := exprText(as.Rhs[i]); t == "journal" || strings.HasSuffix(t, ".journal") {
				journalVars[id.Name] = true
			}
		}
		return true
	})
	var calls []ast.Node
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := callee(call)
		switch {
		case name == "journalAppend":
			calls = append(calls, call)
		case name == "Append" && (strings.HasSuffix(recv, ".journal") || journalVars[recv]):
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

func hasJournalAppend(f *File, u unit) bool {
	return len(journalAppendCalls(f, u)) > 0
}

// journalOrderCallers flags call sites of loaded appenders with no blob
// write positioned before them in the calling unit.
func journalOrderCallers(f *File, u unit, loadedAppender, blobWriter map[string]bool) []Diagnostic {
	if loadedAppender[u.name] {
		// The appender's own body is the abstraction boundary; obligations
		// attach to its callers.
		return nil
	}
	var writes []token.Pos
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name := callee(call); name == "WriteBlob" || blobWriter[name] {
				writes = append(writes, call.End())
			}
		}
		return true
	})
	var diags []Diagnostic
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, name := callee(call)
		if !loadedAppender[name] {
			return true
		}
		for _, w := range writes {
			if w < call.Pos() {
				return true
			}
		}
		diags = append(diags, f.diag("journalorder", call,
			"%s journals a loaded-record with no preceding blob write in %s — the journal would claim pages a crash never persisted (data-before-metadata, DESIGN §10/§13)", name, u.name))
		return true
	})
	return diags
}

// journalLockDiscipline requires every journal append to follow a
// checkpoint-exclusion acquisition in the same unit.
func journalLockDiscipline(f *File, u unit) []Diagnostic {
	if u.name == "journalAppend" || u.name == "journalLock" {
		// The blessed wrapper pair: callers hold the lock around them.
		return nil
	}
	appends := journalAppendCalls(f, u)
	if len(appends) == 0 {
		return nil
	}
	var acquires []token.Pos
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			// defer t.journalLock()() — the argument call runs at the defer
			// statement, acquiring the region there.
			if inner, ok := v.Call.Fun.(*ast.CallExpr); ok {
				if _, name := callee(inner); name == "journalLock" {
					acquires = append(acquires, v.End())
				}
			}
		case *ast.CallExpr:
			recv, name := callee(v)
			if (name == "RLock" || name == "Lock") && strings.Contains(recv, "ckpt") {
				acquires = append(acquires, v.End())
			}
		}
		return true
	})
	var diags []Diagnostic
	for _, ap := range appends {
		held := false
		for _, a := range acquires {
			if a < ap.Pos() {
				held = true
				break
			}
		}
		if !held {
			diags = append(diags, f.diag("journalorder", ap,
				"journal append outside the checkpoint-exclusion region — take journalLock()/ckptMu before appending in %s so a snapshot cannot interleave", u.name))
		}
	}
	return diags
}
