package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture contract: every line that must produce a diagnostic ends in a
// `// want` comment. A line holding a bare `//lint:ignore <analyzer>`
// directive (no reason) is an implicit want — the driver reports the
// missing reason at that line, and the comment cannot also carry a marker.
var bareDirectiveRe = regexp.MustCompile(`^//lint:ignore\s+[A-Za-z0-9_,]+$`)

type wantKey struct {
	file string // base name of the fixture file
	line int
}

func TestAnalyzersOnFixtures(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	for _, name := range []string{
		"pinbalance", "poolpair", "goexit", "ctxflow", "locksend",
		"journalorder", "syncack", "decodeguard", "crcflow", "lockorder",
	} {
		a := byName[name]
		if a == nil {
			t.Fatalf("analyzer %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			root := filepath.Join("testdata", "src", name)
			wants := collectWants(t, root)
			if len(wants) == 0 {
				t.Fatalf("fixture dir %s has no // want markers — every analyzer needs a bad fixture", root)
			}
			diags, err := Run(Config{Root: root}, []string{"./..."}, []*Analyzer{a})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := map[wantKey]int{}
			for _, d := range diags {
				got[wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}]++
			}
			for k, n := range wants {
				if got[k] != n {
					t.Errorf("%s:%d: want %d diagnostic(s), got %d", k.file, k.line, n, got[k])
				}
			}
			for k := range got {
				if _, ok := wants[k]; !ok {
					t.Errorf("%s:%d: unexpected diagnostic(s): %s", k.file, k.line, describe(diags, k))
				}
			}
		})
	}
}

func describe(diags []Diagnostic, k wantKey) string {
	var msgs []string
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == k.file && d.Pos.Line == k.line {
			msgs = append(msgs, fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
		}
	}
	return strings.Join(msgs, "; ")
}

func collectWants(t *testing.T, root string) map[wantKey]int {
	t.Helper()
	wants := map[wantKey]int{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			k := wantKey{file: filepath.Base(path), line: i + 1}
			if strings.Contains(line, "// want") {
				wants[k]++
			}
			if bareDirectiveRe.MatchString(strings.TrimSpace(line)) {
				wants[k]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	return wants
}

// TestTreeClean pins the property `make lint` only observes through its exit
// code: every analyzer — alone and all together — runs over the full real
// tree with zero findings. A regression in the tree or an analyzer that
// starts over-reporting both fail here, named.
func TestTreeClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving repo root: %v", err)
	}
	run := func(t *testing.T, as []*Analyzer) {
		t.Helper()
		diags, err := Run(Config{Root: root}, []string{"./..."}, as)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, d := range diags {
			t.Errorf("tree not clean: %s", d)
		}
	}
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) { run(t, []*Analyzer{a}) })
	}
	t.Run("all", func(t *testing.T) { run(t, Analyzers()) })
}

// TestUnusedSuppressionReported pins the unused-suppression pass: a
// directive with a reason that suppresses nothing is reported, but only when
// the analyzer it names actually ran — a partial run must not condemn
// directives it never exercised.
func TestUnusedSuppressionReported(t *testing.T) {
	root := filepath.Join("testdata", "src", "decodeguard")
	diags, err := Run(Config{Root: root}, []string{"./..."}, []*Analyzer{DecodeGuard})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var unused int
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "unused //lint:ignore") {
			unused++
		}
	}
	if unused != 1 {
		t.Errorf("want exactly 1 unused-suppression finding with decodeguard running, got %d", unused)
	}

	// The same tree under an analyzer that is not named by the directive:
	// the unused decodeguard directive must not be reported.
	diags, err = Run(Config{Root: root}, []string{"./..."}, []*Analyzer{LockSend})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "unused //lint:ignore") {
			t.Errorf("unused-suppression reported by a run that never exercised its analyzer: %s", d)
		}
	}
}

// TestSuppressionNeedsReason pins the driver behavior the bareDirective
// fixture depends on: a reasonless directive is itself a finding and does
// not suppress anything.
func TestSuppressionNeedsReason(t *testing.T) {
	diags, err := Run(Config{Root: filepath.Join("testdata", "src", "poolpair")}, []string{"./..."}, []*Analyzer{PoolPair})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var lintDiags, poolDiags int
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lintDiags++
		case "poolpair":
			poolDiags++
		}
	}
	if lintDiags != 1 {
		t.Errorf("want exactly 1 missing-reason finding, got %d", lintDiags)
	}
	if poolDiags < 3 {
		t.Errorf("want >=3 poolpair findings (loop drop, inconsistent release, unsuppressed bare-directive drop), got %d", poolDiags)
	}
}
