package lint

import (
	"go/ast"
	"go/token"
)

// pairing.go is the shared acquire/release tracking engine behind the
// pinbalance and poolpair analyzers. Both enforce the same shape of
// invariant — a resource obtained from an acquire call must reach a release
// call on every path, unless ownership is transferred (the resource is
// passed to another function, sent on a channel, returned, or stored) — so
// they share one intraprocedural, path-sensitive-by-heuristic tracker.
//
// Phase A follows resources from their acquire site forward: a branch that
// exits the function (or loop iteration) while the resource is live and
// unreleased is a drop. Phase B works backwards from release sites: when a
// function releases an expression on its main path, any earlier branch that
// exits without releasing or transferring it is an inconsistent-release
// drop — the classic "early return on error leaks the resource" bug.
//
// Both phases exempt branches whose condition is the error (or ok flag)
// produced by the same statement that produced the resource: by the
// project's conventions the resource is nil/untaken exactly when that
// error is non-nil, so the "leak" cannot hold anything.

// acqKind describes how an acquire call binds its resource: either the
// call's first result, or one of its arguments (a pin taken on an existing
// object).
type acqKind struct {
	fromResult bool
	argIdx     int
}

// pairSpec parameterizes the engine for one analyzer.
type pairSpec struct {
	analyzer string
	what     string // human noun for messages: "pinned chunk", "pooled buffer"
	verb     string // "unpinned" / "recycled"
	acquires map[string]acqKind
	// releases maps release-call names to the index of the argument that
	// is the resource (-1 = last argument). Phase A matches any argument;
	// phase B tracks only the designated one (releaseMap(id, pm) releases
	// pm, not id).
	releases map[string]int
	// phaseB enables the inconsistent-release pass (poolpair): resources
	// released on the main path but dropped by earlier early-exits.
	phaseB bool
}

// checkPairs runs both phases over every function unit in the file.
func checkPairs(f *File, spec *pairSpec) []Diagnostic {
	var diags []Diagnostic
	for _, u := range funcUnits(f) {
		t := &pairTracker{f: f, u: u, spec: spec}
		diags = append(diags, t.phaseA()...)
		if spec.phaseB {
			diags = append(diags, t.phaseBPass()...)
		}
	}
	return diags
}

// blockRef is one level of the statement-list stack at an acquire site:
// the list and the index of the statement the walk is positioned on.
type blockRef struct {
	list []ast.Stmt
	idx  int
}

type pairTracker struct {
	f    *File
	u    unit
	spec *pairSpec
	// flagged records resource roots phase A already diagnosed, so phase B
	// does not double-report them.
	flagged map[string]bool
}

// acqEvent is one tracked acquisition.
type acqEvent struct {
	stmt     ast.Stmt
	call     *ast.CallExpr
	res      string          // rendered resource expression ("bc", "item.pm")
	root     string          // leftmost identifier of res
	argTexts []string        // acquire-call argument texts; releases may key on these (Acquire(id) → Unpin(id))
	siblings map[string]bool // LHS identifiers of the acquire statement (err/ok flags)
}

// ── Phase A ────────────────────────────────────────────────────────────

func (t *pairTracker) phaseA() []Diagnostic {
	t.flagged = map[string]bool{}
	var diags []Diagnostic
	walkBlocks(t.u.body.List, nil, func(stack []blockRef, s ast.Stmt) {
		for _, d := range t.acquiresIn(stack, s) {
			diags = append(diags, *d)
		}
	})
	return diags
}

// walkBlocks visits every statement in the tree with the stack of statement
// lists leading to it. Nested function literals are not entered (separate
// units).
func walkBlocks(list []ast.Stmt, stack []blockRef, visit func([]blockRef, ast.Stmt)) {
	for i, s := range list {
		cur := append(append([]blockRef(nil), stack...), blockRef{list, i})
		visit(cur, s)
		switch v := s.(type) {
		case *ast.BlockStmt:
			walkBlocks(v.List, cur, visit)
		case *ast.IfStmt:
			walkBlocks(v.Body.List, cur, visit)
			if v.Else != nil {
				if blk, ok := v.Else.(*ast.BlockStmt); ok {
					walkBlocks(blk.List, cur, visit)
				} else {
					walkBlocks([]ast.Stmt{v.Else}, cur, visit)
				}
			}
		case *ast.ForStmt:
			walkBlocks(v.Body.List, cur, visit)
		case *ast.RangeStmt:
			walkBlocks(v.Body.List, cur, visit)
		case *ast.SwitchStmt:
			for _, cc := range v.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkBlocks(c.Body, cur, visit)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range v.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkBlocks(c.Body, cur, visit)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range v.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					walkBlocks(c.Body, cur, visit)
				}
			}
		case *ast.LabeledStmt:
			walkBlocks([]ast.Stmt{v.Stmt}, cur, visit)
		}
	}
}

// acquiresIn detects acquire calls bound directly by this statement and
// tracks each to a verdict. Acquires reached through other expressions
// (call arguments, returns) are ownership transfers and not tracked.
func (t *pairTracker) acquiresIn(stack []blockRef, s ast.Stmt) []*Diagnostic {
	var out []*Diagnostic
	switch v := s.(type) {
	case *ast.AssignStmt:
		if ev := t.acquireFromAssign(v, s); ev != nil {
			out = append(out, t.track(stack, ev))
		}
	case *ast.ExprStmt:
		call, ok := v.X.(*ast.CallExpr)
		if !ok {
			break
		}
		kind, isAcq := t.acquireCall(call)
		if !isAcq {
			break
		}
		if kind.fromResult {
			out = append(out, ptr(t.f.diag(t.spec.analyzer, v,
				"result of %s (a %s) is dropped on the floor — it can never be %s",
				calleeName(call), t.spec.what, t.spec.verb)))
			break
		}
		ev := t.argAcquire(call, kind, s)
		if ev != nil {
			out = append(out, t.track(stack, ev))
		}
	case *ast.IfStmt:
		// `if res := acquire(); res != nil { ... }` — the resource lives
		// only in the branch the nil-comparison selects.
		init, ok := v.Init.(*ast.AssignStmt)
		if !ok {
			break
		}
		ev := t.acquireFromAssign(init, s)
		if ev == nil {
			break
		}
		if op, isNil := isNilCompare(v.Cond, ev.res); isNil {
			if op == token.EQL {
				// then-branch is the nil path; resource lives after the if.
				out = append(out, t.track(stack, ev))
			} else {
				// resource lives only inside the body.
				out = append(out, t.track([]blockRef{{list: v.Body.List, idx: -1}}, ev))
			}
			break
		}
		// Other conditions: scan the body first, then fall out to the
		// statements after the if.
		inner := append(append([]blockRef(nil), stack...), blockRef{list: v.Body.List, idx: -1})
		out = append(out, t.track(inner, ev))
	}
	var filtered []*Diagnostic
	for _, d := range out {
		if d != nil {
			filtered = append(filtered, d)
		}
	}
	return filtered
}

func (t *pairTracker) acquireFromAssign(v *ast.AssignStmt, site ast.Stmt) *acqEvent {
	if len(v.Rhs) != 1 {
		return nil
	}
	call, ok := v.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	kind, isAcq := t.acquireCall(call)
	if !isAcq {
		return nil
	}
	if !kind.fromResult {
		return t.argAcquire(call, kind, site)
	}
	if len(v.Lhs) == 0 {
		return nil
	}
	res := exprText(v.Lhs[0])
	if res == "" || res == "_" {
		return nil
	}
	ev := &acqEvent{stmt: site, call: call, res: res, siblings: map[string]bool{}}
	if root := rootIdent(v.Lhs[0]); root != nil {
		ev.root = root.Name
	}
	for _, a := range call.Args {
		if txt := exprText(a); txt != "" {
			ev.argTexts = append(ev.argTexts, txt)
		}
	}
	for _, l := range v.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			ev.siblings[id.Name] = true
		}
	}
	return ev
}

func (t *pairTracker) argAcquire(call *ast.CallExpr, kind acqKind, site ast.Stmt) *acqEvent {
	if kind.argIdx >= len(call.Args) {
		return nil
	}
	arg := call.Args[kind.argIdx]
	res := exprText(arg)
	root := rootIdent(arg)
	if res == "" || root == nil {
		return nil
	}
	// A pin taken on a parameter is ownership handed in by the caller
	// (putPinnedWait-style wrappers return the pin to the caller).
	if t.u.params[root.Name] {
		return nil
	}
	ev := &acqEvent{stmt: site, call: call, res: res, root: root.Name, siblings: map[string]bool{}}
	if as, ok := site.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				ev.siblings[id.Name] = true
			}
		}
	}
	return ev
}

func (t *pairTracker) acquireCall(call *ast.CallExpr) (acqKind, bool) {
	k, ok := t.spec.acquires[calleeName(call)]
	return k, ok
}

func calleeName(call *ast.CallExpr) string {
	_, name := callee(call)
	return name
}

func ptr(d Diagnostic) *Diagnostic { return &d }

// track scans forward from the acquire site and returns a diagnostic if
// some path drops the resource.
func (t *pairTracker) track(stack []blockRef, ev *acqEvent) *Diagnostic {
	var partial ast.Stmt
	var branchDiag *Diagnostic
	for lv := len(stack) - 1; lv >= 0 && branchDiag == nil; lv-- {
		ref := stack[lv]
		for i := ref.idx + 1; i < len(ref.list); i++ {
			verdict, d := t.classify(ref.list[i], ev)
			switch verdict {
			case evSafe:
				return nil
			case evDiag:
				branchDiag = d
			case evPartial:
				if partial == nil {
					partial = ref.list[i]
				}
			}
			if branchDiag != nil {
				break
			}
		}
	}
	if branchDiag != nil {
		t.flag(ev)
		return branchDiag
	}
	acqLine := t.f.pos(ev.stmt).Line
	if partial != nil {
		t.flag(ev)
		return ptr(t.f.diag(t.spec.analyzer, partial,
			"%s %s (acquired at line %d) may not be %s on every path through this statement",
			t.spec.what, ev.res, acqLine, t.spec.verb))
	}
	t.flag(ev)
	return ptr(t.f.diag(t.spec.analyzer, ev.stmt,
		"%s %s is never %s in %s", t.spec.what, ev.res, t.spec.verb, t.u.name))
}

func (t *pairTracker) flag(ev *acqEvent) {
	if t.flagged != nil && ev.root != "" {
		t.flagged[ev.root] = true
	}
}

type verdict int

const (
	evNone verdict = iota
	evSafe
	evPartial
	evDiag
)

// classify decides what one statement after the acquire means for the
// resource: released/transferred (safe), dropped on a branch (diag),
// released on some branches with others falling through (partial), or
// irrelevant (none).
func (t *pairTracker) classify(s ast.Stmt, ev *acqEvent) (verdict, *Diagnostic) {
	switch v := s.(type) {
	case *ast.DeferStmt:
		if t.containsRelease(v, ev) {
			return evSafe, nil
		}
		return evNone, nil
	case *ast.ReturnStmt:
		if t.containsRelease(v, ev) || usesName(v, ev.root) {
			return evSafe, nil
		}
		return evDiag, ptr(t.f.diag(t.spec.analyzer, v,
			"%s %s (acquired at line %d) is not %s before this return",
			t.spec.what, ev.res, t.f.pos(ev.stmt).Line, t.spec.verb))
	case *ast.BranchStmt:
		if v.Tok == token.BREAK || v.Tok == token.CONTINUE || v.Tok == token.GOTO {
			return evDiag, ptr(t.f.diag(t.spec.analyzer, v,
				"%s %s (acquired at line %d) is not %s before this %s",
				t.spec.what, ev.res, t.f.pos(ev.stmt).Line, t.spec.verb, v.Tok))
		}
		return evNone, nil
	case *ast.IfStmt:
		return t.classifyIf(v, ev)
	case *ast.ForStmt:
		return t.classifyLoop(v.Body, ev)
	case *ast.RangeStmt:
		return t.classifyLoop(v.Body, ev)
	case *ast.SwitchStmt:
		return t.classifyBranches(t.caseBranches(v.Body), ev, false)
	case *ast.TypeSwitchStmt:
		return t.classifyBranches(t.caseBranches(v.Body), ev, false)
	case *ast.SelectStmt:
		var branches []ast.Node
		for _, cc := range v.Body.List {
			branches = append(branches, cc)
		}
		// A select blocks until one case runs: branches are exhaustive.
		return t.classifyBranches(branches, ev, true)
	case *ast.BlockStmt, *ast.LabeledStmt:
		// Treated as a single branch that always runs.
		if t.containsRelease(s, ev) {
			return evSafe, nil
		}
		if t.escapes(s, ev) {
			return evSafe, nil
		}
		if exit := firstExitScoped(s); exit != nil {
			return evDiag, t.dropDiag(exit, ev)
		}
		return evNone, nil
	default:
		// Simple statements: expression, send, assign, go, decl, incdec.
		if t.containsRelease(s, ev) {
			return evSafe, nil
		}
		if t.escapes(s, ev) {
			return evSafe, nil
		}
		return evNone, nil
	}
}

func (t *pairTracker) caseBranches(body *ast.BlockStmt) []ast.Node {
	var branches []ast.Node
	for _, cc := range body.List {
		branches = append(branches, cc)
	}
	return branches
}

func (t *pairTracker) classifyIf(v *ast.IfStmt, ev *acqEvent) (verdict, *Diagnostic) {
	// An Unpin in the if-init runs unconditionally: `if err := Unpin(id);
	// werr == nil { ... }` releases on every path through this statement.
	if v.Init != nil && t.containsRelease(v.Init, ev) {
		return evSafe, nil
	}
	// An if-init that hands the resource to another function transfers
	// ownership unconditionally: `if err := bc.SetColumn(col, v); ...`.
	if v.Init != nil && t.escapes(v.Init, ev) {
		return evSafe, nil
	}
	if v.Cond != nil && t.containsReleaseExpr(v.Cond, ev) {
		return evSafe, nil
	}
	// Nil guards: the resource exists only on one side of the comparison.
	if op, ok := t.nilGuard(v.Cond, ev); ok {
		live := v.Else // res != nil → live branch is Body; res == nil → Else
		if op == token.NEQ {
			live = v.Body
		}
		if live == nil {
			return evNone, nil
		}
		if t.containsRelease(live, ev) || t.escapes(live, ev) {
			return evSafe, nil
		}
		if exit := firstExitScoped(live); exit != nil {
			return evDiag, t.dropDiag(exit, ev)
		}
		return evNone, nil
	}
	// Error-flag exemption: a branch on the err/ok produced by the same
	// statement that produced the resource — the resource is nil/untaken
	// exactly when the branch is taken, so it cannot leak there.
	if t.condExempt(v.Cond, v.Init, ev) {
		return evNone, nil
	}
	branches := []ast.Node{v.Body}
	hasElse := false
	for e := v.Else; e != nil; {
		hasElse = true
		if ei, ok := e.(*ast.IfStmt); ok {
			branches = append(branches, ei.Body)
			e = ei.Else
			continue
		}
		branches = append(branches, e)
		break
	}
	verd, d := t.classifyBranches(branches, ev, hasElse)
	return verd, d
}

// classifyLoop treats a loop body as a may-run branch: a release inside is
// partial (zero iterations are possible), an unreleased exit is a drop.
func (t *pairTracker) classifyLoop(body *ast.BlockStmt, ev *acqEvent) (verdict, *Diagnostic) {
	rel := t.containsRelease(body, ev)
	esc := t.escapes(body, ev)
	if !rel && !esc {
		if exit := firstReturnScoped(body); exit != nil {
			return evDiag, t.dropDiag(exit, ev)
		}
		return evNone, nil
	}
	return evPartial, nil
}

// classifyBranches analyzes the arms of an if/switch/select. exhaustive
// means the arms cover every path (an else exists, or it is a select).
func (t *pairTracker) classifyBranches(branches []ast.Node, ev *acqEvent, exhaustive bool) (verdict, *Diagnostic) {
	resolved, unresolved := 0, 0
	for _, b := range branches {
		rel := t.containsRelease(b, ev)
		esc := t.escapes(b, ev)
		if rel || esc {
			resolved++
			continue
		}
		if t.branchExempt(b, ev) {
			continue
		}
		if exit := firstExitScoped(b); exit != nil {
			return evDiag, t.dropDiag(exit, ev)
		}
		unresolved++
	}
	switch {
	case resolved > 0 && unresolved == 0 && exhaustive:
		return evSafe, nil
	case resolved > 0:
		return evPartial, nil
	default:
		return evNone, nil
	}
}

// branchExempt reports whether a case-clause branch is guarded by the
// resource's own nil-ness (CaseClause with res == nil style exprs).
func (t *pairTracker) branchExempt(b ast.Node, ev *acqEvent) bool {
	cc, ok := b.(*ast.CaseClause)
	if !ok {
		return false
	}
	for _, e := range cc.List {
		if _, isNil := isNilCompare(e, ev.res); isNil {
			return true
		}
	}
	return false
}

// nilGuard recognizes res == nil / res != nil conditions (also matching on
// the resource's root identifier).
func (t *pairTracker) nilGuard(cond ast.Expr, ev *acqEvent) (token.Token, bool) {
	if cond == nil {
		return 0, false
	}
	if op, ok := isNilCompare(cond, ev.res); ok {
		return op, true
	}
	if ev.root != "" && ev.root != ev.res {
		if op, ok := isNilCompare(cond, ev.root); ok {
			return op, true
		}
	}
	return 0, false
}

// condExempt implements the error-flag exemption: the condition mentions an
// identifier whose most recent assignment before this statement either is
// the acquire statement itself or also assigns the resource — the branch
// fires exactly when the resource was never produced.
func (t *pairTracker) condExempt(cond ast.Expr, init ast.Stmt, ev *acqEvent) bool {
	if cond == nil {
		return false
	}
	pos := cond.Pos()
	if init != nil {
		// `if err := f(); err != nil` — cond idents assigned in the init
		// have nothing to do with the acquire; no exemption from them.
		pos = init.Pos()
	}
	for name := range condIdents(cond) {
		if !ev.siblings[name] {
			continue
		}
		if t.exemptionHolds(name, pos, ev) {
			return true
		}
	}
	return false
}

// exemptionHolds checks that the flag's latest assignment before pos is
// tied to the resource's production (reassigned flags lose the exemption).
func (t *pairTracker) exemptionHolds(name string, pos token.Pos, ev *acqEvent) bool {
	var last *ast.AssignStmt
	ast.Inspect(t.u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == name {
				if last == nil || as.Pos() > last.Pos() {
					last = as
				}
			}
		}
		return true
	})
	if last == nil {
		return true // only the acquire statement assigns it
	}
	if last == ev.stmt {
		return true
	}
	if as, ok := ev.stmt.(*ast.IfStmt); ok && as.Init == last {
		return true
	}
	// The latest assignment must also produce the resource.
	for _, l := range last.Lhs {
		if exprText(l) == ev.res || (ev.root != "" && exprText(l) == ev.root) {
			return true
		}
	}
	return false
}

func (t *pairTracker) dropDiag(exit ast.Stmt, ev *acqEvent) *Diagnostic {
	what := "exit"
	switch e := exit.(type) {
	case *ast.ReturnStmt:
		what = "return"
	case *ast.BranchStmt:
		what = e.Tok.String()
	}
	return ptr(t.f.diag(t.spec.analyzer, exit,
		"%s %s (acquired at line %d) is not %s (and not transferred) before this %s",
		t.spec.what, ev.res, t.f.pos(ev.stmt).Line, t.spec.verb, what))
}

// ── shared matching ────────────────────────────────────────────────────

// containsRelease reports whether the subtree holds a release call whose
// argument matches the resource (by full text, root identifier, or one of
// the acquire call's own arguments — Acquire(id) pairs with Unpin(id)).
func (t *pairTracker) containsRelease(n ast.Node, ev *acqEvent) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t.releaseMatches(call, ev) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (t *pairTracker) containsReleaseExpr(e ast.Expr, ev *acqEvent) bool {
	return t.containsRelease(e, ev)
}

func (t *pairTracker) releaseMatches(call *ast.CallExpr, ev *acqEvent) bool {
	if _, ok := t.spec.releases[calleeName(call)]; !ok {
		return false
	}
	for _, a := range call.Args {
		txt := exprText(a)
		if txt != "" && (txt == ev.res || txt == ev.root) {
			return true
		}
		if r := rootIdent(a); r != nil && ev.root != "" && r.Name == ev.root {
			return true
		}
		for _, at := range ev.argTexts {
			if txt != "" && txt == at {
				return true
			}
		}
	}
	return false
}

// escapes reports whether the subtree transfers ownership of the resource:
// passed as a call argument (to a non-release function), sent on a channel,
// returned, or stored through an assignment's right-hand side. Function
// literals are included — a closure capturing the resource owns it.
func (t *pairTracker) escapes(n ast.Node, ev *acqEvent) bool {
	if ev.root == "" {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.CallExpr:
			if t.releaseMatches(v, ev) {
				return false
			}
			// Builtins don't take ownership (append/len over the resource's
			// own fields is bookkeeping, not transfer).
			if _, name := callee(v); builtinFuncs[name] {
				return true
			}
			for _, a := range v.Args {
				if usesName(a, ev.root) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesName(v.Chan, ev.root) || usesName(v.Value, ev.root) {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if usesName(r, ev.root) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			if m == ev.stmt {
				return true
			}
			// Writes INTO the resource (m.Starts = append(m.Starts, x))
			// mutate it in place; nothing changes hands.
			for _, l := range v.Lhs {
				if usesName(l, ev.root) {
					return false
				}
			}
			for _, r := range v.Rhs {
				if usesName(r, ev.root) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// firstExitScoped finds the first statement that exits the resource's
// scope: a return anywhere (outside nested function literals), or a
// break/continue not bound to a loop inside the subtree itself.
func firstExitScoped(n ast.Node) ast.Stmt {
	return findExit(n, true)
}

// firstReturnScoped finds only returns — used for loop bodies, where
// break/continue stay within the loop the resource belongs to.
func firstReturnScoped(n ast.Node) ast.Stmt {
	return findExit(n, false)
}

func findExit(n ast.Node, branchExits bool) ast.Stmt {
	var exit ast.Stmt
	// loopDepth counts for/range statements inside the subtree (break and
	// continue bind to them); switchDepth counts switch/select statements
	// (only break binds to those — continue passes through to the loop the
	// resource's scope lives in).
	var walk func(m ast.Node, loopDepth, switchDepth int)
	walk = func(m ast.Node, loopDepth, switchDepth int) {
		if m == nil || exit != nil {
			return
		}
		switch v := m.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exit = v
			return
		case *ast.BranchStmt:
			if !branchExits {
				return
			}
			switch v.Tok {
			case token.BREAK:
				if loopDepth == 0 && switchDepth == 0 {
					exit = v
				}
			case token.CONTINUE:
				if loopDepth == 0 {
					exit = v
				}
			case token.GOTO:
				exit = v
			}
			return
		case *ast.ForStmt:
			walk(v.Body, loopDepth+1, switchDepth)
			return
		case *ast.RangeStmt:
			walk(v.Body, loopDepth+1, switchDepth)
			return
		case *ast.SwitchStmt:
			walk(v.Body, loopDepth, switchDepth+1)
			return
		case *ast.TypeSwitchStmt:
			walk(v.Body, loopDepth, switchDepth+1)
			return
		case *ast.SelectStmt:
			walk(v.Body, loopDepth, switchDepth+1)
			return
		}
		// Generic: recurse into direct children with the same depths.
		ast.Inspect(m, func(k ast.Node) bool {
			if exit != nil || k == nil {
				return false
			}
			if k == m {
				return true
			}
			walk(k, loopDepth, switchDepth)
			return false
		})
	}
	walk(n, 0, 0)
	return exit
}

// ── Phase B: inconsistent release ──────────────────────────────────────

// phaseBPass works backwards from release sites: a resource the unit
// releases on its main path must not be dropped by an earlier branch that
// exits the function. Resources whose releases are deferred, or that phase
// A already diagnosed, are skipped.
func (t *pairTracker) phaseBPass() []Diagnostic {
	type anchorInfo struct {
		res      string    // designated release argument text ("item.pm")
		lastPos  token.Pos // last release/transfer of the root
		firstUse token.Pos
		deferred bool
	}
	roots := map[string]*anchorInfo{}

	// Collect release calls (and whether any is deferred) per resource
	// root, tracking only the designated resource argument — releaseMap(id,
	// pm) releases pm, not id.
	inDefer := map[ast.Node]bool{}
	inspectNoFuncLit(t.u.body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(k ast.Node) bool {
				if c, ok := k.(*ast.CallExpr); ok {
					inDefer[c] = true
				}
				return true
			})
		}
		return true
	})
	// Deferred closures release too: include calls inside defer func(){...}.
	ast.Inspect(t.u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		argIdx, isRel := t.spec.releases[calleeName(call)]
		if !isRel || len(call.Args) == 0 {
			return true
		}
		if argIdx < 0 || argIdx >= len(call.Args) {
			argIdx = len(call.Args) - 1
		}
		arg := call.Args[argIdx]
		r := rootIdent(arg)
		if r == nil {
			return true
		}
		info := roots[r.Name]
		if info == nil {
			info = &anchorInfo{res: exprText(arg)}
			roots[r.Name] = info
		}
		if inDefer[call] {
			info.deferred = true
		}
		if call.End() > info.lastPos {
			info.lastPos = call.End()
		}
		return true
	})

	var diags []Diagnostic
	for root, info := range roots {
		if info.deferred || t.flagged[root] {
			continue
		}
		ev := &acqEvent{res: info.res, root: root}
		// Extend the anchor past the last ownership transfer of the root:
		// early exits between first use and the last point the unit still
		// owns the resource are the suspect region. Only simple statements
		// anchor — a compound (or the body block itself) ends long after
		// the transfer inside it happens.
		inspectNoFuncLit(t.u.body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ExprStmt, *ast.SendStmt, *ast.AssignStmt, *ast.GoStmt,
				*ast.DeferStmt, *ast.ReturnStmt, *ast.DeclStmt:
			default:
				return true
			}
			if t.escapes(n, ev) && n.End() > info.lastPos {
				info.lastPos = n.End()
			}
			return true
		})
		// First use of the root (its binding or first mention). A parameter
		// is owned from the top of the body. Compound statements don't
		// count — a mention deep inside one must not pull the region start
		// before the binding.
		if t.u.params[root] {
			info.firstUse = t.u.body.Pos()
		}
		inspectNoFuncLit(t.u.body, func(n ast.Node) bool {
			if info.firstUse != token.NoPos {
				return false
			}
			switch v := n.(type) {
			case *ast.ExprStmt, *ast.SendStmt, *ast.AssignStmt, *ast.GoStmt,
				*ast.DeferStmt, *ast.ReturnStmt, *ast.DeclStmt:
				if usesName(n, root) {
					info.firstUse = n.Pos()
				}
			case *ast.RangeStmt:
				// `for item := range ch` binds the root for the loop body.
				if usesName(v.Key, root) || usesName(v.Value, root) {
					info.firstUse = n.Pos()
				}
			}
			return true
		})
		if info.firstUse == token.NoPos {
			info.firstUse = t.u.body.Pos()
		}
		diags = append(diags, t.phaseBRegion(ev, info.firstUse, info.lastPos)...)
	}
	return diags
}

// phaseBRegion flags compounds between the first use and the release
// anchor that exit the function while the resource is owned and unreleased.
func (t *pairTracker) phaseBRegion(ev *acqEvent, firstUse, anchor token.Pos) []Diagnostic {
	var diags []Diagnostic
	var flaggedRanges [][2]token.Pos
	nested := func(n ast.Node) bool {
		for _, r := range flaggedRanges {
			if n.Pos() >= r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}
	inspectNoFuncLit(t.u.body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
		default:
			return true
		}
		if n.Pos() < firstUse || n.End() > anchor || nested(n) {
			return true
		}
		if t.containsRelease(n, ev) || t.escapes(n, ev) {
			return true
		}
		if v, ok := n.(*ast.IfStmt); ok {
			if _, isNil := t.nilGuard(v.Cond, ev); isNil {
				return true
			}
			if t.phaseBCondExempt(v, ev) {
				return true
			}
		}
		exit := firstExitScoped(n)
		if exit == nil {
			return true
		}
		flaggedRanges = append(flaggedRanges, [2]token.Pos{n.Pos(), n.End()})
		diags = append(diags, *ptr(t.f.diag(t.spec.analyzer, exit,
			"%s %s is %s later in %s but not on this early-exit path",
			t.spec.what, ev.res, t.spec.verb, t.u.name)))
		return false
	})
	return diags
}

// phaseBCondExempt mirrors the error-flag exemption: the if's condition
// branches on a flag whose latest assignment before the if also produced
// the resource (same-statement err/ok convention).
func (t *pairTracker) phaseBCondExempt(v *ast.IfStmt, ev *acqEvent) bool {
	if v.Cond == nil {
		return false
	}
	if v.Init != nil {
		// `if err := f(x); err != nil` where f does not take the resource:
		// unrelated guard; only exempt when f consumed nothing of ours —
		// handled by the escape check in the caller already.
		return false
	}
	pos := v.Pos()
	for name := range condIdents(v.Cond) {
		var last *ast.AssignStmt
		ast.Inspect(t.u.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() >= pos {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name == name {
					if last == nil || as.Pos() > last.Pos() {
						last = as
					}
				}
			}
			return true
		})
		if last == nil {
			continue
		}
		for _, l := range last.Lhs {
			if exprText(l) == ev.res || exprText(l) == ev.root {
				return true
			}
		}
	}
	return false
}
