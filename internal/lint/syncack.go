package lint

import (
	"go/ast"
	"go/token"
)

// SyncAck enforces the fsync-before-ack rule of the durable layer (DESIGN
// §10): a function in internal/store that writes bytes and then returns a
// nil error has acknowledged durability, so a sync must sit between the last
// write and that `return nil`. It also guards the temp+fsync+rename
// discipline itself: `os.WriteFile` and `os.Create` drop files into managed
// directories without the atomic-replace dance, so any use of them in the
// storage package is a finding (os.CreateTemp + rename via writeFile is the
// blessed path).
//
// The pass is positional and per-function: for each `return ..., nil` it
// finds the latest write-class call before the return and requires a
// sync-class call between the two. Functions whose last result is not an
// error are exempt — they cannot ack anything. The check is deliberately
// path-insensitive: a write on any branch before an unconditional nil return
// still demands a sync, which is the conservative direction for durability.
var SyncAck = &Analyzer{
	Name: "syncack",
	Doc:  "no nil-error return after a write without an fsync between; no os.WriteFile/os.Create in managed dirs",
	Dirs: []string{"internal/store"},
	Run:  runSyncAck,
}

// writeCalls mutate file bytes or directory entries; each demands a sync
// before the function acks with a nil error.
var writeCalls = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"Truncate":    true,
	"Rename":      true,
}

// syncCalls make preceding writes durable. writeFile and WriteBlob are the
// package's own temp+fsync+rename writers and count as synced in one step.
var syncCalls = map[string]bool{
	"Sync":      true,
	"syncDir":   true,
	"writeFile": true,
	"WriteBlob": true,
}

// bypassCalls write into directories without the temp+fsync+rename dance.
var bypassCalls = map[string]bool{
	"WriteFile": true,
	"Create":    true,
}

func runSyncAck(f *File) []Diagnostic {
	var diags []Diagnostic
	for _, u := range funcUnits(f) {
		diags = append(diags, syncAckUnit(f, u)...)
	}
	return diags
}

func syncAckUnit(f *File, u unit) []Diagnostic {
	var diags []Diagnostic

	var writes, syncs []token.Pos
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := callee(call)
		if recv == "os" && bypassCalls[name] {
			diags = append(diags, f.diag("syncack", call,
				"os.%s bypasses temp+fsync+rename — write through writeFile/os.CreateTemp so a crash never leaves a torn file", name))
			return true
		}
		// writeFile(...) also renames, but it syncs internally; classify it
		// (and any sync-class call) before the write classes.
		switch {
		case syncCalls[name]:
			syncs = append(syncs, call.End())
		case writeCalls[name] && recv != "":
			writes = append(writes, call.End())
		}
		return true
	})
	if len(writes) == 0 {
		return diags
	}
	if !returnsError(u) {
		return diags
	}

	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		last, ok := ret.Results[len(ret.Results)-1].(*ast.Ident)
		if !ok || last.Name != "nil" {
			return true
		}
		// Latest write preceding this return; nothing to prove if none.
		var lastWrite token.Pos
		for _, w := range writes {
			if w < ret.Pos() && w > lastWrite {
				lastWrite = w
			}
		}
		if lastWrite == token.NoPos {
			return true
		}
		for _, s := range syncs {
			if s > lastWrite && s < ret.Pos() {
				return true
			}
		}
		diags = append(diags, f.diag("syncack", ret,
			"nil error returned after a write with no Sync/syncDir between — the ack races the page cache (fsync-before-ack, DESIGN §10)"))
		return true
	})
	return diags
}

// returnsError reports whether the unit's final result is the error type.
func returnsError(u unit) bool {
	var ft *ast.FuncType
	switch v := u.node.(type) {
	case *ast.FuncDecl:
		ft = v.Type
	case *ast.FuncLit:
		ft = v.Type
	}
	if ft == nil || ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	lastField := ft.Results.List[len(ft.Results.List)-1]
	id, ok := lastField.Type.(*ast.Ident)
	return ok && id.Name == "error"
}
