package lint

import (
	"go/ast"
	"go/token"
)

// DecodeGuard is the compile-time form of the PR 7 fuzz finding: a
// count or length decoded from wire or log bytes reached make() unchecked
// and asked for 67TB. Any integer produced by a raw varint/fixed-width
// decode (`uvar`/`ivar` decoder methods, binary.Uvarint/Varint,
// binary.LittleEndian/BigEndian.UintN) is tainted; passing it — directly or
// through a pure conversion chain — to make() or to an append capacity is a
// finding unless a bounds comparison on the same variable sits between the
// decode and the allocation, or the use site itself clamps it with min().
//
// The blessed route is the decoders' own `count(limit, what)` helper, which
// bounds and fails in one step; its results are untainted. Taint tracking is
// per-function and positional — assignment-based with no aliasing — which
// matches how every codec in store/cluster/dbstore/engine is written
// (straight-line decode loops over a byte slice).
var DecodeGuard = &Analyzer{
	Name: "decodeguard",
	Doc:  "wire/log-decoded counts must pass a bounds check before reaching make/append capacity",
	Dirs: []string{"internal/store", "internal/dbstore", "internal/cluster", "internal/engine"},
	Run:  runDecodeGuard,
}

// taintSources are the raw decode entry points, keyed by callee name. The
// value is the index of the tainted result in a multi-assign (Uvarint and
// Varint return (value, n); only the value is a wire-controlled count).
var taintSources = map[string]int{
	"uvar":    0,
	"ivar":    0,
	"Uvarint": 0,
	"Varint":  0,
	"Uint16":  0,
	"Uint32":  0,
	"Uint64":  0,
}

func runDecodeGuard(f *File) []Diagnostic {
	var diags []Diagnostic
	for _, u := range funcUnits(f) {
		diags = append(diags, decodeGuardUnit(f, u)...)
	}
	return diags
}

// taintedVar records where a variable last received a raw decoded value.
type taintedVar struct {
	id  *ast.Ident
	pos token.Pos
}

func decodeGuardUnit(f *File, u unit) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: taint assignments and guard positions.
	taints := map[string]taintedVar{}
	var guards []struct {
		name string
		pos  token.Pos
	}
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Rhs) == 1 {
				if idx, ok := taintResult(v.Rhs[0]); ok && idx < len(v.Lhs) {
					if id, isID := v.Lhs[idx].(*ast.Ident); isID && id.Name != "_" {
						taints[id.Name] = taintedVar{id: id, pos: v.End()}
					}
				}
			}
			// A plain reassignment from an untainted source clears the
			// variable (e.g. n = len(buf) after the decode).
			if len(v.Rhs) == len(v.Lhs) {
				for i, lhs := range v.Lhs {
					id, isID := lhs.(*ast.Ident)
					if !isID {
						continue
					}
					if _, tainted := taintResult(v.Rhs[i]); !tainted {
						if tv, ok := taints[id.Name]; ok && v.Pos() > tv.pos {
							delete(taints, id.Name)
						}
					}
				}
			}
		case *ast.IfStmt:
			for name := range boundComparisons(v.Cond) {
				guards = append(guards, struct {
					name string
					pos  token.Pos
				}{name, v.Cond.Pos()})
			}
		case *ast.ForStmt:
			for name := range boundComparisons(v.Cond) {
				guards = append(guards, struct {
					name string
					pos  token.Pos
				}{name, v.Cond.Pos()})
			}
		}
		return true
	})
	if len(taints) == 0 {
		return nil
	}

	guarded := func(name string, taintPos, usePos token.Pos) bool {
		for _, g := range guards {
			if g.name == name && g.pos > taintPos && g.pos < usePos {
				return true
			}
		}
		return false
	}

	// Pass 2: allocation sinks.
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := callee(call)
		var sizeArgs []ast.Expr
		switch {
		case recv == "" && name == "make" && len(call.Args) > 1:
			sizeArgs = call.Args[1:]
		case recv == "" && name == "append" && len(call.Args) > 1:
			// append itself cannot over-allocate from a count; the risky
			// shape is make-then-append, covered by the make case.
			return true
		default:
			return true
		}
		for _, arg := range sizeArgs {
			id := conversionRoot(arg)
			if id == nil {
				continue
			}
			tv, tainted := taints[id.Name]
			if !tainted || id.Pos() < tv.pos {
				continue
			}
			if guarded(id.Name, tv.pos, call.Pos()) {
				continue
			}
			diags = append(diags, f.diag("decodeguard", call,
				"decoded count %q reaches make() without a bounds check — a hostile length allocates unbounded memory (use the count() helper or guard it first)", id.Name))
		}
		return true
	})
	return diags
}

// taintResult reports whether the expression yields a raw decoded integer
// and which result index carries it. Pure conversions (int(...), uint32(...))
// propagate taint.
func taintResult(e ast.Expr) (idx int, ok bool) {
	switch v := e.(type) {
	case *ast.CallExpr:
		recv, name := callee(v)
		// min/max clamp at the source; a clamped value is bounded.
		if recv == "" && (name == "min" || name == "max") {
			return 0, false
		}
		if idx, ok := taintSources[name]; ok {
			return idx, true
		}
		// Conversion wrapper like int(d.uvar()) — a call with one arg whose
		// fun is a bare type-ish identifier.
		if id, isID := v.Fun.(*ast.Ident); isID && len(v.Args) == 1 && builtinConvs[id.Name] {
			if _, inner := taintResult(v.Args[0]); inner {
				return 0, true
			}
		}
	case *ast.ParenExpr:
		return taintResult(v.X)
	}
	return 0, false
}

var builtinConvs = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true,
}

// conversionRoot unwraps conversion/paren layers around an identifier, or
// returns nil when the expression is anything more complex. min(n, k) counts
// as clamped, so it unwraps to nil.
func conversionRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			id, isID := v.Fun.(*ast.Ident)
			if !isID || len(v.Args) != 1 || !builtinConvs[id.Name] {
				return nil
			}
			e = v.Args[0]
		default:
			return nil
		}
	}
}

// boundComparisons returns the identifier names compared against something
// with a relational operator anywhere in the condition.
func boundComparisons(cond ast.Expr) map[string]bool {
	names := map[string]bool{}
	if cond == nil {
		return names
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				if id := conversionRoot(side); id != nil {
					names[id.Name] = true
				}
			}
		}
		return true
	})
	return names
}
