package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// builtinFuncs are calls that never take ownership of their arguments:
// append/len over a resource's own fields is bookkeeping, not transfer.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "copy": true,
	"delete": true, "len": true, "make": true, "max": true,
	"min": true, "new": true, "panic": true, "print": true,
	"println": true, "recover": true,
}

// exprText renders a compact dotted form of an expression: identifiers and
// selector chains come out as written ("o.cache.Unpin"), indexing and calls
// collapse to their base. Unrenderable shapes yield "".
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprText(v.X)
		if base == "" {
			return v.Sel.Name
		}
		return base + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.StarExpr:
		return exprText(v.X)
	case *ast.UnaryExpr:
		return exprText(v.X)
	case *ast.IndexExpr:
		return exprText(v.X)
	case *ast.TypeAssertExpr:
		return exprText(v.X)
	case *ast.CallExpr:
		return exprText(v.Fun) + "()"
	}
	return ""
}

// callee splits a call into the receiver/package chain and the bare method
// or function name ("o.cache", "Unpin").
func callee(call *ast.CallExpr) (recv, name string) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return "", f.Name
	case *ast.SelectorExpr:
		return exprText(f.X), f.Sel.Name
	case *ast.ParenExpr:
		return callee(&ast.CallExpr{Fun: f.X})
	}
	return "", ""
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// unit is one function body under analysis: a declaration or a function
// literal, with its parameter names (receiver included).
type unit struct {
	name   string
	node   ast.Node
	body   *ast.BlockStmt
	params map[string]bool
}

// funcUnits collects every function body in the file — declarations and
// literals alike — as independent analysis units. Literals are reported
// under the enclosing declaration's name.
func funcUnits(f *File) []unit {
	var units []unit
	collectParams := func(ft *ast.FuncType, recv *ast.FieldList) map[string]bool {
		params := map[string]bool{}
		addList := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				for _, n := range field.Names {
					params[n.Name] = true
				}
			}
		}
		addList(recv)
		addList(ft.Params)
		addList(ft.Results)
		return params
	}
	for _, decl := range f.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, unit{
			name:   fd.Name.Name,
			node:   fd,
			body:   fd.Body,
			params: collectParams(fd.Type, fd.Recv),
		})
		outer := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				units = append(units, unit{
					name:   fmt.Sprintf("%s (func literal at line %d)", outer, f.Fset.Position(fl.Pos()).Line),
					node:   fl,
					body:   fl.Body,
					params: collectParams(fl.Type, nil),
				})
			}
			return true
		})
	}
	return units
}

// inspectNoFuncLit walks the subtree like ast.Inspect but does not descend
// into nested function literals (they are separate units).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// usesName reports whether the subtree references the identifier name
// outside of struct-field selectors (x.name does not count; name.x does).
func usesName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.SelectorExpr:
			// Only the base expression can reference the variable; the
			// selector name itself is a field/method.
			ast.Inspect(v.X, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			return false
		case *ast.Ident:
			if v.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// condIdents returns the identifier names appearing in an expression.
func condIdents(e ast.Expr) map[string]bool {
	ids := map[string]bool{}
	if e == nil {
		return ids
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids[id.Name] = true
		}
		return true
	})
	return ids
}

// firstExit returns the first return or break/continue/goto statement in
// the subtree, skipping nested function literals, or nil.
func firstExit(n ast.Node) (exit ast.Stmt) {
	inspectNoFuncLit(n, func(m ast.Node) bool {
		if exit != nil {
			return false
		}
		switch s := m.(type) {
		case *ast.ReturnStmt:
			exit = s
			return false
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO {
				exit = s
			}
			return false
		}
		return true
	})
	return exit
}

// isNilCompare recognizes `x == nil` / `x != nil` conditions against the
// given resource name and returns the comparison token.
func isNilCompare(cond ast.Expr, res string) (tok token.Token, ok bool) {
	be, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	match := func(e ast.Expr) bool { return exprText(e) == res }
	if (isNil(be.X) && match(be.Y)) || (isNil(be.Y) && match(be.X)) {
		return be.Op, true
	}
	return 0, false
}

func (f *File) pos(n ast.Node) token.Position { return f.Fset.Position(n.Pos()) }

func (f *File) diag(analyzer string, n ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: f.pos(n), Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}
