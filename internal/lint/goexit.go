package lint

import (
	"go/ast"
	"go/token"
)

// GoExit enforces goroutine termination in the pipeline and server
// packages: every `go func() { ... }` literal must either observe a
// termination signal — a channel receive, a select, a ctx.Done() call, a
// WaitGroup Wait — or be provably finite. A goroutine that loops forever
// with no way to hear "stop" outlives its query and leaks a worker; the
// leak checker catches it at test time, this analyzer catches it at lint
// time. Named-function `go` statements are not checked (their bodies are
// analyzed when the function itself is spawned with a literal, and the
// project's long-lived stage loops all terminate by channel close).
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "go func literals must select on a done channel / ctx.Done() or be provably finite",
	Dirs: []string{"internal/scanraw", "internal/server"},
	Run:  runGoExit,
}

func runGoExit(f *File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f.File, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		diags = append(diags, checkGoLit(f, lit)...)
		return true
	})
	return diags
}

// checkGoLit flags loops in the literal that can never terminate: an
// unconditional `for { ... }` whose body has no receive, select, return,
// break, goto or panic, and conditional/range loops only when the whole
// literal lacks any termination signal.
func checkGoLit(f *File, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	signal := hasTerminationSignal(lit.Body)
	inspectNoFuncLit(lit.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond == nil {
			if !loopCanExit(loop.Body) {
				diags = append(diags, f.diag("goexit", loop,
					"goroutine loops forever with no receive, select, return or break — it can never hear a done signal"))
			}
			return true
		}
		if !signal && !hasTerminationSignal(loop.Body) {
			diags = append(diags, f.diag("goexit", loop,
				"goroutine loop has no termination signal — select on a done channel or ctx.Done(), or bound the loop"))
		}
		return true
	})
	return diags
}

// hasTerminationSignal reports whether the subtree contains something that
// lets the goroutine observe shutdown or finish naturally: a channel
// receive, a select, ctx.Done(), a WaitGroup Wait, or a range loop (which
// ends when its producer closes or its collection is exhausted).
func hasTerminationSignal(n ast.Node) bool {
	found := false
	inspectNoFuncLit(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			found = true
		case *ast.CallExpr:
			if _, name := callee(v); name == "Done" || name == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopCanExit reports whether a `for {}` body contains any construct that
// can leave the loop or block on a signal.
func loopCanExit(body *ast.BlockStmt) bool {
	can := false
	inspectNoFuncLit(body, func(m ast.Node) bool {
		if can {
			return false
		}
		switch v := m.(type) {
		case *ast.ReturnStmt, *ast.SelectStmt:
			can = true
		case *ast.BranchStmt:
			if v.Tok == token.BREAK || v.Tok == token.GOTO {
				can = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				can = true
			}
		case *ast.CallExpr:
			if _, name := callee(v); name == "panic" || name == "Wait" {
				can = true
			}
		}
		return !can
	})
	return can
}
