package lint

// PoolPair enforces the vector/positional-map pooling discipline: buffers
// taken from the shared pools (chunk.GetVector, chunk.GetPositionalMap,
// the operator's tokenizeChunk wrapper, which returns a pooled map, and
// the fused kernels' getVectors batch acquire) must reach a recycle call
// (PutVector, PutPositionalMap, releaseMap, putVectors) or have their
// ownership transferred. The classic violation is an early
// error return between acquire and recycle: the buffer is garbage
// collected instead of reused, silently eroding the pool's allocation
// savings on exactly the paths tests rarely cover. The inconsistent-
// release pass (phase B) specifically hunts that shape: a buffer recycled
// on the main path but dropped by an earlier early exit.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled vectors and positional maps must reach a recycle call on all paths",
	Run: func(f *File) []Diagnostic {
		return checkPairs(f, poolSpec)
	},
}

var poolSpec = &pairSpec{
	analyzer: "poolpair",
	what:     "pooled buffer",
	verb:     "recycled",
	acquires: map[string]acqKind{
		"GetVector":        {fromResult: true},
		"GetPositionalMap": {fromResult: true},
		"tokenizeChunk":    {fromResult: true},
		"parseColumn":      {fromResult: true},
		"getVectors":       {fromResult: true},
	},
	releases: map[string]int{
		"PutVector":        0,
		"PutPositionalMap": 0,
		"releaseMap":       1,
		"putVectors":       0,
	},
	phaseB: true,
}
