// Package lint is scanraw's project-specific static-analysis suite: the
// concurrency and resource-lifecycle invariants the pipeline depends on —
// cache pin/unpin balance, vector-pool recycle discipline, goroutine
// termination, context propagation, and lock/channel ordering — are not
// visible to `go vet` or the race detector (a race-free double-unpin is
// still a corruption; a leaked reader goroutine is still a capacity leak),
// so they are enforced mechanically here and wired into `make check`.
//
// The driver is stdlib-only (go/parser + go/ast + go/types): packages are
// parsed from source, type-checked best-effort with a stub importer (local
// identifier resolution is what the analyzers consume; cross-package types
// are not required), and each analyzer walks the AST per file.
//
// False positives are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: a bare directive is itself a diagnostic, so every suppression
// in the tree documents why the invariant holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is the per-file analysis input handed to analyzers.
type File struct {
	Fset *token.FileSet
	File *ast.File
	Path string
	// Pkg is the slash-separated package directory relative to the module
	// root (e.g. "internal/scanraw"); package-scoped analyzers match on it.
	Pkg string
	// Info carries best-effort type-checker results. Imports resolve to
	// stub packages, so cross-package types are invalid — analyzers use
	// Info only for local identifier/object resolution and must degrade to
	// name matching when an object is missing.
	Info *types.Info
}

// objectOf resolves an identifier to its declared object, or nil when the
// best-effort checker could not.
func (f *File) objectOf(id *ast.Ident) types.Object {
	if f.Info == nil || id == nil {
		return nil
	}
	return f.Info.ObjectOf(id)
}

// sameIdent reports whether two identifiers denote the same variable,
// preferring type-checker objects and falling back to name equality.
func (f *File) sameIdent(a, b *ast.Ident) bool {
	if a == nil || b == nil {
		return false
	}
	if oa, ob := f.objectOf(a), f.objectOf(b); oa != nil && ob != nil {
		return oa == ob
	}
	return a.Name == b.Name
}

// Analyzer is one named check run over every loaded file.
type Analyzer struct {
	Name string
	Doc  string
	// Dirs restricts the analyzer to packages whose root-relative path has
	// one of these suffixes; empty applies everywhere.
	Dirs []string
	// Run is the per-file pass. Analyzers whose invariant is local to one
	// file use this.
	Run func(f *File) []Diagnostic
	// RunProject, when set, runs once over every matching file of the whole
	// run — the hook for invariants that span files and packages (the lock
	// acquisition graph, the blob-write-before-journal-append ordering).
	// An analyzer sets Run or RunProject, not both.
	RunProject func(files []*File) []Diagnostic
}

func (a *Analyzer) applies(pkg string) bool {
	if len(a.Dirs) == 0 {
		return true
	}
	for _, d := range a.Dirs {
		if pkg == d || strings.HasSuffix(pkg, "/"+d) {
			return true
		}
	}
	return false
}

// Analyzers returns the full project suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PinBalance,
		PoolPair,
		GoExit,
		CtxFlow,
		LockSend,
		JournalOrder,
		SyncAck,
		DecodeGuard,
		CRCFlow,
		LockOrder,
	}
}

// Config parameterizes a lint run.
type Config struct {
	// Root is the module root directory patterns are resolved against.
	Root string
	// IncludeTests lints _test.go files too. Off by default: test files
	// spawn short-lived goroutines and local resources freely, and the
	// invariants the suite guards are production-path lifecycles.
	IncludeTests bool
}

// Run expands the package patterns ("./..." or directory paths), parses and
// type-checks each package, applies the per-file analyzers, runs the
// project-scoped analyzers over the combined file set, filters suppressed
// findings, reports suppressions that suppressed nothing, and returns the
// surviving diagnostics sorted by position.
func Run(cfg Config, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	dirs, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	var all []*File
	igByFile := map[string]*ignores{}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		files, ds, err := loadDir(fset, cfg, dir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
		for _, lf := range files {
			ig := &ignores{}
			igDiags := collectIgnores(fset, lf.File, ig)
			diags = append(diags, igDiags...)
			igByFile[lf.Path] = ig
			for _, a := range analyzers {
				if a.Run == nil || !a.applies(lf.Pkg) {
					continue
				}
				for _, d := range a.Run(lf) {
					if !ig.suppresses(d) {
						diags = append(diags, d)
					}
				}
			}
		}
		all = append(all, files...)
	}
	for _, a := range analyzers {
		if a.RunProject == nil {
			continue
		}
		var sel []*File
		for _, lf := range all {
			if a.applies(lf.Pkg) {
				sel = append(sel, lf)
			}
		}
		if len(sel) == 0 {
			continue
		}
		for _, d := range a.RunProject(sel) {
			if ig := igByFile[d.Pos.Filename]; ig == nil || !ig.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	diags = append(diags, unusedSuppressions(igByFile, analyzers)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// unusedSuppressions reports every //lint:ignore directive that suppressed no
// finding during this run, so suppressions cannot rot in place as the code
// they once excused moves or gets fixed. Only directives naming an analyzer
// that actually ran are considered: a partial run (-only, per-fixture tests)
// must not condemn a directive whose analyzer it never exercised.
func unusedSuppressions(igByFile map[string]*ignores, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, ig := range igByFile {
		for _, e := range ig.entries {
			if e.used || !ran[e.name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      e.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused //lint:ignore %s: no finding here to suppress — delete the directive or move it with the code it excuses", e.name),
			})
		}
	}
	return diags
}

// expandPatterns resolves the CLI package patterns into package directories.
// "./..." (or "...") walks every directory under root that holds Go files,
// skipping testdata, vendor and hidden directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p = strings.TrimSuffix(p, "/...")
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, p)
		}
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: %q is not a package directory", p)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one package directory, returning its files
// ready for analysis. Parse-level diagnostics (none today) ride along so the
// caller keeps a single diagnostics stream.
func loadDir(fset *token.FileSet, cfg Config, dir string) ([]*File, []Diagnostic, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	info := typeCheck(fset, dir, files)
	pkg, err := filepath.Rel(cfg.Root, dir)
	if err != nil {
		pkg = dir
	}
	pkg = filepath.ToSlash(pkg)

	out := make([]*File, len(files))
	for i, af := range files {
		out[i] = &File{Fset: fset, File: af, Path: paths[i], Pkg: pkg, Info: info}
	}
	return out, nil, nil
}

// typeCheck runs go/types over the package with a stub importer, collecting
// whatever identifier resolution succeeds. Errors are expected (imports are
// stubs) and ignored — the analyzers only consume local object identity.
func typeCheck(fset *token.FileSet, dir string, files []*ast.File) *types.Info {
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    stubImporter{pkgs: map[string]*types.Package{}},
		Error:       func(error) {}, // best-effort: keep going past stub-import holes
		FakeImportC: true,
	}
	// The result package is irrelevant; Info side tables are the product.
	_, _ = conf.Check(dir, fset, files, info)
	return info
}

// stubImporter satisfies every import with an empty placeholder package, so
// type-checking proceeds without compiled export data or module resolution.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	s.pkgs[path] = p
	return p, nil
}

// ignoreRe matches the suppression directive. The analyzer list is comma
// separated; the reason is everything after it.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z0-9_,]+)(?:\s+(.*))?$`)

// ignoreEntry is one analyzer name from one directive; used flips when the
// entry suppresses a finding, and entries that never flip are reported by the
// unused-suppression pass.
type ignoreEntry struct {
	pos  token.Position
	name string
	used bool
}

// ignores indexes a file's suppression directives by source line.
type ignores struct {
	entries []*ignoreEntry
	byLine  map[int][]*ignoreEntry
}

func (ig *ignores) suppresses(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, e := range ig.byLine[line] {
			if e.name == d.Analyzer {
				e.used = true
				return true
			}
		}
	}
	return false
}

// collectIgnores gathers //lint:ignore directives into ig, reporting
// malformed ones (missing reason) as diagnostics so suppressions stay
// justified.
func collectIgnores(fset *token.FileSet, f *ast.File, ig *ignores) []Diagnostic {
	ig.byLine = map[int][]*ignoreEntry{}
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "//lint:ignore needs a reason: `//lint:ignore <analyzer> <why the invariant holds>`",
				})
				continue
			}
			for _, name := range strings.Split(m[1], ",") {
				e := &ignoreEntry{pos: pos, name: name}
				ig.entries = append(ig.entries, e)
				ig.byLine[pos.Line] = append(ig.byLine[pos.Line], e)
			}
		}
	}
	return diags
}
