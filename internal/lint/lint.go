// Package lint is scanraw's project-specific static-analysis suite: the
// concurrency and resource-lifecycle invariants the pipeline depends on —
// cache pin/unpin balance, vector-pool recycle discipline, goroutine
// termination, context propagation, and lock/channel ordering — are not
// visible to `go vet` or the race detector (a race-free double-unpin is
// still a corruption; a leaked reader goroutine is still a capacity leak),
// so they are enforced mechanically here and wired into `make check`.
//
// The driver is stdlib-only (go/parser + go/ast + go/types): packages are
// parsed from source, type-checked best-effort with a stub importer (local
// identifier resolution is what the analyzers consume; cross-package types
// are not required), and each analyzer walks the AST per file.
//
// False positives are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: a bare directive is itself a diagnostic, so every suppression
// in the tree documents why the invariant holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is the per-file analysis input handed to analyzers.
type File struct {
	Fset *token.FileSet
	File *ast.File
	Path string
	// Pkg is the slash-separated package directory relative to the module
	// root (e.g. "internal/scanraw"); package-scoped analyzers match on it.
	Pkg string
	// Info carries best-effort type-checker results. Imports resolve to
	// stub packages, so cross-package types are invalid — analyzers use
	// Info only for local identifier/object resolution and must degrade to
	// name matching when an object is missing.
	Info *types.Info
}

// objectOf resolves an identifier to its declared object, or nil when the
// best-effort checker could not.
func (f *File) objectOf(id *ast.Ident) types.Object {
	if f.Info == nil || id == nil {
		return nil
	}
	return f.Info.ObjectOf(id)
}

// sameIdent reports whether two identifiers denote the same variable,
// preferring type-checker objects and falling back to name equality.
func (f *File) sameIdent(a, b *ast.Ident) bool {
	if a == nil || b == nil {
		return false
	}
	if oa, ob := f.objectOf(a), f.objectOf(b); oa != nil && ob != nil {
		return oa == ob
	}
	return a.Name == b.Name
}

// Analyzer is one named check run over every loaded file.
type Analyzer struct {
	Name string
	Doc  string
	// Dirs restricts the analyzer to packages whose root-relative path has
	// one of these suffixes; empty applies everywhere.
	Dirs []string
	Run  func(f *File) []Diagnostic
}

func (a *Analyzer) applies(pkg string) bool {
	if len(a.Dirs) == 0 {
		return true
	}
	for _, d := range a.Dirs {
		if pkg == d || strings.HasSuffix(pkg, "/"+d) {
			return true
		}
	}
	return false
}

// Analyzers returns the full project suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PinBalance,
		PoolPair,
		GoExit,
		CtxFlow,
		LockSend,
	}
}

// Config parameterizes a lint run.
type Config struct {
	// Root is the module root directory patterns are resolved against.
	Root string
	// IncludeTests lints _test.go files too. Off by default: test files
	// spawn short-lived goroutines and local resources freely, and the
	// invariants the suite guards are production-path lifecycles.
	IncludeTests bool
}

// Run expands the package patterns ("./..." or directory paths), parses and
// type-checks each package, applies the analyzers, filters suppressed
// findings, and returns the surviving diagnostics sorted by position.
func Run(cfg Config, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	dirs, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	fset := token.NewFileSet()
	for _, dir := range dirs {
		ds, err := runDir(fset, cfg, dir, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// expandPatterns resolves the CLI package patterns into package directories.
// "./..." (or "...") walks every directory under root that holds Go files,
// skipping testdata, vendor and hidden directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p = strings.TrimSuffix(p, "/...")
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, p)
		}
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: %q is not a package directory", p)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// runDir parses, type-checks and analyzes one package directory.
func runDir(fset *token.FileSet, cfg Config, dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := typeCheck(fset, dir, files)
	pkg, err := filepath.Rel(cfg.Root, dir)
	if err != nil {
		pkg = dir
	}
	pkg = filepath.ToSlash(pkg)

	var diags []Diagnostic
	for i, af := range files {
		lf := &File{Fset: fset, File: af, Path: paths[i], Pkg: pkg, Info: info}
		ig, igDiags := collectIgnores(fset, af)
		diags = append(diags, igDiags...)
		for _, a := range analyzers {
			if !a.applies(pkg) {
				continue
			}
			for _, d := range a.Run(lf) {
				if !ig.suppresses(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	return diags, nil
}

// typeCheck runs go/types over the package with a stub importer, collecting
// whatever identifier resolution succeeds. Errors are expected (imports are
// stubs) and ignored — the analyzers only consume local object identity.
func typeCheck(fset *token.FileSet, dir string, files []*ast.File) *types.Info {
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    stubImporter{pkgs: map[string]*types.Package{}},
		Error:       func(error) {}, // best-effort: keep going past stub-import holes
		FakeImportC: true,
	}
	// The result package is irrelevant; Info side tables are the product.
	_, _ = conf.Check(dir, fset, files, info)
	return info
}

// stubImporter satisfies every import with an empty placeholder package, so
// type-checking proceeds without compiled export data or module resolution.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	s.pkgs[path] = p
	return p, nil
}

// ignoreRe matches the suppression directive. The analyzer list is comma
// separated; the reason is everything after it.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z0-9_,]+)(?:\s+(.*))?$`)

// ignores maps source lines to the analyzer names suppressed there.
type ignores map[int][]string

func (ig ignores) suppresses(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range ig[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores gathers //lint:ignore directives, reporting malformed ones
// (missing reason) as diagnostics so suppressions stay justified.
func collectIgnores(fset *token.FileSet, f *ast.File) (ignores, []Diagnostic) {
	ig := ignores{}
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "//lint:ignore needs a reason: `//lint:ignore <analyzer> <why the invariant holds>`",
				})
				continue
			}
			for _, name := range strings.Split(m[1], ",") {
				ig[pos.Line] = append(ig[pos.Line], name)
			}
		}
	}
	return ig, diags
}
