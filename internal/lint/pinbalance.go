package lint

// PinBalance enforces the cache pin discipline: every pin taken —
// Acquire/AcquireOldestUnloaded (which return a pinned chunk) and
// Pin/PutPinned/putPinnedWait* (which pin their argument) — must be
// matched by an Unpin on every path, or ownership must be transferred
// (chunk handed to a deliverer, sent on a channel, returned). A pinned
// entry can never be evicted, so a dropped pin permanently shrinks the
// binary cache; the race detector cannot see it because pin accounting
// is perfectly synchronized — just wrong.
var PinBalance = &Analyzer{
	Name: "pinbalance",
	Doc:  "cache pins (Acquire/Pin/PutPinned) must be matched by Unpin on all paths",
	Run: func(f *File) []Diagnostic {
		return checkPairs(f, pinSpec)
	},
}

var pinSpec = &pairSpec{
	analyzer: "pinbalance",
	what:     "pinned chunk",
	verb:     "unpinned",
	acquires: map[string]acqKind{
		"Acquire":               {fromResult: true},
		"AcquireOldestUnloaded": {fromResult: true},
		"Pin":                   {argIdx: 0},
		"PutPinned":             {argIdx: 0},
		"putPinnedWait":         {argIdx: 0},
		"putPinnedWaitEv":       {argIdx: 0},
	},
	releases: map[string]int{
		"Unpin": 0,
	},
}
