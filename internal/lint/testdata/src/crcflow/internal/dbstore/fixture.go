package fixture

// Mirrors the checksum boundaries: openPage/DecodeRecord-class errors are
// the CRC verdict and must be read, not dropped or shadowed.

// Bad: the page result is dropped wholesale — CRC verdict and all.
func badDiscard(p []byte) {
	openPage(p) // want
}

// Bad: the error is blanked.
func badBlankErr(p []byte) []byte {
	payload, _ := openPage(p) // want
	return payload
}

// Bad: captured, then shadowed before anyone reads it.
func badShadowed(p, q []byte) error {
	_, err := openPage(p) // want
	_, err = openPage(q)
	return err
}

// Bad: a defer discarding the verdict is still a discard.
func badDeferredDiscard(p []byte) {
	defer openPage(p) // want
}

// Good: the error is checked on the spot.
func goodChecked(p []byte) ([]byte, error) {
	payload, err := openPage(p)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// Good: err == nil as a boolean verdict is a read (the pageOK shape).
func goodBoolVerdict(p []byte) bool {
	_, err := openPage(p)
	return err == nil
}

// Good: wrapping the error forwards the verdict.
func goodWrapped(p []byte) error {
	rec, err := DecodeRecord(p)
	if err != nil {
		return wrapErr(err)
	}
	apply(rec)
	return nil
}

// Good: a justified suppression.
func suppressedProbe(p []byte) {
	//lint:ignore crcflow fixture mirrors a best-effort probe: corruption is re-verified on the serving read path
	openPage(p)
}
