package fixture

// Mirrors the store durability surface: write+sync before every nil-error
// return, and no os.WriteFile/os.Create bypassing temp+fsync+rename.

// Bad: acks durability without an fsync after the write.
func badAckWithoutSync(f *LogFile, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return nil // want
}

// Good: the sync sits between the last write and the ack.
func goodSyncedAck(f *LogFile, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// Bad: os.WriteFile drops bytes into a managed dir with no temp+rename.
func badWriteFileBypass(path string, p []byte) error {
	return os.WriteFile(path, p, 0o644) // want
}

// Bad: os.Create bypasses the atomic-write dance the same way.
func badCreateBypass(path string) error {
	f, err := os.Create(path) // want
	if err != nil {
		return err
	}
	return f.Close()
}

// Good: rename followed by a directory sync is the blessed atomic commit.
func goodRenameThenSyncDir(root, tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(root); err != nil {
		return err
	}
	return nil
}

// Good: a nil return before any write promises nothing.
func goodEarlyNil(f *LogFile, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync()
}

// Good: a justified suppression for a path whose caller owns the sync.
func suppressedDeferredSync(f *LogFile, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	//lint:ignore syncack fixture mirrors batched appends: the caller groups writes and syncs once before acking its client
	return nil
}
