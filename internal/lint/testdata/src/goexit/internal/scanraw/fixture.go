package fixture

// Bad: spins forever; no way to hear a done signal.
func badSpin(work func()) {
	go func() {
		for { // want
			work()
		}
	}()
}

// Bad: busy-polls a flag; the goroutine has no termination signal.
func badPoll(stop *bool) {
	go func() {
		for !*stop { // want
			poll()
		}
	}()
}

// Good: the loop selects on the done channel.
func goodSelectLoop(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				handle(j)
			case <-done:
				return
			}
		}
	}()
}

// Good: range over a channel ends when the producer closes it.
func goodRange(jobs chan int) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// Good: blocks on a WaitGroup, then exits.
func goodWait(wg *WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// Good: a justified suppression on the spin finding.
func suppressedSpin(work func()) {
	go func() {
		//lint:ignore goexit fixture demonstrates the suppression escape hatch: the worker is process-lifetime by design
		for {
			work()
		}
	}()
}
