package fixture

// Bad: spins forever; no way to hear a done signal.
func badSpin(work func()) {
	go func() {
		for { // want
			work()
		}
	}()
}

// Bad: busy-polls a flag; the goroutine has no termination signal.
func badPoll(stop *bool) {
	go func() {
		for !*stop { // want
			poll()
		}
	}()
}

// Good: the loop selects on the done channel.
func goodSelectLoop(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				handle(j)
			case <-done:
				return
			}
		}
	}()
}

// Good: range over a channel ends when the producer closes it.
func goodRange(jobs chan int) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// Good: blocks on a WaitGroup, then exits.
func goodWait(wg *WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// Good: a justified suppression on the spin finding.
func suppressedSpin(work func()) {
	go func() {
		//lint:ignore goexit fixture demonstrates the suppression escape hatch: the worker is process-lifetime by design
		for {
			work()
		}
	}()
}

// Bad: a progress forwarder that busy-polls the estimator's converged
// flag — the sampler goroutine has no termination signal and spins after
// the scan is torn down.
func badProgressPoll(converged func() bool, emit func()) {
	go func() {
		for !converged() { // want
			emit()
		}
	}()
}

// Good: the sampler's progress forwarder drains snapshots until the scan
// closes the channel — termination is the producer's close, not a poll.
func goodProgressDrain(snapshots chan int, emit func(int)) {
	go func() {
		for s := range snapshots {
			emit(s)
		}
	}()
}

// Good: the sampled-scan watchdog selects on done alongside the ticks.
func goodSamplerWatchdog(ticks chan int, done chan struct{}, observe func(int)) {
	go func() {
		for {
			select {
			case t := <-ticks:
				observe(t)
			case <-done:
				return
			}
		}
	}()
}
