package fixture

// Bad: the early return inside the loop drops the pooled map.
func badLoopDrop(rows, cols int) (*PositionalMap, error) {
	m := GetPositionalMap(rows, cols)
	for i := 0; i < rows; i++ {
		if i > cols {
			return nil, errShortRow // want
		}
		m.Starts = append(m.Starts, int32(i))
	}
	return m, nil
}

// Bad (inconsistent release): the buffer is recycled on the main path but
// dropped by the guard's early exit.
func badInconsistentRelease(v *Vector, n int) error {
	if n < 0 {
		return errNegative // want
	}
	fill(v, n)
	PutVector(v)
	return nil
}

// Good: the error path recycles before returning.
func goodRecycleEverywhere(rows, cols int) (*PositionalMap, error) {
	m := GetPositionalMap(rows, cols)
	for i := 0; i < rows; i++ {
		if i > cols {
			PutPositionalMap(m)
			return nil, errShortRow
		}
		m.Starts = append(m.Starts, int32(i))
	}
	return m, nil
}

// Good: a justified suppression silences the finding.
func suppressedDrop(rows, cols int) error {
	m := GetPositionalMap(rows, cols)
	if rows > cols {
		//lint:ignore poolpair fixture demonstrates the suppression escape hatch
		return errShortRow
	}
	PutPositionalMap(m)
	return nil
}

// Bad twice over: a bare directive has no reason (flagged itself) and
// therefore suppresses nothing — the drop is still reported.
func bareDirective(rows, cols int) error {
	m := GetPositionalMap(rows, cols)
	if rows > cols {
		//lint:ignore poolpair
		return errShortRow // want
	}
	PutPositionalMap(m)
	return nil
}

// Bad: the fused kernels' batch acquire dropped by an error return — the
// whole vector slice leaks at once.
func badBatchDrop(k *Kernel, n int) (*BinaryChunk, error) {
	out := k.getVectors(n)
	if n == 0 {
		return nil, errShortRow // want
	}
	return k.install(0, n, out), nil
}

// Good: the batch release runs on the error path; success transfers
// ownership through install.
func goodBatchRecycle(k *Kernel, n int) (*BinaryChunk, error) {
	out := k.getVectors(n)
	if n == 0 {
		putVectors(out)
		return nil, errShortRow
	}
	return k.install(0, n, out), nil
}
