package fixture

// Bad: the pin taken by Acquire is dropped by the early return.
func badDropOnBranch(c *Cache, id int) error {
	bc := c.Acquire(id)
	if bc == nil {
		return errNotFound
	}
	if tooBig(id) {
		return errSkipped // want
	}
	_ = c.Unpin(id)
	return use(bc)
}

// Bad: the pinned result is discarded outright.
func badDropOnFloor(c *Cache, id int) {
	c.Acquire(id) // want
}

// Good: a deferred Unpin covers every path.
func goodDefer(c *Cache, id int) error {
	bc := c.Acquire(id)
	if bc == nil {
		return errNotFound
	}
	defer c.Unpin(id)
	if tooBig(id) {
		return errSkipped
	}
	return use(bc)
}

// Good: every branch releases before exiting.
func goodAllBranches(c *Cache, id int) error {
	bc := c.Acquire(id)
	if bc == nil {
		return errNotFound
	}
	if tooBig(id) {
		_ = c.Unpin(id)
		return errSkipped
	}
	_ = c.Unpin(id)
	return use(bc)
}

// Good: ownership moves to the channel consumer.
func goodTransfer(c *Cache, id int, out chan *BinaryChunk) bool {
	bc := c.Acquire(id)
	if bc == nil {
		return false
	}
	out <- bc
	return true
}

// Good: a justified suppression silences the drop finding.
func suppressedDrop(c *Cache, id int) error {
	bc := c.Acquire(id)
	if bc == nil {
		return errNotFound
	}
	if tooBig(id) {
		//lint:ignore pinbalance fixture demonstrates the suppression escape hatch: the registry sweep unpins abandoned entries
		return errSkipped
	}
	_ = c.Unpin(id)
	return use(bc)
}
