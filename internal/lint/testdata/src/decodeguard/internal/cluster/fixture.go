package fixture

// Mirrors the wire codecs: raw varint/fixed-width decodes are hostile until
// bounded; count() is the blessed bound-and-fail helper.

// Bad: the decoded count reaches make unchecked — the 67TB class.
func badUnboundedMake(d *decoder) []int {
	n := d.uvar()
	return make([]int, n) // want
}

// Bad: conversion layers do not launder taint.
func badConvertedMake(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	return make([]byte, 0, n) // want
}

// Good: a bounds check between decode and allocation clears the taint.
func goodGuardedMake(d *decoder) ([]int, error) {
	n := d.uvar()
	if n > maxCols {
		return nil, errTooBig
	}
	return make([]int, n), nil
}

// Good: min clamps at the use site.
func goodClampedMake(d *decoder) []int {
	n := d.uvar()
	return make([]int, 0, min(int(n), 64))
}

// Good: the count() helper bounds and fails in one step.
func goodCountHelper(d *decoder) []int {
	n := d.count(maxCols, "columns")
	return make([]int, n)
}

// Good: reassignment from a trusted source clears the taint.
func goodReassigned(d *decoder, buf []byte) []byte {
	n := d.uvar()
	n = uint64(len(buf))
	return make([]byte, n)
}

// Good: a justified suppression for a count bounded by construction.
func suppressedTrustedCount(d *decoder) []int {
	n := d.uvar()
	//lint:ignore decodeguard fixture mirrors a loopback path: the producer is in-process and bounds n at encode time
	return make([]int, n)
}

//lint:ignore decodeguard this directive excuses nothing, so the driver reports it as unused // want
func unusedDirective() {}
