package fixture

import "sync"

type state struct {
	mu    sync.Mutex
	cond  sync.Mutex
	inner sync.Mutex
	ch    chan int
}

// acquireCond locks cond and hands the critical section to the caller — the
// journalLock opener idiom.
func (s *state) acquireCond() func() {
	s.cond.Lock()
	return s.cond.Unlock
}

// notify sends on the wake channel; no locks of its own, so locksend sees
// nothing here.
func (s *state) notify() {
	s.ch <- 1
}

// condTouch takes cond briefly.
func (s *state) condTouch() {
	s.cond.Lock()
	s.cond.Unlock()
}

// Bad half of a cycle: mu is acquired while the opener holds cond.
func (s *state) lockCondThenMu() {
	defer s.acquireCond()()
	s.mu.Lock() // want
	s.mu.Unlock()
}

// Bad other half: cond is (transitively) acquired while holding mu — the
// reverse order, closing the cycle.
func (s *state) lockMuThenCond() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.condTouch() // want
}

// Bad: two locks held around a call that — invisibly to locksend — sends.
func (s *state) badNotifyUnderBoth() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Lock()
	defer s.cond.Unlock()
	s.notify() // want
}

// Good: consistent ordering — inner is only ever taken under mu, nothing
// takes mu under inner.
func (s *state) goodNested() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Lock()
	s.inner.Unlock()
}

// Good: a justified suppression on the channel-reachability finding.
func (s *state) suppressedNotify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Lock()
	defer s.cond.Unlock()
	//lint:ignore lockorder fixture mirrors a buffered wake channel sized for every waiter, so the send cannot block
	s.notify()
}
