package fixture

import "sync"

type queue struct {
	mu    sync.Mutex
	ch    chan int
	items []int
}

// Bad: sends on a channel inside the critical section.
func (q *queue) badSendLocked(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want
	q.mu.Unlock()
}

// Bad: the deferred unlock holds the lock across the receive.
func (q *queue) badRecvDeferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want
}

// Bad: blocks in select while holding the lock.
func (q *queue) badSelectLocked(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want
	case v := <-q.ch:
		q.items = append(q.items, v)
	case <-done:
	}
}

// Good: the send happens after the unlock.
func (q *queue) goodSendOutside(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// Good: the notification runs in its own goroutine, off the lock.
func (q *queue) goodAsyncNotify(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
	go func() { q.ch <- v }()
}

// Good: a justified suppression on the send finding.
func (q *queue) suppressedSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:ignore locksend fixture demonstrates the suppression escape hatch: the channel is buffered beyond the writer count
	q.ch <- v
}
