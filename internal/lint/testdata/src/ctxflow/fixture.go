package fixture

import "context"

// Bad: the signature promises cancellation the body ignores.
func Ignored(ctx context.Context, id int) error { // want
	return Fetch(id)
}

// Bad: manufactures a fresh context while the caller's is in scope.
func Fresh(ctx context.Context, id int) error {
	if err := check(ctx, id); err != nil {
		return err
	}
	c := context.Background() // want
	return FetchContext(c, id)
}

// Bad: calls the plain variant although FetchContext exists in this file.
func Bypass(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Fetch(id) // want
}

// Good: threads the caller's context into the cancellable variant.
func Threaded(ctx context.Context, id int) error {
	return FetchContext(ctx, id)
}

// Good: a justified suppression on the bypass finding.
func SuppressedBypass(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	//lint:ignore ctxflow fixture demonstrates the suppression escape hatch: the plain variant is non-blocking here
	return Fetch(id)
}

func Fetch(id int) error { return nil }

// Good: the Context variant may call the plain implementation itself.
func FetchContext(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Fetch(id)
}
