package fixture

import "context"

// Bad: the signature promises cancellation the body ignores.
func Ignored(ctx context.Context, id int) error { // want
	return Fetch(id)
}

// Bad: manufactures a fresh context while the caller's is in scope.
func Fresh(ctx context.Context, id int) error {
	if err := check(ctx, id); err != nil {
		return err
	}
	c := context.Background() // want
	return FetchContext(c, id)
}

// Bad: calls the plain variant although FetchContext exists in this file.
func Bypass(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Fetch(id) // want
}

// Good: threads the caller's context into the cancellable variant.
func Threaded(ctx context.Context, id int) error {
	return FetchContext(ctx, id)
}

// Good: a justified suppression on the bypass finding.
func SuppressedBypass(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	//lint:ignore ctxflow fixture demonstrates the suppression escape hatch: the plain variant is non-blocking here
	return Fetch(id)
}

func Fetch(id int) error { return nil }

// Good: the Context variant may call the plain implementation itself.
func FetchContext(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Fetch(id)
}

// Bad: the sampled-scan launcher takes the caller's context but starts
// the scan under a fresh one — the estimator keeps drawing chunks after
// the client disconnects.
func SampledScanFresh(ctx context.Context, seed int64) error {
	if err := check(ctx, 0); err != nil {
		return err
	}
	bg := context.Background() // want
	return ScanContext(bg, seed)
}

// Bad: drives the sampled scan through the plain variant although the
// cancellable ScanContext exists in this file.
func SampledScanPlain(ctx context.Context, seed int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Scan(seed) // want
}

// Good: threads the caller's context into the sampled scan, so an early
// client disconnect stops the permutation walk.
func SampledScanThreaded(ctx context.Context, seed int64) error {
	return ScanContext(ctx, seed)
}

func Scan(seed int64) error { return nil }

// Good: the Context variant calling the plain implementation is the one
// legal bypass.
func ScanContext(ctx context.Context, seed int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Scan(seed)
}
