package fixture

// Mirrors the dbstore journaling surface: a loaded-record appender, the
// journalLock opener, the blessed journalAppend forwarder, and blob writes.

type Table struct {
	ckpt    *RWMutex
	ckptMu  RWMutex
	journal Journal
	name    string
}

// journalLock enters the mutate+append critical section (opener idiom).
func (t *Table) journalLock() func() {
	t.ckpt.RLock()
	return t.ckpt.RUnlock
}

// journalAppend is the blessed forwarder; callers hold the lock around it.
func (t *Table) journalAppend(recs ...Record) error {
	return t.journal.Append(recs...)
}

// markLoaded is a loaded-record appender: every call site owes a preceding
// blob write.
func (t *Table) markLoaded(id int, cols []int) error {
	defer t.journalLock()()
	var recs []Record
	recs = append(recs, store.Record{
		Type: store.RecLoadedGroup, Table: t.name, Chunk: id, Cols: cols,
	})
	return t.journalAppend(recs...)
}

// Bad: journals the loaded claim with no preceding page write — a crash
// would recover metadata for pages that never hit the disk.
func (t *Table) badClaimWithoutWrite(id int) error {
	return t.markLoaded(id, nil) // want
}

// Good: the page write dominates the claim.
func (t *Table) goodWriteThenClaim(d Disk, id int, page []byte) error {
	if err := d.WriteBlob(pageName(id), page); err != nil {
		return err
	}
	return t.markLoaded(id, nil)
}

// writePage reaches WriteBlob through a helper; callers of it count as
// having written.
func (t *Table) writePage(d Disk, id int, page []byte) error {
	return d.WriteBlob(pageName(id), page)
}

// Good: the blob write is transitive through writePage.
func (t *Table) goodHelperWrite(d Disk, id int, page []byte) error {
	if err := t.writePage(d, id, page); err != nil {
		return err
	}
	return t.markLoaded(id, nil)
}

// Bad: appends outside the checkpoint-exclusion region — a snapshot could
// interleave between the mutate and the append.
func (t *Table) badUnlockedAppend() error {
	return t.journalAppend(store.Record{Type: store.RecChunk, Table: t.name}) // want
}

// Good: an explicit ckpt read-lock taken before the append satisfies the
// discipline too (the SetWorkload shape).
func (t *Table) goodExplicitCkptLock(rec Record) error {
	t.ckptMu.RLock()
	defer t.ckptMu.RUnlock()
	return t.journalAppend(rec)
}

// Good: a justified suppression — the recovery-replay shape, where pages
// were proven durable by the original append.
func (t *Table) replayLoaded(id int) {
	//lint:ignore journalorder fixture mirrors recovery replay: the journal is nil during replay and pages are re-verified afterwards
	_ = t.markLoaded(id, nil)
}
