package lint

import (
	"go/ast"
	"go/token"
)

// CRCFlow guards the error results of the CRC-verifying decode functions: a
// page or frame whose checksum failed must never be treated as data, so the
// error from these calls may not be discarded with `_`, dropped as a bare
// statement, or captured and then shadowed before it is read — even inside a
// defer, where "cleanup can't fail" habits drop verification results.
//
// The verified-decode set is the project's checksum boundary: openPage
// (dbstore column-group pages), DecodeRecord / decodeFrames' record path
// (manifest journal), DecodeMessage (cluster exec frames), DecodePartial /
// DecodeVector (serialized engine partials), and LoadFleetConfig (sealed
// fleet blob). All of them return an error whose only cause, besides
// truncation, is a checksum mismatch.
var CRCFlow = &Analyzer{
	Name: "crcflow",
	Doc:  "errors from CRC-verifying decode functions may not be discarded or shadowed",
	Dirs: []string{"internal/store", "internal/dbstore", "internal/cluster", "internal/server", "internal/engine"},
	Run:  runCRCFlow,
}

// crcFuncs name every decode entry point whose error carries a checksum
// verdict.
var crcFuncs = map[string]bool{
	"openPage":        true,
	"DecodeRecord":    true,
	"DecodeMessage":   true,
	"DecodePartial":   true,
	"DecodeVector":    true,
	"LoadFleetConfig": true,
}

func runCRCFlow(f *File) []Diagnostic {
	var diags []Diagnostic
	for _, u := range funcUnits(f) {
		diags = append(diags, crcFlowUnit(f, u)...)
	}
	return diags
}

func crcFlowUnit(f *File, u unit) []Diagnostic {
	var diags []Diagnostic
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if _, name := callee(call); crcFuncs[name] {
					diags = append(diags, f.diag("crcflow", v,
						"result of %s discarded — its error is the CRC verdict; check it or the corruption is silent", name))
				}
			}
		case *ast.DeferStmt:
			if _, name := callee(v.Call); crcFuncs[name] {
				diags = append(diags, f.diag("crcflow", v,
					"deferred %s discards its error — a dropped verification error in defer is still a dropped verification error", name))
			}
		case *ast.AssignStmt:
			diags = append(diags, crcAssign(f, u, v)...)
		}
		return true
	})
	return diags
}

// crcAssign checks one assignment whose RHS is a verified-decode call: the
// error (last LHS) must not be blank, and if captured into a variable that
// variable must be read before it is overwritten or goes out of scope.
func crcAssign(f *File, u unit, as *ast.AssignStmt) []Diagnostic {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	_, name := callee(call)
	if !crcFuncs[name] {
		return nil
	}
	last := as.Lhs[len(as.Lhs)-1]
	id, ok := last.(*ast.Ident)
	if !ok {
		return nil
	}
	if id.Name == "_" {
		return []Diagnostic{f.diag("crcflow", as,
			"error from %s assigned to _ — the CRC verdict must be checked", name)}
	}
	if errReadBeforeOverwrite(f, u, id, as.End()) {
		return nil
	}
	return []Diagnostic{f.diag("crcflow", as,
		"error from %s captured in %q but never read before it is overwritten or dropped", name, id.Name)}
}

// errReadBeforeOverwrite reports whether the captured error identifier is
// read after pos and before any reassignment to it. The scan is positional
// over the whole unit body, which matches the straight-line decode flows the
// codebase uses at its checksum boundaries.
func errReadBeforeOverwrite(f *File, u unit, errID *ast.Ident, pos token.Pos) bool {
	firstUse, firstClobber := token.Pos(-1), token.Pos(-1)
	inspectNoFuncLit(u.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && lid.Pos() > pos && f.sameIdent(lid, errID) {
					if firstClobber == token.Pos(-1) || lid.Pos() < firstClobber {
						firstClobber = lid.Pos()
					}
				}
			}
			// RHS and other subtrees still count as reads; fall through via
			// the generic ident case on deeper inspect visits.
		case *ast.Ident:
			if v.Pos() <= pos || v == errID {
				return true
			}
			if !f.sameIdent(v, errID) {
				return true
			}
			if isAssignTarget(u.body, v) {
				return true
			}
			if firstUse == token.Pos(-1) || v.Pos() < firstUse {
				firstUse = v.Pos()
			}
		}
		return true
	})
	if firstUse == token.Pos(-1) {
		return false
	}
	return firstClobber == token.Pos(-1) || firstUse <= firstClobber
}

// isAssignTarget reports whether the identifier occurrence is an assignment
// LHS inside the body (a write, not a read).
func isAssignTarget(body *ast.BlockStmt, id *ast.Ident) bool {
	target := false
	ast.Inspect(body, func(n ast.Node) bool {
		if target {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == id {
					target = true
				}
			}
		}
		return true
	})
	return target
}
