//go:build !invariants

package chunk

// Production build: pool bookkeeping compiles away entirely — the hot
// acquire/release paths must not pay for a map lookup per chunk. The
// invariants build (see invariants_on.go) adds double-recycle detection
// and outstanding-buffer counters.
func noteGetVector(*Vector)               {}
func notePutVector(*Vector)               {}
func noteGetPositionalMap(*PositionalMap) {}
func notePutPositionalMap(*PositionalMap) {}
