package chunk

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"scanraw/internal/schema"
)

func TestEncodeDecodeInt(t *testing.T) {
	v := NewVector(schema.Int64, 3)
	v.Ints[0], v.Ints[1], v.Ints[2] = -1, 0, math.MaxInt64
	got, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ints, v.Ints) || got.Type != schema.Int64 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestEncodeDecodeFloat(t *testing.T) {
	v := NewVector(schema.Float64, 4)
	v.Floats[0], v.Floats[1], v.Floats[2], v.Floats[3] = 0, -2.5, math.Inf(1), math.SmallestNonzeroFloat64
	got, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Floats, v.Floats) {
		t.Errorf("round trip = %v, want %v", got.Floats, v.Floats)
	}
}

func TestEncodeDecodeNaN(t *testing.T) {
	v := NewVector(schema.Float64, 1)
	v.Floats[0] = math.NaN()
	got, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Floats[0]) {
		t.Errorf("NaN did not survive: %v", got.Floats[0])
	}
}

func TestEncodeDecodeStr(t *testing.T) {
	v := NewVector(schema.Str, 4)
	v.Strs = []string{"", "a", "hello world", "tab\tand\nnewline"}
	got, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Strs, v.Strs) {
		t.Errorf("round trip = %q", got.Strs)
	}
}

func TestEncodeEmptyVector(t *testing.T) {
	for _, ty := range []schema.Type{schema.Int64, schema.Float64, schema.Str} {
		v := NewVector(ty, 0)
		got, err := DecodeVector(EncodeVector(v))
		if err != nil {
			t.Fatalf("%v: %v", ty, err)
		}
		if got.Len() != 0 || got.Type != ty {
			t.Errorf("%v: got %+v", ty, got)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short header":     {0, 0},
		"bad type tag":     {77, 1, 0, 0, 0},
		"truncated ints":   append([]byte{0}, []byte{2, 0, 0, 0, 1, 2, 3}...),
		"truncated lens":   append([]byte{2}, []byte{3, 0, 0, 0, 1, 0}...),
		"truncated string": append([]byte{2}, []byte{1, 0, 0, 0, 5, 0, 0, 0, 'a', 'b'}...),
	}
	for name, p := range cases {
		if _, err := DecodeVector(p); err == nil {
			t.Errorf("%s: DecodeVector should fail", name)
		}
	}
}

func TestDictionaryEncoding(t *testing.T) {
	// Low-cardinality strings use the dictionary path and shrink.
	v := NewVector(schema.Str, 1000)
	for i := range v.Strs {
		v.Strs[i] = []string{"chr1", "chr2", "chr3"}[i%3]
	}
	p := EncodeVector(v)
	if p[0] != tagStrDict {
		t.Fatalf("tag = %#x, want dictionary", p[0])
	}
	// 1000 codes + 3 entries + headers: far below plain (~8 KB).
	if len(p) > 1100 {
		t.Errorf("dictionary page = %d bytes", len(p))
	}
	got, err := DecodeVector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Strs, v.Strs) {
		t.Error("dictionary round trip mismatch")
	}
	// High-cardinality strings fall back to plain encoding.
	u := NewVector(schema.Str, 300)
	for i := range u.Strs {
		u.Strs[i] = fmt.Sprintf("unique-%d", i)
	}
	if EncodeVector(u)[0] != byte(schema.Str) {
		t.Error("high-cardinality vector should use plain encoding")
	}
}

func TestDictionaryDecodeCorrupt(t *testing.T) {
	v := NewVector(schema.Str, 10)
	for i := range v.Strs {
		v.Strs[i] = []string{"a", "b"}[i%2]
	}
	p := EncodeVector(v)
	if p[0] != tagStrDict {
		t.Skip("dictionary not chosen for this shape")
	}
	for cut := 1; cut < len(p); cut += 3 {
		if _, err := DecodeVector(p[:cut]); err == nil && cut < len(p) {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Out-of-range code.
	bad := append([]byte(nil), p...)
	bad[len(bad)-1] = 0xFF
	if _, err := DecodeVector(bad); err == nil {
		t.Error("out-of-range code not detected")
	}
}

// Property: int vectors round-trip exactly.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		v := &Vector{Type: schema.Int64, Ints: vals}
		got, err := DecodeVector(EncodeVector(v))
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return got.Len() == 0
		}
		return reflect.DeepEqual(got.Ints, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string vectors round-trip exactly, including embedded NULs and
// arbitrary bytes.
func TestStrRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		v := &Vector{Type: schema.Str, Strs: vals}
		got, err := DecodeVector(EncodeVector(v))
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return got.Len() == 0
		}
		return reflect.DeepEqual(got.Strs, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoding size is monotone in content for strings (sanity check
// on the page-size accounting used by the WRITE thread).
func TestEncodeSizeMatchesMemEstimate(t *testing.T) {
	// Small values use the narrow 4-byte encoding.
	v := NewVector(schema.Int64, 1000)
	p := EncodeVector(v)
	if len(p) != 5+4000 {
		t.Errorf("encoded narrow int page size = %d, want 4005", len(p))
	}
	// A single wide value forces the 8-byte encoding.
	v.Ints[7] = 1 << 40
	p = EncodeVector(v)
	if len(p) != 5+8000 {
		t.Errorf("encoded wide int page size = %d, want 8005", len(p))
	}
}

func TestNarrowEncodingRoundTrip(t *testing.T) {
	v := NewVector(schema.Int64, 4)
	v.Ints = []int64{0, -1 << 31, 1<<31 - 1, 42}
	got, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ints, v.Ints) {
		t.Errorf("narrow round trip = %v", got.Ints)
	}
	// Boundary: values just outside int32 must use and survive the wide
	// encoding.
	w := NewVector(schema.Int64, 2)
	w.Ints = []int64{1 << 31, -1<<31 - 1}
	got, err = DecodeVector(EncodeVector(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ints, w.Ints) {
		t.Errorf("wide round trip = %v", got.Ints)
	}
}
