package chunk

import (
	"sync"

	"scanraw/internal/schema"
)

// Vector recycling. Expression evaluation and column conversion produce one
// short-lived Vector per chunk per operand; at chunk sizes of 2^13 rows the
// backing slices dominate the engine's allocation profile. Vectors whose
// lifetime provably ends with the consuming call can be returned here and
// reused for the next chunk.
//
// Ownership rule: a vector obtained from GetVector may be released with
// PutVector exactly once, and only by the code that obtained it. Vectors
// installed into a BinaryChunk (cacheable, shared across queries) are only
// released through BinaryChunk.RecycleColumns, whose exclusive-ownership
// contract makes the release safe.
var vecPools = [3]sync.Pool{
	{New: func() any { return &Vector{Type: schema.Int64} }},
	{New: func() any { return &Vector{Type: schema.Float64} }},
	{New: func() any { return &Vector{Type: schema.Str} }},
}

// GetVector returns a zeroed vector of n values of type t, reusing pooled
// backing storage when available.
func GetVector(t schema.Type, n int) *Vector {
	v := vecPools[t].Get().(*Vector)
	switch t {
	case schema.Int64:
		if cap(v.Ints) < n {
			v.Ints = make([]int64, n)
		} else {
			v.Ints = v.Ints[:n]
			clear(v.Ints)
		}
	case schema.Float64:
		if cap(v.Floats) < n {
			v.Floats = make([]float64, n)
		} else {
			v.Floats = v.Floats[:n]
			clear(v.Floats)
		}
	case schema.Str:
		if cap(v.Strs) < n {
			v.Strs = make([]string, n)
		} else {
			v.Strs = v.Strs[:n]
			clear(v.Strs)
		}
	default:
		panic("chunk: invalid vector type")
	}
	noteGetVector(v)
	return v
}

// PutVector returns a vector to the pool. The caller must not use v (or any
// of its backing slices) afterwards; string values previously copied out of
// v.Strs stay valid because string contents are immutable.
func PutVector(v *Vector) {
	if v == nil || !v.Type.Valid() {
		return
	}
	notePutVector(v)
	vecPools[v.Type].Put(v)
}

// Positional-map recycling. TOKENIZE produces one map per chunk — three
// offset arrays sized rows×cols — and PARSE is usually its only consumer,
// so the backing storage can cycle between the two stages instead of
// being reallocated per chunk. Maps retained by the operator's
// positional-map cache must never be released.
var pmPool = sync.Pool{New: func() any { return new(PositionalMap) }}

// GetPositionalMap returns an empty positional map whose backing arrays
// have capacity for rows×cols offsets (and rows line ends), reusing pooled
// storage when available. The arrays have length zero — the tokenizer
// appends and sets NumRows/NumCols itself.
func GetPositionalMap(rows, cols int) *PositionalMap {
	m := pmPool.Get().(*PositionalMap)
	n := rows * cols
	if cap(m.Starts) < n {
		m.Starts = make([]int32, 0, n)
	} else {
		m.Starts = m.Starts[:0]
	}
	if cap(m.Ends) < n {
		m.Ends = make([]int32, 0, n)
	} else {
		m.Ends = m.Ends[:0]
	}
	if cap(m.LineEnd) < rows {
		m.LineEnd = make([]int32, 0, rows)
	} else {
		m.LineEnd = m.LineEnd[:0]
	}
	m.NumRows, m.NumCols = 0, 0
	noteGetPositionalMap(m)
	return m
}

// PutPositionalMap returns a map's backing storage to the pool. The caller
// must not use m afterwards.
func PutPositionalMap(m *PositionalMap) {
	if m == nil {
		return
	}
	notePutPositionalMap(m)
	pmPool.Put(m)
}
