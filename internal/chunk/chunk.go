// Package chunk defines the three data representations that flow through
// the SCANRAW pipeline (paper §3.1):
//
//   - TextChunk: a horizontal portion of the raw file — a sequence of
//     complete lines. Chunks are the unit of reading, scheduling and
//     processing.
//   - PositionalMap: the output of TOKENIZE — for every tuple in a text
//     chunk, the start/end offsets of each attribute.
//   - BinaryChunk: the output of PARSE/MAP — tuples vertically partitioned
//     along columns represented as arrays in memory. This is both the
//     execution engine's processing representation and the format in which
//     data are stored inside the database; not all columns of a table have
//     to be present in a binary chunk.
package chunk

import (
	"fmt"

	"scanraw/internal/schema"
)

// TextChunk is a raw-file fragment holding whole lines.
type TextChunk struct {
	// ID is the chunk ordinal within the raw file (0-based).
	ID int
	// Data holds the raw bytes. Every line is terminated by '\n' except
	// possibly the last.
	Data []byte
	// Lines is the number of lines (tuples) in Data.
	Lines int
}

// MemSize returns the approximate memory footprint in bytes, used for
// buffer sizing.
func (c *TextChunk) MemSize() int { return len(c.Data) + 24 }

// PositionalMap records, for each tuple of a text chunk, where each
// tokenized attribute begins and ends inside the chunk's Data. With
// selective tokenizing only a prefix of the attributes may be tokenized
// (NumCols < the schema's column count); PARSE can resume the scan from
// the last recorded position (paper §2, "partial map").
type PositionalMap struct {
	// NumRows is the number of tuples covered.
	NumRows int
	// NumCols is how many leading attributes were tokenized per tuple.
	NumCols int
	// Starts and Ends are flattened [NumRows][NumCols] offset arrays into
	// the owning TextChunk's Data: attribute (r,c) is
	// Data[Starts[r*NumCols+c]:Ends[r*NumCols+c]].
	Starts []int32
	Ends   []int32
	// LineEnd[r] is the offset just past tuple r's last byte (excluding
	// the newline), so a partial map can be extended by scanning forward.
	LineEnd []int32
}

// Field returns the [start,end) offsets of attribute c of row r.
// It panics when the indices are out of range, matching slice semantics.
func (m *PositionalMap) Field(r, c int) (int32, int32) {
	if c >= m.NumCols {
		panic(fmt.Sprintf("chunk: field %d not tokenized (map has %d cols)", c, m.NumCols))
	}
	i := r*m.NumCols + c
	return m.Starts[i], m.Ends[i]
}

// MemSize returns the approximate memory footprint in bytes.
func (m *PositionalMap) MemSize() int {
	return 8*len(m.Starts) + 4*len(m.LineEnd) + 32
}

// Vector is a typed column of values. Exactly one of the payload slices is
// populated, matching Type.
type Vector struct {
	Type   schema.Type
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewVector allocates a vector of n zero values of type t.
func NewVector(t schema.Type, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case schema.Int64:
		v.Ints = make([]int64, n)
	case schema.Float64:
		v.Floats = make([]float64, n)
	case schema.Str:
		v.Strs = make([]string, n)
	default:
		panic(fmt.Sprintf("chunk: invalid vector type %v", t))
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Type {
	case schema.Int64:
		return len(v.Ints)
	case schema.Float64:
		return len(v.Floats)
	default:
		return len(v.Strs)
	}
}

// MemSize returns the approximate memory footprint in bytes.
func (v *Vector) MemSize() int {
	switch v.Type {
	case schema.Int64:
		return 8 * len(v.Ints)
	case schema.Float64:
		return 8 * len(v.Floats)
	default:
		n := 16 * len(v.Strs)
		for _, s := range v.Strs {
			n += len(s)
		}
		return n
	}
}

// BinaryChunk is the columnar processing representation of one chunk.
type BinaryChunk struct {
	// ID is the chunk ordinal within the raw file.
	ID int
	// Rows is the tuple count.
	Rows int

	sch  *schema.Schema
	cols []*Vector // indexed by schema ordinal; nil = column absent
}

// NewBinary creates an empty binary chunk (no columns present yet) for the
// given schema.
func NewBinary(sch *schema.Schema, id, rows int) *BinaryChunk {
	return &BinaryChunk{ID: id, Rows: rows, sch: sch, cols: make([]*Vector, sch.NumColumns())}
}

// Schema returns the table schema the chunk belongs to.
func (b *BinaryChunk) Schema() *schema.Schema { return b.sch }

// SetColumn installs vector v as column ordinal i. The vector's type and
// length must match the schema and row count.
func (b *BinaryChunk) SetColumn(i int, v *Vector) error {
	if i < 0 || i >= len(b.cols) {
		return fmt.Errorf("chunk: column %d out of range [0,%d)", i, len(b.cols))
	}
	if v.Type != b.sch.Column(i).Type {
		return fmt.Errorf("chunk: column %d type %v does not match schema type %v",
			i, v.Type, b.sch.Column(i).Type)
	}
	if v.Len() != b.Rows {
		return fmt.Errorf("chunk: column %d has %d values, chunk has %d rows", i, v.Len(), b.Rows)
	}
	b.cols[i] = v
	return nil
}

// Column returns the vector for column ordinal i, or nil when the column is
// not present in this chunk.
func (b *BinaryChunk) Column(i int) *Vector {
	if i < 0 || i >= len(b.cols) {
		return nil
	}
	return b.cols[i]
}

// Has reports whether column ordinal i is present.
func (b *BinaryChunk) Has(i int) bool { return b.Column(i) != nil }

// HasAll reports whether every listed column ordinal is present.
func (b *BinaryChunk) HasAll(idxs []int) bool {
	for _, i := range idxs {
		if !b.Has(i) {
			return false
		}
	}
	return true
}

// Present returns the ordinals of the columns present in the chunk, in
// schema order.
func (b *BinaryChunk) Present() []int {
	var out []int
	for i, v := range b.cols {
		if v != nil {
			out = append(out, i)
		}
	}
	return out
}

// MemSize returns the approximate memory footprint in bytes, used for
// cache accounting.
func (b *BinaryChunk) MemSize() int {
	n := 64
	for _, v := range b.cols {
		if v != nil {
			n += v.MemSize()
		}
	}
	return n
}

// Clone returns a shallow copy of the chunk: a new column table pointing
// at the same (immutable) vectors. Cloning lets a cache merge columns
// copy-on-write so concurrent readers of the old chunk are never affected.
func (b *BinaryChunk) Clone() *BinaryChunk {
	nb := NewBinary(b.sch, b.ID, b.Rows)
	copy(nb.cols, b.cols)
	return nb
}

// RecycleColumns returns the chunk's column vectors to the shared pools
// (see GetVector) and clears the column table. Only the code that can prove
// exclusive ownership may call it: no other BinaryChunk shares the vectors
// (Clone and Merge alias them across copies of the *same* chunk ID) and no
// reader still holds the chunk — in the operator that means a cleanly
// evicted, unpinned cache entry.
func (b *BinaryChunk) RecycleColumns() {
	for i, v := range b.cols {
		if v != nil {
			PutVector(v)
			b.cols[i] = nil
		}
	}
}

// Merge copies the columns present in o but absent here into b. Both chunks
// must describe the same chunk ID, row count, and schema. It is used when a
// chunk is partially cached and the missing columns arrive from the raw
// file or the database.
func (b *BinaryChunk) Merge(o *BinaryChunk) error {
	if o.ID != b.ID || o.Rows != b.Rows || !o.sch.Equal(b.sch) {
		return fmt.Errorf("chunk: cannot merge chunk %d(%d rows) into %d(%d rows)", o.ID, o.Rows, b.ID, b.Rows)
	}
	for i, v := range o.cols {
		if v != nil && b.cols[i] == nil {
			b.cols[i] = v
		}
	}
	return nil
}
