package chunk

import (
	"math"
	"reflect"
	"testing"

	"scanraw/internal/schema"
)

// FuzzDecodeVector feeds arbitrary bytes to the page decoder. It must
// return an error or a valid vector — never panic — and any page that
// decodes successfully must re-encode and decode to the same values
// (decode is a left inverse of encode on its image).
func FuzzDecodeVector(f *testing.F) {
	mk := func(v *Vector) []byte { return EncodeVector(v) }
	iv := NewVector(schema.Int64, 3)
	iv.Ints = []int64{1, -5, 1 << 40}
	f.Add(mk(iv))
	nv := NewVector(schema.Int64, 2)
	nv.Ints = []int64{7, 9}
	f.Add(mk(nv)) // narrow path
	sv := NewVector(schema.Str, 4)
	sv.Strs = []string{"a", "bb", "a", "bb"}
	f.Add(mk(sv)) // dictionary path
	lv := NewVector(schema.Str, 2)
	lv.Strs = []string{"unique-one", "unique-two"}
	f.Add(mk(lv)) // plain string path
	fv := NewVector(schema.Float64, 2)
	fv.Floats = []float64{1.5, -2.5}
	f.Add(mk(fv))
	f.Add([]byte{})
	f.Add([]byte{0x82, 0xFF, 0xFF, 0xFF, 0xFF, 0x00})

	f.Fuzz(func(t *testing.T, p []byte) {
		v, err := DecodeVector(p)
		if err != nil {
			return
		}
		if !v.Type.Valid() {
			t.Fatalf("decoded invalid type %v", v.Type)
		}
		again, err := DecodeVector(EncodeVector(v))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !vectorsBitEqual(again, v) {
			t.Fatal("decode∘encode not idempotent")
		}
	})
}

// vectorsBitEqual compares vectors with bitwise float equality (NaN bit
// patterns round-trip exactly; reflect.DeepEqual would call NaN != NaN).
func vectorsBitEqual(a, b *Vector) bool {
	if a.Type != b.Type || a.Len() != b.Len() {
		return false
	}
	switch a.Type {
	case schema.Float64:
		for i := range a.Floats {
			if math.Float64bits(a.Floats[i]) != math.Float64bits(b.Floats[i]) {
				return false
			}
		}
		return true
	case schema.Int64:
		return reflect.DeepEqual(a.Ints, b.Ints)
	default:
		return reflect.DeepEqual(a.Strs, b.Strs)
	}
}
