//go:build invariants

package chunk

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Invariants build: the pools track every pointer they currently hold, so
// recycling the same vector or positional map twice panics at the second
// release. A double-recycle otherwise surfaces far away as two goroutines
// being handed the same backing storage — the race detector only sees the
// collision, never the release that caused it. Outstanding counters let
// tests assert acquire/release balance around an operation.
var (
	pooledMu   sync.Mutex
	pooledVecs = map[*Vector]bool{}
	pooledMaps = map[*PositionalMap]bool{}

	outstandingVecs atomic.Int64
	outstandingMaps atomic.Int64
)

func noteGetVector(v *Vector) {
	outstandingVecs.Add(1)
	pooledMu.Lock()
	delete(pooledVecs, v)
	pooledMu.Unlock()
}

func notePutVector(v *Vector) {
	pooledMu.Lock()
	if pooledVecs[v] {
		pooledMu.Unlock()
		panic(fmt.Sprintf("invariant violation: chunk: vector %p recycled twice", v))
	}
	pooledVecs[v] = true
	pooledMu.Unlock()
	outstandingVecs.Add(-1)
}

func noteGetPositionalMap(m *PositionalMap) {
	outstandingMaps.Add(1)
	pooledMu.Lock()
	delete(pooledMaps, m)
	pooledMu.Unlock()
}

func notePutPositionalMap(m *PositionalMap) {
	pooledMu.Lock()
	if pooledMaps[m] {
		pooledMu.Unlock()
		panic(fmt.Sprintf("invariant violation: chunk: positional map %p recycled twice", m))
	}
	pooledMaps[m] = true
	pooledMu.Unlock()
	outstandingMaps.Add(-1)
}

// OutstandingVectors reports vectors acquired from the pool and not yet
// recycled. Only available in invariants builds.
func OutstandingVectors() int64 { return outstandingVecs.Load() }

// OutstandingMaps reports positional maps acquired from the pool and not
// yet recycled. Only available in invariants builds.
func OutstandingMaps() int64 { return outstandingMaps.Load() }
