//go:build invariants

package chunk

import (
	"testing"

	"scanraw/internal/schema"
)

func TestDoubleRecycleVectorPanics(t *testing.T) {
	v := GetVector(schema.Int64, 8)
	PutVector(v)
	defer func() {
		if recover() == nil {
			t.Fatal("second PutVector of the same vector did not panic")
		}
	}()
	PutVector(v)
}

func TestDoubleRecyclePositionalMapPanics(t *testing.T) {
	m := GetPositionalMap(8, 2)
	PutPositionalMap(m)
	defer func() {
		if recover() == nil {
			t.Fatal("second PutPositionalMap of the same map did not panic")
		}
	}()
	PutPositionalMap(m)
}

func TestOutstandingCountersBalance(t *testing.T) {
	vBase, mBase := OutstandingVectors(), OutstandingMaps()

	v := GetVector(schema.Float64, 4)
	m := GetPositionalMap(4, 2)
	if got := OutstandingVectors(); got != vBase+1 {
		t.Errorf("OutstandingVectors = %d, want %d", got, vBase+1)
	}
	if got := OutstandingMaps(); got != mBase+1 {
		t.Errorf("OutstandingMaps = %d, want %d", got, mBase+1)
	}

	PutVector(v)
	PutPositionalMap(m)
	if got := OutstandingVectors(); got != vBase {
		t.Errorf("OutstandingVectors after release = %d, want %d", got, vBase)
	}
	if got := OutstandingMaps(); got != mBase {
		t.Errorf("OutstandingMaps after release = %d, want %d", got, mBase)
	}
}
