package chunk

import (
	"testing"

	"scanraw/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Column{Name: "a", Type: schema.Int64},
		schema.Column{Name: "b", Type: schema.Float64},
		schema.Column{Name: "c", Type: schema.Str},
	)
}

func TestTextChunkMemSize(t *testing.T) {
	c := &TextChunk{ID: 1, Data: []byte("1,2\n3,4\n"), Lines: 2}
	if c.MemSize() <= len(c.Data) {
		t.Errorf("MemSize = %d, want > %d", c.MemSize(), len(c.Data))
	}
}

func TestPositionalMapField(t *testing.T) {
	// Two rows, two cols each: "ab,cde\nf,gh\n"
	m := &PositionalMap{
		NumRows: 2, NumCols: 2,
		Starts:  []int32{0, 3, 7, 9},
		Ends:    []int32{2, 6, 8, 11},
		LineEnd: []int32{6, 11},
	}
	s, e := m.Field(0, 1)
	if s != 3 || e != 6 {
		t.Errorf("Field(0,1) = %d,%d", s, e)
	}
	s, e = m.Field(1, 0)
	if s != 7 || e != 8 {
		t.Errorf("Field(1,0) = %d,%d", s, e)
	}
	defer func() {
		if recover() == nil {
			t.Error("Field beyond NumCols should panic")
		}
	}()
	m.Field(0, 2)
}

func TestVectorLenAndMemSize(t *testing.T) {
	for _, ty := range []schema.Type{schema.Int64, schema.Float64, schema.Str} {
		v := NewVector(ty, 7)
		if v.Len() != 7 {
			t.Errorf("NewVector(%v,7).Len() = %d", ty, v.Len())
		}
		if v.MemSize() <= 0 {
			t.Errorf("MemSize(%v) = %d", ty, v.MemSize())
		}
	}
	v := NewVector(schema.Str, 2)
	v.Strs[0] = "hello"
	base := NewVector(schema.Str, 2).MemSize()
	if v.MemSize() != base+5 {
		t.Errorf("string MemSize should count bytes: %d vs %d", v.MemSize(), base)
	}
}

func TestNewVectorInvalidType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVector with invalid type should panic")
		}
	}()
	NewVector(schema.Type(99), 1)
}

func TestBinaryChunkSetGet(t *testing.T) {
	sch := testSchema(t)
	b := NewBinary(sch, 3, 4)
	if b.ID != 3 || b.Rows != 4 || !b.Schema().Equal(sch) {
		t.Fatalf("NewBinary fields wrong: %+v", b)
	}
	if b.Has(0) || b.Column(0) != nil {
		t.Error("fresh chunk should have no columns")
	}
	v := NewVector(schema.Int64, 4)
	if err := b.SetColumn(0, v); err != nil {
		t.Fatal(err)
	}
	if !b.Has(0) || b.Column(0) != v {
		t.Error("SetColumn did not install the vector")
	}
	// Type mismatch.
	if err := b.SetColumn(1, NewVector(schema.Int64, 4)); err == nil {
		t.Error("type mismatch should fail")
	}
	// Length mismatch.
	if err := b.SetColumn(1, NewVector(schema.Float64, 3)); err == nil {
		t.Error("length mismatch should fail")
	}
	// Out of range.
	if err := b.SetColumn(5, v); err == nil {
		t.Error("out-of-range ordinal should fail")
	}
	if b.Column(-1) != nil || b.Column(99) != nil {
		t.Error("out-of-range Column should return nil")
	}
}

func TestBinaryChunkPresent(t *testing.T) {
	sch := testSchema(t)
	b := NewBinary(sch, 0, 2)
	if err := b.SetColumn(2, NewVector(schema.Str, 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetColumn(0, NewVector(schema.Int64, 2)); err != nil {
		t.Fatal(err)
	}
	p := b.Present()
	if len(p) != 2 || p[0] != 0 || p[1] != 2 {
		t.Errorf("Present = %v, want [0 2]", p)
	}
	if !b.HasAll([]int{0, 2}) {
		t.Error("HasAll([0,2]) should be true")
	}
	if b.HasAll([]int{0, 1}) {
		t.Error("HasAll([0,1]) should be false")
	}
}

func TestBinaryChunkMerge(t *testing.T) {
	sch := testSchema(t)
	a := NewBinary(sch, 0, 2)
	va := NewVector(schema.Int64, 2)
	va.Ints[0] = 11
	if err := a.SetColumn(0, va); err != nil {
		t.Fatal(err)
	}
	b := NewBinary(sch, 0, 2)
	vb := NewVector(schema.Float64, 2)
	if err := b.SetColumn(1, vb); err != nil {
		t.Fatal(err)
	}
	// b also has col 0 with a different value — Merge must not overwrite.
	vb0 := NewVector(schema.Int64, 2)
	vb0.Ints[0] = 99
	if err := b.SetColumn(0, vb0); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Has(1) {
		t.Error("Merge should add missing column 1")
	}
	if a.Column(0).Ints[0] != 11 {
		t.Error("Merge must not overwrite existing columns")
	}
	// Mismatched chunks refuse to merge.
	c := NewBinary(sch, 1, 2)
	if err := a.Merge(c); err == nil {
		t.Error("merging different chunk IDs should fail")
	}
	d := NewBinary(sch, 0, 3)
	if err := a.Merge(d); err == nil {
		t.Error("merging different row counts should fail")
	}
}

func TestBinaryChunkMemSizeGrows(t *testing.T) {
	sch := testSchema(t)
	b := NewBinary(sch, 0, 100)
	empty := b.MemSize()
	if err := b.SetColumn(0, NewVector(schema.Int64, 100)); err != nil {
		t.Fatal(err)
	}
	if b.MemSize() <= empty {
		t.Error("MemSize should grow when columns are added")
	}
}
