package chunk

import (
	"encoding/binary"
	"fmt"
	"math"

	"scanraw/internal/schema"
)

// Vector page encoding. Columns are stored inside the database one vector
// per (column, chunk) page so that a loaded column can be memory-mapped
// back into the in-memory array representation (paper §3.1, "each column is
// assigned an independent set of pages which can be directly mapped into
// the in-memory array representation").
//
// Layout:
//
//	byte 0       type tag
//	bytes 1..4   row count (uint32 LE)
//	Int64/Float64: rows * 8 bytes of values (LE)
//	Str:           rows * 4 bytes of lengths, then concatenated string bytes

const vectorHeaderSize = 5

// tagInt32 marks an Int64 vector whose values all fit in int32 and are
// stored as 4 bytes each. The paper's synthetic workload is uint values
// below 2^31, so its binary representation is ~0.4x the text size; the
// narrow encoding preserves that ratio (and with it the database-vs-
// external-tables gap of Fig. 8).
const tagInt32 = 0x80 | byte(schema.Int64)

// tagStrDict marks a dictionary-encoded string vector: up to 255 distinct
// values stored once, rows as one-byte codes. Low-cardinality columns like
// SAM's RNAME and CIGAR shrink by an order of magnitude.
const tagStrDict = 0x80 | byte(schema.Str)

// EncodeVector serializes v into the page format.
func EncodeVector(v *Vector) []byte {
	n := v.Len()
	switch v.Type {
	case schema.Int64:
		if fitsInt32(v.Ints) {
			out := make([]byte, vectorHeaderSize+4*n)
			out[0] = tagInt32
			binary.LittleEndian.PutUint32(out[1:], uint32(n))
			for i, x := range v.Ints {
				binary.LittleEndian.PutUint32(out[vectorHeaderSize+4*i:], uint32(int32(x)))
			}
			return out
		}
		out := make([]byte, vectorHeaderSize+8*n)
		out[0] = byte(schema.Int64)
		binary.LittleEndian.PutUint32(out[1:], uint32(n))
		for i, x := range v.Ints {
			binary.LittleEndian.PutUint64(out[vectorHeaderSize+8*i:], uint64(x))
		}
		return out
	case schema.Float64:
		out := make([]byte, vectorHeaderSize+8*n)
		out[0] = byte(schema.Float64)
		binary.LittleEndian.PutUint32(out[1:], uint32(n))
		for i, x := range v.Floats {
			binary.LittleEndian.PutUint64(out[vectorHeaderSize+8*i:], math.Float64bits(x))
		}
		return out
	case schema.Str:
		if p, ok := encodeStrDict(v); ok {
			return p
		}
		total := 0
		for _, s := range v.Strs {
			total += len(s)
		}
		out := make([]byte, vectorHeaderSize+4*n+total)
		out[0] = byte(schema.Str)
		binary.LittleEndian.PutUint32(out[1:], uint32(n))
		off := vectorHeaderSize
		for _, s := range v.Strs {
			binary.LittleEndian.PutUint32(out[off:], uint32(len(s)))
			off += 4
		}
		for _, s := range v.Strs {
			copy(out[off:], s)
			off += len(s)
		}
		return out
	default:
		panic(fmt.Sprintf("chunk: cannot encode vector of type %v", v.Type))
	}
}

// DecodeVector parses a page produced by EncodeVector.
func DecodeVector(p []byte) (*Vector, error) {
	if len(p) < vectorHeaderSize {
		return nil, fmt.Errorf("chunk: vector page too short (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[1:]))
	body := p[vectorHeaderSize:]
	if p[0] == tagStrDict {
		return decodeStrDict(n, body)
	}
	if p[0] == tagInt32 {
		if len(body) < 4*n {
			return nil, fmt.Errorf("chunk: truncated int32 page: need %d bytes, have %d", 4*n, len(body))
		}
		v := NewVector(schema.Int64, n)
		for i := 0; i < n; i++ {
			v.Ints[i] = int64(int32(binary.LittleEndian.Uint32(body[4*i:])))
		}
		return v, nil
	}
	t := schema.Type(p[0])
	switch t {
	case schema.Int64, schema.Float64:
		if len(body) < 8*n {
			return nil, fmt.Errorf("chunk: truncated numeric page: need %d bytes, have %d", 8*n, len(body))
		}
		v := NewVector(t, n)
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint64(body[8*i:])
			if t == schema.Int64 {
				v.Ints[i] = int64(bits)
			} else {
				v.Floats[i] = math.Float64frombits(bits)
			}
		}
		return v, nil
	case schema.Str:
		if len(body) < 4*n {
			return nil, fmt.Errorf("chunk: truncated string-length block: need %d bytes, have %d", 4*n, len(body))
		}
		lens := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			lens[i] = int(binary.LittleEndian.Uint32(body[4*i:]))
			total += lens[i]
		}
		data := body[4*n:]
		if len(data) < total {
			return nil, fmt.Errorf("chunk: truncated string data: need %d bytes, have %d", total, len(data))
		}
		v := NewVector(schema.Str, n)
		off := 0
		for i := 0; i < n; i++ {
			v.Strs[i] = string(data[off : off+lens[i]])
			off += lens[i]
		}
		return v, nil
	default:
		return nil, fmt.Errorf("chunk: unknown vector type tag %d", p[0])
	}
}

// encodeStrDict attempts the dictionary encoding:
//
//	byte 0       tagStrDict
//	bytes 1..4   row count (uint32 LE)
//	byte 5       dictionary size - 1
//	entries:     uint16 LE length + bytes, per distinct value
//	rows:        one byte code per row
//
// It declines (ok=false) when there are more than 256 distinct values,
// an entry exceeds uint16, or plain encoding would be smaller.
func encodeStrDict(v *Vector) ([]byte, bool) {
	n := len(v.Strs)
	if n == 0 {
		return nil, false
	}
	codes := make(map[string]int, 16)
	order := make([]string, 0, 16)
	dictBytes := 0
	for _, s := range v.Strs {
		if _, ok := codes[s]; ok {
			continue
		}
		if len(codes) == 256 || len(s) > 1<<16-1 {
			return nil, false
		}
		codes[s] = len(order)
		order = append(order, s)
		dictBytes += 2 + len(s)
	}
	size := vectorHeaderSize + 1 + dictBytes + n
	plain := vectorHeaderSize + 4*n
	for _, s := range v.Strs {
		plain += len(s)
	}
	if size >= plain {
		return nil, false
	}
	out := make([]byte, 0, size)
	var hdr [vectorHeaderSize + 1]byte
	hdr[0] = tagStrDict
	binary.LittleEndian.PutUint32(hdr[1:], uint32(n))
	hdr[vectorHeaderSize] = byte(len(order) - 1)
	out = append(out, hdr[:]...)
	for _, s := range order {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		out = append(out, l[:]...)
		out = append(out, s...)
	}
	for _, s := range v.Strs {
		out = append(out, byte(codes[s]))
	}
	return out, true
}

func decodeStrDict(n int, body []byte) (*Vector, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("chunk: truncated dictionary header")
	}
	ndict := int(body[0]) + 1
	off := 1
	dict := make([]string, ndict)
	for i := 0; i < ndict; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("chunk: truncated dictionary entry length")
		}
		l := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+l > len(body) {
			return nil, fmt.Errorf("chunk: truncated dictionary entry")
		}
		dict[i] = string(body[off : off+l])
		off += l
	}
	if off+n > len(body) {
		return nil, fmt.Errorf("chunk: truncated dictionary codes: need %d, have %d", n, len(body)-off)
	}
	v := NewVector(schema.Str, n)
	for i := 0; i < n; i++ {
		c := int(body[off+i])
		if c >= ndict {
			return nil, fmt.Errorf("chunk: dictionary code %d out of range [0,%d)", c, ndict)
		}
		v.Strs[i] = dict[c]
	}
	return v, nil
}

func fitsInt32(xs []int64) bool {
	for _, x := range xs {
		if x < -1<<31 || x >= 1<<31 {
			return false
		}
	}
	return true
}
