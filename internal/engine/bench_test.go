package engine

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

func benchChunk(b *testing.B, rows, cols int) *chunk.BinaryChunk {
	b.Helper()
	sch, err := schema.Uniform(cols, schema.Int64, "c")
	if err != nil {
		b.Fatal(err)
	}
	bc := chunk.NewBinary(sch, 0, rows)
	for c := 0; c < cols; c++ {
		v := chunk.NewVector(schema.Int64, rows)
		for r := range v.Ints {
			v.Ints[r] = int64(r*cols + c)
		}
		if err := bc.SetColumn(c, v); err != nil {
			b.Fatal(err)
		}
	}
	return bc
}

// BenchmarkScalarSum measures the paper's benchmark query shape:
// SELECT SUM(c0+...+c63) over one chunk.
func BenchmarkScalarSum(b *testing.B) {
	bc := benchChunk(b, 2048, 64)
	cols := make([]int, 64)
	for i := range cols {
		cols[i] = i
	}
	q, err := SumAllColumns(bc.Schema(), "t", cols)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := NewExecutor(q, bc.Schema())
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.Consume(bc); err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBy measures hash aggregation with a modest group count.
func BenchmarkGroupBy(b *testing.B) {
	bc := benchChunk(b, 2048, 2)
	// Make c0 a 32-valued grouping key.
	for r := range bc.Column(0).Ints {
		bc.Column(0).Ints[r] = int64(r % 32)
	}
	q, err := ParseSQL("SELECT c0, COUNT(*), SUM(c1) FROM t GROUP BY c0", bc.Schema())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := NewExecutor(q, bc.Schema())
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.Consume(bc); err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilteredCount measures predicate evaluation plus COUNT.
func BenchmarkFilteredCount(b *testing.B) {
	bc := benchChunk(b, 2048, 4)
	q, err := ParseSQL("SELECT COUNT(*) FROM t WHERE c0 > 1000 AND c1 < 100000", bc.Schema())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := NewExecutor(q, bc.Schema())
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.Consume(bc); err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseSQL measures query compilation.
func BenchmarkParseSQL(b *testing.B) {
	sch, err := schema.Uniform(8, schema.Int64, "c")
	if err != nil {
		b.Fatal(err)
	}
	const sql = "SELECT c0, SUM(c1+c2) AS s FROM t WHERE c3 > 10 AND c4 < 99 GROUP BY c0 ORDER BY s DESC LIMIT 5"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSQL(sql, sch); err != nil {
			b.Fatal(err)
		}
	}
}
