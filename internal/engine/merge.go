package engine

import (
	"fmt"
	"sync"
)

// RunMerger streams the merged, canonically ordered output of a set of
// finished partials without materializing it. Each partial's buffered rows
// form one sorted run; Next pops rows across runs with a loser-tree
// tournament, so emitting n rows over k runs costs O(n log k) comparisons.
// This is the merge-on-emit path behind NDJSON streaming of ORDER BY
// queries: rows go out as they win the tournament instead of after a full
// sort-and-truncate, and a LIMIT bounds the number of tournaments played.
type RunMerger struct {
	q       *Query
	runs    [][]prow
	pos     []int // cursor into each run
	k       int   // number of runs (leaf count)
	tree    []int // tree[0] = overall winner; tree[1..k-1] = losers on the path
	emitted int
}

// NewRunMerger takes ownership of the partials' buffered rows (the partials
// are finished and must not be consumed into afterwards), sorts each run,
// and builds the tournament. Aggregate queries have no row runs to merge.
func NewRunMerger(q *Query, parts []*Partial) (*RunMerger, error) {
	if q.IsAggregate() {
		return nil, fmt.Errorf("engine: RunMerger on an aggregate query")
	}
	m := &RunMerger{q: q}
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.done = true
		rows := p.rows
		if p.top != nil {
			rows = p.top.entries
		}
		if len(rows) == 0 {
			continue
		}
		sortProwsQ(q, rows)
		m.runs = append(m.runs, rows)
	}
	m.k = len(m.runs)
	m.pos = make([]int, m.k)
	m.build()
	return m, nil
}

// build plays the initial tournament: winners propagate up, losers stay at
// the internal nodes they lost at.
func (m *RunMerger) build() {
	if m.k == 0 {
		return
	}
	m.tree = make([]int, m.k)
	winners := make([]int, 2*m.k)
	for i := 0; i < m.k; i++ {
		winners[m.k+i] = i
	}
	for i := m.k - 1; i >= 1; i-- {
		a, b := winners[2*i], winners[2*i+1]
		if m.beats(a, b) {
			winners[i], m.tree[i] = a, b
		} else {
			winners[i], m.tree[i] = b, a
		}
	}
	m.tree[0] = winners[1]
}

// beats reports whether run a's current head precedes run b's. An exhausted
// run loses every comparison, so finished runs sink to the tree's losers and
// the winner is exhausted only when every run is.
func (m *RunMerger) beats(a, b int) bool {
	if m.pos[a] >= len(m.runs[a]) {
		return false
	}
	if m.pos[b] >= len(m.runs[b]) {
		return true
	}
	return prowLessQ(m.q, &m.runs[a][m.pos[a]], &m.runs[b][m.pos[b]])
}

// replay re-runs the tournament along run w's leaf-to-root path after its
// cursor advanced.
func (m *RunMerger) replay(w int) {
	winner := w
	for node := (m.k + w) / 2; node >= 1; node /= 2 {
		if m.beats(m.tree[node], winner) {
			m.tree[node], winner = winner, m.tree[node]
		}
	}
	m.tree[0] = winner
}

// Next returns the next row in canonical order, or false when the merge is
// done — all runs exhausted or the query's LIMIT reached.
func (m *RunMerger) Next() ([]Value, bool) {
	if m.k == 0 {
		return nil, false
	}
	if m.q.Limit > 0 && m.emitted >= m.q.Limit {
		return nil, false
	}
	w := m.tree[0]
	if m.pos[w] >= len(m.runs[w]) {
		return nil, false
	}
	row := m.runs[w][m.pos[w]].vals
	m.pos[w]++
	m.replay(w)
	m.emitted++
	return row, true
}

// sortProwsQ sorts rows into the canonical order for q (see prowLessQ).
func sortProwsQ(q *Query, rows []prow) {
	p := &Partial{q: q}
	p.sortProws(rows)
}

// BoundHolder publishes the tightest top-k cutoff any single partial has
// established, under a mutex so the scan's READ goroutine can consult it for
// chunk pruning while delivery goroutines keep consuming. It is inert (Bound
// always false) unless the query is a non-aggregate ORDER BY ... LIMIT,
// the only shape with a sound per-partial bound.
type BoundHolder struct {
	mu     sync.Mutex
	q      *Query
	active bool
	vals   []Value
	ok     bool
}

// NewBoundHolder builds a holder for q.
func NewBoundHolder(q *Query) *BoundHolder {
	return &BoundHolder{
		q:      q,
		active: !q.IsAggregate() && q.Limit > 0 && len(q.OrderBy) > 0,
	}
}

// Update refreshes the holder from p's heap. The caller must have exclusive
// use of p (i.e. call it where a Consume on p would be legal).
func (b *BoundHolder) Update(p *Partial) {
	if !b.active {
		return
	}
	vals, ok := p.Bound()
	if !ok {
		return
	}
	b.mu.Lock()
	if !b.ok || orderKeyLess(b.q, vals, b.vals) {
		b.vals, b.ok = vals, true
	}
	b.mu.Unlock()
}

// Bound returns the published cutoff row (its full select-list values) and
// whether one exists. The returned slice must not be mutated.
func (b *BoundHolder) Bound() ([]Value, bool) {
	if !b.active {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.vals, b.ok
}

// orderKeyLess compares two select-list rows on the query's ORDER BY keys
// only (no provenance tiebreak): true when a sorts strictly before b.
func orderKeyLess(q *Query, a, b []Value) bool {
	for _, k := range q.OrderBy {
		c := compareValues(a[k.Column], b[k.Column])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}
