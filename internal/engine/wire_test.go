package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

func wireSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Column{Name: "c0", Type: schema.Int64},
		schema.Column{Name: "c1", Type: schema.Int64},
		schema.Column{Name: "c2", Type: schema.Str},
	)
}

// wireChunk builds a binary chunk with deterministic pseudo-random data.
func wireChunk(t *testing.T, sch *schema.Schema, id, rows int, rng *rand.Rand) *chunk.BinaryChunk {
	t.Helper()
	bc := chunk.NewBinary(sch, id, rows)
	for c := 0; c < sch.NumColumns(); c++ {
		v := &chunk.Vector{Type: sch.Column(c).Type}
		for r := 0; r < rows; r++ {
			switch v.Type {
			case schema.Int64:
				v.Ints = append(v.Ints, int64(rng.Intn(500)))
			case schema.Float64:
				v.Floats = append(v.Floats, float64(rng.Intn(500)))
			default:
				v.Strs = append(v.Strs, fmt.Sprintf("s%03d", rng.Intn(500)))
			}
		}
		if err := bc.SetColumn(c, v); err != nil {
			t.Fatal(err)
		}
	}
	return bc
}

// reID returns a shallow copy of bc with a different chunk ID — the shape
// of a worker executing with local IDs over a globally-offset range.
func reID(t *testing.T, sch *schema.Schema, bc *chunk.BinaryChunk, id int) *chunk.BinaryChunk {
	t.Helper()
	out := chunk.NewBinary(sch, id, bc.Rows)
	for c := 0; c < sch.NumColumns(); c++ {
		if bc.Has(c) {
			if err := out.SetColumn(c, bc.Column(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// feedPartial consumes n chunks into a fresh partial for q.
func feedPartial(t *testing.T, q *Query, sch *schema.Schema, chunks []*chunk.BinaryChunk) *Partial {
	t.Helper()
	p, err := NewPartial(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range chunks {
		if err := p.Consume(bc); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestPartialWireRoundTrip: encode → decode → Result must equal the
// original partial's Result, for every query shape the codec carries, and
// the decoded partial must merge with a locally-built one.
func TestPartialWireRoundTrip(t *testing.T) {
	sch := wireSchema(t)
	rng := rand.New(rand.NewSource(7))
	chunks := []*chunk.BinaryChunk{
		wireChunk(t, sch, 0, 40, rng),
		wireChunk(t, sch, 1, 40, rng),
		wireChunk(t, sch, 2, 17, rng),
	}
	queries := []string{
		"SELECT c0, c2 FROM data",
		"SELECT c0 FROM data WHERE c1 > 250",
		"SELECT c0, c1 FROM data LIMIT 9",
		"SELECT c0, c1 FROM data ORDER BY c0 DESC LIMIT 7",
		"SELECT SUM(c0), COUNT(*), MIN(c1), MAX(c2), AVG(c0) FROM data",
		"SELECT c2, SUM(c0), COUNT(*) FROM data GROUP BY c2",
		"SELECT c1, MIN(c0) FROM data GROUP BY c1 ORDER BY c1 LIMIT 11",
	}
	for _, sql := range queries {
		q, err := ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		orig := feedPartial(t, q, sch, chunks)
		data, err := EncodePartial(orig, 0)
		if err != nil {
			t.Fatalf("%s: encode: %v", sql, err)
		}
		decoded, err := DecodePartial(q, sch, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", sql, err)
		}
		want, err := orig.Result()
		if err != nil {
			t.Fatal(err)
		}
		got, err := decoded.Result()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("%s: round-trip mismatch\nwant %v\ngot  %v", sql, want, got)
		}
	}
}

// TestPartialWireMergeEqualsSerial: splitting the chunks across two
// partials, shipping one over the wire, and merging must match feeding
// every chunk through one partial serially.
func TestPartialWireMergeEqualsSerial(t *testing.T) {
	sch := wireSchema(t)
	queries := []string{
		"SELECT c0, c2 FROM data WHERE c0 > 100",
		"SELECT c0 FROM data ORDER BY c0 LIMIT 10",
		"SELECT c2, SUM(c1), AVG(c0), COUNT(*) FROM data GROUP BY c2",
		"SELECT SUM(c0), MIN(c2), MAX(c1) FROM data",
	}
	for _, sql := range queries {
		rng := rand.New(rand.NewSource(11))
		chunks := []*chunk.BinaryChunk{
			wireChunk(t, sch, 0, 30, rng),
			wireChunk(t, sch, 1, 30, rng),
			wireChunk(t, sch, 2, 30, rng),
			wireChunk(t, sch, 3, 5, rng),
		}
		q, err := ParseSQL(sql, sch)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		serial := feedPartial(t, q, sch, chunks)
		want, err := serial.Result()
		if err != nil {
			t.Fatal(err)
		}

		local := feedPartial(t, q, sch, chunks[:2])
		// The remote half executes with local chunk IDs 0..1 and global
		// base 2, as a worker owning range [2,4) would.
		remoteChunks := []*chunk.BinaryChunk{
			reID(t, sch, chunks[2], 0),
			reID(t, sch, chunks[3], 1),
		}
		remote := feedPartial(t, q, sch, remoteChunks)
		data, err := EncodePartial(remote, 2)
		if err != nil {
			t.Fatal(err)
		}
		shipped, err := DecodePartial(q, sch, data)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := MergePartials([]*Partial{local, shipped})
		if err != nil {
			t.Fatal(err)
		}
		got, err := merged.Result()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("%s: distributed merge mismatch\nwant %v\ngot  %v", sql, want, got)
		}
	}
}

// TestPartialWireShapeMismatch: a payload of one kind must not decode
// against a query of another shape.
func TestPartialWireShapeMismatch(t *testing.T) {
	sch := wireSchema(t)
	rng := rand.New(rand.NewSource(3))
	chunks := []*chunk.BinaryChunk{wireChunk(t, sch, 0, 10, rng)}
	rowsQ, _ := ParseSQL("SELECT c0 FROM data", sch)
	aggQ, _ := ParseSQL("SELECT SUM(c0) FROM data", sch)
	limitQ, _ := ParseSQL("SELECT c0 FROM data LIMIT 3", sch)

	rowsPayload, err := EncodePartial(feedPartial(t, rowsQ, sch, chunks), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePartial(aggQ, sch, rowsPayload); err == nil {
		t.Error("row payload decoded against aggregate query")
	}
	if _, err := DecodePartial(limitQ, sch, rowsPayload); err == nil {
		t.Error("row payload decoded against LIMIT query")
	}
	aggPayload, err := EncodePartial(feedPartial(t, aggQ, sch, chunks), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePartial(rowsQ, sch, aggPayload); err == nil {
		t.Error("aggregate payload decoded against row query")
	}
}

// TestPartialWireRejectsCorruption: truncations and bit flips must error,
// never panic, and trailing bytes are rejected.
func TestPartialWireRejectsCorruption(t *testing.T) {
	sch := wireSchema(t)
	rng := rand.New(rand.NewSource(5))
	chunks := []*chunk.BinaryChunk{wireChunk(t, sch, 0, 25, rng)}
	for _, sql := range []string{
		"SELECT c0, c2 FROM data",
		"SELECT c2, SUM(c0) FROM data GROUP BY c2",
		"SELECT c0 FROM data ORDER BY c0 LIMIT 5",
	} {
		q, _ := ParseSQL(sql, sch)
		data, err := EncodePartial(feedPartial(t, q, sch, chunks), 0)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut += 3 {
			if _, err := DecodePartial(q, sch, data[:cut]); err == nil && cut < len(data) {
				t.Errorf("%s: truncation at %d decoded", sql, cut)
			}
		}
		if _, err := DecodePartial(q, sch, append(bytes.Clone(data), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", sql)
		}
		bad := bytes.Clone(data)
		bad[0] ^= 0xff // version
		if _, err := DecodePartial(q, sch, bad); err == nil {
			t.Errorf("%s: wrong version accepted", sql)
		}
	}
}

// FuzzDecodePartial asserts decode totality: arbitrary bytes never panic,
// and valid decodes re-encode to a payload that decodes again.
func FuzzDecodePartial(f *testing.F) {
	sch := schema.MustNew(
		schema.Column{Name: "c0", Type: schema.Int64},
		schema.Column{Name: "c1", Type: schema.Int64},
		schema.Column{Name: "c2", Type: schema.Str},
	)
	seedQueries := []string{
		"SELECT c0, c2 FROM data",
		"SELECT c0 FROM data LIMIT 4",
		"SELECT c2, SUM(c0), COUNT(*) FROM data GROUP BY c2",
	}
	rng := rand.New(rand.NewSource(1))
	var bcs []*chunk.BinaryChunk
	for id := 0; id < 2; id++ {
		bc := chunk.NewBinary(sch, id, 8)
		for c := 0; c < 3; c++ {
			v := &chunk.Vector{Type: sch.Column(c).Type}
			for r := 0; r < 8; r++ {
				if v.Type == schema.Str {
					v.Strs = append(v.Strs, fmt.Sprintf("k%d", rng.Intn(9)))
				} else {
					v.Ints = append(v.Ints, int64(rng.Intn(90)))
				}
			}
			if err := bc.SetColumn(c, v); err != nil {
				f.Fatal(err)
			}
		}
		bcs = append(bcs, bc)
	}
	for qi, sql := range seedQueries {
		q, err := ParseSQL(sql, sch)
		if err != nil {
			f.Fatal(err)
		}
		p, err := NewPartial(q, sch)
		if err != nil {
			f.Fatal(err)
		}
		for _, bc := range bcs {
			if err := p.Consume(bc); err != nil {
				f.Fatal(err)
			}
		}
		data, err := EncodePartial(p, 0)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(qi, data)
	}
	f.Fuzz(func(t *testing.T, qi int, data []byte) {
		sql := seedQueries[((qi%len(seedQueries))+len(seedQueries))%len(seedQueries)]
		q, err := ParseSQL(sql, sch)
		if err != nil {
			t.Fatal(err)
		}
		p, err := DecodePartial(q, sch, data)
		if err != nil {
			return
		}
		re, err := EncodePartial(p, 0)
		if err != nil {
			t.Fatalf("valid decode failed to re-encode: %v", err)
		}
		if _, err := DecodePartial(q, sch, re); err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
	})
}
