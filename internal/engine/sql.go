package engine

import (
	"fmt"
	"strconv"
	"strings"

	"scanraw/internal/schema"
)

// ParseSQL parses and binds a query in the SQL subset the system supports:
//
//	SELECT item [, item...]
//	FROM name
//	[WHERE predicate]
//	[GROUP BY expr [, expr...]]
//	[LIMIT n]
//
// where item is an expression, optionally aggregated with
// SUM/COUNT/MIN/MAX/AVG and optionally aliased with AS. Expressions support
// + - * / %, comparisons, AND/OR/NOT, LIKE/NOT LIKE, parentheses, integer,
// float and 'string' literals, and column references resolved against sch.
func ParseSQL(sql string, sch *schema.Schema) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, sch: sch}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // punctuation and operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j], i})
			i = j
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i
			seenDot := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || (s[j] == '.' && !seenDot)) {
				if s[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
				}
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, b.String(), i})
			i = j + 1
		case strings.ContainsRune("+-*/%(),=", rune(c)):
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '<':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>') {
				toks = append(toks, token{tokOp, s[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

type sqlParser struct {
	toks []token
	pos  int
	sch  *schema.Schema
}

func (p *sqlParser) peek() token   { return p.toks[p.pos] }
func (p *sqlParser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *sqlParser) save() int     { return p.pos }
func (p *sqlParser) restore(m int) { p.pos = m }

// matchKw consumes the next token when it is the given keyword (case
// insensitive).
func (p *sqlParser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// matchOp consumes the next token when it is the given operator.
func (p *sqlParser) matchOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		t := p.peek()
		return fmt.Errorf("sql: expected %s at offset %d, found %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *sqlParser) expectOp(op string) error {
	if !p.matchOp(op) {
		t := p.peek()
		return fmt.Errorf("sql: expected %q at offset %d, found %q", op, t.pos, t.text)
	}
	return nil
}

var aggNames = map[string]AggFunc{
	"SUM": AggSum, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

// reserved keywords that terminate expressions / cannot be column names in
// expression position.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "HAVING": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "LIKE": true,
}

func (p *sqlParser) parseQuery() (*Query, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		// SELECT * expands to every schema column, in order.
		if p.matchOp("*") {
			for _, c := range p.sch.Columns() {
				col, err := NewCol(p.sch, c.Name)
				if err != nil {
					return nil, err
				}
				q.Items = append(q.Items, SelectItem{Expr: col})
			}
		} else {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Items = append(q.Items, item)
		}
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name at offset %d", t.pos)
	}
	q.From = t.text
	if p.matchKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.matchKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("HAVING") {
		for {
			h, err := p.parseHavingClause(q.Items)
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, h)
			if !p.matchKw("AND") {
				break
			}
		}
	}
	if p.matchKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseOrderKey(q.Items)
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT at offset %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %q", t.text)
		}
		q.Limit = n
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at offset %d: %q", t.pos, t.text)
	}
	return q, nil
}

// parseHavingClause parses one HAVING conjunct of the supported subset:
// <select-list column or 1-based ordinal> <cmp> <literal>.
func (p *sqlParser) parseHavingClause(items []SelectItem) (HavingClause, error) {
	var h HavingClause
	t := p.next()
	var col int
	var err error
	switch t.kind {
	case tokIdent:
		if reserved[strings.ToUpper(t.text)] {
			return h, fmt.Errorf("sql: unexpected keyword %q in HAVING at offset %d", t.text, t.pos)
		}
		col, err = resolveOrderKey(items, t.text, 0)
	case tokNumber:
		n, convErr := strconv.Atoi(t.text)
		if convErr != nil {
			return h, fmt.Errorf("sql: invalid HAVING position %q", t.text)
		}
		col, err = resolveOrderKey(items, "", n)
	default:
		return h, fmt.Errorf("sql: HAVING expects a select-list column at offset %d", t.pos)
	}
	if err != nil {
		return h, err
	}
	h.Column = col
	op := p.next()
	cmp, ok := cmpOps[op.text]
	if op.kind != tokOp || !ok {
		return h, fmt.Errorf("sql: HAVING expects a comparison at offset %d", op.pos)
	}
	h.Op = cmp
	lit := p.next()
	switch lit.kind {
	case tokNumber:
		if strings.Contains(lit.text, ".") {
			f, err := strconv.ParseFloat(lit.text, 64)
			if err != nil {
				return h, fmt.Errorf("sql: invalid HAVING literal %q", lit.text)
			}
			h.Value = FloatValue(f)
		} else {
			n, err := strconv.ParseInt(lit.text, 10, 64)
			if err != nil {
				return h, fmt.Errorf("sql: invalid HAVING literal %q", lit.text)
			}
			h.Value = IntValue(n)
		}
	case tokString:
		h.Value = StrValue(lit.text)
	default:
		return h, fmt.Errorf("sql: HAVING expects a literal at offset %d", lit.pos)
	}
	return h, nil
}

// parseOrderKey parses one ORDER BY key: a select-list alias/column name
// or a 1-based ordinal, optionally followed by ASC or DESC.
func (p *sqlParser) parseOrderKey(items []SelectItem) (OrderItem, error) {
	var key OrderItem
	t := p.next()
	var col int
	var err error
	switch t.kind {
	case tokIdent:
		if reserved[strings.ToUpper(t.text)] {
			return key, fmt.Errorf("sql: unexpected keyword %q in ORDER BY at offset %d", t.text, t.pos)
		}
		col, err = resolveOrderKey(items, t.text, 0)
	case tokNumber:
		n, convErr := strconv.Atoi(t.text)
		if convErr != nil {
			return key, fmt.Errorf("sql: invalid ORDER BY position %q", t.text)
		}
		col, err = resolveOrderKey(items, "", n)
	default:
		return key, fmt.Errorf("sql: expected column or position in ORDER BY at offset %d", t.pos)
	}
	if err != nil {
		return key, err
	}
	key.Column = col
	if p.matchKw("DESC") {
		key.Desc = true
	} else {
		p.matchKw("ASC") // optional, the default
	}
	return key, nil
}

func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	var it SelectItem
	// Aggregate function?
	t := p.peek()
	if t.kind == tokIdent {
		if f, ok := aggNames[strings.ToUpper(t.text)]; ok {
			mark := p.save()
			p.next()
			if p.matchOp("(") {
				it.Agg = f
				if f == AggCount && p.matchOp("*") {
					// COUNT(*)
				} else {
					e, err := p.parseExpr()
					if err != nil {
						return it, err
					}
					it.Expr = e
				}
				if err := p.expectOp(")"); err != nil {
					return it, err
				}
			} else {
				p.restore(mark) // a column that happens to be named SUM etc.
			}
		}
	}
	if it.Agg == AggNone {
		e, err := p.parseExpr()
		if err != nil {
			return it, err
		}
		it.Expr = e
	}
	if p.matchKw("AS") {
		t := p.next()
		if t.kind != tokIdent {
			return it, fmt.Errorf("sql: expected alias after AS at offset %d", t.pos)
		}
		it.Alias = t.text
	}
	return it, nil
}

// Expression grammar (highest binding last):
//
//	expr   := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add (cmpOp add | [NOT] LIKE string)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= number | string | column | ( expr )
func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, err = NewLogic(OpOr, l, r)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l, err = NewLogic(OpAnd, l, r)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.matchKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NewLogic(OpNot, e, nil)
	}
	return p.parseCmp()
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *sqlParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return NewCmp(op, l, r)
		}
	}
	negate := false
	mark := p.save()
	if p.matchKw("NOT") {
		if !p.matchKw("LIKE") {
			p.restore(mark)
			return l, nil
		}
		negate = true
	} else if !p.matchKw("LIKE") {
		return l, nil
	}
	t = p.next()
	if t.kind != tokString {
		return nil, fmt.Errorf("sql: LIKE expects a string pattern at offset %d", t.pos)
	}
	return NewLike(l, t.text, negate)
}

func (p *sqlParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch {
		case p.matchOp("+"):
			op = OpAdd
		case p.matchOp("-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l, err = NewArith(op, l, r)
		if err != nil {
			return nil, err
		}
	}
}

func (p *sqlParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch {
		case p.matchOp("*"):
			op = OpMul
		case p.matchOp("/"):
			op = OpDiv
		case p.matchOp("%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, err = NewArith(op, l, r)
		if err != nil {
			return nil, err
		}
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.matchOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*Const); ok {
			switch c.Typ {
			case schema.Int64:
				return ConstInt(-c.Int), nil
			case schema.Float64:
				return ConstFloat(-c.Float), nil
			}
		}
		return NewArith(OpSub, ConstInt(0), e)
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: invalid number %q at offset %d", t.text, t.pos)
			}
			return ConstFloat(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid number %q at offset %d", t.text, t.pos)
		}
		return ConstInt(n), nil
	case tokString:
		return ConstStr(t.text), nil
	case tokIdent:
		if reserved[strings.ToUpper(t.text)] {
			return nil, fmt.Errorf("sql: unexpected keyword %q at offset %d", t.text, t.pos)
		}
		return NewCol(p.sch, t.text)
	case tokOp:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.text, t.pos)
}

// SumAllColumns builds the paper's micro-benchmark query
// SELECT SUM(c_{i1} + ... + c_{iK}) FROM <table> over the listed column
// ordinals of sch.
func SumAllColumns(sch *schema.Schema, table string, cols []int) (*Query, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: SumAllColumns needs at least one column")
	}
	var e Expr
	for _, c := range cols {
		if c < 0 || c >= sch.NumColumns() {
			return nil, fmt.Errorf("engine: column ordinal %d out of range", c)
		}
		col := &Col{Idx: c, Name: sch.Column(c).Name, Typ: sch.Column(c).Type}
		if e == nil {
			e = col
			continue
		}
		var err error
		e, err = NewArith(OpAdd, e, col)
		if err != nil {
			return nil, err
		}
	}
	q := &Query{
		Items: []SelectItem{{Agg: AggSum, Expr: e, Alias: "total"}},
		From:  table,
	}
	return q, q.Validate()
}
