package engine

import (
	"testing"

	"scanraw/internal/testutil"
)

// TestMain fails the package when a test leaves partial-executor or
// delivery goroutines running after it returns. See internal/testutil.
func TestMain(m *testing.M) { testutil.Main(m) }
