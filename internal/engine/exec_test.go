package engine

import (
	"math"
	"strings"
	"testing"

	"scanraw/internal/chunk"
)

func mustQuery(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := ParseSQL(sql, testSch)
	if err != nil {
		t.Fatalf("ParseSQL(%q): %v", sql, err)
	}
	return q
}

func runQuery(t *testing.T, sql string, chunks ...*chunk.BinaryChunk) *Result {
	t.Helper()
	q := mustQuery(t, sql)
	ex, err := NewExecutor(q, testSch)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range chunks {
		if err := ex.Consume(bc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ex.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScalarSum(t *testing.T) {
	res := runQuery(t, "SELECT SUM(a+b) AS total FROM t", testChunk(t))
	if len(res.Rows) != 1 || res.Cols[0] != "total" {
		t.Fatalf("res = %+v", res)
	}
	// (1+10)+(2+20)+(3+30)+(4+40) = 110
	if got := res.Rows[0][0].Int; got != 110 {
		t.Errorf("SUM = %d, want 110", got)
	}
}

func TestScalarSumMultipleChunks(t *testing.T) {
	res := runQuery(t, "SELECT SUM(a) FROM t", testChunk(t), testChunk(t))
	if got := res.Rows[0][0].Int; got != 20 {
		t.Errorf("SUM over 2 chunks = %d, want 20", got)
	}
}

func TestCountStarAndWhere(t *testing.T) {
	res := runQuery(t, "SELECT COUNT(*) FROM t WHERE a >= 3", testChunk(t))
	if got := res.Rows[0][0].Int; got != 2 {
		t.Errorf("COUNT = %d, want 2", got)
	}
}

func TestCountExpression(t *testing.T) {
	// COUNT(expr) counts qualifying rows (there are no NULLs in this
	// engine, so it equals COUNT(*) under the same predicate).
	res := runQuery(t, "SELECT COUNT(a), COUNT(*) FROM t WHERE b >= 20", testChunk(t))
	if res.Rows[0][0].Int != 3 || res.Rows[0][1].Int != 3 {
		t.Errorf("counts = %v", res.Rows[0])
	}
}

func TestAggregatesWithNegatives(t *testing.T) {
	bc := testChunk(t)
	bc.Column(0).Ints[0] = -100
	res := runQuery(t, "SELECT MIN(a), MAX(a), SUM(a) FROM t", bc)
	r := res.Rows[0]
	if r[0].Int != -100 || r[1].Int != 4 || r[2].Int != -100+2+3+4 {
		t.Errorf("negative aggregates = %v", r)
	}
}

func TestMinMaxAvg(t *testing.T) {
	res := runQuery(t, "SELECT MIN(b), MAX(b), AVG(a) FROM t", testChunk(t))
	r := res.Rows[0]
	if r[0].Int != 10 || r[1].Int != 40 {
		t.Errorf("MIN/MAX = %v/%v", r[0], r[1])
	}
	if r[2].Float != 2.5 {
		t.Errorf("AVG = %v, want 2.5", r[2])
	}
}

func TestFloatAggregates(t *testing.T) {
	res := runQuery(t, "SELECT SUM(f), MIN(f), MAX(f) FROM t", testChunk(t))
	r := res.Rows[0]
	if r[0].Float != 8 || r[1].Float != 0.5 || r[2].Float != 3.5 {
		t.Errorf("float aggs = %v", r)
	}
}

func TestStringMinMax(t *testing.T) {
	res := runQuery(t, "SELECT MIN(s), MAX(s) FROM t", testChunk(t))
	r := res.Rows[0]
	if r[0].Str != "x" || r[1].Str != "zzz" {
		t.Errorf("string min/max = %v", r)
	}
}

func TestGroupBy(t *testing.T) {
	// s values: x yy zzz yy → groups x(1), yy(2), zzz(1)
	res := runQuery(t, "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s", testChunk(t))
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	// Rows sorted by key: x, yy, zzz.
	byKey := map[string][]Value{}
	for _, r := range res.Rows {
		byKey[r[0].Str] = r
	}
	if byKey["yy"][1].Int != 2 || byKey["yy"][2].Int != 2+4 {
		t.Errorf("group yy = %v", byKey["yy"])
	}
	if byKey["x"][1].Int != 1 || byKey["zzz"][2].Int != 3 {
		t.Errorf("groups = %v", byKey)
	}
}

func TestGroupByWithWhere(t *testing.T) {
	res := runQuery(t, "SELECT s, COUNT(*) FROM t WHERE a > 1 GROUP BY s", testChunk(t))
	byKey := map[string]int64{}
	for _, r := range res.Rows {
		byKey[r[0].Str] = r[1].Int
	}
	if byKey["x"] != 0 || byKey["yy"] != 2 || byKey["zzz"] != 1 {
		t.Errorf("filtered groups = %v", byKey)
	}
}

func TestEmptyScalarAggregate(t *testing.T) {
	res := runQuery(t, "SELECT SUM(a), COUNT(*), AVG(a) FROM t WHERE a > 100", testChunk(t))
	r := res.Rows[0]
	if r[0].Int != 0 || r[1].Int != 0 {
		t.Errorf("empty aggregate = %v", r)
	}
	if !math.IsNaN(r[2].Float) {
		t.Errorf("AVG over empty should be NaN, got %v", r[2].Float)
	}
}

func TestEmptyGroupByProducesNoRows(t *testing.T) {
	res := runQuery(t, "SELECT s, COUNT(*) FROM t WHERE a > 100 GROUP BY s", testChunk(t))
	if len(res.Rows) != 0 {
		t.Errorf("empty group-by should produce 0 rows, got %d", len(res.Rows))
	}
}

func TestNonAggregateProjection(t *testing.T) {
	res := runQuery(t, "SELECT a, a*b FROM t WHERE s LIKE 'y%'", testChunk(t))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].Int != 2 || res.Rows[0][1].Int != 40 {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int != 4 || res.Rows[1][1].Int != 160 {
		t.Errorf("row1 = %v", res.Rows[1])
	}
}

func TestLimit(t *testing.T) {
	res := runQuery(t, "SELECT a FROM t LIMIT 3", testChunk(t), testChunk(t))
	if len(res.Rows) != 3 {
		t.Errorf("LIMIT 3 returned %d rows", len(res.Rows))
	}
}

func TestLimitGroupBy(t *testing.T) {
	res := runQuery(t, "SELECT s, COUNT(*) FROM t GROUP BY s LIMIT 2", testChunk(t))
	if len(res.Rows) != 2 {
		t.Errorf("grouped LIMIT 2 returned %d rows", len(res.Rows))
	}
}

func TestConsumeAfterResult(t *testing.T) {
	q := mustQuery(t, "SELECT SUM(a) FROM t")
	ex, err := NewExecutor(q, testSch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Result(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Consume(testChunk(t)); err == nil {
		t.Error("Consume after Result should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	// Non-grouped bare column alongside aggregate.
	q := &Query{
		Items: []SelectItem{
			{Expr: col(t, "a")},
			{Agg: AggSum, Expr: col(t, "b")},
		},
		From: "t",
	}
	if err := q.Validate(); err == nil {
		t.Error("bare column with aggregate should fail validation")
	}
	// SUM over string.
	q2 := &Query{
		Items: []SelectItem{{Agg: AggSum, Expr: col(t, "s")}},
		From:  "t",
	}
	if err := q2.Validate(); err == nil {
		t.Error("SUM over string should fail")
	}
	// Empty select.
	if err := (&Query{From: "t"}).Validate(); err == nil {
		t.Error("empty select should fail")
	}
	// Non-boolean WHERE.
	q3 := &Query{
		Items: []SelectItem{{Agg: AggCount}},
		From:  "t",
		Where: ConstStr("x"),
	}
	if err := q3.Validate(); err == nil {
		t.Error("non-boolean WHERE should fail")
	}
	// MIN(*) is invalid.
	q4 := &Query{
		Items: []SelectItem{{Agg: AggMin}},
		From:  "t",
	}
	if err := q4.Validate(); err == nil {
		t.Error("MIN(*) should fail")
	}
}

func TestRequiredColumns(t *testing.T) {
	q := mustQuery(t, "SELECT SUM(b) FROM t WHERE a < 10 GROUP BY s")
	got := q.RequiredColumns()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("RequiredColumns = %v, want [0 1 3]", got)
	}
}

func TestResultString(t *testing.T) {
	res := runQuery(t, "SELECT s, COUNT(*) AS n FROM t GROUP BY s", testChunk(t))
	out := res.String()
	for _, want := range []string{"s", "n", "yy", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Result.String() missing %q:\n%s", want, out)
		}
	}
}

func TestSumAllColumns(t *testing.T) {
	q, err := SumAllColumns(testSch, "t", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(q, testSch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Consume(testChunk(t)); err != nil {
		t.Fatal(err)
	}
	res, _ := ex.Result()
	if res.Rows[0][0].Int != 110 {
		t.Errorf("SumAllColumns = %d, want 110", res.Rows[0][0].Int)
	}
	if _, err := SumAllColumns(testSch, "t", nil); err == nil {
		t.Error("empty columns should fail")
	}
	if _, err := SumAllColumns(testSch, "t", []int{99}); err == nil {
		t.Error("out-of-range ordinal should fail")
	}
}
