package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// mergeQueries is the non-aggregate corpus for the merge-on-emit path:
// ORDER BY in both directions, with and without LIMIT, with ties on the
// sort key, plus provenance-ordered plain projections.
func mergeQueries(rng *rand.Rand) []string {
	lim := 1 + rng.Intn(30)
	cut := rng.Intn(1000)
	return []string{
		fmt.Sprintf("SELECT a, b FROM t ORDER BY b, a LIMIT %d", lim),
		"SELECT a, b FROM t ORDER BY b DESC, a",
		fmt.Sprintf("SELECT b, f FROM t WHERE a = 3 ORDER BY b LIMIT %d", lim),
		fmt.Sprintf("SELECT s, c FROM t WHERE b >= %d ORDER BY c DESC LIMIT %d", cut, lim),
		"SELECT a, c FROM t ORDER BY a", // heavy ties: provenance tiebreak decides
		fmt.Sprintf("SELECT a, b FROM t LIMIT %d", lim),
		"SELECT a, b, c FROM t",
	}
}

// drainMerger collects every row the merger emits.
func drainMerger(m *RunMerger) [][]Value {
	var out [][]Value
	for {
		row, ok := m.Next()
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// TestRunMergerMatchesMaterialized: streaming the merged runs of finished
// partials must produce exactly the rows (and order) of the materialized
// Result over the same consumed chunks.
func TestRunMergerMatchesMaterialized(t *testing.T) {
	for round := 0; round < 4; round++ {
		rng := rand.New(rand.NewSource(int64(7000 + round)))
		chunks := diffChunks(t, rng, 6, 256)
		for _, sql := range mergeQueries(rng) {
			q, err := ParseSQL(sql, diffSch)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			want := runSerial(t, q, chunks)

			pe, err := NewParallelExecutor(q, diffSch, 4)
			if err != nil {
				t.Fatal(err)
			}
			shuffled := append([]*chunk.BinaryChunk(nil), chunks...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			var wg sync.WaitGroup
			for _, bc := range shuffled {
				wg.Add(1)
				go func(bc *chunk.BinaryChunk) {
					defer wg.Done()
					if _, err := pe.ConsumeCounted(bc); err != nil {
						t.Error(err)
					}
				}(bc)
			}
			wg.Wait()
			parts, err := pe.Finish()
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewRunMerger(q, parts)
			if err != nil {
				t.Fatal(err)
			}
			got := drainMerger(m)
			if len(got) != len(want.Rows) {
				t.Fatalf("%s (round %d): merged %d rows, materialized %d", sql, round, len(got), len(want.Rows))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want.Rows[i]) {
					t.Fatalf("%s (round %d): row %d differs\nmerged:       %v\nmaterialized: %v",
						sql, round, i, got[i], want.Rows[i])
				}
			}
			// The merger is exhausted (or at its LIMIT); further calls stay done.
			if _, ok := m.Next(); ok {
				t.Errorf("%s: Next after exhaustion returned a row", sql)
			}
		}
	}
}

func TestRunMergerRejectsAggregate(t *testing.T) {
	q, err := ParseSQL("SELECT SUM(a) FROM t", diffSch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunMerger(q, nil); err == nil {
		t.Fatal("RunMerger accepted an aggregate query")
	}
}

// boundChunk builds a diffSch chunk whose b column holds the given values.
func boundChunk(t *testing.T, id int, bvals []int64) *chunk.BinaryChunk {
	t.Helper()
	n := len(bvals)
	bc := chunk.NewBinary(diffSch, id, n)
	cols := []*chunk.Vector{
		chunk.NewVector(schema.Int64, n),
		chunk.NewVector(schema.Int64, n),
		chunk.NewVector(schema.Int64, n),
		chunk.NewVector(schema.Float64, n),
		chunk.NewVector(schema.Str, n),
	}
	copy(cols[1].Ints, bvals)
	for r := 0; r < n; r++ {
		cols[4].Strs[r] = "g0"
	}
	for i, v := range cols {
		if err := bc.SetColumn(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return bc
}

// TestExecutorBoundTightens: the top-k cutoff appears once a heap fills
// and only ever tightens as better rows arrive.
func TestExecutorBoundTightens(t *testing.T) {
	q, err := ParseSQL("SELECT b FROM t ORDER BY b LIMIT 5", diffSch)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(q, diffSch)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Bound(); ok {
		t.Fatal("bound before any rows")
	}
	high := make([]int64, 16)
	for i := range high {
		high[i] = 500 + int64(i)
	}
	if _, err := ex.ConsumeCounted(boundChunk(t, 0, high)); err != nil {
		t.Fatal(err)
	}
	vals, ok := ex.Bound()
	if !ok {
		t.Fatal("no bound after a full heap")
	}
	first := vals[0].Int
	if first < 500 {
		t.Fatalf("bound %d, want >= 500", first)
	}
	if _, err := ex.ConsumeCounted(boundChunk(t, 1, []int64{1, 2, 3, 4, 5, 6})); err != nil {
		t.Fatal(err)
	}
	vals, ok = ex.Bound()
	if !ok {
		t.Fatal("bound vanished")
	}
	if vals[0].Int >= first {
		t.Fatalf("bound did not tighten: %d -> %d", first, vals[0].Int)
	}

	// No ORDER BY, no LIMIT: the holder stays inert.
	q2, err := ParseSQL("SELECT b FROM t", diffSch)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := NewExecutor(q2, diffSch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex2.ConsumeCounted(boundChunk(t, 0, high)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex2.Bound(); ok {
		t.Fatal("bound on a query without ORDER BY ... LIMIT")
	}
}
