package engine

import (
	"fmt"
	"math"
	"sort"

	"scanraw/internal/schema"
)

// OrderItem is one ORDER BY key: an output-column reference with
// direction. Keys refer to select-list items, either by alias/rendered
// name or 1-based ordinal, matching common SQL practice for aggregate
// queries.
type OrderItem struct {
	// Column is the select-list ordinal the key sorts by.
	Column int
	// Desc sorts descending when set.
	Desc bool
}

// resolveOrderKey binds one parsed ORDER BY key (name or ordinal) to a
// select-list ordinal.
func resolveOrderKey(items []SelectItem, name string, ordinal int) (int, error) {
	if name == "" {
		if ordinal < 1 || ordinal > len(items) {
			return 0, fmt.Errorf("engine: ORDER BY position %d out of range [1,%d]", ordinal, len(items))
		}
		return ordinal - 1, nil
	}
	for i, it := range items {
		if it.Alias == name || it.Name() == name {
			return i, nil
		}
		if it.Agg == AggNone {
			if col, ok := it.Expr.(*Col); ok && col.Name == name {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("engine: ORDER BY key %q does not name a select-list column", name)
}

// compareValues orders two result cells of the same type. Floats use a
// total order (NaN sorts before every number and equals itself) so sorting
// stays transitive — and therefore deterministic — whatever order partial
// executors contributed rows in.
func compareValues(a, b Value) int {
	switch a.Typ {
	case schema.Int64:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
	case schema.Float64:
		switch {
		case a.Float < b.Float:
			return -1
		case a.Float > b.Float:
			return 1
		case a.Float == b.Float:
			return 0
		}
		// At least one side is NaN.
		an, bn := math.IsNaN(a.Float), math.IsNaN(b.Float)
		switch {
		case an && !bn:
			return -1
		case bn && !an:
			return 1
		}
	case schema.Str:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		}
	}
	return 0
}

// HavingClause filters aggregated result rows: output column <cmp>
// literal. This deliberately small HAVING subset covers the common
// post-aggregation filters (COUNT(*) > n, SUM(x) >= y) without a second
// expression-binding pass over output columns.
type HavingClause struct {
	// Column is the select-list ordinal the predicate tests.
	Column int
	// Op is the comparison operator.
	Op CmpOp
	// Value is the literal compared against.
	Value Value
}

// eval applies the clause to one result row.
func (h HavingClause) eval(row []Value) bool {
	c := compareValues(row[h.Column], h.Value)
	switch h.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// filterRows applies HAVING clauses (ANDed) in place.
func filterRows(rows [][]Value, clauses []HavingClause) [][]Value {
	if len(clauses) == 0 {
		return rows
	}
	out := rows[:0]
	for _, row := range rows {
		keep := true
		for _, h := range clauses {
			if !h.eval(row) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out
}

// sortRows applies the ORDER BY keys to a materialized result. The sort is
// stable so ties keep the engine's deterministic group ordering.
func sortRows(rows [][]Value, keys []OrderItem) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := compareValues(rows[i][k.Column], rows[j][k.Column])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
