package engine

import (
	"testing"

	"scanraw/internal/schema"
)

// FuzzParseSQL drives the lexer and parser with arbitrary input. The
// invariant is totality: ParseSQL must return a value or an error, never
// panic, and a successfully parsed query must re-validate.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT SUM(a+b) FROM t",
		"SELECT a, COUNT(*) FROM t WHERE a > 1 AND s LIKE '%x%' GROUP BY a ORDER BY 2 DESC LIMIT 3",
		"SELECT -a * (b + 1.5) AS v FROM t WHERE NOT s = 'it''s'",
		"select min(f), max(f), avg(f) from t where f >= .5 or a <> 0",
		"SELECT",
		"SELECT a FROM",
		"'",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE ((((a))))=1",
		"SELECT a FROM t ORDER BY",
		"SELECT \x00 FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := schema.MustNew(
		schema.Column{Name: "a", Type: schema.Int64},
		schema.Column{Name: "b", Type: schema.Int64},
		schema.Column{Name: "f", Type: schema.Float64},
		schema.Column{Name: "s", Type: schema.Str},
	)
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := ParseSQL(sql, sch)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("parsed query fails validation: %v\nsql: %q", err, sql)
		}
		// Required columns must be valid ordinals.
		for _, c := range q.RequiredColumns() {
			if c < 0 || c >= sch.NumColumns() {
				t.Fatalf("required column %d out of range for %q", c, sql)
			}
		}
	})
}

// FuzzLikeMatch checks the backtracking matcher never panics or loops and
// agrees with a simple reference implementation on wildcard-free patterns.
func FuzzLikeMatch(f *testing.F) {
	f.Add("hello", "h%o")
	f.Add("", "%")
	f.Add("aaaa", "a%a%a")
	f.Add("mississippi", "%iss%_p_")
	f.Fuzz(func(t *testing.T, s, p string) {
		got := likeMatch(s, p)
		hasWildcard := false
		for i := 0; i < len(p); i++ {
			if p[i] == '%' || p[i] == '_' {
				hasWildcard = true
				break
			}
		}
		if !hasWildcard && got != (s == p) {
			t.Fatalf("likeMatch(%q,%q) = %v, want equality semantics", s, p, got)
		}
	})
}
