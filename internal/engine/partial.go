package engine

import (
	"context"
	"fmt"
	"sort"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// Partial is a mergeable fragment of query-execution state: selection,
// aggregation hash tables, and (for non-aggregate queries) a row buffer —
// bounded by a top-k heap when the query carries a LIMIT. Several partials
// over disjoint chunk subsets can run on independent goroutines (each
// partial is single-consumer) and be combined with Merge into a state whose
// Result is identical to feeding every chunk through one partial serially.
//
// Determinism contract: the final row order of a non-aggregate query is the
// canonical order (ORDER BY keys, then chunk ID, then row ordinal within
// the chunk), and grouped results are ordered by encoded group key — both
// independent of chunk arrival order or partial assignment. Aggregates over
// int64 data are exact; float SUM/AVG accumulate in partial order, so
// bit-identical parallel/serial results additionally require float data
// whose sums are exact in IEEE-754 (see DESIGN.md, "Parallel query
// evaluation").
type Partial struct {
	q   *Query
	sch *schema.Schema

	groups map[string]*group // aggregate path
	rows   []prow            // non-aggregate path, unbounded (no LIMIT)
	top    *topK             // non-aggregate path, bounded by LIMIT
	done   bool

	sel []int  // selection scratch, reused across chunks
	kb  []byte // group-key scratch, reused across rows
}

// prow is one buffered output row with its provenance, the tiebreaker that
// makes row order independent of delivery order.
type prow struct {
	chunk int
	row   int
	vals  []Value
}

// NewPartial validates q and creates an empty partial over schema sch.
func NewPartial(q *Query, sch *schema.Schema) (*Partial, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Partial{q: q, sch: sch}
	if q.IsAggregate() {
		p.groups = make(map[string]*group)
	} else if q.Limit > 0 {
		p.top = &topK{p: p, k: q.Limit}
	}
	return p, nil
}

// Query returns the query the partial executes.
func (p *Partial) Query() *Query { return p.q }

// ConsumeContext folds one chunk into the partial after checking for
// cancellation: the delivery path calls it once per chunk, so a cancelled
// context stops execution at the next chunk boundary.
func (p *Partial) ConsumeContext(ctx context.Context, bc *chunk.BinaryChunk) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return p.Consume(bc)
}

// Consume folds one chunk into the partial. A partial is single-consumer:
// Consume must not be called concurrently on the same partial (use one
// partial per consume worker, or ParallelExecutor which enforces this).
func (p *Partial) Consume(bc *chunk.BinaryChunk) error {
	_, err := p.ConsumeCounted(bc)
	return err
}

// ConsumeCounted is Consume returning the number of rows that passed the
// WHERE clause, the signal demand-driven termination needs to decide when a
// LIMIT is provably met.
func (p *Partial) ConsumeCounted(bc *chunk.BinaryChunk) (int, error) {
	if p.done {
		return 0, fmt.Errorf("engine: Consume after Result")
	}
	sel, selv, err := p.selection(bc)
	if err != nil {
		return 0, err
	}
	matched := bc.Rows
	if sel != nil {
		matched = len(sel)
	}
	if p.q.IsAggregate() {
		err = p.consumeAgg(bc, sel)
	} else {
		err = p.consumeRows(bc, sel)
	}
	if selv != nil {
		releaseScratch(p.q.Where, selv)
	}
	return matched, err
}

// Bound returns the partial's current top-k cutoff — the output values of
// the worst row the heap retains — and whether the heap is full. Only a full
// heap yields a bound: until then any future row would still be kept. The
// bound is sound for pruning on its own (a chunk whose every row sorts
// strictly after it cannot enter the final top-k even combined with other
// partials, since this partial alone already holds k better rows).
func (p *Partial) Bound() ([]Value, bool) {
	if p.top == nil || len(p.top.entries) < p.top.k {
		return nil, false
	}
	worst := p.top.entries[0].vals
	out := make([]Value, len(worst))
	copy(out, worst)
	return out, true
}

// selection evaluates WHERE and returns the qualifying row ordinals (nil
// means all rows qualify). The returned vector, when non-nil, backs nothing
// in sel and is released by the caller after use.
func (p *Partial) selection(bc *chunk.BinaryChunk) ([]int, *chunk.Vector, error) {
	if p.q.Where == nil {
		return nil, nil, nil
	}
	v, err := p.q.Where.Eval(bc)
	if err != nil {
		return nil, nil, err
	}
	if cap(p.sel) < bc.Rows {
		p.sel = make([]int, 0, bc.Rows)
	}
	sel := p.sel[:0]
	for i, x := range v.Ints {
		if x != 0 {
			sel = append(sel, i)
		}
	}
	p.sel = sel
	return sel, v, nil
}

func (p *Partial) consumeAgg(bc *chunk.BinaryChunk, sel []int) error {
	if sel != nil && len(sel) == 0 {
		return nil
	}
	// Evaluate group-by keys and aggregate inputs once per chunk.
	keyVecs := make([]*chunk.Vector, len(p.q.GroupBy))
	for i, g := range p.q.GroupBy {
		v, err := g.Eval(bc)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	aggVecs := make([]*chunk.Vector, len(p.q.Items))
	for i, it := range p.q.Items {
		if it.Expr != nil {
			v, err := it.Expr.Eval(bc)
			if err != nil {
				return err
			}
			aggVecs[i] = v
		}
	}
	defer func() {
		for i, v := range keyVecs {
			releaseScratch(p.q.GroupBy[i], v)
		}
		for i, v := range aggVecs {
			if v != nil {
				releaseScratch(p.q.Items[i].Expr, v)
			}
		}
	}()
	if len(keyVecs) == 0 {
		// Scalar aggregation: one group, bulk loops over the vectors.
		// This is the hot path for the paper's SUM benchmark query; it
		// must stay cheap enough that SCANRAW, not the engine, is the
		// measured component.
		g, ok := p.groups[""]
		if !ok {
			g = &group{aggs: make([]aggState, len(p.q.Items))}
			p.groups[""] = g
		}
		for i, it := range p.q.Items {
			if it.Agg == AggNone {
				continue
			}
			updateAggBulk(&g.aggs[i], aggVecs[i], bc.Rows, sel)
		}
		return nil
	}
	// Grouped aggregation: build compact keys with strconv (no fmt, no
	// per-row allocation beyond new groups).
	kb := p.kb
	rowCount := bc.Rows
	if sel != nil {
		rowCount = len(sel)
	}
	for ri := 0; ri < rowCount; ri++ {
		r := ri
		if sel != nil {
			r = sel[ri]
		}
		kb = kb[:0]
		for _, kv := range keyVecs {
			kb = appendKey(kb, kv, r)
		}
		g, ok := p.groups[string(kb)]
		if !ok {
			keys := make([]Value, len(keyVecs))
			for i, kv := range keyVecs {
				keys[i] = valueAt(kv, r)
			}
			g = &group{keys: keys, aggs: make([]aggState, len(p.q.Items))}
			p.groups[string(kb)] = g
		}
		for i, it := range p.q.Items {
			if it.Agg == AggNone {
				continue
			}
			updateAggRow(&g.aggs[i], aggVecs[i], r)
		}
	}
	p.kb = kb
	return nil
}

func (p *Partial) consumeRows(bc *chunk.BinaryChunk, sel []int) error {
	vecs := make([]*chunk.Vector, len(p.q.Items))
	for i, it := range p.q.Items {
		v, err := it.Expr.Eval(bc)
		if err != nil {
			return err
		}
		vecs[i] = v
	}
	emit := func(r int) {
		row := make([]Value, len(vecs))
		for i, v := range vecs {
			row[i] = valueAt(v, r)
		}
		pr := prow{chunk: bc.ID, row: r, vals: row}
		if p.top != nil {
			p.top.push(pr)
		} else {
			p.rows = append(p.rows, pr)
		}
	}
	if sel == nil {
		for r := 0; r < bc.Rows; r++ {
			emit(r)
		}
	} else {
		for _, r := range sel {
			emit(r)
		}
	}
	for i, v := range vecs {
		releaseScratch(p.q.Items[i].Expr, v)
	}
	return nil
}

// ChunkRows evaluates the query's selection and projection over one chunk
// and returns the qualifying rows in chunk order, leaving the partial's
// accumulated state untouched. It is the building block of streaming
// delivery, where rows are emitted as chunks arrive instead of being
// buffered to the end. Only valid for non-aggregate queries; like Consume,
// calls on the same partial must not overlap.
func (p *Partial) ChunkRows(bc *chunk.BinaryChunk) ([][]Value, error) {
	if p.q.IsAggregate() {
		return nil, fmt.Errorf("engine: ChunkRows on an aggregate query")
	}
	sel, selv, err := p.selection(bc)
	if err != nil {
		return nil, err
	}
	defer func() {
		if selv != nil {
			releaseScratch(p.q.Where, selv)
		}
	}()
	vecs := make([]*chunk.Vector, len(p.q.Items))
	for i, it := range p.q.Items {
		v, err := it.Expr.Eval(bc)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	n := bc.Rows
	if sel != nil {
		n = len(sel)
	}
	out := make([][]Value, 0, n)
	for ri := 0; ri < n; ri++ {
		r := ri
		if sel != nil {
			r = sel[ri]
		}
		row := make([]Value, len(vecs))
		for i, v := range vecs {
			row[i] = valueAt(v, r)
		}
		out = append(out, row)
	}
	for i, v := range vecs {
		releaseScratch(p.q.Items[i].Expr, v)
	}
	return out, nil
}

// Merge folds o into p. Both partials must execute the same query; o is
// consumed and must not be used afterwards. Merging is commutative up to
// float summation order and buffered-row concatenation order, both of which
// the finalize step canonicalizes (see the type comment).
func (p *Partial) Merge(o *Partial) error {
	if p.done || o.done {
		return fmt.Errorf("engine: Merge after Result")
	}
	if p.q != o.q {
		return fmt.Errorf("engine: Merge of partials from different queries")
	}
	if p.groups != nil {
		for key, og := range o.groups {
			g, ok := p.groups[key]
			if !ok {
				p.groups[key] = og
				continue
			}
			for i := range g.aggs {
				mergeAgg(&g.aggs[i], &og.aggs[i])
			}
		}
		o.groups = nil
		return nil
	}
	if p.top != nil {
		for _, pr := range o.top.entries {
			p.top.push(pr)
		}
		o.top = nil
		return nil
	}
	p.rows = append(p.rows, o.rows...)
	o.rows = nil
	return nil
}

// mergeAgg folds one aggregate state into another. Only the fields the
// aggregate's type ever touched carry information, so merging every field
// unconditionally is safe.
func mergeAgg(dst, src *aggState) {
	dst.count += src.count
	dst.sumInt += src.sumInt
	dst.sumFloat += src.sumFloat
	if !src.seen {
		return
	}
	if !dst.seen {
		dst.minI, dst.maxI = src.minI, src.maxI
		dst.minF, dst.maxF = src.minF, src.maxF
		dst.minS, dst.maxS = src.minS, src.maxS
		dst.seen = true
		return
	}
	if src.minI < dst.minI {
		dst.minI = src.minI
	}
	if src.maxI > dst.maxI {
		dst.maxI = src.maxI
	}
	if src.minF < dst.minF {
		dst.minF = src.minF
	}
	if src.maxF > dst.maxF {
		dst.maxF = src.maxF
	}
	if src.minS < dst.minS {
		dst.minS = src.minS
	}
	if src.maxS > dst.maxS {
		dst.maxS = src.maxS
	}
}

// Result materializes the final result and marks the partial finished. For
// grouped queries rows are ordered by group key; non-aggregate rows are
// ordered canonically (ORDER BY keys, then chunk provenance) — both
// deterministic regardless of consumption order.
func (p *Partial) Result() (*Result, error) {
	p.done = true
	res := &Result{Cols: make([]string, len(p.q.Items))}
	for i, it := range p.q.Items {
		res.Cols[i] = it.Name()
	}
	if !p.q.IsAggregate() {
		rows := p.rows
		if p.top != nil {
			rows = p.top.entries
		}
		p.sortProws(rows)
		if p.q.Limit > 0 && len(rows) > p.q.Limit {
			rows = rows[:p.q.Limit]
		}
		res.Rows = make([][]Value, len(rows))
		for i := range rows {
			res.Rows[i] = rows[i].vals
		}
		return res, nil
	}
	if len(p.q.GroupBy) == 0 && len(p.groups) == 0 {
		// Scalar aggregate over the empty input.
		p.groups[""] = &group{aggs: make([]aggState, len(p.q.Items))}
	}
	keys := make([]string, 0, len(p.groups))
	for k := range p.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Rows = append(res.Rows, p.finalize(p.groups[k]))
	}
	res.Rows = filterRows(res.Rows, p.q.Having)
	sortRows(res.Rows, p.q.OrderBy)
	if p.q.Limit > 0 && len(res.Rows) > p.q.Limit {
		res.Rows = res.Rows[:p.q.Limit]
	}
	return res, nil
}

// finalize converts one group's aggregate state into output values.
func (p *Partial) finalize(g *group) []Value {
	row := make([]Value, len(p.q.Items))
	keyIdx := map[string]int{}
	for i, gb := range p.q.GroupBy {
		keyIdx[gb.String()] = i
	}
	for i, it := range p.q.Items {
		if it.Agg == AggNone {
			row[i] = g.keys[keyIdx[it.Expr.String()]]
			continue
		}
		st := g.aggs[i]
		var t schema.Type
		if it.Expr != nil {
			t = it.Expr.Type()
		}
		row[i] = finalizeAgg(it.Agg, t, st)
	}
	return row
}

// prowLess is the canonical row order: ORDER BY keys first, then chunk ID,
// then row ordinal within the chunk.
func (p *Partial) prowLess(a, b *prow) bool { return prowLessQ(p.q, a, b) }

// prowLessQ is prowLess as a standalone function, shared with the run merger
// which orders rows across partials it no longer owns.
func prowLessQ(q *Query, a, b *prow) bool {
	for _, k := range q.OrderBy {
		c := compareValues(a.vals[k.Column], b.vals[k.Column])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	if a.chunk != b.chunk {
		return a.chunk < b.chunk
	}
	return a.row < b.row
}

// sortProws sorts rows into canonical order. The sort is stable so
// duplicate provenance (possible only when a caller feeds chunks with
// duplicate IDs by hand — the operator never does) keeps arrival order.
func (p *Partial) sortProws(rows []prow) {
	sort.SliceStable(rows, func(i, j int) bool { return p.prowLess(&rows[i], &rows[j]) })
}

// topK is a bounded buffer keeping the k first rows in canonical order,
// implemented as a max-heap whose root is the worst retained row. It is the
// LIMIT (with or without ORDER BY) row bound: each partial retains at most
// k rows regardless of how many qualify.
type topK struct {
	p       *Partial
	k       int
	entries []prow
}

// push offers one row. When full, the row replaces the current worst if it
// precedes it canonically.
func (t *topK) push(pr prow) {
	if len(t.entries) < t.k {
		t.entries = append(t.entries, pr)
		t.siftUp(len(t.entries) - 1)
		return
	}
	if t.less(&pr, &t.entries[0]) {
		t.entries[0] = pr
		t.siftDown(0)
	}
}

// less delegates to the owning partial's canonical order; the owner pointer
// is installed lazily because the partial embeds the heap it orders for.
func (t *topK) less(a, b *prow) bool { return t.p.prowLess(a, b) }

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Max-heap on the canonical order: a child that sorts after its
		// parent moves up.
		if !t.less(&t.entries[parent], &t.entries[i]) {
			return
		}
		t.entries[parent], t.entries[i] = t.entries[i], t.entries[parent]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.less(&t.entries[largest], &t.entries[l]) {
			largest = l
		}
		if r < n && t.less(&t.entries[largest], &t.entries[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.entries[i], t.entries[largest] = t.entries[largest], t.entries[i]
		i = largest
	}
}
