package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

var testSch = schema.MustNew(
	schema.Column{Name: "a", Type: schema.Int64},
	schema.Column{Name: "b", Type: schema.Int64},
	schema.Column{Name: "f", Type: schema.Float64},
	schema.Column{Name: "s", Type: schema.Str},
)

// testChunk builds a 4-row chunk:
//
//	a: 1 2 3 4
//	b: 10 20 30 40
//	f: 0.5 1.5 2.5 3.5
//	s: "x" "yy" "zzz" "yy"
func testChunk(t *testing.T) *chunk.BinaryChunk {
	t.Helper()
	bc := chunk.NewBinary(testSch, 0, 4)
	a := chunk.NewVector(schema.Int64, 4)
	b := chunk.NewVector(schema.Int64, 4)
	f := chunk.NewVector(schema.Float64, 4)
	s := chunk.NewVector(schema.Str, 4)
	for i := 0; i < 4; i++ {
		a.Ints[i] = int64(i + 1)
		b.Ints[i] = int64((i + 1) * 10)
		f.Floats[i] = float64(i) + 0.5
	}
	s.Strs = []string{"x", "yy", "zzz", "yy"}
	for i, v := range []*chunk.Vector{a, b, f, s} {
		if err := bc.SetColumn(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return bc
}

func col(t *testing.T, name string) *Col {
	t.Helper()
	c, err := NewCol(testSch, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColEval(t *testing.T) {
	bc := testChunk(t)
	v, err := col(t, "a").Eval(bc)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints[2] != 3 {
		t.Errorf("a[2] = %d", v.Ints[2])
	}
	if _, err := NewCol(testSch, "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	// Column absent from chunk.
	partial := chunk.NewBinary(testSch, 1, 2)
	if _, err := col(t, "a").Eval(partial); err == nil {
		t.Error("absent column should fail at eval")
	}
}

func TestConstEval(t *testing.T) {
	bc := testChunk(t)
	for _, c := range []*Const{ConstInt(7), ConstFloat(2.5), ConstStr("hi")} {
		v, err := c.Eval(bc)
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != 4 {
			t.Errorf("const vector len = %d", v.Len())
		}
	}
	v, _ := ConstInt(7).Eval(bc)
	if v.Ints[3] != 7 {
		t.Error("const broadcast wrong")
	}
}

func TestArithIntOps(t *testing.T) {
	bc := testChunk(t)
	cases := []struct {
		op   ArithOp
		want []int64 // a OP b
	}{
		{OpAdd, []int64{11, 22, 33, 44}},
		{OpSub, []int64{-9, -18, -27, -36}},
		{OpMul, []int64{10, 40, 90, 160}},
		{OpDiv, []int64{0, 0, 0, 0}},
		{OpMod, []int64{1, 2, 3, 4}},
	}
	for _, c := range cases {
		e, err := NewArith(c.op, col(t, "a"), col(t, "b"))
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.Eval(bc)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		for i, w := range c.want {
			if v.Ints[i] != w {
				t.Errorf("%v row %d = %d, want %d", c.op, i, v.Ints[i], w)
			}
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	bc := testChunk(t)
	e, err := NewArith(OpAdd, col(t, "a"), col(t, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != schema.Float64 {
		t.Fatalf("int+float should be float, got %v", e.Type())
	}
	v, err := e.Eval(bc)
	if err != nil {
		t.Fatal(err)
	}
	if v.Floats[1] != 2+1.5 {
		t.Errorf("row 1 = %v", v.Floats[1])
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := NewArith(OpAdd, ConstStr("x"), ConstInt(1)); err == nil {
		t.Error("string arithmetic should fail")
	}
	if _, err := NewArith(OpMod, ConstFloat(1), ConstInt(1)); err == nil {
		t.Error("float modulo should fail")
	}
	bc := testChunk(t)
	e, _ := NewArith(OpDiv, col(t, "a"), ConstInt(0))
	if _, err := e.Eval(bc); err == nil {
		t.Error("division by zero should fail")
	}
	em, _ := NewArith(OpMod, col(t, "a"), ConstInt(0))
	if _, err := em.Eval(bc); err == nil {
		t.Error("modulo by zero should fail")
	}
}

func TestCmpOps(t *testing.T) {
	bc := testChunk(t)
	cases := []struct {
		op   CmpOp
		rhs  int64
		want []int64
	}{
		{OpEq, 2, []int64{0, 1, 0, 0}},
		{OpNe, 2, []int64{1, 0, 1, 1}},
		{OpLt, 3, []int64{1, 1, 0, 0}},
		{OpLe, 3, []int64{1, 1, 1, 0}},
		{OpGt, 2, []int64{0, 0, 1, 1}},
		{OpGe, 2, []int64{0, 1, 1, 1}},
	}
	for _, c := range cases {
		e, err := NewCmp(c.op, col(t, "a"), ConstInt(c.rhs))
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.Eval(bc)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range c.want {
			if v.Ints[i] != w {
				t.Errorf("a %v %d row %d = %d, want %d", c.op, c.rhs, i, v.Ints[i], w)
			}
		}
	}
}

func TestCmpStringAndMixed(t *testing.T) {
	bc := testChunk(t)
	e, err := NewCmp(OpEq, col(t, "s"), ConstStr("yy"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := e.Eval(bc)
	if v.Ints[0] != 0 || v.Ints[1] != 1 || v.Ints[3] != 1 {
		t.Errorf("string eq = %v", v.Ints)
	}
	// Mixed numeric comparison promotes.
	e2, err := NewCmp(OpGt, col(t, "f"), col(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := e2.Eval(bc)
	// f = 0.5 1.5 2.5 3.5 vs a = 1 2 3 4 → all false... 0.5<1, 1.5<2 etc.
	for i, x := range v2.Ints {
		if x != 0 {
			t.Errorf("f>a row %d should be false", i)
		}
	}
	if _, err := NewCmp(OpEq, col(t, "s"), ConstInt(1)); err == nil {
		t.Error("string vs int comparison should fail")
	}
}

func TestLogic(t *testing.T) {
	bc := testChunk(t)
	lt, _ := NewCmp(OpLt, col(t, "a"), ConstInt(3))  // 1 1 0 0
	gt, _ := NewCmp(OpGt, col(t, "b"), ConstInt(10)) // 0 1 1 1
	and, err := NewLogic(OpAnd, lt, gt)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := and.Eval(bc)
	if v.Ints[0] != 0 || v.Ints[1] != 1 || v.Ints[2] != 0 {
		t.Errorf("AND = %v", v.Ints)
	}
	or, _ := NewLogic(OpOr, lt, gt)
	v, _ = or.Eval(bc)
	if v.Ints[0] != 1 || v.Ints[3] != 1 {
		t.Errorf("OR = %v", v.Ints)
	}
	not, _ := NewLogic(OpNot, lt, nil)
	v, _ = not.Eval(bc)
	if v.Ints[0] != 0 || v.Ints[2] != 1 {
		t.Errorf("NOT = %v", v.Ints)
	}
	if _, err := NewLogic(OpAnd, ConstStr("x"), lt); err == nil {
		t.Error("non-boolean logic operand should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h__o", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%c", true},
		{"abc", "a%b%c%", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%xpi", false},
		{"5M", "%M%", true},
		{"3S5M", "_S%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeEval(t *testing.T) {
	bc := testChunk(t)
	l, err := NewLike(col(t, "s"), "y%", false)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := l.Eval(bc)
	if v.Ints[0] != 0 || v.Ints[1] != 1 || v.Ints[2] != 0 || v.Ints[3] != 1 {
		t.Errorf("LIKE = %v", v.Ints)
	}
	nl, _ := NewLike(col(t, "s"), "y%", true)
	v, _ = nl.Eval(bc)
	if v.Ints[0] != 1 || v.Ints[1] != 0 {
		t.Errorf("NOT LIKE = %v", v.Ints)
	}
	if _, err := NewLike(col(t, "a"), "%", false); err == nil {
		t.Error("LIKE over non-string should fail")
	}
}

func TestDedupColumns(t *testing.T) {
	a := col(t, "a")
	b := col(t, "b")
	sum, _ := NewArith(OpAdd, b, a)
	pred, _ := NewCmp(OpLt, a, ConstInt(5))
	got := DedupColumns(sum, pred, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("DedupColumns = %v, want [0 1]", got)
	}
	if got := DedupColumns(); got != nil {
		t.Errorf("empty DedupColumns = %v", got)
	}
}

func TestExprStrings(t *testing.T) {
	a := col(t, "a")
	e, _ := NewArith(OpAdd, a, ConstInt(1))
	c, _ := NewCmp(OpLe, e, ConstFloat(2.5))
	l, _ := NewLogic(OpNot, c, nil)
	s := l.String()
	for _, want := range []string{"a", "+", "1", "<=", "2.5", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	lk, _ := NewLike(col(t, "s"), "a%", true)
	if !strings.Contains(lk.String(), "NOT LIKE") {
		t.Errorf("Like.String() = %q", lk.String())
	}
	if ConstStr("o'k").String() != "'o''k'" {
		t.Errorf("const string quoting = %q", ConstStr("o'k").String())
	}
}

// Property: likeMatch with pattern == s (no wildcards) is equality.
func TestLikeExactProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: "%"+s+"%" matches any string containing s.
func TestLikeContainsProperty(t *testing.T) {
	f := func(pre, mid, post string) bool {
		if strings.ContainsAny(mid, "%_") {
			return true
		}
		return likeMatch(pre+mid+post, "%"+mid+"%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
