// Package engine implements the columnar query-execution layer SCANRAW
// feeds: vectorized expression evaluation over binary chunks, filtering,
// projection, aggregation (SUM/COUNT/MIN/MAX/AVG) with hash group-by, and a
// SQL-subset parser for the query shapes the paper evaluates
// (SELECT SUM(c1+...+cK) FROM file, and group-by aggregates with pattern
// predicates for the SAM workload).
//
// The engine stands in for the DataPath execution engine the paper
// integrates with (§5, "Implementation"): cheap enough that SCANRAW is the
// measured component, but a real consumer of binary chunks with predicate
// evaluation and aggregation.
package engine

import (
	"fmt"
	"strings"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// Expr is a bound (column ordinals resolved) vectorized expression.
type Expr interface {
	// Type returns the result type of the expression.
	Type() schema.Type
	// Eval evaluates the expression over every row of the chunk. Boolean
	// results are Int64 vectors of 0/1. Results of every node except bare
	// column references are pooled scratch vectors: the caller owns the
	// returned vector and hands it back via releaseScratch once its values
	// have been consumed.
	Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error)
	// Columns appends the schema ordinals the expression reads to dst.
	Columns(dst []int) []int
	// String renders the expression in SQL-ish syntax.
	String() string
}

// releaseScratch returns an Eval result to the vector pool. Bare column
// references alias the chunk's own vectors (cacheable, shared across
// queries) and are left alone.
func releaseScratch(e Expr, v *chunk.Vector) {
	if v == nil {
		return
	}
	if _, isCol := e.(*Col); isCol {
		//lint:ignore poolpair Col results alias cached chunk vectors; recycling here would corrupt shared chunks
		return
	}
	chunk.PutVector(v)
}

// Col references a table column by ordinal.
type Col struct {
	Idx  int
	Name string
	Typ  schema.Type
}

// NewCol builds a bound column reference for the named column of sch.
func NewCol(sch *schema.Schema, name string) (*Col, error) {
	i, ok := sch.Index(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	return &Col{Idx: i, Name: name, Typ: sch.Column(i).Type}, nil
}

// Type implements Expr.
func (c *Col) Type() schema.Type { return c.Typ }

// Eval implements Expr.
func (c *Col) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	v := bc.Column(c.Idx)
	if v == nil {
		return nil, fmt.Errorf("engine: column %q (ordinal %d) absent from chunk %d", c.Name, c.Idx, bc.ID)
	}
	return v, nil
}

// Columns implements Expr.
func (c *Col) Columns(dst []int) []int { return append(dst, c.Idx) }

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Const is a literal value.
type Const struct {
	Typ   schema.Type
	Int   int64
	Float float64
	Str   string
}

// ConstInt returns an integer literal.
func ConstInt(x int64) *Const { return &Const{Typ: schema.Int64, Int: x} }

// ConstFloat returns a float literal.
func ConstFloat(x float64) *Const { return &Const{Typ: schema.Float64, Float: x} }

// ConstStr returns a string literal.
func ConstStr(s string) *Const { return &Const{Typ: schema.Str, Str: s} }

// Type implements Expr.
func (c *Const) Type() schema.Type { return c.Typ }

// Eval implements Expr.
func (c *Const) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	v := chunk.GetVector(c.Typ, bc.Rows)
	switch c.Typ {
	case schema.Int64:
		for i := range v.Ints {
			v.Ints[i] = c.Int
		}
	case schema.Float64:
		for i := range v.Floats {
			v.Floats[i] = c.Float
		}
	case schema.Str:
		for i := range v.Strs {
			v.Strs[i] = c.Str
		}
	}
	return v, nil
}

// Columns implements Expr.
func (c *Const) Columns(dst []int) []int { return dst }

// String implements Expr.
func (c *Const) String() string {
	switch c.Typ {
	case schema.Int64:
		return fmt.Sprintf("%d", c.Int)
	case schema.Float64:
		return fmt.Sprintf("%g", c.Float)
	default:
		return fmt.Sprintf("'%s'", strings.ReplaceAll(c.Str, "'", "''"))
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith is a binary arithmetic expression over numeric operands. Mixed
// int/float operands promote to float.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic expression, validating operand types.
func NewArith(op ArithOp, l, r Expr) (*Arith, error) {
	if l.Type() == schema.Str || r.Type() == schema.Str {
		return nil, fmt.Errorf("engine: arithmetic %s over string operand", op)
	}
	if op == OpMod && (l.Type() != schema.Int64 || r.Type() != schema.Int64) {
		return nil, fmt.Errorf("engine: %% requires integer operands")
	}
	return &Arith{Op: op, L: l, R: r}, nil
}

// Type implements Expr.
func (a *Arith) Type() schema.Type {
	if a.L.Type() == schema.Float64 || a.R.Type() == schema.Float64 {
		return schema.Float64
	}
	return schema.Int64
}

// Eval implements Expr.
func (a *Arith) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	l, err := a.L.Eval(bc)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Eval(bc)
	if err != nil {
		releaseScratch(a.L, l)
		return nil, err
	}
	defer releaseScratch(a.L, l)
	defer releaseScratch(a.R, r)
	n := bc.Rows
	if a.Type() == schema.Int64 {
		out := chunk.GetVector(schema.Int64, n)
		for i := 0; i < n; i++ {
			x, y := l.Ints[i], r.Ints[i]
			switch a.Op {
			case OpAdd:
				out.Ints[i] = x + y
			case OpSub:
				out.Ints[i] = x - y
			case OpMul:
				out.Ints[i] = x * y
			case OpDiv:
				if y == 0 {
					chunk.PutVector(out)
					return nil, fmt.Errorf("engine: division by zero at row %d", i)
				}
				out.Ints[i] = x / y
			case OpMod:
				if y == 0 {
					chunk.PutVector(out)
					return nil, fmt.Errorf("engine: modulo by zero at row %d", i)
				}
				out.Ints[i] = x % y
			}
		}
		return out, nil
	}
	lf, lscratch := asFloats(l)
	rf, rscratch := asFloats(r)
	defer chunk.PutVector(lscratch)
	defer chunk.PutVector(rscratch)
	out := chunk.GetVector(schema.Float64, n)
	for i := 0; i < n; i++ {
		x, y := lf[i], rf[i]
		switch a.Op {
		case OpAdd:
			out.Floats[i] = x + y
		case OpSub:
			out.Floats[i] = x - y
		case OpMul:
			out.Floats[i] = x * y
		case OpDiv:
			if y == 0 {
				chunk.PutVector(out)
				return nil, fmt.Errorf("engine: division by zero at row %d", i)
			}
			out.Floats[i] = x / y
		}
	}
	return out, nil
}

// asFloats widens an Int64 vector to float64. When a conversion is needed
// the backing storage comes from the pool; the second result is the scratch
// vector the caller must release (nil when v was already float-typed).
func asFloats(v *chunk.Vector) ([]float64, *chunk.Vector) {
	if v.Type == schema.Float64 {
		return v.Floats, nil
	}
	s := chunk.GetVector(schema.Float64, len(v.Ints))
	for i, x := range v.Ints {
		s.Floats[i] = float64(x)
	}
	return s.Floats, s
}

// Columns implements Expr.
func (a *Arith) Columns(dst []int) []int { return a.R.Columns(a.L.Columns(dst)) }

// String implements Expr.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[op] }

// Cmp is a comparison producing a 0/1 Int64 vector.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison, validating operand type compatibility.
func NewCmp(op CmpOp, l, r Expr) (*Cmp, error) {
	ls, rs := l.Type() == schema.Str, r.Type() == schema.Str
	if ls != rs {
		return nil, fmt.Errorf("engine: cannot compare %v with %v", l.Type(), r.Type())
	}
	return &Cmp{Op: op, L: l, R: r}, nil
}

// Type implements Expr.
func (c *Cmp) Type() schema.Type { return schema.Int64 }

// Eval implements Expr.
func (c *Cmp) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	l, err := c.L.Eval(bc)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Eval(bc)
	if err != nil {
		releaseScratch(c.L, l)
		return nil, err
	}
	defer releaseScratch(c.L, l)
	defer releaseScratch(c.R, r)
	n := bc.Rows
	out := chunk.GetVector(schema.Int64, n)
	signv := chunk.GetVector(schema.Int64, n)
	defer chunk.PutVector(signv)
	sign := signv.Ints
	switch {
	case l.Type == schema.Str:
		for i := 0; i < n; i++ {
			sign[i] = int64(strings.Compare(l.Strs[i], r.Strs[i]))
		}
	case l.Type == schema.Int64 && r.Type == schema.Int64:
		for i := 0; i < n; i++ {
			switch {
			case l.Ints[i] < r.Ints[i]:
				sign[i] = -1
			case l.Ints[i] > r.Ints[i]:
				sign[i] = 1
			}
		}
	default:
		lf, lscratch := asFloats(l)
		rf, rscratch := asFloats(r)
		for i := 0; i < n; i++ {
			switch {
			case lf[i] < rf[i]:
				sign[i] = -1
			case lf[i] > rf[i]:
				sign[i] = 1
			}
		}
		chunk.PutVector(lscratch)
		chunk.PutVector(rscratch)
	}
	for i := 0; i < n; i++ {
		var b bool
		switch c.Op {
		case OpEq:
			b = sign[i] == 0
		case OpNe:
			b = sign[i] != 0
		case OpLt:
			b = sign[i] < 0
		case OpLe:
			b = sign[i] <= 0
		case OpGt:
			b = sign[i] > 0
		case OpGe:
			b = sign[i] >= 0
		}
		if b {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

// Columns implements Expr.
func (c *Cmp) Columns(dst []int) []int { return c.R.Columns(c.L.Columns(dst)) }

// String implements Expr.
func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
	OpNot
)

func (op LogicOp) String() string { return [...]string{"AND", "OR", "NOT"}[op] }

// Logic combines boolean (0/1 Int64) expressions.
type Logic struct {
	Op   LogicOp
	L, R Expr // R is nil for NOT
}

// NewLogic builds a boolean connective over Int64 (0/1) operands.
func NewLogic(op LogicOp, l, r Expr) (*Logic, error) {
	if l.Type() != schema.Int64 || (op != OpNot && r.Type() != schema.Int64) {
		return nil, fmt.Errorf("engine: %s requires boolean operands", op)
	}
	return &Logic{Op: op, L: l, R: r}, nil
}

// Type implements Expr.
func (l *Logic) Type() schema.Type { return schema.Int64 }

// Eval implements Expr.
func (l *Logic) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	lv, err := l.L.Eval(bc)
	if err != nil {
		return nil, err
	}
	defer releaseScratch(l.L, lv)
	out := chunk.GetVector(schema.Int64, bc.Rows)
	if l.Op == OpNot {
		for i := range out.Ints {
			if lv.Ints[i] == 0 {
				out.Ints[i] = 1
			}
		}
		return out, nil
	}
	rv, err := l.R.Eval(bc)
	if err != nil {
		chunk.PutVector(out)
		return nil, err
	}
	defer releaseScratch(l.R, rv)
	for i := range out.Ints {
		a, b := lv.Ints[i] != 0, rv.Ints[i] != 0
		var r bool
		if l.Op == OpAnd {
			r = a && b
		} else {
			r = a || b
		}
		if r {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

// Columns implements Expr.
func (l *Logic) Columns(dst []int) []int {
	dst = l.L.Columns(dst)
	if l.R != nil {
		dst = l.R.Columns(dst)
	}
	return dst
}

// String implements Expr.
func (l *Logic) String() string {
	if l.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", l.L)
	}
	return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R)
}

// Like matches a string expression against a SQL LIKE pattern ('%' matches
// any run, '_' matches one byte). The SAM workload's "reads exhibiting a
// certain pattern" predicate compiles to this.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// NewLike builds a LIKE predicate over a string expression.
func NewLike(e Expr, pattern string, negate bool) (*Like, error) {
	if e.Type() != schema.Str {
		return nil, fmt.Errorf("engine: LIKE requires a string operand")
	}
	return &Like{E: e, Pattern: pattern, Negate: negate}, nil
}

// Type implements Expr.
func (l *Like) Type() schema.Type { return schema.Int64 }

// Eval implements Expr.
func (l *Like) Eval(bc *chunk.BinaryChunk) (*chunk.Vector, error) {
	v, err := l.E.Eval(bc)
	if err != nil {
		return nil, err
	}
	defer releaseScratch(l.E, v)
	out := chunk.GetVector(schema.Int64, bc.Rows)
	for i, s := range v.Strs {
		m := likeMatch(s, l.Pattern)
		if m != l.Negate {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

// likeMatch implements SQL LIKE with '%' and '_' wildcards using the
// classic two-pointer backtracking algorithm (linear for patterns with a
// single '%' run, worst-case quadratic).
func likeMatch(s, p string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Columns implements Expr.
func (l *Like) Columns(dst []int) []int { return l.E.Columns(dst) }

// String implements Expr.
func (l *Like) String() string {
	not := ""
	if l.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sLIKE '%s')", l.E, not, l.Pattern)
}

// DedupColumns returns the sorted, de-duplicated ordinals referenced by the
// expressions.
func DedupColumns(exprs ...Expr) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range exprs {
		if e == nil {
			continue
		}
		for _, c := range e.Columns(nil) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	// Insertion sort keeps this dependency-free and fast for small lists.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
