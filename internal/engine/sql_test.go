package engine

import (
	"strings"
	"testing"

	"scanraw/internal/schema"
)

func TestParseSimpleSum(t *testing.T) {
	q, err := ParseSQL("SELECT SUM(a+b) FROM data", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "data" || len(q.Items) != 1 || q.Items[0].Agg != AggSum {
		t.Errorf("query = %+v", q)
	}
	if q.Items[0].Name() != "SUM((a + b))" {
		t.Errorf("item name = %q", q.Items[0].Name())
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := ParseSQL("select sum(a) from t where a > 1 group by b limit 5", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil || len(q.GroupBy) != 1 || q.Limit != 5 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseWhereComplex(t *testing.T) {
	q, err := ParseSQL(
		"SELECT COUNT(*) FROM t WHERE (a + 1) * 2 >= b AND NOT s LIKE 'x%' OR f < 0.5",
		testSch)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	// OR binds loosest: ((... AND ...) OR ...)
	if !strings.HasPrefix(s, "((") || !strings.Contains(s, "OR") {
		t.Errorf("precedence wrong: %s", s)
	}
}

func TestParsePrecedence(t *testing.T) {
	q, err := ParseSQL("SELECT a + b * 2 FROM t LIMIT 1", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Items[0].Expr.String(); got != "(a + (b * 2))" {
		t.Errorf("precedence = %s", got)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	q, err := ParseSQL("SELECT a - -3 FROM t", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Items[0].Expr.String(); got != "(a - -3)" {
		t.Errorf("unary minus = %s", got)
	}
	q2, err := ParseSQL("SELECT -a FROM t", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Items[0].Expr.String(); got != "(0 - a)" {
		t.Errorf("unary minus over column = %s", got)
	}
	q3, err := ParseSQL("SELECT -2.5 FROM t", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if got := q3.Items[0].Expr.String(); got != "-2.5" {
		t.Errorf("negative float literal = %s", got)
	}
}

func TestParseAliases(t *testing.T) {
	q, err := ParseSQL("SELECT SUM(a) AS total, COUNT(*) AS n FROM t", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Name() != "total" || q.Items[1].Name() != "n" {
		t.Errorf("aliases = %q, %q", q.Items[0].Name(), q.Items[1].Name())
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := ParseSQL("SELECT COUNT(*) FROM t WHERE s = 'it''s'", testSch)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := q.Where.(*Cmp)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if c.R.(*Const).Str != "it's" {
		t.Errorf("escaped string = %q", c.R.(*Const).Str)
	}
}

func TestParseNotLike(t *testing.T) {
	q, err := ParseSQL("SELECT COUNT(*) FROM t WHERE s NOT LIKE '%x%'", testSch)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := q.Where.(*Like)
	if !ok || !l.Negate {
		t.Errorf("where = %v", q.Where)
	}
}

func TestParseGroupByMulti(t *testing.T) {
	q, err := ParseSQL("SELECT s, a, COUNT(*) FROM t GROUP BY s, a", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 {
		t.Errorf("group-by exprs = %d", len(q.GroupBy))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",              // missing FROM
		"SELECT a FROM",         // missing table
		"SELECT a FROM t b",     // trailing tokens
		"SELECT nope FROM t",    // unknown column
		"SELECT a FROM t WHERE", // missing predicate
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP a",             // missing BY
		"SELECT SUM(a FROM t",                 // unbalanced paren
		"SELECT a FROM t WHERE s LIKE 5",      // non-string pattern
		"SELECT a + s FROM t",                 // string arithmetic
		"SELECT a FROM t WHERE a = 'x'",       // type mismatch
		"SELECT 'abc FROM t",                  // unterminated string
		"SELECT a ! b FROM t",                 // bad operator
		"SELECT a FROM t WHERE a AND b = 1 @", // bad char
		"SELECT b, SUM(a) FROM t",             // bare column with aggregate
		"SELECT a FROM t LIMIT 1.5",           // fractional limit is a float token... parser expects int
	}
	for _, sql := range bad {
		if _, err := ParseSQL(sql, testSch); err == nil {
			t.Errorf("ParseSQL(%q) should fail", sql)
		}
	}
}

func TestParseColumnNamedLikeAggregate(t *testing.T) {
	// A schema whose column is literally "sum": without parens it must be
	// treated as a column reference.
	schSum := schema.MustNew(schema.Column{Name: "sum", Type: schema.Int64})
	q, err := ParseSQL("SELECT sum FROM t LIMIT 1", schSum)
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Agg != AggNone {
		t.Errorf("bare 'sum' treated as aggregate: %+v", q.Items[0])
	}
}

func TestParseLimitZeroRejectedAsNegativeEtc(t *testing.T) {
	q, err := ParseSQL("SELECT a FROM t LIMIT 0", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 0 {
		t.Errorf("LIMIT 0 = %d", q.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := ParseSQL("SELECT * FROM t WHERE a > 1 LIMIT 2", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != testSch.NumColumns() {
		t.Fatalf("items = %d, want %d", len(q.Items), testSch.NumColumns())
	}
	for i, it := range q.Items {
		if it.Expr.String() != testSch.Column(i).Name {
			t.Errorf("item %d = %q", i, it.Expr.String())
		}
	}
	// Mixed star and expression.
	q2, err := ParseSQL("SELECT *, a+b AS total FROM t LIMIT 1", testSch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Items) != testSch.NumColumns()+1 {
		t.Errorf("mixed items = %d", len(q2.Items))
	}
	// Star with aggregates fails validation (bare columns not grouped).
	if _, err := ParseSQL("SELECT *, COUNT(*) FROM t", testSch); err == nil {
		t.Error("star with aggregate should fail validation")
	}
}

func TestParseFloatLiteral(t *testing.T) {
	q, err := ParseSQL("SELECT COUNT(*) FROM t WHERE f >= 1.25", testSch)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Where.(*Cmp)
	if c.R.(*Const).Float != 1.25 {
		t.Errorf("float literal = %v", c.R.(*Const).Float)
	}
}
