package engine

import (
	"testing"
)

func TestHavingFiltersGroups(t *testing.T) {
	// Groups: x(1), yy(2), zzz(1).
	res := runQuery(t, "SELECT s, COUNT(*) AS n FROM t GROUP BY s HAVING n > 1", testChunk(t))
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "yy" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestHavingByOrdinalAndConjunction(t *testing.T) {
	res := runQuery(t,
		"SELECT s, SUM(a) FROM t GROUP BY s HAVING 2 >= 1 AND 2 <= 3 ORDER BY 2",
		testChunk(t))
	// Sums: x=1, yy=6, zzz=3 → HAVING keeps 1 and 3 → x, zzz.
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "x" || res.Rows[1][0].Str != "zzz" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestHavingStringLiteral(t *testing.T) {
	res := runQuery(t, "SELECT s, COUNT(*) FROM t GROUP BY s HAVING s <> 'yy'", testChunk(t))
	for _, row := range res.Rows {
		if row[0].Str == "yy" {
			t.Errorf("yy not filtered: %v", res.Rows)
		}
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestHavingScalarAggregate(t *testing.T) {
	// HAVING applies to the single scalar row too.
	res := runQuery(t, "SELECT COUNT(*) AS n FROM t HAVING n > 100", testChunk(t))
	if len(res.Rows) != 0 {
		t.Errorf("scalar HAVING should filter the row: %v", res.Rows)
	}
	res = runQuery(t, "SELECT COUNT(*) AS n FROM t HAVING n = 4", testChunk(t))
	if len(res.Rows) != 1 {
		t.Errorf("scalar HAVING should keep the row: %v", res.Rows)
	}
}

func TestHavingFloat(t *testing.T) {
	res := runQuery(t, "SELECT s, AVG(f) AS m FROM t GROUP BY s HAVING m >= 1.0", testChunk(t))
	// Averages: x=0.5, yy=(1.5+3.5)/2=2.5, zzz=2.5.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestHavingErrors(t *testing.T) {
	bad := []string{
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING nope > 1",
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING 0 > 1",
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING",
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING s LIKE 'x'", // unsupported op
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING s >",
		"SELECT a FROM t HAVING a > 1", // no aggregation
	}
	for _, sql := range bad {
		if _, err := ParseSQL(sql, testSch); err == nil {
			t.Errorf("ParseSQL(%q) should fail", sql)
		}
	}
}

func TestHavingValidateBounds(t *testing.T) {
	q := &Query{
		Items:  []SelectItem{{Agg: AggCount}},
		From:   "t",
		Having: []HavingClause{{Column: 9, Op: OpGt, Value: IntValue(1)}},
	}
	if err := q.Validate(); err == nil {
		t.Error("out-of-range HAVING column should fail")
	}
}
