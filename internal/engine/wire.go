package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"scanraw/internal/schema"
)

// Wire codec for Partial: the serialized form a fleet worker ships to the
// coordinator, which decodes it into a partial bound to its own parsed
// query and folds it through the ordinary Merge path. The merge tree does
// not care whether partials arrive from goroutines or from the network —
// this file is the boundary that makes the latter possible.
//
// The payload is versioned (leading byte) and self-describing enough to be
// total on decode: any byte slice either yields a valid partial for the
// given query or an error, never a panic. Integrity (CRC) and length
// framing live one layer up, in internal/cluster, mirroring how the store
// frames manifest records.
//
// Chunk provenance is rebased on encode: the worker's local chunk IDs are
// shifted by the owning range's global base so that canonical row order —
// (ORDER BY keys, chunk ID, row ordinal) — is a fleet-wide total order and
// distributed results stay byte-identical to single-process execution.

// wireVersion is the current Partial payload version.
const wireVersion = 1

// Partial payload kinds: the decoder checks the kind against the query
// shape, so a payload cannot smuggle, say, a row buffer into an aggregate
// merge.
const (
	wireKindRows   = 0 // unbounded row buffer (no LIMIT)
	wireKindTop    = 1 // top-k heap (LIMIT, with or without ORDER BY)
	wireKindGroups = 2 // aggregation hash table
)

// Decode limits: a decoded count beyond these is corruption, not data.
const (
	maxWireRows    = 1 << 22
	maxWireGroups  = 1 << 22
	maxWireCols    = 1 << 14
	maxWireChunkID = 1 << 30
	maxWireStrLen  = 1 << 18
)

// wireEncoder builds a payload with varint scalars and length-prefixed
// strings (the store's manifest-record idiom).
type wireEncoder struct{ buf []byte }

func (e *wireEncoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *wireEncoder) uvar(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *wireEncoder) ivar(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *wireEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *wireEncoder) str(s string) {
	e.uvar(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// wireDecoder parses a payload, accumulating the first error.
type wireDecoder struct {
	buf []byte
	off int
	err error
}

func (d *wireDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *wireDecoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("engine: partial payload truncated")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *wireDecoder) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("engine: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDecoder) ivar() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("engine: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDecoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("engine: partial payload truncated in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *wireDecoder) str() string {
	n := d.uvar()
	if d.err != nil {
		return ""
	}
	if n > maxWireStrLen {
		d.fail("engine: string length %d exceeds limit", n)
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.fail("engine: partial payload truncated in string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count decodes a non-negative bounded integer.
func (d *wireDecoder) count(limit uint64, what string) int {
	v := d.uvar()
	if d.err != nil {
		return 0
	}
	if v > limit {
		d.fail("engine: %s %d exceeds limit %d", what, v, limit)
		// Return 0, not the oversized value: callers size allocations by
		// this count, and not all of them re-check d.err before make().
		return 0
	}
	return int(v)
}

// Value tags on the wire.
const (
	wireValInt   = 0
	wireValFloat = 1
	wireValStr   = 2
)

func (e *wireEncoder) value(v Value) error {
	switch v.Typ {
	case schema.Int64:
		e.u8(wireValInt)
		e.ivar(v.Int)
	case schema.Float64:
		e.u8(wireValFloat)
		e.f64(v.Float)
	case schema.Str:
		e.u8(wireValStr)
		e.str(v.Str)
	default:
		return fmt.Errorf("engine: cannot encode value of type %v", v.Typ)
	}
	return nil
}

func (d *wireDecoder) value() Value {
	switch tag := d.u8(); tag {
	case wireValInt:
		return Value{Typ: schema.Int64, Int: d.ivar()}
	case wireValFloat:
		return Value{Typ: schema.Float64, Float: d.f64()}
	case wireValStr:
		return Value{Typ: schema.Str, Str: d.str()}
	default:
		d.fail("engine: unknown value tag %d", tag)
		return Value{}
	}
}

func (e *wireEncoder) prow(pr *prow, chunkBase int) error {
	e.uvar(uint64(pr.chunk + chunkBase))
	e.uvar(uint64(pr.row))
	e.uvar(uint64(len(pr.vals)))
	for _, v := range pr.vals {
		if err := e.value(v); err != nil {
			return err
		}
	}
	return nil
}

func (d *wireDecoder) prow(wantVals int) prow {
	pr := prow{
		chunk: d.count(maxWireChunkID, "chunk id"),
		row:   d.count(maxWireChunkID, "row ordinal"),
	}
	n := d.count(maxWireCols, "value count")
	if d.err != nil {
		return pr
	}
	if n != wantVals {
		d.fail("engine: row carries %d values, query selects %d", n, wantVals)
		return pr
	}
	pr.vals = make([]Value, n)
	for i := 0; i < n && d.err == nil; i++ {
		pr.vals[i] = d.value()
	}
	return pr
}

func (e *wireEncoder) aggState(st *aggState) {
	e.ivar(st.count)
	e.ivar(st.sumInt)
	e.f64(st.sumFloat)
	e.ivar(st.minI)
	e.ivar(st.maxI)
	e.f64(st.minF)
	e.f64(st.maxF)
	e.str(st.minS)
	e.str(st.maxS)
	if st.seen {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (d *wireDecoder) aggState() aggState {
	return aggState{
		count:    d.ivar(),
		sumInt:   d.ivar(),
		sumFloat: d.f64(),
		minI:     d.ivar(),
		maxI:     d.ivar(),
		minF:     d.f64(),
		maxF:     d.f64(),
		minS:     d.str(),
		maxS:     d.str(),
		seen:     d.u8() != 0,
	}
}

// EncodePartial serializes p's accumulated state. chunkBase shifts every
// buffered row's chunk provenance into the fleet-global chunk ID space —
// the worker executed over local chunk IDs starting at its range's lower
// bound, and the coordinator needs the global IDs for the canonical order.
// Aggregate state carries no provenance, so chunkBase is irrelevant there.
// The partial is not consumed and stays usable.
func EncodePartial(p *Partial, chunkBase int) ([]byte, error) {
	if p.done {
		return nil, fmt.Errorf("engine: EncodePartial after Result")
	}
	if chunkBase < 0 {
		return nil, fmt.Errorf("engine: negative chunk base %d", chunkBase)
	}
	e := &wireEncoder{buf: make([]byte, 0, 256)}
	e.u8(wireVersion)
	switch {
	case p.groups != nil:
		e.u8(wireKindGroups)
		keys := make([]string, 0, len(p.groups))
		for k := range p.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvar(uint64(len(keys)))
		for _, k := range keys {
			g := p.groups[k]
			e.str(k)
			e.uvar(uint64(len(g.keys)))
			for _, kv := range g.keys {
				if err := e.value(kv); err != nil {
					return nil, err
				}
			}
			e.uvar(uint64(len(g.aggs)))
			for i := range g.aggs {
				e.aggState(&g.aggs[i])
			}
		}
	case p.top != nil:
		e.u8(wireKindTop)
		e.uvar(uint64(len(p.top.entries)))
		for i := range p.top.entries {
			if err := e.prow(&p.top.entries[i], chunkBase); err != nil {
				return nil, err
			}
		}
	default:
		e.u8(wireKindRows)
		e.uvar(uint64(len(p.rows)))
		for i := range p.rows {
			if err := e.prow(&p.rows[i], chunkBase); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

// DecodePartial parses a serialized partial into a fresh Partial bound to
// q and sch — the coordinator's own parsed query, so the result merges
// with partials from every other peer (Merge requires pointer-identical
// queries). Decoding is total: arbitrary input yields a partial or an
// error, never a panic, and trailing bytes are rejected.
func DecodePartial(q *Query, sch *schema.Schema, data []byte) (*Partial, error) {
	p, err := NewPartial(q, sch)
	if err != nil {
		return nil, err
	}
	d := &wireDecoder{buf: data}
	if v := d.u8(); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("engine: unsupported partial version %d", v)
	}
	kind := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	switch kind {
	case wireKindGroups:
		if p.groups == nil {
			return nil, fmt.Errorf("engine: aggregate payload for a non-aggregate query")
		}
		n := d.count(maxWireGroups, "group count")
		var prevKey string
		for i := 0; i < n && d.err == nil; i++ {
			key := d.str()
			if d.err == nil && i > 0 && key <= prevKey {
				d.fail("engine: group keys not strictly ascending")
				break
			}
			prevKey = key
			nk := d.count(maxWireCols, "group key count")
			if d.err == nil && nk != len(q.GroupBy) {
				d.fail("engine: group carries %d keys, query groups by %d", nk, len(q.GroupBy))
				break
			}
			g := &group{aggs: make([]aggState, 0, len(q.Items))}
			if nk > 0 {
				g.keys = make([]Value, nk)
				for j := 0; j < nk && d.err == nil; j++ {
					g.keys[j] = d.value()
				}
			}
			na := d.count(maxWireCols, "aggregate count")
			if d.err == nil && na != len(q.Items) {
				d.fail("engine: group carries %d aggregates, query selects %d", na, len(q.Items))
				break
			}
			for j := 0; j < na && d.err == nil; j++ {
				g.aggs = append(g.aggs, d.aggState())
			}
			if d.err == nil {
				p.groups[key] = g
			}
		}
	case wireKindTop:
		if p.top == nil {
			return nil, fmt.Errorf("engine: top-k payload for a query without LIMIT")
		}
		n := d.count(maxWireRows, "row count")
		if d.err == nil && n > q.Limit {
			d.fail("engine: top-k payload holds %d rows, LIMIT is %d", n, q.Limit)
		}
		for i := 0; i < n && d.err == nil; i++ {
			pr := d.prow(len(q.Items))
			if d.err == nil {
				p.top.push(pr)
			}
		}
	case wireKindRows:
		if p.groups != nil || p.top != nil {
			return nil, fmt.Errorf("engine: row-buffer payload does not match query shape")
		}
		n := d.count(maxWireRows, "row count")
		for i := 0; i < n && d.err == nil; i++ {
			pr := d.prow(len(q.Items))
			if d.err == nil {
				p.rows = append(p.rows, pr)
			}
		}
	default:
		return nil, fmt.Errorf("engine: unknown partial kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("engine: %d trailing bytes after partial payload", len(data)-d.off)
	}
	return p, nil
}

// MergePartials folds a slice of partials (all bound to the same query)
// into the first one and returns it. It is the coordinator's gather step:
// decode one partial per peer, merge in assignment order, finalize once.
func MergePartials(parts []*Partial) (*Partial, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("engine: no partials to merge")
	}
	root := parts[0]
	for _, p := range parts[1:] {
		if err := root.Merge(p); err != nil {
			return nil, err
		}
	}
	return root, nil
}
