package engine

// AggSnapshot is the mergeable accumulator state of one aggregate cell:
// exactly the fields COUNT/SUM/AVG ever read (count, integer sum, float
// sum). MIN/MAX state is deliberately absent — extremes are not estimable
// from a chunk sample, and the online-aggregation layer rejects them up
// front.
type AggSnapshot struct {
	Count    int64
	SumInt   int64
	SumFloat float64
}

// GroupAgg is one group's accumulator snapshot: the encoded group key (the
// same canonical key Merge and Result use), the key values, and one
// AggSnapshot per select item (zero-valued for AggNone items).
type GroupAgg struct {
	Key  string
	Keys []Value
	Aggs []AggSnapshot
}

// GroupAggs snapshots the per-group aggregate state accumulated so far.
// The returned slices are copies, so the snapshot stays valid after the
// partial is merged away (Merge moves the group pointers out of the
// source). Only aggregate queries carry group state; for row queries the
// result is nil.
func (p *Partial) GroupAggs() []GroupAgg {
	if p.groups == nil {
		return nil
	}
	out := make([]GroupAgg, 0, len(p.groups))
	for k, g := range p.groups {
		ga := GroupAgg{Key: k, Aggs: make([]AggSnapshot, len(g.aggs))}
		if g.keys != nil {
			ga.Keys = append([]Value(nil), g.keys...)
		}
		for i, st := range g.aggs {
			ga.Aggs[i] = AggSnapshot{Count: st.count, SumInt: st.sumInt, SumFloat: st.sumFloat}
		}
		out = append(out, ga)
	}
	return out
}
