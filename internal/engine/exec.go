package engine

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// Value is a scalar query result cell.
type Value struct {
	Typ   schema.Type
	Int   int64
	Float float64
	Str   string
}

// IntValue builds an Int64 Value.
func IntValue(x int64) Value { return Value{Typ: schema.Int64, Int: x} }

// FloatValue builds a Float64 Value.
func FloatValue(x float64) Value { return Value{Typ: schema.Float64, Float: x} }

// StrValue builds a Str Value.
func StrValue(s string) Value { return Value{Typ: schema.Str, Str: s} }

// String renders the value for result printing.
func (v Value) String() string {
	switch v.Typ {
	case schema.Int64:
		return fmt.Sprintf("%d", v.Int)
	case schema.Float64:
		return fmt.Sprintf("%g", v.Float)
	default:
		return v.Str
	}
}

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions. AggNone marks a plain (grouping) expression.
const (
	AggNone AggFunc = iota
	AggSum
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	return [...]string{"", "SUM", "COUNT", "MIN", "MAX", "AVG"}[f]
}

// SelectItem is one output column of a query: an expression, optionally
// wrapped in an aggregate. A COUNT(*) has Agg=AggCount and Expr=nil.
type SelectItem struct {
	Agg   AggFunc
	Expr  Expr // nil only for COUNT(*)
	Alias string
}

// Name returns the output column name.
func (it SelectItem) Name() string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != AggNone {
		inner := "*"
		if it.Expr != nil {
			inner = it.Expr.String()
		}
		return fmt.Sprintf("%s(%s)", it.Agg, inner)
	}
	return it.Expr.String()
}

// Query is a bound query plan over one raw file / table.
type Query struct {
	Items   []SelectItem
	From    string
	Where   Expr // nil = no predicate; must be boolean (Int64 0/1)
	GroupBy []Expr
	Having  []HavingClause // post-aggregation filters over the select list
	OrderBy []OrderItem    // sort keys over the select list
	Limit   int            // <= 0 means no limit
}

// IsAggregate reports whether any select item aggregates.
func (q *Query) IsAggregate() bool {
	for _, it := range q.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return len(q.GroupBy) > 0
}

// RequiredColumns returns the sorted schema ordinals the query touches —
// the set SCANRAW must tokenize and parse (selective conversion).
func (q *Query) RequiredColumns() []int {
	exprs := make([]Expr, 0, len(q.Items)+len(q.GroupBy)+1)
	for _, it := range q.Items {
		if it.Expr != nil {
			exprs = append(exprs, it.Expr)
		}
	}
	exprs = append(exprs, q.GroupBy...)
	if q.Where != nil {
		exprs = append(exprs, q.Where)
	}
	return DedupColumns(exprs...)
}

// Validate checks the query's structural rules.
func (q *Query) Validate() error {
	if len(q.Items) == 0 {
		return fmt.Errorf("engine: query selects nothing")
	}
	if q.Where != nil && q.Where.Type() != schema.Int64 {
		return fmt.Errorf("engine: WHERE must be boolean")
	}
	for _, k := range q.OrderBy {
		if k.Column < 0 || k.Column >= len(q.Items) {
			return fmt.Errorf("engine: ORDER BY column %d out of select-list range", k.Column)
		}
	}
	for _, h := range q.Having {
		if h.Column < 0 || h.Column >= len(q.Items) {
			return fmt.Errorf("engine: HAVING column %d out of select-list range", h.Column)
		}
		if !q.IsAggregate() {
			return fmt.Errorf("engine: HAVING requires aggregation")
		}
	}
	if q.IsAggregate() {
		grouped := map[string]bool{}
		for _, g := range q.GroupBy {
			grouped[g.String()] = true
		}
		for _, it := range q.Items {
			if it.Agg == AggNone && !grouped[it.Expr.String()] {
				return fmt.Errorf("engine: %s is neither aggregated nor in GROUP BY", it.Expr)
			}
			if it.Agg != AggNone && it.Expr == nil && it.Agg != AggCount {
				return fmt.Errorf("engine: %s(*) is only valid for COUNT", it.Agg)
			}
			if it.Agg == AggSum || it.Agg == AggAvg {
				if it.Expr != nil && it.Expr.Type() == schema.Str {
					return fmt.Errorf("engine: %s over string expression", it.Agg)
				}
			}
		}
	}
	return nil
}

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows [][]Value
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			cells[ri][ci] = v.String()
			if len(cells[ri][ci]) > widths[ci] {
				widths[ci] = len(cells[ri][ci])
			}
		}
	}
	writeLine := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], c)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeLine(r.Cols)
	for _, row := range cells {
		writeLine(row)
	}
	return b.String()
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumInt   int64
	sumFloat float64
	minI     int64
	maxI     int64
	minF     float64
	maxF     float64
	minS     string
	maxS     string
	seen     bool
}

type group struct {
	keys []Value
	aggs []aggState
}

// Executor consumes binary chunks and produces a Result. It implements
// both scalar/grouped aggregation and plain filtering/projection. An
// Executor is a thin serial wrapper over a single Partial, so the serial
// and parallel (ParallelExecutor) paths share one evaluation code path and
// agree by construction; only the merge step differs.
type Executor struct {
	p     *Partial
	bound *BoundHolder
}

// NewExecutor validates q and builds an executor.
func NewExecutor(q *Query, sch *schema.Schema) (*Executor, error) {
	p, err := NewPartial(q, sch)
	if err != nil {
		return nil, err
	}
	return &Executor{p: p, bound: NewBoundHolder(q)}, nil
}

// ConsumeContext folds one chunk into the running result after checking
// for cancellation. This is the point where query execution observes
// client disconnects and per-query timeouts: the SCANRAW delivery loop
// calls it once per chunk, so a cancelled context stops execution at the
// next chunk boundary.
func (e *Executor) ConsumeContext(ctx context.Context, bc *chunk.BinaryChunk) error {
	return e.p.ConsumeContext(ctx, bc)
}

// Consume folds one chunk into the running result. Executor is
// single-consumer: calls must not overlap.
func (e *Executor) Consume(bc *chunk.BinaryChunk) error {
	_, err := e.ConsumeCounted(bc)
	return err
}

// ConsumeCounted is Consume returning the number of rows that passed the
// WHERE clause, and refreshes the top-k bound for concurrent Bound readers.
func (e *Executor) ConsumeCounted(bc *chunk.BinaryChunk) (int, error) {
	matched, err := e.p.ConsumeCounted(bc)
	e.bound.Update(e.p)
	return matched, err
}

// Bound returns the current top-k cutoff for ORDER BY ... LIMIT chunk
// pruning. Unlike reading the partial's heap directly, it is safe to call
// from the READ goroutine while Consume runs on the delivery goroutine.
func (e *Executor) Bound() ([]Value, bool) { return e.bound.Bound() }

// Result materializes the final result. For grouped queries rows are
// ordered by group key for determinism; a scalar aggregate over zero rows
// yields one row of zero/NaN values.
func (e *Executor) Result() (*Result, error) {
	return e.p.Result()
}

// Finish returns the executor's single partial without materializing the
// result, mirroring ParallelExecutor.Finish: fleet workers ship the raw
// partial state over the wire instead of finalizing it locally.
func (e *Executor) Finish() ([]*Partial, error) {
	if e.p.done {
		return nil, fmt.Errorf("engine: Finish after Result")
	}
	return []*Partial{e.p}, nil
}

func valueAt(v *chunk.Vector, i int) Value {
	switch v.Type {
	case schema.Int64:
		return IntValue(v.Ints[i])
	case schema.Float64:
		return FloatValue(v.Floats[i])
	default:
		return StrValue(v.Strs[i])
	}
}

// appendKey appends a self-delimiting encoding of row r of the key vector.
func appendKey(dst []byte, v *chunk.Vector, r int) []byte {
	switch v.Type {
	case schema.Int64:
		dst = strconv.AppendInt(dst, v.Ints[r], 10)
	case schema.Float64:
		dst = strconv.AppendFloat(dst, v.Floats[r], 'g', -1, 64)
	default:
		dst = append(dst, v.Strs[r]...)
	}
	return append(dst, 0)
}

// updateAggRow folds row r of vector v (nil for COUNT(*)) into st.
func updateAggRow(st *aggState, v *chunk.Vector, r int) {
	st.count++
	if v == nil {
		return
	}
	switch v.Type {
	case schema.Int64:
		x := v.Ints[r]
		st.sumInt += x
		if !st.seen || x < st.minI {
			st.minI = x
		}
		if !st.seen || x > st.maxI {
			st.maxI = x
		}
	case schema.Float64:
		x := v.Floats[r]
		st.sumFloat += x
		if !st.seen || x < st.minF {
			st.minF = x
		}
		if !st.seen || x > st.maxF {
			st.maxF = x
		}
	case schema.Str:
		x := v.Strs[r]
		if !st.seen || x < st.minS {
			st.minS = x
		}
		if !st.seen || x > st.maxS {
			st.maxS = x
		}
	}
	st.seen = true
}

// updateAggBulk folds an entire vector (or its selection) into st.
func updateAggBulk(st *aggState, v *chunk.Vector, rows int, sel []int) {
	if v == nil { // COUNT(*)
		if sel != nil {
			st.count += int64(len(sel))
		} else {
			st.count += int64(rows)
		}
		return
	}
	if sel != nil {
		for _, r := range sel {
			updateAggRow(st, v, r)
		}
		return
	}
	st.count += int64(rows)
	switch v.Type {
	case schema.Int64:
		var sum int64
		mn, mx := st.minI, st.maxI
		if !st.seen && len(v.Ints) > 0 {
			mn, mx = v.Ints[0], v.Ints[0]
		}
		for _, x := range v.Ints {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		st.sumInt += sum
		st.minI, st.maxI = mn, mx
	case schema.Float64:
		var sum float64
		mn, mx := st.minF, st.maxF
		if !st.seen && len(v.Floats) > 0 {
			mn, mx = v.Floats[0], v.Floats[0]
		}
		for _, x := range v.Floats {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		st.sumFloat += sum
		st.minF, st.maxF = mn, mx
	case schema.Str:
		for _, x := range v.Strs {
			if !st.seen || x < st.minS {
				st.minS = x
			}
			if !st.seen || x > st.maxS {
				st.maxS = x
			}
			st.seen = true
		}
		return
	}
	if rows > 0 {
		st.seen = true
	}
}

// finalizeAgg converts one finished aggregate state into its output value;
// t is the aggregated expression's type (zero for COUNT(*)).
func finalizeAgg(f AggFunc, t schema.Type, st aggState) Value {
	switch f {
	case AggCount:
		return IntValue(st.count)
	case AggSum:
		if t == schema.Float64 {
			return FloatValue(st.sumFloat)
		}
		return IntValue(st.sumInt)
	case AggAvg:
		if st.count == 0 {
			return FloatValue(math.NaN())
		}
		if t == schema.Float64 {
			return FloatValue(st.sumFloat / float64(st.count))
		}
		return FloatValue(float64(st.sumInt) / float64(st.count))
	case AggMin:
		switch t {
		case schema.Int64:
			return IntValue(st.minI)
		case schema.Float64:
			return FloatValue(st.minF)
		default:
			return StrValue(st.minS)
		}
	case AggMax:
		switch t {
		case schema.Int64:
			return IntValue(st.maxI)
		case schema.Float64:
			return FloatValue(st.maxF)
		default:
			return StrValue(st.maxS)
		}
	}
	return Value{}
}
