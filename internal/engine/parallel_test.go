package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

var diffSch = schema.MustNew(
	schema.Column{Name: "a", Type: schema.Int64},
	schema.Column{Name: "b", Type: schema.Int64},
	schema.Column{Name: "c", Type: schema.Int64},
	schema.Column{Name: "f", Type: schema.Float64},
	schema.Column{Name: "s", Type: schema.Str},
)

// diffChunks builds nc chunks of random rows. Floats are multiples of 0.25
// so every SUM/AVG is exact in binary floating point — the differential
// test demands bit-identical results, and exact values keep float addition
// associative enough for any merge order.
func diffChunks(t testing.TB, rng *rand.Rand, nc, rows int) []*chunk.BinaryChunk {
	t.Helper()
	out := make([]*chunk.BinaryChunk, nc)
	for id := 0; id < nc; id++ {
		n := rows - rng.Intn(rows/2+1) // uneven chunk sizes
		bc := chunk.NewBinary(diffSch, id, n)
		a := chunk.NewVector(schema.Int64, n)
		b := chunk.NewVector(schema.Int64, n)
		c := chunk.NewVector(schema.Int64, n)
		f := chunk.NewVector(schema.Float64, n)
		s := chunk.NewVector(schema.Str, n)
		for r := 0; r < n; r++ {
			a.Ints[r] = int64(rng.Intn(8)) // few distinct groups
			b.Ints[r] = int64(rng.Intn(1000))
			c.Ints[r] = int64(rng.Intn(100))
			f.Floats[r] = float64(rng.Intn(4000)) * 0.25
			s.Strs[r] = fmt.Sprintf("g%d", rng.Intn(5))
		}
		for i, v := range []*chunk.Vector{a, b, c, f, s} {
			if err := bc.SetColumn(i, v); err != nil {
				t.Fatal(err)
			}
		}
		out[id] = bc
	}
	return out
}

// diffQueries returns the query corpus: every aggregate function, WHERE,
// GROUP BY, HAVING, ORDER BY (both directions), LIMIT, and plain
// projections with and without LIMIT.
func diffQueries(rng *rand.Rand) []string {
	lim := 1 + rng.Intn(20)
	cut := rng.Intn(1000)
	return []string{
		"SELECT SUM(a+b), COUNT(*), MIN(b), MAX(b), AVG(f) FROM t",
		fmt.Sprintf("SELECT a, SUM(b), COUNT(*) FROM t WHERE b < %d GROUP BY a", cut),
		"SELECT a, MIN(c), MAX(f), AVG(b) FROM t GROUP BY a ORDER BY a DESC",
		"SELECT s, a, COUNT(*) AS n FROM t GROUP BY s, a HAVING n > 3 ORDER BY n DESC, s",
		fmt.Sprintf("SELECT s, AVG(f) AS m FROM t GROUP BY s HAVING m >= 100.0 ORDER BY m LIMIT %d", lim),
		fmt.Sprintf("SELECT a, b, c FROM t WHERE b >= %d", cut),
		fmt.Sprintf("SELECT b, f FROM t WHERE a = 3 ORDER BY b, f LIMIT %d", lim),
		fmt.Sprintf("SELECT a, b FROM t ORDER BY b DESC, a LIMIT %d", lim),
		fmt.Sprintf("SELECT c, s FROM t WHERE NOT s LIKE 'g1%%' AND c < 90 LIMIT %d", lim),
		"SELECT COUNT(*) FROM t WHERE f < 500.25 OR b > 900",
	}
}

// runSerial evaluates q over chunks in ID order on the serial executor.
func runSerial(t testing.TB, q *Query, chunks []*chunk.BinaryChunk) *Result {
	t.Helper()
	ex, err := NewExecutor(q, diffSch)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range chunks {
		if err := ex.Consume(bc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ex.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runParallel evaluates q over a shuffled copy of chunks with concurrent
// Consume calls on a ParallelExecutor.
func runParallel(t testing.TB, rng *rand.Rand, q *Query, chunks []*chunk.BinaryChunk, workers int) *Result {
	t.Helper()
	pe, err := NewParallelExecutor(q, diffSch, workers)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]*chunk.BinaryChunk(nil), chunks...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var wg sync.WaitGroup
	errs := make(chan error, len(shuffled))
	for _, bc := range shuffled {
		wg.Add(1)
		go func(bc *chunk.BinaryChunk) {
			defer wg.Done()
			errs <- pe.Consume(bc)
		}(bc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := pe.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelMatchesSerial is the differential test of the partial/merge
// contract: for randomized data and a query corpus spanning the whole SQL
// subset, parallel evaluation over shuffled chunks must produce results
// bit-identical to serial evaluation in chunk order.
func TestParallelMatchesSerial(t *testing.T) {
	for round := 0; round < 6; round++ {
		rng := rand.New(rand.NewSource(int64(1000 + round)))
		chunks := diffChunks(t, rng, 7, 256)
		for _, sql := range diffQueries(rng) {
			q, err := ParseSQL(sql, diffSch)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			want := runSerial(t, q, chunks)
			for _, workers := range []int{2, 4, 8} {
				got := runParallel(t, rng, q, chunks, workers)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("round %d, workers %d: %s\nserial:   %+v\nparallel: %+v",
						round, workers, sql, want.Rows, got.Rows)
				}
			}
		}
	}
}

// TestParallelExecutorMisuse covers the error surface: double Result and
// mismatched merges.
func TestParallelExecutorMisuse(t *testing.T) {
	q, err := ParseSQL("SELECT COUNT(*) FROM t", diffSch)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelExecutor(q, diffSch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Result(); err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Result(); err == nil {
		t.Error("second Result() did not fail")
	}

	q2, err := ParseSQL("SELECT SUM(a) FROM t", diffSch)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPartial(q, diffSch)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPartial(q2, diffSch)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Merge(p2); err == nil {
		t.Error("merging partials of different queries did not fail")
	}
}
