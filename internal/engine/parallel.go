package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// ParallelExecutor evaluates a query with N mergeable partials and admits
// concurrent Consume calls: each call checks out an idle partial from a
// pool, folds the chunk into it, and returns it. Up to N chunks are
// evaluated simultaneously; the N+1th caller blocks until a partial frees
// up, which is the natural backpressure for delivery fan-out.
//
// Result drains the pool — waiting for in-flight Consume calls to finish —
// then merges all partials and finalizes, producing the same result as a
// serial Executor over the same chunks (see Partial for the determinism
// contract and the float-summation caveat).
type ParallelExecutor struct {
	q     *Query
	pool  chan *Partial
	all   []*Partial
	done  atomic.Bool
	bound *BoundHolder
}

// NewParallelExecutor validates q and builds an executor with `workers`
// partials (at least one).
func NewParallelExecutor(q *Query, sch *schema.Schema, workers int) (*ParallelExecutor, error) {
	if workers < 1 {
		workers = 1
	}
	pe := &ParallelExecutor{
		q:     q,
		pool:  make(chan *Partial, workers),
		all:   make([]*Partial, workers),
		bound: NewBoundHolder(q),
	}
	for i := range pe.all {
		p, err := NewPartial(q, sch)
		if err != nil {
			return nil, err
		}
		pe.all[i] = p
		pe.pool <- p
	}
	return pe, nil
}

// Query returns the query the executor evaluates.
func (pe *ParallelExecutor) Query() *Query { return pe.q }

// Workers returns the number of partials (the consume concurrency bound).
func (pe *ParallelExecutor) Workers() int { return len(pe.all) }

// Consume folds one chunk into an idle partial. Safe to call from many
// goroutines concurrently.
func (pe *ParallelExecutor) Consume(bc *chunk.BinaryChunk) error {
	_, err := pe.ConsumeCounted(bc)
	return err
}

// ConsumeCounted is Consume returning the number of rows that passed the
// WHERE clause. It also refreshes the shared top-k bound while the partial
// is still checked out, so Bound never races a concurrent Consume.
func (pe *ParallelExecutor) ConsumeCounted(bc *chunk.BinaryChunk) (int, error) {
	if pe.done.Load() {
		return 0, fmt.Errorf("engine: Consume after Result")
	}
	p := <-pe.pool
	matched, err := p.ConsumeCounted(bc)
	pe.bound.Update(p)
	pe.pool <- p
	return matched, err
}

// Bound returns the tightest top-k cutoff any single partial has
// established, for ORDER BY ... LIMIT chunk pruning. Safe to call
// concurrently with Consume.
func (pe *ParallelExecutor) Bound() ([]Value, bool) { return pe.bound.Bound() }

// ConsumeContext is Consume with a cancellation check at the chunk
// boundary.
func (pe *ParallelExecutor) ConsumeContext(ctx context.Context, bc *chunk.BinaryChunk) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return pe.Consume(bc)
}

// Result waits for in-flight Consume calls, merges every partial, and
// materializes the final result. Partials are merged in creation order so
// the merge sequence does not depend on scheduling (chunk→partial
// assignment still does; see Partial on float summation).
func (pe *ParallelExecutor) Result() (*Result, error) {
	parts, err := pe.Finish()
	if err != nil {
		return nil, err
	}
	root := parts[0]
	for _, p := range parts[1:] {
		if err := root.Merge(p); err != nil {
			return nil, err
		}
	}
	return root.Result()
}

// Finish waits for in-flight Consume calls and returns the raw partials
// without merging them, for callers that stream the merged output instead of
// materializing it (see RunMerger). After Finish the executor is done.
func (pe *ParallelExecutor) Finish() ([]*Partial, error) {
	if pe.done.Swap(true) {
		return nil, fmt.Errorf("engine: Result called twice")
	}
	// Every Consume that started before done was set will return its
	// partial; draining the pool is the rendezvous.
	for range pe.all {
		<-pe.pool
	}
	return pe.all, nil
}
