package engine

import (
	"testing"
)

func TestOrderByNonAggregate(t *testing.T) {
	res := runQuery(t, "SELECT a, b FROM t ORDER BY a DESC", testChunk(t))
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < 4; i++ {
		if got := res.Rows[i][0].Int; got != int64(4-i) {
			t.Errorf("row %d a = %d, want %d", i, got, 4-i)
		}
	}
}

func TestOrderByAscDefault(t *testing.T) {
	asc := runQuery(t, "SELECT b FROM t ORDER BY b", testChunk(t))
	explicit := runQuery(t, "SELECT b FROM t ORDER BY b ASC", testChunk(t))
	for i := range asc.Rows {
		if asc.Rows[i][0].Int != explicit.Rows[i][0].Int {
			t.Fatal("ASC should be the default")
		}
	}
	if asc.Rows[0][0].Int != 10 || asc.Rows[3][0].Int != 40 {
		t.Errorf("ascending order wrong: %v", asc.Rows)
	}
}

func TestOrderByGroupedAlias(t *testing.T) {
	// Groups: x(1), yy(2), zzz(1). Order by count descending → yy first.
	res := runQuery(t, "SELECT s, COUNT(*) AS n FROM t GROUP BY s ORDER BY n DESC, s", testChunk(t))
	if res.Rows[0][0].Str != "yy" || res.Rows[0][1].Int != 2 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	// Tie (x and zzz both 1) broken by the secondary key s ascending.
	if res.Rows[1][0].Str != "x" || res.Rows[2][0].Str != "zzz" {
		t.Errorf("tie-break wrong: %v %v", res.Rows[1], res.Rows[2])
	}
}

func TestOrderByOrdinal(t *testing.T) {
	res := runQuery(t, "SELECT s, SUM(a) FROM t GROUP BY s ORDER BY 2 DESC", testChunk(t))
	// Sums: x=1, yy=6, zzz=3 → yy, zzz, x.
	want := []string{"yy", "zzz", "x"}
	for i, w := range want {
		if res.Rows[i][0].Str != w {
			t.Errorf("row %d = %q, want %q", i, res.Rows[i][0].Str, w)
		}
	}
}

func TestOrderByWithLimit(t *testing.T) {
	// Top-1 requires the full sort before truncation.
	res := runQuery(t, "SELECT a FROM t ORDER BY a DESC LIMIT 1", testChunk(t), testChunk(t))
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 4 {
		t.Errorf("top-1 = %v", res.Rows)
	}
}

func TestOrderByFloatAndString(t *testing.T) {
	res := runQuery(t, "SELECT f, s FROM t ORDER BY f DESC", testChunk(t))
	if res.Rows[0][0].Float != 3.5 {
		t.Errorf("float sort wrong: %v", res.Rows[0])
	}
	res2 := runQuery(t, "SELECT s FROM t ORDER BY s DESC LIMIT 1", testChunk(t))
	if res2.Rows[0][0].Str != "zzz" {
		t.Errorf("string sort wrong: %v", res2.Rows[0])
	}
}

func TestOrderByErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM t ORDER BY nope",
		"SELECT a FROM t ORDER BY 0",
		"SELECT a FROM t ORDER BY 2",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t ORDER a",
		"SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY b", // b not in select list
	}
	for _, sql := range bad {
		if _, err := ParseSQL(sql, testSch); err == nil {
			t.Errorf("ParseSQL(%q) should fail", sql)
		}
	}
}

func TestValidateOrderByBounds(t *testing.T) {
	q := &Query{
		Items:   []SelectItem{{Expr: col(t, "a")}},
		From:    "t",
		OrderBy: []OrderItem{{Column: 5}},
	}
	if err := q.Validate(); err == nil {
		t.Error("out-of-range ORDER BY column should fail validation")
	}
}

func TestOrderByStable(t *testing.T) {
	// Two identical chunks: rows with equal keys keep insertion order.
	res := runQuery(t, "SELECT a, b FROM t ORDER BY a", testChunk(t), testChunk(t))
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < 8; i += 2 {
		if res.Rows[i][0].Int != res.Rows[i+1][0].Int {
			t.Errorf("pair %d not grouped: %v %v", i, res.Rows[i], res.Rows[i+1])
		}
	}
}
