package ola

import (
	"sync"
	"sync/atomic"

	"scanraw/internal/chunk"
	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// Runner drives one sampled aggregate query. It is both the scan's
// consumer (Consume/ConsumeCounted accept chunks on any number of
// consume workers) and its steering: Order is the scanraw Request.Order
// callback that installs the seeded permutation, and Satisfied is the
// demand-termination signal that fires once the bounds converge.
//
// Internally the Runner keeps two parallel aggregations. Every chunk is
// merged into a root engine.Partial — so if the scan runs to the end the
// result is the exact engine answer, byte-identical to a non-sampled
// run. Independently, each chunk's per-group aggregate snapshot is
// buffered in a reorder window and released to the Estimator strictly in
// sample order, because only a prefix of the permutation is a uniform
// sample. Sampled requests must not carry a Skip filter: a skipped chunk
// would leave a permanent hole in the sample order.
type Runner struct {
	q   *engine.Query
	sch *schema.Schema

	mu      sync.Mutex
	est     *Estimator
	root    *engine.Partial
	last    Snapshot
	pos     []int                     // chunk ID -> position in the sample order
	pending map[int][]engine.GroupAgg // buffered snapshots by sample position
	seen    map[int]bool              // chunk IDs consumed (duplicate guard)
	next    int                       // sample-order frontier
	total   int
	ordered bool // Order was invoked

	converged  atomic.Bool
	onProgress func(Snapshot)
}

// NewRunner builds a runner for q over sch. onProgress, when non-nil, is
// called with each snapshot that advances the sample frontier; it runs
// on a consume goroutine without the runner's lock held, serialized with
// other progress calls only insofar as frontier advances are.
func NewRunner(q *engine.Query, sch *schema.Schema, cfg Config, onProgress func(Snapshot)) (*Runner, error) {
	est, err := NewEstimator(q, cfg)
	if err != nil {
		return nil, err
	}
	root, err := engine.NewPartial(q, sch)
	if err != nil {
		return nil, err
	}
	return &Runner{
		q:          q,
		sch:        sch,
		est:        est,
		root:       root,
		pending:    map[int][]engine.GroupAgg{},
		seen:       map[int]bool{},
		onProgress: onProgress,
	}, nil
}

// Order is the scanraw Request.Order callback: given the discovered
// chunk count it fixes the population size and returns the seeded visit
// permutation.
func (r *Runner) Order(seed int64) func(n int) []int {
	return func(n int) []int {
		perm := Permutation(n, seed)
		r.mu.Lock()
		defer r.mu.Unlock()
		r.ordered = true
		r.total = n
		r.est.SetTotalChunks(n)
		r.pos = make([]int, n)
		for i, id := range perm {
			r.pos[id] = i
		}
		return perm
	}
}

// Satisfied reports whether the bounds have converged — the scan's
// demand-termination signal. Monotonic: latched by the estimator.
func (r *Runner) Satisfied() bool { return r.converged.Load() }

// Consume implements the plain executor contract.
func (r *Runner) Consume(bc *chunk.BinaryChunk) error {
	_, err := r.ConsumeCounted(bc)
	return err
}

// ConsumeCounted aggregates one chunk, merges it into the exact root,
// and feeds the estimator through the sample-order reorder window. Safe
// for concurrent calls from parallel consume workers.
func (r *Runner) ConsumeCounted(bc *chunk.BinaryChunk) (int, error) {
	// Aggregate the chunk outside the lock: a fresh Partial isolates its
	// per-group contribution, which the snapshot captures before the
	// merge consumes the group map.
	p, err := engine.NewPartial(r.q, r.sch)
	if err != nil {
		return 0, err
	}
	matched, err := p.ConsumeCounted(bc)
	if err != nil {
		return 0, err
	}
	gas := p.GroupAggs()

	r.mu.Lock()
	if r.seen[bc.ID] {
		// Defensive: the scan delivers each chunk at most once, but a
		// duplicate here would double-count both paths.
		r.mu.Unlock()
		return matched, nil
	}
	r.seen[bc.ID] = true
	if err := r.root.Merge(p); err != nil {
		r.mu.Unlock()
		return 0, err
	}
	if !r.ordered || bc.ID >= len(r.pos) {
		// No sample order installed (plain scan reusing the runner as an
		// executor): the exact path above is all there is.
		r.mu.Unlock()
		return matched, nil
	}
	r.pending[r.pos[bc.ID]] = gas
	advanced := false
	for {
		g, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		r.est.Observe(g)
		r.next++
		advanced = true
	}
	if !advanced {
		r.mu.Unlock()
		return matched, nil
	}
	snap := r.est.Snapshot()
	r.last = snap
	if snap.Converged {
		r.converged.Store(true)
	}
	cb := r.onProgress
	r.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	return matched, nil
}

// LastSnapshot returns the most recent frontier snapshot (zero value if
// nothing was observed yet).
func (r *Runner) LastSnapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Exact reports whether Result will return the exact engine answer: the
// whole file was observed (or no sample order was ever installed, in
// which case the root saw every delivered chunk).
func (r *Runner) Exact() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.ordered || r.next == r.total
}

// Result returns the exact engine result when the scan covered the whole
// file, and the estimator's current row set otherwise. The exact path
// goes through the same Partial merge and sort as a non-sampled query,
// so an error=0 run is byte-identical to the plain executor's answer.
func (r *Runner) Result() (*engine.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ordered || r.next == r.total {
		return r.root.Result()
	}
	snap := r.est.Snapshot()
	r.last = snap
	return estimateResult(r.q, snap), nil
}
