package ola

import (
	"reflect"
	"testing"
)

func TestPermutationIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		perm := Permutation(n, 12345)
		if len(perm) != n {
			t.Fatalf("n=%d: len = %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, id := range perm {
			if id < 0 || id >= n {
				t.Fatalf("n=%d: element %d out of range", n, id)
			}
			if seen[id] {
				t.Fatalf("n=%d: element %d repeated", n, id)
			}
			seen[id] = true
		}
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := Permutation(256, 7)
	b := Permutation(256, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n, seed) must yield the same permutation")
	}
	c := Permutation(256, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds yielded identical permutations")
	}
}

func TestPermutationNegativeN(t *testing.T) {
	if got := Permutation(-3, 1); len(got) != 0 {
		t.Fatalf("negative n: len = %d, want 0", len(got))
	}
}
