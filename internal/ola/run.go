package ola

import (
	"context"
	"fmt"

	"scanraw/internal/engine"
	"scanraw/internal/scanraw"
)

// Run executes q over op as a sampled scan: chunks are visited in the
// seeded permutation order, every frontier advance invokes onProgress
// (when non-nil) with the converging snapshot, and the scan terminates
// early once the bounds meet cfg.Tolerance. The returned result is the
// exact engine answer when the scan covered the whole file (tolerance
// zero or never met) and the final estimate otherwise; the returned
// runner exposes the last snapshot for bound reporting.
func Run(ctx context.Context, op *scanraw.Operator, q *engine.Query, cfg Config, seed int64, onProgress func(Snapshot)) (*engine.Result, *Runner, scanraw.RunStats, error) {
	r, err := NewRunner(q, op.Table().Schema(), cfg, onProgress)
	if err != nil {
		return nil, nil, scanraw.RunStats{}, err
	}
	req := scanraw.Request{
		Columns: q.RequiredColumns(),
		// No Skip: a statistics-pruned chunk would be a hole in the
		// sample order, biasing every estimate. The exact root would
		// survive it, but the estimator would not.
		Order:     r.Order(seed),
		Satisfied: r.Satisfied,
		Deliver:   r.Consume,
	}
	st, err := op.RunContext(ctx, req)
	if err != nil {
		return nil, nil, st, err
	}
	res, err := r.Result()
	if err != nil {
		return nil, nil, st, fmt.Errorf("ola: finalize: %w", err)
	}
	return res, r, st, nil
}
