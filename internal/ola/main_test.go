package ola

import (
	"testing"

	"scanraw/internal/testutil"
)

func TestMain(m *testing.M) {
	testutil.Main(m)
}
