package ola

import (
	"math"
	"math/rand"
	"testing"

	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Column{Name: "c0", Type: schema.Int64},
		schema.Column{Name: "c1", Type: schema.Int64},
	)
}

func parseQ(t *testing.T, sql string) *engine.Query {
	t.Helper()
	q, err := engine.ParseSQL(sql, testSchema(t))
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return q
}

func TestEligible(t *testing.T) {
	cases := []struct {
		sql string
		ok  bool
	}{
		{"SELECT COUNT(*) FROM data", true},
		{"SELECT SUM(c0) FROM data", true},
		{"SELECT AVG(c0) FROM data WHERE c1 > 10", true},
		{"SELECT c1, COUNT(*), SUM(c0) FROM data GROUP BY c1", true},
		{"SELECT c0 FROM data", false},                                   // not aggregate
		{"SELECT MIN(c0) FROM data", false},                              // extreme value
		{"SELECT MAX(c0) FROM data", false},                              // extreme value
		{"SELECT SUM(c0) FROM data LIMIT 1", false},                      // limit
		{"SELECT c1, SUM(c0) FROM data GROUP BY c1 ORDER BY 2", false},   // order by
		{"SELECT c1, SUM(c0) FROM data GROUP BY c1 HAVING 2 > 5", false}, // having
	}
	for _, c := range cases {
		err := Eligible(parseQ(t, c.sql))
		if (err == nil) != c.ok {
			t.Errorf("%s: eligible err = %v, want ok=%v", c.sql, err, c.ok)
		}
	}
}

// scalarAgg builds the per-chunk snapshot of a scalar aggregate query
// with one select item.
func scalarAgg(count, sumInt int64) []engine.GroupAgg {
	return []engine.GroupAgg{{
		Key:  "",
		Aggs: []engine.AggSnapshot{{Count: count, SumInt: sumInt}},
	}}
}

// TestCoverageSum runs the satellite's statistical-coverage suite for
// the expansion estimator: 200 seeded trials over a fixed synthetic
// population, each sampling a prefix of a fresh permutation; the 95%
// interval must contain the true total in at least 93% of trials.
func TestCoverageSum(t *testing.T) {
	const (
		N      = 400
		sample = 90
		trials = 200
	)
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	// Fixed population: per-chunk sums with moderate skew so the CLT has
	// something to do but the sample prefix stays in its regime.
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, N)
	var truth int64
	for i := range vals {
		vals[i] = rng.Int63n(2000) + int64(i%5)*700
		truth += vals[i]
	}
	hits := 0
	for trial := 0; trial < trials; trial++ {
		e, err := NewEstimator(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		e.SetTotalChunks(N)
		perm := Permutation(N, int64(trial))
		for _, id := range perm[:sample] {
			e.Observe(scalarAgg(100, vals[id]))
		}
		snap := e.Snapshot()
		est := snap.Groups[0].Values[0].Float
		half := snap.Groups[0].Bounds[0]
		if math.Abs(est-float64(truth)) <= half {
			hits++
		}
	}
	if hits < 186 { // 93% of 200
		t.Fatalf("95%% interval covered the truth in only %d/%d trials", hits, trials)
	}
	t.Logf("coverage: %d/%d trials", hits, trials)
}

// TestCoverageAvg covers the ratio estimator: per-chunk counts vary, so
// AVG is a quotient of two random totals and its bound comes from the
// delta method.
func TestCoverageAvg(t *testing.T) {
	const (
		N      = 400
		sample = 90
		trials = 200
	)
	q := parseQ(t, "SELECT AVG(c0) FROM data")
	rng := rand.New(rand.NewSource(7))
	counts := make([]int64, N)
	sums := make([]int64, N)
	var totCount, totSum int64
	for i := range counts {
		counts[i] = 50 + rng.Int63n(100)
		sums[i] = counts[i] * (200 + rng.Int63n(600))
		totCount += counts[i]
		totSum += sums[i]
	}
	truth := float64(totSum) / float64(totCount)
	hits := 0
	for trial := 0; trial < trials; trial++ {
		e, err := NewEstimator(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		e.SetTotalChunks(N)
		perm := Permutation(N, int64(1000+trial))
		for _, id := range perm[:sample] {
			e.Observe(scalarAgg(counts[id], sums[id]))
		}
		snap := e.Snapshot()
		est := snap.Groups[0].Values[0].Float
		half := snap.Groups[0].Bounds[0]
		if math.Abs(est-truth) <= half {
			hits++
		}
	}
	if hits < 186 {
		t.Fatalf("95%% interval covered the truth in only %d/%d trials", hits, trials)
	}
	t.Logf("coverage: %d/%d trials", hits, trials)
}

// TestCoverageGrouped covers per-group intervals: 200 trials × 3 groups
// of COUNT estimates, counted as 600 independent intervals.
func TestCoverageGrouped(t *testing.T) {
	const (
		N      = 400
		sample = 90
		trials = 200
		groups = 3
	)
	q := parseQ(t, "SELECT c1, COUNT(*) FROM data GROUP BY c1")
	rng := rand.New(rand.NewSource(21))
	// counts[g][i]: group g's row count in chunk i. Group 2 is sparse —
	// absent from most chunks — to exercise the implicit-zero path.
	counts := make([][]int64, groups)
	truth := make([]int64, groups)
	for g := range counts {
		counts[g] = make([]int64, N)
		for i := range counts[g] {
			switch g {
			case 2:
				if rng.Intn(4) == 0 {
					counts[g][i] = rng.Int63n(40)
				}
			default:
				counts[g][i] = 20 + rng.Int63n(80)
			}
			truth[g] += counts[g][i]
		}
	}
	keyOf := []string{"a", "b", "c"}
	hits, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		e, err := NewEstimator(q, Config{})
		if err != nil {
			t.Fatal(err)
		}
		e.SetTotalChunks(N)
		perm := Permutation(N, int64(5000+trial))
		for _, id := range perm[:sample] {
			var gas []engine.GroupAgg
			for g := 0; g < groups; g++ {
				if counts[g][id] == 0 {
					continue // group absent from this chunk
				}
				gas = append(gas, engine.GroupAgg{
					Key:  keyOf[g],
					Keys: []engine.Value{engine.IntValue(int64(g))},
					Aggs: []engine.AggSnapshot{{}, {Count: counts[g][id]}},
				})
			}
			e.Observe(gas)
		}
		snap := e.Snapshot()
		for _, ge := range snap.Groups {
			g := int(ge.Values[0].Int)
			total++
			if math.Abs(ge.Values[1].Float-float64(truth[g])) <= ge.Bounds[1] {
				hits++
			}
		}
	}
	if total < trials*groups-trials/4 {
		// Sanity: sampled a quarter of the chunks with group 2 in ~25% of them —
		// it should appear in essentially every trial.
		t.Fatalf("only %d intervals produced, want close to %d", total, trials*groups)
	}
	if hits*100 < total*93 {
		t.Fatalf("intervals covered the truth in only %d/%d cases", hits, total)
	}
	t.Logf("coverage: %d/%d intervals", hits, total)
}

// TestFullScanExactZeroWidth: observing every chunk drives the FPC — and
// with it every bound — to exactly zero, and the estimate to the truth.
func TestFullScanExactZeroWidth(t *testing.T) {
	const N = 64
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	e, err := NewEstimator(q, Config{}) // tolerance zero: never converge
	if err != nil {
		t.Fatal(err)
	}
	e.SetTotalChunks(N)
	rng := rand.New(rand.NewSource(3))
	var truth int64
	for range Permutation(N, 11) {
		v := rng.Int63n(10000)
		truth += v
		e.Observe(scalarAgg(10, v))
	}
	snap := e.Snapshot()
	if snap.Converged {
		t.Error("tolerance 0 must never converge")
	}
	if got := snap.Groups[0].Bounds[0]; got != 0 {
		t.Errorf("full-scan bound = %v, want exactly 0", got)
	}
	if snap.MaxRel != 0 {
		t.Errorf("full-scan MaxRel = %v, want 0", snap.MaxRel)
	}
	est := snap.Groups[0].Values[0].Float
	if rel := math.Abs(est-float64(truth)) / float64(truth); rel > 1e-9 {
		t.Errorf("full-scan estimate %v vs truth %d (rel %v)", est, truth, rel)
	}
}

// TestMinChunksFloor: even an absurdly loose tolerance must not converge
// before MinChunks observations.
func TestMinChunksFloor(t *testing.T) {
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	e, err := NewEstimator(q, Config{Tolerance: 1e9, MinChunks: 16})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTotalChunks(1000)
	for i := 0; i < 15; i++ {
		e.Observe(scalarAgg(10, 500))
		if snap := e.Snapshot(); snap.Converged {
			t.Fatalf("converged after %d chunks, floor is 16", i+1)
		}
	}
	e.Observe(scalarAgg(10, 500))
	if snap := e.Snapshot(); !snap.Converged {
		t.Fatal("16 constant chunks under tolerance 1e9 must converge")
	}
}

// TestConvergenceLatches: once declared, convergence survives later
// observations that would widen the bound.
func TestConvergenceLatches(t *testing.T) {
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	e, err := NewEstimator(q, Config{Tolerance: 0.05, MinChunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTotalChunks(10000)
	for i := 0; i < 20; i++ {
		e.Observe(scalarAgg(10, 1000)) // zero variance: converges at the floor
	}
	if !e.Snapshot().Converged {
		t.Fatal("constant sample must converge")
	}
	e.Observe(scalarAgg(10, 1e15)) // massive outlier blows the bound up
	snap := e.Snapshot()
	if snap.MaxRel <= 0.05 {
		t.Fatalf("outlier should have widened the bound, MaxRel = %v", snap.MaxRel)
	}
	if !snap.Converged {
		t.Fatal("convergence must latch")
	}
}

// TestBoundsShrink: with a stationary population the relative bound at a
// large sample is tighter than at a small one.
func TestBoundsShrink(t *testing.T) {
	const N = 500
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	e, err := NewEstimator(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTotalChunks(N)
	rng := rand.New(rand.NewSource(17))
	var relAt20 float64
	for i := 0; i < N; i++ {
		e.Observe(scalarAgg(10, rng.Int63n(5000)))
		if i+1 == 20 {
			relAt20 = e.Snapshot().MaxRel
		}
	}
	relEnd := e.Snapshot().MaxRel
	if !(relEnd < relAt20) {
		t.Fatalf("MaxRel did not shrink: %v at 20 chunks, %v at %d", relAt20, relEnd, N)
	}
}

// TestZeroMatchCount: a scalar COUNT over chunks with no matching rows
// estimates 0 with a zero-width bound and converges at the floor — the
// pre-created scalar group keeps zero-match samples estimable.
func TestZeroMatchCount(t *testing.T) {
	q := parseQ(t, "SELECT COUNT(*) FROM data WHERE c0 < 0")
	e, err := NewEstimator(q, Config{Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTotalChunks(1 << 20)
	for i := 0; i < DefaultMinChunks; i++ {
		e.Observe(nil) // chunk matched nothing: no groups at all
	}
	snap := e.Snapshot()
	if len(snap.Groups) != 1 {
		t.Fatalf("scalar query groups = %d, want 1", len(snap.Groups))
	}
	if est := snap.Groups[0].Values[0].Float; est != 0 {
		t.Errorf("estimate = %v, want 0", est)
	}
	if half := snap.Groups[0].Bounds[0]; half != 0 {
		t.Errorf("bound = %v, want 0", half)
	}
	if !snap.Converged {
		t.Error("zero-variance sample at the floor must converge")
	}
}

// TestConfidenceWidensBound: a higher confidence level yields a wider
// interval on identical data.
func TestConfidenceWidensBound(t *testing.T) {
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	mk := func(conf float64) float64 {
		e, err := NewEstimator(q, Config{Confidence: conf})
		if err != nil {
			t.Fatal(err)
		}
		e.SetTotalChunks(1000)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 40; i++ {
			e.Observe(scalarAgg(10, rng.Int63n(3000)))
		}
		return e.Snapshot().Groups[0].Bounds[0]
	}
	if b95, b99 := mk(0.95), mk(0.99); !(b99 > b95) {
		t.Fatalf("99%% bound %v not wider than 95%% bound %v", b99, b95)
	}
}

func TestNewEstimatorRejects(t *testing.T) {
	q := parseQ(t, "SELECT SUM(c0) FROM data")
	if _, err := NewEstimator(q, Config{Confidence: 1.5}); err == nil {
		t.Error("confidence 1.5 accepted")
	}
	if _, err := NewEstimator(parseQ(t, "SELECT MIN(c0) FROM data"), Config{}); err == nil {
		t.Error("MIN accepted")
	}
}
