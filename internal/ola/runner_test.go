package ola

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

// olaEnv is a generated CSV table plus its operator config, rebuilt
// fresh per sub-test so differential runs never share state.
type olaEnv struct {
	store *dbstore.Store
	table *dbstore.Table
	spec  gen.CSVSpec
}

func newOlaEnv(t *testing.T, rows int) *olaEnv {
	t.Helper()
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: rows, Cols: 3, Seed: 42, MaxValue: 1000}
	gen.Preload(d, "raw/data.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	return &olaEnv{store: store, table: table, spec: spec}
}

func (e *olaEnv) operator(cfg scanraw.Config) *scanraw.Operator {
	return scanraw.New(e.store, e.table, cfg)
}

func (e *olaEnv) query(t *testing.T, sql string) *engine.Query {
	t.Helper()
	q, err := engine.ParseSQL(sql, e.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSampledFullScanMatchesFileOrder is the differential satellite: an
// error=0 sampled scan (tolerance zero never converges, so every chunk
// is visited in permutation order) must produce exactly the file-order
// answer, across the pipeline, sequential and cached execution paths.
func TestSampledFullScanMatchesFileOrder(t *testing.T) {
	queries := []string{
		"SELECT SUM(c0) FROM data",
		"SELECT COUNT(*) FROM data WHERE c1 > 500",
		"SELECT c2, COUNT(*), SUM(c0), AVG(c1) FROM data GROUP BY c2",
	}
	configs := []struct {
		name string
		cfg  scanraw.Config
	}{
		{"sequential", scanraw.Config{Workers: 0, ChunkLines: 64, CacheChunks: 4}},
		{"pipeline", scanraw.Config{Workers: 4, ChunkLines: 64, CacheChunks: 4}},
		{"speculative", scanraw.Config{Workers: 2, ChunkLines: 64, CacheChunks: 4, Policy: scanraw.Speculative, Safeguard: true}},
	}
	for _, c := range configs {
		for qi, sql := range queries {
			t.Run(fmt.Sprintf("%s/q%d", c.name, qi), func(t *testing.T) {
				env := newOlaEnv(t, 600)
				// Plain file-order run on a fresh operator.
				want, _, err := scanraw.ExecuteQuery(env.operator(c.cfg), env.query(t, sql))
				if err != nil {
					t.Fatal(err)
				}
				// Sampled run, tolerance zero, on another fresh table.
				env2 := newOlaEnv(t, 600)
				got, r, st, err := Run(context.Background(), env2.operator(c.cfg), env2.query(t, sql), Config{}, 1234, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Exact() {
					t.Fatal("tolerance 0 must cover the whole file")
				}
				if st.TerminatedEarly {
					t.Fatal("tolerance 0 must not terminate early")
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("sampled result differs:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestSampledScanCachedPath: a second sampled run over a fully cached
// table serves from the cache and still matches the exact answer.
func TestSampledScanCachedPath(t *testing.T) {
	env := newOlaEnv(t, 512)
	op := env.operator(scanraw.Config{Workers: 2, ChunkLines: 64, CacheChunks: 16})
	sql := "SELECT c2, SUM(c0) FROM data GROUP BY c2"
	want, _, err := scanraw.ExecuteQuery(op, env.query(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	got, _, st, err := Run(context.Background(), op, env.query(t, sql), Config{}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeliveredCache == 0 {
		t.Errorf("second run over a warm cache served %d chunks from cache: %+v", st.DeliveredCache, st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached sampled result differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestSampledScanTerminatesEarly: a loose tolerance over uniform data
// stops well short of the file, reports convergence, and the estimate's
// interval is sane.
func TestSampledScanTerminatesEarly(t *testing.T) {
	env := newOlaEnv(t, 4096) // 64 chunks of 64 lines
	op := env.operator(scanraw.Config{Workers: 4, ChunkLines: 64, CacheChunks: 8})
	q := env.query(t, "SELECT SUM(c0) FROM data")
	var snaps []Snapshot
	res, r, st, err := Run(context.Background(), op, q, Config{Tolerance: 0.10}, 99, func(s Snapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Satisfied() {
		t.Fatal("scan returned without converging")
	}
	if !st.TerminatedEarly {
		t.Fatalf("converged scan did not terminate early: %+v", st)
	}
	total := env.table.NumChunks()
	sampled := r.LastSnapshot().Chunks
	if sampled >= total {
		t.Fatalf("sampled %d of %d chunks — no saving", sampled, total)
	}
	if sampled < DefaultMinChunks {
		t.Fatalf("converged below the MinChunks floor: %d", sampled)
	}
	// The estimate must be a real number within its own bound of the
	// exact answer scaled by a generous factor (this is one seeded draw
	// of a 95% interval; the coverage suite checks calibration).
	truth := float64(gen.SumRange(env.spec, []int{0}, 0, env.spec.Rows))
	last := r.LastSnapshot()
	est := last.Groups[0].Values[0].Float
	half := last.Groups[0].Bounds[0]
	if relErr := abs(est-truth) / truth; relErr > 0.2 {
		t.Errorf("estimate %v vs truth %v (rel %v)", est, truth, relErr)
	}
	if half <= 0 || half/abs(est) > 0.10 {
		t.Errorf("final half-width %v does not meet tolerance at estimate %v", half, est)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	// The result row carries the estimate, not an engine row.
	if len(res.Rows) != 1 || res.Rows[0][0].Float != est {
		t.Errorf("result %+v does not match the last snapshot estimate %v", res.Rows, est)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSampledScanFeedsSpeculativeLoader: chunks visited in sample order
// flow through the same speculative WRITE path, so an early-terminated
// sampled scan still leaves pages in the database (plus the safeguard
// flush for what was cached).
func TestSampledScanFeedsSpeculativeLoader(t *testing.T) {
	env := newOlaEnv(t, 4096)
	op := env.operator(scanraw.Config{
		Workers: 2, ChunkLines: 64, CacheChunks: 8,
		Policy: scanraw.Speculative, Safeguard: true,
	})
	q := env.query(t, "SELECT SUM(c0) FROM data")
	_, r, st, err := Run(context.Background(), op, q, Config{Tolerance: 0.10}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TerminatedEarly {
		t.Fatalf("expected early termination: %+v", st)
	}
	op.WaitIdle()
	if loaded := len(env.table.LoadedChunks([]int{0})); loaded == 0 {
		t.Error("sampled speculative scan loaded no chunks into the database")
	}
	_ = r
}
