// Package ola implements online aggregation over the SCANRAW operator
// (OLA-RAW, arXiv 1702.00358): aggregate queries are served from a random
// sample of chunks with converging estimates and CLT-based confidence
// bounds, and the scan terminates early — safeguard flush preserved —
// once the relative half-width of every bound falls at or below a
// user-supplied tolerance.
//
// Chunks are the sampling units (inter-chunk sampling): a seeded random
// permutation of the chunk IDs becomes the scan's visit order, so every
// prefix of the scan is a uniform without-replacement sample of the file.
// Estimators scale per-chunk aggregate contributions by N/n with the
// finite-population correction, which drives the variance — and therefore
// the bound — to exactly zero when the sample reaches the whole file: the
// estimator path degrades to the exact engine merge.
package ola

import "math/rand"

// Permutation returns a seeded uniform random permutation of [0, n) — the
// chunk visit order of a sampled scan. The same (n, seed) pair always
// yields the same permutation, which is what makes sampled runs
// reproducible end to end.
func Permutation(n int, seed int64) []int {
	if n < 0 {
		n = 0
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)
}
