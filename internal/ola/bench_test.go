package ola

import (
	"context"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

// benchEnv builds the shared table for the time-to-bound benchmarks:
// large enough that sampling a prefix is visibly cheaper than scanning
// everything, on a throttled disk so chunk reads carry realistic cost.
// The read block is sized to the chunk extent — a sampled chunk costs one
// chunk-sized random read, not a full read-ahead block of neighbors the
// estimator never asked for.
func benchEnv(b *testing.B) (*dbstore.Store, *dbstore.Table, *engine.Query) {
	b.Helper()
	d := vdisk.New(vdisk.Config{ReadBandwidth: 200 << 20, WriteBandwidth: 200 << 20})
	spec := gen.CSVSpec{Rows: 1 << 18, Cols: 4, Seed: 7, MaxValue: 1000}
	gen.Preload(d, "raw/bench.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", spec.Schema(), "raw/bench.csv")
	if err != nil {
		b.Fatal(err)
	}
	q, err := engine.ParseSQL("SELECT SUM(c0+c1) FROM data", table.Schema())
	if err != nil {
		b.Fatal(err)
	}
	return store, table, q
}

var benchCfg = scanraw.Config{Workers: 4, ChunkLines: 2048, CacheChunks: 4, ReadBlockBytes: 40 << 10}

const benchTolerance = 0.05

// BenchmarkOLAFullScan is the baseline: the same aggregate materialized
// exactly, every chunk scanned in file order.
func BenchmarkOLAFullScan(b *testing.B) {
	store, table, q := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := scanraw.New(store, table, benchCfg)
		res, _, err := scanraw.ExecuteQuery(op, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkOLATimeToBound measures how long online aggregation takes to
// reach a 5% bound at 95% confidence on the same query — the headline
// ola_time_to_bound_speedup is the full-scan baseline over this.
func BenchmarkOLATimeToBound(b *testing.B) {
	store, table, q := benchEnv(b)
	// Pay the one-time discovery pass outside the timer: a converging
	// estimate needs the chunk count, but every query after the first
	// reuses the catalog.
	if _, _, _, err := Run(context.Background(), scanraw.New(store, table, benchCfg), q,
		Config{Tolerance: benchTolerance}, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := scanraw.New(store, table, benchCfg)
		_, r, _, err := Run(context.Background(), op, q,
			Config{Tolerance: benchTolerance}, int64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if last := r.LastSnapshot(); !last.Converged {
			b.Fatalf("no convergence at tolerance %v (%d/%d chunks, rel %v)",
				benchTolerance, last.Chunks, last.Total, last.MaxRel)
		}
	}
}
