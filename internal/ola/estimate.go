package ola

import (
	"fmt"
	"math"
	"sort"

	"scanraw/internal/engine"
	"scanraw/internal/schema"
)

// Config tunes a sampled query's stop rule.
type Config struct {
	// Confidence is the coverage level of the reported intervals, in
	// (0, 1). Zero means DefaultConfidence.
	Confidence float64
	// Tolerance is the target relative half-width: the scan may stop
	// once every bound satisfies half/|estimate| <= Tolerance. Zero (or
	// negative) disables early termination — the scan runs to the end
	// and the result is exact.
	Tolerance float64
	// MinChunks is the floor below which convergence is never declared,
	// guarding against a lucky low-variance prefix. Zero means
	// DefaultMinChunks.
	MinChunks int
}

// Defaults for Config zero values.
const (
	DefaultConfidence = 0.95
	DefaultMinChunks  = 16
)

func (c Config) withDefaults() Config {
	if c.Confidence == 0 {
		c.Confidence = DefaultConfidence
	}
	if c.MinChunks <= 0 {
		c.MinChunks = DefaultMinChunks
	}
	if c.MinChunks < 2 {
		// Variance needs two observations; below that the bound is
		// infinite anyway.
		c.MinChunks = 2
	}
	return c
}

// Eligible reports whether q's result can be estimated from a chunk
// sample. COUNT, SUM and AVG (grouped or not) admit unbiased estimators
// with CLT bounds; MIN/MAX are extreme-value statistics a uniform sample
// cannot bound, and HAVING/ORDER BY/LIMIT filter or reorder rows based on
// values that are still estimates.
func Eligible(q *engine.Query) error {
	if q == nil || !q.IsAggregate() {
		return fmt.Errorf("ola: only aggregate queries have estimable results")
	}
	if len(q.Having) > 0 {
		return fmt.Errorf("ola: HAVING filters on values that are still estimates")
	}
	if len(q.OrderBy) > 0 || q.Limit > 0 {
		return fmt.Errorf("ola: ORDER BY/LIMIT are not supported on estimated results")
	}
	for _, it := range q.Items {
		switch it.Agg {
		case engine.AggNone, engine.AggCount, engine.AggSum, engine.AggAvg:
		default:
			return fmt.Errorf("ola: %s is an extreme-value statistic; a uniform sample cannot bound it", it.Agg)
		}
	}
	return nil
}

// cell accumulates the running moments of one aggregate in one group.
// u is the chunk's contribution to the numerator (per-chunk count or
// sum); v is the denominator for ratio estimators (AVG's per-chunk
// count). All five sums update in O(1) per observed chunk.
type cell struct {
	sumU, sumUU float64
	sumV, sumVV float64
	sumUV       float64
}

type groupAcc struct {
	keys  []engine.Value
	cells []cell
}

// Estimator maintains converging estimates with confidence bounds for
// one aggregate query, fed per-chunk aggregate snapshots in sample
// order. It is not safe for concurrent use; Runner serializes access.
type Estimator struct {
	q      *engine.Query
	cfg    Config
	z      float64 // normal quantile for cfg.Confidence
	keyIdx map[string]int

	total     int // N: chunks in the file; 0 until SetTotalChunks
	n         int // chunks observed so far
	groups    map[string]*groupAcc
	converged bool // latched: once true, stays true
}

// NewEstimator builds an estimator for q, which must be Eligible.
func NewEstimator(q *engine.Query, cfg Config) (*Estimator, error) {
	if err := Eligible(q); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("ola: confidence %v outside (0, 1)", cfg.Confidence)
	}
	e := &Estimator{
		q:      q,
		cfg:    cfg,
		z:      math.Sqrt2 * math.Erfinv(cfg.Confidence),
		keyIdx: map[string]int{},
		groups: map[string]*groupAcc{},
	}
	for i, g := range q.GroupBy {
		e.keyIdx[g.String()] = i
	}
	if len(q.GroupBy) == 0 {
		// Scalar aggregates always produce exactly one output row, even
		// when no chunk matches; pre-create it so zero-match samples
		// still estimate (COUNT 0 with a shrinking bound).
		e.groups[""] = &groupAcc{cells: make([]cell, len(q.Items))}
	}
	return e, nil
}

// SetTotalChunks fixes N, the population size. Must be called before the
// first Snapshot; the Runner calls it from the scan's Order callback,
// after chunk discovery completes.
func (e *Estimator) SetTotalChunks(n int) { e.total = n }

// Chunks returns how many chunks have been observed.
func (e *Estimator) Chunks() int { return e.n }

// Observe folds one chunk's per-group aggregate snapshots into the
// running moments. Chunks MUST arrive in sample order (any prefix of the
// permutation is a uniform sample; an arbitrary subset is not — the
// Runner's reorder buffer enforces this). A group absent from gas
// contributed zero to every sum, which the global n already accounts
// for: its sums simply don't move.
func (e *Estimator) Observe(gas []engine.GroupAgg) {
	e.n++
	for _, ga := range gas {
		g, ok := e.groups[ga.Key]
		if !ok {
			g = &groupAcc{keys: ga.Keys, cells: make([]cell, len(e.q.Items))}
			e.groups[ga.Key] = g
		}
		for j, it := range e.q.Items {
			if it.Agg == engine.AggNone || j >= len(ga.Aggs) {
				continue
			}
			snap := ga.Aggs[j]
			var u, v float64
			switch it.Agg {
			case engine.AggCount:
				u = float64(snap.Count)
			case engine.AggSum:
				u = sumOf(it, snap)
			case engine.AggAvg:
				u = sumOf(it, snap)
				v = float64(snap.Count)
			}
			c := &g.cells[j]
			c.sumU += u
			c.sumUU += u * u
			c.sumV += v
			c.sumVV += v * v
			c.sumUV += u * v
		}
	}
}

func sumOf(it engine.SelectItem, s engine.AggSnapshot) float64 {
	if it.Expr != nil && it.Expr.Type() == schema.Float64 {
		return s.SumFloat
	}
	return float64(s.SumInt)
}

// GroupEstimate is one output row of a snapshot: the estimated values in
// select-list order with a half-width bound per cell (zero for group-by
// key columns, whose values are exact).
type GroupEstimate struct {
	Key    string
	Values []engine.Value
	Bounds []float64
}

// Snapshot is the state of the estimate after some prefix of the sample.
type Snapshot struct {
	Chunks    int // chunks observed
	Total     int // chunks in the file
	Groups    []GroupEstimate
	MaxRel    float64 // worst relative half-width across all bounds
	Converged bool
}

// Snapshot computes the current estimates and bounds, and latches
// convergence once the worst relative half-width reaches the tolerance
// (with at least MinChunks observed). Latching keeps the stop decision
// monotonic even if a later snapshot's bound would wiggle back up.
func (e *Estimator) Snapshot() Snapshot {
	snap := Snapshot{Chunks: e.n, Total: e.total}
	keys := make([]string, 0, len(e.groups))
	for k := range e.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	maxRel := 0.0
	sawBound := false
	for _, k := range keys {
		g := e.groups[k]
		ge := GroupEstimate{
			Key:    k,
			Values: make([]engine.Value, len(e.q.Items)),
			Bounds: make([]float64, len(e.q.Items)),
		}
		for j, it := range e.q.Items {
			if it.Agg == engine.AggNone {
				ge.Values[j] = g.keys[e.keyIdx[it.Expr.String()]]
				continue
			}
			est, half := e.cellEstimate(it, &g.cells[j])
			ge.Values[j] = engine.FloatValue(est)
			ge.Bounds[j] = half
			if r := relBound(est, half); r > maxRel {
				maxRel = r
			}
			sawBound = true
		}
		snap.Groups = append(snap.Groups, ge)
	}
	if !sawBound {
		// No aggregate cell estimated yet (e.g. grouped query before any
		// group appears): nothing to declare converged on.
		maxRel = math.Inf(1)
	}
	snap.MaxRel = maxRel
	if !e.converged && e.cfg.Tolerance > 0 && e.n >= e.cfg.MinChunks && maxRel <= e.cfg.Tolerance {
		e.converged = true
	}
	snap.Converged = e.converged
	return snap
}

// cellEstimate scales one cell's moments to a population estimate and a
// CLT half-width. COUNT/SUM use the expansion estimator N·ū with
// finite-population-corrected variance N²·(1−n/N)·s²/n; AVG uses the
// ratio estimator Σu/Σv with the delta-method variance over per-chunk
// residuals d_i = u_i − R·v_i. The FPC factor hits zero at n == N, so a
// completed scan always reports a zero-width bound.
func (e *Estimator) cellEstimate(it engine.SelectItem, c *cell) (est, half float64) {
	if e.n == 0 || e.total <= 0 {
		return math.NaN(), math.Inf(1)
	}
	n := float64(e.n)
	N := float64(e.total)
	fpc := 1 - n/N
	if fpc < 0 {
		fpc = 0
	}
	if it.Agg == engine.AggAvg {
		if c.sumV == 0 {
			// No qualifying rows sampled: AVG is so far undefined. At
			// full scan that is the exact (NaN) answer.
			if fpc == 0 {
				return math.NaN(), 0
			}
			return math.NaN(), math.Inf(1)
		}
		r := c.sumU / c.sumV
		if fpc == 0 {
			return r, 0
		}
		if e.n < 2 {
			return r, math.Inf(1)
		}
		sd2 := (c.sumUU - 2*r*c.sumUV + r*r*c.sumVV) / (n - 1)
		if sd2 < 0 {
			sd2 = 0 // guard float cancellation
		}
		vbar := c.sumV / n
		return r, e.z * math.Sqrt(fpc*sd2/n) / vbar
	}
	mean := c.sumU / n
	est = N * mean
	if fpc == 0 {
		return est, 0
	}
	if e.n < 2 {
		return est, math.Inf(1)
	}
	s2 := (c.sumUU - c.sumU*c.sumU/n) / (n - 1)
	if s2 < 0 {
		s2 = 0
	}
	return est, e.z * N * math.Sqrt(fpc*s2/n)
}

// relBound is the convergence criterion for one cell: half-width
// relative to the estimate's magnitude. A zero-width bound converges
// regardless of the estimate; a zero (or undefined) estimate with a
// nonzero bound never does.
func relBound(est, half float64) float64 {
	if half == 0 {
		return 0
	}
	if est == 0 || math.IsNaN(est) {
		return math.Inf(1)
	}
	return half / math.Abs(est)
}

// estimateResult materializes a snapshot as an engine result (group rows
// sorted by key, matching the exact path's ordering).
func estimateResult(q *engine.Query, snap Snapshot) *engine.Result {
	res := &engine.Result{Cols: make([]string, len(q.Items))}
	for i, it := range q.Items {
		res.Cols[i] = it.Name()
	}
	for _, g := range snap.Groups {
		res.Rows = append(res.Rows, g.Values)
	}
	return res
}
