package cache

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// Regression: PutPinned used to grant its pin only when the column merge
// into an existing entry succeeded, while still reporting ok — the caller's
// eventual Unpin then underflowed the entry's pin count.
func TestPutPinnedGrantsPinEvenWhenMergeFails(t *testing.T) {
	c := New(4)
	if _, _, ok := c.PutPinned(mk(1), false); !ok {
		t.Fatal("first PutPinned rejected")
	}

	// Same ID, mismatched row count: Clone+Merge fails, entry survives.
	bad := chunk.NewBinary(sch, 1, 2)
	v := chunk.NewVector(schema.Int64, 2)
	if err := bad.SetColumn(0, v); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.PutPinned(bad, false); !ok {
		t.Fatal("merging PutPinned rejected")
	}

	if err := c.Unpin(1); err != nil {
		t.Fatalf("first unpin: %v", err)
	}
	if err := c.Unpin(1); err != nil {
		t.Fatalf("pin from failed-merge PutPinned was not granted: %v", err)
	}
	if s := c.Stats(); s.PinCount != 0 || s.PinnedEntries != 0 {
		t.Fatalf("pins outstanding after balanced unpins: %+v", s)
	}
}

func TestStats(t *testing.T) {
	c := New(8)
	c.Put(mk(1), false)
	c.Put(mk(2), false)
	c.Put(mk(3), false)
	if c.Acquire(1) == nil {
		t.Fatal("Acquire(1) missed")
	}
	if c.Acquire(1) == nil {
		t.Fatal("second Acquire(1) missed")
	}
	if !c.Pin(2) {
		t.Fatal("Pin(2) missed")
	}

	s := c.Stats()
	want := Stats{Entries: 3, Capacity: 8, PinnedEntries: 2, PinCount: 3}
	if s != want {
		t.Fatalf("Stats = %+v, want %+v", s, want)
	}

	for _, id := range []int{1, 1, 2} {
		if err := c.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	s = c.Stats()
	if s.PinnedEntries != 0 || s.PinCount != 0 {
		t.Fatalf("pins remain after release: %+v", s)
	}
}
