// Package cache implements the binary chunks cache at the heart of the
// SCANRAW operator (paper §3.1, "Caching"). The cache holds converted
// binary chunks across queries; eviction is LRU **biased toward chunks
// already loaded inside the database** — a chunk that also exists in binary
// format on disk is cheaper to lose than one that would have to be
// re-tokenized and re-parsed from the raw file.
//
// Entries can be pinned while the execution engine still needs them;
// pinned entries are never evicted. The cache also answers the speculative
// WRITE thread's central query: the *oldest* cached chunk that has not yet
// been loaded into the database (paper §4: writing the oldest unloaded
// chunk first "increases the chance to load more chunks before they are
// eliminated from the cache").
package cache

import (
	"fmt"
	"sort"
	"sync"

	"scanraw/internal/chunk"
)

type entry struct {
	bc       *chunk.BinaryChunk
	loaded   bool   // chunk (its cached columns) is stored in the database
	pins     int    // > 0 while the execution engine holds the chunk
	lastUse  uint64 // LRU clock
	inserted uint64 // insertion clock, for OldestUnloaded
}

// Cache is a bounded, thread-safe chunk cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	clock   uint64
	entries map[int]*entry
	// biasLoaded enables the paper's eviction bias; disabling it turns the
	// cache into plain LRU (used by the ablation benchmark).
	biasLoaded bool
}

// New creates a cache holding at most capacity chunks, with the paper's
// loaded-chunk eviction bias enabled.
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{cap: capacity, entries: make(map[int]*entry), biasLoaded: true}
}

// NewUnbiased creates a cache with plain LRU eviction (no bias toward
// loaded chunks) for ablation comparisons.
func NewUnbiased(capacity int) *Cache {
	c := New(capacity)
	c.biasLoaded = false
	return c
}

// Cap returns the capacity in chunks.
func (c *Cache) Cap() int { return c.cap }

// Len returns the number of cached chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) tick() uint64 {
	c.clock++
	return c.clock
}

// Put inserts bc, evicting if necessary. It returns the evicted chunk (nil
// when nothing was evicted) together with whether that chunk had been
// loaded into the database, and ok=false when the cache is full of pinned
// entries and cannot accept the chunk. Re-inserting an existing ID merges
// columns into the cached chunk and refreshes its LRU position.
func (c *Cache) Put(bc *chunk.BinaryChunk, loaded bool) (evicted *chunk.BinaryChunk, evictedLoaded bool, ok bool) {
	return c.put(bc, loaded, 0)
}

// PutPinned is Put with the entry created already holding one pin, so the
// chunk cannot be evicted between insertion and its delivery to the
// execution engine. When the insert merges into an existing entry, that
// entry gains a pin.
func (c *Cache) PutPinned(bc *chunk.BinaryChunk, loaded bool) (evicted *chunk.BinaryChunk, evictedLoaded bool, ok bool) {
	return c.put(bc, loaded, 1)
}

func (c *Cache) put(bc *chunk.BinaryChunk, loaded bool, pins int) (evicted *chunk.BinaryChunk, evictedLoaded bool, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, exists := c.entries[bc.ID]; exists {
		// Merge any new columns copy-on-write; never lose ones we already
		// have, and never mutate a chunk a concurrent reader may hold.
		// The merged entry counts as loaded only when both sides were — a
		// conservative rule, since an unloaded side means some cached
		// column is not yet in the database.
		merged := e.bc.Clone()
		if err := merged.Merge(bc); err == nil {
			e.bc = merged
			e.loaded = e.loaded && loaded
		}
		// The pin is granted even when the merge fails: ok=true tells a
		// PutPinned caller it holds a pin it will later Unpin, so skipping
		// the increment here would underflow the entry's pin count.
		e.lastUse = c.tick()
		e.pins += pins
		return nil, false, true
	}
	if c.cap == 0 {
		return nil, false, false
	}
	if len(c.entries) >= c.cap {
		victim := c.pickVictim()
		if victim == nil {
			return nil, false, false
		}
		evicted, evictedLoaded = victim.bc, victim.loaded
		delete(c.entries, victim.bc.ID)
	}
	now := c.tick()
	c.entries[bc.ID] = &entry{bc: bc, loaded: loaded, pins: pins, lastUse: now, inserted: now}
	return evicted, evictedLoaded, true
}

// pickVictim selects the entry to evict: with bias, the least recently
// used *loaded* unpinned entry if any exists, otherwise the least recently
// used unpinned entry. Returns nil when every entry is pinned.
func (c *Cache) pickVictim() *entry {
	var bestLoaded, bestAny *entry
	for _, e := range c.entries {
		if e.pins > 0 {
			continue
		}
		if bestAny == nil || e.lastUse < bestAny.lastUse {
			bestAny = e
		}
		if e.loaded && (bestLoaded == nil || e.lastUse < bestLoaded.lastUse) {
			bestLoaded = e
		}
	}
	if c.biasLoaded && bestLoaded != nil {
		return bestLoaded
	}
	return bestAny
}

// Get returns the cached chunk with the given ID (touching its LRU
// position) or nil.
func (c *Cache) Get(id int) *chunk.BinaryChunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil
	}
	e.lastUse = c.tick()
	return e.bc
}

// Peek returns the cached chunk without touching LRU state.
func (c *Cache) Peek(id int) *chunk.BinaryChunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e.bc
	}
	return nil
}

// Acquire returns the cached chunk with one pin already taken, atomically,
// so the caller can use the chunk without racing an eviction (and the
// vector recycling that may follow it). The caller must Unpin the ID when
// done. Returns nil when the chunk is absent.
func (c *Cache) Acquire(id int) *chunk.BinaryChunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil
	}
	e.pins++
	e.lastUse = c.tick()
	return e.bc
}

// Contains reports whether the chunk is cached.
func (c *Cache) Contains(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// Pin marks the chunk as in use; pinned chunks are never evicted. It
// reports whether the chunk was present.
func (c *Cache) Pin(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin releases one pin. Unpinning a chunk that is absent or unpinned is
// an error — it indicates a pipeline accounting bug.
func (c *Cache) Unpin(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		invariantViolation("cache: unpin of absent chunk %d", id)
		return fmt.Errorf("cache: unpin of absent chunk %d", id)
	}
	if e.pins == 0 {
		invariantViolation("cache: unpin of unpinned chunk %d", id)
		return fmt.Errorf("cache: unpin of unpinned chunk %d", id)
	}
	e.pins--
	return nil
}

// Stats is a point-in-time snapshot of cache occupancy and pin accounting.
// A pin count that climbs without bound across queries is the signature of
// a leaked pin: some consumer acquired a chunk and never released it, and
// the affected entries can never be evicted again.
type Stats struct {
	Entries       int // cached chunks
	Capacity      int // maximum chunks
	PinnedEntries int // chunks with at least one pin
	PinCount      int // total outstanding pins
}

// Stats returns current occupancy and pin accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Entries: len(c.entries), Capacity: c.cap}
	for _, e := range c.entries {
		if e.pins > 0 {
			s.PinnedEntries++
			s.PinCount += e.pins
		}
	}
	return s
}

// MarkLoaded records that the chunk's cached columns now exist in the
// database, making it preferred for eviction. It reports whether the chunk
// was present.
func (c *Cache) MarkLoaded(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	e.loaded = true
	return true
}

// IsLoaded reports whether the cached chunk is marked loaded. Absent
// chunks report false.
func (c *Cache) IsLoaded(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	return ok && e.loaded
}

// OldestUnloaded returns the cached chunk that was inserted earliest among
// those not yet loaded into the database, or nil when every cached chunk
// is loaded. This is the chunk speculative loading writes next (paper §4).
func (c *Cache) OldestUnloaded() *chunk.BinaryChunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	for _, e := range c.entries {
		if e.loaded {
			continue
		}
		if best == nil || e.inserted < best.inserted {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.bc
}

// AcquireOldestUnloaded is OldestUnloaded with the returned chunk pinned
// atomically, protecting the speculative WRITE thread's reference from a
// concurrent eviction. The caller must Unpin the returned chunk's ID.
func (c *Cache) AcquireOldestUnloaded() *chunk.BinaryChunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	for _, e := range c.entries {
		if e.loaded {
			continue
		}
		if best == nil || e.inserted < best.inserted {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	best.pins++
	return best.bc
}

// UnloadedIDs returns the IDs of all cached chunks not yet loaded, oldest
// first. The safeguard mechanism flushes exactly this set at end-of-scan.
func (c *Cache) UnloadedIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	type pair struct {
		id  int
		ins uint64
	}
	var ps []pair
	for id, e := range c.entries {
		if !e.loaded {
			ps = append(ps, pair{id, e.inserted})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].ins < ps[j].ins })
	ids := make([]int, len(ps))
	for i, p := range ps {
		ids[i] = p.id
	}
	return ids
}

// IDs returns all cached chunk IDs in ascending order.
func (c *Cache) IDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Remove deletes a chunk from the cache regardless of load state. Pinned
// chunks cannot be removed.
func (c *Cache) Remove(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.pins > 0 {
		return false
	}
	delete(c.entries, id)
	return true
}

// Clear drops every unpinned entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range c.entries {
		if e.pins == 0 {
			delete(c.entries, id)
		}
	}
}

// MemSize returns the approximate total footprint of cached chunks.
func (c *Cache) MemSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		n += e.bc.MemSize()
	}
	return n
}
