//go:build invariants

package cache

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want invariant violation containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v; want message containing %q", r, substr)
		}
	}()
	f()
}

func TestUnpinAbsentPanicsUnderInvariants(t *testing.T) {
	c := New(2)
	mustPanic(t, "unpin of absent chunk", func() { _ = c.Unpin(99) })
}

func TestUnpinUnderflowPanicsUnderInvariants(t *testing.T) {
	c := New(2)
	c.Put(mk(1), false)
	mustPanic(t, "unpin of unpinned chunk", func() { _ = c.Unpin(1) })
}
