//go:build invariants

package cache

import "fmt"

// Invariants build: pin-accounting violations panic at the exact site of
// the bug instead of surfacing later as an error some caller may swallow.
// The race detector cannot catch these — the accounting is perfectly
// synchronized, just wrong — so `go test -tags invariants` is the runtime
// complement to the pinbalance static analyzer.
func invariantViolation(format string, args ...any) {
	panic("invariant violation: " + fmt.Sprintf(format, args...))
}
