//go:build !invariants

package cache

import "testing"

// Under the invariants build these misuses panic instead of returning an
// error (see invariants_test.go), so the error-return contract is only
// asserted in the default build.
func TestPinErrors(t *testing.T) {
	c := New(2)
	if c.Pin(7) {
		t.Error("pinning absent chunk should fail")
	}
	if err := c.Unpin(7); err == nil {
		t.Error("unpinning absent chunk should error")
	}
	c.Put(mk(1), false)
	if err := c.Unpin(1); err == nil {
		t.Error("unpinning unpinned chunk should error")
	}
}
