//go:build !invariants

package cache

// Production build: violations are reported through Unpin's error return
// only. The invariants build (see invariants_on.go) turns them into panics.
func invariantViolation(string, ...any) {}
