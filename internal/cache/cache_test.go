package cache

import (
	"testing"
	"testing/quick"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

var sch = schema.MustNew(
	schema.Column{Name: "a", Type: schema.Int64},
	schema.Column{Name: "b", Type: schema.Int64},
)

func mk(id int) *chunk.BinaryChunk {
	bc := chunk.NewBinary(sch, id, 1)
	v := chunk.NewVector(schema.Int64, 1)
	v.Ints[0] = int64(id)
	if err := bc.SetColumn(0, v); err != nil {
		panic(err)
	}
	return bc
}

func TestPutGet(t *testing.T) {
	c := New(2)
	if ev, _, ok := c.Put(mk(1), false); !ok || ev != nil {
		t.Fatalf("Put = %v %v", ev, ok)
	}
	if got := c.Get(1); got == nil || got.ID != 1 {
		t.Errorf("Get(1) = %v", got)
	}
	if c.Get(99) != nil {
		t.Error("Get(99) should be nil")
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Error("Contains wrong")
	}
	if c.Len() != 1 || c.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d", c.Len(), c.Cap())
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(2)
	c.Put(mk(1), false)
	c.Put(mk(2), false)
	c.Get(1) // 2 becomes LRU
	ev, _, ok := c.Put(mk(3), false)
	if !ok || ev == nil || ev.ID != 2 {
		t.Errorf("evicted = %v, want chunk 2", ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("cache contents wrong after eviction")
	}
}

func TestEvictionBiasTowardLoaded(t *testing.T) {
	c := New(2)
	c.Put(mk(1), true)  // loaded, but more recently used below
	c.Put(mk(2), false) // unloaded
	c.Get(1)
	c.Get(2)
	// Plain LRU would evict 1 only if least-recent; here 1 is older but
	// both were touched; make 1 most-recent to prove bias wins over LRU.
	c.Get(1)
	ev, loaded, ok := c.Put(mk(3), false)
	if !ok || ev == nil || ev.ID != 1 || !loaded {
		t.Errorf("bias eviction = %v loaded=%v, want loaded chunk 1", ev, loaded)
	}
}

func TestEvictionUnbiased(t *testing.T) {
	c := NewUnbiased(2)
	c.Put(mk(1), true)
	c.Put(mk(2), false)
	c.Get(1) // 2 is LRU
	ev, _, _ := c.Put(mk(3), false)
	if ev == nil || ev.ID != 2 {
		t.Errorf("unbiased eviction = %v, want plain LRU victim 2", ev)
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New(2)
	c.Put(mk(1), false)
	c.Put(mk(2), false)
	if !c.Pin(1) || !c.Pin(2) {
		t.Fatal("pin failed")
	}
	if _, _, ok := c.Put(mk(3), false); ok {
		t.Error("Put should fail when everything is pinned")
	}
	if err := c.Unpin(2); err != nil {
		t.Fatal(err)
	}
	ev, _, ok := c.Put(mk(3), false)
	if !ok || ev == nil || ev.ID != 2 {
		t.Errorf("after unpin, evicted = %v, want 2", ev)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	if _, _, ok := c.Put(mk(1), false); ok {
		t.Error("zero-capacity cache should accept nothing")
	}
	c2 := New(-5)
	if c2.Cap() != 0 {
		t.Errorf("negative capacity should clamp to 0, got %d", c2.Cap())
	}
}

func TestMarkLoadedAndOldestUnloaded(t *testing.T) {
	c := New(4)
	for i := 1; i <= 3; i++ {
		c.Put(mk(i), false)
	}
	if got := c.OldestUnloaded(); got == nil || got.ID != 1 {
		t.Errorf("OldestUnloaded = %v, want 1", got)
	}
	if !c.MarkLoaded(1) {
		t.Fatal("MarkLoaded(1) failed")
	}
	if !c.IsLoaded(1) || c.IsLoaded(2) {
		t.Error("IsLoaded wrong")
	}
	if got := c.OldestUnloaded(); got == nil || got.ID != 2 {
		t.Errorf("OldestUnloaded after load = %v, want 2", got)
	}
	c.MarkLoaded(2)
	c.MarkLoaded(3)
	if got := c.OldestUnloaded(); got != nil {
		t.Errorf("all loaded, OldestUnloaded = %v", got)
	}
	if c.MarkLoaded(99) {
		t.Error("MarkLoaded(absent) should report false")
	}
}

func TestUnloadedIDsOrder(t *testing.T) {
	c := New(4)
	for _, id := range []int{5, 2, 9} {
		c.Put(mk(id), false)
	}
	c.MarkLoaded(2)
	got := c.UnloadedIDs()
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("UnloadedIDs = %v, want [5 9] (insertion order)", got)
	}
}

func TestIDsSorted(t *testing.T) {
	c := New(4)
	for _, id := range []int{5, 2, 9} {
		c.Put(mk(id), false)
	}
	got := c.IDs()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Errorf("IDs = %v", got)
	}
}

func TestPutMergeColumns(t *testing.T) {
	c := New(2)
	c.Put(mk(1), true) // has column 0, loaded
	// Same chunk arrives with column 1.
	bc := chunk.NewBinary(sch, 1, 1)
	v := chunk.NewVector(schema.Int64, 1)
	v.Ints[0] = 42
	if err := bc.SetColumn(1, v); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Put(bc, false); !ok {
		t.Fatal("merge Put failed")
	}
	got := c.Peek(1)
	if !got.Has(0) || !got.Has(1) {
		t.Error("merge should keep both columns")
	}
	if c.IsLoaded(1) {
		t.Error("merging unloaded data should clear loaded flag")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestPutPinned(t *testing.T) {
	c := New(1)
	if _, _, ok := c.PutPinned(mk(1), false); !ok {
		t.Fatal("PutPinned failed")
	}
	// Entry is born pinned: a second insert cannot evict it.
	if _, _, ok := c.Put(mk(2), false); ok {
		t.Error("pinned-at-birth entry was evicted")
	}
	if err := c.Unpin(1); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Put(mk(2), false); !ok {
		t.Error("after unpin, insert should evict")
	}
	// Merging PutPinned adds a pin to the existing entry.
	c2 := New(2)
	c2.Put(mk(5), false)
	c2.PutPinned(mk(5), false)
	if err := c2.Unpin(5); err != nil {
		t.Errorf("merge should have added a pin: %v", err)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := New(4)
	c.Put(mk(1), false)
	c.Put(mk(2), false)
	c.Pin(2)
	if !c.Remove(1) {
		t.Error("Remove(1) should succeed")
	}
	if c.Remove(2) {
		t.Error("Remove of pinned chunk should fail")
	}
	if c.Remove(99) {
		t.Error("Remove of absent chunk should fail")
	}
	c.Put(mk(3), false)
	c.Clear()
	if c.Contains(3) {
		t.Error("Clear should drop unpinned entries")
	}
	if !c.Contains(2) {
		t.Error("Clear must keep pinned entries")
	}
}

func TestMemSize(t *testing.T) {
	c := New(4)
	if c.MemSize() != 0 {
		t.Error("empty cache should have zero size")
	}
	c.Put(mk(1), false)
	if c.MemSize() <= 0 {
		t.Error("MemSize should grow")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New(2)
	c.Put(mk(1), false)
	c.Put(mk(2), false)
	c.Peek(1) // must NOT refresh 1
	ev, _, _ := c.Put(mk(3), false)
	if ev == nil || ev.ID != 1 {
		t.Errorf("evicted = %v; Peek should not touch LRU", ev)
	}
}

// Property: OldestUnloaded always returns the unloaded entry that was
// inserted first, across arbitrary insert/load/get sequences.
func TestOldestUnloadedProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(64) // large: no evictions, so insertion order is total
		var insertion []int
		loaded := map[int]bool{}
		inserted := map[int]bool{}
		for _, op := range ops {
			id := int(op % 16)
			switch op % 3 {
			case 0:
				if !inserted[id] {
					c.Put(mk(id), false)
					insertion = append(insertion, id)
					inserted[id] = true
				}
			case 1:
				if inserted[id] && c.MarkLoaded(id) {
					loaded[id] = true
				}
			case 2:
				c.Get(id) // touches LRU, must not affect OldestUnloaded
			}
			var want *int
			for _, cand := range insertion {
				if !loaded[cand] {
					want = &cand
					break
				}
			}
			got := c.OldestUnloaded()
			if want == nil {
				if got != nil {
					return false
				}
			} else if got == nil || got.ID != *want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: cache never exceeds capacity and never loses a pinned chunk,
// under arbitrary operation sequences.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(3)
		pinned := map[int]int{}
		for i, op := range ops {
			id := int(op % 8)
			switch (int(op) + i) % 5 {
			case 0, 1:
				c.Put(mk(id), op%2 == 0)
			case 2:
				if c.Pin(id) {
					pinned[id]++
				}
			case 3:
				if pinned[id] > 0 {
					if err := c.Unpin(id); err != nil {
						return false
					}
					pinned[id]--
				}
			case 4:
				c.Get(id)
			}
			if c.Len() > 3 {
				return false
			}
			for id, n := range pinned {
				if n > 0 && !c.Contains(id) {
					return false // pinned chunk evicted
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
