//go:build invariants

package parse

import (
	"testing"

	"scanraw/internal/chunk"
)

// Regression: a conversion failure used to drop the column vector being
// filled (and, for multi-column requests, the vectors already installed in
// the partial chunk). The pool gauge makes both leaks observable.
func TestParseErrorReleasesVectors(t *testing.T) {
	c, m := tokenized(t, "1,2.5,alice\nbogus,3.5,bob\n", 3)
	p := &Parser{Schema: testSchema}
	base := chunk.OutstandingVectors()
	if _, err := p.Parse(c, m, []int{2, 1, 0}); err == nil {
		t.Fatal("malformed int column parsed without error")
	}
	if got := chunk.OutstandingVectors(); got != base {
		t.Errorf("vectors leaked on parse error: outstanding %d, want %d", got, base)
	}
	chunk.PutPositionalMap(m)
}

func TestParseWhereErrorReleasesVectors(t *testing.T) {
	c, m := tokenized(t, "1,bogus,alice\n2,3.5,bob\n", 3)
	p := &Parser{Schema: testSchema}
	base := chunk.OutstandingVectors()
	_, _, err := p.ParseWhere(c, m, []int{0, 1}, 0, func([]byte) bool { return true })
	if err == nil {
		t.Fatal("malformed float column parsed without error")
	}
	if got := chunk.OutstandingVectors(); got != base {
		t.Errorf("vectors leaked on ParseWhere error: outstanding %d, want %d", got, base)
	}
	chunk.PutPositionalMap(m)
}
