package parse

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
	"scanraw/internal/tok"
)

var testSchema = schema.MustNew(
	schema.Column{Name: "id", Type: schema.Int64},
	schema.Column{Name: "score", Type: schema.Float64},
	schema.Column{Name: "name", Type: schema.Str},
)

func tokenized(t *testing.T, text string, upTo int) (*chunk.TextChunk, *chunk.PositionalMap) {
	t.Helper()
	c := &chunk.TextChunk{ID: 0, Data: []byte(text), Lines: tok.CountLines([]byte(text))}
	tk := &tok.Tokenizer{Delim: ',', MinFields: testSchema.NumColumns()}
	m, err := tk.Tokenize(c, upTo)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestParseAllColumns(t *testing.T) {
	c, m := tokenized(t, "1,2.5,alice\n-7,0.25,bob\n", 3)
	p := &Parser{Schema: testSchema}
	bc, err := p.Parse(c, m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Rows != 2 {
		t.Fatalf("Rows = %d", bc.Rows)
	}
	if got := bc.Column(0).Ints; got[0] != 1 || got[1] != -7 {
		t.Errorf("ints = %v", got)
	}
	if got := bc.Column(1).Floats; got[0] != 2.5 || got[1] != 0.25 {
		t.Errorf("floats = %v", got)
	}
	if got := bc.Column(2).Strs; got[0] != "alice" || got[1] != "bob" {
		t.Errorf("strs = %v", got)
	}
}

func TestParseSelective(t *testing.T) {
	c, m := tokenized(t, "1,2.5,alice\n2,3.5,bob\n", 3)
	p := &Parser{Schema: testSchema}
	bc, err := p.Parse(c, m, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Has(0) || bc.Has(1) {
		t.Error("selective parse should not materialize unrequested columns")
	}
	if got := bc.Column(2).Strs[1]; got != "bob" {
		t.Errorf("col2[1] = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	p := &Parser{Schema: testSchema}
	// Invalid int.
	c, m := tokenized(t, "xx,1.0,a\n", 3)
	if _, err := p.Parse(c, m, []int{0}); err == nil {
		t.Error("invalid int should fail")
	}
	// Invalid float.
	c, m = tokenized(t, "1,notafloat,a\n", 3)
	if _, err := p.Parse(c, m, []int{1}); err == nil {
		t.Error("invalid float should fail")
	}
	// Column not tokenized.
	c, m = tokenized(t, "1,1.0,a\n", 1)
	if _, err := p.Parse(c, m, []int{2}); err == nil {
		t.Error("parsing beyond the positional map should fail")
	}
	// Column out of schema range.
	c, m = tokenized(t, "1,1.0,a\n", 3)
	if _, err := p.Parse(c, m, []int{7}); err == nil {
		t.Error("out-of-schema column should fail")
	}
	// Row-count mismatch between map and chunk.
	c, m = tokenized(t, "1,1.0,a\n", 3)
	c.Lines = 5
	if _, err := p.Parse(c, m, []int{0}); err == nil {
		t.Error("row-count mismatch should fail")
	}
}

func TestParseWhere(t *testing.T) {
	c, m := tokenized(t, "1,1.0,keep\n2,2.0,drop\n3,3.0,keep\n", 3)
	p := &Parser{Schema: testSchema}
	bc, keep, err := p.ParseWhere(c, m, []int{0, 2}, 2, func(f []byte) bool {
		return bytes.Equal(f, []byte("keep"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Rows != 2 || len(keep) != 2 || keep[0] != 0 || keep[1] != 2 {
		t.Fatalf("keep = %v, rows = %d", keep, bc.Rows)
	}
	if got := bc.Column(0).Ints; got[0] != 1 || got[1] != 3 {
		t.Errorf("filtered ints = %v", got)
	}
}

func TestParseWhereNoMatches(t *testing.T) {
	c, m := tokenized(t, "1,1.0,a\n2,2.0,b\n", 3)
	p := &Parser{Schema: testSchema}
	bc, keep, err := p.ParseWhere(c, m, []int{0}, 2, func([]byte) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if bc.Rows != 0 || len(keep) != 0 {
		t.Errorf("rows = %d, keep = %v", bc.Rows, keep)
	}
}

func TestParseWhereErrors(t *testing.T) {
	c, m := tokenized(t, "1,1.0,a\n", 1)
	p := &Parser{Schema: testSchema}
	if _, _, err := p.ParseWhere(c, m, []int{0}, 2, func([]byte) bool { return true }); err == nil {
		t.Error("predicate on untokenized column should fail")
	}
}

func TestParseIntCases(t *testing.T) {
	good := map[string]int64{
		"0":                    0,
		"1":                    1,
		"-1":                   -1,
		"+42":                  42,
		"9223372036854775807":  math.MaxInt64,
		"-9223372036854775808": math.MinInt64,
		"0012":                 12,
	}
	for in, want := range good {
		got, err := ParseInt([]byte(in))
		if err != nil {
			t.Errorf("ParseInt(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseInt(%q) = %d, want %d", in, got, want)
		}
	}
	bad := []string{"", "-", "+", "1x", " 1", "1 ", "12.5",
		"9223372036854775808", "-9223372036854775809", "99999999999999999999"}
	for _, in := range bad {
		if _, err := ParseInt([]byte(in)); err == nil {
			t.Errorf("ParseInt(%q) should fail", in)
		}
	}
}

// Property: ParseInt agrees with strconv.ParseInt on every int64.
func TestParseIntMatchesStrconv(t *testing.T) {
	f := func(x int64) bool {
		s := strconv.FormatInt(x, 10)
		got, err := ParseInt([]byte(s))
		return err == nil && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parse(tokenize(print(values))) == values for int tables.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		sch, _ := schema.Uniform(1, schema.Int64, "c")
		var b bytes.Buffer
		for _, v := range vals {
			fmt.Fprintf(&b, "%d\n", v)
		}
		c := &chunk.TextChunk{Data: b.Bytes(), Lines: len(vals)}
		tk := &tok.Tokenizer{Delim: ',', MinFields: 1}
		m, err := tk.Tokenize(c, 1)
		if err != nil {
			return false
		}
		p := &Parser{Schema: sch}
		bc, err := p.Parse(c, m, []int{0})
		if err != nil {
			return false
		}
		for i, v := range vals {
			if bc.Column(0).Ints[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParseFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"0", 0, true},
		{"3.25", 3.25, true},
		{"-12345.75", -12345.75, true},
		{"1e9", 1e9, true},
		{"", 0, false},
		{"abc", 0, false},
		{"1.2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFloat([]byte(c.in))
		if c.ok != (err == nil) {
			t.Errorf("ParseFloat(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseFloat(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// The error message must not alias the input bytes (strconv's *NumError
	// would): mutate the buffer after the call and check the message.
	buf := []byte("bogus")
	_, err := ParseFloat(buf)
	copy(buf, "XXXXX")
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error retains a view of mutated input: %v", err)
	}
}

// TestParseFloatZeroAlloc pins the acceptance criterion: the success path
// of float conversion performs zero allocations per cell.
func TestParseFloatZeroAlloc(t *testing.T) {
	in := []byte("12345.6789")
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseFloat(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ParseFloat allocates %v times per call, want 0", allocs)
	}
}

// TestParseFloatExactness sweeps the fast path's input space and asserts
// bit-identity with strconv.ParseFloat: the fused and two-stage conversion
// paths must produce the same float bits for every cell, so the fast path
// is allowed exactly zero rounding divergence. The sweep covers plain
// decimals across the mantissa-digit and fraction-digit ranges the fast
// path accepts, the boundaries where it must bail to strconv (>=19 digits,
// mant >= 2^53), signs, dots in every position, and grammar it must
// reject.
func TestParseFloatExactness(t *testing.T) {
	var inputs []string
	// Dot in every position of growing digit strings, both signs.
	digits := "9182736455463728191"
	for n := 1; n <= len(digits); n++ {
		d := digits[:n]
		inputs = append(inputs, d, "-"+d, "+"+d)
		for dot := 0; dot <= n; dot++ {
			v := d[:dot] + "." + d[dot:]
			inputs = append(inputs, v, "-"+v)
		}
	}
	// Mantissa exactness boundary: 2^53 +/- 1 and neighbours.
	for _, m := range []uint64{1<<53 - 2, 1<<53 - 1, 1 << 53, 1<<53 + 1} {
		s := strconv.FormatUint(m, 10)
		inputs = append(inputs, s, "-"+s, s[:10]+"."+s[10:])
	}
	// Long fractions: frac climbs past the exact pow10 table (22 entries).
	for frac := 18; frac <= 25; frac++ {
		inputs = append(inputs, "0."+strings.Repeat("0", frac-1)+"1")
	}
	// Round-trip shortest representations of awkward values.
	for _, f := range []float64{
		0.1, 0.2, 0.3, 1.0 / 3.0, math.Pi, 2.2250738585072014e-308,
		655.35, 0.062561, 8.98846567431158e+15,
	} {
		inputs = append(inputs, strconv.FormatFloat(f, 'f', -1, 64))
	}
	// Grammar edges: all must agree with strconv on accept/reject too.
	inputs = append(inputs,
		"", ".", "-", "+", "-.", ".5", "5.", "-0.0", "+0.0", "00.50",
		"1..2", "1.2.3", "--1", "1-", "1e5", "1E5", "inf", "nan", "0x1p4",
	)
	for _, in := range inputs {
		want, wantErr := strconv.ParseFloat(in, 64)
		got, gotErr := ParseFloat([]byte(in))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("ParseFloat(%q): err %v, strconv err %v", in, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseFloat(%q) = %x (%v), strconv = %x (%v)",
				in, math.Float64bits(got), got, math.Float64bits(want), want)
		}
	}
}
