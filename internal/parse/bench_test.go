package parse

import (
	"strconv"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/gen"
	"scanraw/internal/schema"
	"scanraw/internal/tok"
)

func benchChunk(b *testing.B, cols int) (*chunk.TextChunk, *chunk.PositionalMap, *Parser, []int) {
	b.Helper()
	spec := gen.CSVSpec{Rows: 2048, Cols: cols, Seed: 1}
	data := gen.Bytes(spec)
	tc := &chunk.TextChunk{Data: data, Lines: spec.Rows}
	tk := &tok.Tokenizer{Delim: ',', MinFields: cols}
	pm, err := tk.Tokenize(tc, cols)
	if err != nil {
		b.Fatal(err)
	}
	idx := make([]int, cols)
	for i := range idx {
		idx[i] = i
	}
	p := &Parser{Schema: spec.Schema()}
	// Prime the vector pool so short -benchtime runs measure the pooled
	// steady state (the operator's working regime) rather than cold-start
	// pool misses.
	warm, err := p.Parse(tc, pm, idx)
	if err != nil {
		b.Fatal(err)
	}
	warm.RecycleColumns()
	return tc, pm, p, idx
}

// BenchmarkParseChunk64 measures PARSE throughput on the paper's reference
// 64-column shape. The loop recycles each chunk's vectors the way the
// operator's cache eviction does, so the numbers reflect the pooled
// steady state (0-4 allocs/op, like tokenize) rather than pool drain.
func BenchmarkParseChunk64(b *testing.B) {
	tc, pm, p, idx := benchChunk(b, 64)
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := p.Parse(tc, pm, idx)
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}

// BenchmarkParseSelective4of64 measures selective parsing of 4 columns.
func BenchmarkParseSelective4of64(b *testing.B) {
	tc, pm, p, _ := benchChunk(b, 64)
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := p.Parse(tc, pm, []int{0, 1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}

// BenchmarkParseInt measures the hot atoi conversion.
func BenchmarkParseInt(b *testing.B) {
	inputs := [][]byte{
		[]byte("0"), []byte("42"), []byte("123456789"),
		[]byte("2147483647"), []byte("-987654321"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseInt(inputs[i%len(inputs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseFloat measures the hot atof conversion — zero allocations
// per cell is the contract (the bytes are viewed, not copied).
func BenchmarkParseFloat(b *testing.B) {
	inputs := [][]byte{
		[]byte("0"), []byte("3.25"), []byte("-12345.75"),
		[]byte("1e9"), []byte("2.718281828459045"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFloat(inputs[i%len(inputs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// floatChunk builds a single-column float chunk with its positional map.
func floatChunk(b *testing.B, rows int) (*chunk.TextChunk, *chunk.PositionalMap, *Parser) {
	b.Helper()
	var data []byte
	for r := 0; r < rows; r++ {
		data = strconv.AppendFloat(data, float64(r)+0.25, 'f', -1, 64)
		data = append(data, '\n')
	}
	sch, err := schema.New(schema.Column{Name: "f0", Type: schema.Float64})
	if err != nil {
		b.Fatal(err)
	}
	tc := &chunk.TextChunk{Data: data, Lines: rows}
	tk := &tok.Tokenizer{Delim: ',', MinFields: 1}
	pm, err := tk.Tokenize(tc, 1)
	if err != nil {
		b.Fatal(err)
	}
	return tc, pm, &Parser{Schema: sch}
}

// BenchmarkParseFloatColumn measures float-column conversion throughput;
// allocs/op must stay O(1) (the output vector), never O(rows).
func BenchmarkParseFloatColumn(b *testing.B) {
	tc, pm, p := floatChunk(b, 4096)
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := p.Parse(tc, pm, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}
