// Package parse implements the PARSE and MAP stages of raw-file query
// processing (paper §2): attributes located by TOKENIZE are converted from
// text into the binary representation of their type and organized into the
// columnar processing representation (MAP is folded into PARSE exactly as
// in the SCANRAW architecture, §3.1).
//
// Implemented optimizations:
//
//   - Selective parsing: only the columns required by the current query are
//     converted.
//   - Push-down selection: predicate columns can be parsed first and the
//     remaining columns converted only for qualifying tuples (the paper
//     studies this and concludes the bookkeeping usually outweighs the win;
//     it is provided for the ablation benchmarks and is never combined with
//     loading).
package parse

import (
	"fmt"
	"strconv"
	"unsafe"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// Parser converts tokenized text chunks into binary chunks for one schema.
type Parser struct {
	// Schema describes the tuple layout of the raw file.
	Schema *schema.Schema
}

// Parse converts the listed schema ordinals of chunk c into a binary chunk,
// using positional map m. Every requested ordinal must be covered by the
// map (m.NumCols > max(cols)); use the tokenizer's Extend first otherwise.
func (p *Parser) Parse(c *chunk.TextChunk, m *chunk.PositionalMap, cols []int) (*chunk.BinaryChunk, error) {
	if m.NumRows != c.Lines {
		return nil, fmt.Errorf("parse: map covers %d rows, chunk has %d lines", m.NumRows, c.Lines)
	}
	bc := chunk.NewBinary(p.Schema, c.ID, c.Lines)
	for _, col := range cols {
		v, err := p.parseColumn(c, m, col, nil)
		if err != nil {
			bc.RecycleColumns()
			return nil, err
		}
		if err := bc.SetColumn(col, v); err != nil {
			chunk.PutVector(v)
			bc.RecycleColumns()
			return nil, err
		}
	}
	return bc, nil
}

// RowPredicate decides whether a tuple qualifies based on the raw bytes of
// one attribute.
type RowPredicate func(field []byte) bool

// ParseWhere implements push-down selection: it parses predCol for every
// tuple, evaluates pred on the raw bytes, and converts the remaining
// requested columns only for qualifying tuples. The resulting chunk holds
// just the qualifying rows; it must not be loaded into the database (it no
// longer represents the full chunk).
func (p *Parser) ParseWhere(c *chunk.TextChunk, m *chunk.PositionalMap, cols []int, predCol int, pred RowPredicate) (*chunk.BinaryChunk, []int, error) {
	if m.NumRows != c.Lines {
		return nil, nil, fmt.Errorf("parse: map covers %d rows, chunk has %d lines", m.NumRows, c.Lines)
	}
	if predCol >= m.NumCols {
		return nil, nil, fmt.Errorf("parse: predicate column %d not tokenized (map has %d)", predCol, m.NumCols)
	}
	keep := make([]int, 0, c.Lines)
	for r := 0; r < c.Lines; r++ {
		s, e := m.Field(r, predCol)
		if pred(c.Data[s:e]) {
			keep = append(keep, r)
		}
	}
	bc := chunk.NewBinary(p.Schema, c.ID, len(keep))
	for _, col := range cols {
		v, err := p.parseColumn(c, m, col, keep)
		if err != nil {
			bc.RecycleColumns()
			return nil, nil, err
		}
		if err := bc.SetColumn(col, v); err != nil {
			chunk.PutVector(v)
			bc.RecycleColumns()
			return nil, nil, err
		}
	}
	return bc, keep, nil
}

// parseColumn converts one column. When rows is nil all rows convert;
// otherwise only the listed row ordinals do (push-down selection).
func (p *Parser) parseColumn(c *chunk.TextChunk, m *chunk.PositionalMap, col int, rows []int) (*chunk.Vector, error) {
	if col < 0 || col >= p.Schema.NumColumns() {
		return nil, fmt.Errorf("parse: column %d out of schema range [0,%d)", col, p.Schema.NumColumns())
	}
	if col >= m.NumCols {
		return nil, fmt.Errorf("parse: column %d not tokenized (map covers %d)", col, m.NumCols)
	}
	n := m.NumRows
	if rows != nil {
		n = len(rows)
	}
	t := p.Schema.Column(col).Type
	// Column vectors come from the shared pool: storage released by the
	// engine after evaluation cycles back into conversion. (The vectors
	// produced here are installed into cacheable binary chunks and are
	// never returned — the pool refills from the engine's releases.)
	v := chunk.GetVector(t, n)
	// The per-cell loops stride the flattened offset arrays directly —
	// Field's per-cell bounds check and multiply are hoisted out of the
	// hottest loop of the whole pipeline. The dense case (rows == nil)
	// strength-reduces the index to an addition; push-down selection pays
	// one multiply per listed row.
	starts, ends, nc := m.Starts, m.Ends, m.NumCols
	switch t {
	case schema.Int64:
		if rows == nil {
			for i, idx := 0, col; i < n; i, idx = i+1, idx+nc {
				x, err := ParseInt(c.Data[starts[idx]:ends[idx]])
				if err != nil {
					chunk.PutVector(v)
					return nil, fmt.Errorf("parse: chunk %d row %d col %d: %w", c.ID, i, col, err)
				}
				v.Ints[i] = x
			}
			break
		}
		for i, r := range rows {
			idx := r*nc + col
			x, err := ParseInt(c.Data[starts[idx]:ends[idx]])
			if err != nil {
				chunk.PutVector(v)
				return nil, fmt.Errorf("parse: chunk %d row %d col %d: %w", c.ID, r, col, err)
			}
			v.Ints[i] = x
		}
	case schema.Float64:
		if rows == nil {
			for i, idx := 0, col; i < n; i, idx = i+1, idx+nc {
				x, err := ParseFloat(c.Data[starts[idx]:ends[idx]])
				if err != nil {
					chunk.PutVector(v)
					return nil, fmt.Errorf("parse: chunk %d row %d col %d: %w", c.ID, i, col, err)
				}
				v.Floats[i] = x
			}
			break
		}
		for i, r := range rows {
			idx := r*nc + col
			x, err := ParseFloat(c.Data[starts[idx]:ends[idx]])
			if err != nil {
				chunk.PutVector(v)
				return nil, fmt.Errorf("parse: chunk %d row %d col %d: %w", c.ID, r, col, err)
			}
			v.Floats[i] = x
		}
	case schema.Str:
		// One backing array for the whole column instead of one allocation
		// per cell: size it exactly, copy every field into it, and carve
		// the string headers out of it. The buffer is never mutated after
		// this loop (capacity is exact, so append never reallocates), which
		// makes the no-copy headers safe; it stays alive as long as any of
		// the column's strings do.
		total := 0
		if rows == nil {
			for i, idx := 0, col; i < n; i, idx = i+1, idx+nc {
				total += int(ends[idx] - starts[idx])
			}
		} else {
			for _, r := range rows {
				idx := r*nc + col
				total += int(ends[idx] - starts[idx])
			}
		}
		buf := make([]byte, 0, total)
		for i := 0; i < n; i++ {
			idx := i*nc + col
			if rows != nil {
				idx = rows[i]*nc + col
			}
			s, e := starts[idx], ends[idx]
			if e == s {
				v.Strs[i] = ""
			} else {
				off := len(buf)
				buf = append(buf, c.Data[s:e]...)
				v.Strs[i] = unsafe.String(&buf[off], int(e-s))
			}
		}
	}
	return v, nil
}

// pow10 holds the powers of ten that are exactly representable as float64
// (10^0 .. 10^22). Dividing an exact integer mantissa by an exact power of
// ten is a single correctly-rounded IEEE operation, so the quotient is the
// nearest float64 to the decimal value — the same answer strconv computes.
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// ParseFloat converts ASCII bytes into a float64 without allocating on the
// success path. Plain decimal forms — an optional sign, digits, at most one
// dot — take a manual fast path (the overwhelmingly common case in raw
// files; strconv's full grammar costs ~10x more); everything else
// (exponents, hex floats, inf/nan, long mantissas) falls back to
// strconv.ParseFloat. strconv wants a string, so the bytes are viewed
// through a no-copy string header; the view must never escape — errors are
// rewritten with a fresh copy of the bytes (strconv's *NumError would
// otherwise retain the view past the chunk buffer's lifetime).
func ParseFloat(b []byte) (float64, error) {
	if x, ok := parseFloatFast(b); ok {
		return x, nil
	}
	x, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(b), len(b)), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid float %q", b)
	}
	return x, nil
}

// parseFloatFast handles sign+digits+one-dot decimals whose value is
// exactly mant/10^frac with mant < 2^53 (an integer float64 represents
// exactly) and frac <= 22 (a power of ten float64 represents exactly). Any
// other input — including >=19 digits, where mant could overflow or lose
// exactness — reports !ok and defers to strconv. The exactness sweep in
// parse_test.go asserts bit-identity with strconv over round-trip values.
func parseFloatFast(b []byte) (float64, bool) {
	i := 0
	neg := false
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	var mant uint64
	digits := 0
	frac := 0
	sawDot := false
	sawDigit := false
	for ; i < len(b); i++ {
		c := b[i]
		if d := c - '0'; d <= 9 {
			if digits >= 19 {
				return 0, false
			}
			mant = mant*10 + uint64(d)
			digits++
			sawDigit = true
			if sawDot {
				frac++
			}
			continue
		}
		if c == '.' && !sawDot {
			sawDot = true
			continue
		}
		return 0, false
	}
	if !sawDigit || mant >= 1<<53 {
		return 0, false
	}
	// digits <= 19 bounds frac below len(pow10); both operands are exact.
	x := float64(mant) / pow10[frac]
	if neg {
		x = -x
	}
	return x, true
}

// ParseInt converts decimal ASCII bytes (optional leading '-' or '+') into
// an int64 without allocating. It is the hot conversion function of the
// PARSE stage — the paper's "atoi".
func ParseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty integer field")
	}
	neg := false
	i := 0
	switch b[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(b) {
		return 0, fmt.Errorf("invalid integer %q", b)
	}
	const cutoff = (1<<63 - 1) / 10
	var x int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, fmt.Errorf("invalid integer %q", b)
		}
		if x > cutoff {
			return 0, fmt.Errorf("integer overflow in %q", b)
		}
		x = x*10 + int64(d)
		if x < 0 {
			// Overflowed past MaxInt64; MinInt64 is representable only
			// when negative and exactly -2^63.
			if neg && x == -1<<63 && i == len(b)-1 {
				return x, nil
			}
			return 0, fmt.Errorf("integer overflow in %q", b)
		}
	}
	if neg {
		x = -x
	}
	return x, nil
}
