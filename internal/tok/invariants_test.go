//go:build invariants

package tok

import (
	"testing"

	"scanraw/internal/chunk"
)

// Regression: Tokenize used to drop the pooled positional map on its error
// returns (short chunk, short row). Under the invariants build the pool
// gauge makes the leak observable.
func TestTokenizeErrorReleasesMap(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	cases := map[string]*chunk.TextChunk{
		"data ends early": {ID: 1, Data: []byte("1,2,3\n"), Lines: 2},
		"short row":       {ID: 2, Data: []byte("1,2,3\n4,5\n"), Lines: 2},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			base := chunk.OutstandingMaps()
			if _, err := tk.Tokenize(c, 3); err == nil {
				t.Fatal("malformed chunk tokenized without error")
			}
			if got := chunk.OutstandingMaps(); got != base {
				t.Errorf("positional maps leaked: outstanding %d, want %d", got, base)
			}
		})
	}
}
