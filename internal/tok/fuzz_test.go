package tok

import (
	"testing"

	"scanraw/internal/chunk"
)

// FuzzTokenize feeds arbitrary bytes through SplitChunks + Tokenize. The
// invariants: no panics, every reported field window lies inside the
// chunk, and field windows are non-overlapping and ordered.
func FuzzTokenize(f *testing.F) {
	f.Add([]byte("a,b,c\nd,e,f\n"), 3)
	f.Add([]byte(",,\n"), 3)
	f.Add([]byte("1,2\r\n3,4\r\n"), 2)
	f.Add([]byte("no newline at end"), 1)
	f.Add([]byte("\n\n\n"), 1)
	f.Add([]byte{0, ',', 0, '\n'}, 2)
	f.Fuzz(func(t *testing.T, data []byte, nf int) {
		nf = nf%8 + 1
		chunks, err := SplitChunks(data, 4)
		if err != nil {
			t.Fatalf("SplitChunks: %v", err)
		}
		tk := &Tokenizer{Delim: ',', MinFields: nf}
		for _, c := range chunks {
			m, err := tk.Tokenize(c, nf)
			if err != nil {
				continue // malformed rows are expected for random input
			}
			if m.NumRows != c.Lines || m.NumCols != nf {
				t.Fatalf("map dims %dx%d for chunk %d lines, %d fields",
					m.NumRows, m.NumCols, c.Lines, nf)
			}
			for r := 0; r < m.NumRows; r++ {
				var prevEnd int32
				for col := 0; col < nf; col++ {
					s, e := m.Field(r, col)
					if s < 0 || e < s || int(e) > len(c.Data) {
						t.Fatalf("field (%d,%d) window [%d,%d) outside chunk of %d bytes",
							r, col, s, e, len(c.Data))
					}
					if col > 0 && s < prevEnd {
						t.Fatalf("field (%d,%d) starts before previous field ends", r, col)
					}
					prevEnd = e
				}
			}
		}
	})
}

// FuzzExtend checks that extending a partial map always agrees with
// tokenizing from scratch.
func FuzzExtend(f *testing.F) {
	f.Add([]byte("a,b,c,d\ne,f,g,h\n"), 1)
	f.Add([]byte("1,2,3,4"), 2)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		const nf = 4
		k = k%3 + 1 // 1..3, always < nf
		c := &chunk.TextChunk{Data: data, Lines: CountLines(data)}
		tk := &Tokenizer{Delim: ',', MinFields: nf}
		m, err := tk.Tokenize(c, k)
		if err != nil {
			return
		}
		full, fullErr := tk.Tokenize(c, nf)
		extErr := tk.Extend(c, m, nf)
		if (fullErr == nil) != (extErr == nil) {
			t.Fatalf("scratch err=%v vs extend err=%v", fullErr, extErr)
		}
		if fullErr != nil {
			return
		}
		for r := 0; r < m.NumRows; r++ {
			for col := 0; col < nf; col++ {
				s1, e1 := m.Field(r, col)
				s2, e2 := full.Field(r, col)
				if s1 != s2 || e1 != e2 {
					t.Fatalf("field (%d,%d): extend [%d,%d) vs scratch [%d,%d)", r, col, s1, e1, s2, e2)
				}
			}
		}
	})
}
