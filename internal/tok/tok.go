// Package tok implements the TOKENIZE stage of raw-file query processing
// (paper §2): given a text chunk whose lines are delimiter-separated tuples,
// it identifies the starting (and ending) position of every attribute and
// records them in a positional map.
//
// Two of the paper's optimizations are implemented:
//
//   - Selective tokenizing: the linear scan over a line stops as soon as the
//     last attribute required by the query has been delimited, so queries
//     touching a column prefix never pay for the full line.
//   - Partial-map extension: a cached positional map covering only the first
//     k attributes can be extended in place for a later query needing more,
//     resuming the scan from the last recorded position instead of
//     re-tokenizing from the start of each line.
package tok

import (
	"bytes"
	"fmt"

	"scanraw/internal/chunk"
)

// Tokenizer tokenizes text chunks with a fixed field delimiter.
type Tokenizer struct {
	// Delim separates attributes within a line (',' for CSV, '\t' for
	// tab-delimited files such as SAM).
	Delim byte
	// MinFields is the number of attributes every tuple must contain.
	// Lines may carry more (e.g. SAM optional fields); they may not carry
	// fewer. Tokenize requests beyond MinFields are rejected.
	MinFields int
}

// CountLines returns the number of newline-terminated lines in data,
// counting a trailing fragment without '\n' as a line.
func CountLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

// Tokenize scans chunk c and produces a positional map covering the first
// upTo attributes of every line. upTo must be in [1, MinFields]. The scan
// over each line stops as soon as attribute upTo-1 is delimited (selective
// tokenizing); LineEnd still records the true end of each line so the map
// can be extended later.
func (t *Tokenizer) Tokenize(c *chunk.TextChunk, upTo int) (*chunk.PositionalMap, error) {
	if upTo < 1 || upTo > t.MinFields {
		return nil, fmt.Errorf("tok: upTo %d outside [1,%d]", upTo, t.MinFields)
	}
	rows := c.Lines
	m := chunk.GetPositionalMap(rows, upTo)
	m.NumRows = rows
	m.NumCols = upTo
	data := c.Data
	pos := 0
	for r := 0; r < rows; r++ {
		if pos >= len(data) {
			chunk.PutPositionalMap(m)
			return nil, fmt.Errorf("tok: chunk %d claims %d lines but data ends at line %d", c.ID, rows, r)
		}
		lineEnd := pos + lineLength(data[pos:])
		// Tolerate CRLF line endings: the carriage return is not part of
		// the last field.
		if lineEnd > pos && data[lineEnd-1] == '\r' {
			lineEnd--
		}
		fieldStart := pos
		found := 0
		for i := pos; found < upTo; i++ {
			if i >= lineEnd {
				// End of line terminates the current field.
				m.Starts = append(m.Starts, int32(fieldStart))
				m.Ends = append(m.Ends, int32(lineEnd))
				found++
				if found < upTo {
					chunk.PutPositionalMap(m)
					return nil, fmt.Errorf("tok: chunk %d row %d has %d fields, need %d", c.ID, r, found, upTo)
				}
				break
			}
			if data[i] == t.Delim {
				m.Starts = append(m.Starts, int32(fieldStart))
				m.Ends = append(m.Ends, int32(i))
				found++
				fieldStart = i + 1
			}
		}
		m.LineEnd = append(m.LineEnd, int32(lineEnd))
		pos = lineEnd
		if pos < len(data) && data[pos] == '\r' {
			pos++
		}
		if pos < len(data) && data[pos] == '\n' {
			pos++
		}
	}
	return m, nil
}

// lineLength returns the number of bytes before the next '\n' (or to the
// end of data when no newline remains).
func lineLength(data []byte) int {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return i
	}
	return len(data)
}

// Extend grows an existing positional map in place so that it covers the
// first upTo attributes per line, scanning forward from the last position
// recorded for each row. The map must have been produced by Tokenize on the
// same chunk. On success m.NumCols == upTo.
func (t *Tokenizer) Extend(c *chunk.TextChunk, m *chunk.PositionalMap, upTo int) error {
	if upTo <= m.NumCols {
		return nil // already covered
	}
	if upTo > t.MinFields {
		return fmt.Errorf("tok: upTo %d outside [1,%d]", upTo, t.MinFields)
	}
	old := m.NumCols
	data := c.Data
	delim := t.Delim
	starts := make([]int32, 0, m.NumRows*upTo)
	ends := make([]int32, 0, m.NumRows*upTo)
	for r := 0; r < m.NumRows; r++ {
		starts = append(starts, m.Starts[r*old:(r+1)*old]...)
		ends = append(ends, m.Ends[r*old:(r+1)*old]...)
		lineEnd := int(m.LineEnd[r])
		// The next field starts one past the delimiter that ended the last
		// tokenized field — unless that field already reached line end.
		fieldStart := int(m.Ends[r*old+old-1]) + 1
		found := old
		if fieldStart > lineEnd {
			return fmt.Errorf("tok: chunk %d row %d has %d fields, need %d", c.ID, r, found, upTo)
		}
		for i := fieldStart; found < upTo; i++ {
			if i >= lineEnd {
				starts = append(starts, int32(fieldStart))
				ends = append(ends, int32(lineEnd))
				found++
				if found < upTo {
					return fmt.Errorf("tok: chunk %d row %d has %d fields, need %d", c.ID, r, found, upTo)
				}
				break
			}
			if data[i] == delim {
				starts = append(starts, int32(fieldStart))
				ends = append(ends, int32(i))
				found++
				fieldStart = i + 1
			}
		}
	}
	m.NumCols = upTo
	m.Starts = starts
	m.Ends = ends
	return nil
}

// SplitChunks partitions raw file bytes into text chunks of at most
// linesPerChunk lines each, assigning consecutive IDs starting at 0. The
// returned chunks alias data (no copying). It is the reference splitter
// used by generators and tests; the pipeline reader performs the same split
// incrementally.
func SplitChunks(data []byte, linesPerChunk int) ([]*chunk.TextChunk, error) {
	if linesPerChunk <= 0 {
		return nil, fmt.Errorf("tok: linesPerChunk must be positive, got %d", linesPerChunk)
	}
	var out []*chunk.TextChunk
	id := 0
	for len(data) > 0 {
		lines := 0
		pos := 0
		for lines < linesPerChunk && pos < len(data) {
			n := lineLength(data[pos:])
			pos += n
			if pos < len(data) && data[pos] == '\n' {
				pos++
			}
			lines++
		}
		out = append(out, &chunk.TextChunk{ID: id, Data: data[:pos], Lines: lines})
		data = data[pos:]
		id++
	}
	return out, nil
}
