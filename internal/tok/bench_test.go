package tok

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/gen"
)

func benchData(b *testing.B, cols int) *chunk.TextChunk {
	b.Helper()
	spec := gen.CSVSpec{Rows: 2048, Cols: cols, Seed: 1}
	data := gen.Bytes(spec)
	return &chunk.TextChunk{Data: data, Lines: spec.Rows}
}

// BenchmarkTokenizeChunk64 measures full tokenizing throughput on the
// reference 64-column shape.
func BenchmarkTokenizeChunk64(b *testing.B) {
	tc := benchData(b, 64)
	tk := &Tokenizer{Delim: ',', MinFields: 64}
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tk.Tokenize(tc, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenizeSelective4of64 measures the selective-tokenizing win:
// the scan stops at the fourth attribute.
func BenchmarkTokenizeSelective4of64(b *testing.B) {
	tc := benchData(b, 64)
	tk := &Tokenizer{Delim: ',', MinFields: 64}
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tk.Tokenize(tc, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtend4to64 measures extending a partial positional map against
// re-tokenizing from scratch (BenchmarkTokenizeChunk64 is the baseline).
func BenchmarkExtend4to64(b *testing.B) {
	tc := benchData(b, 64)
	tk := &Tokenizer{Delim: ',', MinFields: 64}
	base, err := tk.Tokenize(tc, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &chunk.PositionalMap{
			NumRows: base.NumRows, NumCols: base.NumCols,
			Starts:  append([]int32(nil), base.Starts...),
			Ends:    append([]int32(nil), base.Ends...),
			LineEnd: base.LineEnd,
		}
		if err := tk.Extend(tc, m, 64); err != nil {
			b.Fatal(err)
		}
	}
}
