package tok

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scanraw/internal/chunk"
)

func mkChunk(text string) *chunk.TextChunk {
	return &chunk.TextChunk{ID: 0, Data: []byte(text), Lines: CountLines([]byte(text))}
}

func fieldText(c *chunk.TextChunk, m *chunk.PositionalMap, r, col int) string {
	s, e := m.Field(r, col)
	return string(c.Data[s:e])
}

func TestCountLines(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a\n", 1},
		{"a\nb", 2},
		{"a\nb\n", 2},
		{"\n\n", 2},
	}
	for _, c := range cases {
		if got := CountLines([]byte(c.in)); got != c.want {
			t.Errorf("CountLines(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTokenizeBasic(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	c := mkChunk("1,22,333\n4444,5,66\n")
	m, err := tk.Tokenize(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 2 || m.NumCols != 3 {
		t.Fatalf("map dims = %dx%d", m.NumRows, m.NumCols)
	}
	want := [][]string{{"1", "22", "333"}, {"4444", "5", "66"}}
	for r := range want {
		for col := range want[r] {
			if got := fieldText(c, m, r, col); got != want[r][col] {
				t.Errorf("field(%d,%d) = %q, want %q", r, col, got, want[r][col])
			}
		}
	}
}

func TestTokenizeNoTrailingNewline(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 2}
	c := mkChunk("1,2\n3,4")
	m, err := tk.Tokenize(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fieldText(c, m, 1, 1); got != "4" {
		t.Errorf("last field = %q, want 4", got)
	}
}

func TestTokenizeSelectiveStopsEarly(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 4}
	c := mkChunk("a,b,c,d\ne,f,g,h\n")
	m, err := tk.Tokenize(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCols != 2 {
		t.Fatalf("NumCols = %d", m.NumCols)
	}
	if got := fieldText(c, m, 0, 1); got != "b" {
		t.Errorf("field(0,1) = %q", got)
	}
	// LineEnd must still reach the true end of each line.
	if m.LineEnd[0] != 7 {
		t.Errorf("LineEnd[0] = %d, want 7", m.LineEnd[0])
	}
}

func TestTokenizeEmptyFields(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	c := mkChunk(",,\n,x,\n")
	m, err := tk.Tokenize(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := fieldText(c, m, 0, 0); got != "" {
		t.Errorf("empty field = %q", got)
	}
	if got := fieldText(c, m, 1, 1); got != "x" {
		t.Errorf("field(1,1) = %q", got)
	}
}

func TestTokenizeExtraFieldsTolerated(t *testing.T) {
	// SAM-style: lines may carry more fields than the mandatory schema.
	tk := &Tokenizer{Delim: '\t', MinFields: 3}
	c := mkChunk("a\tb\tc\textra1\textra2\n")
	m, err := tk.Tokenize(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := fieldText(c, m, 0, 2); got != "c" {
		t.Errorf("field(0,2) = %q, want c (must stop at requested field)", got)
	}
}

func TestTokenizeCRLF(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 2}
	c := mkChunk("1,2\r\n3,4\r\n")
	m, err := tk.Tokenize(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fieldText(c, m, 0, 1); got != "2" {
		t.Errorf("CRLF last field = %q, want 2 (no \\r)", got)
	}
	if got := fieldText(c, m, 1, 0); got != "3" {
		t.Errorf("second row first field = %q", got)
	}
	// Mixed endings.
	c2 := mkChunk("a,b\nc,d\r\n")
	m2, err := tk.Tokenize(c2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fieldText(c2, m2, 1, 1); got != "d" {
		t.Errorf("mixed-ending field = %q", got)
	}
}

func TestTokenizeMalformed(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	c := mkChunk("1,2,3\n4,5\n")
	if _, err := tk.Tokenize(c, 3); err == nil {
		t.Error("row with too few fields should fail")
	}
	// Chunk claiming more lines than exist.
	c2 := &chunk.TextChunk{Data: []byte("1,2,3\n"), Lines: 2}
	if _, err := tk.Tokenize(c2, 3); err == nil {
		t.Error("line-count mismatch should fail")
	}
}

func TestTokenizeUpToValidation(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	c := mkChunk("1,2,3\n")
	if _, err := tk.Tokenize(c, 0); err == nil {
		t.Error("upTo=0 should fail")
	}
	if _, err := tk.Tokenize(c, 4); err == nil {
		t.Error("upTo beyond MinFields should fail")
	}
}

func TestExtend(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 4}
	c := mkChunk("a,bb,ccc,dddd\ne,ff,ggg,hhhh\n")
	m, err := tk.Tokenize(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Extend(c, m, 4); err != nil {
		t.Fatal(err)
	}
	if m.NumCols != 4 {
		t.Fatalf("NumCols after Extend = %d", m.NumCols)
	}
	// Full map must agree with tokenizing from scratch.
	full, err := tk.Tokenize(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for col := 0; col < 4; col++ {
			if fieldText(c, m, r, col) != fieldText(c, full, r, col) {
				t.Errorf("extended field(%d,%d) = %q, scratch = %q",
					r, col, fieldText(c, m, r, col), fieldText(c, full, r, col))
			}
		}
	}
}

func TestExtendNoOpAndErrors(t *testing.T) {
	tk := &Tokenizer{Delim: ',', MinFields: 3}
	c := mkChunk("1,2,3\n")
	m, err := tk.Tokenize(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Extend(c, m, 2); err != nil {
		t.Errorf("shrinking Extend should be a no-op: %v", err)
	}
	if err := tk.Extend(c, m, 5); err == nil {
		t.Error("Extend beyond MinFields should fail")
	}
	// Extending when the row has no more fields.
	m2, err := tk.Tokenize(mkChunk("1,2,3\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = m2
	short := mkChunk("1,2\n")
	tkShort := &Tokenizer{Delim: ',', MinFields: 3}
	mShort, err := (&Tokenizer{Delim: ',', MinFields: 2}).Tokenize(short, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tkShort.Extend(short, mShort, 3); err == nil {
		t.Error("Extend past available fields should fail")
	}
}

func TestSplitChunks(t *testing.T) {
	data := []byte("1\n2\n3\n4\n5\n")
	chunks, err := SplitChunks(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if chunks[0].Lines != 2 || chunks[2].Lines != 1 {
		t.Errorf("line counts: %d,%d,%d", chunks[0].Lines, chunks[1].Lines, chunks[2].Lines)
	}
	var rejoined []byte
	for i, c := range chunks {
		if c.ID != i {
			t.Errorf("chunk %d has ID %d", i, c.ID)
		}
		rejoined = append(rejoined, c.Data...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Errorf("chunks do not rejoin to original: %q", rejoined)
	}
	if _, err := SplitChunks(data, 0); err == nil {
		t.Error("linesPerChunk=0 should fail")
	}
}

func TestSplitChunksEmpty(t *testing.T) {
	chunks, err := SplitChunks(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Errorf("empty data should produce 0 chunks, got %d", len(chunks))
	}
}

// Property: tokenizing a generated CSV recovers exactly the original
// fields, for arbitrary field contents (no delimiter/newline inside).
func TestTokenizeRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		s = strings.ReplaceAll(s, ",", ";")
		s = strings.ReplaceAll(s, "\n", " ")
		return s
	}
	f := func(seed int64, rows, cols uint8) bool {
		nr := int(rows%20) + 1
		nc := int(cols%8) + 1
		rng := rand.New(rand.NewSource(seed))
		want := make([][]string, nr)
		var b strings.Builder
		for r := 0; r < nr; r++ {
			want[r] = make([]string, nc)
			for c := 0; c < nc; c++ {
				want[r][c] = sanitize(fmt.Sprintf("v%d", rng.Intn(1000)))
				if c > 0 {
					b.WriteByte(',')
				}
				b.WriteString(want[r][c])
			}
			b.WriteByte('\n')
		}
		ch := mkChunk(b.String())
		tk := &Tokenizer{Delim: ',', MinFields: nc}
		m, err := tk.Tokenize(ch, nc)
		if err != nil {
			return false
		}
		for r := 0; r < nr; r++ {
			for c := 0; c < nc; c++ {
				if fieldText(ch, m, r, c) != want[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Extend(k1 -> k2) equals Tokenize(k2) for all k1 <= k2.
func TestExtendEquivalenceProperty(t *testing.T) {
	f := func(seed int64, k1, k2 uint8) bool {
		nc := 6
		a := int(k1%uint8(nc)) + 1
		b := int(k2%uint8(nc)) + 1
		if a > b {
			a, b = b, a
		}
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		rows := rng.Intn(10) + 1
		for r := 0; r < rows; r++ {
			for c := 0; c < nc; c++ {
				if c > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", rng.Intn(100000))
			}
			sb.WriteByte('\n')
		}
		ch := mkChunk(sb.String())
		tk := &Tokenizer{Delim: ',', MinFields: nc}
		m, err := tk.Tokenize(ch, a)
		if err != nil {
			return false
		}
		if err := tk.Extend(ch, m, b); err != nil {
			return false
		}
		full, err := tk.Tokenize(ch, b)
		if err != nil {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < b; c++ {
				s1, e1 := m.Field(r, c)
				s2, e2 := full.Field(r, c)
				if s1 != s2 || e1 != e2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SplitChunks always rejoins to the original bytes and line
// counts sum to CountLines.
func TestSplitChunksProperty(t *testing.T) {
	f := func(lines []uint16, per uint8) bool {
		p := int(per%7) + 1
		var data []byte
		for _, l := range lines {
			data = append(data, []byte(fmt.Sprintf("%d\n", l))...)
		}
		chunks, err := SplitChunks(data, p)
		if err != nil {
			return false
		}
		var rejoined []byte
		total := 0
		for _, c := range chunks {
			rejoined = append(rejoined, c.Data...)
			total += c.Lines
			if c.Lines > p {
				return false
			}
		}
		return bytes.Equal(rejoined, data) && total == CountLines(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
