// Package testutil holds shared test-only helpers. Its centerpiece is a
// goroutine-leak checker built on runtime.Stack snapshots: concurrency
// suites run under a TestMain that fails the package when goroutines
// started by tests are still alive after every test has finished. A leaked
// pipeline goroutine is invisible to assertions and to the race detector —
// it just keeps a worker, a buffer slot, or a cache pin alive forever.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// benignMarkers identify goroutines the runtime and the testing framework
// own; they are never counted as leaks.
var benignMarkers = []string{
	"testing.(*M).",
	"testing.Main(",
	"testing.tRunner(",
	"testing.runTests(",
	"runtime.goexit",
	"runtime.ReadTrace",
	"runtime/pprof.",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
}

// Main wraps testing.M.Run with a leak check: it snapshots the goroutines
// alive before the tests, runs them, and fails the package if goroutines
// created during the run outlive it. Shutdown is asynchronous everywhere in
// the pipeline (workers drain after done closes), so stragglers get a grace
// period to exit before they are declared leaked.
//
// Use from a package's TestMain:
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
func Main(m *testing.M) {
	before := Snapshot()
	code := m.Run()
	if leaked := LeakedSince(before, 5*time.Second); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "testutil: %d leaked goroutine(s) after tests:\n\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Snapshot returns the set of currently-live goroutine IDs, for a later
// LeakedSince comparison.
func Snapshot() map[string]bool {
	ids := map[string]bool{}
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return ids
}

// LeakedSince reports the stacks of goroutines that did not exist at the
// snapshot, are not runtime/testing infrastructure, and are still alive
// after polling for at most grace. The result is empty when everything
// wound down.
func LeakedSince(before map[string]bool, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := leakedNow(before)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func leakedNow(before map[string]bool) []string {
	var leaked []string
	for _, g := range stacks() {
		if before[g.id] || benign(g.stack) {
			continue
		}
		leaked = append(leaked, g.stack)
	}
	sort.Strings(leaked)
	return leaked
}

func benign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	// The checker's own goroutine shows as running in this package.
	return strings.Contains(stack, "internal/testutil.stacks")
}

type goroutine struct {
	id    string
	stack string
}

// stacks parses runtime.Stack(all=true) into one record per goroutine. The
// header line has the shape "goroutine 42 [chan receive]:".
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		stanza = strings.TrimSpace(stanza)
		if !strings.HasPrefix(stanza, "goroutine ") {
			continue
		}
		fields := strings.Fields(stanza)
		if len(fields) < 2 {
			continue
		}
		gs = append(gs, goroutine{id: fields[1], stack: stanza})
	}
	return gs
}
