package testutil

import (
	"testing"
	"time"
)

func TestLeakedSinceDetectsBlockedGoroutine(t *testing.T) {
	before := Snapshot()
	ch := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()

	leaked := LeakedSince(before, 50*time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("blocked goroutine not reported as leaked")
	}

	close(ch)
	<-done
	if l := LeakedSince(before, 2*time.Second); len(l) != 0 {
		t.Fatalf("goroutine reported leaked after it exited:\n%s", l[0])
	}
}

func TestSnapshotIgnoresTestingInfrastructure(t *testing.T) {
	if leaked := LeakedSince(Snapshot(), 0); len(leaked) != 0 {
		t.Fatalf("quiescent process reports leaks:\n%s", leaked[0])
	}
}
