package dbstore

import (
	"fmt"
	"math"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

func TestHLLExactSmall(t *testing.T) {
	var h HLL
	for i := 0; i < 10; i++ {
		h.AddUint(uint64(i))
	}
	est := h.Estimate()
	if est < 8 || est > 12 {
		t.Errorf("estimate for 10 distinct = %d", est)
	}
}

func TestHLLDuplicatesDoNotCount(t *testing.T) {
	var h HLL
	for i := 0; i < 10000; i++ {
		h.AddUint(uint64(i % 7))
	}
	est := h.Estimate()
	if est < 5 || est > 9 {
		t.Errorf("estimate for 7 distinct over 10000 adds = %d", est)
	}
}

func TestHLLAccuracyLarge(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000} {
		var h HLL
		for i := 0; i < n; i++ {
			h.AddUint(uint64(i) * 2654435761)
		}
		est := float64(h.Estimate())
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 0.25 {
			t.Errorf("n=%d: estimate %v off by %.1f%%", n, est, rel*100)
		}
	}
}

func TestHLLStrings(t *testing.T) {
	var h HLL
	for i := 0; i < 500; i++ {
		h.AddString(fmt.Sprintf("value-%d", i))
	}
	est := float64(h.Estimate())
	if est < 350 || est > 650 {
		t.Errorf("string estimate = %v, want ~500", est)
	}
}

func TestHLLMerge(t *testing.T) {
	var a, b HLL
	for i := 0; i < 1000; i++ {
		a.AddUint(uint64(i))
		b.AddUint(uint64(i + 500)) // overlap 500..999
	}
	a.Merge(&b)
	est := float64(a.Estimate())
	if est < 1100 || est > 1900 {
		t.Errorf("merged estimate = %v, want ~1500", est)
	}
}

func TestHLLEmpty(t *testing.T) {
	var h HLL
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty sketch estimate = %d", est)
	}
}

func TestCollectStatsDistinct(t *testing.T) {
	v := chunk.NewVector(schema.Int64, 1000)
	for i := range v.Ints {
		v.Ints[i] = int64(i % 50)
	}
	s := CollectStats(v)
	if s.Rows != 1000 {
		t.Errorf("Rows = %d", s.Rows)
	}
	if s.Distinct < 40 || s.Distinct > 60 {
		t.Errorf("Distinct = %d, want ~50", s.Distinct)
	}
	// Distinct never exceeds row count.
	small := chunk.NewVector(schema.Str, 3)
	small.Strs = []string{"a", "b", "c"}
	if st := CollectStats(small); st.Distinct > st.Rows {
		t.Errorf("Distinct %d > Rows %d", st.Distinct, st.Rows)
	}
}

func TestEstimateRangeRows(t *testing.T) {
	_, tbl := newTestStore(t)
	// Two chunks of 100 rows: values uniform 0..99 and 100..199.
	for id := 0; id < 2; id++ {
		if err := tbl.EnsureChunk(id, 100, int64(id*1000), 1000); err != nil {
			t.Fatal(err)
		}
		v := chunk.NewVector(schema.Int64, 100)
		for i := range v.Ints {
			v.Ints[i] = int64(id*100 + i)
		}
		if err := tbl.SetStats(id, 0, CollectStats(v)); err != nil {
			t.Fatal(err)
		}
	}
	est, total, err := tbl.EstimateRangeRows(0, 0, 49)
	if err != nil {
		t.Fatal(err)
	}
	if total != 200 {
		t.Errorf("total = %d", total)
	}
	// Half of chunk 0, none of chunk 1: ~50.
	if est < 40 || est > 60 {
		t.Errorf("estimate for [0,49] = %v, want ~50", est)
	}
	// Full range.
	est, _, _ = tbl.EstimateRangeRows(0, 0, 1000)
	if est != 200 {
		t.Errorf("full-range estimate = %v, want 200", est)
	}
	// Empty range.
	est, _, _ = tbl.EstimateRangeRows(0, 500, 600)
	if est != 0 {
		t.Errorf("out-of-range estimate = %v, want 0", est)
	}
	// Inverted bounds.
	est, _, _ = tbl.EstimateRangeRows(0, 10, 5)
	if est != 0 {
		t.Errorf("inverted-range estimate = %v", est)
	}
	// Bad column.
	if _, _, err := tbl.EstimateRangeRows(99, 0, 1); err == nil {
		t.Error("bad column should fail")
	}
}

func TestEstimateRangeRowsNoStats(t *testing.T) {
	_, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 100, 0, 1000); err != nil {
		t.Fatal(err)
	}
	// No stats: conservative full contribution.
	est, total, err := tbl.EstimateRangeRows(0, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if est != 100 || total != 100 {
		t.Errorf("no-stats estimate = %v/%v, want 100/100", est, total)
	}
}

func TestEstimateDistinct(t *testing.T) {
	_, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 100, 0, 1000); err != nil {
		t.Fatal(err)
	}
	v := chunk.NewVector(schema.Int64, 100)
	for i := range v.Ints {
		v.Ints[i] = int64(i % 10)
	}
	if err := tbl.SetStats(0, 0, CollectStats(v)); err != nil {
		t.Fatal(err)
	}
	d, err := tbl.EstimateDistinct(0)
	if err != nil {
		t.Fatal(err)
	}
	if d < 8 || d > 12 {
		t.Errorf("distinct = %d, want ~10", d)
	}
	if _, err := tbl.EstimateDistinct(-1); err == nil {
		t.Error("bad column should fail")
	}
}
