package dbstore

import (
	"math"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// ColStats holds the minimum/maximum statistics SCANRAW collects for one
// column of one chunk while data are converted to the database
// representation (paper §3.3, "Query optimization"). They serve two
// purposes: skipping chunks that cannot satisfy a selection predicate, and
// cardinality estimation.
type ColStats struct {
	// Valid reports whether statistics were ever collected for the column
	// (i.e. the column has been converted at least once).
	Valid bool
	Type  schema.Type

	MinInt   int64
	MaxInt   int64
	MinFloat float64
	MaxFloat float64
	MinStr   string
	MaxStr   string

	// Rows is the number of values the statistics cover.
	Rows int64
	// Distinct is the estimated number of distinct values (HyperLogLog,
	// §3.3 "more advanced statistics such as the number of distinct
	// elements ... can be also extracted during the conversion stage").
	// Zero means not collected.
	Distinct int64
}

// CollectStats computes min/max, row-count and distinct-count statistics
// over a vector. An empty vector yields invalid stats.
func CollectStats(v *chunk.Vector) ColStats {
	s := ColStats{Type: v.Type}
	if v.Len() == 0 {
		return s
	}
	s.Valid = true
	s.Rows = int64(v.Len())
	var hll HLL
	switch v.Type {
	case schema.Int64:
		for _, x := range v.Ints {
			hll.AddUint(uint64(x))
		}
	case schema.Float64:
		for _, x := range v.Floats {
			hll.AddUint(math.Float64bits(x))
		}
	case schema.Str:
		for _, x := range v.Strs {
			hll.AddString(x)
		}
	}
	s.Distinct = hll.Estimate()
	if s.Distinct > s.Rows {
		s.Distinct = s.Rows
	}
	switch v.Type {
	case schema.Int64:
		s.MinInt, s.MaxInt = v.Ints[0], v.Ints[0]
		for _, x := range v.Ints[1:] {
			if x < s.MinInt {
				s.MinInt = x
			}
			if x > s.MaxInt {
				s.MaxInt = x
			}
		}
	case schema.Float64:
		s.MinFloat, s.MaxFloat = v.Floats[0], v.Floats[0]
		for _, x := range v.Floats[1:] {
			if x < s.MinFloat {
				s.MinFloat = x
			}
			if x > s.MaxFloat {
				s.MaxFloat = x
			}
		}
	case schema.Str:
		s.MinStr, s.MaxStr = v.Strs[0], v.Strs[0]
		for _, x := range v.Strs[1:] {
			if x < s.MinStr {
				s.MinStr = x
			}
			if x > s.MaxStr {
				s.MaxStr = x
			}
		}
	}
	return s
}

// MayContainInt reports whether a value in [lo, hi] could appear in the
// column, according to the statistics. Chunks whose stats exclude the range
// can be skipped without reading (paper §3.2.1, READ thread optimization:
// "chunks can be ignored altogether if the selection predicate cannot be
// satisfied by any tuple in the chunk"). Invalid stats conservatively
// return true.
func (s ColStats) MayContainInt(lo, hi int64) bool {
	if !s.Valid || s.Type != schema.Int64 {
		return true
	}
	return s.MaxInt >= lo && s.MinInt <= hi
}

// MayContainFloat is the float analogue of MayContainInt.
func (s ColStats) MayContainFloat(lo, hi float64) bool {
	if !s.Valid || s.Type != schema.Float64 {
		return true
	}
	return s.MaxFloat >= lo && s.MinFloat <= hi
}

// estimateOverlap estimates how many of the column's rows fall in [lo, hi]
// under a uniform-distribution assumption between the observed min/max —
// the classic textbook interpolation the paper's catalog statistics feed
// (§3.3, cardinality estimation).
func (s ColStats) estimateOverlap(lo, hi int64) float64 {
	if !s.Valid || s.Type != schema.Int64 {
		return float64(s.Rows) // unknown: assume everything qualifies
	}
	if hi < s.MinInt || lo > s.MaxInt {
		return 0
	}
	if lo <= s.MinInt && hi >= s.MaxInt {
		return float64(s.Rows)
	}
	span := float64(s.MaxInt-s.MinInt) + 1
	clampedLo, clampedHi := lo, hi
	if clampedLo < s.MinInt {
		clampedLo = s.MinInt
	}
	if clampedHi > s.MaxInt {
		clampedHi = s.MaxInt
	}
	frac := (float64(clampedHi-clampedLo) + 1) / span
	return frac * float64(s.Rows)
}
