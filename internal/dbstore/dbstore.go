// Package dbstore implements the database side of SCANRAW: the catalog, the
// column-oriented chunk storage on the (simulated) disk, per-chunk metadata
// with min/max statistics, loaded-chunk bookkeeping, and the heap-scan read
// path that serves chunks already converted to the binary representation.
//
// Storage layout follows the paper (§3.1): "In binary format, tuples are
// vertically partitioned along columns represented as arrays in memory.
// When written to disk, each column is assigned an independent set of pages
// which can be directly mapped into the in-memory array representation."
// Here every (table, chunk, column) triple maps to one page blob on the
// disk, so partial loading — some columns of some chunks — needs no tuple
// rewriting, mirroring the column-store schema-expansion argument of §2.
package dbstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
	"scanraw/internal/store"
)

// Journal receives a durable record for every catalog mutation. It is the
// write-ahead half of crash safety: page blobs are written first, then the
// metadata record is appended, so a replayed journal never references data
// that is not on disk. *store.Manifest implements it; a nil journal (the
// default, used by simulations and tests) makes the store purely in-memory.
type Journal interface {
	Append(recs ...store.Record) error
	Checkpoint(recs []store.Record) error
	AppendsSinceCheckpoint() int64
}

// ChunkMeta is the catalog record for one chunk of one table. The fields
// are the statistics SCANRAW collects during conversion: where the chunk
// starts in the raw file, how many tuples it holds, per-column min/max, and
// which columns have been loaded into the database.
type ChunkMeta struct {
	ID     int
	Rows   int
	RawOff int64 // byte offset of the chunk in the raw file
	RawLen int64 // byte length of the chunk in the raw file

	Stats  []ColStats // indexed by schema ordinal
	Loaded []bool     // indexed by schema ordinal; union of Groups
	Groups []GroupState

	// maskKey is the table mask-index key of this chunk's current loaded
	// set ("" while nothing is loaded); maintained by setLoadedLocked.
	maskKey string
}

// GroupState describes one durable column-group page of a chunk: the
// ordinals it holds, and whether it predates column-group pages. Loaded is
// always the union of the group column sets — readers that only care
// whether a column is available keep using it; the group list is what maps
// columns back to page blobs.
type GroupState struct {
	Cols []int
	// Legacy marks groups recovered from pre-colgroup manifests (RecLoaded
	// records), whose data lives in one page blob per column under the bare
	// ordinal name instead of a group-keyed page.
	Legacy bool
}

// clone returns a deep copy so callers can inspect metadata without racing
// against catalog updates.
func (m *ChunkMeta) clone() *ChunkMeta {
	c := *m
	c.Stats = append([]ColStats(nil), m.Stats...)
	c.Loaded = append([]bool(nil), m.Loaded...)
	c.Groups = make([]GroupState, len(m.Groups))
	for i, g := range m.Groups {
		c.Groups[i] = GroupState{Cols: append([]int(nil), g.Cols...), Legacy: g.Legacy}
	}
	return &c
}

// LoadedAll reports whether every listed column ordinal is loaded.
func (m *ChunkMeta) LoadedAll(cols []int) bool {
	for _, c := range cols {
		if c < 0 || c >= len(m.Loaded) || !m.Loaded[c] {
			return false
		}
	}
	return true
}

// LoadedAny reports whether at least one column is loaded.
func (m *ChunkMeta) LoadedAny() bool {
	for _, l := range m.Loaded {
		if l {
			return true
		}
	}
	return false
}

// Table is a catalog entry linking a relation schema to a raw file and the
// chunk metadata discovered while processing it.
type Table struct {
	name    string
	schema  *schema.Schema
	rawFile string
	fp      store.Fingerprint // raw file fingerprint at staging time (durable stores)

	mu       sync.RWMutex
	chunks   []*ChunkMeta
	complete bool // true once the raw file has been fully scanned once

	// masks indexes chunks by their loaded-column set, so CountLoaded — the
	// cached-path probe every query makes — is O(distinct masks) instead of
	// a walk over every chunk under the table lock. Chunks with no loaded
	// column are not tracked. Guarded by mu.
	masks map[string]*maskCount

	// journal, when non-nil, receives a record for each mutation. Appends
	// happen after t.mu is released: the manifest serializes its own writes,
	// and records are idempotent upserts, so replay order differing from
	// lock-acquisition order within a chunk is harmless.
	journal Journal
	// ckpt is the owning store's checkpoint lock. Mutators hold it shared
	// across the memory-update + journal-append pair so a checkpoint (which
	// holds it exclusively) never snapshots a mutation whose record could
	// land in the log after the snapshot but before the truncate — the one
	// interleaving that would lose a record.
	ckpt *sync.RWMutex
}

// maskCount is one loaded-column-set equivalence class: the set itself and
// how many chunks currently have exactly that set loaded.
type maskCount struct {
	loaded []bool
	n      int
}

// remaskLocked moves a chunk between mask-index buckets after its loaded
// set changed. Caller holds t.mu.
func (t *Table) remaskLocked(m *ChunkMeta) {
	if old := m.maskKey; old != "" {
		if mc := t.masks[old]; mc != nil {
			mc.n--
			if mc.n == 0 {
				delete(t.masks, old)
			}
		}
	}
	var cols []int
	for c, l := range m.Loaded {
		if l {
			cols = append(cols, c)
		}
	}
	if len(cols) == 0 {
		m.maskKey = ""
		return
	}
	key := EncodeColGroupKey(cols)
	m.maskKey = key
	if t.masks == nil {
		t.masks = make(map[string]*maskCount)
	}
	mc := t.masks[key]
	if mc == nil {
		mc = &maskCount{loaded: append([]bool(nil), m.Loaded...)}
		t.masks[key] = mc
	}
	mc.n++
}

// journalLock enters a mutate+append critical section against checkpoints.
// It returns the release func; a no-op when the table has no journal.
func (t *Table) journalLock() func() {
	if t.journal == nil || t.ckpt == nil {
		return func() {}
	}
	t.ckpt.RLock()
	return t.ckpt.RUnlock
}

// journalAppend forwards records to the table's journal, if any.
func (t *Table) journalAppend(recs ...store.Record) error {
	if t.journal == nil {
		return nil
	}
	return t.journal.Append(recs...)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// RawFile returns the disk blob name of the backing raw file.
func (t *Table) RawFile() string { return t.rawFile }

// Fingerprint returns the raw file's fingerprint recorded at staging time
// (zero for non-durable stores).
func (t *Table) Fingerprint() store.Fingerprint { return t.fp }

// EnsureChunk records the discovery of chunk id (its tuple count and raw
// file extent) and returns whether the chunk was new. Re-registering an
// existing chunk with identical geometry is a no-op; conflicting geometry
// is an error (it would mean the raw file changed underneath us).
func (t *Table) EnsureChunk(id, rows int, rawOff, rawLen int64) error {
	defer t.journalLock()()
	isNew, err := t.ensureChunkLocked(id, rows, rawOff, rawLen)
	if err != nil || !isNew {
		return err
	}
	return t.journalAppend(store.Record{
		Type: store.RecChunk, Table: t.name,
		Chunk: id, Rows: rows, RawOff: rawOff, RawLen: rawLen,
	})
}

func (t *Table) ensureChunkLocked(id, rows int, rawOff, rawLen int64) (isNew bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.chunks) <= id {
		t.chunks = append(t.chunks, nil)
	}
	if m := t.chunks[id]; m != nil {
		if m.Rows != rows || m.RawOff != rawOff || m.RawLen != rawLen {
			return false, fmt.Errorf("dbstore: chunk %d re-registered with different geometry (%d rows @%d+%d vs %d rows @%d+%d)",
				id, rows, rawOff, rawLen, m.Rows, m.RawOff, m.RawLen)
		}
		return false, nil
	}
	n := t.schema.NumColumns()
	t.chunks[id] = &ChunkMeta{
		ID: id, Rows: rows, RawOff: rawOff, RawLen: rawLen,
		Stats:  make([]ColStats, n),
		Loaded: make([]bool, n),
	}
	return true, nil
}

// SetComplete marks that the raw file has been scanned end to end, so the
// catalog now knows every chunk boundary.
func (t *Table) SetComplete() error {
	defer t.journalLock()()
	t.mu.Lock()
	first := !t.complete
	t.complete = true
	t.mu.Unlock()
	if !first {
		return nil
	}
	return t.journalAppend(store.Record{Type: store.RecComplete, Table: t.name})
}

// Complete reports whether all chunk boundaries are known.
func (t *Table) Complete() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.complete
}

// NumChunks returns the number of registered chunks.
func (t *Table) NumChunks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.chunks)
}

// Chunk returns a copy of the metadata for chunk id.
func (t *Table) Chunk(id int) (*ChunkMeta, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.chunks) || t.chunks[id] == nil {
		return nil, false
	}
	return t.chunks[id].clone(), true
}

// SetStats records conversion-time statistics for one column of one chunk.
func (t *Table) SetStats(id, col int, s ColStats) error {
	defer t.journalLock()()
	t.mu.Lock()
	if id < 0 || id >= len(t.chunks) || t.chunks[id] == nil {
		t.mu.Unlock()
		return fmt.Errorf("dbstore: SetStats on unknown chunk %d", id)
	}
	if col < 0 || col >= len(t.chunks[id].Stats) {
		t.mu.Unlock()
		return fmt.Errorf("dbstore: SetStats column %d out of range", col)
	}
	t.chunks[id].Stats[col] = s
	t.mu.Unlock()
	return t.journalAppend(store.Record{
		Type: store.RecStats, Table: t.name,
		Chunk: id, Col: col, Stats: statsToRec(s),
	})
}

// markLoadedGroups records that the listed column groups of a chunk were
// stored as page blobs, one group per page. The journal records are
// appended only after this point, i.e. after the page blobs are already
// durable — the data-before-metadata ordering recovery relies on. Legacy
// marks pre-colgroup per-column pages: each column becomes its own
// singleton group read under the bare-ordinal page name, and the journal
// record keeps the RecLoaded type so a checkpointed manifest stays
// readable by the layout that wrote the pages.
func (t *Table) markLoadedGroups(id int, groups [][]int, legacy bool) error {
	defer t.journalLock()()
	t.mu.Lock()
	if id < 0 || id >= len(t.chunks) || t.chunks[id] == nil {
		t.mu.Unlock()
		return fmt.Errorf("dbstore: markLoaded on unknown chunk %d", id)
	}
	m := t.chunks[id]
	var recs []store.Record
	for _, cols := range groups {
		for _, c := range cols {
			if c < 0 || c >= len(m.Loaded) {
				t.mu.Unlock()
				return fmt.Errorf("dbstore: markLoaded column %d out of range", c)
			}
		}
		if legacy {
			for _, c := range cols {
				t.addGroupLocked(m, []int{c}, true)
			}
			recs = append(recs, store.Record{
				Type: store.RecLoaded, Table: t.name,
				Chunk: id, Cols: append([]int(nil), cols...),
			})
			continue
		}
		if t.addGroupLocked(m, cols, false) {
			recs = append(recs, store.Record{
				Type: store.RecLoadedGroup, Table: t.name,
				Chunk: id, Cols: append([]int(nil), cols...),
			})
		}
	}
	t.remaskLocked(m)
	t.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}
	return t.journalAppend(recs...)
}

// addGroupLocked registers one group on a chunk, deduplicating by column
// set, and flips the loaded bits. Caller holds t.mu and re-masks after.
func (t *Table) addGroupLocked(m *ChunkMeta, cols []int, legacy bool) (added bool) {
	key := EncodeColGroupKey(cols)
	for _, g := range m.Groups {
		if EncodeColGroupKey(g.Cols) == key {
			return false
		}
	}
	m.Groups = append(m.Groups, GroupState{Cols: append([]int(nil), cols...), Legacy: legacy})
	for _, c := range cols {
		m.Loaded[c] = true
	}
	return true
}

// EstimateRangeRows estimates how many tuples have column col in [lo, hi],
// summing per-chunk uniform interpolations over the catalog statistics
// (§3.3: "the second use case for statistics is cardinality estimation for
// traditional query optimization"). Chunks without statistics contribute
// their full row count when known, so the estimate degrades conservatively
// toward "everything matches". The second result is the total row count
// covered by the catalog.
func (t *Table) EstimateRangeRows(col int, lo, hi int64) (estimate float64, totalRows int64, err error) {
	if col < 0 || col >= t.schema.NumColumns() {
		return 0, 0, fmt.Errorf("dbstore: column %d out of range", col)
	}
	if lo > hi {
		return 0, 0, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, m := range t.chunks {
		if m == nil {
			continue
		}
		totalRows += int64(m.Rows)
		s := m.Stats[col]
		if !s.Valid {
			estimate += float64(m.Rows)
			continue
		}
		// Stats may cover fewer rows than the chunk (older partial
		// conversions); scale the overlap up to the chunk size.
		ov := s.estimateOverlap(lo, hi)
		if s.Rows > 0 && int64(m.Rows) != s.Rows {
			ov *= float64(m.Rows) / float64(s.Rows)
		}
		estimate += ov
	}
	return estimate, totalRows, nil
}

// EstimateDistinct returns the estimated number of distinct values of a
// column per chunk summed across chunks — an upper bound on the table-wide
// distinct count (per-chunk sketches cannot be unioned exactly once stored
// as scalars).
func (t *Table) EstimateDistinct(col int) (int64, error) {
	if col < 0 || col >= t.schema.NumColumns() {
		return 0, fmt.Errorf("dbstore: column %d out of range", col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, m := range t.chunks {
		if m == nil {
			continue
		}
		total += m.Stats[col].Distinct
	}
	return total, nil
}

// LoadedChunks returns the IDs of chunks whose listed columns are all
// loaded.
func (t *Table) LoadedChunks(cols []int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for _, m := range t.chunks {
		if m != nil && m.LoadedAll(cols) {
			out = append(out, m.ID)
		}
	}
	return out
}

// CountLoaded returns how many chunks have all listed columns loaded. It
// answers from the mask index — O(distinct loaded-column sets), not
// O(chunks) — because it is the cached-path probe on every query.
func (t *Table) CountLoaded(cols []int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, mc := range t.masks {
		covered := true
		for _, c := range cols {
			if c < 0 || c >= len(mc.loaded) || !mc.loaded[c] {
				covered = false
				break
			}
		}
		if covered {
			n += mc.n
		}
	}
	return n
}

// FullyLoaded reports whether the discovery is complete and every chunk has
// every column loaded — the condition under which a SCANRAW instance is
// deleted and the table becomes a plain database table (paper §3.3).
func (t *Table) FullyLoaded() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.complete || len(t.chunks) == 0 {
		return false
	}
	for _, m := range t.chunks {
		if m == nil {
			return false
		}
		for _, l := range m.Loaded {
			if !l {
				return false
			}
		}
	}
	return true
}

// Store is the database storage manager: catalog plus column pages on a
// disk.
type Store struct {
	disk store.Disk

	mu      sync.RWMutex
	tables  map[string]*Table
	journal Journal
	rec     RecoveryReport

	// groupWidth is the column-group width for new pages (1 = one page per
	// column, 0 = full-width). Guarded by mu.
	groupWidth int

	// workloads holds per-table decayed column-access weights (the workload
	// tracker's persisted state), keyed by table name. Guarded by mu.
	workloads map[string][]float64

	// ckptMu orders catalog mutations against checkpoint compaction; see
	// Table.ckpt.
	ckptMu sync.RWMutex
}

// NewStore creates an empty store on the given disk.
func NewStore(d store.Disk) *Store {
	return &Store{disk: d, tables: make(map[string]*Table), groupWidth: 1, workloads: make(map[string][]float64)}
}

// Disk returns the underlying disk.
func (s *Store) Disk() store.Disk { return s.disk }

// CreateTable registers a table linking sch to the raw file blob rawFile.
// Durable stores journal the registration with a zero fingerprint; use
// EnsureTable to record the raw file's fingerprint so a restart can detect
// content changes.
func (s *Store) CreateTable(name string, sch *schema.Schema, rawFile string) (*Table, error) {
	return s.createTable(name, sch, rawFile, store.Fingerprint{})
}

func (s *Store) createTable(name string, sch *schema.Schema, rawFile string, fp store.Fingerprint) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("dbstore: empty table name")
	}
	s.mu.Lock()
	if _, dup := s.tables[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("dbstore: table %q already exists", name)
	}
	t := &Table{name: name, schema: sch, rawFile: rawFile, fp: fp, journal: s.journal, ckpt: &s.ckptMu}
	s.tables[name] = t
	s.mu.Unlock()
	defer t.journalLock()()
	if err := t.journalAppend(store.Record{
		Type: store.RecTableCreate, Table: name,
		RawFile: rawFile, Schema: schemaSpec(sch), Fingerprint: fp,
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns every registered table, sorted by name — the catalog
// listing a serving endpoint enumerates.
func (s *Store) Tables() []*Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DropTable removes a table and deletes its pages from disk.
func (s *Store) DropTable(name string) {
	s.mu.Lock()
	t := s.tables[name]
	delete(s.tables, name)
	delete(s.workloads, name)
	s.mu.Unlock()
	if t == nil {
		return
	}
	for _, blob := range s.disk.List(pagePrefix(name)) {
		s.disk.Delete(blob)
	}
}

func pagePrefix(table string) string { return fmt.Sprintf("db/%s/", table) }

func pageName(table string, chunkID, col int) string {
	return fmt.Sprintf("db/%s/%08d/%04d", table, chunkID, col)
}

// Pages carry a CRC32-C checksum so silent corruption on the storage
// device is detected at read time instead of surfacing as wrong query
// answers.

// sealPage prefixes the payload with its checksum.
func sealPage(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, crc32.Checksum(payload, castagnoli))
	copy(out[4:], payload)
	return out
}

// openPage verifies and strips the checksum.
func openPage(p []byte) ([]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("dbstore: page too short for checksum (%d bytes)", len(p))
	}
	want := binary.LittleEndian.Uint32(p)
	payload := p[4:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("dbstore: page checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteChunkColumns stores the listed columns of binary chunk bc as
// column-group pages and marks them loaded in the catalog. The chunk must
// already be registered via EnsureChunk. The columns are partitioned along
// the store's group-width boundaries; groups whose columns are all already
// loaded are skipped — a partially-loaded chunk writes only its missing
// groups. This is the WRITE stage's storage operation; the disk's write
// throttle models its I/O cost.
func (s *Store) WriteChunkColumns(t *Table, bc *chunk.BinaryChunk, cols []int) error {
	if meta, ok := t.Chunk(bc.ID); !ok {
		return fmt.Errorf("dbstore: chunk %d not registered in table %q", bc.ID, t.Name())
	} else if meta.Rows != bc.Rows {
		return fmt.Errorf("dbstore: chunk %d has %d rows, catalog says %d", bc.ID, bc.Rows, meta.Rows)
	}
	groups := s.writeGroups(t, bc.ID, cols)
	for _, g := range groups {
		payload, err := encodeGroupPage(bc, g)
		if err != nil {
			return err
		}
		if err := s.disk.WriteBlob(groupPageName(t.Name(), bc.ID, g), sealPage(payload)); err != nil {
			return fmt.Errorf("dbstore: writing chunk %d group %s: %w", bc.ID, EncodeColGroupKey(g), err)
		}
	}
	if err := t.markLoadedGroups(bc.ID, groups, false); err != nil {
		return err
	}
	return s.MaybeCheckpoint()
}

// WriteChunk stores every present column of bc.
func (s *Store) WriteChunk(t *Table, bc *chunk.BinaryChunk) error {
	return s.WriteChunkColumns(t, bc, bc.Present())
}

// ReadChunk reads the listed columns of chunk id from the database into a
// binary chunk. Every requested column must be loaded; the read is served
// from a greedy cover of the chunk's recorded column groups, so any mix of
// widths — legacy per-column pages, narrow groups, a full-width page — can
// satisfy it, and only covering pages are transferred.
func (s *Store) ReadChunk(t *Table, id int, cols []int) (*chunk.BinaryChunk, error) {
	meta, ok := t.Chunk(id)
	if !ok {
		return nil, fmt.Errorf("dbstore: chunk %d not registered in table %q", id, t.Name())
	}
	if !meta.LoadedAll(cols) {
		return nil, fmt.Errorf("dbstore: chunk %d does not have all of columns %v loaded", id, cols)
	}
	need := make(map[int]bool, len(cols))
	for _, c := range cols {
		need[c] = true
	}
	bc := chunk.NewBinary(t.Schema(), id, meta.Rows)
	// Greedy cover: repeatedly read the group contributing the most still-
	// needed columns. LoadedAll guarantees the union of groups covers the
	// request, so every iteration makes progress.
	for len(need) > 0 {
		var best GroupState
		bestGain := 0
		for _, g := range meta.Groups {
			gain := 0
			for _, c := range g.Cols {
				if need[c] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = g, gain
			}
		}
		if bestGain == 0 {
			return nil, fmt.Errorf("dbstore: chunk %d groups do not cover columns %v", id, cols)
		}
		if err := s.readGroup(t, id, best, need, bc); err != nil {
			return nil, err
		}
		for _, c := range best.Cols {
			delete(need, c)
		}
	}
	return bc, nil
}

// readGroup reads one recorded group's page blob(s) and installs the
// still-needed columns into bc.
func (s *Store) readGroup(t *Table, id int, g GroupState, need map[int]bool, bc *chunk.BinaryChunk) error {
	if g.Legacy {
		for _, c := range g.Cols {
			if !need[c] {
				continue
			}
			p, err := s.disk.ReadBlob(pageName(t.Name(), id, c))
			if err != nil {
				return fmt.Errorf("dbstore: reading chunk %d column %d: %w", id, c, err)
			}
			payload, err := openPage(p)
			if err != nil {
				return fmt.Errorf("dbstore: chunk %d column %d: %w", id, c, err)
			}
			v, err := chunk.DecodeVector(payload)
			if err != nil {
				return fmt.Errorf("dbstore: decoding chunk %d column %d: %w", id, c, err)
			}
			if err := bc.SetColumn(c, v); err != nil {
				return err
			}
		}
		return nil
	}
	key := EncodeColGroupKey(g.Cols)
	p, err := s.disk.ReadBlob(groupPageName(t.Name(), id, g.Cols))
	if err != nil {
		return fmt.Errorf("dbstore: reading chunk %d group %s: %w", id, key, err)
	}
	payload, err := openPage(p)
	if err != nil {
		return fmt.Errorf("dbstore: chunk %d group %s: %w", id, key, err)
	}
	pcols, err := decodeGroupPage(payload)
	if err != nil {
		return fmt.Errorf("dbstore: chunk %d group %s: %w", id, key, err)
	}
	for _, pc := range pcols {
		if !need[pc.col] {
			continue
		}
		v, err := chunk.DecodeVector(pc.enc)
		if err != nil {
			return fmt.Errorf("dbstore: decoding chunk %d group %s column %d: %w", id, key, pc.col, err)
		}
		if err := bc.SetColumn(pc.col, v); err != nil {
			return err
		}
	}
	return nil
}

// Scan is the heap-scan operator: it iterates the loaded chunks of a table
// in chunk order, reading the listed columns and invoking fn on each. It is
// the operator SCANRAW "morphs into" once all data are loaded (paper §3.3).
func (s *Store) Scan(t *Table, cols []int, fn func(*chunk.BinaryChunk) error) error {
	for _, id := range t.LoadedChunks(cols) {
		bc, err := s.ReadChunk(t, id, cols)
		if err != nil {
			return err
		}
		if err := fn(bc); err != nil {
			return err
		}
	}
	return nil
}

// SetWorkload durably records a table's per-column access weights (the
// workload tracker's decayed counters). The latest record wins on replay;
// the serving layer persists periodically, so a crash loses at most the
// accesses since the last snapshot — an acceptable loss for a statistic
// that only ranks speculation.
func (s *Store) SetWorkload(table string, weights []float64) error {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j != nil {
		s.ckptMu.RLock()
		defer s.ckptMu.RUnlock()
	}
	w := append([]float64(nil), weights...)
	s.mu.Lock()
	s.workloads[table] = w
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Append(store.Record{Type: store.RecWorkload, Table: table, Weights: w})
}

// Workload returns the recorded per-column access weights for a table, or
// nil when none were ever persisted.
func (s *Store) Workload(table string) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]float64(nil), s.workloads[table]...)
}

// Fleet configuration persistence. A coordinator records its fleet
// description (peer addresses and table→chunk-range ownership) alongside
// the durable catalog, so a restart serves the same fleet without the
// config file. The blob is checksummed like database pages: a torn or
// corrupted fleet record must fail loudly, not route queries wrong.

// fleetBlob is the durable fleet-config location on the store's disk.
const fleetBlob = "db/_fleet"

// SaveFleetConfig durably records the serialized fleet configuration.
func (s *Store) SaveFleetConfig(data []byte) error {
	return s.disk.WriteBlob(fleetBlob, sealPage(data))
}

// LoadFleetConfig returns the recorded fleet configuration, or ok=false
// when none was ever saved. A corrupted record is an error.
func (s *Store) LoadFleetConfig() (data []byte, ok bool, err error) {
	if !s.disk.Exists(fleetBlob) {
		return nil, false, nil
	}
	p, err := s.disk.ReadBlob(fleetBlob)
	if err != nil {
		return nil, false, err
	}
	data, err = openPage(p)
	if err != nil {
		return nil, false, fmt.Errorf("dbstore: fleet config: %v", err)
	}
	return data, true, nil
}
