package dbstore

import (
	"reflect"
	"sort"
	"testing"
)

func TestColGroupKeyRoundTrip(t *testing.T) {
	cases := []struct {
		cols []int
		key  string
	}{
		{[]int{0}, "0"},
		{[]int{3}, "3"},
		{[]int{0, 1, 2}, "0-2"},
		{[]int{0, 1, 2, 5}, "0-2.5"},
		{[]int{1, 3, 5}, "1.3.5"},
		{[]int{0, 2, 3, 4, 9, 10}, "0.2-4.9-10"},
	}
	for _, c := range cases {
		got := EncodeColGroupKey(c.cols)
		if got != c.key {
			t.Errorf("Encode(%v) = %q, want %q", c.cols, got, c.key)
		}
		back, err := DecodeColGroupKey(c.key)
		if err != nil {
			t.Errorf("Decode(%q): %v", c.key, err)
			continue
		}
		if !reflect.DeepEqual(back, c.cols) {
			t.Errorf("Decode(%q) = %v, want %v", c.key, back, c.cols)
		}
	}
}

func TestColGroupKeyRejectsNonCanonical(t *testing.T) {
	bad := []string{
		"", ".", "0.", ".0", "0..2", "1.0", "2.2", "0.1", // "0.1" must be "0-1"
		"0-0", "3-1", "-1", "1-", "00", "01", "0x1", " 1", "1 ", "999999999999",
	}
	for _, key := range bad {
		if cols, err := DecodeColGroupKey(key); err == nil {
			t.Errorf("Decode(%q) = %v, want error", key, cols)
		}
	}
}

// FuzzDecodeColGroupKey drives the strict decoder with arbitrary strings:
// it must never panic, and any key it accepts must be canonical — the
// decoded ordinal list is strictly increasing and re-encodes to the exact
// input, so one column set maps to one page name. The reverse property is
// exercised too: a column set derived from the input bytes must survive an
// encode/decode round trip.
func FuzzDecodeColGroupKey(f *testing.F) {
	f.Add("0")
	f.Add("0-2.5")
	f.Add("1.3.5")
	f.Add("0.1")
	f.Add("10-12")
	f.Add("\x00g..--")
	f.Fuzz(func(t *testing.T, key string) {
		if cols, err := DecodeColGroupKey(key); err == nil {
			if len(cols) == 0 {
				t.Fatalf("Decode(%q) accepted an empty group", key)
			}
			for i, c := range cols {
				if c < 0 || c >= maxGroupCols {
					t.Fatalf("Decode(%q) ordinal %d out of range", key, c)
				}
				if i > 0 && c <= cols[i-1] {
					t.Fatalf("Decode(%q) = %v not strictly increasing", key, cols)
				}
			}
			if re := EncodeColGroupKey(cols); re != key {
				t.Fatalf("Decode(%q) = %v re-encodes to %q: key not canonical", key, cols, re)
			}
		}
		// Reverse direction: build a set from the input bytes and round-trip.
		set := map[int]bool{}
		for i := 0; i < len(key) && i < 32; i++ {
			set[int(key[i])%64] = true
		}
		if len(set) == 0 {
			return
		}
		cols := make([]int, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		back, err := DecodeColGroupKey(EncodeColGroupKey(cols))
		if err != nil {
			t.Fatalf("round trip of %v failed: %v", cols, err)
		}
		if !reflect.DeepEqual(back, cols) {
			t.Fatalf("round trip of %v = %v", cols, back)
		}
	})
}

func TestGroupPartition(t *testing.T) {
	cases := []struct {
		ncols, width int
		want         [][]int
	}{
		{0, 2, nil},
		{3, 1, [][]int{{0}, {1}, {2}}},
		{5, 2, [][]int{{0, 1}, {2, 3}, {4}}},
		{4, 0, [][]int{{0, 1, 2, 3}}},
		{2, 8, [][]int{{0, 1}}},
	}
	for _, c := range cases {
		got := GroupPartition(c.ncols, c.width)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("GroupPartition(%d, %d) = %v, want %v", c.ncols, c.width, got, c.want)
		}
	}
}

func TestGroupClosure(t *testing.T) {
	s, tb := newTestStore(t)
	// Width 1: the closure is the request itself.
	if got := s.GroupClosure(tb, []int{1}); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("width-1 closure = %v", got)
	}
	// Width 2 over 3 columns: groups {0,1} and {2}; asking for column 1
	// pulls in its whole group.
	s.SetGroupWidth(2)
	if got := s.GroupClosure(tb, []int{1}); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("width-2 closure of {1} = %v, want [0 1]", got)
	}
	if got := s.GroupClosure(tb, []int{2}); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("width-2 closure of {2} = %v, want [2]", got)
	}
	// Full width: everything.
	s.SetGroupWidth(0)
	if got := s.GroupClosure(tb, []int{1}); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("full-width closure = %v", got)
	}
}
