package dbstore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scanraw/internal/schema"
	"scanraw/internal/store"
)

// Durable catalog: replaying the manifest log rebuilds the Store, and every
// subsequent mutation is journaled back to it. The recovery ordering is:
//
//  1. Replay the manifest (checkpoint, then log; torn tail truncated).
//  2. Apply the records in order to an empty catalog. Records are idempotent
//     upserts; a RecTableCreate whose schema or fingerprint differs from the
//     live table resets the table, which is how a changed raw file discards
//     stale persisted state mid-log.
//  3. Verify every loaded column's page blob (existence + CRC). A missing or
//     damaged page clears just that loaded bit — the chunk re-converts from
//     raw on the next scan; nothing else is lost.
//  4. Attach the journal, so new mutations append.
//
// Only after all four steps is the store handed to the serving layer.

// checkpointThreshold is how many log records accumulate before
// MaybeCheckpoint compacts them into the snapshot.
const checkpointThreshold = 1024

// RecoveryReport summarizes what a warm start recovered.
type RecoveryReport struct {
	// TablesRecovered counts tables rebuilt from the manifest.
	TablesRecovered int
	// ChunksRecovered counts chunks that survived with at least one loaded
	// column — work the next scan does not redo.
	ChunksRecovered int
	// ChunksInvalidated counts loaded chunks dropped during recovery:
	// damaged or missing pages, table resets from a changed raw file, or
	// records that no longer applied.
	ChunksInvalidated int
	// RecoveryMS is the wall-clock duration of replay + verification.
	RecoveryMS int64
	// Replay echoes the manifest-level replay report (torn bytes etc.).
	Replay store.ReplayReport
}

// OpenDurable builds a Store on disk d by replaying the manifest, verifying
// recovered page blobs, and attaching the manifest as the store's journal.
func OpenDurable(d store.Disk, man *store.Manifest) (*Store, error) {
	start := time.Now()
	s := NewStore(d)
	recs, replayRep, err := man.Replay()
	if err != nil {
		return nil, fmt.Errorf("dbstore: replaying manifest: %w", err)
	}
	rep := RecoveryReport{Replay: replayRep}
	for _, r := range recs {
		s.applyRecord(r, &rep)
	}
	s.verifyPages(&rep)
	rep.TablesRecovered = len(s.tables)
	for _, t := range s.tables {
		for _, m := range t.chunks {
			if m != nil && m.LoadedAny() {
				rep.ChunksRecovered++
			}
		}
	}
	rep.RecoveryMS = time.Since(start).Milliseconds()
	s.rec = rep
	// Attach the journal last: replay must not re-append the records it is
	// reading.
	s.journal = man
	for _, t := range s.tables {
		t.journal = man
	}
	return s, nil
}

// RecoveryStats returns the recovery report from OpenDurable (zero for
// stores that did not warm-start).
func (s *Store) RecoveryStats() RecoveryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rec
}

// applyRecord applies one manifest record to the in-memory catalog. Records
// that no longer apply (wrong table, out-of-range ordinals, conflicting
// geometry) are skipped, not fatal: recovery must always produce a usable
// catalog from any CRC-valid prefix.
func (s *Store) applyRecord(r store.Record, rep *RecoveryReport) {
	if r.Type == store.RecTableCreate {
		sch, err := parseSchemaSpec(r.Schema)
		if err != nil {
			return
		}
		if t, ok := s.tables[r.Table]; ok {
			if t.schema.Equal(sch) && t.fp.SameContent(r.Fingerprint) && t.rawFile == r.RawFile {
				return // idempotent replay
			}
			// The raw file changed between the old incarnation and this
			// record: everything persisted for the old one is stale,
			// including the workload weights (the schema may differ).
			rep.ChunksInvalidated += countLoadedChunks(t)
			delete(s.tables, r.Table)
			delete(s.workloads, r.Table)
		}
		t := &Table{name: r.Table, schema: sch, rawFile: r.RawFile, fp: r.Fingerprint, ckpt: &s.ckptMu}
		s.tables[r.Table] = t
		return
	}
	t, ok := s.tables[r.Table]
	if !ok {
		return
	}
	switch r.Type {
	case store.RecChunk:
		if _, err := t.ensureChunkLocked(r.Chunk, r.Rows, r.RawOff, r.RawLen); err != nil {
			rep.ChunksInvalidated++
		}
	case store.RecStats:
		_ = t.SetStats(r.Chunk, r.Col, statsFromRec(r.Stats))
	case store.RecLoaded:
		// Pre-colgroup manifests: one page blob per column, named by the
		// bare ordinal. Replays as legacy singleton groups.
		//lint:ignore journalorder recovery replay: the original append already proved the pages durable, the journal is nil until attached after replay, and verifyPages drops any page that fails its CRC
		_ = t.markLoadedGroups(r.Chunk, [][]int{r.Cols}, true)
	case store.RecLoadedGroup:
		//lint:ignore journalorder recovery replay: same as above — re-applying a loaded record writes no page, and verifyPages re-checks every blob before serving
		_ = t.markLoadedGroups(r.Chunk, [][]int{r.Cols}, false)
	case store.RecWorkload:
		if len(r.Weights) == t.schema.NumColumns() {
			s.workloads[r.Table] = append([]float64(nil), r.Weights...)
		}
	case store.RecComplete:
		_ = t.SetComplete()
	}
}

// verifyPages checks every recorded group's page blob(s) and drops groups
// whose pages are missing or fail their checksum — their columns silently
// fall back to conversion from raw. Runs single-threaded before the store
// is handed to the serving layer.
func (s *Store) verifyPages(rep *RecoveryReport) {
	for _, t := range s.tables {
		for _, m := range t.chunks {
			if m == nil {
				continue
			}
			damaged := false
			kept := m.Groups[:0]
			for _, g := range m.Groups {
				if s.groupOK(t.name, m.ID, g) {
					kept = append(kept, g)
				} else {
					damaged = true
				}
			}
			if !damaged {
				continue
			}
			m.Groups = kept
			for c := range m.Loaded {
				m.Loaded[c] = false
			}
			for _, g := range m.Groups {
				for _, c := range g.Cols {
					m.Loaded[c] = true
				}
			}
			t.remaskLocked(m)
			rep.ChunksInvalidated++
		}
	}
}

// groupOK reports whether a group's page blob(s) exist and pass their CRC:
// the single group-keyed page, or — for legacy groups — one bare-ordinal
// page per column.
func (s *Store) groupOK(table string, chunkID int, g GroupState) bool {
	if g.Legacy {
		for _, c := range g.Cols {
			if !s.pageOK(table, chunkID, c) {
				return false
			}
		}
		return true
	}
	p, err := s.disk.ReadBlob(groupPageName(table, chunkID, g.Cols))
	if err != nil {
		return false
	}
	_, err = openPage(p)
	return err == nil
}

// pageOK reports whether the legacy page blob for (table, chunk, col)
// exists and passes its CRC.
func (s *Store) pageOK(table string, chunkID, col int) bool {
	p, err := s.disk.ReadBlob(pageName(table, chunkID, col))
	if err != nil {
		return false
	}
	_, err = openPage(p)
	return err == nil
}

// countLoadedChunks counts chunks with at least one loaded column.
func countLoadedChunks(t *Table) int {
	n := 0
	for _, m := range t.chunks {
		if m != nil && m.LoadedAny() {
			n++
		}
	}
	return n
}

// EnsureTable is the durable-store entry point for staging a raw file: it
// reuses a recovered table when the schema and raw-file fingerprint still
// match (the warm-start path), and otherwise drops any stale persisted state
// and registers the table fresh.
func (s *Store) EnsureTable(name string, sch *schema.Schema, rawFile string, fp store.Fingerprint) (*Table, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if ok {
		if t.schema.Equal(sch) && t.fp.SameContent(fp) && t.rawFile == rawFile {
			return t, nil
		}
		s.mu.Lock()
		s.rec.ChunksInvalidated += countLoadedChunks(t)
		s.mu.Unlock()
		s.DropTable(name)
	}
	return s.createTable(name, sch, rawFile, fp)
}

// Checkpoint compacts the journal: it snapshots the whole catalog as records
// and asks the journal to atomically replace its checkpoint with them. Held
// exclusively against every mutate+append pair (Table.ckpt), so the snapshot
// is guaranteed to cover every record the truncation discards.
func (s *Store) Checkpoint() error {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return j.Checkpoint(s.snapshotRecords())
}

// MaybeCheckpoint compacts when the journal has accumulated enough records
// since the last checkpoint. Called from the chunk-write path so compaction
// cost amortizes over conversion work.
func (s *Store) MaybeCheckpoint() error {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil || j.AppendsSinceCheckpoint() < checkpointThreshold {
		return nil
	}
	return s.Checkpoint()
}

// snapshotRecords serializes the entire catalog as an idempotent record
// sequence — replaying it from scratch reproduces the catalog.
func (s *Store) snapshotRecords() []store.Record {
	var recs []store.Record
	for _, t := range s.Tables() {
		t.mu.RLock()
		recs = append(recs, store.Record{
			Type: store.RecTableCreate, Table: t.name,
			RawFile: t.rawFile, Schema: schemaSpec(t.schema), Fingerprint: t.fp,
		})
		for _, m := range t.chunks {
			if m == nil {
				continue
			}
			recs = append(recs, store.Record{
				Type: store.RecChunk, Table: t.name,
				Chunk: m.ID, Rows: m.Rows, RawOff: m.RawOff, RawLen: m.RawLen,
			})
			for c, st := range m.Stats {
				if st.Valid {
					recs = append(recs, store.Record{
						Type: store.RecStats, Table: t.name,
						Chunk: m.ID, Col: c, Stats: statsToRec(st),
					})
				}
			}
			// Legacy groups re-snapshot as one RecLoaded so replay keeps
			// resolving them to bare-ordinal page names; each group page
			// keeps its own RecLoadedGroup.
			var legacy []int
			for _, g := range m.Groups {
				if g.Legacy {
					legacy = append(legacy, g.Cols...)
					continue
				}
				recs = append(recs, store.Record{
					Type: store.RecLoadedGroup, Table: t.name,
					Chunk: m.ID, Cols: append([]int(nil), g.Cols...),
				})
			}
			if len(legacy) > 0 {
				sort.Ints(legacy)
				recs = append(recs, store.Record{
					Type: store.RecLoaded, Table: t.name,
					Chunk: m.ID, Cols: legacy,
				})
			}
		}
		if t.complete {
			recs = append(recs, store.Record{Type: store.RecComplete, Table: t.name})
		}
		t.mu.RUnlock()
		s.mu.RLock()
		if w, ok := s.workloads[t.name]; ok {
			recs = append(recs, store.Record{
				Type: store.RecWorkload, Table: t.name,
				Weights: append([]float64(nil), w...),
			})
		}
		s.mu.RUnlock()
	}
	return recs
}

// schemaSpec renders a schema as the "name:type,..." specification stored in
// RecTableCreate records.
func schemaSpec(sch *schema.Schema) string {
	var b strings.Builder
	for i, c := range sch.Columns() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(c.Type.String())
	}
	return b.String()
}

// parseSchemaSpec inverts schemaSpec.
func parseSchemaSpec(spec string) (*schema.Schema, error) {
	if spec == "" {
		return nil, fmt.Errorf("dbstore: empty schema specification")
	}
	var cols []schema.Column
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("dbstore: bad schema column %q", part)
		}
		ty, err := schema.ParseType(typ)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: name, Type: ty})
	}
	return schema.New(cols...)
}

// statsToRec converts catalog statistics to their serialized form.
func statsToRec(s ColStats) store.ColStatsRec {
	return store.ColStatsRec{
		Valid: s.Valid, Type: uint8(s.Type),
		MinInt: s.MinInt, MaxInt: s.MaxInt,
		MinFloat: s.MinFloat, MaxFloat: s.MaxFloat,
		MinStr: s.MinStr, MaxStr: s.MaxStr,
		Rows: s.Rows, Distinct: s.Distinct,
	}
}

// statsFromRec inverts statsToRec.
func statsFromRec(r store.ColStatsRec) ColStats {
	return ColStats{
		Valid: r.Valid, Type: schema.Type(r.Type),
		MinInt: r.MinInt, MaxInt: r.MaxInt,
		MinFloat: r.MinFloat, MaxFloat: r.MaxFloat,
		MinStr: r.MinStr, MaxStr: r.MaxStr,
		Rows: r.Rows, Distinct: r.Distinct,
	}
}
