package dbstore

import (
	"fmt"
	"strings"
	"time"

	"scanraw/internal/schema"
	"scanraw/internal/store"
)

// Durable catalog: replaying the manifest log rebuilds the Store, and every
// subsequent mutation is journaled back to it. The recovery ordering is:
//
//  1. Replay the manifest (checkpoint, then log; torn tail truncated).
//  2. Apply the records in order to an empty catalog. Records are idempotent
//     upserts; a RecTableCreate whose schema or fingerprint differs from the
//     live table resets the table, which is how a changed raw file discards
//     stale persisted state mid-log.
//  3. Verify every loaded column's page blob (existence + CRC). A missing or
//     damaged page clears just that loaded bit — the chunk re-converts from
//     raw on the next scan; nothing else is lost.
//  4. Attach the journal, so new mutations append.
//
// Only after all four steps is the store handed to the serving layer.

// checkpointThreshold is how many log records accumulate before
// MaybeCheckpoint compacts them into the snapshot.
const checkpointThreshold = 1024

// RecoveryReport summarizes what a warm start recovered.
type RecoveryReport struct {
	// TablesRecovered counts tables rebuilt from the manifest.
	TablesRecovered int
	// ChunksRecovered counts chunks that survived with at least one loaded
	// column — work the next scan does not redo.
	ChunksRecovered int
	// ChunksInvalidated counts loaded chunks dropped during recovery:
	// damaged or missing pages, table resets from a changed raw file, or
	// records that no longer applied.
	ChunksInvalidated int
	// RecoveryMS is the wall-clock duration of replay + verification.
	RecoveryMS int64
	// Replay echoes the manifest-level replay report (torn bytes etc.).
	Replay store.ReplayReport
}

// OpenDurable builds a Store on disk d by replaying the manifest, verifying
// recovered page blobs, and attaching the manifest as the store's journal.
func OpenDurable(d store.Disk, man *store.Manifest) (*Store, error) {
	start := time.Now()
	s := NewStore(d)
	recs, replayRep, err := man.Replay()
	if err != nil {
		return nil, fmt.Errorf("dbstore: replaying manifest: %w", err)
	}
	rep := RecoveryReport{Replay: replayRep}
	for _, r := range recs {
		s.applyRecord(r, &rep)
	}
	s.verifyPages(&rep)
	rep.TablesRecovered = len(s.tables)
	for _, t := range s.tables {
		for _, m := range t.chunks {
			if m != nil && m.LoadedAny() {
				rep.ChunksRecovered++
			}
		}
	}
	rep.RecoveryMS = time.Since(start).Milliseconds()
	s.rec = rep
	// Attach the journal last: replay must not re-append the records it is
	// reading.
	s.journal = man
	for _, t := range s.tables {
		t.journal = man
	}
	return s, nil
}

// RecoveryStats returns the recovery report from OpenDurable (zero for
// stores that did not warm-start).
func (s *Store) RecoveryStats() RecoveryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rec
}

// applyRecord applies one manifest record to the in-memory catalog. Records
// that no longer apply (wrong table, out-of-range ordinals, conflicting
// geometry) are skipped, not fatal: recovery must always produce a usable
// catalog from any CRC-valid prefix.
func (s *Store) applyRecord(r store.Record, rep *RecoveryReport) {
	if r.Type == store.RecTableCreate {
		sch, err := parseSchemaSpec(r.Schema)
		if err != nil {
			return
		}
		if t, ok := s.tables[r.Table]; ok {
			if t.schema.Equal(sch) && t.fp.SameContent(r.Fingerprint) && t.rawFile == r.RawFile {
				return // idempotent replay
			}
			// The raw file changed between the old incarnation and this
			// record: everything persisted for the old one is stale.
			rep.ChunksInvalidated += countLoadedChunks(t)
			delete(s.tables, r.Table)
		}
		t := &Table{name: r.Table, schema: sch, rawFile: r.RawFile, fp: r.Fingerprint, ckpt: &s.ckptMu}
		s.tables[r.Table] = t
		return
	}
	t, ok := s.tables[r.Table]
	if !ok {
		return
	}
	switch r.Type {
	case store.RecChunk:
		if _, err := t.ensureChunkLocked(r.Chunk, r.Rows, r.RawOff, r.RawLen); err != nil {
			rep.ChunksInvalidated++
		}
	case store.RecStats:
		_ = t.SetStats(r.Chunk, r.Col, statsFromRec(r.Stats))
	case store.RecLoaded:
		_ = t.markLoaded(r.Chunk, r.Cols)
	case store.RecComplete:
		_ = t.SetComplete()
	}
}

// verifyPages checks every loaded column's page blob and clears the loaded
// bit for pages that are missing or fail their checksum — those columns
// silently fall back to conversion from raw.
func (s *Store) verifyPages(rep *RecoveryReport) {
	for _, t := range s.tables {
		for _, m := range t.chunks {
			if m == nil {
				continue
			}
			damaged := false
			for c, loaded := range m.Loaded {
				if !loaded {
					continue
				}
				if !s.pageOK(t.name, m.ID, c) {
					m.Loaded[c] = false
					damaged = true
				}
			}
			if damaged {
				rep.ChunksInvalidated++
			}
		}
	}
}

// pageOK reports whether the page blob for (table, chunk, col) exists and
// passes its CRC.
func (s *Store) pageOK(table string, chunkID, col int) bool {
	p, err := s.disk.ReadBlob(pageName(table, chunkID, col))
	if err != nil {
		return false
	}
	_, err = openPage(p)
	return err == nil
}

// countLoadedChunks counts chunks with at least one loaded column.
func countLoadedChunks(t *Table) int {
	n := 0
	for _, m := range t.chunks {
		if m != nil && m.LoadedAny() {
			n++
		}
	}
	return n
}

// EnsureTable is the durable-store entry point for staging a raw file: it
// reuses a recovered table when the schema and raw-file fingerprint still
// match (the warm-start path), and otherwise drops any stale persisted state
// and registers the table fresh.
func (s *Store) EnsureTable(name string, sch *schema.Schema, rawFile string, fp store.Fingerprint) (*Table, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if ok {
		if t.schema.Equal(sch) && t.fp.SameContent(fp) && t.rawFile == rawFile {
			return t, nil
		}
		s.mu.Lock()
		s.rec.ChunksInvalidated += countLoadedChunks(t)
		s.mu.Unlock()
		s.DropTable(name)
	}
	return s.createTable(name, sch, rawFile, fp)
}

// Checkpoint compacts the journal: it snapshots the whole catalog as records
// and asks the journal to atomically replace its checkpoint with them. Held
// exclusively against every mutate+append pair (Table.ckpt), so the snapshot
// is guaranteed to cover every record the truncation discards.
func (s *Store) Checkpoint() error {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return j.Checkpoint(s.snapshotRecords())
}

// MaybeCheckpoint compacts when the journal has accumulated enough records
// since the last checkpoint. Called from the chunk-write path so compaction
// cost amortizes over conversion work.
func (s *Store) MaybeCheckpoint() error {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil || j.AppendsSinceCheckpoint() < checkpointThreshold {
		return nil
	}
	return s.Checkpoint()
}

// snapshotRecords serializes the entire catalog as an idempotent record
// sequence — replaying it from scratch reproduces the catalog.
func (s *Store) snapshotRecords() []store.Record {
	var recs []store.Record
	for _, t := range s.Tables() {
		t.mu.RLock()
		recs = append(recs, store.Record{
			Type: store.RecTableCreate, Table: t.name,
			RawFile: t.rawFile, Schema: schemaSpec(t.schema), Fingerprint: t.fp,
		})
		for _, m := range t.chunks {
			if m == nil {
				continue
			}
			recs = append(recs, store.Record{
				Type: store.RecChunk, Table: t.name,
				Chunk: m.ID, Rows: m.Rows, RawOff: m.RawOff, RawLen: m.RawLen,
			})
			for c, st := range m.Stats {
				if st.Valid {
					recs = append(recs, store.Record{
						Type: store.RecStats, Table: t.name,
						Chunk: m.ID, Col: c, Stats: statsToRec(st),
					})
				}
			}
			var loaded []int
			for c, l := range m.Loaded {
				if l {
					loaded = append(loaded, c)
				}
			}
			if len(loaded) > 0 {
				recs = append(recs, store.Record{
					Type: store.RecLoaded, Table: t.name,
					Chunk: m.ID, Cols: loaded,
				})
			}
		}
		if t.complete {
			recs = append(recs, store.Record{Type: store.RecComplete, Table: t.name})
		}
		t.mu.RUnlock()
	}
	return recs
}

// schemaSpec renders a schema as the "name:type,..." specification stored in
// RecTableCreate records.
func schemaSpec(sch *schema.Schema) string {
	var b strings.Builder
	for i, c := range sch.Columns() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(c.Type.String())
	}
	return b.String()
}

// parseSchemaSpec inverts schemaSpec.
func parseSchemaSpec(spec string) (*schema.Schema, error) {
	if spec == "" {
		return nil, fmt.Errorf("dbstore: empty schema specification")
	}
	var cols []schema.Column
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("dbstore: bad schema column %q", part)
		}
		ty, err := schema.ParseType(typ)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: name, Type: ty})
	}
	return schema.New(cols...)
}

// statsToRec converts catalog statistics to their serialized form.
func statsToRec(s ColStats) store.ColStatsRec {
	return store.ColStatsRec{
		Valid: s.Valid, Type: uint8(s.Type),
		MinInt: s.MinInt, MaxInt: s.MaxInt,
		MinFloat: s.MinFloat, MaxFloat: s.MaxFloat,
		MinStr: s.MinStr, MaxStr: s.MaxStr,
		Rows: s.Rows, Distinct: s.Distinct,
	}
}

// statsFromRec inverts statsToRec.
func statsFromRec(r store.ColStatsRec) ColStats {
	return ColStats{
		Valid: r.Valid, Type: schema.Type(r.Type),
		MinInt: r.MinInt, MaxInt: r.MaxInt,
		MinFloat: r.MinFloat, MaxFloat: r.MaxFloat,
		MinStr: r.MinStr, MaxStr: r.MaxStr,
		Rows: r.Rows, Distinct: r.Distinct,
	}
}
