package dbstore

import (
	"os"
	"path/filepath"
	"testing"

	"scanraw/internal/store"
)

// durableEnv opens a manifest + file disk in dir and builds the durable
// store over them, registering cleanup for the manifest.
func durableEnv(t *testing.T, dir string) (*Store, *store.Manifest) {
	t.Helper()
	fd, err := store.OpenFileDisk(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { man.Close() })
	s, err := OpenDurable(fd, man)
	if err != nil {
		t.Fatal(err)
	}
	return s, man
}

var testFP = store.Fingerprint{Size: 999, CRC: 0x1234, ModTimeNs: 7}

// populate stages a table and loads two full chunks plus stats through the
// normal write path.
func populate(t *testing.T, s *Store) *Table {
	t.Helper()
	tbl, err := s.EnsureTable("t", sch3, "raw/t.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		bc := fullChunk(t, id, 8)
		if err := tbl.EnsureChunk(id, 8, int64(id*100), 100); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < sch3.NumColumns(); c++ {
			if err := tbl.SetStats(id, c, CollectStats(bc.Column(c))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.WriteChunk(tbl, bc); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.SetComplete(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestDurableRecoversCatalog is the crash-and-restart core: populate, drop
// the store without a checkpoint (appends are already fsynced — this is a
// SIGKILL), reopen, and verify the catalog and the data both survive.
func TestDurableRecoversCatalog(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	populate(t, s)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	tbl2, err := s2.EnsureTable("t", sch3, "raw/t.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.RecoveryStats()
	if rec.TablesRecovered != 1 || rec.ChunksRecovered != 2 || rec.ChunksInvalidated != 0 {
		t.Errorf("recovery = %+v", rec)
	}
	if !tbl2.Complete() || tbl2.NumChunks() != 2 {
		t.Errorf("complete=%v chunks=%d", tbl2.Complete(), tbl2.NumChunks())
	}
	all := []int{0, 1, 2}
	for id := 0; id < 2; id++ {
		meta, ok := tbl2.Chunk(id)
		if !ok || !meta.LoadedAll(all) {
			t.Fatalf("chunk %d not fully loaded after recovery: %+v", id, meta)
		}
		if meta.Rows != 8 || meta.RawOff != int64(id*100) || meta.RawLen != 100 {
			t.Errorf("chunk %d geometry: %+v", id, meta)
		}
		if st := meta.Stats[0]; !st.Valid || st.MinInt != int64(id*1000) || st.MaxInt != int64(id*1000+7) {
			t.Errorf("chunk %d stats: %+v", id, st)
		}
		bc, err := s2.ReadChunk(tbl2, id, all)
		if err != nil {
			t.Fatal(err)
		}
		want := fullChunk(t, id, 8)
		for c := 0; c < 3; c++ {
			g, w := bc.Column(c), want.Column(c)
			if g.Len() != w.Len() {
				t.Fatalf("chunk %d col %d: %d rows, want %d", id, c, g.Len(), w.Len())
			}
		}
		if bc.Column(0).Ints[7] != int64(id*1000+7) {
			t.Errorf("chunk %d data wrong after recovery", id)
		}
	}
	if tbl2.Fingerprint() != testFP {
		t.Errorf("fingerprint = %+v", tbl2.Fingerprint())
	}
}

// TestDurableCheckpointEquivalence verifies a checkpointed manifest recovers
// to the same catalog as an un-checkpointed one, including mutations made
// after the checkpoint.
func TestDurableCheckpointEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	tbl := populate(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutation lands in the (now empty) log.
	if err := tbl.EnsureChunk(2, 4, 200, 50); err != nil {
		t.Fatal(err)
	}
	if n := man.AppendsSinceCheckpoint(); n != 1 {
		t.Errorf("appends since checkpoint = %d", n)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	tbl2, ok := s2.Table("t")
	if !ok {
		t.Fatal("table missing after checkpointed recovery")
	}
	if tbl2.NumChunks() != 3 || !tbl2.Complete() {
		t.Errorf("chunks=%d complete=%v", tbl2.NumChunks(), tbl2.Complete())
	}
	if rec := s2.RecoveryStats(); rec.ChunksRecovered != 2 {
		t.Errorf("recovery = %+v", rec)
	}
}

// TestDurableFingerprintChangeInvalidates stages the same table name against
// changed raw bytes: the persisted chunks must be dropped and the pages
// deleted.
func TestDurableFingerprintChangeInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	populate(t, s)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	changed := store.Fingerprint{Size: 1000, CRC: 0x9999}
	tbl2, err := s2.EnsureTable("t", sch3, "raw/t.csv", changed)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumChunks() != 0 || tbl2.Complete() {
		t.Errorf("stale state survived: chunks=%d complete=%v", tbl2.NumChunks(), tbl2.Complete())
	}
	if rec := s2.RecoveryStats(); rec.ChunksInvalidated < 2 {
		t.Errorf("ChunksInvalidated = %d, want >= 2", rec.ChunksInvalidated)
	}
	if pages := s2.Disk().List("db/t/"); len(pages) != 0 {
		t.Errorf("stale pages survived: %v", pages)
	}
	if tbl2.Fingerprint() != changed {
		t.Errorf("fingerprint = %+v", tbl2.Fingerprint())
	}
}

// TestDurablePageBitFlipInvalidatesChunk flips one byte inside a persisted
// page file: recovery must clear exactly that chunk's loaded state (forcing
// re-conversion from raw) and keep the undamaged chunk warm.
func TestDurablePageBitFlipInvalidatesChunk(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	populate(t, s)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt chunk 1, column 0's page on the real filesystem.
	page := filepath.Join(dir, "blobs", "db", "t", "00000001", "g0")
	raw, err := os.ReadFile(page)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(page, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	tbl2, ok := s2.Table("t")
	if !ok {
		t.Fatal("table missing")
	}
	m0, _ := tbl2.Chunk(0)
	m1, _ := tbl2.Chunk(1)
	if !m0.LoadedAll([]int{0, 1, 2}) {
		t.Errorf("undamaged chunk 0 lost its pages: %+v", m0.Loaded)
	}
	if m1.Loaded[0] {
		t.Error("damaged page still marked loaded")
	}
	if !m1.Loaded[1] || !m1.Loaded[2] {
		t.Errorf("undamaged columns of chunk 1 dropped: %+v", m1.Loaded)
	}
	rec := s2.RecoveryStats()
	if rec.ChunksRecovered != 2 || rec.ChunksInvalidated != 1 {
		t.Errorf("recovery = %+v", rec)
	}
	// Reading the surviving columns still works; the damaged one refuses.
	if _, err := s2.ReadChunk(tbl2, 1, []int{1, 2}); err != nil {
		t.Errorf("surviving columns unreadable: %v", err)
	}
	if _, err := s2.ReadChunk(tbl2, 1, []int{0}); err == nil {
		t.Error("damaged column should not be readable")
	}
}

// TestDurableMissingPageInvalidates deletes a page file outright.
func TestDurableMissingPageInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	populate(t, s)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "blobs", "db", "t", "00000000", "g2")); err != nil {
		t.Fatal(err)
	}
	s2, _ := durableEnv(t, dir)
	tbl2, _ := s2.Table("t")
	m0, _ := tbl2.Chunk(0)
	if m0.Loaded[2] {
		t.Error("missing page still marked loaded")
	}
	if !m0.Loaded[0] || !m0.Loaded[1] {
		t.Errorf("other columns dropped: %+v", m0.Loaded)
	}
}

// TestDurableTornManifestTail truncates the manifest mid-record: recovery
// keeps the valid prefix and the store stays fully usable.
func TestDurableTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	populate(t, s)
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "manifest.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	rec := s2.RecoveryStats()
	if rec.Replay.TornBytes == 0 {
		t.Error("torn tail not reported")
	}
	// The final record (RecComplete) was damaged; everything before it
	// (both chunks, fully loaded) must survive.
	tbl2, ok := s2.Table("t")
	if !ok {
		t.Fatal("table missing after torn-tail recovery")
	}
	if tbl2.Complete() {
		t.Error("completeness should have been in the torn tail")
	}
	if rec.ChunksRecovered != 2 {
		t.Errorf("ChunksRecovered = %d, want 2", rec.ChunksRecovered)
	}
	// The store keeps working: re-mark complete and read data back.
	if err := tbl2.SetComplete(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReadChunk(tbl2, 0, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableNonDurableUnaffected checks the nil-journal path: a plain
// NewStore over a simulated disk journals nothing and recovers nothing.
func TestDurableNonDurableUnaffected(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 4, 0, 40); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetComplete(); err != nil {
		t.Fatal(err)
	}
	if rec := s.RecoveryStats(); rec != (RecoveryReport{}) {
		t.Errorf("non-durable store has recovery stats: %+v", rec)
	}
	if err := s.Checkpoint(); err != nil {
		t.Errorf("Checkpoint on non-durable store: %v", err)
	}
}

// TestDurableSchemaSpecRoundTrip pins the schema wire format.
func TestDurableSchemaSpecRoundTrip(t *testing.T) {
	spec := schemaSpec(sch3)
	if spec != "a:BIGINT,b:DOUBLE,c:VARCHAR" {
		t.Errorf("schemaSpec = %q", spec)
	}
	back, err := parseSchemaSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(sch3) {
		t.Errorf("round trip lost schema: %s", back)
	}
	if _, err := parseSchemaSpec(""); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := parseSchemaSpec("a"); err == nil {
		t.Error("missing type should fail")
	}
}

// TestDurableTornColGroupRecord injects the crash window the
// data-before-metadata ordering leaves open: a column-group page reaches
// the disk but the process dies before its RecLoadedGroup record is
// appended. On restart the orphaned page must simply not exist as far as
// the catalog is concerned — the chunk's group is unloaded, reads refuse
// it, and rewriting the group lands cleanly over the orphan.
func TestDurableTornColGroupRecord(t *testing.T) {
	dir := t.TempDir()
	s, man := durableEnv(t, dir)
	tbl, err := s.EnsureTable("t", sch3, "raw/t.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.EnsureChunk(0, 8, 0, 100); err != nil {
		t.Fatal(err)
	}
	bc := fullChunk(t, 0, 8)
	if err := s.WriteChunkColumns(tbl, bc, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "manifest.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// The second write makes its page blobs durable first, then appends the
	// RecLoadedGroup record; truncating back to the pre-write size is the
	// crash between those two steps.
	if err := s.WriteChunkColumns(tbl, bc, []int{2}); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	tbl2, err := s2.EnsureTable("t", sch3, "raw/t.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.RecoveryStats(); rec.ChunksInvalidated != 0 {
		t.Errorf("orphaned page caused %d invalidations; it should be invisible", rec.ChunksInvalidated)
	}
	meta, ok := tbl2.Chunk(0)
	if !ok {
		t.Fatal("chunk lost")
	}
	if !meta.LoadedAll([]int{0, 1}) {
		t.Error("journaled group lost")
	}
	if meta.LoadedAll([]int{2}) {
		t.Fatal("unjournaled group reported loaded — metadata preceded data?")
	}
	if _, err := s2.ReadChunk(tbl2, 0, []int{0, 1, 2}); err == nil {
		t.Error("read of the unjournaled column should fail, not serve the orphan page")
	}
	// The rewrite path must tolerate the orphan blob already existing.
	if err := s2.WriteChunkColumns(tbl2, fullChunk(t, 0, 8), []int{2}); err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadChunk(tbl2, 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Column(2).Strs[4] != fullChunk(t, 0, 8).Column(2).Strs[4] {
		t.Error("rewritten group serves wrong data")
	}
}
