package dbstore

import (
	"math"
)

// HyperLogLog sketch for the "more advanced statistics such as the number
// of distinct elements" the paper says can be extracted during conversion
// (§3.3). 256 registers give a ~6.5% standard error — plenty for
// cardinality estimation — at 256 bytes per (chunk, column).

const (
	hllPrecision = 8 // 2^8 registers
	hllRegisters = 1 << hllPrecision
)

// HLL is a fixed-precision HyperLogLog sketch. The zero value is an empty
// sketch ready for use.
type HLL struct {
	reg [hllRegisters]uint8
}

// hash64 mixes a 64-bit value (SplitMix64 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString hashes bytes with FNV-1a then mixes.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return hash64(h)
}

// AddUint folds a hashed 64-bit value into the sketch.
func (h *HLL) AddUint(x uint64) { h.addHash(hash64(x)) }

// AddString folds a string value into the sketch.
func (h *HLL) AddString(s string) { h.addHash(hashString(s)) }

func (h *HLL) addHash(v uint64) {
	idx := v >> (64 - hllPrecision)
	rest := v << hllPrecision
	// Rank = leading zeros of the remaining bits + 1, capped.
	rank := uint8(1)
	for rest != 0 && rest&(1<<63) == 0 && rank < 64-hllPrecision {
		rank++
		rest <<= 1
	}
	if rest == 0 {
		rank = 64 - hllPrecision
	}
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Estimate returns the approximate number of distinct values added.
func (h *HLL) Estimate() int64 {
	const m = float64(hllRegisters)
	alpha := 0.7213 / (1 + 1.079/m)
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	// Small-range correction (linear counting).
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return int64(est + 0.5)
}

// Merge folds another sketch into h (union of the underlying sets).
func (h *HLL) Merge(o *HLL) {
	for i := range h.reg {
		if o.reg[i] > h.reg[i] {
			h.reg[i] = o.reg[i]
		}
	}
}
