package dbstore

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/store"
)

// prePR8Fixture is the checked-in on-disk state written by the store before
// column-group pages existed: one page blob per (chunk, column) under the
// bare-ordinal name, and a manifest whose loaded-markers are plain
// RecLoaded records. The compat tests open this directory (via a scratch
// copy), so the current decoder is exercised against frozen bytes — format
// drift cannot hide behind helpers that encode and decode with the same
// code revision.
const prePR8Fixture = "testdata/prepr8"

// writePrePR8Layout builds the legacy layout by hand: the byte formats
// (sealed pages, manifest framing) are unchanged since then, only the
// page naming and record types moved on. Run with REGEN_PREPR8=1 to
// regenerate the fixture; the committed bytes are the contract.
func writePrePR8Layout(t *testing.T, dir string) {
	t.Helper()
	fd, err := store.OpenFileDisk(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	recs := []store.Record{{
		Type: store.RecTableCreate, Table: "legacy",
		RawFile: "raw/legacy.csv", Schema: schemaSpec(sch3), Fingerprint: testFP,
	}}
	for id := 0; id < 2; id++ {
		bc := fullChunk(t, id, 8)
		recs = append(recs, store.Record{
			Type: store.RecChunk, Table: "legacy",
			Chunk: id, Rows: 8, RawOff: int64(id * 100), RawLen: 100,
		})
		for c := 0; c < sch3.NumColumns(); c++ {
			page := sealPage(chunk.EncodeVector(bc.Column(c)))
			if err := fd.WriteBlob(pageName("legacy", id, c), page); err != nil {
				t.Fatal(err)
			}
		}
		recs = append(recs, store.Record{
			Type: store.RecLoaded, Table: "legacy", Chunk: id, Cols: []int{0, 1, 2},
		})
	}
	recs = append(recs,
		store.Record{
			Type: store.RecStats, Table: "legacy", Chunk: 0, Col: 0,
			Stats: store.ColStatsRec{Valid: true, MinInt: 0, MaxInt: 7, Rows: 8, Distinct: 8},
		},
		store.Record{Type: store.RecComplete, Table: "legacy"},
	)
	if err := man.Append(recs...); err != nil {
		t.Fatal(err)
	}
}

func TestRegenPrePR8Fixture(t *testing.T) {
	if os.Getenv("REGEN_PREPR8") == "" {
		t.Skip("set REGEN_PREPR8=1 to regenerate the pre-colgroup fixture")
	}
	if err := os.RemoveAll(prePR8Fixture); err != nil {
		t.Fatal(err)
	}
	writePrePR8Layout(t, prePR8Fixture)
}

// copyTree copies the fixture into a scratch dir: recovery rewrites the
// manifest, and the checked-in bytes must stay pristine.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, in); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartPrePR8Fixture opens the frozen pre-colgroup directory: the
// per-column pages must recover as legacy groups, serve byte-identical
// data, and coexist with chunks written in the current group layout —
// including across a checkpoint, which must preserve the legacy marking.
func TestWarmStartPrePR8Fixture(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, prePR8Fixture, dir)

	s, man := durableEnv(t, dir)
	tbl, err := s.EnsureTable("legacy", sch3, "raw/legacy.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.RecoveryStats()
	if rec.ChunksRecovered != 2 || rec.ChunksInvalidated != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	all := []int{0, 1, 2}
	for id := 0; id < 2; id++ {
		meta, ok := tbl.Chunk(id)
		if !ok || !meta.LoadedAll(all) {
			t.Fatalf("chunk %d not loaded from fixture: %+v", id, meta)
		}
		if len(meta.Groups) == 0 || !meta.Groups[0].Legacy {
			t.Fatalf("chunk %d groups not marked legacy: %+v", id, meta.Groups)
		}
		bc, err := s.ReadChunk(tbl, id, all)
		if err != nil {
			t.Fatal(err)
		}
		want := fullChunk(t, id, 8)
		if bc.Column(0).Ints[7] != want.Column(0).Ints[7] || bc.Column(2).Strs[3] != want.Column(2).Strs[3] {
			t.Errorf("chunk %d data differs from fixture", id)
		}
	}
	if st, ok := tbl.Chunk(0); !ok || !st.Stats[0].Valid || st.Stats[0].MaxInt != 7 {
		t.Error("fixture stats lost")
	}
	if !tbl.Complete() {
		t.Error("fixture completeness lost")
	}

	// Grow the table with the current layout: width-2 group pages next to
	// the legacy per-column ones.
	s.SetGroupWidth(2)
	if err := tbl.EnsureChunk(2, 8, 200, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk(tbl, fullChunk(t, 2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableEnv(t, dir)
	tbl2, err := s2.EnsureTable("legacy", sch3, "raw/legacy.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.RecoveryStats(); rec.ChunksRecovered != 3 || rec.ChunksInvalidated != 0 {
		t.Fatalf("mixed-layout recovery = %+v", rec)
	}
	for id := 0; id < 3; id++ {
		meta, ok := tbl2.Chunk(id)
		if !ok || !meta.LoadedAll(all) {
			t.Fatalf("chunk %d not loaded after mixed-layout restart: %+v", id, meta)
		}
		wantLegacy := id < 2
		if meta.Groups[0].Legacy != wantLegacy {
			t.Errorf("chunk %d legacy = %v through checkpoint, want %v", id, meta.Groups[0].Legacy, wantLegacy)
		}
		bc, err := s2.ReadChunk(tbl2, id, all)
		if err != nil {
			t.Fatal(err)
		}
		if bc.Column(0).Ints[0] != int64(id*1000) {
			t.Errorf("chunk %d data wrong after mixed-layout restart", id)
		}
	}
}

// TestWarmStartPrePR8CorruptPageInvalidates damages one legacy per-column
// page in the fixture copy: recovery must cleanly invalidate that chunk
// (no panic, no bad bytes served) and keep the rest.
func TestWarmStartPrePR8CorruptPageInvalidates(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, prePR8Fixture, dir)
	victim := filepath.Join(dir, "blobs", "db", "legacy", "00000001", "0001")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, _ := durableEnv(t, dir)
	tbl, err := s.EnsureTable("legacy", sch3, "raw/legacy.csv", testFP)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.RecoveryStats()
	if rec.ChunksInvalidated != 1 {
		t.Fatalf("ChunksInvalidated = %d, want 1", rec.ChunksInvalidated)
	}
	all := []int{0, 1, 2}
	if meta, ok := tbl.Chunk(1); ok && meta.LoadedAll(all) {
		t.Error("chunk with damaged page still reports loaded")
	}
	if meta, ok := tbl.Chunk(0); !ok || !meta.LoadedAll(all) {
		t.Error("undamaged chunk lost")
	}
	if _, err := s.ReadChunk(tbl, 0, all); err != nil {
		t.Fatal(err)
	}
}
