package dbstore

import (
	"encoding/binary"
	"fmt"
	"strings"

	"scanraw/internal/chunk"
)

// Column-group pages. A page holds the vectors of a *set* of columns of one
// chunk, and the set is encoded in the page's blob name, so the on-disk
// layout is self-describing: recovery learns each page's column membership
// from the journal (RecLoadedGroup records carry the ordinals) and the page
// name is derived deterministically from that set. The group width is a
// store-level policy knob (SetGroupWidth): width 1 reproduces the classic
// one-page-per-column layout, larger widths amortize per-page overhead for
// columns that are always queried together, and width 0 stores the whole
// chunk as a single full-width page (the layout the source paper describes,
// kept as the benchmark baseline).
//
// Pages written before column groups existed (one blob per column, named by
// the bare ordinal) replay as *legacy* singleton groups and remain readable;
// see GroupState.Legacy.

// maxGroupCols bounds a decoded group's column count; mirrors the store
// package's record limits. A key exceeding it is corruption, not data.
const maxGroupCols = 1 << 14

// EncodeColGroupKey renders a strictly-increasing list of column ordinals
// as the compact key used in page blob names: maximal runs of consecutive
// ordinals render as "lo-hi", singletons as the bare ordinal, joined by
// ".". For example {0,1,2,5} encodes as "0-2.5".
func EncodeColGroupKey(cols []int) string {
	var b strings.Builder
	for i := 0; i < len(cols); {
		j := i
		for j+1 < len(cols) && cols[j+1] == cols[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", cols[i])
		if j > i {
			fmt.Fprintf(&b, "-%d", cols[j])
		}
		i = j + 1
	}
	return b.String()
}

// DecodeColGroupKey inverts EncodeColGroupKey. It is total and strict: any
// input either yields the unique strictly-increasing ordinal list that
// re-encodes to the same key, or an error — never a panic. Strictness makes
// the key canonical, so one column set maps to exactly one page name.
func DecodeColGroupKey(key string) ([]int, error) {
	if key == "" {
		return nil, fmt.Errorf("dbstore: empty column-group key")
	}
	var cols []int
	prev := -1
	for _, part := range strings.Split(key, ".") {
		lo, hi, err := parseKeyRange(part)
		if err != nil {
			return nil, err
		}
		if lo <= prev {
			return nil, fmt.Errorf("dbstore: column-group key %q not strictly increasing", key)
		}
		if lo == prev+1 && prev >= 0 {
			// "0.1" must have been written "0-1": reject non-canonical keys.
			return nil, fmt.Errorf("dbstore: column-group key %q is not canonical", key)
		}
		if len(cols)+(hi-lo+1) > maxGroupCols {
			return nil, fmt.Errorf("dbstore: column-group key %q exceeds %d columns", key, maxGroupCols)
		}
		for c := lo; c <= hi; c++ {
			cols = append(cols, c)
		}
		prev = hi
	}
	return cols, nil
}

// parseKeyRange parses one "lo" or "lo-hi" key segment.
func parseKeyRange(part string) (lo, hi int, err error) {
	loStr, hiStr, isRange := strings.Cut(part, "-")
	if lo, err = parseKeyOrdinal(loStr); err != nil {
		return 0, 0, err
	}
	if !isRange {
		return lo, lo, nil
	}
	if hi, err = parseKeyOrdinal(hiStr); err != nil {
		return 0, 0, err
	}
	if hi <= lo {
		return 0, 0, fmt.Errorf("dbstore: bad column-group range %q", part)
	}
	return lo, hi, nil
}

// parseKeyOrdinal parses a decimal ordinal with no sign, no leading zeros
// (except "0" itself), and a bound that keeps allocations sane.
func parseKeyOrdinal(s string) (int, error) {
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return 0, fmt.Errorf("dbstore: bad column ordinal %q in group key", s)
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("dbstore: bad column ordinal %q in group key", s)
		}
		n = n*10 + int(c-'0')
		if n >= maxGroupCols {
			return 0, fmt.Errorf("dbstore: column ordinal %q exceeds limit", s)
		}
	}
	return n, nil
}

// groupPageName is the blob name of a column-group page. The "g" prefix
// keeps the new key space disjoint from legacy per-column pages ("%04d").
func groupPageName(table string, chunkID int, cols []int) string {
	return fmt.Sprintf("db/%s/%08d/g%s", table, chunkID, EncodeColGroupKey(cols))
}

// encodeGroupPage serializes the listed columns of bc as one page payload:
// a column count, then per column its ordinal, encoded-vector length, and
// the chunk package's vector encoding. The payload is sealed with the same
// CRC wrapper as every other page.
func encodeGroupPage(bc *chunk.BinaryChunk, cols []int) ([]byte, error) {
	buf := binary.AppendUvarint(nil, uint64(len(cols)))
	for _, c := range cols {
		v := bc.Column(c)
		if v == nil {
			return nil, fmt.Errorf("dbstore: chunk %d column %d not present in binary chunk", bc.ID, c)
		}
		enc := chunk.EncodeVector(v)
		buf = binary.AppendUvarint(buf, uint64(c))
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// groupPageCol is one column slice of a decoded group page: the ordinal and
// its still-encoded vector bytes, so readers decode only the columns they
// need.
type groupPageCol struct {
	col int
	enc []byte
}

// decodeGroupPage splits a group-page payload into per-column encoded
// vectors without decoding them.
func decodeGroupPage(payload []byte) ([]groupPageCol, error) {
	n, off := binary.Uvarint(payload)
	if off <= 0 || n > maxGroupCols {
		return nil, fmt.Errorf("dbstore: bad group page column count")
	}
	out := make([]groupPageCol, 0, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		c, k := binary.Uvarint(payload[off:])
		if k <= 0 || c > maxGroupCols {
			return nil, fmt.Errorf("dbstore: bad group page ordinal")
		}
		off += k
		l, k := binary.Uvarint(payload[off:])
		if k <= 0 {
			return nil, fmt.Errorf("dbstore: bad group page vector length")
		}
		off += k
		if uint64(len(payload)-off) < l {
			return nil, fmt.Errorf("dbstore: group page truncated")
		}
		out = append(out, groupPageCol{col: int(c), enc: payload[off : off+int(l)]})
		off += int(l)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("dbstore: %d trailing bytes in group page", len(payload)-off)
	}
	return out, nil
}

// GroupPartition splits the ordinals [0, ncols) into consecutive groups of
// the given width. Width <= 0 (full-width) or >= ncols yields one group.
func GroupPartition(ncols, width int) [][]int {
	if ncols <= 0 {
		return nil
	}
	if width <= 0 || width >= ncols {
		width = ncols
	}
	groups := make([][]int, 0, (ncols+width-1)/width)
	for lo := 0; lo < ncols; lo += width {
		hi := min(lo+width, ncols)
		g := make([]int, hi-lo)
		for i := range g {
			g[i] = lo + i
		}
		groups = append(groups, g)
	}
	return groups
}

// SetGroupWidth sets the store's column-group width for subsequently
// written pages: how many consecutive schema ordinals share one page blob.
// 1 (the default) gives one page per column; values <= 0 select full-width
// groups (the whole chunk in a single page). Already-written pages keep
// their recorded grouping — reads cover a request from whatever mix of
// group pages the catalog knows about.
func (s *Store) SetGroupWidth(w int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w < 0 {
		w = 0
	}
	s.groupWidth = w
}

// GroupWidth returns the store's current column-group width (0 =
// full-width).
func (s *Store) GroupWidth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.groupWidth
}

// GroupClosure rounds a sorted requested-column set up to the store's
// group-partition boundaries: every returned partition group intersecting
// cols is included whole. Conversion uses the closure so newly converted
// chunks always carry complete groups and every group page is writable.
// With the default width 1 the closure is the request itself.
func (s *Store) GroupClosure(t *Table, cols []int) []int {
	n := t.Schema().NumColumns()
	w := s.GroupWidth()
	if w == 1 || n == 0 {
		return cols
	}
	if w <= 0 || w >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	inGroup := make([]bool, (n+w-1)/w)
	for _, c := range cols {
		if c >= 0 && c < n {
			inGroup[c/w] = true
		}
	}
	var out []int
	for g, in := range inGroup {
		if !in {
			continue
		}
		for c := g * w; c < min((g+1)*w, n); c++ {
			out = append(out, c)
		}
	}
	return out
}

// writeGroups partitions a requested column set along the store's
// group-partition boundaries and drops groups whose columns are already
// loaded (their pages exist; rewriting them is wasted I/O — and it is what
// makes partial-width conversion write only the missing groups).
func (s *Store) writeGroups(t *Table, chunkID int, cols []int) [][]int {
	meta, ok := t.Chunk(chunkID)
	if !ok {
		return nil
	}
	n := t.Schema().NumColumns()
	w := s.GroupWidth()
	if w <= 0 || w > n {
		w = n
	}
	byGroup := make(map[int][]int)
	var order []int
	for _, c := range cols {
		g := c / w
		if _, seen := byGroup[g]; !seen {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], c)
	}
	out := make([][]int, 0, len(order))
	for _, g := range order {
		gc := byGroup[g]
		if meta.LoadedAll(gc) {
			continue
		}
		out = append(out, gc)
	}
	return out
}
