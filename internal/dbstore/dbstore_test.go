package dbstore

import (
	"strings"
	"sync"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

var sch3 = schema.MustNew(
	schema.Column{Name: "a", Type: schema.Int64},
	schema.Column{Name: "b", Type: schema.Float64},
	schema.Column{Name: "c", Type: schema.Str},
)

func newTestStore(t *testing.T) (*Store, *Table) {
	t.Helper()
	s := NewStore(vdisk.Unlimited())
	tbl, err := s.CreateTable("t", sch3, "raw/t.csv")
	if err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func fullChunk(t *testing.T, id, rows int) *chunk.BinaryChunk {
	t.Helper()
	bc := chunk.NewBinary(sch3, id, rows)
	vi := chunk.NewVector(schema.Int64, rows)
	vf := chunk.NewVector(schema.Float64, rows)
	vs := chunk.NewVector(schema.Str, rows)
	for i := 0; i < rows; i++ {
		vi.Ints[i] = int64(id*1000 + i)
		vf.Floats[i] = float64(i) / 2
		vs.Strs[i] = strings.Repeat("x", i%3+1)
	}
	for i, v := range []*chunk.Vector{vi, vf, vs} {
		if err := bc.SetColumn(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return bc
}

func TestCreateTable(t *testing.T) {
	s := NewStore(vdisk.Unlimited())
	if _, err := s.CreateTable("", sch3, "raw"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.CreateTable("t", sch3, "raw"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", sch3, "raw"); err == nil {
		t.Error("duplicate table should fail")
	}
	tbl, ok := s.Table("t")
	if !ok || tbl.Name() != "t" || tbl.RawFile() != "raw" || !tbl.Schema().Equal(sch3) {
		t.Errorf("Table lookup wrong: %+v %v", tbl, ok)
	}
	if _, ok := s.Table("missing"); ok {
		t.Error("missing table should not be found")
	}
}

func TestEnsureChunk(t *testing.T) {
	_, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(2, 10, 200, 100); err != nil {
		t.Fatal(err)
	}
	if tbl.NumChunks() != 3 {
		t.Errorf("NumChunks = %d, want 3 (sparse registration)", tbl.NumChunks())
	}
	if _, ok := tbl.Chunk(0); ok {
		t.Error("chunk 0 was never registered")
	}
	m, ok := tbl.Chunk(2)
	if !ok || m.Rows != 10 || m.RawOff != 200 || m.RawLen != 100 {
		t.Errorf("Chunk(2) = %+v, %v", m, ok)
	}
	// Idempotent re-registration.
	if err := tbl.EnsureChunk(2, 10, 200, 100); err != nil {
		t.Errorf("idempotent EnsureChunk failed: %v", err)
	}
	// Conflicting geometry fails.
	if err := tbl.EnsureChunk(2, 11, 200, 100); err == nil {
		t.Error("conflicting geometry should fail")
	}
	if _, ok := tbl.Chunk(-1); ok {
		t.Error("negative id should not resolve")
	}
}

func TestChunkMetaIsolation(t *testing.T) {
	_, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 5, 0, 50); err != nil {
		t.Fatal(err)
	}
	m, _ := tbl.Chunk(0)
	m.Loaded[0] = true // mutate the copy
	m2, _ := tbl.Chunk(0)
	if m2.Loaded[0] {
		t.Error("Chunk must return isolated copies")
	}
}

func TestWriteReadChunk(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 4, 0, 40); err != nil {
		t.Fatal(err)
	}
	bc := fullChunk(t, 0, 4)
	if err := s.WriteChunk(tbl, bc); err != nil {
		t.Fatal(err)
	}
	m, _ := tbl.Chunk(0)
	if !m.LoadedAll([]int{0, 1, 2}) {
		t.Fatalf("all columns should be loaded: %+v", m.Loaded)
	}
	got, err := s.ReadChunk(tbl, 0, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 4 || got.Has(1) {
		t.Errorf("ReadChunk shape wrong: rows=%d has1=%v", got.Rows, got.Has(1))
	}
	if got.Column(0).Ints[3] != 3 {
		t.Errorf("col0[3] = %d", got.Column(0).Ints[3])
	}
	if got.Column(2).Strs[2] != strings.Repeat("x", 3) {
		t.Errorf("col2[2] = %q", got.Column(2).Strs[2])
	}
}

func TestPartialColumnLoading(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 2, 0, 20); err != nil {
		t.Fatal(err)
	}
	bc := fullChunk(t, 0, 2)
	// Load only column 0.
	if err := s.WriteChunkColumns(tbl, bc, []int{0}); err != nil {
		t.Fatal(err)
	}
	m, _ := tbl.Chunk(0)
	if !m.Loaded[0] || m.Loaded[1] || m.Loaded[2] {
		t.Fatalf("Loaded = %v, want only col 0", m.Loaded)
	}
	if _, err := s.ReadChunk(tbl, 0, []int{0, 1}); err == nil {
		t.Error("reading an unloaded column should fail")
	}
	if _, err := s.ReadChunk(tbl, 0, []int{0}); err != nil {
		t.Errorf("reading the loaded column failed: %v", err)
	}
	// Later: load the rest (schema expansion à la column store).
	if err := s.WriteChunkColumns(tbl, bc, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadChunk(tbl, 0, []int{0, 1, 2}); err != nil {
		t.Errorf("full read after expansion failed: %v", err)
	}
}

func TestWriteChunkErrors(t *testing.T) {
	s, tbl := newTestStore(t)
	bc := fullChunk(t, 0, 4)
	// Unregistered chunk.
	if err := s.WriteChunk(tbl, bc); err == nil {
		t.Error("writing an unregistered chunk should fail")
	}
	if err := tbl.EnsureChunk(0, 5, 0, 40); err != nil {
		t.Fatal(err)
	}
	// Row mismatch vs catalog.
	if err := s.WriteChunk(tbl, bc); err == nil {
		t.Error("row-count mismatch should fail")
	}
	// Absent column.
	if err := tbl.EnsureChunk(1, 3, 40, 30); err != nil {
		t.Fatal(err)
	}
	empty := chunk.NewBinary(sch3, 1, 3)
	if err := s.WriteChunkColumns(tbl, empty, []int{0}); err == nil {
		t.Error("writing an absent column should fail")
	}
}

func TestLoadedChunksAndFullyLoaded(t *testing.T) {
	s, tbl := newTestStore(t)
	for id := 0; id < 3; id++ {
		if err := tbl.EnsureChunk(id, 2, int64(id*20), 20); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.FullyLoaded() {
		t.Error("nothing loaded yet")
	}
	for id := 0; id < 3; id++ {
		if err := s.WriteChunk(tbl, fullChunk(t, id, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.CountLoaded([]int{0, 1, 2}); got != 3 {
		t.Errorf("CountLoaded = %d", got)
	}
	if tbl.FullyLoaded() {
		t.Error("FullyLoaded requires Complete()")
	}
	tbl.SetComplete()
	if !tbl.Complete() || !tbl.FullyLoaded() {
		t.Error("table should now be fully loaded")
	}
}

func TestScan(t *testing.T) {
	s, tbl := newTestStore(t)
	for id := 0; id < 4; id++ {
		if err := tbl.EnsureChunk(id, 2, int64(id*20), 20); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteChunk(tbl, fullChunk(t, id, 2)); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int
	var sum int64
	err := s.Scan(tbl, []int{0}, func(bc *chunk.BinaryChunk) error {
		ids = append(ids, bc.ID)
		for _, x := range bc.Column(0).Ints {
			sum += x
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || ids[0] != 0 || ids[3] != 3 {
		t.Errorf("scan order = %v", ids)
	}
	// Expected: sum over id*1000 + i for i in 0..1.
	var want int64
	for id := 0; id < 4; id++ {
		want += int64(id*1000) + int64(id*1000+1)
	}
	if sum != want {
		t.Errorf("scan sum = %d, want %d", sum, want)
	}
}

func TestDropTable(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 2, 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk(tbl, fullChunk(t, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if pages := s.Disk().List("db/t/"); len(pages) == 0 {
		t.Fatal("pages should exist before drop")
	}
	s.DropTable("t")
	if _, ok := s.Table("t"); ok {
		t.Error("table should be gone")
	}
	if pages := s.Disk().List("db/t/"); len(pages) != 0 {
		t.Errorf("pages remain after drop: %v", pages)
	}
	s.DropTable("t") // no-op
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 4, 0, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk(tbl, fullChunk(t, 0, 4)); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the stored page.
	name := groupPageName("t", 0, []int{0})
	p, err := s.Disk().ReadBlob(name)
	if err != nil {
		t.Fatal(err)
	}
	p[len(p)-1] ^= 0xFF
	s.Disk().Preload(name, p)
	if _, err := s.ReadChunk(tbl, 0, []int{0}); err == nil {
		t.Fatal("corrupted page should fail the checksum")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("err = %v, want checksum mismatch", err)
	}
	// Other columns are unaffected.
	if _, err := s.ReadChunk(tbl, 0, []int{1, 2}); err != nil {
		t.Errorf("untouched columns failed: %v", err)
	}
	// Truncated page.
	s.Disk().Preload(name, []byte{1, 2})
	if _, err := s.ReadChunk(tbl, 0, []int{0}); err == nil {
		t.Error("truncated page should fail")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	s, tbl := newTestStore(t)
	if err := tbl.EnsureChunk(0, 2, 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk(tbl, fullChunk(t, 0, 2)); err != nil {
		t.Fatal(err)
	}
	st := CollectStats(fullChunk(t, 0, 2).Column(0))
	if err := tbl.SetStats(0, 0, st); err != nil {
		t.Fatal(err)
	}
	tbl.SetComplete()
	if err := s.SaveCatalog(); err != nil {
		t.Fatal(err)
	}

	// Reopen on the same disk.
	s2 := NewStore(s.Disk())
	if err := s2.LoadCatalog(); err != nil {
		t.Fatal(err)
	}
	tbl2, ok := s2.Table("t")
	if !ok {
		t.Fatal("table missing after reload")
	}
	if !tbl2.Schema().Equal(sch3) || tbl2.RawFile() != "raw/t.csv" || !tbl2.Complete() {
		t.Errorf("reloaded table wrong: %v %q", tbl2.Schema(), tbl2.RawFile())
	}
	m, ok := tbl2.Chunk(0)
	if !ok || !m.LoadedAll([]int{0, 1, 2}) {
		t.Fatalf("reloaded chunk meta wrong: %+v %v", m, ok)
	}
	if !m.Stats[0].Valid || m.Stats[0].MinInt != 0 || m.Stats[0].MaxInt != 1 {
		t.Errorf("reloaded stats wrong: %+v", m.Stats[0])
	}
	// Pages are still readable through the new store.
	if _, err := s2.ReadChunk(tbl2, 0, []int{0, 1, 2}); err != nil {
		t.Errorf("reading pages through reloaded catalog: %v", err)
	}
}

func TestLoadCatalogMissing(t *testing.T) {
	s := NewStore(vdisk.Unlimited())
	if err := s.LoadCatalog(); err == nil {
		t.Error("loading a missing catalog should fail")
	}
}

func TestConcurrentCatalogUpdates(t *testing.T) {
	s, tbl := newTestStore(t)
	const chunks = 32
	var wg sync.WaitGroup
	for id := 0; id < chunks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := tbl.EnsureChunk(id, 2, int64(id*20), 20); err != nil {
				t.Error(err)
				return
			}
			bc := fullChunk(t, id, 2)
			if err := s.WriteChunk(tbl, bc); err != nil {
				t.Error(err)
				return
			}
			if err := tbl.SetStats(id, 0, CollectStats(bc.Column(0))); err != nil {
				t.Error(err)
			}
		}(id)
	}
	wg.Wait()
	if got := tbl.CountLoaded([]int{0, 1, 2}); got != chunks {
		t.Errorf("loaded = %d, want %d", got, chunks)
	}
	for id := 0; id < chunks; id++ {
		m, ok := tbl.Chunk(id)
		if !ok || !m.Stats[0].Valid {
			t.Errorf("chunk %d metadata incomplete", id)
		}
	}
}

func TestSetStatsErrors(t *testing.T) {
	_, tbl := newTestStore(t)
	if err := tbl.SetStats(0, 0, ColStats{}); err == nil {
		t.Error("stats on unknown chunk should fail")
	}
	if err := tbl.EnsureChunk(0, 1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetStats(0, 9, ColStats{}); err == nil {
		t.Error("stats on out-of-range column should fail")
	}
}
