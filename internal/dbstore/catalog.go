package dbstore

import (
	"encoding/json"
	"fmt"

	"scanraw/internal/schema"
)

// Catalog persistence. The paper's WRITE thread "updates the catalog
// metadata accordingly" after every load; persisting the catalog lets a
// store be reopened with its loaded-chunk bookkeeping and statistics
// intact, so a restarted SCANRAW instance resumes partial loading instead
// of starting over.

const catalogBlob = "db/_catalog"

type catalogJSON struct {
	Tables []tableJSON `json:"tables"`
}

type tableJSON struct {
	Name     string       `json:"name"`
	RawFile  string       `json:"raw_file"`
	Columns  []columnJSON `json:"columns"`
	Complete bool         `json:"complete"`
	Chunks   []*ChunkMeta `json:"chunks"`
}

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// SaveCatalog serializes the catalog to the disk. The write is throttled
// like any other database write; catalogs are small so the cost is
// negligible.
func (s *Store) SaveCatalog() error {
	s.mu.RLock()
	cat := catalogJSON{}
	for _, t := range s.tables {
		t.mu.RLock()
		tj := tableJSON{
			Name:     t.name,
			RawFile:  t.rawFile,
			Complete: t.complete,
		}
		for _, c := range t.schema.Columns() {
			tj.Columns = append(tj.Columns, columnJSON{Name: c.Name, Type: c.Type.String()})
		}
		for _, m := range t.chunks {
			if m == nil {
				tj.Chunks = append(tj.Chunks, nil)
				continue
			}
			tj.Chunks = append(tj.Chunks, m.clone())
		}
		t.mu.RUnlock()
		cat.Tables = append(cat.Tables, tj)
	}
	s.mu.RUnlock()

	p, err := json.Marshal(cat)
	if err != nil {
		return fmt.Errorf("dbstore: marshaling catalog: %w", err)
	}
	return s.disk.WriteBlob(catalogBlob, p)
}

// LoadCatalog rebuilds the catalog from the disk, replacing the in-memory
// table map. Page blobs are untouched; only metadata is read.
func (s *Store) LoadCatalog() error {
	p, err := s.disk.ReadBlob(catalogBlob)
	if err != nil {
		return fmt.Errorf("dbstore: reading catalog: %w", err)
	}
	var cat catalogJSON
	if err := json.Unmarshal(p, &cat); err != nil {
		return fmt.Errorf("dbstore: parsing catalog: %w", err)
	}
	tables := make(map[string]*Table, len(cat.Tables))
	for _, tj := range cat.Tables {
		cols := make([]schema.Column, 0, len(tj.Columns))
		for _, cj := range tj.Columns {
			ty, err := schema.ParseType(cj.Type)
			if err != nil {
				return fmt.Errorf("dbstore: catalog table %q: %w", tj.Name, err)
			}
			cols = append(cols, schema.Column{Name: cj.Name, Type: ty})
		}
		sch, err := schema.New(cols...)
		if err != nil {
			return fmt.Errorf("dbstore: catalog table %q: %w", tj.Name, err)
		}
		t := &Table{name: tj.Name, schema: sch, rawFile: tj.RawFile, complete: tj.Complete}
		ncol := sch.NumColumns()
		for _, m := range tj.Chunks {
			if m != nil && (len(m.Stats) != ncol || len(m.Loaded) != ncol) {
				return fmt.Errorf("dbstore: catalog chunk %d of %q has inconsistent column counts", m.ID, tj.Name)
			}
			t.chunks = append(t.chunks, m)
		}
		tables[tj.Name] = t
	}
	s.mu.Lock()
	s.tables = tables
	s.mu.Unlock()
	return nil
}
