package dbstore

import (
	"testing"
	"testing/quick"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

func TestCollectStatsInt(t *testing.T) {
	v := chunk.NewVector(schema.Int64, 4)
	v.Ints = []int64{5, -3, 8, 0}
	s := CollectStats(v)
	if !s.Valid || s.MinInt != -3 || s.MaxInt != 8 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCollectStatsFloat(t *testing.T) {
	v := chunk.NewVector(schema.Float64, 3)
	v.Floats = []float64{1.5, -0.5, 0}
	s := CollectStats(v)
	if !s.Valid || s.MinFloat != -0.5 || s.MaxFloat != 1.5 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCollectStatsStr(t *testing.T) {
	v := chunk.NewVector(schema.Str, 3)
	v.Strs = []string{"m", "a", "z"}
	s := CollectStats(v)
	if !s.Valid || s.MinStr != "a" || s.MaxStr != "z" {
		t.Errorf("stats = %+v", s)
	}
}

func TestCollectStatsEmpty(t *testing.T) {
	v := chunk.NewVector(schema.Int64, 0)
	if s := CollectStats(v); s.Valid {
		t.Error("empty vector should yield invalid stats")
	}
}

func TestMayContainInt(t *testing.T) {
	v := chunk.NewVector(schema.Int64, 2)
	v.Ints = []int64{10, 20}
	s := CollectStats(v)
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 5, false},
		{0, 10, true},
		{15, 17, true},
		{20, 30, true},
		{21, 30, false},
		{0, 100, true},
	}
	for _, c := range cases {
		if got := s.MayContainInt(c.lo, c.hi); got != c.want {
			t.Errorf("MayContainInt(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	// Invalid stats are conservative.
	if !(ColStats{}).MayContainInt(0, 0) {
		t.Error("invalid stats must conservatively return true")
	}
	// Wrong type is conservative.
	f := chunk.NewVector(schema.Float64, 1)
	if !CollectStats(f).MayContainInt(99, 100) {
		t.Error("wrong-typed stats must conservatively return true")
	}
}

func TestMayContainFloat(t *testing.T) {
	v := chunk.NewVector(schema.Float64, 2)
	v.Floats = []float64{1.0, 2.0}
	s := CollectStats(v)
	if s.MayContainFloat(2.1, 3) {
		t.Error("range above max should be excluded")
	}
	if !s.MayContainFloat(0, 1) {
		t.Error("range touching min should match")
	}
	if !(ColStats{}).MayContainFloat(0, 0) {
		t.Error("invalid stats must conservatively return true")
	}
}

// Property: every value in the vector is within [Min, Max], and
// MayContainInt never excludes a range containing an actual value.
func TestStatsSoundnessProperty(t *testing.T) {
	f := func(vals []int64, lo, hi int64) bool {
		if len(vals) == 0 {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		v := &chunk.Vector{Type: schema.Int64, Ints: vals}
		s := CollectStats(v)
		for _, x := range vals {
			if x < s.MinInt || x > s.MaxInt {
				return false
			}
			if x >= lo && x <= hi && !s.MayContainInt(lo, hi) {
				return false // unsound exclusion
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
