// Package schema defines the logical types, columns, and relation schemas
// shared by every layer of the system: the raw-file tokenizer and parser,
// the binary chunk representation, the database storage, and the query
// engine.
//
// The type system is deliberately small — the paper's workloads use
// unsigned-integer CSV files and tab-delimited SAM text — but it is the
// single source of truth for how a raw-text attribute maps to a processing
// representation.
package schema

import (
	"fmt"
	"strings"
)

// Type enumerates the column types supported by the processing
// representation. Int64 covers the paper's uint32 synthetic data, Float64
// covers numeric SAM optional fields, and Str covers everything textual
// (QNAME, CIGAR, sequences, ...).
type Type uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a 64-bit IEEE-754 floating point column.
	Float64
	// Str is a variable-length string column.
	Str
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Str:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined types.
func (t Type) Valid() bool { return t <= Str }

// ParseType converts a SQL-ish type name into a Type. It accepts the
// canonical names produced by Type.String plus common aliases, case
// insensitively.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BIGINT", "INT", "INTEGER", "INT64", "LONG":
		return Int64, nil
	case "DOUBLE", "FLOAT", "FLOAT64", "REAL":
		return Float64, nil
	case "VARCHAR", "STRING", "TEXT", "CHAR":
		return Str, nil
	default:
		return 0, fmt.Errorf("schema: unknown type %q", s)
	}
}

// Column describes one attribute of a relation.
type Column struct {
	// Name is the attribute name, unique within a schema.
	Name string
	// Type is the processing-representation type of the attribute.
	Type Type
}

// Schema is an ordered list of columns describing tuples extracted from a
// raw file. A Schema is immutable after construction; all accessors are
// safe for concurrent use.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// New constructs a Schema from the given columns. It returns an error when
// the column list is empty, a name is blank or duplicated, or a type is
// invalid.
func New(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: empty column list")
	}
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if !c.Type.Valid() {
			return nil, fmt.Errorf("schema: column %q has invalid type", c.Name)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate column name %q", c.Name)
		}
		byName[c.Name] = i
	}
	return &Schema{cols: append([]Column(nil), cols...), byName: byName}, nil
}

// MustNew is like New but panics on error. It is intended for statically
// known schemas (tests, format definitions).
func MustNew(cols ...Column) *Schema {
	s, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Uniform builds an n-column schema where every column has the same type t
// and names follow the pattern prefix0, prefix1, ... It models the paper's
// synthetic CSV suite (c0..c63 unsigned integers).
func Uniform(n int, t Type, prefix string) (*Schema, error) {
	if n <= 0 {
		return nil, fmt.Errorf("schema: uniform schema needs n > 0, got %d", n)
	}
	cols := make([]Column, n)
	for i := range cols {
		cols[i] = Column{Name: fmt.Sprintf("%s%d", prefix, i), Type: t}
	}
	return New(cols...)
}

// NumColumns returns the number of columns in the schema.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column. It panics when i is out of range, matching
// slice semantics.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Project returns a new schema containing only the columns at the given
// ordinal positions, in the given order.
func (s *Schema) Project(idxs []int) (*Schema, error) {
	cols := make([]Column, 0, len(idxs))
	for _, i := range idxs {
		if i < 0 || i >= len(s.cols) {
			return nil, fmt.Errorf("schema: projection index %d out of range [0,%d)", i, len(s.cols))
		}
		cols = append(cols, s.cols[i])
	}
	return New(cols...)
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
