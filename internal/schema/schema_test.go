package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{Int64, "BIGINT"},
		{Float64, "DOUBLE"},
		{Str, "VARCHAR"},
		{Type(42), "Type(42)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Type(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, ty := range []Type{Int64, Float64, Str} {
		got, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", ty.String(), err)
		}
		if got != ty {
			t.Errorf("ParseType(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
}

func TestParseTypeAliases(t *testing.T) {
	cases := map[string]Type{
		"int": Int64, "Integer": Int64, "LONG": Int64,
		"float": Float64, "real": Float64,
		"text": Str, " string ": Str,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := New(Column{Name: "", Type: Int64}); err == nil {
		t.Error("blank name should fail")
	}
	if _, err := New(Column{Name: "a", Type: Type(9)}); err == nil {
		t.Error("invalid type should fail")
	}
	if _, err := New(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: Str}); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid schema")
		}
	}()
	MustNew()
}

func TestUniform(t *testing.T) {
	s, err := Uniform(4, Int64, "c")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 4 {
		t.Fatalf("NumColumns = %d, want 4", s.NumColumns())
	}
	for i := 0; i < 4; i++ {
		c := s.Column(i)
		if c.Type != Int64 {
			t.Errorf("col %d type = %v", i, c.Type)
		}
		if want := "c" + string(rune('0'+i)); c.Name != want {
			t.Errorf("col %d name = %q, want %q", i, c.Name, want)
		}
	}
	if _, err := Uniform(0, Int64, "c"); err == nil {
		t.Error("Uniform(0) should fail")
	}
}

func TestIndex(t *testing.T) {
	s := MustNew(Column{"a", Int64}, Column{"b", Str})
	if i, ok := s.Index("b"); !ok || i != 1 {
		t.Errorf("Index(b) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should be absent")
	}
}

func TestProject(t *testing.T) {
	s := MustNew(Column{"a", Int64}, Column{"b", Str}, Column{"c", Float64})
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumColumns() != 2 || p.Column(0).Name != "c" || p.Column(1).Name != "a" {
		t.Errorf("Project = %v", p)
	}
	if _, err := s.Project([]int{3}); err == nil {
		t.Error("out-of-range projection should fail")
	}
	if _, err := s.Project([]int{-1}); err == nil {
		t.Error("negative projection should fail")
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(Column{"a", Int64}, Column{"b", Str})
	b := MustNew(Column{"a", Int64}, Column{"b", Str})
	c := MustNew(Column{"a", Int64}, Column{"b", Float64})
	if !a.Equal(a) || !a.Equal(b) {
		t.Error("identical schemas should be Equal")
	}
	if a.Equal(c) || a.Equal(nil) {
		t.Error("different schemas should not be Equal")
	}
	d := MustNew(Column{"a", Int64})
	if a.Equal(d) {
		t.Error("different lengths should not be Equal")
	}
}

func TestString(t *testing.T) {
	s := MustNew(Column{"id", Int64}, Column{"name", Str})
	want := "(id BIGINT, name VARCHAR)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Uniform(n) always yields n distinct columns whose indices
// round-trip through Index.
func TestUniformIndexProperty(t *testing.T) {
	f := func(n uint8) bool {
		cols := int(n%64) + 1
		s, err := Uniform(cols, Str, "x")
		if err != nil {
			return false
		}
		for i := 0; i < cols; i++ {
			j, ok := s.Index(s.Column(i).Name)
			if !ok || j != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Project with identity permutation preserves Equal.
func TestProjectIdentityProperty(t *testing.T) {
	f := func(n uint8) bool {
		cols := int(n%32) + 1
		s, _ := Uniform(cols, Int64, "c")
		idx := make([]int, cols)
		for i := range idx {
			idx[i] = i
		}
		p, err := s.Project(idx)
		return err == nil && p.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColumnsCopyIsolated(t *testing.T) {
	s := MustNew(Column{"a", Int64}, Column{"b", Str})
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "a" {
		t.Error("Columns() must return a copy")
	}
	if !strings.Contains(s.String(), "a BIGINT") {
		t.Error("schema mutated through Columns()")
	}
}
