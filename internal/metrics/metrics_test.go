package metrics

import (
	"sync"
	"testing"
	"time"

	"scanraw/internal/vdisk"
)

func TestBusyCounter(t *testing.T) {
	var b BusyCounter
	b.Add(10 * time.Millisecond)
	b.Add(5 * time.Millisecond)
	b.Add(-3 * time.Millisecond) // negative ignored
	if got := b.Total(); got != 15*time.Millisecond {
		t.Errorf("Total = %v, want 15ms", got)
	}
}

func TestBusyCounterTrack(t *testing.T) {
	var b BusyCounter
	b.Track(func() { time.Sleep(20 * time.Millisecond) })
	if got := b.Total(); got < 15*time.Millisecond {
		t.Errorf("Track accounted %v, want >= ~20ms", got)
	}
}

func TestBusyCounterConcurrent(t *testing.T) {
	var b BusyCounter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Total(); got != 1000*time.Microsecond {
		t.Errorf("Total = %v, want 1ms", got)
	}
}

func TestTracerCapturesActivity(t *testing.T) {
	d := vdisk.New(vdisk.Config{ReadBandwidth: 10 << 20})
	d.Preload("f", make([]byte, 2<<20))
	var cpu BusyCounter
	progress := 0.0
	var mu sync.Mutex
	tr := NewTracer(d, &cpu, 10*time.Millisecond, func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return progress
	})
	tr.Start()

	// Generate disk + CPU activity for ~200ms.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := d.ReadBlob("f"); err != nil { // ~200ms at 10MB/s
			t.Error(err)
		}
		mu.Lock()
		progress = 1.0
		mu.Unlock()
	}()
	go cpu.Track(func() { time.Sleep(100 * time.Millisecond) })
	<-done
	time.Sleep(30 * time.Millisecond)
	samples := tr.Stop()

	if len(samples) < 5 {
		t.Fatalf("got %d samples, want several", len(samples))
	}
	var sawIO, sawCPU bool
	for _, s := range samples {
		if s.ReadPercent > 50 {
			sawIO = true
		}
		if s.CPUPercent > 50 {
			sawCPU = true
		}
		if s.IOPercent != s.ReadPercent+s.WritePercent {
			t.Errorf("IOPercent %v != read %v + write %v", s.IOPercent, s.ReadPercent, s.WritePercent)
		}
	}
	if !sawIO {
		t.Error("tracer never observed disk busy")
	}
	if !sawCPU {
		t.Error("tracer never observed CPU busy")
	}
	if last := samples[len(samples)-1]; last.Progress != 1.0 {
		t.Errorf("final progress = %v", last.Progress)
	}
	// Samples are time-ordered.
	for i := 1; i < len(samples); i++ {
		if samples[i].At <= samples[i-1].At {
			t.Errorf("samples out of order at %d", i)
		}
	}
}

func TestTracerNilProgress(t *testing.T) {
	d := vdisk.Unlimited()
	var cpu BusyCounter
	tr := NewTracer(d, &cpu, 5*time.Millisecond, nil)
	tr.Start()
	time.Sleep(25 * time.Millisecond)
	samples := tr.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range samples {
		if s.Progress != 0 {
			t.Errorf("nil progress should report 0, got %v", s.Progress)
		}
	}
}
