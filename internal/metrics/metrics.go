// Package metrics samples CPU (worker-busy) and I/O (disk-busy)
// utilization over time, reproducing the measurement behind the paper's
// Fig. 9: "CPU and I/O utilization as processing progresses", where CPU
// utilization is reported in percent-of-one-core units (800 = 8 busy
// workers) and I/O utilization as the fraction of wall-clock time the disk
// was servicing a transfer.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/vdisk"
)

// BusyCounter accumulates the total busy time of a set of workers. Workers
// bracket their task execution with Track; the tracer differentiates the
// cumulative total to get utilization per interval.
type BusyCounter struct {
	ns atomic.Int64
}

// Add records d of busy time.
func (b *BusyCounter) Add(d time.Duration) {
	if d > 0 {
		b.ns.Add(int64(d))
	}
}

// Track runs fn and accounts its wall-clock duration as busy time.
func (b *BusyCounter) Track(fn func()) {
	start := time.Now()
	fn()
	b.Add(time.Since(start))
}

// Total returns cumulative busy time.
func (b *BusyCounter) Total() time.Duration { return time.Duration(b.ns.Load()) }

// DiskStats is the slice of a disk the samplers need: a cumulative activity
// snapshot. Both the simulated *vdisk.Disk and the durable file-backed
// store satisfy it.
type DiskStats interface {
	Stats() vdisk.Stats
}

// Sample is one utilization measurement.
type Sample struct {
	// At is the elapsed time since the trace started.
	At time.Duration
	// Progress is the externally supplied processing progress in [0,1].
	Progress float64
	// CPUPercent is worker busy time over the interval, in percent of one
	// core (N fully busy workers report N*100).
	CPUPercent float64
	// IOPercent is the fraction of the interval the disk was busy, split
	// into read and write components.
	IOPercent    float64
	ReadPercent  float64
	WritePercent float64
}

// Tracer periodically samples a disk and a busy counter.
type Tracer struct {
	disk     DiskStats
	cpu      *BusyCounter
	interval time.Duration
	progress func() float64

	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
}

// NewTracer builds a tracer sampling every interval. progress may be nil.
func NewTracer(d DiskStats, cpu *BusyCounter, interval time.Duration, progress func() float64) *Tracer {
	if progress == nil {
		progress = func() float64 { return 0 }
	}
	return &Tracer{disk: d, cpu: cpu, interval: interval, progress: progress}
}

// Start begins sampling in a background goroutine.
func (t *Tracer) Start() {
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.run()
}

func (t *Tracer) run() {
	defer close(t.done)
	start := time.Now()
	lastDisk := t.disk.Stats()
	lastCPU := t.cpu.Total()
	lastAt := start
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			dt := now.Sub(lastAt)
			if dt <= 0 {
				continue
			}
			disk := t.disk.Stats()
			cpu := t.cpu.Total()
			d := disk.Sub(lastDisk)
			s := Sample{
				At:           now.Sub(start),
				Progress:     t.progress(),
				CPUPercent:   100 * float64(cpu-lastCPU) / float64(dt),
				ReadPercent:  100 * float64(d.ReadBusy) / float64(dt),
				WritePercent: 100 * float64(d.WriteBusy) / float64(dt),
			}
			s.IOPercent = s.ReadPercent + s.WritePercent
			t.mu.Lock()
			t.samples = append(t.samples, s)
			t.mu.Unlock()
			lastDisk, lastCPU, lastAt = disk, cpu, now
		}
	}
}

// Stop ends sampling and returns the collected samples.
func (t *Tracer) Stop() []Sample {
	close(t.stop)
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Sample(nil), t.samples...)
}

// Meter is the pull-based counterpart of Tracer: instead of a background
// goroutine sampling on a ticker, each Sample call reports utilization
// over the interval since the previous call. This is the shape a serving
// endpoint wants — a GET /metrics handler pulls a sample when asked and
// pays nothing in between.
//
// The CPU source is a function rather than a single BusyCounter because a
// server aggregates worker-busy time across every live operator's pool.
type Meter struct {
	disk DiskStats
	cpu  func() time.Duration // cumulative worker-busy time

	mu       sync.Mutex
	start    time.Time
	lastAt   time.Time
	lastDisk vdisk.Stats
	lastCPU  time.Duration
}

// NewMeter builds a meter over a disk and a cumulative worker-busy-time
// source. The first Sample call reports utilization since construction.
func NewMeter(d DiskStats, cpu func() time.Duration) *Meter {
	now := time.Now()
	return &Meter{
		disk:     d,
		cpu:      cpu,
		start:    now,
		lastAt:   now,
		lastDisk: d.Stats(),
		lastCPU:  cpu(),
	}
}

// Sample returns utilization over the interval since the last Sample (or
// since construction), in the same units as Tracer samples: CPUPercent in
// percent-of-one-core (N busy workers report N*100), IO/Read/WritePercent
// as percent of wall-clock the disk was busy. Progress is passed through.
func (m *Meter) Sample(progress float64) Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	dt := now.Sub(m.lastAt)
	disk := m.disk.Stats()
	cpu := m.cpu()
	s := Sample{At: now.Sub(m.start), Progress: progress}
	if dt > 0 {
		d := disk.Sub(m.lastDisk)
		s.CPUPercent = 100 * float64(cpu-m.lastCPU) / float64(dt)
		s.ReadPercent = 100 * float64(d.ReadBusy) / float64(dt)
		s.WritePercent = 100 * float64(d.WriteBusy) / float64(dt)
		s.IOPercent = s.ReadPercent + s.WritePercent
	}
	m.lastAt, m.lastDisk, m.lastCPU = now, disk, cpu
	return s
}
