package kernel

import (
	"bytes"
	"fmt"

	"scanraw/internal/chunk"
	"scanraw/internal/parse"
	"scanraw/internal/schema"
)

// Framing helpers shared by every kernel. They mirror tok.Tokenize exactly:
// a line ends at the next '\n' (or end of data), one trailing '\r' is not
// part of the last field (CRLF tolerance), end of line terminates the
// current field, and a line with fewer than upTo fields is an error.

// lineBounds locates the line starting at pos: rawEnd is the index of its
// terminating '\n' (or len(data)), lineEnd the end of its content with one
// trailing '\r' stripped.
func lineBounds(data []byte, pos int) (rawEnd, lineEnd int) {
	rawEnd = len(data)
	if i := bytes.IndexByte(data[pos:], '\n'); i >= 0 {
		rawEnd = pos + i
	}
	lineEnd = rawEnd
	if lineEnd > pos && data[lineEnd-1] == '\r' {
		lineEnd--
	}
	return rawEnd, lineEnd
}

// nextLine returns the start of the line following the one ending at
// rawEnd. Combined with lineBounds' CR strip this advances exactly like
// tok.Tokenize's scan position.
func nextLine(data []byte, rawEnd int) int {
	if rawEnd < len(data) { // data[rawEnd] == '\n'
		return rawEnd + 1
	}
	return rawEnd
}

// fieldEnd returns the end of the field starting at fs: the index of the
// next delimiter, or lineEnd when the line's last field runs to its end.
func fieldEnd(data []byte, fs, lineEnd int, delim byte) int {
	if i := bytes.IndexByte(data[fs:lineEnd], delim); i >= 0 {
		return fs + i
	}
	return lineEnd
}

func errShort(tc *chunk.TextChunk, r int) error {
	return fmt.Errorf("kernel: chunk %d claims %d lines but data ends at line %d", tc.ID, tc.Lines, r)
}

func errFields(tc *chunk.TextChunk, r, have, need int) error {
	return fmt.Errorf("kernel: chunk %d row %d has %d fields, need %d", tc.ID, r, have, need)
}

// parseIntField parses the decimal int64 field beginning at fs, ending at
// the first delimiter or at lineEnd — the delimiter scan IS the parse, so
// requested integer columns never pay a separate boundary search. It
// accepts exactly what parse.ParseInt accepts (optional sign, decimal
// digits, MinInt64 as a special case) and returns the value plus the index
// just past the field's last byte. The delimiter is checked before the
// sign so exotic delimiters ('-', '+') still split fields first, matching
// the tokenizer.
func parseIntField(data []byte, fs, lineEnd int, delim byte) (int64, int, error) {
	i := fs
	neg := false
	if i < lineEnd && data[i] != delim {
		switch data[i] {
		case '-':
			neg = true
			i++
		case '+':
			i++
		}
	}
	digStart := i
	const cutoff = (1<<63 - 1) / 10
	var x int64
	for ; i < lineEnd; i++ {
		c := data[i]
		if c == delim {
			break
		}
		d := c - '0'
		if d > 9 {
			return 0, 0, fmt.Errorf("invalid integer %q", data[fs:fieldEnd(data, fs, lineEnd, delim)])
		}
		if x > cutoff {
			return 0, 0, fmt.Errorf("integer overflow in %q", data[fs:fieldEnd(data, fs, lineEnd, delim)])
		}
		x = x*10 + int64(d)
		if x < 0 {
			// Overflowed past MaxInt64; MinInt64 is representable only when
			// negative, exactly -2^63, and the field's final digit.
			if neg && x == -1<<63 {
				if j := i + 1; j >= lineEnd || data[j] == delim {
					return x, j, nil // already negative
				}
			}
			return 0, 0, fmt.Errorf("integer overflow in %q", data[fs:fieldEnd(data, fs, lineEnd, delim)])
		}
	}
	if i == digStart {
		return 0, 0, fmt.Errorf("invalid integer %q", data[fs:i])
	}
	if neg {
		x = -x
	}
	return x, i, nil
}

// runInt64Prefix converts a dense int64 column prefix (cols == 0..n-1, all
// Int64) — the tightest loop in the registry: every field the walk meets is
// requested, so there is no skip machinery and no per-field type dispatch.
func runInt64Prefix(k *Kernel, tc *chunk.TextChunk, out []*chunk.Vector) error {
	data := tc.Data
	delim := k.delim
	ncols := len(k.cols)
	pos := 0
	for r := 0; r < tc.Lines; r++ {
		if pos >= len(data) {
			return errShort(tc, r)
		}
		rawEnd, lineEnd := lineBounds(data, pos)
		fs := pos
		for j := 0; j < ncols; j++ {
			x, fe, err := parseIntField(data, fs, lineEnd, delim)
			if err != nil {
				return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, j, err)
			}
			if fe == lineEnd && j < ncols-1 {
				return errFields(tc, r, j+1, k.upTo)
			}
			out[j].Ints[r] = x
			fs = fe + 1
		}
		pos = nextLine(data, rawEnd)
	}
	return nil
}

// runInt64Subset converts an arbitrary all-int64 column subset, memchr-
// skipping the unrequested columns between consecutive requested ones.
func runInt64Subset(k *Kernel, tc *chunk.TextChunk, out []*chunk.Vector) error {
	data := tc.Data
	delim := k.delim
	ncols := len(k.cols)
	pos := 0
	for r := 0; r < tc.Lines; r++ {
		if pos >= len(data) {
			return errShort(tc, r)
		}
		rawEnd, lineEnd := lineBounds(data, pos)
		fs := pos
		for j := 0; j < ncols; j++ {
			col := k.cols[j]
			for g := k.gaps[j]; g > 0; g-- {
				i := bytes.IndexByte(data[fs:lineEnd], delim)
				if i < 0 {
					return errFields(tc, r, col-g+1, k.upTo)
				}
				fs += i + 1
			}
			x, fe, err := parseIntField(data, fs, lineEnd, delim)
			if err != nil {
				return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, col, err)
			}
			if fe == lineEnd && col < k.upTo-1 {
				return errFields(tc, r, col+1, k.upTo)
			}
			out[j].Ints[r] = x
			fs = fe + 1
		}
		pos = nextLine(data, rawEnd)
	}
	return nil
}

// runNumericSubset converts an int64+float64 mix: integers parse inline off
// the delimiter scan, floats locate their boundary with memchr and go
// through parse.ParseFloat (fast decimal path, strconv for exotic forms).
func runNumericSubset(k *Kernel, tc *chunk.TextChunk, out []*chunk.Vector) error {
	data := tc.Data
	delim := k.delim
	ncols := len(k.cols)
	pos := 0
	for r := 0; r < tc.Lines; r++ {
		if pos >= len(data) {
			return errShort(tc, r)
		}
		rawEnd, lineEnd := lineBounds(data, pos)
		fs := pos
		for j := 0; j < ncols; j++ {
			col := k.cols[j]
			for g := k.gaps[j]; g > 0; g-- {
				i := bytes.IndexByte(data[fs:lineEnd], delim)
				if i < 0 {
					return errFields(tc, r, col-g+1, k.upTo)
				}
				fs += i + 1
			}
			var fe int
			if k.types[j] == schema.Int64 {
				x, end, err := parseIntField(data, fs, lineEnd, delim)
				if err != nil {
					return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, col, err)
				}
				out[j].Ints[r] = x
				fe = end
			} else {
				fe = fieldEnd(data, fs, lineEnd, delim)
				x, err := parse.ParseFloat(data[fs:fe])
				if err != nil {
					return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, col, err)
				}
				out[j].Floats[r] = x
			}
			if fe == lineEnd && col < k.upTo-1 {
				return errFields(tc, r, col+1, k.upTo)
			}
			fs = fe + 1
		}
		pos = nextLine(data, rawEnd)
	}
	return nil
}

// runGeneric is the fused fallback for any type shape, including string
// columns. Still one pass per line — it merely pays a per-field type
// dispatch the specialized kernels compile away.
func runGeneric(k *Kernel, tc *chunk.TextChunk, out []*chunk.Vector) error {
	data := tc.Data
	delim := k.delim
	ncols := len(k.cols)
	pos := 0
	for r := 0; r < tc.Lines; r++ {
		if pos >= len(data) {
			return errShort(tc, r)
		}
		rawEnd, lineEnd := lineBounds(data, pos)
		fs := pos
		for j := 0; j < ncols; j++ {
			col := k.cols[j]
			for g := k.gaps[j]; g > 0; g-- {
				i := bytes.IndexByte(data[fs:lineEnd], delim)
				if i < 0 {
					return errFields(tc, r, col-g+1, k.upTo)
				}
				fs += i + 1
			}
			var fe int
			switch k.types[j] {
			case schema.Int64:
				x, end, err := parseIntField(data, fs, lineEnd, delim)
				if err != nil {
					return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, col, err)
				}
				out[j].Ints[r] = x
				fe = end
			case schema.Float64:
				fe = fieldEnd(data, fs, lineEnd, delim)
				x, err := parse.ParseFloat(data[fs:fe])
				if err != nil {
					return fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, col, err)
				}
				out[j].Floats[r] = x
			default:
				fe = fieldEnd(data, fs, lineEnd, delim)
				out[j].Strs[r] = string(data[fs:fe])
			}
			if fe == lineEnd && col < k.upTo-1 {
				return errFields(tc, r, col+1, k.upTo)
			}
			fs = fe + 1
		}
		pos = nextLine(data, rawEnd)
	}
	return nil
}
