package kernel

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/gen"
	"scanraw/internal/parse"
	"scanraw/internal/schema"
	"scanraw/internal/tok"
)

// benchSetup builds the paper's reference 64-column chunk and primes the
// vector pool so short -benchtime runs measure the pooled steady state.
func benchSetup(b *testing.B, cols []int) (*chunk.TextChunk, *schema.Schema, *Kernel) {
	b.Helper()
	spec := gen.CSVSpec{Rows: 2048, Cols: 64, Seed: 1}
	tc := &chunk.TextChunk{Data: gen.Bytes(spec), Lines: spec.Rows}
	sch := spec.Schema()
	k, err := For(sch, cols, ',')
	if err != nil {
		b.Fatal(err)
	}
	warm, err := k.Convert(tc)
	if err != nil {
		b.Fatal(err)
	}
	warm.RecycleColumns()
	return tc, sch, k
}

// BenchmarkFusedChunk64 measures fused conversion of all 64 columns — the
// number BENCH_pr7.json compares against BenchmarkTokParseChunk64 to
// report convert_kernel_speedup.
func BenchmarkFusedChunk64(b *testing.B) {
	cols := make([]int, 64)
	for i := range cols {
		cols[i] = i
	}
	tc, _, k := benchSetup(b, cols)
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := k.Convert(tc)
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}

// BenchmarkTokParseChunk64 is the two-stage baseline over the identical
// chunk: tokenize, parse, release the positional map — everything the
// non-fused conversion path pays per chunk.
func BenchmarkTokParseChunk64(b *testing.B) {
	cols := make([]int, 64)
	for i := range cols {
		cols[i] = i
	}
	tc, sch, _ := benchSetup(b, cols)
	tk := &tok.Tokenizer{Delim: ',', MinFields: 64}
	p := &parse.Parser{Schema: sch}
	// Prime the map pool too.
	if pm, err := tk.Tokenize(tc, 64); err != nil {
		b.Fatal(err)
	} else {
		chunk.PutPositionalMap(pm)
	}
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm, err := tk.Tokenize(tc, 64)
		if err != nil {
			b.Fatal(err)
		}
		bc, err := p.Parse(tc, pm, cols)
		chunk.PutPositionalMap(pm)
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}

// BenchmarkFusedSelective4of64 measures the selective shape: 4 requested
// columns, 60 skipped by memchr.
func BenchmarkFusedSelective4of64(b *testing.B) {
	tc, _, k := benchSetup(b, []int{0, 1, 2, 3})
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := k.Convert(tc)
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}

// BenchmarkFusedScattered4of64 spreads the 4 requested columns across the
// line, so the memchr skip loop runs between every pair.
func BenchmarkFusedScattered4of64(b *testing.B) {
	tc, _, k := benchSetup(b, []int{15, 31, 47, 63})
	b.SetBytes(int64(len(tc.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := k.Convert(tc)
		if err != nil {
			b.Fatal(err)
		}
		bc.RecycleColumns()
	}
}
