//go:build invariants

package kernel

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/parse"
)

// Failed conversions must return every acquired vector to the pool: the
// kernel grabs all output vectors up front, so each error return path
// owns len(cols) of them. Under the invariants build the pool gauge makes
// any leak observable.
func TestConvertErrorReleasesVectors(t *testing.T) {
	sch := intSchema(3)
	k, err := For(sch, []int{0, 1, 2}, ',')
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]*chunk.TextChunk{
		"data ends early": {ID: 1, Data: []byte("1,2,3\n"), Lines: 2},
		"short row":       {ID: 2, Data: []byte("1,2,3\n4,5\n"), Lines: 2},
		"bad value":       {ID: 3, Data: []byte("1,2,3\n4,x,6\n"), Lines: 2},
	} {
		t.Run(name, func(t *testing.T) {
			base := chunk.OutstandingVectors()
			if _, err := k.Convert(tc); err == nil {
				t.Fatal("malformed chunk converted without error")
			}
			if got := chunk.OutstandingVectors(); got != base {
				t.Errorf("vectors leaked: outstanding %d, want %d", got, base)
			}
		})
	}
}

// The push-down path has its own acquisition and error returns.
func TestConvertWhereErrorReleasesVectors(t *testing.T) {
	sch := intSchema(2)
	k, err := For(sch, []int{0, 1}, ',')
	if err != nil {
		t.Fatal(err)
	}
	all := parse.RowPredicate(func([]byte) bool { return true })
	for name, tc := range map[string]*chunk.TextChunk{
		"data ends early":  {ID: 1, Data: []byte("1,2\n"), Lines: 2},
		"short row":        {ID: 2, Data: []byte("1,2\n3\n"), Lines: 2},
		"bad value (kept)": {ID: 3, Data: []byte("1,2\n3,x\n"), Lines: 2},
	} {
		t.Run(name, func(t *testing.T) {
			base := chunk.OutstandingVectors()
			if _, _, err := k.ConvertWhere(tc, 0, all); err == nil {
				t.Fatal("malformed chunk converted without error")
			}
			if got := chunk.OutstandingVectors(); got != base {
				t.Errorf("vectors leaked: outstanding %d, want %d", got, base)
			}
		})
	}
}

// A successful conversion transfers ownership to the binary chunk;
// RecycleColumns must bring the gauge back to baseline.
func TestConvertRecycleBalances(t *testing.T) {
	sch := intSchema(2)
	k, err := For(sch, []int{0, 1}, ',')
	if err != nil {
		t.Fatal(err)
	}
	base := chunk.OutstandingVectors()
	bc, err := k.Convert(&chunk.TextChunk{Data: []byte("1,2\n3,4\n"), Lines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := chunk.OutstandingVectors(); got != base+2 {
		t.Errorf("outstanding %d after convert, want %d", got, base+2)
	}
	bc.RecycleColumns()
	if got := chunk.OutstandingVectors(); got != base {
		t.Errorf("outstanding %d after recycle, want %d", got, base)
	}
}
