package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/parse"
	"scanraw/internal/schema"
	"scanraw/internal/tok"
)

// The differential suite: fused kernels must be byte-identical to the
// tok→parse pipeline — same outputs on success, an error whenever the
// two-stage path errors — across random schemas, column subsets,
// delimiters, CRLF endings, short/overlong lines, and malformed values.

// tokParse runs the two-stage reference path: tokenize upTo the last
// requested column, then parse the requested columns.
func tokParse(sch *schema.Schema, tc *chunk.TextChunk, delim byte, cols []int) (*chunk.BinaryChunk, error) {
	tk := &tok.Tokenizer{Delim: delim, MinFields: sch.NumColumns()}
	pm, err := tk.Tokenize(tc, cols[len(cols)-1]+1)
	if err != nil {
		return nil, err
	}
	defer chunk.PutPositionalMap(pm)
	p := &parse.Parser{Schema: sch}
	return p.Parse(tc, pm, cols)
}

// tokParseWhere is the two-stage reference for push-down selection.
func tokParseWhere(sch *schema.Schema, tc *chunk.TextChunk, delim byte, cols []int, predCol int, pred parse.RowPredicate) (*chunk.BinaryChunk, []int, error) {
	upTo := cols[len(cols)-1] + 1
	if predCol+1 > upTo {
		upTo = predCol + 1
	}
	tk := &tok.Tokenizer{Delim: delim, MinFields: sch.NumColumns()}
	pm, err := tk.Tokenize(tc, upTo)
	if err != nil {
		return nil, nil, err
	}
	defer chunk.PutPositionalMap(pm)
	p := &parse.Parser{Schema: sch}
	return p.ParseWhere(tc, pm, cols, predCol, pred)
}

// requireEqualChunks fails the test unless the two chunks hold identical
// values in every requested column. Floats compare by bit pattern —
// "byte-identical" includes the sign of zero and NaN payloads.
func requireEqualChunks(t *testing.T, label string, want, got *chunk.BinaryChunk, cols []int) {
	t.Helper()
	if want.ID != got.ID || want.Rows != got.Rows {
		t.Fatalf("%s: chunk mismatch: want id=%d rows=%d, got id=%d rows=%d",
			label, want.ID, want.Rows, got.ID, got.Rows)
	}
	for _, c := range cols {
		wv, gv := want.Column(c), got.Column(c)
		if wv == nil || gv == nil {
			t.Fatalf("%s: column %d missing (want %v, got %v)", label, c, wv != nil, gv != nil)
		}
		if wv.Type != gv.Type {
			t.Fatalf("%s: column %d type mismatch", label, c)
		}
		for r := 0; r < want.Rows; r++ {
			switch wv.Type {
			case schema.Int64:
				if wv.Ints[r] != gv.Ints[r] {
					t.Fatalf("%s: col %d row %d: want %d, got %d", label, c, r, wv.Ints[r], gv.Ints[r])
				}
			case schema.Float64:
				if math.Float64bits(wv.Floats[r]) != math.Float64bits(gv.Floats[r]) {
					t.Fatalf("%s: col %d row %d: want %v, got %v", label, c, r, wv.Floats[r], gv.Floats[r])
				}
			default:
				if wv.Strs[r] != gv.Strs[r] {
					t.Fatalf("%s: col %d row %d: want %q, got %q", label, c, r, wv.Strs[r], gv.Strs[r])
				}
			}
		}
	}
}

// randSchema draws 1-10 columns of random types.
func randSchema(rng *rand.Rand) *schema.Schema {
	n := 1 + rng.Intn(10)
	cols := make([]schema.Column, n)
	for i := range cols {
		cols[i] = schema.Column{Name: fmt.Sprintf("c%d", i), Type: schema.Type(rng.Intn(3))}
	}
	return schema.MustNew(cols...)
}

// randCols draws a non-empty sorted subset of the schema's ordinals.
func randCols(rng *rand.Rand, ncols int) []int {
	var cols []int
	for c := 0; c < ncols; c++ {
		if rng.Intn(2) == 0 {
			cols = append(cols, c)
		}
	}
	if len(cols) == 0 {
		cols = []int{rng.Intn(ncols)}
	}
	return cols
}

// randField produces a value for one cell; mostly valid for the column
// type, occasionally malformed (the differential property covers errors).
func randField(rng *rand.Rand, t schema.Type, delim byte, corrupt bool) string {
	if corrupt {
		return [...]string{"x9", "", "-", "9223372036854775808", "1.2.3", "0x10", "nanx"}[rng.Intn(7)]
	}
	switch t {
	case schema.Int64:
		switch rng.Intn(8) {
		case 0:
			return "0"
		case 1:
			return strconv.FormatInt(math.MinInt64, 10)
		case 2:
			return strconv.FormatInt(math.MaxInt64, 10)
		case 3:
			return "+" + strconv.Itoa(rng.Intn(1000))
		default:
			return strconv.FormatInt(rng.Int63n(1<<40)-(1<<39), 10)
		}
	case schema.Float64:
		switch rng.Intn(8) {
		case 0:
			return ".5"
		case 1:
			return "5."
		case 2:
			return "-0.0"
		case 3:
			return strconv.FormatFloat(rng.NormFloat64()*1e9, 'e', -1, 64)
		case 4:
			return "0.000000000000000000000001"
		default:
			return strconv.FormatFloat(rng.NormFloat64()*1000, 'f', -1, 64)
		}
	default:
		n := rng.Intn(10)
		b := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			ch := byte(' ' + rng.Intn(95))
			if ch == delim || ch == '\n' || ch == '\r' {
				ch = '_'
			}
			b = append(b, ch)
		}
		return string(b)
	}
}

// randChunk builds a chunk for the schema: random row count, per-line CRLF,
// sometimes short lines, corrupt cells, a missing trailing newline, or a
// lying line count.
func randChunk(rng *rand.Rand, sch *schema.Schema, delim byte) *chunk.TextChunk {
	rows := rng.Intn(30)
	var data []byte
	for r := 0; r < rows; r++ {
		nf := sch.NumColumns()
		if rng.Intn(20) == 0 {
			nf = rng.Intn(nf) // short line
		} else if rng.Intn(10) == 0 {
			nf += 1 + rng.Intn(3) // overlong line: extra trailing fields
		}
		for f := 0; f < nf; f++ {
			if f > 0 {
				data = append(data, delim)
			}
			t := schema.Str
			if f < sch.NumColumns() {
				t = sch.Column(f).Type
			}
			data = append(data, randField(rng, t, delim, rng.Intn(40) == 0)...)
		}
		switch rng.Intn(4) {
		case 0:
			data = append(data, '\r', '\n')
		default:
			data = append(data, '\n')
		}
	}
	if rows > 0 && rng.Intn(8) == 0 {
		data = data[:len(data)-1] // drop the final newline
		if len(data) > 0 && data[len(data)-1] == '\r' && rng.Intn(2) == 0 {
			data = data[:len(data)-1]
		}
	}
	claimed := rows
	if rng.Intn(25) == 0 {
		claimed = rows + 1 + rng.Intn(2) // claims lines the data lacks
	}
	return &chunk.TextChunk{ID: rng.Intn(100), Data: data, Lines: claimed}
}

func TestFusedMatchesTokParseRandomized(t *testing.T) {
	delims := []byte{',', '\t', ';', '|'}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := randSchema(rng)
		delim := delims[rng.Intn(len(delims))]
		cols := randCols(rng, sch.NumColumns())
		tc := randChunk(rng, sch, delim)

		k, err := For(sch, cols, delim)
		if err != nil {
			t.Fatalf("seed %d: For: %v", seed, err)
		}
		want, wantErr := tokParse(sch, tc, delim, cols)
		got, gotErr := k.Convert(tc)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("seed %d (kernel %s, cols %v, delim %q):\n tok+parse err: %v\n fused err:     %v\n data: %q",
				seed, k.Name(), cols, delim, wantErr, gotErr, tc.Data)
		}
		if wantErr != nil {
			continue
		}
		requireEqualChunks(t, fmt.Sprintf("seed %d (kernel %s, cols %v)", seed, k.Name(), cols), want, got, cols)
		want.RecycleColumns()
		got.RecycleColumns()
	}
}

func TestFusedConvertWhereMatchesParseWhere(t *testing.T) {
	// Predicates operate on raw field bytes, exactly like ParseWhere.
	preds := []parse.RowPredicate{
		func(b []byte) bool { return len(b)%2 == 0 },
		func(b []byte) bool { return len(b) > 0 && b[0] <= '4' },
		func(b []byte) bool { return true },
		func(b []byte) bool { return false },
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		sch := randSchema(rng)
		delim := byte(',')
		cols := randCols(rng, sch.NumColumns())
		predCol := rng.Intn(sch.NumColumns())
		pred := preds[rng.Intn(len(preds))]
		tc := randChunk(rng, sch, delim)

		k, err := For(sch, cols, delim)
		if err != nil {
			t.Fatalf("seed %d: For: %v", seed, err)
		}
		want, wantKeep, wantErr := tokParseWhere(sch, tc, delim, cols, predCol, pred)
		got, gotKeep, gotErr := k.ConvertWhere(tc, predCol, pred)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("seed %d (cols %v, predCol %d):\n ParseWhere err:   %v\n ConvertWhere err: %v\n data: %q",
				seed, cols, predCol, wantErr, gotErr, tc.Data)
		}
		if wantErr != nil {
			continue
		}
		if len(wantKeep) != len(gotKeep) {
			t.Fatalf("seed %d: keep length: want %d, got %d", seed, len(wantKeep), len(gotKeep))
		}
		for i := range wantKeep {
			if wantKeep[i] != gotKeep[i] {
				t.Fatalf("seed %d: keep[%d]: want %d, got %d", seed, i, wantKeep[i], gotKeep[i])
			}
		}
		requireEqualChunks(t, fmt.Sprintf("seed %d (predCol %d)", seed, predCol), want, got, cols)
		want.RecycleColumns()
		got.RecycleColumns()
	}
}

// TestConvertWhereDroppedRowsToleratesBadValues pins the ParseWhere
// contract the fused path must honour: a malformed value in a row the
// predicate drops is never parsed, so it must not error.
func TestConvertWhereDroppedRowsToleratesBadValues(t *testing.T) {
	sch := intSchema(2)
	k, err := For(sch, []int{0, 1}, ',')
	if err != nil {
		t.Fatal(err)
	}
	tc := textChunk(0, "1,2\n9,notanumber\n3,4\n")
	// Keep only rows whose first field is odd-valued ASCII: drops row 1.
	pred := func(b []byte) bool { return len(b) > 0 && b[0] != '9' }
	bc, keep, err := k.ConvertWhere(tc, 0, pred)
	if err != nil {
		t.Fatalf("bad value in dropped row must not error: %v", err)
	}
	defer bc.RecycleColumns()
	if len(keep) != 2 || keep[0] != 0 || keep[1] != 2 {
		t.Fatalf("keep = %v, want [0 2]", keep)
	}
	if bc.Rows != 2 || bc.Column(1).Ints[0] != 2 || bc.Column(1).Ints[1] != 4 {
		t.Fatalf("got rows=%d col1=%v", bc.Rows, bc.Column(1).Ints)
	}
	// The same bad value in a kept row must error — on both paths.
	if _, _, err := k.ConvertWhere(tc, 0, func([]byte) bool { return true }); err == nil {
		t.Fatal("bad value in kept row: expected error")
	}
}
